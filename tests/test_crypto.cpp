// Crypto substrate tests: SHA-256 against FIPS/NIST vectors, HMAC-SHA256
// against RFC 4231 vectors, Merkle proofs across tree sizes, and the
// simulation signature scheme.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "crypto/buffer.hpp"
#include "crypto/hash.hpp"
#include "crypto/keys.hpp"
#include "crypto/merkle.hpp"

namespace dc = decentnet::crypto;

TEST(Sha256, NistVectorEmpty) {
  EXPECT_EQ(dc::sha256("").hex(),
            "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855");
}

TEST(Sha256, NistVectorAbc) {
  EXPECT_EQ(dc::sha256("abc").hex(),
            "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad");
}

TEST(Sha256, NistVectorTwoBlocks) {
  EXPECT_EQ(
      dc::sha256("abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq")
          .hex(),
      "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1");
}

TEST(Sha256, MillionAs) {
  const std::string input(1000000, 'a');
  EXPECT_EQ(dc::sha256(input).hex(),
            "cdc76e5c9914fb9281a1c7e284d73e67f1809a48a497200e046d39ccc7112cd0");
}

TEST(Sha256, ExactBlockBoundaries) {
  // 55/56/64-byte messages exercise the padding edge cases.
  EXPECT_EQ(dc::sha256(std::string(55, 'x')).hex().size(), 64u);
  EXPECT_NE(dc::sha256(std::string(55, 'x')), dc::sha256(std::string(56, 'x')));
  EXPECT_NE(dc::sha256(std::string(64, 'x')), dc::sha256(std::string(65, 'x')));
}

TEST(Sha256, DoubleHashDiffersFromSingle) {
  const auto once = dc::sha256("payload");
  const auto twice = dc::sha256d(dc::as_bytes("payload"));
  EXPECT_NE(once, twice);
  EXPECT_EQ(twice, dc::sha256(std::span<const std::uint8_t>(once.bytes)));
}

TEST(HmacSha256, Rfc4231Case1) {
  std::vector<std::uint8_t> key(20, 0x0b);
  EXPECT_EQ(dc::hmac_sha256(key, dc::as_bytes("Hi There")).hex(),
            "b0344c61d8db38535ca8afceaf0bf12b881dc200c9833da726e9376c2e32cff7");
}

TEST(HmacSha256, Rfc4231Case2) {
  EXPECT_EQ(dc::hmac_sha256(dc::as_bytes("Jefe"),
                            dc::as_bytes("what do ya want for nothing?"))
                .hex(),
            "5bdcc146bf60754e6a042426089575c75a003f089d2739839dec58b964ec3843");
}

TEST(HmacSha256, LongKeyIsHashedFirst) {
  // RFC 4231 case 6: 131-byte key.
  std::vector<std::uint8_t> key(131, 0xaa);
  EXPECT_EQ(dc::hmac_sha256(
                key, dc::as_bytes("Test Using Larger Than Block-Size Key - "
                                  "Hash Key First"))
                .hex(),
            "60e431591ee0b67f0d8a26aacbf5b77f8e0bc6213728c5140546040f0ee37f54");
}

TEST(Hash256, HexRoundTrip) {
  const auto h = dc::sha256("round trip");
  EXPECT_EQ(dc::Hash256::from_hex(h.hex()), h);
}

TEST(Hash256, ComparisonIsBigEndianNumeric) {
  dc::Hash256 small, big;
  small.bytes[31] = 1;
  big.bytes[0] = 1;
  EXPECT_LT(small, big);
  EXPECT_TRUE(dc::Hash256{}.is_zero());
  EXPECT_FALSE(small.is_zero());
}

TEST(Hash256, XorDistanceProperties) {
  const auto a = dc::sha256("a");
  const auto b = dc::sha256("b");
  EXPECT_TRUE(a.distance_to(a).is_zero());
  EXPECT_EQ(a.distance_to(b), b.distance_to(a));
}

TEST(Hash256, LeadingZeroBits) {
  dc::Hash256 h;
  EXPECT_EQ(h.leading_zero_bits(), 256);
  h.bytes[0] = 0x80;
  EXPECT_EQ(h.leading_zero_bits(), 0);
  h.bytes[0] = 0x01;
  EXPECT_EQ(h.leading_zero_bits(), 7);
  h.bytes[0] = 0;
  h.bytes[2] = 0x10;
  EXPECT_EQ(h.leading_zero_bits(), 16 + 3);
}

TEST(Hash256, BitAccessor) {
  dc::Hash256 h;
  h.bytes[0] = 0x80;
  EXPECT_TRUE(h.bit(0));
  EXPECT_FALSE(h.bit(1));
  h.bytes[1] = 0x01;
  EXPECT_TRUE(h.bit(15));
}

TEST(ByteWriter, DeterministicDigest) {
  dc::ByteWriter w1, w2;
  w1.str("hello").u64(42).u32(7).u8(1);
  w2.str("hello").u64(42).u32(7).u8(1);
  EXPECT_EQ(w1.sha256(), w2.sha256());
  dc::ByteWriter w3;
  w3.str("hello").u64(43).u32(7).u8(1);
  EXPECT_NE(w1.sha256(), w3.sha256());
}

TEST(Keys, SignVerifyRoundTrip) {
  auto& authority = dc::KeyAuthority::global();
  const dc::PrivateKey key = authority.issue(12345);
  const auto sig = key.sign("message");
  EXPECT_TRUE(authority.verify(key.public_key(), "message", sig));
  EXPECT_FALSE(authority.verify(key.public_key(), "other message", sig));
}

TEST(Keys, UnknownKeyFailsVerification) {
  const dc::PrivateKey unregistered = dc::PrivateKey::from_seed(999999999);
  const auto sig = unregistered.sign("m");
  // The authority never saw this key pair.
  EXPECT_FALSE(dc::KeyAuthority::global().verify(unregistered.public_key(),
                                                 "m", sig));
}

TEST(Keys, WrongKeyCannotForge) {
  auto& authority = dc::KeyAuthority::global();
  const dc::PrivateKey alice = authority.issue(111);
  const dc::PrivateKey mallory = authority.issue(222);
  const auto forged = mallory.sign("pay mallory");
  EXPECT_FALSE(authority.verify(alice.public_key(), "pay mallory", forged));
}

TEST(Keys, DeterministicFromSeed) {
  EXPECT_EQ(dc::PrivateKey::from_seed(7).public_key(),
            dc::PrivateKey::from_seed(7).public_key());
  EXPECT_NE(dc::PrivateKey::from_seed(7).public_key(),
            dc::PrivateKey::from_seed(8).public_key());
}

// --- Merkle trees, parameterized over leaf counts ---------------------------

class MerkleSizes : public ::testing::TestWithParam<std::size_t> {};

TEST_P(MerkleSizes, AllProofsVerify) {
  const std::size_t n = GetParam();
  std::vector<dc::Hash256> leaves;
  for (std::size_t i = 0; i < n; ++i) {
    leaves.push_back(dc::sha256("leaf-" + std::to_string(i)));
  }
  dc::MerkleTree tree(leaves);
  EXPECT_EQ(tree.leaf_count(), n);
  for (std::size_t i = 0; i < n; ++i) {
    const auto proof = tree.prove(i);
    EXPECT_TRUE(dc::MerkleTree::verify(leaves[i], i, proof, tree.root()))
        << "leaf " << i << " of " << n;
    // A different leaf must not verify with this proof.
    const auto wrong = dc::sha256("tampered");
    EXPECT_FALSE(dc::MerkleTree::verify(wrong, i, proof, tree.root()));
  }
}

INSTANTIATE_TEST_SUITE_P(TreeSizes, MerkleSizes,
                         ::testing::Values(1, 2, 3, 4, 5, 7, 8, 9, 15, 16, 33,
                                           100));

TEST(Merkle, EmptyTreeHasZeroRoot) {
  dc::MerkleTree tree({});
  EXPECT_TRUE(tree.root().is_zero());
  EXPECT_TRUE(dc::MerkleTree::compute_root({}).is_zero());
}

TEST(Merkle, ComputeRootMatchesTree) {
  std::vector<dc::Hash256> leaves;
  for (int i = 0; i < 13; ++i) leaves.push_back(dc::sha256(std::to_string(i)));
  dc::MerkleTree tree(leaves);
  EXPECT_EQ(dc::MerkleTree::compute_root(leaves), tree.root());
}

TEST(Merkle, ProofWithWrongIndexFails) {
  std::vector<dc::Hash256> leaves;
  for (int i = 0; i < 8; ++i) leaves.push_back(dc::sha256(std::to_string(i)));
  dc::MerkleTree tree(leaves);
  const auto proof = tree.prove(3);
  EXPECT_FALSE(dc::MerkleTree::verify(leaves[3], 4, proof, tree.root()));
}

TEST(Merkle, ProveOutOfRangeThrows) {
  dc::MerkleTree tree({dc::sha256("only")});
  EXPECT_THROW(tree.prove(1), std::out_of_range);
}

TEST(Merkle, RootChangesWithAnyLeaf) {
  std::vector<dc::Hash256> leaves;
  for (int i = 0; i < 6; ++i) leaves.push_back(dc::sha256(std::to_string(i)));
  const auto root = dc::MerkleTree::compute_root(leaves);
  for (std::size_t i = 0; i < leaves.size(); ++i) {
    auto mutated = leaves;
    mutated[i] = dc::sha256("mutated");
    EXPECT_NE(dc::MerkleTree::compute_root(mutated), root);
  }
}
