// Trace subsystem tests: record kinds from the kernel and the network, the
// detached (post) fast path, and the determinism contract — two runs from
// the same seed must produce byte-identical JSONL.
#include <gtest/gtest.h>

#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "net/network.hpp"
#include "sim/simulator.hpp"
#include "sim/trace.hpp"

namespace ds = decentnet::sim;
namespace dn = decentnet::net;

namespace {

/// Collects records in memory for structural assertions.
class VecSink final : public ds::TraceSink {
 public:
  struct Rec {
    ds::SimTime t;
    std::string kind;
    std::string tag;
    std::uint64_t id, a, b, bytes;
  };
  void record(const ds::TraceRecord& r) override {
    recs.push_back({r.t, r.kind, r.tag ? r.tag : "", r.id, r.a, r.b,
                    r.bytes});
  }
  std::size_t count(const std::string& kind) const {
    std::size_t n = 0;
    for (const auto& r : recs) {
      if (r.kind == kind) ++n;
    }
    return n;
  }
  std::vector<Rec> recs;
};

struct Echo final : dn::Host {
  int got = 0;
  void handle_message(const dn::Message&) override { ++got; }
};

}  // namespace

TEST(Trace, KernelEmitsSchedFireCancel) {
  ds::Simulator sim(1);
  VecSink sink;
  sim.set_trace(&sink);
  int fired = 0;
  sim.schedule(ds::millis(10), [&] { ++fired; }, "keep");
  auto dead = sim.schedule(ds::millis(20), [&] { ++fired; }, "kill");
  dead.cancel();
  sim.run_all();
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(sink.count("sched"), 2u);
  EXPECT_EQ(sink.count("fire"), 1u);
  EXPECT_EQ(sink.count("cancel"), 1u);
  // The sched record carries the tag and the fire time.
  bool saw_keep = false;
  for (const auto& r : sink.recs) {
    if (r.kind == "sched" && r.tag == "keep") {
      saw_keep = true;
      EXPECT_EQ(r.a, static_cast<std::uint64_t>(ds::millis(10)));
    }
  }
  EXPECT_TRUE(saw_keep);
}

TEST(Trace, DetachedPostIsTracedLikeSchedule) {
  ds::Simulator sim(1);
  VecSink sink;
  sim.set_trace(&sink);
  int fired = 0;
  sim.post(ds::millis(5), [&] { ++fired; }, "detached");
  sim.run_all();
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(sink.count("sched"), 1u);
  EXPECT_EQ(sink.count("fire"), 1u);
  EXPECT_EQ(sink.recs[0].tag, "detached");
}

TEST(Trace, NoSinkStillRuns) {
  ds::Simulator sim(1);
  int fired = 0;
  sim.post(ds::millis(1), [&] { ++fired; });
  sim.schedule(ds::millis(2), [&] { ++fired; });
  sim.run_all();
  EXPECT_EQ(fired, 2);
}

TEST(Trace, NetworkEmitsSendAndDropRecords) {
  ds::Simulator sim(7);
  VecSink sink;
  sim.set_trace(&sink);
  dn::Network net(sim, std::make_unique<dn::ConstantLatency>(ds::millis(5)));
  Echo alice, bob;
  const auto a = net.new_node_id();
  const auto b = net.new_node_id();
  net.attach(a, &alice);
  net.attach(b, &bob);
  net.send(a, b, std::string("hi"), 64);
  sim.run_all();
  EXPECT_EQ(bob.got, 1);
  ASSERT_EQ(sink.count("send"), 1u);
  for (const auto& r : sink.recs) {
    if (r.kind == "send") EXPECT_EQ(r.bytes, 64u);
  }

  // An unreachable receiver: the send is recorded on entry, then the drop
  // with its reason tag.
  net.set_unreachable(b, true);
  net.send(a, b, std::string("lost"), 32);
  sim.run_all();
  EXPECT_EQ(bob.got, 1);
  EXPECT_EQ(sink.count("send"), 2u);
  ASSERT_EQ(sink.count("drop"), 1u);
  for (const auto& r : sink.recs) {
    if (r.kind == "drop") {
      EXPECT_EQ(r.tag, "unreachable");
      EXPECT_EQ(r.bytes, 32u);
      EXPECT_EQ(r.a, a.value);
      EXPECT_EQ(r.b, b.value);
    }
  }
}

TEST(Trace, JsonlIsDeterministicAcrossRuns) {
  // The same seeded workload, traced twice, must serialize to identical
  // bytes — the property the harness's --trace flag is documented to hold.
  const auto run = [](std::uint64_t seed) {
    std::ostringstream out;
    ds::JsonlTraceSink sink(out);
    ds::Simulator sim(seed);
    sim.set_trace(&sink);
    dn::Network net(sim,
                    std::make_unique<dn::LogNormalLatency>(ds::millis(20),
                                                           0.4));
    Echo hosts[4];
    std::vector<dn::NodeId> ids;
    for (auto& h : hosts) {
      ids.push_back(net.new_node_id());
      net.attach(ids.back(), &h);
    }
    net.set_drop_probability(0.2);
    for (int round = 0; round < 20; ++round) {
      sim.post(ds::millis(7 * round), [&, round] {
        net.send(ids[static_cast<std::size_t>(round) % 4],
                 ids[static_cast<std::size_t>(round + 1) % 4],
                 std::string("m"), 100 + static_cast<std::size_t>(round));
      });
    }
    sim.run_all();
    sink.flush();
    return out.str();
  };
  const std::string first = run(99);
  const std::string second = run(99);
  EXPECT_FALSE(first.empty());
  EXPECT_EQ(first, second);
  // A different seed perturbs latency draws, so the stream differs.
  EXPECT_NE(first, run(100));
}

TEST(Trace, JsonlRecordsAreOnePerLine) {
  std::ostringstream out;
  ds::JsonlTraceSink sink(out);
  ds::Simulator sim(3);
  sim.set_trace(&sink);
  for (int i = 0; i < 5; ++i) sim.post(ds::millis(i), [] {});
  sim.run_all();
  sink.flush();
  const std::string text = out.str();
  std::size_t lines = 0;
  for (char c : text) {
    if (c == '\n') ++lines;
  }
  EXPECT_EQ(lines, sink.records_written());
  EXPECT_EQ(lines, 10u);  // 5 sched + 5 fire
  // Every line is a JSON object.
  std::istringstream in(text);
  std::string line;
  while (std::getline(in, line)) {
    ASSERT_FALSE(line.empty());
    EXPECT_EQ(line.front(), '{');
    EXPECT_EQ(line.back(), '}');
  }
}
