// Chaos engine tests: ChaosSpace JSON parsing and validation, deterministic
// plan sampling, FaultPlan/ChaosRepro byte-stable round-trips (including
// seeds above 2^63), every liveness oracle firing on a seeded negative case,
// and the acceptance fixture — a planted recovery bug detected by an oracle
// and shrunk to a minimal crash clause, deterministically.
#include <gtest/gtest.h>

#include <memory>
#include <stdexcept>
#include <string>
#include <vector>

#include "net/faults.hpp"
#include "net/network.hpp"
#include "sim/chaos.hpp"
#include "sim/invariants.hpp"
#include "sim/simulator.hpp"

namespace dn = decentnet::net;
namespace ds = decentnet::sim;

namespace {

// Every fault family in one plan, for round-trip coverage.
dn::FaultPlan full_family_plan() {
  dn::FaultPlan plan;
  plan.partition(ds::seconds(30), "split", {{3, 1, 2}, {4, 5}}, ds::seconds(90))
      .crash(ds::seconds(40), 2)
      .restart(ds::seconds(70), 2)
      .loss_burst(ds::seconds(20), 0.25, ds::seconds(50))
      .duplicate_window(ds::seconds(10), 0.1, ds::seconds(60))
      .reorder_window(ds::seconds(15), ds::millis(40), ds::seconds(55))
      .latency_penalty(ds::seconds(25), 4, ds::millis(150), ds::seconds(65))
      .bandwidth_degrade(ds::seconds(25), 3, 0.5, ds::seconds(65));
  return plan;
}

}  // namespace

// --- ChaosSpace ------------------------------------------------------------

TEST(ChaosSpace, FromJsonOverridesListedKeysAndKeepsDefaults) {
  const ds::ChaosSpace space = ds::ChaosSpace::from_json(R"({
    "nodes": 8,
    "horizon_s": 120,
    "crashes": {"count": [1, 1], "len_s": [5, 10]},
    "loss": {"count": [2, 2], "p": [0.3, 0.3]}
  })");
  EXPECT_EQ(space.nodes, 8u);
  EXPECT_EQ(space.horizon, ds::seconds(120));
  EXPECT_EQ(space.crashes.lo, 1u);
  EXPECT_EQ(space.crashes.hi, 1u);
  EXPECT_DOUBLE_EQ(space.crash_len_s.lo, 5);
  EXPECT_DOUBLE_EQ(space.loss_p.hi, 0.3);
  // Unlisted keys keep their defaults.
  const ds::ChaosSpace defaults;
  EXPECT_DOUBLE_EQ(space.loss_len_s.lo, defaults.loss_len_s.lo);
  EXPECT_EQ(space.partitions.hi, defaults.partitions.hi);
  EXPECT_DOUBLE_EQ(space.duplicate_p.hi, defaults.duplicate_p.hi);
  EXPECT_FALSE(space.validate().has_value());
}

TEST(ChaosSpace, FromJsonErrorsNameTheOffendingKey) {
  try {
    ds::ChaosSpace::from_json(R"({"crashes": {"count": [2]}})");
    FAIL() << "one-element count range must throw";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("'count'"), std::string::npos)
        << e.what();
  }
  try {
    ds::ChaosSpace::from_json(R"({"horizon_s": "long"})");
    FAIL() << "non-numeric horizon must throw";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("horizon_s"), std::string::npos)
        << e.what();
  }
}

TEST(ChaosSpace, ValidateCatchesStructuralProblems) {
  ds::ChaosSpace space;
  space.nodes = 1;
  ASSERT_TRUE(space.validate().has_value());
  EXPECT_NE(space.validate()->find("2 nodes"), std::string::npos);
  space.nodes = 8;
  space.loss_p = {0.2, 1.5};
  ASSERT_TRUE(space.validate().has_value());
  EXPECT_NE(space.validate()->find("loss_p"), std::string::npos);
  // The engine refuses an invalid space outright.
  EXPECT_THROW(ds::ChaosEngine{space}, std::invalid_argument);
}

// --- Sampling --------------------------------------------------------------

TEST(ChaosEngine, SamplePlanIsDeterministicValidAndSorted) {
  const ds::ChaosEngine engine{ds::ChaosSpace{}};
  const dn::FaultPlan a = engine.sample_plan(0xC0FFEE);
  const dn::FaultPlan b = engine.sample_plan(0xC0FFEE);
  EXPECT_EQ(a.to_json(), b.to_json());
  EXPECT_NE(a.to_json(), engine.sample_plan(0xC0FFEF).to_json());
  EXPECT_FALSE(a.validate(engine.space().nodes).has_value());
  const auto& ev = a.events();
  for (std::size_t i = 1; i < ev.size(); ++i) {
    EXPECT_LE(ev[i - 1].at, ev[i].at);
  }
  // Sampling honours the inject/heal envelope the space promises.
  const ds::SimTime horizon = engine.space().horizon;
  for (const auto& e : a.events()) {
    EXPECT_GE(e.at, horizon / 20);
    if (e.heal_at > 0) EXPECT_LE(e.heal_at, horizon * 8 / 10);
  }
}

TEST(ChaosEngine, QuiesceTimeIsLastInjectOrHeal) {
  const dn::FaultPlan plan = full_family_plan();
  EXPECT_EQ(ds::plan_quiesce_time(plan), ds::seconds(90));
  dn::FaultPlan crash_only;
  crash_only.crash(ds::seconds(5), 0).restart(ds::seconds(25), 0);
  EXPECT_EQ(ds::plan_quiesce_time(crash_only), ds::seconds(25));
}

// --- JSON round-trips ------------------------------------------------------

TEST(FaultPlanJson, RoundTripIsByteStable) {
  const dn::FaultPlan plan = full_family_plan();
  const std::string once = plan.to_json();
  const std::string twice = dn::FaultPlan::from_json(once).to_json();
  EXPECT_EQ(once, twice);
  // Partition members serialize sorted regardless of construction order.
  EXPECT_NE(once.find("[1, 2, 3]"), std::string::npos) << once;
}

TEST(FaultPlanJson, ParseErrorsNameEventIndexAndField) {
  try {
    dn::FaultPlan::from_json(
        R"({"version": 1, "events": [{"kind": "meteor", "at": 0}]})");
    FAIL() << "unknown kind must throw";
  } catch (const std::invalid_argument& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("event 0"), std::string::npos) << what;
    EXPECT_NE(what.find("meteor"), std::string::npos) << what;
  }
  try {
    dn::FaultPlan::from_json(R"({"version": 1, "events": [{"kind": "loss"}]})");
    FAIL() << "missing 'at' must throw";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("event 0"), std::string::npos)
        << e.what();
  }
  EXPECT_THROW(dn::FaultPlan::from_json("[]"), std::invalid_argument);
}

TEST(ChaosRepro, RoundTripPreservesSeedsAbove2To63) {
  ds::ChaosRepro repro;
  repro.protocol = "raft";
  repro.seed = 13579750587533850672ull;  // > 2^63: must not go through double
  repro.violation = "raft-commit-liveness: stalled";
  repro.plan.loss_burst(ds::seconds(10), 0.3, ds::seconds(20));
  const std::string once = repro.to_json();
  const ds::ChaosRepro back = ds::ChaosRepro::from_json(once);
  EXPECT_EQ(back.seed, 13579750587533850672ull);
  EXPECT_EQ(back.protocol, "raft");
  EXPECT_EQ(back.violation, repro.violation);
  EXPECT_EQ(back.to_json(), once);
}

// --- Liveness oracles: each fires on a seeded negative case ----------------

namespace {

template <typename Oracle>
ds::InvariantViolation expect_fires(Oracle make_oracle) {
  ds::Simulator sim;
  ds::InvariantChecker checker(sim);
  checker.add("oracle", make_oracle(sim));
  checker.start(ds::millis(100));
  sim.run_until(ds::seconds(2));
  checker.stop();
  EXPECT_FALSE(checker.ok());
  return checker.violations().empty() ? ds::InvariantViolation{}
                                      : checker.violations().front();
}

struct StubLeader {
  bool lead = false;
  bool is_leader() const { return lead; }
};
struct StubRsm {
  std::uint64_t execd = 0;
  std::uint64_t executed_count() const { return execd; }
};
struct StubGossip {
  bool on = true;
  bool seen = false;
  bool online() const { return on; }
  bool has_seen(std::uint64_t) const { return seen; }
};
struct StubChain {
  struct Tree {
    std::uint64_t h = 0;
    std::uint64_t best_height() const { return h; }
  } t;
  const Tree& tree() const { return t; }
};

}  // namespace

TEST(LivenessOracles, EachFiresWhenRecoveryNeverHappens) {
  StubLeader l0, l1;  // nobody ever leads
  const auto v1 = expect_fires([&](ds::Simulator& sim) {
    return ds::invariants::leader_elected_by(
        sim, std::vector<StubLeader*>{&l0, &l1}, ds::seconds(1));
  });
  EXPECT_NE(v1.detail.find("leader election"), std::string::npos);

  StubRsm r0, r1;  // stuck at 0 executions
  const auto v2 = expect_fires([&](ds::Simulator& sim) {
    return ds::invariants::commits_resume_by(
        sim, std::vector<StubRsm*>{&r0, &r1}, 5, 2, ds::seconds(1));
  });
  EXPECT_NE(v2.detail.find("commit progress"), std::string::npos);

  StubGossip g0, g1;
  g1.seen = false;  // one online node never hears the rumor
  g0.seen = true;
  const auto v3 = expect_fires([&](ds::Simulator& sim) {
    return ds::invariants::coverage_converges_by(
        sim, std::vector<StubGossip*>{&g0, &g1}, 7, ds::seconds(1));
  });
  EXPECT_NE(v3.detail.find("coverage"), std::string::npos);

  StubChain c0, c1;
  c1.t.h = 10;  // permanent 10-block fork
  const auto v4 = expect_fires([&](ds::Simulator& sim) {
    return ds::invariants::tips_converge_by(
        sim, std::vector<StubChain*>{&c0, &c1}, 2, ds::seconds(1));
  });
  EXPECT_NE(v4.detail.find("tip convergence"), std::string::npos);

  std::uint64_t count = 1;  // never reaches 3
  const auto v5 = expect_fires([&](ds::Simulator& sim) {
    return ds::invariants::count_reaches(
        sim, "lookup successes", [&] { return count; }, 3, ds::seconds(1));
  });
  EXPECT_NE(v5.detail.find("lookup successes"), std::string::npos);
}

TEST(LivenessOracles, SatisfactionLatchesBeforeDeadline) {
  ds::Simulator sim;
  ds::InvariantChecker checker(sim);
  bool up = false;
  checker.add("latch", ds::invariants::eventually(sim, "recovery",
                                                  ds::seconds(1),
                                                  [&] { return up; }));
  checker.start(ds::millis(100));
  // Condition true at 0.5 s, false again afterwards: sticky satisfaction
  // means no violation even when sampled past the deadline.
  sim.schedule_at(ds::millis(450), [&] { up = true; });
  sim.schedule_at(ds::millis(550), [&] { up = false; });
  sim.run_until(ds::seconds(2));
  checker.stop();
  EXPECT_TRUE(checker.ok());
}

// --- The acceptance fixture: planted bug -> detect -> shrink ---------------

namespace {

// A service with a planted recovery bug: the crash hook takes it down but
// the restart hook forgets to bring it back (lost re-registration). Any plan
// containing a crash clause trips the liveness oracle; every other fault
// family is irrelevant noise the shrinker must strip away.
ds::ChaosOutcome amnesiac_scenario(const dn::FaultPlan& plan,
                                   std::uint64_t seed) {
  ds::Simulator sim(seed);
  dn::Network net(sim, std::make_unique<dn::ConstantLatency>(ds::millis(5)));
  std::vector<dn::NodeId> addrs;
  for (int i = 0; i < 6; ++i) addrs.push_back(net.new_node_id());

  bool online = true;
  dn::FaultTargets targets;
  targets.nodes = addrs;
  targets.crash = [&](std::size_t) { online = false; };
  targets.restart = [&](std::size_t) { /* planted bug: no re-registration */ };
  dn::FaultScheduler faults(net, plan, std::move(targets));
  faults.start();

  // Arm the oracle at quiesce, as the bench does: `eventually` latches on
  // its first satisfied sample, and the service is healthy before the plan
  // begins.
  const ds::SimTime quiesce = ds::plan_quiesce_time(plan);
  const ds::SimTime deadline = quiesce + ds::seconds(5);
  ds::InvariantChecker checker(sim);
  sim.schedule_at(quiesce, [&] {
    checker.add("service-liveness",
                ds::invariants::eventually(sim, "service back online",
                                           deadline, [&] { return online; }));
  });
  checker.start(ds::millis(200));
  sim.run_until(deadline + ds::seconds(1));
  checker.check_now();
  checker.stop();

  ds::ChaosOutcome out;
  if (!checker.ok()) {
    out.ok = false;
    out.violation = checker.violations().front().invariant + ": " +
                    checker.violations().front().detail;
  }
  return out;
}

}  // namespace

TEST(ChaosShrink, PlantedBugDetectedAndShrunkToCrashClause) {
  ds::ChaosSpace space;
  space.nodes = 6;
  space.crashes = {1, 2};  // guarantee the bug is reachable
  const ds::ChaosEngine engine(space);

  const std::uint64_t seed = 42;
  const dn::FaultPlan plan = engine.sample_plan(seed);
  ASSERT_GE(plan.size(), 3u) << "fixture wants noise clauses to strip:\n"
                             << plan.to_json();

  const ds::ChaosOutcome out = amnesiac_scenario(plan, seed);
  ASSERT_FALSE(out.ok) << "oracle must detect the planted bug";
  EXPECT_NE(out.violation.find("service back online"), std::string::npos);

  const ds::ShrinkResult shrunk =
      engine.shrink(plan, seed, amnesiac_scenario);
  // Minimal repro: the crash+restart pair alone (one ddmin clause).
  EXPECT_LE(shrunk.stats.final_clauses, 2u);
  ASSERT_LE(shrunk.plan.size(), 2u) << shrunk.plan.to_json();
  for (const auto& ev : shrunk.plan.events()) {
    EXPECT_TRUE(ev.kind == dn::FaultEvent::Kind::Crash ||
                ev.kind == dn::FaultEvent::Kind::Restart)
        << dn::fault_kind_name(ev.kind);
  }
  EXPECT_FALSE(shrunk.violation.empty());
  ASSERT_FALSE(amnesiac_scenario(shrunk.plan, seed).ok)
      << "the shrunk plan must still trip the oracle";

  // Shrinking is deterministic: same inputs, byte-identical minimal plan.
  const ds::ShrinkResult again = engine.shrink(plan, seed, amnesiac_scenario);
  EXPECT_EQ(shrunk.plan.to_json(), again.plan.to_json());
  EXPECT_EQ(shrunk.stats.runs, again.stats.runs);
  EXPECT_EQ(shrunk.violation, again.violation);
}

TEST(ChaosShrink, PassingPlanIsRejected) {
  const ds::ChaosEngine engine{ds::ChaosSpace{}};
  dn::FaultPlan benign;  // no crash clause: the amnesiac service stays up
  benign.loss_burst(ds::seconds(10), 0.1, ds::seconds(20));
  EXPECT_THROW(engine.shrink(benign, 1, amnesiac_scenario), std::logic_error);
}
