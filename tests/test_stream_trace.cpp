// StreamingTraceSink + ShardedKernel spill contract tests.
//
// The streaming path must be invisible in the output: a StreamingTraceSink
// file is byte-identical to a JsonlTraceSink capture of the same run, and a
// sharded kernel with trace spilling enabled (bounded per-shard files,
// merged at finalize) reproduces the in-memory per-barrier merge byte for
// byte at any --sim-threads value — including across multiple run_until()
// calls, where drain-time sched records share a timestamp with the previous
// window but belong to the next batch. decentnet-trace must parse a
// streamed file like any other.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <memory>
#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "net/latency.hpp"
#include "net/network.hpp"
#include "overlay/gossip.hpp"
#include "sim/profiler.hpp"
#include "sim/sharding.hpp"
#include "sim/simulator.hpp"
#include "sim/time.hpp"
#include "sim/trace.hpp"
#include "trace_analysis.hpp"

namespace ds = decentnet::sim;
namespace dn = decentnet::net;
namespace ov = decentnet::overlay;
namespace tt = decentnet::tracetool;

namespace {

std::string temp_path(const std::string& name) {
  return ::testing::TempDir() + "decentnet_" + name;
}

std::string slurp(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

/// Gossip mesh over a sharded kernel, split across two run_until() calls
/// (the second broadcast is posted by the driver between runs, so the spill
/// carries records from two merges and between-run driver activity).
/// Traces to `sink`; spills per shard under `spill_prefix` when non-empty.
void sharded_workload(ds::TraceSink& sink, std::size_t shards,
                      std::size_t threads, const std::string& spill_prefix,
                      ds::Profiler* profiler = nullptr) {
  ds::ShardedKernel kernel(/*seed=*/11, shards);
  if (!spill_prefix.empty()) kernel.set_trace_spill(spill_prefix);
  kernel.set_trace(&sink);
  kernel.set_profiler(profiler);
  const std::size_t n = 24;
  dn::Network netw(kernel.shard(0),
                   std::make_unique<dn::ConstantLatency>(ds::millis(10)),
                   dn::NetworkConfig{.expected_nodes = n}, nullptr);
  netw.enable_sharding(kernel);
  std::vector<dn::NodeId> addrs(n);
  for (std::size_t i = 0; i < n; ++i) addrs[i] = netw.new_node_id();
  for (std::size_t i = 0; i < n; ++i) netw.register_node(addrs[i]);
  ov::GossipConfig cfg;
  cfg.fanout = 3;
  std::vector<std::unique_ptr<ov::GossipNode>> nodes;
  for (std::size_t i = 0; i < n; ++i) {
    nodes.push_back(std::make_unique<ov::GossipNode>(netw, addrs[i], cfg));
    std::vector<dn::NodeId> view;
    for (std::size_t d = 1; d <= 4; ++d) view.push_back(addrs[(i + d) % n]);
    nodes.back()->join(view);
  }
  netw.simulator_for(addrs[0]).post(ds::millis(1), [&] {
    nodes[0]->broadcast(/*rumor=*/1, /*payload_bytes=*/64);
  });
  kernel.run_until(ds::seconds(15), threads);
  netw.simulator_for(addrs[5]).post(ds::seconds(16), [&] {
    nodes[5]->broadcast(/*rumor=*/2, /*payload_bytes=*/64);
  });
  kernel.run_until(ds::seconds(30), threads);
}

std::string sharded_buffered(std::size_t shards, std::size_t threads) {
  std::ostringstream out;
  {
    ds::JsonlTraceSink sink(out);
    sharded_workload(sink, shards, threads, "");
  }
  return out.str();
}

std::string sharded_spilled(std::size_t shards, std::size_t threads,
                            const std::string& tag) {
  const std::string path = temp_path("spill_" + tag + ".jsonl");
  {
    ds::StreamingTraceSink sink(path, /*chunk_bytes=*/4096);
    sharded_workload(sink, shards, threads, path + ".spill");
  }
  const std::string bytes = slurp(path);
  std::remove(path.c_str());
  return bytes;
}

}  // namespace

TEST(StreamTrace, MatchesJsonlAcrossChunkBoundaries) {
  // A chunk size smaller than one serialized record forces a flush on
  // every append; the output must still be the exact JsonlTraceSink bytes.
  const std::string path = temp_path("chunks.jsonl");
  std::ostringstream expected;
  {
    ds::JsonlTraceSink jsonl(expected);
    ds::StreamingTraceSink stream(path, /*chunk_bytes=*/48);
    for (int i = 0; i < 100; ++i) {
      const ds::TraceRecord rec{/*t=*/i * 10, "fire", "test/step",
                                static_cast<std::uint64_t>(i),
                                static_cast<std::uint64_t>(i * 2), 0,
                                /*bytes=*/64};
      jsonl.record(rec);
      stream.record(rec);
    }
    EXPECT_EQ(stream.records_written(), 100u);
    EXPECT_GE(stream.chunks_flushed(), 99u);  // every record overflows 48 B
  }
  EXPECT_EQ(slurp(path), expected.str());
  std::remove(path.c_str());
}

TEST(StreamTrace, FlushMakesPartialChunkVisible) {
  const std::string path = temp_path("partial.jsonl");
  ds::StreamingTraceSink sink(path, /*chunk_bytes=*/1 << 20);
  sink.record({0, "fire", "test/one", 1, 0, 0, 0});
  EXPECT_EQ(sink.chunks_flushed(), 0u);  // still buffered
  sink.flush();
  const std::string bytes = slurp(path);
  EXPECT_EQ(bytes, "{\"t\":0,\"kind\":\"fire\",\"tag\":\"test/one\",\"id\":1}\n");
  std::remove(path.c_str());
}

TEST(StreamTrace, RejectsZeroChunkAndUnwritablePath) {
  EXPECT_THROW(ds::StreamingTraceSink("/nonexistent-dir/x.jsonl", 4096),
               std::runtime_error);
  EXPECT_THROW(ds::StreamingTraceSink(temp_path("zero.jsonl"), 0),
               std::runtime_error);
}

TEST(StreamTrace, SingleKernelWorkloadByteIdentical) {
  // Same seed, same workload: the streamed file is the buffered string.
  auto workload = [](ds::TraceSink& sink) {
    ds::Simulator simu(5);
    simu.set_trace(&sink);
    dn::Network netw(simu,
                     std::make_unique<dn::ConstantLatency>(ds::millis(10)),
                     dn::NetworkConfig{}, nullptr);
    std::vector<dn::NodeId> addrs(12);
    for (auto& a : addrs) a = netw.new_node_id();
    ov::GossipConfig cfg;
    cfg.fanout = 3;
    std::vector<std::unique_ptr<ov::GossipNode>> nodes;
    for (std::size_t i = 0; i < addrs.size(); ++i) {
      nodes.push_back(std::make_unique<ov::GossipNode>(netw, addrs[i], cfg));
      nodes.back()->join({addrs[(i + 1) % addrs.size()],
                          addrs[(i + 5) % addrs.size()]});
    }
    simu.post(ds::millis(1), [&] { nodes[0]->broadcast(1, 64); });
    simu.run_until(ds::seconds(20));
  };
  std::ostringstream expected;
  {
    ds::JsonlTraceSink sink(expected);
    workload(sink);
  }
  const std::string path = temp_path("single.jsonl");
  {
    ds::StreamingTraceSink sink(path, /*chunk_bytes=*/1024);
    workload(sink);
  }
  EXPECT_FALSE(expected.str().empty());
  EXPECT_EQ(slurp(path), expected.str());
  std::remove(path.c_str());
}

TEST(StreamTrace, ShardedSpillByteIdenticalAcrossThreadCounts) {
  const std::string buffered = sharded_buffered(4, 1);
  EXPECT_FALSE(buffered.empty());
  EXPECT_NE(buffered.find("\"send\""), std::string::npos);
  EXPECT_EQ(sharded_spilled(4, 1, "t1"), buffered);
  EXPECT_EQ(sharded_spilled(4, 2, "t2"), buffered);
  EXPECT_EQ(sharded_spilled(4, 4, "t4"), buffered);
}

TEST(StreamTrace, ProfileComposesWithStreamedTrace) {
  // --profile and --stream-trace together on a sharded kernel: the profiled
  // drain path must not disturb a single traced byte at any thread count,
  // and the profiler must actually collect samples (a silent no-op would
  // also pass a pure byte-compare).
  const std::string buffered = sharded_buffered(4, 1);
  EXPECT_FALSE(buffered.empty());
  for (const std::size_t threads : {std::size_t{1}, std::size_t{2}}) {
    const std::string path =
        temp_path("prof_spill_t" + std::to_string(threads) + ".jsonl");
    ds::Profiler prof;
    {
      ds::StreamingTraceSink sink(path, /*chunk_bytes=*/4096);
      sharded_workload(sink, 4, threads, path + ".spill", &prof);
    }
    EXPECT_EQ(slurp(path), buffered) << "threads=" << threads;
    EXPECT_FALSE(prof.empty()) << "threads=" << threads;
    EXPECT_GT(prof.total().events, 100u) << "threads=" << threads;
    std::remove(path.c_str());
  }
}

TEST(StreamTrace, SpillFilesAreRemovedOnTeardown) {
  const std::string path = temp_path("cleanup.jsonl");
  {
    ds::StreamingTraceSink sink(path, 4096);
    sharded_workload(sink, 2, 1, path + ".spill");
    // Spill files exist while the kernel is alive... (scope end tears the
    // kernel down inside sharded_workload, so check the merged output
    // instead; the shard files must be gone afterwards.)
  }
  std::ifstream shard0(path + ".spill.shard0");
  EXPECT_FALSE(shard0.good());
  std::remove(path.c_str());
}

TEST(StreamTrace, TraceToolParsesStreamedFile) {
  const std::string path = temp_path("tool.jsonl");
  {
    ds::StreamingTraceSink sink(path, 4096);
    sharded_workload(sink, 4, 2, path + ".spill");
  }
  std::ifstream in(path);
  const std::vector<tt::Record> recs = tt::parse_jsonl(in);
  EXPECT_GT(recs.size(), 100u);
  bool saw_send = false, saw_fire = false;
  for (const auto& r : recs) {
    if (r.kind == "send") saw_send = true;
    if (r.kind == "fire") saw_fire = true;
  }
  EXPECT_TRUE(saw_send);
  EXPECT_TRUE(saw_fire);
  std::remove(path.c_str());
}
