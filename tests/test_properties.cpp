// Randomized property tests: invariants that must hold under arbitrary
// operation sequences, checked over many seeded runs.
#include <gtest/gtest.h>

#include <algorithm>
#include <unordered_set>

#include "chain/blocktree.hpp"
#include "chain/ledger.hpp"
#include "chain/mempool.hpp"
#include "chain/wallet.hpp"
#include "sim/rng.hpp"
#include "sim/simulator.hpp"

namespace dc = decentnet::chain;
namespace ds = decentnet::sim;

// --- UTXO owner-index consistency ---------------------------------------------

class UtxoIndexProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(UtxoIndexProperty, IndexMatchesScanAfterRandomOps) {
  ds::Rng rng(GetParam());
  std::vector<dc::Wallet> wallets;
  for (int i = 0; i < 4; ++i) {
    wallets.push_back(dc::Wallet::from_seed(GetParam() * 10 + static_cast<std::uint64_t>(i)));
  }
  std::vector<std::pair<decentnet::crypto::PublicKey, dc::Amount>> premine;
  for (const auto& w : wallets) {
    for (int k = 0; k < 5; ++k) premine.emplace_back(w.address(), 1000);
  }
  dc::UtxoSet utxo;
  const auto genesis = dc::make_genesis_multi(premine, 1.0);
  ASSERT_TRUE(std::holds_alternative<dc::BlockUndo>(
      utxo.apply_block(*genesis, 0)));

  // Random payments, applied directly; occasionally apply+revert a block.
  std::uint64_t nonce = 0;
  for (int step = 0; step < 60; ++step) {
    const auto& from = wallets[rng.uniform_int(wallets.size())];
    const auto& to = wallets[rng.uniform_int(wallets.size())];
    const auto tx = from.pay(utxo, to.address(),
                             static_cast<dc::Amount>(1 + rng.uniform_int(500ul)),
                             0, ++nonce, &rng);
    if (!tx) continue;
    if (rng.chance(0.3)) {
      // Route through a block and sometimes revert it.
      dc::Block b;
      b.header.prev = genesis->id();
      b.header.difficulty = 1;
      b.txs.push_back(dc::make_coinbase(wallets[0].address(), 10, nonce));
      b.txs.push_back(*tx);
      b.header.merkle_root = b.compute_merkle_root();
      auto res = utxo.apply_block(b, 10);
      ASSERT_TRUE(std::holds_alternative<dc::BlockUndo>(res));
      if (rng.chance(0.5)) {
        utxo.revert_block(b, std::get<dc::BlockUndo>(res));
      }
    } else {
      ASSERT_FALSE(utxo.apply_transaction(*tx).has_value());
    }
    // Invariant: per-owner balances via the index equal a full scan, and
    // the sum of balances equals the sum of all UTXO amounts.
    dc::Amount total_by_owner = 0;
    for (const auto& w : wallets) {
      const auto outs = utxo.outputs_of(w.address());
      dc::Amount from_outputs = 0;
      for (const auto& [op, out] : outs) {
        const auto direct = utxo.get(op);
        ASSERT_TRUE(direct.has_value()) << "index points at spent output";
        EXPECT_EQ(direct->amount, out.amount);
        from_outputs += out.amount;
      }
      EXPECT_EQ(utxo.balance_of(w.address()), from_outputs);
      total_by_owner += from_outputs;
    }
    EXPECT_GT(total_by_owner, 0);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, UtxoIndexProperty,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8));

// --- BlockTree fork choice ------------------------------------------------------

class BlockTreeProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(BlockTreeProperty, BestTipMaximizesWorkOverValidChains) {
  ds::Rng rng(GetParam());
  const dc::Wallet w = dc::Wallet::from_seed(0xB10C);
  auto genesis = dc::make_genesis(w.address(), 10, 1.0);
  dc::BlockTree tree(genesis);
  std::vector<dc::BlockPtr> all{genesis};
  std::unordered_set<std::size_t> invalid_idx;

  for (int step = 0; step < 120; ++step) {
    // Attach a new block to a random existing one.
    const std::size_t parent = rng.uniform_int(all.size());
    dc::Block b;
    b.header.prev = all[parent]->id();
    b.header.difficulty = 1.0 + rng.uniform() * 3.0;
    b.txs.push_back(dc::make_coinbase(w.address(), 5,
                                      static_cast<std::uint64_t>(step) + 1));
    b.header.merkle_root = b.compute_merkle_root();
    auto ptr = std::make_shared<const dc::Block>(std::move(b));
    ASSERT_TRUE(tree.insert(ptr));
    all.push_back(ptr);
    if (rng.chance(0.05)) {
      const std::size_t victim = 1 + rng.uniform_int(all.size() - 1);
      tree.mark_invalid(all[victim]->id());
      invalid_idx.insert(victim);
    }

    // Recompute ground truth: for every block, cumulative work and
    // whether its ancestry touches an invalidated block.
    double best_work = -1;
    for (std::size_t i = 0; i < all.size(); ++i) {
      double work = 0;
      bool tainted = false;
      const dc::Block* cur = all[i].get();
      std::size_t cur_idx = i;
      for (;;) {
        if (invalid_idx.count(cur_idx) > 0) tainted = true;
        if (cur_idx != 0) work += cur->header.difficulty;
        if (cur_idx == 0) break;
        // find parent index
        for (std::size_t j = 0; j < all.size(); ++j) {
          if (all[j]->id() == cur->header.prev) {
            cur_idx = j;
            cur = all[j].get();
            break;
          }
        }
      }
      if (!tainted) best_work = std::max(best_work, work);
    }
    EXPECT_NEAR(tree.entry(tree.best_tip()).cumulative_work, best_work, 1e-9)
        << "fork choice deviated from max-valid-work at step " << step;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, BlockTreeProperty,
                         ::testing::Values(11, 12, 13, 14));

// --- Mempool block selection ------------------------------------------------------

class MempoolProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(MempoolProperty, SelectionIsConflictFreeAndWithinBudget) {
  ds::Rng rng(GetParam());
  std::vector<dc::Wallet> wallets;
  std::vector<std::pair<decentnet::crypto::PublicKey, dc::Amount>> premine;
  for (int i = 0; i < 6; ++i) {
    wallets.push_back(dc::Wallet::from_seed(0x77000 + GetParam() * 100 +
                                            static_cast<std::uint64_t>(i)));
    for (int k = 0; k < 8; ++k) {
      premine.emplace_back(wallets.back().address(), 500);
    }
  }
  dc::UtxoSet utxo;
  const auto genesis = dc::make_genesis_multi(premine, 1.0);
  ASSERT_TRUE(std::holds_alternative<dc::BlockUndo>(
      utxo.apply_block(*genesis, 0)));
  dc::Mempool pool;
  std::uint64_t nonce = 0;
  for (int i = 0; i < 80; ++i) {
    const auto& from = wallets[rng.uniform_int(wallets.size())];
    const auto& to = wallets[rng.uniform_int(wallets.size())];
    const auto tx =
        from.pay(utxo, to.address(),
                 static_cast<dc::Amount>(1 + rng.uniform_int(100ul)),
                 static_cast<dc::Amount>(rng.uniform_int(20ul)), ++nonce,
                 &rng);
    if (tx) pool.add(*tx, utxo);
  }
  const std::size_t budget = 1500;
  const auto selected = pool.select_for_block(utxo, budget);
  // No two selected txs spend the same outpoint; total size within budget.
  std::unordered_set<dc::OutPoint, dc::OutPointHasher> spent;
  std::size_t bytes = 0;
  for (const auto& tx : selected) {
    bytes += tx.wire_size();
    for (const auto& in : tx.inputs) {
      EXPECT_TRUE(spent.insert(in.prevout).second)
          << "double spend selected into one block";
    }
  }
  EXPECT_LE(bytes, budget);
  // Fee-rate monotonicity: the cheapest selected tx is no cheaper than any
  // excluded non-conflicting tx that would still have fit.
  // (Greedy guarantee; spot-checked by construction of the selection.)
  SUCCEED();
}

INSTANTIATE_TEST_SUITE_P(Seeds, MempoolProperty,
                         ::testing::Values(21, 22, 23, 24, 25, 26));

// --- Simulator stress ---------------------------------------------------------------

class SimulatorProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(SimulatorProperty, RandomScheduleCancelPreservesOrder) {
  ds::Rng rng(GetParam());
  ds::Simulator sim(GetParam());
  std::vector<ds::SimTime> fired;
  std::vector<ds::EventHandle> handles;
  for (int i = 0; i < 2000; ++i) {
    const auto when = static_cast<ds::SimDuration>(rng.uniform_int(100000ul));
    handles.push_back(
        sim.schedule(when, [&fired, &sim] { fired.push_back(sim.now()); }));
  }
  // Cancel a random third.
  std::size_t cancelled = 0;
  for (auto& h : handles) {
    if (rng.chance(1.0 / 3.0) && h.valid()) {
      h.cancel();
      ++cancelled;
    }
  }
  sim.run_all();
  EXPECT_EQ(fired.size(), 2000 - cancelled);
  EXPECT_TRUE(std::is_sorted(fired.begin(), fired.end()));
}

INSTANTIATE_TEST_SUITE_P(Seeds, SimulatorProperty,
                         ::testing::Values(31, 32, 33, 34));
