// Networked blockchain tests: a mesh of full nodes with miners converges on
// one chain, transactions travel gossip -> mempool -> block -> every ledger,
// partitions cause forks that heal by reorg, and light clients verify
// inclusion proofs.
#include <gtest/gtest.h>

#include <memory>
#include <unordered_set>
#include <vector>

#include "chain/light.hpp"
#include "chain/miner.hpp"
#include "chain/node.hpp"
#include "chain/wallet.hpp"
#include "net/topology.hpp"

namespace dc = decentnet::chain;
namespace dn = decentnet::net;
namespace ds = decentnet::sim;

namespace {

struct ChainNet {
  ds::Simulator sim{2024};
  dn::Network net{sim, std::make_unique<dn::ConstantLatency>(ds::millis(50))};
  dc::ChainParams params;
  dc::Wallet alice = dc::Wallet::from_seed(0xAA11);
  dc::Wallet bob = dc::Wallet::from_seed(0xBB22);
  dc::Wallet miner_payout = dc::Wallet::from_seed(0xCC33);
  dc::BlockPtr genesis;
  std::vector<std::unique_ptr<dc::FullNode>> nodes;
  std::vector<std::unique_ptr<dc::Miner>> miners;

  explicit ChainNet(std::size_t n, std::size_t n_miners,
                    ds::SimDuration block_interval = ds::seconds(30)) {
    params.target_block_interval = block_interval;
    params.retarget_window = 0;  // fixed difficulty for test determinism
    params.initial_difficulty = 1e6;
    std::vector<std::pair<decentnet::crypto::PublicKey, dc::Amount>> premine;
    for (int i = 0; i < 50; ++i) premine.emplace_back(alice.address(), 10000);
    genesis = dc::make_genesis_multi(premine, params.initial_difficulty);

    std::vector<dn::NodeId> addrs;
    for (std::size_t i = 0; i < n; ++i) addrs.push_back(net.new_node_id());
    ds::Rng rng(3);
    const auto adj = dn::random_graph(n, 4, rng);
    for (std::size_t i = 0; i < n; ++i) {
      nodes.push_back(
          std::make_unique<dc::FullNode>(net, addrs[i], params, genesis));
      std::vector<dn::NodeId> nbrs;
      for (std::size_t j : adj[i]) nbrs.push_back(addrs[j]);
      nodes.back()->connect(std::move(nbrs));
    }
    // Hashrate chosen so blocks appear every ~block_interval.
    const double total_rate =
        params.initial_difficulty / ds::to_seconds(block_interval);
    for (std::size_t i = 0; i < n_miners; ++i) {
      miners.push_back(std::make_unique<dc::Miner>(
          *nodes[i], miner_payout.address(),
          total_rate / static_cast<double>(n_miners)));
      miners.back()->start();
    }
  }

  bool all_same_tip() const {
    for (const auto& n : nodes) {
      if (!(n->tree().best_tip() == nodes[0]->tree().best_tip())) return false;
    }
    return true;
  }
};

}  // namespace

TEST(ChainNetwork, MinersProduceBlocksAtTargetRate) {
  ChainNet cn(10, 3, ds::seconds(20));
  cn.sim.run_until(ds::minutes(30));
  const auto height = cn.nodes[0]->tree().best_height();
  // 30 min at 20 s/block ~ 90 blocks; exponential variance is wide, accept
  // a broad band.
  EXPECT_GT(height, 50u);
  EXPECT_LT(height, 150u);
}

TEST(ChainNetwork, AllNodesConvergeOnOneChain) {
  ChainNet cn(15, 4);
  cn.sim.run_until(ds::minutes(20));
  for (auto& m : cn.miners) m->stop();
  cn.sim.run_until(cn.sim.now() + ds::minutes(1));  // drain in-flight blocks
  EXPECT_TRUE(cn.all_same_tip());
  EXPECT_GT(cn.nodes[0]->tree().best_height(), 10u);
}

TEST(ChainNetwork, TransactionReachesEveryLedger) {
  ChainNet cn(12, 3);
  cn.sim.run_until(ds::minutes(2));
  const auto tx =
      cn.alice.pay(cn.nodes[5]->utxo(), cn.bob.address(), 2500, 50);
  ASSERT_TRUE(tx.has_value());
  ASSERT_TRUE(cn.nodes[5]->submit_transaction(*tx));
  cn.sim.run_until(cn.sim.now() + ds::minutes(15));
  for (auto& m : cn.miners) m->stop();
  cn.sim.run_until(cn.sim.now() + ds::minutes(1));
  for (const auto& n : cn.nodes) {
    EXPECT_EQ(n->utxo().balance_of(cn.bob.address()), 2500);
  }
}

TEST(ChainNetwork, MinerCollectsRewardAndFees) {
  ChainNet cn(8, 2);
  cn.sim.run_until(ds::minutes(2));
  const auto tx =
      cn.alice.pay(cn.nodes[0]->utxo(), cn.bob.address(), 100, 77);
  ASSERT_TRUE(tx.has_value());
  cn.nodes[0]->submit_transaction(*tx);
  cn.sim.run_until(cn.sim.now() + ds::minutes(20));
  const dc::Amount payout =
      cn.nodes[0]->utxo().balance_of(cn.miner_payout.address());
  const auto height = cn.nodes[0]->tree().best_height();
  // At least height * reward (some blocks may be stale) plus the fee.
  EXPECT_GE(payout, static_cast<dc::Amount>(height) *
                        cn.params.block_reward);
}

TEST(ChainNetwork, PartitionForksThenHeals) {
  ChainNet cn(10, 4, ds::seconds(15));
  cn.sim.run_until(ds::minutes(5));
  // Split the network so each side keeps two of the four miners
  // (miners live on nodes 0-3).
  std::unordered_set<std::uint64_t> side_a;
  for (std::size_t i : {0u, 1u, 4u, 5u, 6u}) {
    side_a.insert(cn.nodes[i]->addr().value);
  }
  cn.net.set_partition(side_a);
  cn.sim.run_until(cn.sim.now() + ds::minutes(15));
  // The two sides should have diverged.
  EXPECT_FALSE(cn.nodes[0]->tree().best_tip() == cn.nodes[9]->tree().best_tip());
  // Heal and let the longer chain win everywhere.
  cn.net.clear_partition();
  cn.sim.run_until(cn.sim.now() + ds::minutes(10));
  for (auto& m : cn.miners) m->stop();
  cn.sim.run_until(cn.sim.now() + ds::minutes(2));
  EXPECT_TRUE(cn.all_same_tip());
  // Someone must have reorged.
  std::uint64_t reorgs = 0;
  for (const auto& n : cn.nodes) reorgs += n->stats().reorgs;
  EXPECT_GT(reorgs, 0u);
}

TEST(ChainNetwork, DoubleSpendOnlyOneBranchSurvives) {
  ChainNet cn(10, 3);
  cn.sim.run_until(ds::minutes(2));
  // Two conflicting txs injected at opposite ends of the mesh.
  const auto tx1 =
      cn.alice.pay(cn.nodes[0]->utxo(), cn.bob.address(), 9000, 10);
  ASSERT_TRUE(tx1.has_value());
  dc::Transaction tx2;
  tx2.inputs = tx1->inputs;
  tx2.outputs.push_back(
      dc::TxOutput{9000, dc::Wallet::from_seed(0xE411).address()});
  dc::sign_inputs(tx2, cn.alice.key());
  cn.nodes[0]->submit_transaction(*tx1);
  cn.nodes[9]->submit_transaction(tx2);
  cn.sim.run_until(cn.sim.now() + ds::minutes(30));
  for (auto& m : cn.miners) m->stop();
  cn.sim.run_until(cn.sim.now() + ds::minutes(2));
  // Exactly one of the two destinations got funded, on every node.
  const dc::Amount bob = cn.nodes[3]->utxo().balance_of(cn.bob.address());
  const dc::Amount evil = cn.nodes[3]->utxo().balance_of(
      dc::Wallet::from_seed(0xE411).address());
  EXPECT_TRUE((bob == 9000) != (evil == 9000))
      << "bob=" << bob << " evil=" << evil;
}

TEST(ChainNetwork, InvalidBlockRejectedByPeers) {
  ChainNet cn(6, 0);
  // Hand-craft a block with a bogus coinbase (too large a reward).
  dc::Block bad;
  bad.header.prev = cn.genesis->id();
  bad.header.difficulty = cn.params.initial_difficulty;
  bad.header.timestamp = 0;
  bad.txs.push_back(dc::make_coinbase(cn.bob.address(),
                                      cn.params.block_reward * 100, 1));
  bad.header.merkle_root = bad.compute_merkle_root();
  cn.nodes[0]->submit_block(std::make_shared<const dc::Block>(bad));
  cn.sim.run_until(ds::minutes(1));
  for (const auto& n : cn.nodes) {
    EXPECT_EQ(n->tree().best_height(), 0u)
        << "no node should extend onto the invalid block";
    EXPECT_EQ(n->utxo().balance_of(cn.bob.address()), 0);
  }
}

TEST(ChainNetwork, WrongDifficultyBlockRejected) {
  ChainNet cn(4, 0);
  dc::Block bad;
  bad.header.prev = cn.genesis->id();
  bad.header.difficulty = 1.0;  // far below the required difficulty
  bad.txs.push_back(dc::make_coinbase(cn.bob.address(), 10, 1));
  bad.header.merkle_root = bad.compute_merkle_root();
  EXPECT_FALSE(
      cn.nodes[0]->submit_block(std::make_shared<const dc::Block>(bad)));
  EXPECT_EQ(cn.nodes[0]->stats().blocks_rejected, 1u);
}

TEST(ChainNetwork, OrphanBlocksResolveOnParentArrival) {
  ChainNet cn(2, 0);
  // Build a 2-block chain locally and feed the child before the parent.
  dc::Block parent = cn.nodes[0]->make_block_template(cn.bob.address(), 1);
  auto parent_ptr = std::make_shared<const dc::Block>(parent);
  // Temporarily adopt the parent on node 0 to build the child template.
  ASSERT_TRUE(cn.nodes[0]->submit_block(parent_ptr));
  dc::Block child = cn.nodes[0]->make_block_template(cn.bob.address(), 2);
  auto child_ptr = std::make_shared<const dc::Block>(child);
  ASSERT_TRUE(cn.nodes[0]->submit_block(child_ptr));
  // Node 1 hears about them out of order (direct host access).
  auto& n1 = *cn.nodes[1];
  cn.sim.run_until(ds::seconds(1));
  // Drop any gossip that already arrived; build a fresh node instead.
  dc::FullNode fresh(cn.net, cn.net.new_node_id(), cn.params, cn.genesis);
  fresh.connect({cn.nodes[0]->addr()});
  (void)n1;
  fresh.handle_message(decentnet::net::make_message<dc::chain_msg::BlockMsg>(
      cn.nodes[0]->addr(), fresh.addr(), 100,
      dc::chain_msg::BlockMsg{child_ptr}));
  EXPECT_EQ(fresh.tree().best_height(), 0u);  // orphan held back
  fresh.handle_message(decentnet::net::make_message<dc::chain_msg::BlockMsg>(
      cn.nodes[0]->addr(), fresh.addr(), 100,
      dc::chain_msg::BlockMsg{parent_ptr}));
  EXPECT_EQ(fresh.tree().best_height(), 2u);  // both connected
}

TEST(ChainNetwork, LightClientVerifiesInclusion) {
  ChainNet cn(6, 2);
  // Light client follows node 0's headers.
  dc::LightNode light(cn.net, cn.net.new_node_id());
  light.set_server(cn.nodes[0]->addr());
  cn.nodes[0]->add_light_client(light.addr());
  cn.sim.run_until(ds::minutes(2));
  const auto tx =
      cn.alice.pay(cn.nodes[0]->utxo(), cn.bob.address(), 123, 10);
  ASSERT_TRUE(tx.has_value());
  cn.nodes[0]->submit_transaction(*tx);
  cn.sim.run_until(cn.sim.now() + ds::minutes(20));
  ASSERT_GT(light.headers_received(), 0u);
  bool verified = false;
  bool done = false;
  light.verify_inclusion(tx->id(), [&](bool ok) {
    done = true;
    verified = ok;
  });
  cn.sim.run_until(cn.sim.now() + ds::minutes(1));
  ASSERT_TRUE(done);
  EXPECT_TRUE(verified);
}

TEST(ChainNetwork, LightClientRejectsAbsentTransaction) {
  ChainNet cn(4, 1);
  dc::LightNode light(cn.net, cn.net.new_node_id());
  light.set_server(cn.nodes[0]->addr());
  cn.nodes[0]->add_light_client(light.addr());
  cn.sim.run_until(ds::minutes(5));
  bool done = false;
  light.verify_inclusion(decentnet::crypto::sha256("never happened"),
                         [&](bool ok) {
                           done = true;
                           EXPECT_FALSE(ok);
                         });
  cn.sim.run_until(cn.sim.now() + ds::minutes(1));
  EXPECT_TRUE(done);
}

TEST(ChainNetwork, StaleRateRisesWithFastBlocks) {
  // E10 in miniature: 2 s blocks on a 50 ms-latency mesh fork much more
  // than 60 s blocks.
  ChainNet fast(12, 4, ds::seconds(2));
  fast.sim.run_until(ds::minutes(20));
  const double fast_stale =
      static_cast<double>(fast.nodes[0]->tree().stale_count()) /
      static_cast<double>(fast.nodes[0]->tree().size());

  ChainNet slow(12, 4, ds::seconds(60));
  slow.sim.run_until(ds::minutes(20));
  const double slow_stale =
      static_cast<double>(slow.nodes[0]->tree().stale_count()) /
      static_cast<double>(slow.nodes[0]->tree().size());
  EXPECT_GT(fast_stale, slow_stale);
}

TEST(ChainNetwork, CompactRelayConvergesAndSavesBandwidth) {
  auto run = [](bool compact) {
    ChainNet cn(10, 3);
    for (auto& n : cn.nodes) n->set_compact_relay(compact);
    cn.sim.run_until(ds::minutes(2));
    // Generate enough traffic that blocks carry bodies worth compressing.
    for (int i = 0; i < 30; ++i) {
      const auto tx = cn.alice.pay(cn.nodes[0]->utxo(), cn.bob.address(),
                                   100 + i, 5);
      if (tx) cn.nodes[0]->submit_transaction(*tx);
      cn.sim.run_until(cn.sim.now() + ds::seconds(20));
    }
    cn.sim.run_until(cn.sim.now() + ds::minutes(20));
    for (auto& m : cn.miners) m->stop();
    cn.sim.run_until(cn.sim.now() + ds::minutes(2));
    EXPECT_TRUE(cn.all_same_tip()) << "compact=" << compact;
    EXPECT_GT(cn.nodes[9]->confirmed_tx_count(), 10u);
    return cn.net.bytes_sent();
  };
  const auto full_bytes = run(false);
  const auto compact_bytes = run(true);
  EXPECT_LT(compact_bytes, full_bytes)
      << "compact relay must reduce total traffic";
}

TEST(ChainNetwork, CompactRelayRecoversMissingBodies) {
  // A node that never saw the txs (empty mempool) must fetch the bodies
  // and still converge.
  ChainNet cn(4, 1);
  for (auto& n : cn.nodes) n->set_compact_relay(true);
  cn.sim.run_until(ds::minutes(1));
  // Submit txs only at the miner's node and immediately mine: the other
  // nodes may learn the tx and block in either order.
  const auto tx = cn.alice.pay(cn.nodes[0]->utxo(), cn.bob.address(), 777, 5);
  ASSERT_TRUE(tx.has_value());
  cn.nodes[0]->submit_transaction(*tx);
  cn.sim.run_until(cn.sim.now() + ds::minutes(30));
  for (auto& m : cn.miners) m->stop();
  cn.sim.run_until(cn.sim.now() + ds::minutes(2));
  for (const auto& n : cn.nodes) {
    EXPECT_EQ(n->utxo().balance_of(cn.bob.address()), 777);
  }
}
