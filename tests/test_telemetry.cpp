// sim::Telemetry contract tests.
//
// The series stream is a pure function of the simulation: gauges and
// windowed counter-rates sampled at fixed sim-time boundaries, emitted in
// (shard, name) order within a boundary, byte-identical on a sharded kernel
// at any --sim-threads value, and entirely absent — with golden traces
// untouched — when telemetry is off. The decentnet-trace timeline analyzer
// is byte-pinned on a hand-written fixture so its output format is part of
// the contract too.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "net/latency.hpp"
#include "net/network.hpp"
#include "overlay/gossip.hpp"
#include "sim/metrics.hpp"
#include "sim/sharding.hpp"
#include "sim/simulator.hpp"
#include "sim/telemetry.hpp"
#include "sim/time.hpp"
#include "sim/trace.hpp"
#include "trace_analysis.hpp"

namespace ds = decentnet::sim;
namespace dn = decentnet::net;
namespace ov = decentnet::overlay;
namespace tt = decentnet::tracetool;

namespace {

std::string temp_path(const std::string& name) {
  return ::testing::TempDir() + "decentnet_" + name;
}

std::string slurp(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

/// Gossip mesh over a sharded kernel (same shape as the stream-trace
/// tests): two run_until() calls with a driver-posted broadcast between
/// them. Traces to `trace` when non-null; telemetry via `tel` when non-null
/// (installed before the run, with a per-shard coverage gauge registered
/// after set_telemetry — which resets the registry, like the benches).
void sharded_workload(std::size_t shards, std::size_t threads,
                      ds::TraceSink* trace, ds::Telemetry* tel) {
  ds::ShardedKernel kernel(/*seed=*/11, shards);
  kernel.set_trace(trace);
  const std::size_t n = 24;
  dn::Network netw(kernel.shard(0),
                   std::make_unique<dn::ConstantLatency>(ds::millis(10)),
                   dn::NetworkConfig{.expected_nodes = n}, nullptr);
  netw.enable_sharding(kernel);
  std::vector<dn::NodeId> addrs(n);
  for (std::size_t i = 0; i < n; ++i) addrs[i] = netw.new_node_id();
  for (std::size_t i = 0; i < n; ++i) netw.register_node(addrs[i]);
  if (tel != nullptr) {
    kernel.set_telemetry(tel);
    netw.register_telemetry(*tel);
  }
  ov::GossipConfig cfg;
  cfg.fanout = 3;
  std::vector<std::unique_ptr<ov::GossipNode>> nodes;
  for (std::size_t i = 0; i < n; ++i) {
    nodes.push_back(std::make_unique<ov::GossipNode>(netw, addrs[i], cfg));
    std::vector<dn::NodeId> view;
    for (std::size_t d = 1; d <= 4; ++d) view.push_back(addrs[(i + d) % n]);
    nodes.back()->join(view);
  }
  netw.simulator_for(addrs[0]).post(ds::millis(1), [&] {
    nodes[0]->broadcast(/*rumor=*/1, /*payload_bytes=*/64);
  });
  kernel.run_until(ds::seconds(15), threads);
  netw.simulator_for(addrs[5]).post(ds::seconds(16), [&] {
    nodes[5]->broadcast(/*rumor=*/2, /*payload_bytes=*/64);
  });
  kernel.run_until(ds::seconds(30), threads);
}

std::string sharded_series(std::size_t shards, std::size_t threads,
                           const std::string& tag) {
  const std::string path = temp_path("tel_" + tag + ".jsonl");
  {
    ds::SeriesSink sink(path, /*chunk_bytes=*/4096);
    ds::Telemetry tel(sink, ds::seconds(1));
    sharded_workload(shards, threads, nullptr, &tel);
  }
  const std::string bytes = slurp(path);
  std::remove(path.c_str());
  return bytes;
}

std::string sharded_trace(std::size_t shards, ds::Telemetry* tel) {
  std::ostringstream out;
  {
    ds::JsonlTraceSink sink(out);
    sharded_workload(shards, /*threads=*/1, &sink, tel);
  }
  return out.str();
}

}  // namespace

TEST(Telemetry, GaugeAndRateSamplingBytePinned) {
  // A plain Simulator with a 10 ms cadence: the stream is pinned byte for
  // byte. The rate series reports per-boundary deltas (3 at the 10 ms
  // boundary from the 5 ms event, 0 across the idle window, 2 at 30 ms
  // from the 25 ms event); the backlog gauge sees exactly the not-yet-fired
  // posts; the constant gauge exercises fractional formatting.
  const std::string path = temp_path("pin.jsonl");
  {
    ds::SeriesSink sink(path);
    ds::Telemetry tel(sink, ds::millis(10));
    ds::Simulator simu(7);
    tel.attach(simu);
    ds::Counter ctr;
    tel.add_rate("test/rate", 0, ctr);
    tel.add_gauge("test/gauge", 0, [](ds::SimTime) { return 1.5; });
    simu.post(ds::millis(5), [&] { ctr.add(3); });
    simu.post(ds::millis(25), [&] { ctr.add(2); });
    simu.run_until(ds::millis(40));
    EXPECT_EQ(tel.next_due(), ds::millis(50));
    sink.flush();
    EXPECT_EQ(sink.records_written(), 12u);
  }
  EXPECT_EQ(slurp(path),
            "{\"t\":10000,\"shard\":0,\"series\":\"kernel/backlog\",\"v\":1}\n"
            "{\"t\":10000,\"shard\":0,\"series\":\"test/gauge\",\"v\":1.5}\n"
            "{\"t\":10000,\"shard\":0,\"series\":\"test/rate\",\"v\":3}\n"
            "{\"t\":20000,\"shard\":0,\"series\":\"kernel/backlog\",\"v\":1}\n"
            "{\"t\":20000,\"shard\":0,\"series\":\"test/gauge\",\"v\":1.5}\n"
            "{\"t\":20000,\"shard\":0,\"series\":\"test/rate\",\"v\":0}\n"
            "{\"t\":30000,\"shard\":0,\"series\":\"kernel/backlog\",\"v\":0}\n"
            "{\"t\":30000,\"shard\":0,\"series\":\"test/gauge\",\"v\":1.5}\n"
            "{\"t\":30000,\"shard\":0,\"series\":\"test/rate\",\"v\":2}\n"
            "{\"t\":40000,\"shard\":0,\"series\":\"kernel/backlog\",\"v\":0}\n"
            "{\"t\":40000,\"shard\":0,\"series\":\"test/gauge\",\"v\":1.5}\n"
            "{\"t\":40000,\"shard\":0,\"series\":\"test/rate\",\"v\":0}\n");
  std::remove(path.c_str());
}

TEST(Telemetry, RateWatermarkStartsAtCurrentValue) {
  // Pre-run counter accumulation (a harness registry shared across rows)
  // must not leak into the first sample.
  const std::string path = temp_path("watermark.jsonl");
  {
    ds::SeriesSink sink(path);
    ds::Telemetry tel(sink, ds::millis(10));
    ds::Simulator simu(7);
    tel.attach(simu);
    ds::Counter ctr;
    ctr.add(1000);  // pre-existing count from an earlier row
    tel.add_rate("test/rate", 0, ctr);
    simu.post(ds::millis(5), [&] { ctr.add(4); });
    simu.run_until(ds::millis(10));
  }
  const std::string bytes = slurp(path);
  EXPECT_NE(bytes.find("\"series\":\"test/rate\",\"v\":4}"), std::string::npos)
      << bytes;
  EXPECT_EQ(bytes.find("\"v\":1004"), std::string::npos) << bytes;
  EXPECT_EQ(bytes.find("\"v\":1000"), std::string::npos) << bytes;
  std::remove(path.c_str());
}

TEST(Telemetry, ReattachResetsRegistrations) {
  // attach() begins a new run: series registered for the previous row must
  // not survive into the next one (stale gauge pointers would be UB).
  const std::string path = temp_path("reattach.jsonl");
  {
    ds::SeriesSink sink(path);
    ds::Telemetry tel(sink, ds::millis(10));
    {
      ds::Simulator simu(1);
      tel.attach(simu);
      tel.add_gauge("old/gauge", 0, [](ds::SimTime) { return 9.0; });
      simu.post(ds::millis(1), [] {});
      simu.run_until(ds::millis(10));
    }
    ds::Simulator simu2(2);
    tel.attach(simu2);  // re-instrument: old/gauge must be gone
    simu2.post(ds::millis(1), [] {});
    simu2.run_until(ds::millis(10));
  }
  const std::string bytes = slurp(path);
  const std::size_t first_old = bytes.find("old/gauge");
  ASSERT_NE(first_old, std::string::npos);
  EXPECT_EQ(bytes.find("old/gauge", first_old + 1), std::string::npos)
      << bytes;
  std::remove(path.c_str());
}

TEST(Telemetry, ShardedSeriesByteIdenticalAcrossThreadCounts) {
  const std::string t1 = sharded_series(4, 1, "t1");
  EXPECT_FALSE(t1.empty());
  EXPECT_NE(t1.find("kernel/backlog"), std::string::npos);
  EXPECT_NE(t1.find("kernel/fired"), std::string::npos);
  EXPECT_NE(t1.find("net/messages_sent"), std::string::npos);
  EXPECT_EQ(sharded_series(4, 2, "t2"), t1);
  EXPECT_EQ(sharded_series(4, 4, "t4"), t1);
}

TEST(Telemetry, SingleShardMatchesPlainKernelSeries) {
  // S == 1 delegates to the legacy kernel: the same workload on a sharded
  // kernel with one shard must produce some series stream without the
  // driver-side barrier sampling (the shard samples between events).
  const std::string s1 = sharded_series(1, 1, "s1");
  EXPECT_FALSE(s1.empty());
  EXPECT_NE(s1.find("kernel/backlog"), std::string::npos);
}

TEST(Telemetry, OffByDefaultLeavesGoldenTraceUntouched) {
  // The same seed with telemetry attached must serialize the exact same
  // trace bytes: sampling never schedules kernel events or perturbs
  // execution order. And with telemetry off, nothing references the series
  // path at all.
  const std::string golden = sharded_trace(4, nullptr);
  EXPECT_FALSE(golden.empty());
  const std::string path = temp_path("tel_with_trace.jsonl");
  std::string traced;
  {
    ds::SeriesSink sink(path, 4096);
    ds::Telemetry tel(sink, ds::seconds(1));
    traced = sharded_trace(4, &tel);
    EXPECT_GT(sink.records_written(), 0u);
  }
  EXPECT_EQ(traced, golden);
  std::remove(path.c_str());
}

TEST(Telemetry, SinkRejectsUnwritablePathAndZeroChunk) {
  EXPECT_THROW(ds::SeriesSink("/nonexistent-dir/x.jsonl", 4096),
               std::runtime_error);
  EXPECT_THROW(ds::SeriesSink(temp_path("zero.jsonl"), 0),
               std::runtime_error);
}

// ---------------------------------------------------------------------------
// decentnet-trace timeline: parser + analyzer pinned on a fixture
// ---------------------------------------------------------------------------

namespace {

/// Two-segment fixture: segment 0 holds a clean 4x-per-sample ramp on a/x
/// plus a flat series on shard 1; the backwards t jump starts segment 1,
/// whose q/drops series idles at 0 except for a burst inside the fault
/// window of the matching trace fixture below.
const char kSeriesFixture[] =
    "{\"t\":100,\"shard\":0,\"series\":\"a/x\",\"v\":1}\n"
    "{\"t\":200,\"shard\":0,\"series\":\"a/x\",\"v\":4}\n"
    "{\"t\":300,\"shard\":0,\"series\":\"a/x\",\"v\":16}\n"
    "{\"t\":300,\"shard\":1,\"series\":\"b/y\",\"v\":0.5}\n"
    "{\"t\":400,\"shard\":0,\"series\":\"a/x\",\"v\":64}\n"
    "{\"t\":400,\"shard\":1,\"series\":\"b/y\",\"v\":0.5}\n"
    "{\"t\":100,\"shard\":0,\"series\":\"q/drops\",\"v\":0}\n"
    "{\"t\":200,\"shard\":0,\"series\":\"q/drops\",\"v\":6}\n"
    "{\"t\":300,\"shard\":0,\"series\":\"q/drops\",\"v\":8}\n"
    "{\"t\":400,\"shard\":0,\"series\":\"q/drops\",\"v\":0}\n";

std::vector<tt::Sample> fixture_samples() {
  std::istringstream in(kSeriesFixture);
  return tt::parse_series_jsonl(in);
}

}  // namespace

TEST(Timeline, ParserHandlesDoublesAndSegments) {
  const auto samples = fixture_samples();
  ASSERT_EQ(samples.size(), 10u);
  EXPECT_EQ(samples[0].segment, 0u);
  EXPECT_EQ(samples[3].shard, 1u);
  EXPECT_DOUBLE_EQ(samples[3].v, 0.5);
  EXPECT_EQ(samples[6].segment, 1u);  // backwards jump: new segment
  EXPECT_EQ(samples[6].series, "q/drops");
}

TEST(Timeline, StatsAndRampDetection) {
  const auto stats = tt::timeline_stats(fixture_samples());
  ASSERT_EQ(stats.size(), 3u);

  // (segment, shard, series) key order: (0,0,a/x), (0,1,b/y), (1,0,q/drops)
  EXPECT_EQ(stats[0].series, "a/x");
  EXPECT_EQ(stats[0].count, 4u);
  EXPECT_DOUBLE_EQ(stats[0].min, 1.0);
  EXPECT_DOUBLE_EQ(stats[0].max, 64.0);
  EXPECT_DOUBLE_EQ(stats[0].p99, 64.0);
  EXPECT_TRUE(stats[0].ramp);  // 1 -> 64 over 4 nondecreasing samples
  EXPECT_EQ(stats[0].ramp_t0, 100);
  EXPECT_EQ(stats[0].ramp_t1, 400);

  EXPECT_EQ(stats[1].series, "b/y");
  EXPECT_EQ(stats[1].shard, 1u);
  EXPECT_FALSE(stats[1].ramp);  // flat: ratio 1

  EXPECT_EQ(stats[2].segment, 1u);
  EXPECT_EQ(stats[2].series, "q/drops");
  EXPECT_FALSE(stats[2].ramp);  // burst collapses: not 4 nondecreasing
}

TEST(Timeline, TextOutputBytePinned) {
  const std::string text = tt::timeline_text(tt::timeline_stats(fixture_samples()));
  EXPECT_EQ(text,
            "series: 3\n"
            " seg shard  series                      count          min"
            "         mean          max          p99        first         last\n"
            "   0     0  a/x                             4            1"
            "        21.25           64           64            1           64\n"
            "   0     1  b/y                             2          0.5"
            "          0.5          0.5          0.5          0.5          0.5\n"
            "   1     0  q/drops                         4            0"
            "          3.5            8            8            0            0\n"
            "ramps:\n"
            "  seg 0 shard 0 a/x: 1 -> 64 over [100, 400] us\n");
}

TEST(Timeline, CsvRoundTripsValues) {
  const std::string csv = tt::timeline_csv(fixture_samples());
  EXPECT_EQ(csv.substr(0, csv.find('\n')), "segment,t_us,shard,series,v");
  EXPECT_NE(csv.find("0,300,1,b/y,0.5\n"), std::string::npos) << csv;
  EXPECT_NE(csv.find("1,200,0,q/drops,6\n"), std::string::npos) << csv;
}

TEST(Timeline, FaultCorrelationBytePinned) {
  // Trace fixture: segment 0 has no faults; the backwards jump opens
  // segment 1 with a partition injected at t=150 and healed at t=310 —
  // exactly bracketing the q/drops burst (baseline median outside the
  // window is 0, in-window max is 8).
  const char kTrace[] =
      "{\"t\":100,\"kind\":\"send\",\"id\":1,\"a\":2,\"b\":3}\n"
      "{\"t\":150,\"kind\":\"fault\",\"tag\":\"partition\",\"id\":7,"
      "\"a\":4,\"b\":310}\n"
      "{\"t\":310,\"kind\":\"heal\",\"tag\":\"partition\",\"id\":7,"
      "\"a\":4}\n";
  std::istringstream tin(std::string("{\"t\":999,\"kind\":\"fire\"}\n") +
                         kTrace);
  const auto trace = tt::parse_jsonl(tin);
  const std::string text =
      tt::timeline_fault_text(fixture_samples(), trace);
  EXPECT_EQ(text,
            "fault windows: 1\n"
            "  seg 1 partition id 7 node 4 [150, 310] us\n"
            "    excursion shard 0 q/drops: max 8 vs baseline 0\n");
}

TEST(Timeline, ChromeCounterExport) {
  const std::string json = tt::timeline_chrome_json(fixture_samples());
  EXPECT_NE(json.find("{\"ph\":\"C\",\"pid\":0,\"tid\":0,\"ts\":100,"
                      "\"name\":\"a/x\",\"args\":{\"v\":1}}"),
            std::string::npos)
      << json;
  EXPECT_NE(json.find("\"name\":\"b/y#1\""), std::string::npos) << json;
  EXPECT_NE(json.find("\"displayTimeUnit\":\"ms\""), std::string::npos);
}

TEST(Timeline, ParserRejectsMalformedLines) {
  std::istringstream bad("{\"t\":100,\"shard\":0,\"series\":\"a\",\"v\":}\n");
  EXPECT_THROW(tt::parse_series_jsonl(bad), std::runtime_error);
  std::istringstream noquote("{\"t\":100,series:\"a\",\"v\":1}\n");
  EXPECT_THROW(tt::parse_series_jsonl(noquote), std::runtime_error);
}
