// Ledger-level tests: transaction validation, UTXO accounting, block
// apply/revert symmetry, mempool conflict handling, difficulty retargeting.
#include <gtest/gtest.h>

#include <variant>

#include "chain/blocktree.hpp"
#include "chain/ledger.hpp"
#include "chain/mempool.hpp"
#include "chain/params.hpp"
#include "chain/wallet.hpp"

namespace dc = decentnet::chain;
namespace dk = decentnet::crypto;

namespace {

struct LedgerFixture : ::testing::Test {
  dc::Wallet alice = dc::Wallet::from_seed(0xA11CE);
  dc::Wallet bob = dc::Wallet::from_seed(0xB0B);
  dc::Wallet carol = dc::Wallet::from_seed(0xCA401);
  dc::UtxoSet utxo;
  dc::BlockPtr genesis;

  void SetUp() override {
    genesis = dc::make_genesis_multi(
        {{alice.address(), 1000}, {alice.address(), 500}}, 1.0);
    auto res = utxo.apply_block(*genesis, /*max_reward=*/0);
    ASSERT_TRUE(std::holds_alternative<dc::BlockUndo>(res));
  }

  /// A valid next block containing `txs`.
  dc::Block next_block(std::vector<dc::Transaction> txs,
                       const dc::BlockId& prev, dc::Amount reward = 50) {
    dc::Block b;
    b.header.prev = prev;
    b.header.difficulty = 1.0;
    b.txs.push_back(dc::make_coinbase(carol.address(), reward, 7));
    for (auto& tx : txs) b.txs.push_back(std::move(tx));
    b.header.merkle_root = b.compute_merkle_root();
    return b;
  }
};

}  // namespace

TEST_F(LedgerFixture, GenesisFundsAreSpendable) {
  EXPECT_EQ(utxo.balance_of(alice.address()), 1500);
  EXPECT_EQ(utxo.outputs_of(alice.address()).size(), 2u);
}

TEST_F(LedgerFixture, ValidPaymentMovesFunds) {
  const auto tx = alice.pay(utxo, bob.address(), 600, 10);
  ASSERT_TRUE(tx.has_value());
  EXPECT_FALSE(utxo.check_transaction(*tx, false, 0).has_value());
  ASSERT_FALSE(utxo.apply_transaction(*tx).has_value());
  EXPECT_EQ(utxo.balance_of(bob.address()), 600);
  EXPECT_EQ(utxo.balance_of(alice.address()), 1500 - 600 - 10);
}

TEST_F(LedgerFixture, InsufficientFundsReturnsNullopt) {
  EXPECT_FALSE(alice.pay(utxo, bob.address(), 99999, 0).has_value());
}

TEST_F(LedgerFixture, DoubleSpendRejected) {
  const auto tx = alice.pay(utxo, bob.address(), 1400, 10);
  ASSERT_TRUE(tx.has_value());
  ASSERT_FALSE(utxo.apply_transaction(*tx).has_value());
  // Replaying the same tx: inputs are gone.
  const auto err = utxo.check_transaction(*tx, false, 0);
  ASSERT_TRUE(err.has_value());
  EXPECT_EQ(err->reason, "input not in UTXO set");
}

TEST_F(LedgerFixture, ForgedSignatureRejected) {
  auto tx = alice.pay(utxo, bob.address(), 100, 0);
  ASSERT_TRUE(tx.has_value());
  // Bob tries to redirect alice's coins by re-signing with his own key.
  tx->outputs[0].recipient = bob.address();
  dc::sign_inputs(*tx, bob.key());
  const auto err = utxo.check_transaction(*tx, false, 0);
  ASSERT_TRUE(err.has_value());
  EXPECT_EQ(err->reason, "input owner mismatch");
}

TEST_F(LedgerFixture, TamperedAmountBreaksSignature) {
  auto tx = alice.pay(utxo, bob.address(), 100, 0);
  ASSERT_TRUE(tx.has_value());
  tx->outputs[0].amount = 1400;  // inflate after signing
  const auto err = utxo.check_transaction(*tx, false, 0);
  ASSERT_TRUE(err.has_value());
  EXPECT_EQ(err->reason, "bad signature");
}

TEST_F(LedgerFixture, OutputsExceedingInputsRejected) {
  auto tx = alice.pay(utxo, bob.address(), 100, 0);
  ASSERT_TRUE(tx.has_value());
  // Rebuild with inflated outputs but properly signed: still must fail.
  dc::Transaction inflated;
  inflated.inputs = tx->inputs;
  inflated.outputs.push_back(dc::TxOutput{5000, bob.address()});
  dc::sign_inputs(inflated, alice.key());
  const auto err = utxo.check_transaction(inflated, false, 0);
  ASSERT_TRUE(err.has_value());
  EXPECT_EQ(err->reason, "outputs exceed inputs");
}

TEST_F(LedgerFixture, BlockApplyAndRevertAreSymmetric) {
  const auto tx = alice.pay(utxo, bob.address(), 300, 5);
  ASSERT_TRUE(tx.has_value());
  dc::Block b = next_block({*tx}, genesis->id(), /*reward=*/55);  // 50 + fee
  const dc::Amount alice_before = utxo.balance_of(alice.address());
  const std::size_t size_before = utxo.size();

  auto res = utxo.apply_block(b, 50);
  ASSERT_TRUE(std::holds_alternative<dc::BlockUndo>(res));
  EXPECT_EQ(utxo.balance_of(bob.address()), 300);
  EXPECT_EQ(utxo.balance_of(carol.address()), 55);  // reward + fee

  utxo.revert_block(b, std::get<dc::BlockUndo>(res));
  EXPECT_EQ(utxo.balance_of(alice.address()), alice_before);
  EXPECT_EQ(utxo.balance_of(bob.address()), 0);
  EXPECT_EQ(utxo.balance_of(carol.address()), 0);
  EXPECT_EQ(utxo.size(), size_before);
}

TEST_F(LedgerFixture, IntraBlockDoubleSpendRejected) {
  const auto tx1 = alice.pay(utxo, bob.address(), 900, 0);
  ASSERT_TRUE(tx1.has_value());
  // tx2 spends the same outputs (signed over same inputs, different dest).
  dc::Transaction tx2;
  tx2.inputs = tx1->inputs;
  tx2.outputs.push_back(dc::TxOutput{900, carol.address()});
  dc::sign_inputs(tx2, alice.key());
  dc::Block b = next_block({*tx1, tx2}, genesis->id());
  auto res = utxo.apply_block(b, 50);
  ASSERT_TRUE(std::holds_alternative<dc::ValidationError>(res));
}

TEST_F(LedgerFixture, IntraBlockChainedSpendAllowed) {
  // alice -> bob in tx1, bob spends tx1's output in tx2, same block.
  const auto tx1 = alice.pay(utxo, bob.address(), 700, 0);
  ASSERT_TRUE(tx1.has_value());
  dc::Transaction tx2;
  tx2.inputs.push_back(dc::TxInput{dc::OutPoint{tx1->id(), 0}, {}, {}});
  tx2.outputs.push_back(dc::TxOutput{700, carol.address()});
  dc::sign_inputs(tx2, bob.key());
  dc::Block b = next_block({*tx1, tx2}, genesis->id());
  auto res = utxo.apply_block(b, 50);
  ASSERT_TRUE(std::holds_alternative<dc::BlockUndo>(res));
  EXPECT_EQ(utxo.balance_of(carol.address()), 700 + 50);
}

TEST_F(LedgerFixture, OversizedCoinbaseRejected) {
  dc::Block b = next_block({}, genesis->id(), /*reward=*/1000);
  auto res = utxo.apply_block(b, /*max_reward=*/50);
  ASSERT_TRUE(std::holds_alternative<dc::ValidationError>(res));
}

TEST_F(LedgerFixture, CoinbaseMayIncludeFees) {
  const auto tx = alice.pay(utxo, bob.address(), 100, 25);
  ASSERT_TRUE(tx.has_value());
  dc::Block b = next_block({*tx}, genesis->id(), /*reward=*/75);  // 50 + fee
  auto res = utxo.apply_block(b, /*max_reward=*/50);
  ASSERT_TRUE(std::holds_alternative<dc::BlockUndo>(res));
}

TEST_F(LedgerFixture, TransactionFeeComputed) {
  const auto tx = alice.pay(utxo, bob.address(), 100, 42);
  ASSERT_TRUE(tx.has_value());
  EXPECT_EQ(dc::transaction_fee(utxo, *tx).value(), 42);
}

// --- Mempool ----------------------------------------------------------------

TEST_F(LedgerFixture, MempoolRejectsConflicts) {
  dc::Mempool pool;
  const auto tx1 = alice.pay(utxo, bob.address(), 1400, 10);
  ASSERT_TRUE(tx1.has_value());
  EXPECT_FALSE(pool.add(*tx1, utxo).has_value());
  // A second spend of the same coins conflicts.
  dc::Transaction tx2;
  tx2.inputs = tx1->inputs;
  tx2.outputs.push_back(dc::TxOutput{1400, carol.address()});
  dc::sign_inputs(tx2, alice.key());
  const auto err = pool.add(tx2, utxo);
  ASSERT_TRUE(err.has_value());
  EXPECT_EQ(err->reason, "conflicts with pooled transaction");
  EXPECT_EQ(pool.size(), 1u);
}

TEST_F(LedgerFixture, MempoolSelectsByFeeRate) {
  dc::Mempool pool;
  // Two independent outputs -> two competing txs with different fees.
  const auto cheap = alice.pay(utxo, bob.address(), 400, 1);
  ASSERT_TRUE(cheap.has_value());
  ASSERT_FALSE(pool.add(*cheap, utxo).has_value());
  // Force the second tx to use the remaining output: spend everything left.
  dc::UtxoSet view = utxo;
  for (const dc::TxInput& in : cheap->inputs) {
    // Remove the spent outpoint from the view so the next pay() avoids it.
    auto v = view.get(in.prevout);
    ASSERT_TRUE(v.has_value());
  }
  const auto rich = alice.pay(utxo, carol.address(), 100, 90);
  // rich may reuse the same inputs (conflict); if so, it must be rejected,
  // otherwise both are selectable — exercise selection either way.
  pool.add(*rich, utxo);
  const auto chosen = pool.select_for_block(utxo, 100000);
  ASSERT_FALSE(chosen.empty());
}

TEST_F(LedgerFixture, MempoolRemoveConfirmedDropsIncludedAndConflicting) {
  dc::Mempool pool;
  const auto tx = alice.pay(utxo, bob.address(), 500, 5);
  ASSERT_TRUE(tx.has_value());
  ASSERT_FALSE(pool.add(*tx, utxo).has_value());
  dc::Block b = next_block({*tx}, genesis->id());
  pool.remove_confirmed(b);
  EXPECT_EQ(pool.size(), 0u);
}

// --- BlockTree --------------------------------------------------------------

TEST(BlockTree, ForkChoiceFollowsCumulativeWork) {
  const dc::Wallet w = dc::Wallet::from_seed(0x111);
  auto genesis = dc::make_genesis(w.address(), 100, 1.0);
  dc::BlockTree tree(genesis);

  auto mk = [&](const dc::BlockId& prev, double difficulty, int nonce) {
    dc::Block b;
    b.header.prev = prev;
    b.header.difficulty = difficulty;
    b.txs.push_back(dc::make_coinbase(w.address(), 50,
                                      static_cast<std::uint64_t>(nonce)));
    b.header.merkle_root = b.compute_merkle_root();
    return std::make_shared<const dc::Block>(std::move(b));
  };

  auto a1 = mk(genesis->id(), 1.0, 1);
  auto a2 = mk(a1->id(), 1.0, 2);
  auto b1 = mk(genesis->id(), 3.0, 3);  // single heavier block
  ASSERT_TRUE(tree.insert(a1));
  ASSERT_TRUE(tree.insert(a2));
  EXPECT_EQ(tree.best_tip(), a2->id());
  ASSERT_TRUE(tree.insert(b1));
  // Work: branch A = 2.0, branch B = 3.0 -> B wins despite lower height.
  EXPECT_EQ(tree.best_tip(), b1->id());
  EXPECT_EQ(tree.best_height(), 1u);
  EXPECT_EQ(tree.stale_count(), 2u);
}

TEST(BlockTree, ReorgPlanRevertsAndApplies) {
  const dc::Wallet w = dc::Wallet::from_seed(0x222);
  auto genesis = dc::make_genesis(w.address(), 100, 1.0);
  dc::BlockTree tree(genesis);
  auto mk = [&](const dc::BlockId& prev, int nonce) {
    dc::Block b;
    b.header.prev = prev;
    b.header.difficulty = 1.0;
    b.txs.push_back(dc::make_coinbase(w.address(), 50,
                                      static_cast<std::uint64_t>(nonce)));
    b.header.merkle_root = b.compute_merkle_root();
    return std::make_shared<const dc::Block>(std::move(b));
  };
  auto a1 = mk(genesis->id(), 1);
  auto a2 = mk(a1->id(), 2);
  auto b1 = mk(genesis->id(), 3);
  auto b2 = mk(b1->id(), 4);
  auto b3 = mk(b2->id(), 5);
  for (auto& b : {a1, a2, b1, b2, b3}) ASSERT_TRUE(tree.insert(b));
  const auto plan = tree.find_reorg(a2->id(), b3->id());
  ASSERT_EQ(plan.revert.size(), 2u);
  ASSERT_EQ(plan.apply.size(), 3u);
  EXPECT_EQ(plan.revert[0]->id(), a2->id());
  EXPECT_EQ(plan.revert[1]->id(), a1->id());
  EXPECT_EQ(plan.apply[0]->id(), b1->id());
  EXPECT_EQ(plan.apply[2]->id(), b3->id());
}

TEST(BlockTree, RejectsUnknownParentAndDuplicates) {
  const dc::Wallet w = dc::Wallet::from_seed(0x333);
  auto genesis = dc::make_genesis(w.address(), 100, 1.0);
  dc::BlockTree tree(genesis);
  dc::Block orphan;
  orphan.header.prev = dk::sha256("nowhere");
  orphan.txs.push_back(dc::make_coinbase(w.address(), 50, 1));
  orphan.header.merkle_root = orphan.compute_merkle_root();
  EXPECT_FALSE(tree.insert(std::make_shared<const dc::Block>(orphan)));
  EXPECT_FALSE(tree.insert(genesis));  // duplicate
}

TEST(BlockTree, MarkInvalidReroutesBestTip) {
  const dc::Wallet w = dc::Wallet::from_seed(0x444);
  auto genesis = dc::make_genesis(w.address(), 100, 1.0);
  dc::BlockTree tree(genesis);
  auto mk = [&](const dc::BlockId& prev, double diff, int nonce) {
    dc::Block b;
    b.header.prev = prev;
    b.header.difficulty = diff;
    b.txs.push_back(dc::make_coinbase(w.address(), 50,
                                      static_cast<std::uint64_t>(nonce)));
    b.header.merkle_root = b.compute_merkle_root();
    return std::make_shared<const dc::Block>(std::move(b));
  };
  auto bad = mk(genesis->id(), 5.0, 1);
  auto bad_child = mk(bad->id(), 1.0, 2);
  auto good = mk(genesis->id(), 1.0, 3);
  ASSERT_TRUE(tree.insert(bad));
  ASSERT_TRUE(tree.insert(bad_child));
  ASSERT_TRUE(tree.insert(good));
  EXPECT_EQ(tree.best_tip(), bad_child->id());
  tree.mark_invalid(bad->id());
  EXPECT_EQ(tree.best_tip(), good->id());
  // Later children of the invalid branch cannot recapture the tip.
  auto bad_grandchild = mk(bad_child->id(), 10.0, 4);
  ASSERT_TRUE(tree.insert(bad_grandchild));
  EXPECT_EQ(tree.best_tip(), good->id());
}

// --- Difficulty retarget ----------------------------------------------------

TEST(Difficulty, StaysConstantWithinWindow) {
  const dc::Wallet w = dc::Wallet::from_seed(0x555);
  dc::ChainParams params;
  params.retarget_window = 10;
  params.target_block_interval = decentnet::sim::minutes(10);
  params.initial_difficulty = 1000;
  auto genesis = dc::make_genesis(w.address(), 100, params.initial_difficulty);
  dc::BlockTree tree(genesis);
  EXPECT_DOUBLE_EQ(dc::next_difficulty(tree, tree.best_tip(), params), 1000);
}

TEST(Difficulty, RetargetsUpWhenBlocksTooFast) {
  const dc::Wallet w = dc::Wallet::from_seed(0x666);
  dc::ChainParams params;
  params.retarget_window = 8;
  params.target_block_interval = decentnet::sim::minutes(10);
  params.initial_difficulty = 1000;
  auto genesis = dc::make_genesis(w.address(), 100, params.initial_difficulty);
  dc::BlockTree tree(genesis);
  // Mine 7 blocks arriving every 1 minute (10x too fast); block 8 triggers
  // the retarget.
  dc::BlockId prev = genesis->id();
  for (int i = 1; i <= 7; ++i) {
    dc::Block b;
    b.header.prev = prev;
    b.header.timestamp = decentnet::sim::minutes(i);
    b.header.difficulty = dc::next_difficulty(tree, prev, params);
    b.txs.push_back(dc::make_coinbase(w.address(), 50,
                                      static_cast<std::uint64_t>(i)));
    b.header.merkle_root = b.compute_merkle_root();
    auto ptr = std::make_shared<const dc::Block>(std::move(b));
    ASSERT_TRUE(tree.insert(ptr));
    prev = ptr->id();
  }
  const double next = dc::next_difficulty(tree, prev, params);
  // 10x too fast, clamped at the max adjustment factor of 4.
  EXPECT_NEAR(next, 4000, 1);
}

TEST(Difficulty, RetargetsDownWhenBlocksTooSlow) {
  const dc::Wallet w = dc::Wallet::from_seed(0x777);
  dc::ChainParams params;
  params.retarget_window = 4;
  params.target_block_interval = decentnet::sim::minutes(10);
  params.initial_difficulty = 1000;
  auto genesis = dc::make_genesis(w.address(), 100, params.initial_difficulty);
  dc::BlockTree tree(genesis);
  dc::BlockId prev = genesis->id();
  for (int i = 1; i <= 3; ++i) {
    dc::Block b;
    b.header.prev = prev;
    b.header.timestamp = decentnet::sim::minutes(20) * i;  // 2x too slow
    b.header.difficulty = dc::next_difficulty(tree, prev, params);
    b.txs.push_back(dc::make_coinbase(w.address(), 50,
                                      static_cast<std::uint64_t>(i)));
    b.header.merkle_root = b.compute_merkle_root();
    auto ptr = std::make_shared<const dc::Block>(std::move(b));
    ASSERT_TRUE(tree.insert(ptr));
    prev = ptr->id();
  }
  const double next = dc::next_difficulty(tree, prev, params);
  EXPECT_NEAR(next, 500, 1);
}
