// decentnet-trace analysis library tests: JSONL parsing (including the
// writer's omitted-default-fields convention), propagation-tree
// reconstruction from span records, and byte-pinned text/Chrome outputs on a
// hand-written fixture.
//
// The fixture is one virtual-root tree (origin 7 fans out to 8 and 9; 8
// relays to 9 — a duplicated delivery — and to 10 — dropped by loss) plus a
// second simulator run appended to the same stream (time resets to zero),
// exercising segment detection.
#include <gtest/gtest.h>

#include <sstream>
#include <stdexcept>

#include "trace_analysis.hpp"

namespace tt = decentnet::tracetool;

namespace {

const char* kFixture = R"({"t":0,"kind":"span","tag":"root","id":1,"a":1}
{"t":0,"kind":"send","id":1,"a":7,"b":8,"bytes":100}
{"t":0,"kind":"span","id":2,"a":1,"b":1,"bytes":1}
{"t":0,"kind":"sched","tag":"net/deliver","id":10,"a":50}
{"t":0,"kind":"send","id":2,"a":7,"b":9,"bytes":100}
{"t":0,"kind":"span","id":3,"a":1,"b":1,"bytes":1}
{"t":0,"kind":"sched","tag":"net/deliver","id":11,"a":80}
{"t":50,"kind":"fire","id":10}
{"t":50,"kind":"send","id":3,"a":8,"b":9,"bytes":100}
{"t":50,"kind":"span","id":4,"a":1,"b":2,"bytes":2,"queue_us":25}
{"t":50,"kind":"dup","id":3,"a":8,"b":9,"bytes":100}
{"t":50,"kind":"sched","tag":"net/deliver","id":12,"a":160}
{"t":50,"kind":"sched","tag":"net/deliver","id":13,"a":120}
{"t":50,"kind":"send","id":4,"a":8,"b":10,"bytes":100}
{"t":50,"kind":"span","id":5,"a":1,"b":2,"bytes":2}
{"t":50,"kind":"drop","tag":"loss","id":4,"a":8,"b":10,"bytes":100}
{"t":0,"kind":"send","id":1,"a":3,"b":4,"bytes":50}
{"t":0,"kind":"span","id":1,"a":1}
{"t":0,"kind":"sched","tag":"net/deliver","id":1,"a":30}
)";

std::vector<tt::Record> parse_fixture() {
  std::istringstream in(kFixture);
  return tt::parse_jsonl(in);
}

}  // namespace

TEST(TraceTool, ParsesRecordsAndOmittedDefaults) {
  const auto recs = parse_fixture();
  ASSERT_EQ(recs.size(), 19u);
  EXPECT_EQ(recs[0].kind, "span");
  EXPECT_EQ(recs[0].tag, "root");
  EXPECT_EQ(recs[0].id, 1u);
  EXPECT_EQ(recs[0].a, 1u);
  // Omitted fields come back as defaults.
  EXPECT_EQ(recs[0].b, 0u);
  EXPECT_EQ(recs[0].bytes, 0u);
  EXPECT_EQ(recs[7].kind, "fire");
  EXPECT_EQ(recs[7].t, 50);
}

TEST(TraceTool, ParsesEscapesSkipsBlanksRejectsGarbage) {
  {
    std::istringstream in(
        "{\"t\":1,\"kind\":\"send\",\"tag\":\"a\\\"b\\\\c\\u0041\",\"id\":2}\n"
        "\n"
        "   \n");
    const auto recs = tt::parse_jsonl(in);
    ASSERT_EQ(recs.size(), 1u);
    EXPECT_EQ(recs[0].tag, "a\"b\\cA");
  }
  {
    std::istringstream in("{\"t\":1,\"kind\":\"send\"\n");
    EXPECT_THROW(tt::parse_jsonl(in), std::runtime_error);
  }
  {
    std::istringstream in("not json\n");
    EXPECT_THROW(tt::parse_jsonl(in), std::runtime_error);
  }
}

TEST(TraceTool, SummaryTextIsPinned) {
  const auto s = tt::summarize(parse_fixture());
  EXPECT_EQ(tt::summary_text(s),
            "records: 19\n"
            "time_span_us: [0, 50]\n"
            "by kind:\n"
            "  drop                 1\n"
            "  dup                  1\n"
            "  fire                 1\n"
            "  sched                5\n"
            "  send                 5\n"
            "  span                 6\n"
            "by kind/tag:\n"
            "  drop/loss                              1\n"
            "  sched/net/deliver                      5\n"
            "  span/root                              1\n");
}

TEST(TraceTool, BuildsTreesAcrossSegments) {
  const auto trees = tt::build_trees(parse_fixture());
  ASSERT_EQ(trees.size(), 2u);

  // Segment 0: the virtual-root tree. Origin 7 covers itself at t0=0, node 8
  // at 50, node 9 at 80 (the relayed copy arriving at 120 loses the min);
  // the hop to 10 was dropped pre-schedule.
  const tt::Tree& t0 = trees[0];
  EXPECT_EQ(t0.segment, 0u);
  EXPECT_EQ(t0.root, 1u);
  EXPECT_TRUE(t0.root_node_known);
  EXPECT_EQ(t0.root_node, 7u);
  EXPECT_EQ(t0.edges, 4u);
  EXPECT_EQ(t0.delivered, 3u);
  EXPECT_EQ(t0.dropped, 1u);
  EXPECT_EQ(t0.covered, 3u);
  EXPECT_EQ(t0.depth_max, 2u);
  EXPECT_EQ(t0.fanout_max, 2u);
  EXPECT_EQ(t0.queue_max_us, 25u);
  EXPECT_EQ(t0.t90, 80);
  EXPECT_EQ(t0.t100, 80);
  // The duplicated delivery schedules two net/deliver events; arrival is
  // the earlier one.
  bool found_relay = false;
  for (const auto& h : t0.hops) {
    if (h.id == 4) {
      found_relay = true;
      EXPECT_EQ(h.arrive_t, 120);
      EXPECT_EQ(h.msg_seq, 3u);
      EXPECT_EQ(h.queue_us, 25u);  // sender-queue wait rides on the span
    }
    if (h.id == 5) {
      EXPECT_TRUE(h.dropped);
      EXPECT_EQ(h.arrive_t, -1);
    }
  }
  EXPECT_TRUE(found_relay);

  // Segment 1: a real-root single-hop tree (fresh simulator, time reset).
  const tt::Tree& t1 = trees[1];
  EXPECT_EQ(t1.segment, 1u);
  EXPECT_EQ(t1.root, 1u);
  EXPECT_EQ(t1.root_node, 3u);
  EXPECT_EQ(t1.edges, 1u);
  EXPECT_EQ(t1.covered, 2u);
  EXPECT_EQ(t1.t90, 30);
  EXPECT_EQ(t1.t100, 30);
}

TEST(TraceTool, TreeStatsTextIsPinned) {
  const auto trees = tt::build_trees(parse_fixture());
  EXPECT_EQ(
      tt::tree_stats_text(trees, 10),
      "trees: 2 (showing 2, by edges)\n"
      " seg    root    origin   edges delivered dropped covered depth"
      " fanout   qmax_us    t90_us   t100_us\n"
      "   0       1         7       4         3       1       3     2"
      "      2        25        80        80\n"
      "   1       1         3       1         1       0       2     0"
      "      0         0        30        30\n");
}

TEST(TraceTool, ChromeTraceJsonIsPinned) {
  const auto trees = tt::build_trees(parse_fixture());
  EXPECT_EQ(
      tt::chrome_trace_json(trees),
      "{\"traceEvents\":[\n"
      "{\"ph\":\"M\",\"pid\":1,\"name\":\"process_name\",\"args\":{\"name\":"
      "\"seg 0 tree 1 origin node 7\"}},\n"
      "{\"ph\":\"X\",\"pid\":1,\"tid\":1,\"ts\":0,\"dur\":50,\"name\":"
      "\"7->8\",\"cat\":\"span\",\"args\":{\"hop\":2,\"parent\":1,\"seq\":1,"
      "\"bytes\":100,\"queue_us\":0,\"dropped\":0}},\n"
      "{\"ph\":\"X\",\"pid\":1,\"tid\":1,\"ts\":0,\"dur\":80,\"name\":"
      "\"7->9\",\"cat\":\"span\",\"args\":{\"hop\":3,\"parent\":1,\"seq\":2,"
      "\"bytes\":100,\"queue_us\":0,\"dropped\":0}},\n"
      "{\"ph\":\"X\",\"pid\":1,\"tid\":2,\"ts\":50,\"dur\":70,\"name\":"
      "\"8->9\",\"cat\":\"span\",\"args\":{\"hop\":4,\"parent\":2,\"seq\":3,"
      "\"bytes\":100,\"queue_us\":25,\"dropped\":0}},\n"
      "{\"ph\":\"X\",\"pid\":1,\"tid\":2,\"ts\":50,\"dur\":0,\"name\":"
      "\"8->10\",\"cat\":\"span\",\"args\":{\"hop\":5,\"parent\":2,\"seq\":4,"
      "\"bytes\":100,\"queue_us\":0,\"dropped\":1}},\n"
      "{\"ph\":\"M\",\"pid\":100000001,\"name\":\"process_name\",\"args\":{"
      "\"name\":\"seg 1 tree 1 origin node 3\"}},\n"
      "{\"ph\":\"X\",\"pid\":100000001,\"tid\":0,\"ts\":0,\"dur\":30,"
      "\"name\":\"3->4\",\"cat\":\"span\",\"args\":{\"hop\":1,\"parent\":0,"
      "\"seq\":1,\"bytes\":50,\"queue_us\":0,\"dropped\":0}}\n"
      "],\"displayTimeUnit\":\"ms\"}\n");
}

TEST(TraceTool, TopNLimitsTable) {
  const auto trees = tt::build_trees(parse_fixture());
  const std::string one = tt::tree_stats_text(trees, 1);
  EXPECT_NE(one.find("trees: 2 (showing 1, by edges)"), std::string::npos);
  EXPECT_NE(one.find("      80"), std::string::npos);
  EXPECT_EQ(one.find("      30"), std::string::npos);
}
