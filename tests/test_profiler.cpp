// Kernel self-profiler tests: per-tag attribution through the Simulator
// hook, aggregation by tag content and subsystem prefix, cross-thread
// merge, JSON shape, and the harness --profile plumbing (the "profile" key
// appears exactly when profiling was requested and something ran).
#include <gtest/gtest.h>

#include <string>

#include "sim/experiment.hpp"
#include "sim/profiler.hpp"
#include "sim/simulator.hpp"

namespace ds = decentnet::sim;

TEST(Profiler, RecordsAndAggregatesByTagContent) {
  ds::Profiler prof;
  EXPECT_TRUE(prof.empty());
  // Two distinct pointers with identical content must aggregate together —
  // the hot path keys on pointer, the report keys on content.
  const std::string s1 = "net/deliver";
  const std::string s2 = "net/deliver";
  prof.record(s1.c_str(), 100);
  prof.record(s2.c_str(), 50);
  prof.record("gossip/shuffle", 10);
  prof.record(nullptr, 5);
  EXPECT_FALSE(prof.empty());

  const auto tags = prof.by_tag();
  ASSERT_EQ(tags.size(), 3u);
  EXPECT_EQ(tags.at("net/deliver").events, 2u);
  EXPECT_EQ(tags.at("net/deliver").wall_ns, 150u);
  EXPECT_EQ(tags.at("gossip/shuffle").events, 1u);
  EXPECT_EQ(tags.at("(untagged)").events, 1u);

  const auto subs = prof.by_subsystem();
  ASSERT_EQ(subs.size(), 3u);
  EXPECT_EQ(subs.at("net").wall_ns, 150u);
  EXPECT_EQ(subs.at("gossip").wall_ns, 10u);
  EXPECT_EQ(subs.at("(untagged)").wall_ns, 5u);

  EXPECT_EQ(prof.total().events, 4u);
  EXPECT_EQ(prof.total().wall_ns, 165u);
}

TEST(Profiler, MergeAndClear) {
  ds::Profiler a, b;
  a.record("x/one", 10);
  b.record("x/one", 5);
  b.record("y/two", 7);
  a.merge_from(b);
  EXPECT_EQ(a.by_tag().at("x/one").events, 2u);
  EXPECT_EQ(a.by_tag().at("x/one").wall_ns, 15u);
  EXPECT_EQ(a.by_tag().at("y/two").wall_ns, 7u);
  a.clear();
  EXPECT_TRUE(a.empty());
  EXPECT_EQ(a.total().events, 0u);
}

TEST(Profiler, JsonShapeIsSortedAndComplete) {
  ds::Profiler prof;
  prof.record("b/z", 2);
  prof.record("a/y", 1);
  const std::string json = prof.to_json();
  EXPECT_NE(json.find("\"total\""), std::string::npos);
  EXPECT_NE(json.find("\"subsystems\""), std::string::npos);
  EXPECT_NE(json.find("\"tags\""), std::string::npos);
  // Sorted: subsystem "a" before "b", tag "a/y" before "b/z".
  EXPECT_LT(json.find("\"a\""), json.find("\"b\""));
  EXPECT_LT(json.find("\"a/y\""), json.find("\"b/z\""));
  EXPECT_NE(json.find("\"events\":2"), std::string::npos);
}

TEST(Profiler, SimulatorAttributesFiredEvents) {
  ds::Simulator sim(3);
  ds::Profiler prof;
  sim.set_profiler(&prof);
  int fired = 0;
  sim.schedule(ds::millis(1), [&] { ++fired; }, "unit/a");
  sim.schedule(ds::millis(2), [&] { ++fired; }, "unit/a");
  sim.schedule(ds::millis(3), [&] { ++fired; }, "unit/b");
  sim.run_all();
  EXPECT_EQ(fired, 3);
  const auto tags = prof.by_tag();
  EXPECT_EQ(tags.at("unit/a").events, 2u);
  EXPECT_EQ(tags.at("unit/b").events, 1u);
  EXPECT_EQ(prof.by_subsystem().at("unit").events, 3u);
}

TEST(Profiler, HarnessEmitsProfileKeyOnlyWhenRequested) {
  const auto run = [](bool profile) {
    ds::ExperimentOptions opts;
    opts.quiet = true;
    opts.emit_json = false;
    opts.profile = profile;
    ds::ExperimentHarness ex("unit_profile", opts);
    ds::Simulator sim(1);
    ex.instrument(sim);
    for (int i = 0; i < 8; ++i) {
      sim.post(ds::millis(i), [] {}, "unit/tick");
    }
    sim.run_all();
    return ex.to_json();
  };
  const std::string with = run(true);
  EXPECT_NE(with.find("\"profile\""), std::string::npos);
  EXPECT_NE(with.find("\"unit/tick\""), std::string::npos);
  const std::string without = run(false);
  EXPECT_EQ(without.find("\"profile\""), std::string::npos);
}

TEST(Profiler, RunPointsMergesPointProfilers) {
  ds::ExperimentOptions opts;
  opts.quiet = true;
  opts.emit_json = false;
  opts.profile = true;
  opts.jobs = 2;
  ds::ExperimentHarness ex("unit_profile_points", opts);
  ex.run_points(4, [](ds::PointScope& scope) {
    ds::Simulator sim(scope.root_seed() + scope.index());
    scope.instrument(sim);
    sim.post(ds::millis(1), [] {}, "pt/work");
    sim.run_all();
    scope.add_row({{"point", std::uint64_t{scope.index()}}});
  });
  const std::string json = ex.to_json();
  EXPECT_NE(json.find("\"profile\""), std::string::npos);
  EXPECT_NE(json.find("\"pt/work\""), std::string::npos);
  // All four points' events merged into one report.
  EXPECT_NE(json.find("\"events\":4"), std::string::npos);
}
