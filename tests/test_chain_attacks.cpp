// Selfish mining, double-spend, energy and pool-concentration models.
#include <gtest/gtest.h>

#include "chain/attacks.hpp"
#include "chain/economics.hpp"
#include "sim/stats.hpp"

namespace dc = decentnet::chain;
namespace ds = decentnet::sim;

// --- Selfish mining ----------------------------------------------------------

TEST(SelfishMining, AnalyticMatchesKnownValues) {
  // At the gamma=0 threshold alpha=1/3 revenue equals the fair share.
  EXPECT_NEAR(dc::selfish_revenue_analytic(1.0 / 3.0, 0.0), 1.0 / 3.0, 1e-9);
  // Thresholds from the paper.
  EXPECT_NEAR(dc::selfish_threshold(0.0), 1.0 / 3.0, 1e-12);
  EXPECT_NEAR(dc::selfish_threshold(1.0), 0.0, 1e-12);
  EXPECT_NEAR(dc::selfish_threshold(0.5), 0.25, 1e-12);
}

class SelfishSweep
    : public ::testing::TestWithParam<std::tuple<double, double>> {};

TEST_P(SelfishSweep, MonteCarloTracksAnalytic) {
  const auto [alpha, gamma] = GetParam();
  ds::Rng rng(1234);
  const auto out = dc::simulate_selfish_mining(alpha, gamma, 1'000'000, rng);
  const double analytic = dc::selfish_revenue_analytic(alpha, gamma);
  EXPECT_NEAR(out.pool_revenue_share(), analytic, 0.01)
      << "alpha=" << alpha << " gamma=" << gamma;
}

INSTANTIATE_TEST_SUITE_P(
    AlphaGamma, SelfishSweep,
    ::testing::Values(std::make_tuple(0.2, 0.0), std::make_tuple(0.3, 0.0),
                      std::make_tuple(0.4, 0.0), std::make_tuple(0.45, 0.0),
                      std::make_tuple(0.3, 0.5), std::make_tuple(0.4, 0.5),
                      std::make_tuple(0.3, 1.0), std::make_tuple(0.4, 1.0)));

TEST(SelfishMining, BelowThresholdEarnsLessThanFair) {
  ds::Rng rng(5);
  const auto out = dc::simulate_selfish_mining(0.2, 0.0, 2'000'000, rng);
  EXPECT_LT(out.pool_revenue_share(), 0.2);
}

TEST(SelfishMining, AboveThresholdEarnsMoreThanFair) {
  ds::Rng rng(6);
  const auto out = dc::simulate_selfish_mining(0.4, 0.0, 2'000'000, rng);
  EXPECT_GT(out.pool_revenue_share(), 0.4);
}

TEST(SelfishMining, CausesStaleBlocks) {
  ds::Rng rng(7);
  const auto out = dc::simulate_selfish_mining(0.35, 0.5, 1'000'000, rng);
  EXPECT_GT(out.stale_rate(), 0.01)
      << "withholding must orphan honest work";
}

TEST(SelfishMining, ZeroAlphaEarnsNothing) {
  ds::Rng rng(8);
  const auto out = dc::simulate_selfish_mining(0.0, 0.0, 100'000, rng);
  EXPECT_EQ(out.pool_blocks, 0u);
  EXPECT_EQ(out.honest_blocks, 100'000u);
}

// --- Double spend -------------------------------------------------------------

TEST(DoubleSpend, AnalyticBoundaries) {
  EXPECT_DOUBLE_EQ(dc::doublespend_success_probability(0.0, 6), 0.0);
  EXPECT_DOUBLE_EQ(dc::doublespend_success_probability(0.5, 6), 1.0);
  EXPECT_DOUBLE_EQ(dc::doublespend_success_probability(0.6, 1), 1.0);
  // Nakamoto's table: q=0.1, z=10 -> ~0.0000012 (vanishing).
  EXPECT_LT(dc::doublespend_success_probability(0.1, 10), 1e-4);
  // q=0.3, z=6 -> ~0.13 in Nakamoto's paper (his formula).
  EXPECT_NEAR(dc::doublespend_success_probability(0.3, 6), 0.13, 0.05);
}

TEST(DoubleSpend, MoreConfirmationsLowerRisk) {
  double prev = 1.0;
  for (unsigned z = 0; z <= 8; z += 2) {
    const double p = dc::doublespend_success_probability(0.25, z);
    EXPECT_LE(p, prev + 1e-12);
    prev = p;
  }
}

class DoubleSpendMc : public ::testing::TestWithParam<std::tuple<double, unsigned>> {};

TEST_P(DoubleSpendMc, MonteCarloTracksAnalytic) {
  const auto [q, z] = GetParam();
  ds::Rng rng(777);
  const double mc = dc::doublespend_success_mc(q, z, 100'000, 200, rng);
  const double an = dc::doublespend_success_probability(q, z);
  // Nakamoto's closed form uses a Poisson approximation for the attacker's
  // head start; the Monte Carlo runs the exact race; the gap widens as q approaches 0.5.
  EXPECT_NEAR(mc, an, 0.035) << "q=" << q << " z=" << z;
}

INSTANTIATE_TEST_SUITE_P(
    QZ, DoubleSpendMc,
    ::testing::Values(std::make_tuple(0.1, 2), std::make_tuple(0.1, 6),
                      std::make_tuple(0.25, 2), std::make_tuple(0.25, 6),
                      std::make_tuple(0.4, 4), std::make_tuple(0.45, 2)));

// --- Energy model --------------------------------------------------------------

TEST(Energy, EquilibriumScalesWithPrice) {
  dc::EnergyParams p;
  p.coin_price_usd = 10000;
  const double h1 = dc::equilibrium_hashrate(p);
  p.coin_price_usd = 20000;
  const double h2 = dc::equilibrium_hashrate(p);
  EXPECT_NEAR(h2 / h1, 2.0, 1e-9) << "hashrate tracks price linearly";
}

TEST(Energy, Circa2018NumbersReproduceTensOfTwh) {
  // ~$8k BTC, 12.5 BTC reward, 144 blocks/day, 50 pJ/hash, 5 ct/kWh:
  // the Economist's "~70 TWh/yr, roughly Austria" claim should appear.
  dc::EnergyParams p;
  p.coin_price_usd = 8000;
  p.block_reward_coins = 12.5;
  p.blocks_per_day = 144;
  p.joules_per_hash = 50e-12;
  p.electricity_usd_per_kwh = 0.05;
  p.electricity_revenue_fraction = 0.7;
  const double h = dc::equilibrium_hashrate(p);
  const double twh = dc::annual_energy_twh(h, p.joules_per_hash);
  EXPECT_GT(twh, 30.0);
  EXPECT_LT(twh, 120.0);
}

TEST(Energy, ConsumptionIndependentOfThroughput) {
  // Throughput depends on block size; energy does not.
  dc::EnergyParams p;
  const double h = dc::equilibrium_hashrate(p);
  const double tx_small = dc::daily_tx_capacity(144, 1'000'000, 250);
  const double tx_large = dc::daily_tx_capacity(144, 8'000'000, 250);
  EXPECT_NEAR(tx_large / tx_small, 8.0, 1e-9);
  // Same hashrate either way: energy per tx differs 8x.
  EXPECT_GT(h, 0);
}

// --- Pool concentration ---------------------------------------------------------

TEST(Pools, ScaleEconomiesConcentrateHashpower) {
  dc::PoolSimConfig flat;
  flat.scale_exponent = 0.0;
  flat.rounds = 300;
  dc::PoolSimConfig scaled = flat;
  scaled.scale_exponent = 0.25;
  ds::Rng rng1(42), rng2(42);
  const auto flat_shares = dc::simulate_pool_concentration(flat, rng1);
  const auto scaled_shares = dc::simulate_pool_concentration(scaled, rng2);
  const double gini_flat = ds::gini(flat_shares);
  const double gini_scaled = ds::gini(scaled_shares);
  EXPECT_GT(gini_scaled, gini_flat)
      << "economies of scale must increase inequality";
  EXPECT_LE(ds::nakamoto_coefficient(scaled_shares),
            ds::nakamoto_coefficient(flat_shares));
}

TEST(Pools, OutputSizesMatchMinerCount) {
  dc::PoolSimConfig cfg;
  cfg.miners = 500;
  cfg.rounds = 50;
  ds::Rng rng(1);
  const auto shares = dc::simulate_pool_concentration(cfg, rng);
  EXPECT_EQ(shares.size(), 500u);
  for (double s : shares) EXPECT_GE(s, 0.0);
}
