// sim::Shared<T> semantics (refcount, aliasing, destruction) and the
// zero-copy relay contract: disseminating one payload over a mesh performs
// one payload allocation per broadcast, not one per neighbor.
#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "net/latency.hpp"
#include "net/message.hpp"
#include "net/network.hpp"
#include "overlay/flood.hpp"
#include "overlay/gossip.hpp"
#include "sim/shared.hpp"
#include "sim/simulator.hpp"

namespace dn = decentnet::net;
namespace ds = decentnet::sim;
namespace dov = decentnet::overlay;

namespace {

struct Tracked {
  explicit Tracked(int* live) : live_(live) { ++*live_; }
  Tracked(const Tracked&) = delete;
  Tracked& operator=(const Tracked&) = delete;
  ~Tracked() { --*live_; }
  int* live_;
};

}  // namespace

TEST(Shared, RefcountTracksCopiesAndMoves) {
  int live = 0;
  {
    auto a = ds::Shared<Tracked>::make(&live);
    EXPECT_EQ(live, 1);
    EXPECT_EQ(a.use_count(), 1u);

    auto b = a;  // copy aliases, bumps the count
    EXPECT_EQ(a.use_count(), 2u);
    EXPECT_EQ(a.get(), b.get());
    EXPECT_EQ(live, 1);

    auto c = std::move(b);  // move transfers, count unchanged
    EXPECT_EQ(c.use_count(), 2u);
    EXPECT_FALSE(b);  // NOLINT(bugprone-use-after-move): moved-from is empty

    {
      // Type-erased round trip: the ref carried inside net::Message.
      ds::PayloadRef ref = c.ref();
      EXPECT_EQ(c.use_count(), 3u);
      ds::Shared<Tracked> back(std::move(ref));
      EXPECT_EQ(back.get(), a.get());
      EXPECT_EQ(a.use_count(), 3u);
    }
    EXPECT_EQ(a.use_count(), 2u);
    EXPECT_EQ(live, 1);
  }
  EXPECT_EQ(live, 0);  // last owner destroys the value exactly once
}

TEST(Shared, MakeCountsOneAllocation) {
  const std::uint64_t before = ds::shared_payload_allocations();
  auto s = ds::Shared<int>::make(7);
  auto copy1 = s;
  auto copy2 = s;
  EXPECT_EQ(*copy2, 7);
  EXPECT_EQ(ds::shared_payload_allocations(), before + 1);
}

TEST(Shared, MessageDeliveryAliasesThePayload) {
  ds::Simulator sim(3);
  dn::Network net(sim, std::make_unique<dn::ConstantLatency>(ds::millis(5)),
                  dn::NetworkConfig{.expected_nodes = 3});

  struct Probe final : dn::Host {
    const void* seen = nullptr;
    void handle_message(const dn::Message& msg) override {
      seen = msg.payload.get();
    }
  };
  Probe a, b;
  const dn::NodeId origin = net.new_node_id();
  const dn::NodeId na = net.new_node_id();
  const dn::NodeId nb = net.new_node_id();
  net.attach(na, &a);
  net.attach(nb, &b);

  auto payload = ds::Shared<std::string>::make("block body");
  const void* value = payload.get();
  const std::uint64_t before = ds::shared_payload_allocations();
  net.send(origin, na, payload, 100);
  net.send(origin, nb, payload, 100);
  sim.run_until(ds::seconds(1));

  EXPECT_EQ(ds::shared_payload_allocations(), before);  // fan-out is free
  EXPECT_EQ(a.seen, value);
  EXPECT_EQ(b.seen, value);
}

TEST(SharedRelay, GossipBroadcastAllocatesOncePerRumor) {
  ds::Simulator sim(11);
  dn::Network net(sim,
                  std::make_unique<dn::ConstantLatency>(ds::millis(20)),
                  dn::NetworkConfig{.expected_nodes = 24});
  dov::GossipConfig cfg;
  cfg.fanout = 4;
  cfg.view_size = 8;
  cfg.shuffle_interval = ds::hours(10);  // keep shuffle traffic out of frame

  const std::size_t n = 24;
  std::vector<dn::NodeId> addrs;
  for (std::size_t i = 0; i < n; ++i) addrs.push_back(net.new_node_id());
  std::vector<std::unique_ptr<dov::GossipNode>> nodes;
  std::size_t delivered = 0;
  for (std::size_t i = 0; i < n; ++i) {
    nodes.push_back(std::make_unique<dov::GossipNode>(net, addrs[i], cfg));
    nodes.back()->set_deliver_hook(
        [&delivered](dov::RumorId, std::size_t) { ++delivered; });
  }
  for (std::size_t i = 0; i < n; ++i) {
    std::vector<dn::NodeId> view;
    for (std::size_t k = 1; k <= cfg.view_size; ++k) {
      view.push_back(addrs[(i + k) % n]);
    }
    nodes[i]->join(view);
  }

  const std::uint64_t before = ds::shared_payload_allocations();
  nodes[0]->broadcast(/*rumor=*/99, /*payload_bytes=*/4096);
  sim.run_until(sim.now() + ds::seconds(30));

  // Every node saw the rumor, yet the 4 KB payload was allocated exactly
  // once — each relay re-sends the same Shared<Rumor>.
  EXPECT_EQ(delivered, n);
  EXPECT_EQ(ds::shared_payload_allocations(), before + 1);
}

TEST(SharedRelay, FloodQueryAllocatesOncePlusOnePerHit) {
  ds::Simulator sim(12);
  dn::Network net(sim, std::make_unique<dn::ConstantLatency>(ds::millis(10)),
                  dn::NetworkConfig{.expected_nodes = 8});
  dov::FloodConfig cfg;

  // A line 0-1-...-7 with the item at the far end: the query is relayed
  // through every node, the hit walks the reverse path back.
  const std::size_t n = 8;
  std::vector<dn::NodeId> addrs;
  for (std::size_t i = 0; i < n; ++i) addrs.push_back(net.new_node_id());
  std::vector<std::unique_ptr<dov::GnutellaNode>> nodes;
  for (std::size_t i = 0; i < n; ++i) {
    nodes.push_back(
        std::make_unique<dov::GnutellaNode>(net, addrs[i], cfg));
    std::vector<dn::NodeId> neighbors;
    if (i > 0) neighbors.push_back(addrs[i - 1]);
    if (i + 1 < n) neighbors.push_back(addrs[i + 1]);
    nodes.back()->join(std::move(neighbors));
  }
  nodes.back()->add_content(/*item=*/5);

  const std::uint64_t before = ds::shared_payload_allocations();
  bool found = false;
  nodes[0]->query(5, [&found](dov::QueryOutcome o) { found = o.found; });
  sim.run_until(sim.now() + ds::seconds(10));

  EXPECT_TRUE(found);
  // One Query allocation shared by all 7 relays, one QueryHit shared by the
  // 6 reverse-path hops.
  EXPECT_EQ(ds::shared_payload_allocations(), before + 2);
}
