// PBFT tests: three-phase commit, client reply quorums, in-order execution,
// batching, crash tolerance up to f, and view change on primary failure.
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "bft/pbft.hpp"
#include "net/network.hpp"

namespace db = decentnet::bft;
namespace dn = decentnet::net;
namespace ds = decentnet::sim;

namespace {

struct PbftCluster {
  ds::Simulator sim{61};
  dn::Network net{sim, std::make_unique<dn::ConstantLatency>(ds::millis(5))};
  db::PbftConfig config;
  std::vector<std::unique_ptr<db::PbftReplica>> replicas;
  std::vector<std::vector<db::Command>> executed;
  std::unique_ptr<db::PbftClient> client;
  std::vector<std::pair<db::Command, ds::SimDuration>> completions;

  explicit PbftCluster(std::size_t f, db::PbftConfig cfg = {}) {
    cfg.f = f;
    config = cfg;
    const std::size_t n = 3 * f + 1;
    std::vector<dn::NodeId> addrs;
    for (std::size_t i = 0; i < n; ++i) addrs.push_back(net.new_node_id());
    executed.resize(n);
    for (std::size_t i = 0; i < n; ++i) {
      replicas.push_back(
          std::make_unique<db::PbftReplica>(net, addrs[i], i, cfg));
      replicas.back()->set_group(addrs);
      replicas.back()->set_commit_hook(
          [this, i](std::uint64_t, const db::Command& cmd) {
            executed[i].push_back(cmd);
          });
    }
    client = std::make_unique<db::PbftClient>(net, net.new_node_id(), 1, cfg);
    client->set_group(addrs);
    client->set_done_hook(
        [this](const db::Command& cmd, ds::SimDuration latency) {
          completions.emplace_back(cmd, latency);
        });
  }
};

}  // namespace

TEST(Pbft, CommitsASingleRequest) {
  PbftCluster pc(1);
  pc.client->submit("hello");
  pc.sim.run_until(ds::seconds(5));
  EXPECT_EQ(pc.completions.size(), 1u);
  for (std::size_t i = 0; i < pc.replicas.size(); ++i) {
    ASSERT_EQ(pc.executed[i].size(), 1u) << "replica " << i;
    EXPECT_EQ(pc.executed[i][0].op, "hello");
  }
}

TEST(Pbft, ExecutesManyRequestsInIdenticalOrder) {
  PbftCluster pc(1);
  for (int i = 0; i < 50; ++i) pc.client->submit("op" + std::to_string(i));
  pc.sim.run_until(ds::seconds(30));
  EXPECT_EQ(pc.completions.size(), 50u);
  for (std::size_t r = 1; r < pc.replicas.size(); ++r) {
    ASSERT_EQ(pc.executed[r].size(), pc.executed[0].size());
    for (std::size_t i = 0; i < pc.executed[0].size(); ++i) {
      EXPECT_EQ(pc.executed[r][i].id, pc.executed[0][i].id)
          << "order divergence at " << i;
    }
  }
}

TEST(Pbft, BatchingReducesConsensusRounds) {
  db::PbftConfig batched;
  batched.batch_size = 10;
  PbftCluster pc(1, batched);
  for (int i = 0; i < 40; ++i) pc.client->submit("op" + std::to_string(i));
  pc.sim.run_until(ds::seconds(30));
  EXPECT_EQ(pc.completions.size(), 40u);
  // 40 requests in batches of ~10 -> executed_count (sequence slots) small.
  EXPECT_LE(pc.replicas[0]->executed_count(), 10u);
}

TEST(Pbft, ToleratesFCrashedBackups) {
  PbftCluster pc(1);  // n = 4, tolerates 1
  // Crash one non-primary replica.
  pc.replicas[2]->crash();
  for (int i = 0; i < 10; ++i) pc.client->submit("op" + std::to_string(i));
  pc.sim.run_until(ds::seconds(30));
  EXPECT_EQ(pc.completions.size(), 10u)
      << "f crashed backups must not block progress";
}

TEST(Pbft, StallsBeyondFCrashes) {
  PbftCluster pc(1);
  pc.replicas[2]->crash();
  pc.replicas[3]->crash();  // two failures with f = 1
  pc.client->submit("doomed");
  pc.sim.run_until(ds::seconds(30));
  EXPECT_EQ(pc.completions.size(), 0u)
      << "more than f failures must prevent commitment";
}

TEST(Pbft, ViewChangeReplacesCrashedPrimary) {
  PbftCluster pc(1);
  pc.replicas[0]->crash();  // primary of view 0
  pc.client->submit("after-crash");
  pc.sim.run_until(ds::minutes(2));
  ASSERT_EQ(pc.completions.size(), 1u)
      << "view change should recover liveness";
  // Survivors moved past view 0.
  for (std::size_t i = 1; i < 4; ++i) {
    EXPECT_GT(pc.replicas[i]->view(), 0u) << "replica " << i;
  }
  // And the committed op is executed by all survivors.
  for (std::size_t i = 1; i < 4; ++i) {
    ASSERT_EQ(pc.executed[i].size(), 1u);
    EXPECT_EQ(pc.executed[i][0].op, "after-crash");
  }
}

TEST(Pbft, SurvivesPrimaryCrashMidStream) {
  PbftCluster pc(1);
  for (int i = 0; i < 5; ++i) pc.client->submit("pre" + std::to_string(i));
  pc.sim.run_until(ds::seconds(10));
  pc.replicas[0]->crash();
  for (int i = 0; i < 5; ++i) pc.client->submit("post" + std::to_string(i));
  pc.sim.run_until(ds::minutes(3));
  EXPECT_EQ(pc.completions.size(), 10u);
  // Execution histories of the survivors agree.
  for (std::size_t r = 2; r < 4; ++r) {
    const std::size_t common =
        std::min(pc.executed[1].size(), pc.executed[r].size());
    for (std::size_t i = 0; i < common; ++i) {
      EXPECT_EQ(pc.executed[1][i].id, pc.executed[r][i].id);
    }
  }
}

TEST(Pbft, LargerClustersStillCommit) {
  PbftCluster pc(3);  // n = 10
  for (int i = 0; i < 10; ++i) pc.client->submit("op" + std::to_string(i));
  pc.sim.run_until(ds::seconds(30));
  EXPECT_EQ(pc.completions.size(), 10u);
}

TEST(Pbft, QuadraticMessageComplexity) {
  // Message count per request grows ~n^2: measure n=4 vs n=10.
  auto run = [](std::size_t f) {
    PbftCluster pc(f);
    const auto before = pc.net.messages_sent();
    for (int i = 0; i < 10; ++i) pc.client->submit("op");
    pc.sim.run_until(ds::seconds(20));
    EXPECT_EQ(pc.completions.size(), 10u);
    return (pc.net.messages_sent() - before) / 10;
  };
  const auto small = run(1);   // n = 4
  const auto large = run(3);   // n = 10
  // (10/4)^2 ~ 6.2x; demand at least 3x to allow for client traffic.
  EXPECT_GT(large, small * 3);
}

TEST(Pbft, DuplicateClientRequestExecutedOnce) {
  PbftCluster pc(1);
  pc.client->submit("only-once");
  pc.sim.run_until(ds::seconds(5));
  // Client retry path: resubmit the same command id manually by poking the
  // replicas with a duplicate request.
  ASSERT_EQ(pc.executed[1].size(), 1u);
  const db::Command& cmd = pc.executed[1][0];
  for (auto& r : pc.replicas) {
    pc.net.send(pc.client->addr(), r->addr(), db::pbft_msg::Request{cmd}, 64);
  }
  pc.sim.run_until(pc.sim.now() + ds::seconds(10));
  for (std::size_t i = 0; i < 4; ++i) {
    EXPECT_EQ(pc.executed[i].size(), 1u) << "replica " << i;
  }
}
