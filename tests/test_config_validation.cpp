// Config validation: every *ScenarioConfig, KademliaConfig and NetworkConfig
// rejects unrunnable settings with an actionable message, and the scenario
// runners refuse invalid configs on entry instead of producing silent
// nonsense.
#include <gtest/gtest.h>

#include <memory>
#include <stdexcept>

#include "core/scenarios.hpp"
#include "net/latency.hpp"
#include "net/network.hpp"
#include "overlay/kademlia.hpp"
#include "sim/simulator.hpp"

namespace dc = decentnet::core;
namespace dn = decentnet::net;
namespace ds = decentnet::sim;
namespace dov = decentnet::overlay;

TEST(ConfigValidation, PowDefaultsAreValid) {
  EXPECT_FALSE(dc::PowScenarioConfig{}.validate().has_value());
  EXPECT_FALSE(dc::FabricScenarioConfig{}.validate().has_value());
  EXPECT_FALSE(dc::PartitionedScenarioConfig{}.validate().has_value());
  EXPECT_FALSE(dc::EdgeScenarioConfig{}.validate().has_value());
  EXPECT_FALSE(dn::NetworkConfig{}.validate().has_value());
  EXPECT_FALSE(dov::KademliaConfig{}.validate().has_value());
}

TEST(ConfigValidation, PowRejectsBadShapes) {
  dc::PowScenarioConfig cfg;
  cfg.miners = cfg.nodes + 1;
  auto err = cfg.validate();
  ASSERT_TRUE(err.has_value());
  EXPECT_NE(err->find("miners"), std::string::npos);

  cfg = dc::PowScenarioConfig{};
  cfg.degree = cfg.nodes;  // a mesh needs degree < nodes
  err = cfg.validate();
  ASSERT_TRUE(err.has_value());
  EXPECT_NE(err->find("degree"), std::string::npos);

  cfg = dc::PowScenarioConfig{};
  cfg.total_hashrate = 0;
  EXPECT_TRUE(cfg.validate().has_value());

  cfg = dc::PowScenarioConfig{};
  cfg.common.duration = 0;
  EXPECT_TRUE(cfg.validate().has_value());

  cfg = dc::PowScenarioConfig{};
  cfg.common.transport.mode = dn::TransportMode::Bandwidth;
  cfg.common.transport.link.up_bps = 0;
  EXPECT_TRUE(cfg.validate().has_value());
}

TEST(ConfigValidation, RunnersThrowOnInvalidConfig) {
  dc::PowScenarioConfig pow;
  pow.miners = pow.nodes + 1;
  EXPECT_THROW(dc::run_pow_scenario(pow), std::invalid_argument);

  dc::FabricScenarioConfig fab;
  fab.required_endorsements = fab.orgs * fab.peers_per_org + 1;
  EXPECT_THROW(dc::run_fabric_scenario(fab), std::invalid_argument);

  dc::PartitionedScenarioConfig part;
  part.replicas = 0;
  EXPECT_THROW(dc::run_partitioned_scenario(part), std::invalid_argument);

  dc::EdgeScenarioConfig edge;
  edge.requests = 0;
  EXPECT_THROW(dc::run_edge_scenario(edge), std::invalid_argument);
}

TEST(ConfigValidation, FabricRejectsBadShapes) {
  dc::FabricScenarioConfig cfg;
  cfg.required_endorsements = 0;
  auto err = cfg.validate();
  ASSERT_TRUE(err.has_value());
  EXPECT_NE(err->find("required_endorsements"), std::string::npos);

  cfg = dc::FabricScenarioConfig{};
  cfg.orderer_nodes = 0;
  EXPECT_TRUE(cfg.validate().has_value());

  cfg = dc::FabricScenarioConfig{};
  cfg.tx_rate_per_sec = 0;
  EXPECT_TRUE(cfg.validate().has_value());

  cfg = dc::FabricScenarioConfig{};
  cfg.block_timeout = 0;
  EXPECT_TRUE(cfg.validate().has_value());
}

TEST(ConfigValidation, NetworkRejectsBadProbabilityAndCapacity) {
  dn::NetworkConfig cfg;
  cfg.drop_probability = 1.5;
  auto err = cfg.validate();
  ASSERT_TRUE(err.has_value());
  EXPECT_NE(err->find("drop_probability"), std::string::npos);

  cfg = dn::NetworkConfig{};
  cfg.transport.link.up_bps = 0;
  auto terr = cfg.validate();
  ASSERT_TRUE(terr.has_value());
  EXPECT_NE(terr->find("up_bps"), std::string::npos);

  dn::TransportConfig tcfg;
  tcfg.mode = dn::TransportMode::Tcp;
  tcfg.mss_bytes = 0;
  auto merr = tcfg.validate();
  ASSERT_TRUE(merr.has_value());
  EXPECT_NE(merr->find("mss_bytes"), std::string::npos);
}

TEST(ConfigValidation, KademliaNodeRejectsInvalidConfig) {
  dov::KademliaConfig cfg;
  cfg.k = 0;
  auto err = cfg.validate();
  ASSERT_TRUE(err.has_value());
  EXPECT_NE(err->find("k"), std::string::npos);

  ds::Simulator sim(1);
  dn::Network net(sim, std::make_unique<dn::ConstantLatency>(ds::millis(1)));
  EXPECT_THROW(dov::KademliaNode(net, net.new_node_id(), cfg),
               std::invalid_argument);

  cfg = dov::KademliaConfig{};
  cfg.alpha = 0;
  EXPECT_TRUE(cfg.validate().has_value());
  cfg = dov::KademliaConfig{};
  cfg.rpc_timeout = 0;
  EXPECT_TRUE(cfg.validate().has_value());
}
