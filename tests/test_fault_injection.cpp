// Failure injection: protocols that must survive a lossy, flaky network.
// Raft's retransmitting heartbeats and gossip's redundancy are the two
// self-healing mechanisms the cloud stack (and Fabric) leans on.
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "bft/raft.hpp"
#include "net/network.hpp"
#include "overlay/gossip.hpp"
#include "sim/simulator.hpp"

namespace db = decentnet::bft;
namespace dn = decentnet::net;
namespace ds = decentnet::sim;
namespace ov = decentnet::overlay;

TEST(FaultInjection, RaftCommitsDespiteMessageLoss) {
  ds::Simulator sim(99);
  dn::Network net(sim, std::make_unique<dn::ConstantLatency>(ds::millis(5)));
  net.set_drop_probability(0.10);  // 10% of every message vanishes
  std::vector<dn::NodeId> addrs;
  for (int i = 0; i < 5; ++i) addrs.push_back(net.new_node_id());
  std::vector<std::unique_ptr<db::RaftNode>> nodes;
  std::vector<std::vector<db::Command>> applied(5);
  for (std::size_t i = 0; i < 5; ++i) {
    nodes.push_back(std::make_unique<db::RaftNode>(net, addrs[i], i,
                                                   db::RaftConfig{}));
    nodes.back()->set_group(addrs);
    nodes.back()->set_commit_hook(
        [&applied, i](std::uint64_t, const db::Command& cmd) {
          applied[i].push_back(cmd);
        });
    nodes.back()->start();
  }
  sim.run_until(ds::seconds(5));
  // Propose through whoever leads, re-finding the leader as terms churn.
  std::uint64_t next = 1;
  for (int round = 0; round < 40; ++round) {
    for (auto& n : nodes) {
      if (n->is_leader()) {
        db::Command cmd;
        cmd.id = next++;
        n->propose(std::move(cmd));
        break;
      }
    }
    sim.run_until(sim.now() + ds::millis(500));
  }
  sim.run_until(sim.now() + ds::seconds(10));
  // Liveness: most proposals commit; safety: identical prefixes.
  EXPECT_GT(applied[0].size(), 25u);
  for (std::size_t nidx = 1; nidx < 5; ++nidx) {
    const std::size_t common =
        std::min(applied[0].size(), applied[nidx].size());
    for (std::size_t i = 0; i < common; ++i) {
      EXPECT_EQ(applied[0][i].id, applied[nidx][i].id);
    }
  }
}

TEST(FaultInjection, GossipCoverageSurvivesLoss) {
  ds::Simulator sim(5);
  dn::Network net(sim, std::make_unique<dn::ConstantLatency>(ds::millis(15)));
  net.set_drop_probability(0.20);
  ov::GossipConfig cfg;
  cfg.fanout = 6;  // extra redundancy vs the lossless default of 4
  std::vector<dn::NodeId> addrs;
  const std::size_t n = 150;
  for (std::size_t i = 0; i < n; ++i) addrs.push_back(net.new_node_id());
  std::vector<std::unique_ptr<ov::GossipNode>> nodes;
  ds::Rng rng(2);
  for (std::size_t i = 0; i < n; ++i) {
    nodes.push_back(std::make_unique<ov::GossipNode>(net, addrs[i], cfg));
    std::vector<dn::NodeId> view;
    for (int k = 0; k < 10; ++k) view.push_back(addrs[rng.uniform_int(n)]);
    nodes.back()->join(view);
  }
  sim.run_until(ds::minutes(2));
  nodes[0]->broadcast(1, 128);
  sim.run_until(sim.now() + ds::minutes(1));
  std::size_t reached = 0;
  for (const auto& node : nodes) {
    if (node->has_seen(1)) ++reached;
  }
  EXPECT_GT(reached, n * 85 / 100)
      << "epidemic redundancy should absorb 20% loss";
}

TEST(FaultInjection, RaftRecoversFromRollingCrashes) {
  ds::Simulator sim(123);
  dn::Network net(sim, std::make_unique<dn::ConstantLatency>(ds::millis(5)));
  std::vector<dn::NodeId> addrs;
  for (int i = 0; i < 5; ++i) addrs.push_back(net.new_node_id());
  std::vector<std::unique_ptr<db::RaftNode>> nodes;
  std::vector<std::vector<db::Command>> applied(5);
  for (std::size_t i = 0; i < 5; ++i) {
    nodes.push_back(std::make_unique<db::RaftNode>(net, addrs[i], i,
                                                   db::RaftConfig{}));
    nodes.back()->set_group(addrs);
    nodes.back()->set_commit_hook(
        [&applied, i](std::uint64_t, const db::Command& cmd) {
          applied[i].push_back(cmd);
        });
    nodes.back()->start();
  }
  sim.run_until(ds::seconds(2));
  std::uint64_t next = 1;
  // Roll a crash across the cluster: one node down at a time.
  for (std::size_t victim = 0; victim < 5; ++victim) {
    nodes[victim]->crash();
    for (int i = 0; i < 5; ++i) {
      sim.run_until(sim.now() + ds::seconds(1));
      for (auto& nd : nodes) {
        if (nd->is_leader()) {
          db::Command cmd;
          cmd.id = next++;
          nd->propose(std::move(cmd));
          break;
        }
      }
    }
    nodes[victim]->restart();
    sim.run_until(sim.now() + ds::seconds(2));
  }
  sim.run_until(sim.now() + ds::seconds(5));
  // All nodes eventually applied the same full sequence.
  EXPECT_GT(applied[0].size(), 15u);
  for (std::size_t nidx = 1; nidx < 5; ++nidx) {
    EXPECT_EQ(applied[nidx].size(), applied[0].size()) << "node " << nidx;
    for (std::size_t i = 0; i < applied[0].size(); ++i) {
      EXPECT_EQ(applied[0][i].id, applied[nidx][i].id);
    }
  }
}
