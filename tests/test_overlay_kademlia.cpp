// Kademlia tests: joins populate routing tables, iterative lookups converge
// to the globally closest nodes, store/find_value round-trips, bucket
// eviction prefers live long-lived contacts, and offline nodes surface as
// timeouts rather than hangs.
#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <memory>
#include <vector>

#include "net/network.hpp"
#include "overlay/kademlia.hpp"

namespace dn = decentnet::net;
namespace ds = decentnet::sim;
namespace ov = decentnet::overlay;

namespace {

struct KadNet {
  ds::Simulator sim{12345};
  dn::Network net{sim, std::make_unique<dn::ConstantLatency>(ds::millis(20))};
  ov::KademliaConfig config;
  std::vector<std::unique_ptr<ov::KademliaNode>> nodes;

  explicit KadNet(std::size_t n, ov::KademliaConfig cfg = {}) : config(cfg) {
    for (std::size_t i = 0; i < n; ++i) {
      nodes.push_back(std::make_unique<ov::KademliaNode>(
          net, net.new_node_id(), config));
    }
    // Join sequentially through node 0.
    nodes[0]->join({});
    for (std::size_t i = 1; i < n; ++i) {
      nodes[i]->join({{nodes[0]->id(), nodes[0]->addr()}});
      sim.run_until(sim.now() + ds::seconds(2));
    }
    sim.run_until(sim.now() + ds::seconds(10));
  }

  /// Ground truth: the k closest online node ids to `target`.
  std::vector<ov::Key> true_closest(const ov::Key& target,
                                    std::size_t k) const {
    std::vector<ov::Key> ids;
    for (const auto& n : nodes) {
      if (n->online()) ids.push_back(n->id());
    }
    std::sort(ids.begin(), ids.end(), [&](const ov::Key& a, const ov::Key& b) {
      return a.distance_to(target) < b.distance_to(target);
    });
    if (ids.size() > k) ids.resize(k);
    return ids;
  }
};

}  // namespace

TEST(Kademlia, JoinPopulatesRoutingTables) {
  KadNet kad(30);
  for (const auto& n : kad.nodes) {
    EXPECT_GE(n->routing_table_size(), 5u) << "node has too few contacts";
  }
}

TEST(Kademlia, LookupFindsGloballyClosestNodes) {
  KadNet kad(40);
  const ov::Key target = decentnet::crypto::sha256("some random target");
  bool done = false;
  ov::LookupResult result;
  kad.nodes[7]->lookup(target, [&](ov::LookupResult r) {
    done = true;
    result = std::move(r);
  });
  kad.sim.run_until(kad.sim.now() + ds::minutes(1));
  ASSERT_TRUE(done);
  ASSERT_FALSE(result.closest.empty());
  // The best discovered contact must be the true global best (or within the
  // true top-k, allowing for routing-table staleness at this small scale).
  const auto truth = kad.true_closest(target, kad.config.k);
  EXPECT_EQ(result.closest.front().id, truth.front());
}

TEST(Kademlia, StoreThenFindValueFromAnyNode) {
  KadNet kad(25);
  const ov::Key key = decentnet::crypto::sha256("the-key");
  bool stored = false;
  kad.nodes[3]->store(key, "the-value", [&](std::size_t replicas) {
    stored = true;
    EXPECT_GT(replicas, 0u);
  });
  kad.sim.run_until(kad.sim.now() + ds::minutes(1));
  ASSERT_TRUE(stored);
  // Retrieve from a different node.
  bool found = false;
  kad.nodes[17]->find_value(key, [&](ov::LookupResult r) {
    found = r.found_value;
    if (r.found_value) EXPECT_EQ(*r.value, "the-value");
  });
  kad.sim.run_until(kad.sim.now() + ds::minutes(1));
  EXPECT_TRUE(found);
}

TEST(Kademlia, FindValueMissesForUnknownKey) {
  KadNet kad(15);
  bool done = false;
  kad.nodes[2]->find_value(decentnet::crypto::sha256("never stored"),
                           [&](ov::LookupResult r) {
                             done = true;
                             EXPECT_FALSE(r.found_value);
                           });
  kad.sim.run_until(kad.sim.now() + ds::minutes(1));
  EXPECT_TRUE(done);
}

TEST(Kademlia, DeadContactsCauseTimeoutsNotHangs) {
  KadNet kad(30);
  // Kill half the network abruptly (no graceful leave).
  for (std::size_t i = 15; i < 30; ++i) kad.nodes[i]->leave();
  bool done = false;
  ov::LookupResult result;
  kad.nodes[1]->lookup(decentnet::crypto::sha256("target-after-crash"),
                       [&](ov::LookupResult r) {
                         done = true;
                         result = std::move(r);
                       });
  kad.sim.run_until(kad.sim.now() + ds::minutes(5));
  ASSERT_TRUE(done);
  EXPECT_GT(result.timeouts, 0u) << "lookup should have hit dead contacts";
}

TEST(Kademlia, LookupLatencyGrowsWithDeadFraction) {
  // The E1 mechanism in miniature: more dead contacts => slower lookups.
  auto run = [](double dead_fraction) {
    KadNet kad(40);
    ds::Rng rng(7);
    for (auto& n : kad.nodes) {
      if (rng.chance(dead_fraction)) n->leave();
    }
    double total_ms = 0;
    int completed = 0;
    for (int q = 0; q < 10; ++q) {
      ov::KademliaNode* src = nullptr;
      for (auto& n : kad.nodes) {
        if (n->online()) {
          src = n.get();
          break;
        }
      }
      bool done = false;
      src->lookup(decentnet::crypto::sha256("q" + std::to_string(q)),
                  [&](ov::LookupResult r) {
                    done = true;
                    total_ms += ds::to_millis(r.elapsed);
                  });
      kad.sim.run_until(kad.sim.now() + ds::minutes(2));
      if (done) ++completed;
    }
    return completed > 0 ? total_ms / completed : 1e18;
  };
  const double fresh = run(0.0);
  const double stale = run(0.4);
  EXPECT_GT(stale, fresh * 2) << "dead contacts should slow lookups markedly";
}

TEST(Kademlia, ObserveInsertsContact) {
  KadNet kad(5);
  ov::Contact fake{decentnet::crypto::sha256("fake-id"), dn::NodeId{9999}};
  const std::size_t before = kad.nodes[0]->routing_table_size();
  kad.nodes[0]->observe(fake);
  EXPECT_EQ(kad.nodes[0]->routing_table_size(), before + 1);
}

TEST(Kademlia, SelfIsNeverInRoutingTable) {
  KadNet kad(10);
  for (const auto& n : kad.nodes) {
    for (const auto& c : n->routing_table()) {
      EXPECT_NE(c.addr, n->addr());
    }
  }
}

TEST(Kademlia, BucketsBoundedByK) {
  ov::KademliaConfig cfg;
  cfg.k = 4;
  KadNet kad(50, cfg);
  for (const auto& n : kad.nodes) {
    // No bucket may exceed k; total table is at most 256*k but in a 50-node
    // network the far bucket dominates; just assert the far bucket cap via
    // the contact count per distance class.
    std::map<int, int> per_bucket;
    for (const auto& c : n->routing_table()) {
      const int lz = n->id().distance_to(c.id).leading_zero_bits();
      ++per_bucket[255 - lz];
    }
    for (const auto& [bucket, count] : per_bucket) {
      EXPECT_LE(count, 4) << "bucket " << bucket << " exceeds k";
    }
  }
}

TEST(Kademlia, RejoinAfterLeaveWorks) {
  KadNet kad(20);
  kad.nodes[5]->leave();
  kad.sim.run_until(kad.sim.now() + ds::seconds(30));
  kad.nodes[5]->join({{kad.nodes[0]->id(), kad.nodes[0]->addr()}});
  kad.sim.run_until(kad.sim.now() + ds::seconds(30));
  EXPECT_TRUE(kad.nodes[5]->online());
  EXPECT_GE(kad.nodes[5]->routing_table_size(), 3u);
}
