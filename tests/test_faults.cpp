// Fault-injection and invariant-checker tests: FaultPlan timelines apply and
// heal through the Network, every inject/heal is traced and counted, a
// same-seed faulted run serializes a byte-identical trace, and the online
// invariant checker catches seeded violations (dual leaders, conflicting
// commits) at their exact trace position.
#include <gtest/gtest.h>

#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "bft/raft.hpp"
#include "net/churn.hpp"
#include "net/faults.hpp"
#include "net/network.hpp"
#include "overlay/gossip.hpp"
#include "sim/invariants.hpp"
#include "sim/trace.hpp"

namespace db = decentnet::bft;
namespace dn = decentnet::net;
namespace ds = decentnet::sim;
namespace ov = decentnet::overlay;

namespace {

struct Probe : dn::Host {
  std::vector<int> values;
  void handle_message(const dn::Message& msg) override {
    values.push_back(dn::payload_as<int>(msg));
  }
};

struct RecordingSink final : ds::TraceSink {
  struct Rec {
    std::string kind, tag;
    std::uint64_t id, a, b;
  };
  std::vector<Rec> recs;
  void record(const ds::TraceRecord& r) override {
    recs.push_back({r.kind, r.tag, r.id, r.a, r.b});
  }
  std::size_t count(const std::string& kind, const std::string& tag) const {
    std::size_t c = 0;
    for (const auto& r : recs) {
      if (r.kind == kind && r.tag == tag) ++c;
    }
    return c;
  }
};

}  // namespace

TEST(FaultPlan, BuildersRecordDeclarativeTimeline) {
  dn::FaultPlan plan;
  plan.partition(ds::seconds(30), "wan-split", {{1, 2}, {3}}, ds::seconds(90))
      .crash(ds::seconds(45), 2)
      .restart(ds::seconds(60), 2)
      .latency_penalty(ds::seconds(10), 0, ds::millis(200), ds::seconds(20))
      .bandwidth_degrade(ds::seconds(10), 1, 0.1, ds::seconds(20))
      .loss_burst(ds::seconds(30), 0.2, ds::seconds(90))
      .duplicate_window(ds::seconds(30), 0.05, ds::seconds(90))
      .reorder_window(ds::seconds(30), ds::millis(40), ds::seconds(90));
  ASSERT_EQ(plan.size(), 8u);
  EXPECT_FALSE(plan.empty());
  const auto& ev = plan.events();
  EXPECT_EQ(ev[0].kind, dn::FaultEvent::Kind::Partition);
  EXPECT_EQ(ev[0].name, "wan-split");
  EXPECT_EQ(ev[0].groups.size(), 2u);
  EXPECT_EQ(ev[0].heal_at, ds::seconds(90));
  EXPECT_EQ(ev[1].kind, dn::FaultEvent::Kind::Crash);
  EXPECT_EQ(ev[1].node, 2u);
  EXPECT_EQ(ev[2].kind, dn::FaultEvent::Kind::Restart);
  EXPECT_EQ(ev[3].duration, ds::millis(200));
  EXPECT_DOUBLE_EQ(ev[4].value, 0.1);
  EXPECT_STREQ(dn::fault_kind_name(ev[0].kind), "partition");
  EXPECT_STREQ(dn::fault_kind_name(ev[5].kind), "loss");
  EXPECT_STREQ(dn::fault_kind_name(ev[7].kind), "reorder");
}

TEST(FaultScheduler, PartitionInjectsAndHealsOnSchedule) {
  ds::Simulator sim;
  RecordingSink sink;
  sim.set_trace(&sink);
  dn::Network net(sim, std::make_unique<dn::ConstantLatency>(ds::millis(1)));
  Probe a, b;
  const auto ida = net.new_node_id();
  const auto idb = net.new_node_id();
  net.attach(ida, &a);
  net.attach(idb, &b);

  dn::FaultPlan plan;
  plan.partition(ds::seconds(10), "split", {{ida.value}}, ds::seconds(20));
  dn::FaultScheduler faults(net, plan);
  faults.start();

  // Before inject: delivered. During: dropped. After heal: delivered.
  net.send(ida, idb, 1, 10);
  sim.run_until(ds::seconds(15));
  EXPECT_TRUE(net.partition_active("split"));
  net.send(ida, idb, 2, 10);
  sim.run_until(ds::seconds(25));
  EXPECT_FALSE(net.partition_active("split"));
  net.send(ida, idb, 3, 10);
  sim.run_all();

  ASSERT_EQ(b.values.size(), 2u);
  EXPECT_EQ(b.values[0], 1);
  EXPECT_EQ(b.values[1], 3);
  EXPECT_EQ(faults.injected(), 1u);
  EXPECT_EQ(faults.healed(), 1u);
  EXPECT_EQ(net.metrics().counter("net/fault/injected").value(), 1u);
  EXPECT_EQ(net.metrics().counter("net/fault/healed").value(), 1u);
  EXPECT_EQ(net.metrics().counter("net/fault/partitions").value(), 1u);
  EXPECT_EQ(sink.count("fault", "partition"), 1u);
  EXPECT_EQ(sink.count("heal", "partition"), 1u);
  EXPECT_EQ(sink.count("drop", "partition"), 1u);
}

TEST(FaultScheduler, LinkFaultsApplyAndRestore) {
  ds::Simulator sim;
  dn::NetworkConfig cfg;
  cfg.transport.mode = dn::TransportMode::Bandwidth;
  cfg.transport.link.up_bps = 1e6;
  cfg.transport.link.down_bps = 1e9;
  dn::Network net(sim, std::make_unique<dn::ConstantLatency>(ds::millis(1)),
                  cfg);
  const auto ida = net.new_node_id();
  const auto idb = net.new_node_id();
  Probe a, b;
  net.attach(ida, &a);
  net.attach(idb, &b);

  dn::FaultPlan plan;
  plan.latency_penalty(ds::seconds(1), 0, ds::millis(500), ds::seconds(2))
      .bandwidth_degrade(ds::seconds(1), 0, 0.5, ds::seconds(2))
      .loss_burst(ds::seconds(1), 1.0, ds::seconds(2));
  dn::FaultTargets targets;
  targets.nodes = {ida, idb};
  dn::FaultScheduler faults(net, plan, std::move(targets));
  faults.start();

  const dn::LinkSpec before = net.link(ida);
  sim.run_until(ds::millis(1500));
  EXPECT_EQ(net.latency_penalty(ida), ds::millis(500));
  EXPECT_DOUBLE_EQ(net.link(ida).up_bps, before.up_bps * 0.5);
  EXPECT_DOUBLE_EQ(net.link(ida).down_bps, before.down_bps * 0.5);
  EXPECT_DOUBLE_EQ(net.drop_probability(), 1.0);
  sim.run_until(ds::millis(2500));
  EXPECT_EQ(net.latency_penalty(ida), 0);
  EXPECT_TRUE(net.link(ida) == before);
  EXPECT_DOUBLE_EQ(net.drop_probability(), 0.0);
  EXPECT_EQ(faults.injected(), 3u);
  EXPECT_EQ(faults.healed(), 3u);
  EXPECT_EQ(net.metrics().counter("net/fault/link_faults").value(), 2u);
  EXPECT_EQ(net.metrics().counter("net/fault/window_faults").value(), 1u);
}

TEST(FaultScheduler, CrashAndRestartHooksFire) {
  ds::Simulator sim;
  dn::Network net(sim, std::make_unique<dn::ConstantLatency>(ds::millis(1)));
  const auto ida = net.new_node_id();
  std::vector<std::string> log;
  dn::FaultPlan plan;
  plan.crash(ds::seconds(1), 0).restart(ds::seconds(2), 0);
  dn::FaultTargets targets;
  targets.nodes = {ida};
  targets.crash = [&](std::size_t i) { log.push_back("crash" + std::to_string(i)); };
  targets.restart = [&](std::size_t i) { log.push_back("restart" + std::to_string(i)); };
  dn::FaultScheduler faults(net, plan, std::move(targets));
  faults.start();
  sim.run_all();
  ASSERT_EQ(log.size(), 2u);
  EXPECT_EQ(log[0], "crash0");
  EXPECT_EQ(log[1], "restart0");
  EXPECT_EQ(net.metrics().counter("net/fault/crashes").value(), 1u);
  EXPECT_EQ(net.metrics().counter("net/fault/restarts").value(), 1u);
}

// Regression: a fault-plan crash is authoritative over churn. Before
// hold_offline existed, a churn transition landing inside the crash→restart
// window revived the node early (last-writer-wins); the scheduler now holds
// the node's churn for the whole window and release() adopts the restart
// hook's state without firing a hook of its own.
TEST(FaultScheduler, CrashHoldsChurnUntilRestart) {
  ds::Simulator sim(11);
  dn::Network net(sim, std::make_unique<dn::ConstantLatency>(ds::millis(1)));
  const auto ida = net.new_node_id();
  std::size_t hook_fires = 0;
  dn::ChurnConfig ccfg;
  ccfg.session = dn::DurationDist::constant(3);
  ccfg.downtime = dn::DurationDist::constant(3);
  dn::ChurnDriver churn(
      sim, 1, ccfg, [&](std::size_t) { ++hook_fires; },
      [&](std::size_t) { ++hook_fires; });
  churn.start();

  bool node_up = true;
  dn::FaultPlan plan;
  plan.crash(ds::seconds(10), 0).restart(ds::seconds(40), 0);
  dn::FaultTargets targets;
  targets.nodes = {ida};
  targets.crash = [&](std::size_t) { node_up = false; };
  targets.restart = [&](std::size_t) { node_up = true; };
  targets.churn = &churn;
  dn::FaultScheduler faults(net, plan, std::move(targets));
  faults.start();

  sim.run_until(ds::seconds(11));
  EXPECT_TRUE(churn.held(0));
  EXPECT_FALSE(churn.is_online(0));
  EXPECT_FALSE(node_up);
  // Churn period is 3 s: without the hold, ~9 transitions would land here.
  const std::size_t fires_at_crash = hook_fires;
  sim.run_until(ds::seconds(39));
  EXPECT_EQ(hook_fires, fires_at_crash) << "churn revived a fault-crashed node";
  EXPECT_FALSE(node_up);

  sim.run_until(ds::seconds(41));
  EXPECT_FALSE(churn.held(0));
  EXPECT_TRUE(node_up);  // the restart hook acted...
  EXPECT_TRUE(churn.is_online(0));  // ...and release() adopted its state
  EXPECT_EQ(hook_fires, fires_at_crash) << "release must not fire hooks";

  // The alternating schedule resumes after release.
  sim.run_until(ds::seconds(60));
  EXPECT_GT(hook_fires, fires_at_crash);
}

TEST(FaultScheduler, StopCancelsFutureEvents) {
  ds::Simulator sim;
  dn::Network net(sim, std::make_unique<dn::ConstantLatency>(ds::millis(1)));
  const auto ida = net.new_node_id();
  dn::FaultPlan plan;
  plan.partition(ds::seconds(10), "late", {{ida.value}}, ds::seconds(20));
  dn::FaultScheduler faults(net, plan);
  faults.start();
  sim.run_until(ds::seconds(5));
  faults.stop();
  sim.run_all();
  EXPECT_EQ(faults.injected(), 0u);
  EXPECT_FALSE(net.partition_active("late"));
}

// The determinism contract: the same seed and the same FaultPlan serialize a
// byte-identical JSONL trace, fault events included.
TEST(FaultScheduler, SameSeedFaultedRunsTraceIdentically) {
  auto run_once = [](std::ostringstream& os) {
    ds::JsonlTraceSink sink(os);
    ds::Simulator sim(12345);
    sim.set_trace(&sink);
    dn::Network net(sim,
                    std::make_unique<dn::LogNormalLatency>(ds::millis(40), 0.3));
    net.set_drop_probability(0.01);
    Probe a, b, c;
    const auto ida = net.new_node_id();
    const auto idb = net.new_node_id();
    const auto idc = net.new_node_id();
    net.attach(ida, &a);
    net.attach(idb, &b);
    net.attach(idc, &c);
    dn::FaultPlan plan;
    plan.partition(ds::seconds(2), "s", {{ida.value, idb.value}},
                   ds::seconds(6))
        .duplicate_window(ds::seconds(1), 0.2, ds::seconds(7))
        .reorder_window(ds::seconds(1), ds::millis(30), ds::seconds(7))
        .loss_burst(ds::seconds(3), 0.1, ds::seconds(5));
    dn::FaultScheduler faults(net, plan);
    faults.start();
    ds::Rng traffic(9);
    sim.schedule_periodic(ds::millis(10), ds::millis(10), [&] {
      const int v = static_cast<int>(traffic.uniform_int(1000));
      net.send(ida, v % 2 == 0 ? idb : idc, v, 64 + v % 100);
      net.send(idc, ida, v, 32);
    });
    sim.run_until(ds::seconds(10));
    sink.flush();
  };
  std::ostringstream t1, t2;
  run_once(t1);
  run_once(t2);
  EXPECT_FALSE(t1.str().empty());
  EXPECT_EQ(t1.str(), t2.str());
  // The stream must actually contain fault machinery records.
  EXPECT_NE(t1.str().find("\"kind\":\"fault\""), std::string::npos);
  EXPECT_NE(t1.str().find("\"kind\":\"heal\""), std::string::npos);
  EXPECT_NE(t1.str().find("\"kind\":\"dup\""), std::string::npos);
}

// --- Invariant checker ------------------------------------------------------

TEST(InvariantChecker, HoldingPredicatesNeverReport) {
  ds::Simulator sim;
  ds::InvariantChecker checker(sim);
  checker.add("always-true", [] { return std::nullopt; });
  checker.start(ds::millis(100));
  sim.run_until(ds::seconds(1));
  checker.stop();
  EXPECT_TRUE(checker.ok());
  EXPECT_GE(checker.checks_run(), 9u);
  EXPECT_EQ(checker.predicate_count(), 1u);
}

TEST(InvariantChecker, ViolationIsPinnedToTracePosition) {
  ds::Simulator sim;
  RecordingSink sink;
  sim.set_trace(&sink);
  ds::InvariantChecker checker(sim);
  bool broken = false;
  checker.add("sometimes", [&]() -> std::optional<std::string> {
    if (broken) return "it broke";
    return std::nullopt;
  });
  checker.start(ds::millis(100));
  sim.schedule_at(ds::millis(450), [&] { broken = true; });
  sim.run_until(ds::seconds(1));
  checker.stop();
  ASSERT_EQ(checker.violations().size(), 1u);  // sampled: reported once
  const auto& v = checker.violations()[0];
  EXPECT_EQ(v.invariant, "sometimes");
  EXPECT_EQ(v.detail, "it broke");
  EXPECT_EQ(v.at, ds::millis(500));  // first sample after the break
  EXPECT_GT(v.events_processed, 0u);
  EXPECT_EQ(sink.count("invariant", "sometimes"), 1u);
  EXPECT_FALSE(checker.ok());
}

TEST(InvariantChecker, FailFastThrowsInvariantError) {
  ds::Simulator sim;
  ds::InvariantChecker checker(sim);
  checker.set_fail_fast(true);
  checker.add("boom", []() -> std::optional<std::string> { return "bad"; });
  EXPECT_THROW(checker.check_now(), ds::InvariantError);
  ds::InvariantChecker c2(sim);
  c2.set_fail_fast(true);
  try {
    c2.report("direct", "detail");
    FAIL() << "report() must throw under fail-fast";
  } catch (const ds::InvariantError& e) {
    EXPECT_EQ(e.violation.invariant, "direct");
    EXPECT_NE(std::string(e.what()).find("direct"), std::string::npos);
  }
}

TEST(CommitLogInvariant, DetectsConflictingCommits) {
  ds::Simulator sim;
  ds::InvariantChecker checker(sim);
  ds::CommitLogInvariant commits;
  commits.bind(&checker);
  checker.add("commit-agreement", commits.predicate());
  commits.record(0, 1, 0xAA);
  commits.record(1, 1, 0xAA);  // agreement: fine
  commits.record(2, 2, 0xBB);
  EXPECT_EQ(commits.conflicts(), 0u);
  EXPECT_TRUE(checker.ok());
  commits.record(3, 1, 0xCC);  // node 3 disagrees at seq 1
  EXPECT_EQ(commits.conflicts(), 1u);
  ASSERT_EQ(checker.violations().size(), 1u);  // event-driven report
  EXPECT_NE(checker.violations()[0].detail.find("seq 1"), std::string::npos);
  // The sampled predicate is sticky on the same conflict.
  checker.check_now();
  EXPECT_EQ(checker.violations().size(), 2u);
}

// Negative test demanded by the acceptance criteria: seed an actual
// dual-leader situation and prove the checker sees it. Two disjoint
// single-node Raft "clusters" each elect themselves leader of term 1; a
// single-leader invariant spanning both (via the duck-typed adapter below,
// which renumbers the nodes into one index space) must trip.
namespace {
struct LeaderView {
  const db::RaftNode* node;
  std::size_t idx;
  bool is_leader() const { return node->is_leader(); }
  std::uint64_t term() const { return node->term(); }
  std::size_t index() const { return idx; }
};
}  // namespace

TEST(InvariantChecker, CatchesSeededDualLeader) {
  ds::Simulator sim(7);
  dn::Network net(sim, std::make_unique<dn::ConstantLatency>(ds::millis(5)));
  const auto ida = net.new_node_id();
  const auto idb = net.new_node_id();
  db::RaftNode n0(net, ida, 0, db::RaftConfig{});
  db::RaftNode n1(net, idb, 0, db::RaftConfig{});
  n0.set_group({ida});  // each node is its own "cluster"...
  n1.set_group({idb});
  LeaderView v0{&n0, 0}, v1{&n1, 1};
  ds::InvariantChecker checker(sim);
  checker.add("single-leader", ds::invariants::single_leader_per_term(
                                   std::vector<LeaderView*>{&v0, &v1}));
  n0.start();
  n1.start();
  sim.run_until(ds::seconds(2));
  ASSERT_TRUE(n0.is_leader());
  ASSERT_TRUE(n1.is_leader());
  ASSERT_EQ(n0.term(), n1.term());  // ...but the invariant spans both
  EXPECT_EQ(checker.check_now(), 1u);
  ASSERT_EQ(checker.violations().size(), 1u);
  EXPECT_NE(checker.violations()[0].detail.find("term"), std::string::npos);
}

// Positive control: a real 5-node cluster under a partition/heal cycle keeps
// the invariant clean (elections happen, but never two leaders in one term).
TEST(InvariantChecker, HealthyRaftClusterStaysClean) {
  ds::Simulator sim(21);
  dn::Network net(sim, std::make_unique<dn::ConstantLatency>(ds::millis(5)));
  std::vector<dn::NodeId> addrs;
  for (int i = 0; i < 5; ++i) addrs.push_back(net.new_node_id());
  std::vector<std::unique_ptr<db::RaftNode>> nodes;
  for (int i = 0; i < 5; ++i) {
    nodes.push_back(
        std::make_unique<db::RaftNode>(net, addrs[i], i, db::RaftConfig{}));
    nodes.back()->set_group(addrs);
  }
  ds::InvariantChecker checker(sim);
  std::vector<db::RaftNode*> raw;
  for (auto& n : nodes) raw.push_back(n.get());
  checker.add("single-leader", ds::invariants::single_leader_per_term(raw));
  checker.set_fail_fast(true);  // any violation aborts the test loudly
  checker.start(ds::millis(50));
  for (auto& n : nodes) n->start();
  dn::FaultPlan plan;
  plan.partition(ds::seconds(5), "maj-min", {{addrs[0].value, addrs[1].value}},
                 ds::seconds(15));
  dn::FaultScheduler faults(net, plan, {.nodes = addrs});
  faults.start();
  sim.run_until(ds::seconds(30));
  checker.stop();
  EXPECT_TRUE(checker.ok());
  // The cluster must have a leader again after heal.
  int leaders = 0;
  for (auto& n : nodes) leaders += n->is_leader() ? 1 : 0;
  EXPECT_EQ(leaders, 1);
}

// --- Protocols under sustained flakiness (folded in from the old
// test_fault_injection.cpp): Raft's retransmitting heartbeats and gossip's
// redundancy are the two self-healing mechanisms the cloud stack leans on.

TEST(FaultInjection, RaftCommitsDespiteMessageLoss) {
  ds::Simulator sim(99);
  dn::Network net(sim, std::make_unique<dn::ConstantLatency>(ds::millis(5)));
  net.set_drop_probability(0.10);  // 10% of every message vanishes
  std::vector<dn::NodeId> addrs;
  for (int i = 0; i < 5; ++i) addrs.push_back(net.new_node_id());
  std::vector<std::unique_ptr<db::RaftNode>> nodes;
  std::vector<std::vector<db::Command>> applied(5);
  for (std::size_t i = 0; i < 5; ++i) {
    nodes.push_back(std::make_unique<db::RaftNode>(net, addrs[i], i,
                                                   db::RaftConfig{}));
    nodes.back()->set_group(addrs);
    nodes.back()->set_commit_hook(
        [&applied, i](std::uint64_t, const db::Command& cmd) {
          applied[i].push_back(cmd);
        });
    nodes.back()->start();
  }
  sim.run_until(ds::seconds(5));
  // Propose through whoever leads, re-finding the leader as terms churn.
  std::uint64_t next = 1;
  for (int round = 0; round < 40; ++round) {
    for (auto& n : nodes) {
      if (n->is_leader()) {
        db::Command cmd;
        cmd.id = next++;
        n->propose(std::move(cmd));
        break;
      }
    }
    sim.run_until(sim.now() + ds::millis(500));
  }
  sim.run_until(sim.now() + ds::seconds(10));
  // Liveness: most proposals commit; safety: identical prefixes.
  EXPECT_GT(applied[0].size(), 25u);
  for (std::size_t nidx = 1; nidx < 5; ++nidx) {
    const std::size_t common =
        std::min(applied[0].size(), applied[nidx].size());
    for (std::size_t i = 0; i < common; ++i) {
      EXPECT_EQ(applied[0][i].id, applied[nidx][i].id);
    }
  }
}

TEST(FaultInjection, GossipCoverageSurvivesLoss) {
  ds::Simulator sim(5);
  dn::Network net(sim, std::make_unique<dn::ConstantLatency>(ds::millis(15)));
  net.set_drop_probability(0.20);
  ov::GossipConfig cfg;
  cfg.fanout = 6;  // extra redundancy vs the lossless default of 4
  std::vector<dn::NodeId> addrs;
  const std::size_t n = 150;
  for (std::size_t i = 0; i < n; ++i) addrs.push_back(net.new_node_id());
  std::vector<std::unique_ptr<ov::GossipNode>> nodes;
  ds::Rng rng(2);
  for (std::size_t i = 0; i < n; ++i) {
    nodes.push_back(std::make_unique<ov::GossipNode>(net, addrs[i], cfg));
    std::vector<dn::NodeId> view;
    for (int k = 0; k < 10; ++k) view.push_back(addrs[rng.uniform_int(n)]);
    nodes.back()->join(view);
  }
  sim.run_until(ds::minutes(2));
  nodes[0]->broadcast(1, 128);
  sim.run_until(sim.now() + ds::minutes(1));
  std::size_t reached = 0;
  for (const auto& node : nodes) {
    if (node->has_seen(1)) ++reached;
  }
  EXPECT_GT(reached, n * 85 / 100)
      << "epidemic redundancy should absorb 20% loss";
}

TEST(FaultInjection, RaftRecoversFromRollingCrashes) {
  ds::Simulator sim(123);
  dn::Network net(sim, std::make_unique<dn::ConstantLatency>(ds::millis(5)));
  std::vector<dn::NodeId> addrs;
  for (int i = 0; i < 5; ++i) addrs.push_back(net.new_node_id());
  std::vector<std::unique_ptr<db::RaftNode>> nodes;
  std::vector<std::vector<db::Command>> applied(5);
  for (std::size_t i = 0; i < 5; ++i) {
    nodes.push_back(std::make_unique<db::RaftNode>(net, addrs[i], i,
                                                   db::RaftConfig{}));
    nodes.back()->set_group(addrs);
    nodes.back()->set_commit_hook(
        [&applied, i](std::uint64_t, const db::Command& cmd) {
          applied[i].push_back(cmd);
        });
    nodes.back()->start();
  }
  sim.run_until(ds::seconds(2));
  std::uint64_t next = 1;
  // Roll a crash across the cluster: one node down at a time.
  for (std::size_t victim = 0; victim < 5; ++victim) {
    nodes[victim]->crash();
    for (int i = 0; i < 5; ++i) {
      sim.run_until(sim.now() + ds::seconds(1));
      for (auto& nd : nodes) {
        if (nd->is_leader()) {
          db::Command cmd;
          cmd.id = next++;
          nd->propose(std::move(cmd));
          break;
        }
      }
    }
    nodes[victim]->restart();
    sim.run_until(sim.now() + ds::seconds(2));
  }
  sim.run_until(sim.now() + ds::seconds(5));
  // All nodes eventually applied the same full sequence.
  EXPECT_GT(applied[0].size(), 15u);
  for (std::size_t nidx = 1; nidx < 5; ++nidx) {
    EXPECT_EQ(applied[nidx].size(), applied[0].size()) << "node " << nidx;
    for (std::size_t i = 0; i < applied[0].size(); ++i) {
      EXPECT_EQ(applied[0][i].id, applied[nidx][i].id);
    }
  }
}
