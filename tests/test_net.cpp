// Network substrate tests: message delivery and latency, loss, partitions,
// bandwidth serialization, churn processes, topology generators.
#include <gtest/gtest.h>

#include <memory>

#include "net/churn.hpp"
#include "net/network.hpp"
#include "net/topology.hpp"

namespace dn = decentnet::net;
namespace ds = decentnet::sim;

namespace {

struct Probe : dn::Host {
  std::vector<ds::SimTime> arrivals;
  std::vector<int> values;
  ds::Simulator* sim = nullptr;
  void handle_message(const dn::Message& msg) override {
    arrivals.push_back(sim->now());
    values.push_back(dn::payload_as<int>(msg));
  }
};

}  // namespace

TEST(Network, DeliversAfterConstantLatency) {
  ds::Simulator sim;
  dn::Network net(sim, std::make_unique<dn::ConstantLatency>(ds::millis(25)));
  Probe a, b;
  a.sim = b.sim = &sim;
  const auto ida = net.new_node_id();
  const auto idb = net.new_node_id();
  net.attach(ida, &a);
  net.attach(idb, &b);
  net.send(ida, idb, 42, 100);
  sim.run_all();
  ASSERT_EQ(b.arrivals.size(), 1u);
  EXPECT_EQ(b.arrivals[0], ds::millis(25));
  EXPECT_EQ(b.values[0], 42);
}

TEST(Network, DropsToOfflineNodes) {
  ds::Simulator sim;
  dn::Network net(sim, std::make_unique<dn::ConstantLatency>(ds::millis(1)));
  Probe a;
  a.sim = &sim;
  const auto ida = net.new_node_id();
  const auto idb = net.new_node_id();
  net.attach(ida, &a);
  net.send(ida, idb, 1, 10);  // b never attached
  sim.run_all();
  EXPECT_EQ(net.metrics().counter("net/dropped_offline").value(), 1u);
}

TEST(Network, DetachStopsDelivery) {
  ds::Simulator sim;
  dn::Network net(sim, std::make_unique<dn::ConstantLatency>(ds::millis(10)));
  Probe a, b;
  a.sim = b.sim = &sim;
  const auto ida = net.new_node_id();
  const auto idb = net.new_node_id();
  net.attach(ida, &a);
  net.attach(idb, &b);
  net.send(ida, idb, 1, 10);
  net.detach(idb);  // detached before delivery
  sim.run_all();
  EXPECT_TRUE(b.values.empty());
}

TEST(Network, UniformLossDropsRoughlyHalf) {
  ds::Simulator sim;
  dn::Network net(sim, std::make_unique<dn::ConstantLatency>(ds::millis(1)));
  net.set_drop_probability(0.5);
  Probe a, b;
  a.sim = b.sim = &sim;
  const auto ida = net.new_node_id();
  const auto idb = net.new_node_id();
  net.attach(ida, &a);
  net.attach(idb, &b);
  for (int i = 0; i < 2000; ++i) net.send(ida, idb, i, 10);
  sim.run_all();
  EXPECT_NEAR(static_cast<double>(b.values.size()), 1000.0, 100.0);
}

TEST(Network, PartitionBlocksCrossTraffic) {
  ds::Simulator sim;
  dn::Network net(sim, std::make_unique<dn::ConstantLatency>(ds::millis(1)));
  Probe a, b, c;
  a.sim = b.sim = c.sim = &sim;
  const auto ida = net.new_node_id();
  const auto idb = net.new_node_id();
  const auto idc = net.new_node_id();
  net.attach(ida, &a);
  net.attach(idb, &b);
  net.attach(idc, &c);
  net.set_partition({ida.value, idb.value});  // c is on the other side
  net.send(ida, idb, 1, 10);  // same side: delivered
  net.send(ida, idc, 2, 10);  // cross: dropped
  sim.run_all();
  EXPECT_EQ(b.values.size(), 1u);
  EXPECT_TRUE(c.values.empty());
  net.clear_partition();
  net.send(ida, idc, 3, 10);
  sim.run_all();
  EXPECT_EQ(c.values.size(), 1u);
}

TEST(Network, BandwidthSerializesLargeMessages) {
  ds::Simulator sim;
  dn::NetworkConfig cfg;
  cfg.model_bandwidth = true;
  cfg.default_uplink_bps = 1e6;    // 1 MB/s
  cfg.default_downlink_bps = 1e9;  // negligible
  dn::Network net(sim, std::make_unique<dn::ConstantLatency>(ds::millis(10)),
                  cfg);
  Probe a, b;
  a.sim = b.sim = &sim;
  const auto ida = net.new_node_id();
  const auto idb = net.new_node_id();
  net.attach(ida, &a);
  net.attach(idb, &b);
  // 1 MB at 1 MB/s = 1 s serialization + 10 ms propagation.
  net.send(ida, idb, 0, 1'000'000);
  sim.run_all();
  ASSERT_EQ(b.arrivals.size(), 1u);
  EXPECT_NEAR(ds::to_seconds(b.arrivals[0]), 1.01, 0.01);
}

TEST(Network, SenderQueueIsFifo) {
  ds::Simulator sim;
  dn::NetworkConfig cfg;
  cfg.model_bandwidth = true;
  cfg.default_uplink_bps = 1e6;
  cfg.default_downlink_bps = 1e9;
  dn::Network net(sim, std::make_unique<dn::ConstantLatency>(ds::millis(1)),
                  cfg);
  Probe a, b;
  a.sim = b.sim = &sim;
  const auto ida = net.new_node_id();
  const auto idb = net.new_node_id();
  net.attach(ida, &a);
  net.attach(idb, &b);
  net.send(ida, idb, 1, 500'000);  // 0.5 s
  net.send(ida, idb, 2, 500'000);  // queued behind: arrives ~1 s
  sim.run_all();
  ASSERT_EQ(b.arrivals.size(), 2u);
  EXPECT_NEAR(ds::to_seconds(b.arrivals[1] - b.arrivals[0]), 0.5, 0.05);
}

TEST(GeoLatency, IntraRegionIsFasterThanInterRegion) {
  ds::Simulator sim;
  auto geo = std::make_unique<dn::GeoLatency>(0.0);  // no jitter
  dn::GeoLatency* geo_ptr = geo.get();
  dn::Network net(sim, std::move(geo));
  const auto a = net.new_node_id();
  const auto b = net.new_node_id();
  const auto c = net.new_node_id();
  geo_ptr->assign(a, 0);
  geo_ptr->assign(b, 0);
  geo_ptr->assign(c, 2);
  ds::Rng rng(1);
  EXPECT_LT(geo_ptr->sample(a, b, rng), geo_ptr->sample(a, c, rng));
}

TEST(ChurnDriver, AlternatesOnlineOffline) {
  ds::Simulator sim;
  int ons = 0, offs = 0;
  dn::ChurnConfig cfg;
  cfg.session = dn::DurationDist::constant(100);
  cfg.downtime = dn::DurationDist::constant(100);
  cfg.initially_online = 1.0;
  dn::ChurnDriver churn(
      sim, 10, cfg, [&](std::size_t) { ++ons; }, [&](std::size_t) { ++offs; });
  churn.start();
  EXPECT_EQ(ons, 10);
  EXPECT_EQ(churn.online_count(), 10u);
  sim.run_until(ds::seconds(150));
  EXPECT_EQ(offs, 10);  // all went offline at t=100
  EXPECT_EQ(churn.online_count(), 0u);
  sim.run_until(ds::seconds(250));
  EXPECT_EQ(ons, 20);  // and back online at t=200
}

TEST(ChurnDriver, InitiallyOfflineFractionRespected) {
  ds::Simulator sim;
  dn::ChurnConfig cfg;
  cfg.initially_online = 0.0;
  int ons = 0;
  dn::ChurnDriver churn(
      sim, 50, cfg, [&](std::size_t) { ++ons; }, [](std::size_t) {});
  churn.start();
  EXPECT_EQ(ons, 0);
  EXPECT_EQ(churn.online_count(), 0u);
}

TEST(DurationDist, SamplesArePositive) {
  ds::Rng rng(3);
  for (const auto& dist :
       {dn::DurationDist::constant(10), dn::DurationDist::exponential_mean(10),
        dn::DurationDist::pareto(2, 1.5), dn::DurationDist::weibull(10, 0.6),
        dn::DurationDist::lognormal(10, 1.0)}) {
    for (int i = 0; i < 100; ++i) {
      EXPECT_GT(dist.sample(rng), 0);
    }
  }
}

// --- Topologies -------------------------------------------------------------

TEST(Topology, RandomGraphIsConnectedAtModestDegree) {
  ds::Rng rng(5);
  const auto adj = dn::random_graph(500, 6, rng);
  EXPECT_TRUE(dn::is_connected(adj));
  for (const auto& nbrs : adj) EXPECT_GE(nbrs.size(), 6u);
}

TEST(Topology, ErdosRenyiEdgeCountMatchesP) {
  ds::Rng rng(6);
  const auto adj = dn::erdos_renyi(200, 0.1, rng);
  std::size_t edges = 0;
  for (const auto& nbrs : adj) edges += nbrs.size();
  edges /= 2;
  const double expected = 0.1 * 200 * 199 / 2;
  EXPECT_NEAR(static_cast<double>(edges), expected, expected * 0.15);
}

TEST(Topology, WattsStrogatzKeepsDegreeSum) {
  ds::Rng rng(7);
  const auto adj = dn::watts_strogatz(100, 3, 0.2, rng);
  std::size_t edges = 0;
  for (const auto& nbrs : adj) edges += nbrs.size();
  EXPECT_EQ(edges / 2, 300u);  // n*k edges total
}

TEST(Topology, SmallWorldShortensPaths) {
  ds::Rng rng(8);
  const auto ring = dn::watts_strogatz(200, 2, 0.0, rng);
  const auto small_world = dn::watts_strogatz(200, 2, 0.3, rng);
  const double ring_path = dn::mean_path_length(ring, 200, rng);
  const double sw_path = dn::mean_path_length(small_world, 200, rng);
  EXPECT_LT(sw_path, ring_path * 0.6);
}

TEST(Topology, BarabasiAlbertIsSkewed) {
  ds::Rng rng(9);
  const auto adj = dn::barabasi_albert(500, 2, rng);
  EXPECT_TRUE(dn::is_connected(adj));
  std::size_t max_degree = 0;
  std::size_t total = 0;
  for (const auto& nbrs : adj) {
    max_degree = std::max(max_degree, nbrs.size());
    total += nbrs.size();
  }
  const double mean_degree = static_cast<double>(total) / 500.0;
  // Hubs: the max degree should far exceed the mean.
  EXPECT_GT(static_cast<double>(max_degree), mean_degree * 5);
}

TEST(Topology, SingleNodeGraphIsConnected) {
  ds::Rng rng(10);
  EXPECT_TRUE(dn::is_connected(dn::random_graph(1, 3, rng)));
  EXPECT_TRUE(dn::is_connected(dn::AdjacencyList{}));
}
