// Network substrate tests: message delivery and latency, loss, partitions,
// bandwidth serialization, churn processes, topology generators.
#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <string>
#include <vector>

#include "net/churn.hpp"
#include "net/network.hpp"
#include "net/topology.hpp"
#include "sim/trace.hpp"

namespace dn = decentnet::net;
namespace ds = decentnet::sim;

namespace {

struct Probe : dn::Host {
  std::vector<ds::SimTime> arrivals;
  std::vector<int> values;
  ds::Simulator* sim = nullptr;
  void handle_message(const dn::Message& msg) override {
    arrivals.push_back(sim->now());
    values.push_back(dn::payload_as<int>(msg));
  }
};

/// Captures (kind, tag) pairs so tests can pin the exact drop reasons.
struct RecordingSink final : ds::TraceSink {
  std::vector<std::pair<std::string, std::string>> recs;
  void record(const ds::TraceRecord& r) override {
    recs.emplace_back(r.kind, r.tag);
  }
  std::size_t count(const std::string& kind, const std::string& tag) const {
    std::size_t c = 0;
    for (const auto& [k, t] : recs) {
      if (k == kind && t == tag) ++c;
    }
    return c;
  }
};

}  // namespace

TEST(Network, DeliversAfterConstantLatency) {
  ds::Simulator sim;
  dn::Network net(sim, std::make_unique<dn::ConstantLatency>(ds::millis(25)));
  Probe a, b;
  a.sim = b.sim = &sim;
  const auto ida = net.new_node_id();
  const auto idb = net.new_node_id();
  net.attach(ida, &a);
  net.attach(idb, &b);
  net.send(ida, idb, 42, 100);
  sim.run_all();
  ASSERT_EQ(b.arrivals.size(), 1u);
  EXPECT_EQ(b.arrivals[0], ds::millis(25));
  EXPECT_EQ(b.values[0], 42);
}

TEST(Network, DropsToOfflineNodes) {
  ds::Simulator sim;
  dn::Network net(sim, std::make_unique<dn::ConstantLatency>(ds::millis(1)));
  Probe a;
  a.sim = &sim;
  const auto ida = net.new_node_id();
  const auto idb = net.new_node_id();
  net.attach(ida, &a);
  net.send(ida, idb, 1, 10);  // b never attached
  sim.run_all();
  EXPECT_EQ(net.metrics().counter("net/dropped_offline").value(), 1u);
}

TEST(Network, DetachStopsDelivery) {
  ds::Simulator sim;
  dn::Network net(sim, std::make_unique<dn::ConstantLatency>(ds::millis(10)));
  Probe a, b;
  a.sim = b.sim = &sim;
  const auto ida = net.new_node_id();
  const auto idb = net.new_node_id();
  net.attach(ida, &a);
  net.attach(idb, &b);
  net.send(ida, idb, 1, 10);
  net.detach(idb);  // detached before delivery
  sim.run_all();
  EXPECT_TRUE(b.values.empty());
}

TEST(Network, UniformLossDropsRoughlyHalf) {
  ds::Simulator sim;
  dn::Network net(sim, std::make_unique<dn::ConstantLatency>(ds::millis(1)));
  net.set_drop_probability(0.5);
  Probe a, b;
  a.sim = b.sim = &sim;
  const auto ida = net.new_node_id();
  const auto idb = net.new_node_id();
  net.attach(ida, &a);
  net.attach(idb, &b);
  for (int i = 0; i < 2000; ++i) net.send(ida, idb, i, 10);
  sim.run_all();
  EXPECT_NEAR(static_cast<double>(b.values.size()), 1000.0, 100.0);
}

TEST(Network, PartitionBlocksCrossTraffic) {
  ds::Simulator sim;
  dn::Network net(sim, std::make_unique<dn::ConstantLatency>(ds::millis(1)));
  Probe a, b, c;
  a.sim = b.sim = c.sim = &sim;
  const auto ida = net.new_node_id();
  const auto idb = net.new_node_id();
  const auto idc = net.new_node_id();
  net.attach(ida, &a);
  net.attach(idb, &b);
  net.attach(idc, &c);
  net.set_partition({ida.value, idb.value});  // c is on the other side
  net.send(ida, idb, 1, 10);  // same side: delivered
  net.send(ida, idc, 2, 10);  // cross: dropped
  sim.run_all();
  EXPECT_EQ(b.values.size(), 1u);
  EXPECT_TRUE(c.values.empty());
  net.clear_partition();
  net.send(ida, idc, 3, 10);
  sim.run_all();
  EXPECT_EQ(c.values.size(), 1u);
}

TEST(Network, OverlappingNamedPartitionsComposeAsIntersection) {
  ds::Simulator sim;
  dn::Network net(sim, std::make_unique<dn::ConstantLatency>(ds::millis(1)));
  Probe a, b, c, d;
  a.sim = b.sim = c.sim = d.sim = &sim;
  const auto ida = net.new_node_id();
  const auto idb = net.new_node_id();
  const auto idc = net.new_node_id();
  const auto idd = net.new_node_id();
  net.attach(ida, &a);
  net.attach(idb, &b);
  net.attach(idc, &c);
  net.attach(idd, &d);

  // P1: {a,b} | {c,d}.
  net.add_partition("p1", {{ida.value, idb.value}, {idc.value, idd.value}});
  EXPECT_TRUE(net.partition_active("p1"));
  EXPECT_EQ(net.partition_count(), 1u);
  net.send(ida, idb, 1, 10);  // same P1 group: delivered
  net.send(ida, idc, 2, 10);  // crosses P1: dropped
  sim.run_all();
  EXPECT_EQ(b.values.size(), 1u);
  EXPECT_TRUE(c.values.empty());

  // P2 overlaps P1: {a,c} | {b,d}. A message must now stay within one group
  // of EVERY active partition, so a can reach nobody: a-b crosses P2 and
  // a-c crosses P1.
  net.add_partition("p2", {{ida.value, idc.value}, {idb.value, idd.value}});
  EXPECT_EQ(net.partition_count(), 2u);
  net.send(ida, idb, 3, 10);  // allowed by P1, crosses P2: dropped
  net.send(ida, idc, 4, 10);  // allowed by P2, crosses P1: dropped
  sim.run_all();
  EXPECT_EQ(b.values.size(), 1u);
  EXPECT_TRUE(c.values.empty());

  // Heal P1 only: a-c (same P2 group) flows again, a-b still crosses P2.
  net.remove_partition("p1");
  EXPECT_FALSE(net.partition_active("p1"));
  net.send(ida, idc, 5, 10);
  net.send(ida, idb, 6, 10);
  sim.run_all();
  ASSERT_EQ(c.values.size(), 1u);
  EXPECT_EQ(c.values[0], 5);
  EXPECT_EQ(b.values.size(), 1u);

  // Heal P2: everything flows.
  net.remove_partition("p2");
  EXPECT_EQ(net.partition_count(), 0u);
  net.send(ida, idb, 7, 10);
  sim.run_all();
  ASSERT_EQ(b.values.size(), 2u);
  EXPECT_EQ(b.values[1], 7);
}

TEST(Network, UnlistedNodesShareTheImplicitRestGroup) {
  ds::Simulator sim;
  dn::Network net(sim, std::make_unique<dn::ConstantLatency>(ds::millis(1)));
  Probe a, b, c;
  a.sim = b.sim = c.sim = &sim;
  const auto ida = net.new_node_id();
  const auto idb = net.new_node_id();
  const auto idc = net.new_node_id();
  net.attach(ida, &a);
  net.attach(idb, &b);
  net.attach(idc, &c);
  // Only a is named; b and c fall into the implicit rest group together.
  net.add_partition("isolate-a", {{ida.value}});
  net.send(idb, idc, 1, 10);  // rest <-> rest: delivered
  net.send(ida, idb, 2, 10);  // named <-> rest: dropped
  net.send(idb, ida, 3, 10);  // symmetric
  sim.run_all();
  EXPECT_EQ(c.values.size(), 1u);
  EXPECT_TRUE(a.values.empty());
  EXPECT_TRUE(b.values.empty());
  EXPECT_EQ(net.metrics().counter("net/dropped_partition").value(), 2u);
}

TEST(Network, DropCountersAndTraceTagsMatchExactly) {
  ds::Simulator sim;
  RecordingSink sink;
  sim.set_trace(&sink);
  dn::Network net(sim, std::make_unique<dn::ConstantLatency>(ds::millis(1)));
  Probe a, b;
  a.sim = b.sim = &sim;
  const auto ida = net.new_node_id();
  const auto idb = net.new_node_id();
  const auto idc = net.new_node_id();  // never attached: offline
  net.attach(ida, &a);
  net.attach(idb, &b);

  net.add_partition("split", {{ida.value}});
  net.send(ida, idb, 1, 10);
  net.send(ida, idb, 2, 10);
  net.remove_partition("split");

  net.set_unreachable(idb, true);
  net.send(ida, idb, 3, 10);
  net.set_unreachable(idb, false);

  net.set_drop_probability(1.0);
  net.send(ida, idb, 4, 10);
  net.set_drop_probability(0.0);

  net.send(ida, idc, 5, 10);  // offline

  net.send(ida, idb, 6, 10);  // finally: one clean delivery
  sim.run_all();

  EXPECT_EQ(net.metrics().counter("net/dropped_partition").value(), 2u);
  EXPECT_EQ(net.metrics().counter("net/dropped_unreachable").value(), 1u);
  EXPECT_EQ(net.metrics().counter("net/dropped_loss").value(), 1u);
  EXPECT_EQ(net.metrics().counter("net/dropped_offline").value(), 1u);
  EXPECT_EQ(sink.count("drop", "partition"), 2u);
  EXPECT_EQ(sink.count("drop", "unreachable"), 1u);
  EXPECT_EQ(sink.count("drop", "loss"), 1u);
  EXPECT_EQ(sink.count("drop", "offline"), 1u);
  ASSERT_EQ(b.values.size(), 1u);
  EXPECT_EQ(b.values[0], 6);
}

TEST(Network, DuplicateWindowRedeliversAndCounts) {
  ds::Simulator sim;
  RecordingSink sink;
  sim.set_trace(&sink);
  dn::Network net(sim, std::make_unique<dn::ConstantLatency>(ds::millis(1)));
  net.set_duplicate_probability(1.0);  // every message arrives twice
  Probe a, b;
  a.sim = b.sim = &sim;
  const auto ida = net.new_node_id();
  const auto idb = net.new_node_id();
  net.attach(ida, &a);
  net.attach(idb, &b);
  for (int i = 0; i < 10; ++i) net.send(ida, idb, i, 10);
  sim.run_all();
  EXPECT_EQ(b.values.size(), 20u);
  EXPECT_EQ(net.metrics().counter("net/duplicated").value(), 10u);
  EXPECT_EQ(sink.count("dup", ""), 10u);
  net.set_duplicate_probability(0.0);
  net.send(ida, idb, 99, 10);
  sim.run_all();
  EXPECT_EQ(b.values.size(), 21u);
}

TEST(Network, ReorderJitterBreaksFifoDelivery) {
  ds::Simulator sim(7);
  dn::Network net(sim, std::make_unique<dn::ConstantLatency>(ds::millis(1)));
  net.set_reorder_jitter(ds::millis(50));
  Probe a, b;
  a.sim = b.sim = &sim;
  const auto ida = net.new_node_id();
  const auto idb = net.new_node_id();
  net.attach(ida, &a);
  net.attach(idb, &b);
  for (int i = 0; i < 50; ++i) net.send(ida, idb, i, 10);
  sim.run_all();
  ASSERT_EQ(b.values.size(), 50u);
  EXPECT_FALSE(std::is_sorted(b.values.begin(), b.values.end()));
  EXPECT_GT(net.metrics().counter("net/reordered").value(), 0u);
}

TEST(Network, BandwidthSerializesLargeMessages) {
  ds::Simulator sim;
  dn::NetworkConfig cfg;
  cfg.transport.mode = dn::TransportMode::Bandwidth;
  cfg.transport.link.up_bps = 1e6;    // 1 MB/s
  cfg.transport.link.down_bps = 1e9;  // negligible
  dn::Network net(sim, std::make_unique<dn::ConstantLatency>(ds::millis(10)),
                  cfg);
  Probe a, b;
  a.sim = b.sim = &sim;
  const auto ida = net.new_node_id();
  const auto idb = net.new_node_id();
  net.attach(ida, &a);
  net.attach(idb, &b);
  // 1 MB at 1 MB/s = 1 s serialization + 10 ms propagation.
  net.send(ida, idb, 0, 1'000'000);
  sim.run_all();
  ASSERT_EQ(b.arrivals.size(), 1u);
  EXPECT_NEAR(ds::to_seconds(b.arrivals[0]), 1.01, 0.01);
}

TEST(Network, SenderQueueIsFifo) {
  ds::Simulator sim;
  dn::NetworkConfig cfg;
  cfg.transport.mode = dn::TransportMode::Bandwidth;
  cfg.transport.link.up_bps = 1e6;
  cfg.transport.link.down_bps = 1e9;
  dn::Network net(sim, std::make_unique<dn::ConstantLatency>(ds::millis(1)),
                  cfg);
  Probe a, b;
  a.sim = b.sim = &sim;
  const auto ida = net.new_node_id();
  const auto idb = net.new_node_id();
  net.attach(ida, &a);
  net.attach(idb, &b);
  net.send(ida, idb, 1, 500'000);  // 0.5 s
  net.send(ida, idb, 2, 500'000);  // queued behind: arrives ~1 s
  sim.run_all();
  ASSERT_EQ(b.arrivals.size(), 2u);
  EXPECT_NEAR(ds::to_seconds(b.arrivals[1] - b.arrivals[0]), 0.5, 0.05);
}

TEST(GeoLatency, IntraRegionIsFasterThanInterRegion) {
  ds::Simulator sim;
  auto geo = std::make_unique<dn::GeoLatency>(0.0);  // no jitter
  dn::GeoLatency* geo_ptr = geo.get();
  dn::Network net(sim, std::move(geo));
  const auto a = net.new_node_id();
  const auto b = net.new_node_id();
  const auto c = net.new_node_id();
  geo_ptr->assign(a, 0);
  geo_ptr->assign(b, 0);
  geo_ptr->assign(c, 2);
  ds::Rng rng(1);
  EXPECT_LT(geo_ptr->sample(a, b, rng), geo_ptr->sample(a, c, rng));
}

TEST(ChurnDriver, AlternatesOnlineOffline) {
  ds::Simulator sim;
  int ons = 0, offs = 0;
  dn::ChurnConfig cfg;
  cfg.session = dn::DurationDist::constant(100);
  cfg.downtime = dn::DurationDist::constant(100);
  cfg.initially_online = 1.0;
  dn::ChurnDriver churn(
      sim, 10, cfg, [&](std::size_t) { ++ons; }, [&](std::size_t) { ++offs; });
  churn.start();
  EXPECT_EQ(ons, 10);
  EXPECT_EQ(churn.online_count(), 10u);
  sim.run_until(ds::seconds(150));
  EXPECT_EQ(offs, 10);  // all went offline at t=100
  EXPECT_EQ(churn.online_count(), 0u);
  sim.run_until(ds::seconds(250));
  EXPECT_EQ(ons, 20);  // and back online at t=200
}

TEST(ChurnDriver, StopCancelsPendingTransitions) {
  ds::Simulator sim;
  int ons = 0, offs = 0;
  dn::ChurnConfig cfg;
  cfg.session = dn::DurationDist::constant(100);
  cfg.downtime = dn::DurationDist::constant(100);
  cfg.initially_online = 1.0;
  dn::ChurnDriver churn(
      sim, 8, cfg, [&](std::size_t) { ++ons; }, [&](std::size_t) { ++offs; });
  churn.start();
  sim.run_until(ds::seconds(50));
  churn.stop();
  EXPECT_TRUE(churn.stopped());
  // The t=100 transitions were scheduled but must not fire: stop() cancels
  // them rather than letting them no-op, so the queue drains completely.
  sim.run_all();
  EXPECT_EQ(offs, 0);
  EXPECT_EQ(churn.online_count(), 8u);
  EXPECT_EQ(ons, 8);  // only the initial onlining
}

TEST(ChurnDriver, RestartResumesFromCurrentStates) {
  ds::Simulator sim;
  int ons = 0, offs = 0;
  dn::ChurnConfig cfg;
  cfg.session = dn::DurationDist::constant(100);
  cfg.downtime = dn::DurationDist::constant(100);
  cfg.initially_online = 1.0;
  dn::ChurnDriver churn(
      sim, 8, cfg, [&](std::size_t) { ++ons; }, [&](std::size_t) { ++offs; });
  churn.start();
  sim.run_until(ds::seconds(150));  // everyone went offline at t=100
  EXPECT_EQ(offs, 8);
  churn.stop();
  sim.run_until(ds::seconds(400));  // frozen: no transitions while stopped
  EXPECT_EQ(ons, 8);
  churn.restart();
  EXPECT_FALSE(churn.stopped());
  // Fresh downtime draws start from the restart instant: back at t=500.
  sim.run_until(ds::seconds(550));
  EXPECT_EQ(ons, 16);
  EXPECT_EQ(churn.online_count(), 8u);
}

TEST(ChurnDriver, InitiallyOfflineFractionRespected) {
  ds::Simulator sim;
  dn::ChurnConfig cfg;
  cfg.initially_online = 0.0;
  int ons = 0;
  dn::ChurnDriver churn(
      sim, 50, cfg, [&](std::size_t) { ++ons; }, [](std::size_t) {});
  churn.start();
  EXPECT_EQ(ons, 0);
  EXPECT_EQ(churn.online_count(), 0u);
}

namespace {

double sample_mean_s(const dn::DurationDist& dist, int n, std::uint64_t seed) {
  ds::Rng rng(seed);
  double total = 0;
  for (int i = 0; i < n; ++i) total += ds::to_seconds(dist.sample(rng));
  return total / n;
}

std::vector<double> sample_sorted_s(const dn::DurationDist& dist, int n,
                                    std::uint64_t seed) {
  ds::Rng rng(seed);
  std::vector<double> xs;
  xs.reserve(n);
  for (int i = 0; i < n; ++i) xs.push_back(ds::to_seconds(dist.sample(rng)));
  std::sort(xs.begin(), xs.end());
  return xs;
}

}  // namespace

TEST(DurationDist, SampleMeansMatchAnalyticValues) {
  const int kN = 40000;
  // Constant(10): mean 10, exactly.
  EXPECT_DOUBLE_EQ(sample_mean_s(dn::DurationDist::constant(10), 100, 1), 10);
  // Exponential(mean 10): mean 10.
  EXPECT_NEAR(sample_mean_s(dn::DurationDist::exponential_mean(10), kN, 2),
              10.0, 0.5);
  // Pareto(x_m=2, alpha=3): mean = alpha*x_m/(alpha-1) = 3.
  EXPECT_NEAR(sample_mean_s(dn::DurationDist::pareto(2, 3), kN, 3), 3.0, 0.15);
  // Weibull(scale=10, shape=2): mean = scale * Gamma(1 + 1/2) ~ 8.862.
  EXPECT_NEAR(sample_mean_s(dn::DurationDist::weibull(10, 2), kN, 4), 8.862,
              0.4);
  // LogNormal(median=10, sigma=0.5): mean = median * exp(sigma^2/2) ~ 11.33.
  EXPECT_NEAR(sample_mean_s(dn::DurationDist::lognormal(10, 0.5), kN, 5),
              11.33, 0.6);
}

TEST(DurationDist, ParetoAndWeibullAreHeavyTailed) {
  const int kN = 40000;
  auto tail_ratio = [&](const dn::DurationDist& dist, std::uint64_t seed) {
    const auto xs = sample_sorted_s(dist, kN, seed);
    return xs[kN * 99 / 100] / xs[kN / 2];  // p99 / p50
  };
  // Analytic p99/p50: exponential ~6.64; Pareto(alpha=1.5) ~13.6;
  // Weibull(shape=0.5) ~44. The heavy tails should be far above the
  // light-tailed exponential baseline.
  const double expo = tail_ratio(dn::DurationDist::exponential_mean(10), 11);
  const double pareto = tail_ratio(dn::DurationDist::pareto(2, 1.5), 12);
  const double weibull = tail_ratio(dn::DurationDist::weibull(10, 0.5), 13);
  EXPECT_LT(expo, 8.0);
  EXPECT_GT(pareto, 10.0);
  EXPECT_GT(weibull, 25.0);
  EXPECT_GT(pareto, expo * 1.5);
  EXPECT_GT(weibull, expo * 3.0);
}

TEST(DurationDist, SameSeedYieldsIdenticalSequences) {
  for (const auto& dist :
       {dn::DurationDist::constant(10), dn::DurationDist::exponential_mean(10),
        dn::DurationDist::pareto(2, 1.5), dn::DurationDist::weibull(10, 0.6),
        dn::DurationDist::lognormal(10, 1.0)}) {
    ds::Rng r1(99), r2(99);
    for (int i = 0; i < 200; ++i) {
      EXPECT_EQ(dist.sample(r1), dist.sample(r2));
    }
  }
}

TEST(DurationDist, SamplesArePositive) {
  ds::Rng rng(3);
  for (const auto& dist :
       {dn::DurationDist::constant(10), dn::DurationDist::exponential_mean(10),
        dn::DurationDist::pareto(2, 1.5), dn::DurationDist::weibull(10, 0.6),
        dn::DurationDist::lognormal(10, 1.0)}) {
    for (int i = 0; i < 100; ++i) {
      EXPECT_GT(dist.sample(rng), 0);
    }
  }
}

// --- Topologies -------------------------------------------------------------

TEST(Topology, RandomGraphIsConnectedAtModestDegree) {
  ds::Rng rng(5);
  const auto adj = dn::random_graph(500, 6, rng);
  EXPECT_TRUE(dn::is_connected(adj));
  for (const auto& nbrs : adj) EXPECT_GE(nbrs.size(), 6u);
}

TEST(Topology, ErdosRenyiEdgeCountMatchesP) {
  ds::Rng rng(6);
  const auto adj = dn::erdos_renyi(200, 0.1, rng);
  std::size_t edges = 0;
  for (const auto& nbrs : adj) edges += nbrs.size();
  edges /= 2;
  const double expected = 0.1 * 200 * 199 / 2;
  EXPECT_NEAR(static_cast<double>(edges), expected, expected * 0.15);
}

TEST(Topology, WattsStrogatzKeepsDegreeSum) {
  ds::Rng rng(7);
  const auto adj = dn::watts_strogatz(100, 3, 0.2, rng);
  std::size_t edges = 0;
  for (const auto& nbrs : adj) edges += nbrs.size();
  EXPECT_EQ(edges / 2, 300u);  // n*k edges total
}

TEST(Topology, SmallWorldShortensPaths) {
  ds::Rng rng(8);
  const auto ring = dn::watts_strogatz(200, 2, 0.0, rng);
  const auto small_world = dn::watts_strogatz(200, 2, 0.3, rng);
  const double ring_path = dn::mean_path_length(ring, 200, rng);
  const double sw_path = dn::mean_path_length(small_world, 200, rng);
  EXPECT_LT(sw_path, ring_path * 0.6);
}

TEST(Topology, BarabasiAlbertIsSkewed) {
  ds::Rng rng(9);
  const auto adj = dn::barabasi_albert(500, 2, rng);
  EXPECT_TRUE(dn::is_connected(adj));
  std::size_t max_degree = 0;
  std::size_t total = 0;
  for (const auto& nbrs : adj) {
    max_degree = std::max(max_degree, nbrs.size());
    total += nbrs.size();
  }
  const double mean_degree = static_cast<double>(total) / 500.0;
  // Hubs: the max degree should far exceed the mean.
  EXPECT_GT(static_cast<double>(max_degree), mean_degree * 5);
}

TEST(Topology, SingleNodeGraphIsConnected) {
  ds::Rng rng(10);
  EXPECT_TRUE(dn::is_connected(dn::random_graph(1, 3, rng)));
  EXPECT_TRUE(dn::is_connected(dn::AdjacencyList{}));
}
