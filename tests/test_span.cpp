// Causal span tracing tests: hop allocation and depth bookkeeping in the
// Network, propagation through relaying hosts, the off-by-default contract
// (golden traces stay byte-stable), same-seed span-trace determinism, and
// --jobs invariance of a span-instrumented sweep.
#include <gtest/gtest.h>

#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "net/network.hpp"
#include "overlay/gossip.hpp"
#include "sim/experiment.hpp"
#include "sim/simulator.hpp"
#include "sim/trace.hpp"

namespace ds = decentnet::sim;
namespace dn = decentnet::net;
namespace ov = decentnet::overlay;

namespace {

struct Ping {};

/// Collects records in memory for structural assertions.
class VecSink final : public ds::TraceSink {
 public:
  struct Rec {
    ds::SimTime t;
    std::string kind;
    std::string tag;
    std::uint64_t id, a, b, bytes;
  };
  void record(const ds::TraceRecord& r) override {
    recs.push_back(
        {r.t, r.kind, r.tag ? r.tag : "", r.id, r.a, r.b, r.bytes});
  }
  std::size_t count(const std::string& kind) const {
    std::size_t n = 0;
    for (const auto& r : recs) {
      if (r.kind == kind) ++n;
    }
    return n;
  }
  std::vector<Rec> recs;
};

/// Relays every incoming message to `next` (if set), inheriting its span —
/// the pattern every protocol relay path follows.
struct Relay final : dn::Host {
  dn::Network* net = nullptr;
  dn::NodeId self, next;
  std::vector<dn::Span> seen;
  void handle_message(const dn::Message& msg) override {
    seen.push_back(msg.span);
    if (next != dn::NodeId{}) net->send(self, next, Ping{}, 10, 0, msg.span);
  }
};

}  // namespace

TEST(Span, OffByDefaultAndRootIsZero) {
  ds::Simulator sim(1);
  VecSink sink;
  sim.set_trace(&sink);
  dn::Network net(sim, std::make_unique<dn::ConstantLatency>(ds::millis(5)),
                  {}, nullptr);
  EXPECT_FALSE(net.span_tracking());
  const dn::Span root = net.new_span_root();
  EXPECT_EQ(root.root, 0u);
  EXPECT_EQ(root.hop, 0u);

  Relay a;
  a.net = &net;
  a.self = net.new_node_id();
  net.attach(a.self, &a);
  net.send(a.self, a.self, Ping{}, 10);
  sim.run_all();
  EXPECT_EQ(sink.count("span"), 0u);
  ASSERT_EQ(a.seen.size(), 1u);
  EXPECT_EQ(a.seen[0].hop, 0u);
}

TEST(Span, HopsChainThroughRelaysWithIncreasingDepth) {
  ds::Simulator sim(7);
  VecSink sink;
  sim.set_trace(&sink);
  dn::NetworkConfig cfg;
  cfg.track_spans = true;
  dn::Network net(sim, std::make_unique<dn::ConstantLatency>(ds::millis(5)),
                  cfg, nullptr);

  Relay a, b, c;
  for (Relay* r : {&a, &b, &c}) {
    r->net = &net;
    r->self = net.new_node_id();
    net.attach(r->self, r);
  }
  a.next = b.self;
  b.next = c.self;

  // Virtual root -> a -> b -> c.
  const dn::Span root = net.new_span_root();
  EXPECT_NE(root.root, 0u);
  EXPECT_EQ(root.root, root.hop);
  net.send(c.self, a.self, Ping{}, 10, 0, root);
  sim.run_all();

  // One "root" span plus one per delivered message.
  ASSERT_EQ(sink.count("span"), 4u);
  std::vector<VecSink::Rec> spans;
  for (const auto& r : sink.recs) {
    if (r.kind == "span") spans.push_back(r);
  }
  EXPECT_EQ(spans[0].tag, "root");
  EXPECT_EQ(spans[0].bytes, 0u);  // depth 0
  for (std::size_t i = 1; i < spans.size(); ++i) {
    EXPECT_EQ(spans[i].tag, "");
    EXPECT_EQ(spans[i].a, root.root);       // same tree
    EXPECT_EQ(spans[i].b, spans[i - 1].id); // parent = previous hop
    EXPECT_EQ(spans[i].bytes, i);           // depth grows by one per relay
  }
  EXPECT_EQ(net.span_hops(), 4u);

  // Receivers observed the rewritten hop id (the one their relays chained
  // under), not the parent they were sent with.
  ASSERT_EQ(a.seen.size(), 1u);
  EXPECT_EQ(a.seen[0].hop, static_cast<std::uint32_t>(spans[1].id));
  ASSERT_EQ(b.seen.size(), 1u);
  EXPECT_EQ(b.seen[0].hop, static_cast<std::uint32_t>(spans[2].id));
  EXPECT_EQ(net.span_depth(b.seen[0].hop), 2u);
}

TEST(Span, FreshSendWithoutRootStartsItsOwnTree) {
  ds::Simulator sim(7);
  dn::NetworkConfig cfg;
  cfg.track_spans = true;
  dn::Network net(sim, std::make_unique<dn::ConstantLatency>(ds::millis(5)),
                  cfg, nullptr);
  Relay a;
  a.net = &net;
  a.self = net.new_node_id();
  net.attach(a.self, &a);
  net.send(a.self, a.self, Ping{}, 10);  // default span {0,0}
  sim.run_all();
  ASSERT_EQ(a.seen.size(), 1u);
  EXPECT_NE(a.seen[0].hop, 0u);
  EXPECT_EQ(a.seen[0].root, a.seen[0].hop);  // it is its own root
  EXPECT_EQ(net.span_depth(a.seen[0].hop), 0u);
}

namespace {

/// A small gossip broadcast with spans on, traced to `os`.
void run_traced_gossip(std::ostream& os, std::uint64_t seed) {
  ds::JsonlTraceSink sink(os);
  ds::Simulator sim(seed);
  sim.set_trace(&sink);
  dn::NetworkConfig net_cfg;
  net_cfg.expected_nodes = 24;
  net_cfg.track_spans = true;
  dn::Network net(sim,
                  std::make_unique<dn::LogNormalLatency>(ds::millis(20), 0.3),
                  net_cfg, nullptr);
  ov::GossipConfig cfg;
  cfg.fanout = 3;
  std::vector<dn::NodeId> addrs;
  for (int i = 0; i < 24; ++i) addrs.push_back(net.new_node_id());
  std::vector<std::unique_ptr<ov::GossipNode>> nodes;
  for (int i = 0; i < 24; ++i) {
    nodes.push_back(std::make_unique<ov::GossipNode>(net, addrs[i], cfg));
    std::vector<dn::NodeId> view;
    for (int k = 1; k <= 4; ++k) view.push_back(addrs[(i + k) % 24]);
    nodes.back()->join(view);
  }
  sim.run_until(ds::seconds(30));
  nodes[0]->broadcast(1, 256);
  sim.run_until(sim.now() + ds::seconds(30));
}

}  // namespace

TEST(Span, SameSeedSpanTracesAreByteIdentical) {
  std::ostringstream t1, t2, t3;
  run_traced_gossip(t1, 99);
  run_traced_gossip(t2, 99);
  run_traced_gossip(t3, 100);
  EXPECT_FALSE(t1.str().empty());
  EXPECT_EQ(t1.str(), t2.str());
  EXPECT_NE(t1.str(), t3.str());  // the seed actually reaches the trace
  EXPECT_NE(t1.str().find("\"kind\":\"span\",\"tag\":\"root\""),
            std::string::npos);
}

namespace {

std::string run_span_sweep(std::size_t jobs) {
  ds::ExperimentOptions opts;
  opts.seed = 17;
  opts.jobs = jobs;
  opts.quiet = true;
  opts.emit_json = false;
  ds::ExperimentHarness ex("unit_span_points", opts);
  ex.run_points(3, [](ds::PointScope& scope) {
    ds::Simulator sim(scope.root_seed() + scope.index());
    scope.instrument(sim);
    dn::NetworkConfig net_cfg;
    net_cfg.expected_nodes = 12;
    net_cfg.track_spans = true;
    dn::Network net(sim, std::make_unique<dn::ConstantLatency>(ds::millis(10)),
                    net_cfg, &scope.metrics());
    ov::GossipConfig cfg;
    cfg.fanout = 2 + scope.index();
    std::vector<dn::NodeId> addrs;
    for (int i = 0; i < 12; ++i) addrs.push_back(net.new_node_id());
    std::vector<std::unique_ptr<ov::GossipNode>> nodes;
    for (int i = 0; i < 12; ++i) {
      nodes.push_back(std::make_unique<ov::GossipNode>(net, addrs[i], cfg));
      nodes.back()->join({addrs[(i + 1) % 12], addrs[(i + 5) % 12]});
    }
    sim.run_until(ds::seconds(10));
    nodes[0]->broadcast(1, 128);
    sim.run_until(sim.now() + ds::seconds(10));
    scope.add_row({{"point", std::uint64_t{scope.index()}},
                   {"span_hops", std::uint64_t{net.span_hops()}}});
  });
  return ex.to_json();
}

}  // namespace

TEST(Span, RunPointsArtifactIsJobsInvariant) {
  const std::string sequential = run_span_sweep(1);
  const std::string parallel = run_span_sweep(4);
  EXPECT_EQ(sequential, parallel);
  // The span-derived histogram made it into the merged registry.
  EXPECT_NE(sequential.find("overlay/gossip_tree_depth"), std::string::npos);
  EXPECT_NE(sequential.find("net/span_hops"), std::string::npos);
}
