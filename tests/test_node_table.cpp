// NodeTable contract tests: dense indices assigned in intern order, stable
// for the table's lifetime (churn re-interns resolve to the same index),
// kNoIndex on lookup miss, and the direct/sparse aliasing rule — an id that
// entered the hash map before the direct map grew over its value must keep
// its original index on every later intern and lookup.
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "net/latency.hpp"
#include "net/network.hpp"
#include "net/node_table.hpp"
#include "overlay/gossip.hpp"
#include "sim/simulator.hpp"
#include "sim/time.hpp"

namespace dn = decentnet::net;
namespace ds = decentnet::sim;
namespace ov = decentnet::overlay;

TEST(NodeTable, InternAssignsSequentialStableIndices) {
  dn::NodeTable table;
  EXPECT_EQ(table.size(), 0u);
  for (std::uint64_t v = 1; v <= 100; ++v) {
    EXPECT_EQ(table.intern(dn::NodeId{v}), v - 1);
  }
  EXPECT_EQ(table.size(), 100u);
  // Re-interning (a churned node re-attaching) never reassigns.
  for (std::uint64_t v = 100; v >= 1; --v) {
    EXPECT_EQ(table.intern(dn::NodeId{v}), v - 1);
    EXPECT_EQ(table.index_of(dn::NodeId{v}), v - 1);
  }
  EXPECT_EQ(table.size(), 100u);
}

TEST(NodeTable, LookupMissReturnsNoIndex) {
  dn::NodeTable table;
  EXPECT_EQ(table.index_of(dn::NodeId{1}), dn::NodeTable::kNoIndex);
  table.intern(dn::NodeId{1});
  EXPECT_EQ(table.index_of(dn::NodeId{2}), dn::NodeTable::kNoIndex);
  // A miss inside the direct map's range (slot never assigned).
  table.intern(dn::NodeId{10});
  EXPECT_EQ(table.index_of(dn::NodeId{5}), dn::NodeTable::kNoIndex);
  // A miss far outside any range (would-be sparse id).
  EXPECT_EQ(table.index_of(dn::NodeId{1u << 30}), dn::NodeTable::kNoIndex);
}

TEST(NodeTable, OutlierIdsGoSparseAndStayStable) {
  dn::NodeTable table;
  // Far outside the near-dense growth rule: lands in the hash map.
  const dn::NodeId outlier{1'000'000'000};
  const std::uint32_t idx = table.intern(outlier);
  EXPECT_EQ(idx, 0u);
  EXPECT_EQ(table.intern(outlier), idx);
  EXPECT_EQ(table.index_of(outlier), idx);
  // Sequential ids intern alongside it with distinct indices.
  for (std::uint64_t v = 1; v <= 50; ++v) {
    EXPECT_EQ(table.intern(dn::NodeId{v}), static_cast<std::uint32_t>(v));
  }
  EXPECT_EQ(table.index_of(outlier), idx);
  EXPECT_EQ(table.size(), 51u);
}

TEST(NodeTable, SparseIdKeepsIndexAfterDirectMapGrowsOverIt) {
  dn::NodeTable table;
  // 5000 > 4*0 + 1024, so it goes sparse with index 0.
  const dn::NodeId edge{5000};
  EXPECT_EQ(table.intern(edge), 0u);
  // Intern enough sequential ids that the direct map's range grows past
  // 5000. Its direct slot is empty (kNoIndex), so both intern and lookup
  // must fall through to the hash map and find the original index — a
  // second index here would silently fork the node's SoA state.
  for (std::uint64_t v = 1; v <= 2000; ++v) table.intern(dn::NodeId{v});
  EXPECT_EQ(table.size(), 2001u);
  EXPECT_EQ(table.index_of(edge), 0u);
  EXPECT_EQ(table.intern(edge), 0u);
  EXPECT_EQ(table.size(), 2001u);
}

TEST(NodeTable, ReservePreSizesWithoutAssigning) {
  dn::NodeTable table;
  table.reserve(1000);
  EXPECT_EQ(table.size(), 0u);
  EXPECT_EQ(table.index_of(dn::NodeId{500}), dn::NodeTable::kNoIndex);
  for (std::uint64_t v = 1; v <= 1000; ++v) {
    EXPECT_EQ(table.intern(dn::NodeId{v}), v - 1);
  }
}

TEST(NodeTable, NetworkIndexStableAcrossChurn) {
  // The property delivery closures and side tables rely on: a node that
  // leaves and rejoins keeps its dense index, while the population keeps
  // growing around it.
  ds::Simulator simu(3);
  dn::Network netw(simu, std::make_unique<dn::ConstantLatency>(ds::millis(5)),
                   dn::NetworkConfig{}, nullptr);
  const std::size_t n = 16;
  std::vector<dn::NodeId> addrs(n);
  for (std::size_t i = 0; i < n; ++i) addrs[i] = netw.new_node_id();
  ov::GossipConfig cfg;
  cfg.fanout = 2;
  std::vector<std::unique_ptr<ov::GossipNode>> nodes;
  for (std::size_t i = 0; i < n; ++i) {
    nodes.push_back(std::make_unique<ov::GossipNode>(netw, addrs[i], cfg));
    nodes.back()->join({addrs[(i + 1) % n]});
  }
  std::vector<std::uint32_t> before(n);
  for (std::size_t i = 0; i < n; ++i) before[i] = netw.node_index(addrs[i]);
  // Churn half the population through leave/rejoin, then add newcomers.
  for (std::size_t i = 0; i < n; i += 2) nodes[i]->leave();
  simu.run_until(ds::seconds(1));
  for (std::size_t i = 0; i < n; i += 2) nodes[i]->join({addrs[i + 1]});
  for (std::size_t i = 0; i < 8; ++i) {
    const dn::NodeId fresh = netw.new_node_id();
    netw.register_node(fresh);
    EXPECT_NE(netw.node_index(fresh), dn::NodeTable::kNoIndex);
  }
  simu.run_until(ds::seconds(2));
  for (std::size_t i = 0; i < n; ++i) {
    EXPECT_EQ(netw.node_index(addrs[i]), before[i]) << "node " << i;
  }
}
