// Workload catalogs, free riding (Gnutella + BitTorrent tit-for-tat), and
// the sybil attack on Kademlia.
#include <gtest/gtest.h>

#include <memory>

#include "net/topology.hpp"
#include "overlay/kademlia.hpp"
#include "p2p/bittorrent.hpp"
#include "p2p/sybil.hpp"
#include "p2p/workload.hpp"

namespace dp = decentnet::p2p;
namespace dn = decentnet::net;
namespace ds = decentnet::sim;
namespace ov = decentnet::overlay;

// --- Workload ---------------------------------------------------------------

TEST(Workload, PlanRespectsFreeRiderFraction) {
  ds::Rng rng(1);
  dp::ContentCatalog catalog({}, rng);
  const auto plan = dp::plan_population(catalog, 1000, 0.7, rng);
  EXPECT_NEAR(static_cast<double>(plan.free_riders), 700.0, 60.0);
  std::size_t sharers = 0;
  for (const auto& items : plan.shared) {
    if (!items.empty()) ++sharers;
  }
  EXPECT_EQ(sharers + plan.free_riders, 1000u);
}

TEST(Workload, QueriesFollowZipf) {
  ds::Rng rng(2);
  dp::CatalogConfig cfg;
  cfg.items = 100;
  dp::ContentCatalog catalog(cfg, rng);
  std::vector<int> counts(100, 0);
  for (int i = 0; i < 50000; ++i) {
    ++counts[catalog.sample_query(rng)];
  }
  EXPECT_GT(counts[0], counts[50]);
}

// --- BitTorrent tit-for-tat ---------------------------------------------------

TEST(Swarm, ContributorsFinish) {
  ds::Simulator sim(1);
  dp::SwarmConfig cfg;
  cfg.pieces = 32;
  cfg.piece_bytes = 64 * 1024;
  dp::Swarm swarm(sim, cfg, /*seeds=*/2, /*leechers=*/20, /*free_riders=*/0);
  swarm.start();
  sim.run_until(ds::hours(2));
  EXPECT_GT(swarm.finished_fraction(false, sim.now()), 0.9);
}

TEST(Swarm, TitForTatPunishesFreeRiders) {
  auto run = [](bool tft) {
    ds::Simulator sim(7);
    dp::SwarmConfig cfg;
    cfg.pieces = 64;
    cfg.piece_bytes = 64 * 1024;
    cfg.tit_for_tat = tft;
    // Scarce seed capacity: the swarm must feed itself, so reciprocation
    // (or its absence) decides who gets served.
    cfg.seed_upload_bps = 1e6 / 8;
    cfg.peer_upload_bps = 2e6 / 8;
    dp::Swarm swarm(sim, cfg, /*seeds=*/1, /*leechers=*/16,
                    /*free_riders=*/4);
    swarm.start();
    sim.run_until(ds::hours(2));
    return std::make_pair(swarm.median_finish_time(false),
                          swarm.median_finish_time(true));
  };
  const auto [tft_contrib, tft_rider] = run(true);
  ASSERT_GT(tft_contrib, 0) << "contributors must finish under TFT";
  ASSERT_GT(tft_rider, 0);
  // Free riders finish later than contributors (they still finish — once
  // contributors complete, their idle capacity serves whoever is left,
  // which matches measured swarm behaviour).
  EXPECT_GT(tft_rider, tft_contrib);
  const auto [rnd_contrib, rnd_rider] = run(false);
  ASSERT_GT(rnd_contrib, 0);
  ASSERT_GT(rnd_rider, 0);
  // Without incentives the free-rider penalty largely disappears.
  const double tft_penalty = static_cast<double>(tft_rider) /
                             static_cast<double>(tft_contrib);
  const double rnd_penalty = static_cast<double>(rnd_rider) /
                             static_cast<double>(rnd_contrib);
  EXPECT_GT(tft_penalty, rnd_penalty);
  EXPECT_GT(tft_penalty, 1.05);
}

TEST(Swarm, FreeRidersUploadNothing) {
  ds::Simulator sim(3);
  dp::SwarmConfig cfg;
  cfg.pieces = 16;
  dp::Swarm swarm(sim, cfg, 1, 8, 3);
  swarm.start();
  sim.run_until(ds::hours(1));
  for (const auto& s : swarm.stats()) {
    if (s.free_rider) EXPECT_EQ(s.bytes_uploaded, 0u);
  }
}

TEST(Swarm, StatsAccountingConsistent) {
  ds::Simulator sim(4);
  dp::SwarmConfig cfg;
  cfg.pieces = 16;
  dp::Swarm swarm(sim, cfg, 1, 6, 0);
  swarm.start();
  sim.run_until(ds::hours(1));
  std::uint64_t up = 0, down = 0;
  for (const auto& s : swarm.stats()) {
    up += s.bytes_uploaded;
    down += s.bytes_downloaded;
  }
  EXPECT_EQ(up, down);
  EXPECT_GT(up, 0u);
}

// --- Sybil attack -------------------------------------------------------------

namespace {

struct SybilFixture {
  ds::Simulator sim{11};
  dn::Network net{sim, std::make_unique<dn::ConstantLatency>(ds::millis(20))};
  ov::KademliaConfig config;
  std::vector<std::unique_ptr<ov::KademliaNode>> honest;

  explicit SybilFixture(std::size_t n) {
    for (std::size_t i = 0; i < n; ++i) {
      honest.push_back(std::make_unique<ov::KademliaNode>(
          net, net.new_node_id(), config));
    }
    honest[0]->join({});
    for (std::size_t i = 1; i < n; ++i) {
      honest[i]->join({{honest[0]->id(), honest[0]->addr()}});
      sim.run_until(sim.now() + ds::seconds(1));
    }
    sim.run_until(sim.now() + ds::seconds(10));
  }
};

}  // namespace

TEST(Sybil, IdsLandNextToVictimKey) {
  ds::Rng rng(5);
  const ov::Key victim = decentnet::crypto::sha256("victim");
  for (int i = 0; i < 50; ++i) {
    const ov::Key id = dp::sybil_id_near(victim, 32, rng);
    EXPECT_GE(victim.distance_to(id).leading_zero_bits(), 32);
    EXPECT_NE(id, victim);
  }
}

TEST(Sybil, EclipsesNewStoresAtTargetKey) {
  // The KAD-attack pattern: sybils occupy the id space around the victim
  // key, so STOREs issued after the attack land on attacker nodes (which
  // swallow them) and subsequent lookups come up empty.
  SybilFixture fx(30);
  const ov::Key victim_key = decentnet::crypto::sha256("precious-content");
  dp::SybilConfig scfg;
  scfg.count = 64;
  ds::Rng rng(6);
  dp::SybilAttack attack(fx.net, scfg, victim_key, rng);
  attack.launch();
  std::vector<ov::KademliaNode*> targets;
  for (auto& h : fx.honest) targets.push_back(h.get());
  attack.infiltrate(targets, 4, rng);
  fx.sim.run_until(fx.sim.now() + ds::seconds(10));

  bool stored = false;
  fx.honest[1]->store(victim_key, "data", [&](std::size_t) { stored = true; });
  fx.sim.run_until(fx.sim.now() + ds::minutes(1));
  ASSERT_TRUE(stored);

  int found = 0, tried = 0;
  for (std::size_t i = 2; i < 12; ++i) {
    bool done = false;
    fx.honest[i]->find_value(victim_key, [&](ov::LookupResult r) {
      done = true;
      if (r.found_value) ++found;
    });
    fx.sim.run_until(fx.sim.now() + ds::minutes(1));
    if (done) ++tried;
  }
  EXPECT_EQ(tried, 10);
  EXPECT_LE(found, 3) << "sybil cluster should capture the keyspace region";
  EXPECT_GT(attack.captured_requests(), 0u);
}

TEST(Sybil, PreexistingValuesDegradeButMaySurvive) {
  // Values stored before the attack still sit on honest nodes; the attack
  // degrades discoverability rather than erasing history.
  SybilFixture fx(30);
  const ov::Key key = decentnet::crypto::sha256("old-content");
  bool stored = false;
  fx.honest[1]->store(key, "data", [&](std::size_t) { stored = true; });
  fx.sim.run_until(fx.sim.now() + ds::minutes(1));
  ASSERT_TRUE(stored);
  dp::SybilConfig scfg;
  scfg.count = 64;
  ds::Rng rng(6);
  dp::SybilAttack attack(fx.net, scfg, key, rng);
  attack.launch();
  std::vector<ov::KademliaNode*> targets;
  for (auto& h : fx.honest) targets.push_back(h.get());
  attack.infiltrate(targets, 4, rng);
  int found = 0;
  for (std::size_t i = 2; i < 12; ++i) {
    fx.honest[i]->find_value(key, [&](ov::LookupResult r) {
      if (r.found_value) ++found;
    });
    fx.sim.run_until(fx.sim.now() + ds::minutes(1));
  }
  EXPECT_LT(found, 10) << "attack should at least degrade some lookups";
}

TEST(Sybil, UntargetedSybilsBarelyDisrupt) {
  SybilFixture fx(30);
  const ov::Key key = decentnet::crypto::sha256("other-content");
  bool stored = false;
  fx.honest[1]->store(key, "data", [&](std::size_t) { stored = true; });
  fx.sim.run_until(fx.sim.now() + ds::minutes(1));
  ASSERT_TRUE(stored);
  dp::SybilConfig scfg;
  scfg.count = 16;
  scfg.target_key = false;  // uniformly spread ids
  ds::Rng rng(7);
  dp::SybilAttack attack(fx.net, scfg, key, rng);
  attack.launch();
  std::vector<ov::KademliaNode*> targets;
  for (auto& h : fx.honest) targets.push_back(h.get());
  attack.infiltrate(targets, 1, rng);
  int found = 0;
  for (std::size_t i = 2; i < 10; ++i) {
    fx.honest[i]->find_value(key, [&](ov::LookupResult r) {
      if (r.found_value) ++found;
    });
    fx.sim.run_until(fx.sim.now() + ds::minutes(1));
  }
  EXPECT_GE(found, 5) << "diffuse sybils without key targeting do far less";
}
