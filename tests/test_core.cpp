// Core analysis toolkit: trilemma evaluator properties and smoke runs of the
// three scenario drivers (small configurations; benches run the full sizes).
#include <gtest/gtest.h>

#include "core/scenarios.hpp"
#include "core/trilemma.hpp"

namespace dc = decentnet::core;
namespace ds = decentnet::sim;

TEST(Trilemma, FullBroadcastMaximizesSecurityAndMinimizesThroughput) {
  dc::TrilemmaDesign d;
  d.shards = 1;
  d.node_capacity_tps = 15;
  const auto p = dc::evaluate_trilemma(d);
  EXPECT_DOUBLE_EQ(p.throughput_tps, 15);
  EXPECT_DOUBLE_EQ(p.scalability, 1);
  EXPECT_DOUBLE_EQ(p.security, 0.5);
  EXPECT_DOUBLE_EQ(p.per_node_load, 1.0);
}

TEST(Trilemma, ShardingTradesSecurityForThroughput) {
  const auto sweep = dc::trilemma_sweep(1000, 10, {1, 2, 4, 8, 16, 64});
  for (std::size_t i = 1; i < sweep.size(); ++i) {
    EXPECT_GT(sweep[i].throughput_tps, sweep[i - 1].throughput_tps);
    EXPECT_LT(sweep[i].security, sweep[i - 1].security);
  }
  // The product of scalability and security is invariant: pick two.
  for (const auto& p : sweep) {
    EXPECT_NEAR(p.scalability * p.security, 0.5, 1e-9);
  }
}

TEST(Scenarios, PowSmokeRun) {
  dc::PowScenarioConfig cfg;
  cfg.nodes = 12;
  cfg.miners = 4;
  cfg.wallets = 8;
  cfg.tx_rate_per_sec = 2;
  cfg.common.duration = ds::minutes(40);
  cfg.params.target_block_interval = ds::minutes(2);
  cfg.params.initial_difficulty = 1e6;
  cfg.params.retarget_window = 0;
  cfg.total_hashrate = 1e6 / 120.0;  // ~1 block / 2 min
  const auto r = dc::run_pow_scenario(cfg);
  EXPECT_GT(r.blocks_on_chain, 5u);
  EXPECT_GT(r.confirmed_txs, 100u);
  EXPECT_GT(r.throughput_tps, 0.1);
  EXPECT_LT(r.stale_rate, 0.2);
}

TEST(Scenarios, FabricSmokeRun) {
  dc::FabricScenarioConfig cfg;
  cfg.orgs = 3;
  cfg.required_endorsements = 2;
  cfg.orderer = dc::OrdererKind::Raft;
  cfg.clients = 4;
  cfg.tx_rate_per_sec = 50;
  cfg.common.duration = ds::seconds(30);
  const auto r = dc::run_fabric_scenario(cfg);
  EXPECT_GT(r.committed, 1000u);
  EXPECT_GT(r.throughput_tps, 30);
  EXPECT_GT(r.latency_p50_ms, 0);
  EXPECT_LT(r.latency_p50_ms, 2000);
}

TEST(Scenarios, FabricHotKeysCauseMvccConflicts) {
  dc::FabricScenarioConfig cfg;
  cfg.orgs = 3;
  cfg.required_endorsements = 2;
  cfg.orderer = dc::OrdererKind::Solo;
  cfg.clients = 4;
  cfg.tx_rate_per_sec = 100;
  cfg.common.duration = ds::seconds(20);
  cfg.hot_keys = 2;  // everyone hammers two keys
  const auto r = dc::run_fabric_scenario(cfg);
  EXPECT_GT(r.mvcc_conflicts, 10u);
}

TEST(Scenarios, PartitionedScalesWithPartitions) {
  dc::PartitionedScenarioConfig small;
  small.partitions = 2;
  small.tx_rate_per_sec = 2000;
  small.common.duration = ds::seconds(10);
  const auto r2 = dc::run_partitioned_scenario(small);

  dc::PartitionedScenarioConfig big = small;
  big.partitions = 8;
  big.tx_rate_per_sec = 8000;
  const auto r8 = dc::run_partitioned_scenario(big);

  EXPECT_GT(r2.throughput_tps, 1500);
  EXPECT_GT(r8.throughput_tps, r2.throughput_tps * 3);
  EXPECT_LT(r8.latency_p50_ms, 100);
}
