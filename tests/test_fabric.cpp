// Fabric stack tests: MSP certificates, chaincode read/write sets and MVCC,
// the built-in contracts, and the full execute-order-validate pipeline over
// solo, Raft and PBFT orderers.
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "fabric/channel.hpp"
#include "fabric/consortium.hpp"
#include "fabric/contracts.hpp"
#include "fabric/msp.hpp"
#include "net/network.hpp"

namespace df = decentnet::fabric;
namespace dn = decentnet::net;
namespace ds = decentnet::sim;

// --- MSP ----------------------------------------------------------------------

TEST(Msp, EnrollAndValidate) {
  df::MembershipService msp(1);
  const auto key = decentnet::crypto::KeyAuthority::global().issue(100);
  const auto cert = msp.enroll(key.public_key(), "org1", "peer");
  EXPECT_TRUE(msp.validate(cert));
  EXPECT_EQ(cert.org, "org1");
}

TEST(Msp, RevocationInvalidates) {
  df::MembershipService msp(2);
  const auto key = decentnet::crypto::KeyAuthority::global().issue(101);
  const auto cert = msp.enroll(key.public_key(), "org1", "peer");
  msp.revoke(key.public_key());
  EXPECT_FALSE(msp.validate(cert));
}

TEST(Msp, ForgedCertificateRejected) {
  df::MembershipService msp(3);
  df::MembershipService other_ca(4);
  const auto key = decentnet::crypto::KeyAuthority::global().issue(102);
  // Enrolled with a different CA: invalid under msp.
  const auto cert = other_ca.enroll(key.public_key(), "org1", "peer");
  EXPECT_FALSE(msp.validate(cert));
  // Tampered role breaks the signature.
  auto tampered = msp.enroll(key.public_key(), "org1", "peer");
  tampered.role = "admin";
  EXPECT_FALSE(msp.validate(tampered));
}

// --- Chaincode / MVCC ----------------------------------------------------------

TEST(Chaincode, StubRecordsReadAndWriteSets) {
  df::KvStore state;
  state.put("a", "1");
  df::ChaincodeStub stub(state);
  EXPECT_EQ(stub.get("a"), "1");
  EXPECT_FALSE(stub.get("missing").has_value());
  stub.put("b", "2");
  const auto& rw = stub.rwset();
  ASSERT_EQ(rw.reads.size(), 2u);
  EXPECT_EQ(rw.reads[0].key, "a");
  EXPECT_EQ(rw.reads[0].version, 1u);
  EXPECT_EQ(rw.reads[1].version, 0u);  // absent key read at version 0
  ASSERT_EQ(rw.writes.size(), 1u);
  EXPECT_EQ(rw.writes[0].key, "b");
}

TEST(Chaincode, ReadYourWrites) {
  df::KvStore state;
  df::ChaincodeStub stub(state);
  stub.put("x", "new");
  EXPECT_EQ(stub.get("x"), "new");
}

TEST(Chaincode, MvccDetectsStaleReads) {
  df::KvStore state;
  state.put("k", "v1");
  df::ChaincodeStub stub(state);
  stub.get("k");
  stub.put("k", "v2");
  const df::RwSet rw = stub.take_rwset();
  EXPECT_TRUE(df::mvcc_valid(state, rw));
  // A concurrent commit bumps the version.
  state.put("k", "concurrent");
  EXPECT_FALSE(df::mvcc_valid(state, rw));
}

TEST(Chaincode, ApplyWritesBumpsVersions) {
  df::KvStore state;
  df::ChaincodeStub stub(state);
  stub.put("k", "v");
  stub.del("gone");
  df::apply_writes(state, stub.rwset());
  EXPECT_EQ(state.get("k")->value, "v");
  EXPECT_EQ(state.get("k")->version, 1u);
  EXPECT_FALSE(state.get("gone").has_value());
}

TEST(Chaincode, PrefixScan) {
  df::KvStore state;
  state.put("sc/a", "1");
  state.put("sc/b", "2");
  state.put("zz/c", "3");
  df::ChaincodeStub stub(state);
  const auto items = stub.by_prefix("sc/");
  ASSERT_EQ(items.size(), 2u);
  EXPECT_EQ(items[0].first, "sc/a");
}

// --- Contracts -------------------------------------------------------------------

namespace {
df::ChaincodeResult call(df::Chaincode& cc, df::KvStore& state,
                         std::vector<std::string> args) {
  df::ChaincodeStub stub(state);
  auto result = cc.invoke(args, stub);
  if (result.ok) df::apply_writes(state, stub.rwset());
  return result;
}
}  // namespace

TEST(Contracts, AssetLifecycle) {
  df::AssetTransferContract asset;
  df::KvStore state;
  EXPECT_TRUE(call(asset, state, {"create", "car1", "alice", "5000"}).ok);
  EXPECT_FALSE(call(asset, state, {"create", "car1", "bob", "1"}).ok);
  EXPECT_TRUE(call(asset, state, {"transfer", "car1", "bob"}).ok);
  const auto read = call(asset, state, {"read", "car1"});
  ASSERT_TRUE(read.ok);
  EXPECT_EQ(read.payload, "bob,5000");
  EXPECT_FALSE(call(asset, state, {"transfer", "ghost", "bob"}).ok);
}

TEST(Contracts, SupplyChainTrace) {
  df::SupplyChainContract sc;
  df::KvStore state;
  EXPECT_TRUE(call(sc, state, {"register", "pallet9", "factory-A"}).ok);
  EXPECT_TRUE(call(sc, state, {"ship", "pallet9", "carrier-X"}).ok);
  EXPECT_TRUE(call(sc, state, {"receive", "pallet9", "warehouse-B"}).ok);
  const auto trace = call(sc, state, {"trace", "pallet9"});
  ASSERT_TRUE(trace.ok);
  EXPECT_EQ(trace.payload,
            "origin:factory-A;ship:carrier-X;recv:warehouse-B");
  EXPECT_FALSE(call(sc, state, {"ship", "unknown", "x"}).ok);
}

TEST(Contracts, HealthRecordsRequireConsent) {
  df::HealthRecordsContract hc;
  df::KvStore state;
  EXPECT_FALSE(call(hc, state, {"put", "pat1", "hosp1", "bloodwork"}).ok);
  EXPECT_TRUE(call(hc, state, {"grant", "pat1", "hosp1"}).ok);
  EXPECT_TRUE(call(hc, state, {"put", "pat1", "hosp1", "bloodwork"}).ok);
  const auto rec = call(hc, state, {"get", "pat1", "hosp1"});
  ASSERT_TRUE(rec.ok);
  EXPECT_EQ(rec.payload, "bloodwork");
  EXPECT_TRUE(call(hc, state, {"revoke", "pat1", "hosp1"}).ok);
  EXPECT_FALSE(call(hc, state, {"get", "pat1", "hosp1"}).ok);
  // Another provider never had access.
  EXPECT_FALSE(call(hc, state, {"get", "pat1", "hosp2"}).ok);
}

TEST(Contracts, EnergyTrading) {
  df::EnergyTradingContract en;
  df::KvStore state;
  EXPECT_TRUE(call(en, state, {"meter", "solarco", "100"}).ok);
  EXPECT_FALSE(call(en, state, {"offer", "o1", "solarco", "500", "10"}).ok)
      << "cannot offer more than generated";
  EXPECT_TRUE(call(en, state, {"offer", "o1", "solarco", "60", "10"}).ok);
  EXPECT_TRUE(call(en, state, {"buy", "o1", "factory"}).ok);
  EXPECT_EQ(call(en, state, {"balance", "solarco"}).payload, "40");
  EXPECT_EQ(call(en, state, {"balance", "factory"}).payload, "60");
  EXPECT_FALSE(call(en, state, {"buy", "o1", "factory"}).ok)
      << "offer consumed";
}

TEST(Contracts, KvRoundTrip) {
  df::KvContract kv;
  df::KvStore state;
  EXPECT_TRUE(call(kv, state, {"put", "k", "v"}).ok);
  EXPECT_EQ(call(kv, state, {"get", "k"}).payload, "v");
  EXPECT_TRUE(call(kv, state, {"del", "k"}).ok);
  EXPECT_FALSE(call(kv, state, {"get", "k"}).ok);
}

// --- Full pipeline --------------------------------------------------------------

namespace {

struct FabricNet {
  ds::Simulator sim{77};
  dn::Network net{sim, std::make_unique<dn::ConstantLatency>(ds::millis(3))};
  df::MembershipService msp{7};
  df::EndorsementPolicy policy{2};
  std::vector<std::unique_ptr<df::FabricPeer>> peers;
  std::unique_ptr<df::FabricClient> client;

  explicit FabricNet(std::size_t orgs = 3) {
    auto asset = std::make_shared<df::AssetTransferContract>();
    auto kv = std::make_shared<df::KvContract>();
    for (std::size_t o = 0; o < orgs; ++o) {
      peers.push_back(std::make_unique<df::FabricPeer>(
          net, net.new_node_id(), "org" + std::to_string(o), msp, policy,
          1000 + o));
      peers.back()->install(asset);
      peers.back()->install(kv);
    }
    peers.front()->set_event_source(true);
    client = std::make_unique<df::FabricClient>(net, net.new_node_id(),
                                                policy);
    std::vector<df::FabricPeer*> endorsers;
    for (auto& p : peers) endorsers.push_back(p.get());
    client->set_endorsers(endorsers);
  }
};

}  // namespace

TEST(FabricPipeline, EndToEndCommitWithSoloOrderer) {
  FabricNet fx;
  df::SoloOrderer orderer(fx.net, fx.net.new_node_id(), df::OrdererConfig{});
  for (auto& p : fx.peers) orderer.register_peer(p->addr());
  fx.client->set_orderer(&orderer);
  bool done = false;
  fx.client->invoke("asset", {"create", "a1", "alice", "10"},
                    [&](bool ok, const std::string&, ds::SimDuration) {
                      done = true;
                      EXPECT_TRUE(ok);
                    });
  fx.sim.run_until(ds::seconds(10));
  ASSERT_TRUE(done);
  for (auto& p : fx.peers) {
    EXPECT_EQ(p->stats().txs_committed, 1u);
    EXPECT_TRUE(p->state().get("asset/a1").has_value());
  }
}

TEST(FabricPipeline, ChaincodeErrorReportedWithoutOrdering) {
  FabricNet fx;
  df::SoloOrderer orderer(fx.net, fx.net.new_node_id(), df::OrdererConfig{});
  for (auto& p : fx.peers) orderer.register_peer(p->addr());
  fx.client->set_orderer(&orderer);
  bool done = false;
  fx.client->invoke("asset", {"transfer", "nonexistent", "bob"},
                    [&](bool ok, const std::string& payload, ds::SimDuration) {
                      done = true;
                      EXPECT_FALSE(ok);
                      EXPECT_EQ(payload, "no such asset");
                    });
  fx.sim.run_until(ds::seconds(10));
  ASSERT_TRUE(done);
  EXPECT_EQ(orderer.blocks_cut(), 0u);
}

TEST(FabricPipeline, MvccConflictOnHotKey) {
  FabricNet fx;
  df::OrdererConfig ocfg;
  ocfg.block_max_txs = 10;
  df::SoloOrderer orderer(fx.net, fx.net.new_node_id(), ocfg);
  for (auto& p : fx.peers) orderer.register_peer(p->addr());
  fx.client->set_orderer(&orderer);
  // Two concurrent writes to the same key endorsed against the same state:
  // the second to order must fail MVCC.
  int committed = 0, failed = 0;
  for (int i = 0; i < 2; ++i) {
    fx.client->invoke("kv", {"put", "hot", "v" + std::to_string(i)},
                      [&](bool ok, const std::string&, ds::SimDuration) {
                        if (ok) {
                          ++committed;
                        } else {
                          ++failed;
                        }
                      });
  }
  fx.sim.run_until(ds::seconds(10));
  EXPECT_EQ(committed, 1);
  EXPECT_EQ(failed, 1);
  EXPECT_EQ(fx.peers[0]->stats().mvcc_conflicts, 1u);
}

TEST(FabricPipeline, EndorsementPolicyBlocksUnderSignedTx) {
  // A transaction with a single endorsement cannot satisfy a 2-org policy.
  FabricNet fx;
  df::SoloOrderer orderer(fx.net, fx.net.new_node_id(), df::OrdererConfig{});
  for (auto& p : fx.peers) orderer.register_peer(p->addr());
  // Craft an endorsed tx manually with only one endorsement, submit it.
  df::KvStore scratch;
  df::ChaincodeStub stub(scratch);
  df::KvContract kv;
  kv.invoke({"put", "k", "v"}, stub);
  df::EndorsedTx tx;
  tx.tx_id = 424242;
  tx.chaincode = "kv";
  tx.rwset = stub.take_rwset();
  // Sign with a key enrolled at the right CA but only one org.
  const auto key = decentnet::crypto::KeyAuthority::global().issue(5555);
  const auto cert = fx.msp.enroll(key.public_key(), "org0", "peer");
  tx.endorsements.push_back(df::Endorsement{cert, key.sign(tx.response_digest())});
  fx.net.send(fx.client->addr(), orderer.submit_address(),
              df::fabric_msg::SubmitMsg{tx}, tx.wire_size());
  fx.sim.run_until(ds::seconds(10));
  EXPECT_EQ(fx.peers[0]->stats().txs_committed, 0u);
  EXPECT_EQ(fx.peers[0]->stats().policy_failures, 1u);
}

TEST(FabricPipeline, RaftOrdererCommits) {
  FabricNet fx;
  df::RaftOrderer orderer(fx.net, 3, df::OrdererConfig{});
  for (auto& p : fx.peers) orderer.register_peer(p->addr());
  fx.client->set_orderer(&orderer);
  fx.sim.run_until(ds::seconds(2));  // elect
  int committed = 0;
  for (int i = 0; i < 10; ++i) {
    fx.client->invoke("kv", {"put", "k" + std::to_string(i), "v"},
                      [&](bool ok, const std::string&, ds::SimDuration) {
                        if (ok) ++committed;
                      });
  }
  fx.sim.run_until(ds::seconds(20));
  EXPECT_EQ(committed, 10);
  EXPECT_EQ(fx.peers[0]->stats().txs_committed, 10u);
}

TEST(FabricPipeline, RaftOrdererSurvivesLeaderCrash) {
  FabricNet fx;
  df::RaftOrderer orderer(fx.net, 3, df::OrdererConfig{});
  for (auto& p : fx.peers) orderer.register_peer(p->addr());
  fx.client->set_orderer(&orderer);
  fx.sim.run_until(ds::seconds(2));
  // Crash the current Raft leader mid-stream.
  int committed = 0;
  for (int i = 0; i < 5; ++i) {
    fx.client->invoke("kv", {"put", "pre" + std::to_string(i), "v"},
                      [&](bool ok, const std::string&, ds::SimDuration) {
                        if (ok) ++committed;
                      });
  }
  fx.sim.run_until(ds::seconds(5));
  for (auto* rn : orderer.raft_nodes()) {
    if (rn->is_leader()) {
      rn->crash();
      break;
    }
  }
  for (int i = 0; i < 5; ++i) {
    fx.client->invoke("kv", {"put", "post" + std::to_string(i), "v"},
                      [&](bool ok, const std::string&, ds::SimDuration) {
                        if (ok) ++committed;
                      });
  }
  fx.sim.run_until(ds::seconds(30));
  EXPECT_EQ(committed, 10);
}

TEST(FabricPipeline, PbftOrdererCommits) {
  FabricNet fx;
  df::PbftOrderer orderer(fx.net, /*f=*/1, df::OrdererConfig{});
  for (auto& p : fx.peers) orderer.register_peer(p->addr());
  fx.client->set_orderer(&orderer);
  int committed = 0;
  for (int i = 0; i < 10; ++i) {
    fx.client->invoke("kv", {"put", "k" + std::to_string(i), "v"},
                      [&](bool ok, const std::string&, ds::SimDuration) {
                        if (ok) ++committed;
                      });
  }
  fx.sim.run_until(ds::seconds(30));
  EXPECT_EQ(committed, 10);
}

TEST(FabricPipeline, StateConsistentAcrossPeers) {
  FabricNet fx;
  df::SoloOrderer orderer(fx.net, fx.net.new_node_id(), df::OrdererConfig{});
  for (auto& p : fx.peers) orderer.register_peer(p->addr());
  fx.client->set_orderer(&orderer);
  for (int i = 0; i < 20; ++i) {
    fx.client->invoke("kv", {"put", "key" + std::to_string(i), "v"},
                      [](bool, const std::string&, ds::SimDuration) {});
  }
  fx.sim.run_until(ds::seconds(30));
  for (auto& p : fx.peers) {
    EXPECT_EQ(p->state().size(), fx.peers[0]->state().size());
    EXPECT_EQ(p->stats().txs_committed, fx.peers[0]->stats().txs_committed);
  }
  EXPECT_EQ(fx.peers[0]->stats().txs_committed, 20u);
}

// --- Consortium wrapper -------------------------------------------------------

TEST(Consortium, OneCallChannelWorksEndToEnd) {
  ds::Simulator sim(55);
  dn::Network net(sim, std::make_unique<dn::ConstantLatency>(ds::millis(3)));
  df::ConsortiumConfig cfg;
  cfg.orgs = {"alpha", "beta", "gamma"};
  cfg.required_endorsements = 2;
  cfg.orderer = df::OrdererType::Raft;
  df::Consortium consortium(net, cfg);
  consortium.install(std::make_shared<df::AssetTransferContract>());
  sim.run_until(ds::seconds(2));  // raft election
  auto [ok, payload] =
      consortium.invoke_sync("asset", {"create", "x1", "alpha", "5"});
  EXPECT_TRUE(ok) << payload;
  auto [ok2, read] = consortium.invoke_sync("asset", {"read", "x1"});
  EXPECT_TRUE(ok2);
  EXPECT_EQ(read, "alpha,5");
  EXPECT_EQ(consortium.committed(), 2u);
  EXPECT_EQ(consortium.peer("beta").stats().txs_committed, 2u);
  EXPECT_THROW(consortium.peer("nobody"), std::out_of_range);
}

TEST(Consortium, PbftOrdererVariant) {
  ds::Simulator sim(56);
  dn::Network net(sim, std::make_unique<dn::ConstantLatency>(ds::millis(3)));
  df::ConsortiumConfig cfg;
  cfg.orgs = {"a", "b"};
  cfg.required_endorsements = 2;
  cfg.orderer = df::OrdererType::Pbft;
  cfg.orderer_nodes = 1;  // f = 1 -> 4 replicas
  df::Consortium consortium(net, cfg);
  consortium.install(std::make_shared<df::KvContract>());
  auto [ok, payload] = consortium.invoke_sync("kv", {"put", "k", "v"});
  EXPECT_TRUE(ok) << payload;
}
