// Gossip, Gnutella flooding, superpeer and one-hop overlay tests.
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "net/network.hpp"
#include "net/topology.hpp"
#include "overlay/flood.hpp"
#include "overlay/gossip.hpp"
#include "overlay/onehop.hpp"
#include "overlay/superpeer.hpp"

namespace dn = decentnet::net;
namespace ds = decentnet::sim;
namespace ov = decentnet::overlay;

// --- Gossip -----------------------------------------------------------------

namespace {

struct GossipNet {
  ds::Simulator sim{31337};
  dn::Network net{sim, std::make_unique<dn::ConstantLatency>(ds::millis(15))};
  std::vector<std::unique_ptr<ov::GossipNode>> nodes;

  GossipNet(std::size_t n, ov::GossipConfig cfg) {
    std::vector<dn::NodeId> addrs;
    for (std::size_t i = 0; i < n; ++i) addrs.push_back(net.new_node_id());
    ds::Rng rng(1);
    for (std::size_t i = 0; i < n; ++i) {
      nodes.push_back(std::make_unique<ov::GossipNode>(net, addrs[i], cfg));
      // Bootstrap view: a few random peers.
      std::vector<dn::NodeId> view;
      for (std::size_t k = 0; k < cfg.view_size / 2; ++k) {
        view.push_back(addrs[rng.uniform_int(n)]);
      }
      nodes.back()->join(view);
    }
  }
};

}  // namespace

TEST(Gossip, BroadcastReachesAlmostEveryone) {
  ov::GossipConfig cfg;
  cfg.fanout = 4;
  GossipNet g(100, cfg);
  // Let shuffles mix the views first.
  g.sim.run_until(ds::minutes(2));
  g.nodes[0]->broadcast(/*rumor=*/1, /*payload_bytes=*/256);
  g.sim.run_until(g.sim.now() + ds::minutes(1));
  std::size_t reached = 0;
  for (const auto& n : g.nodes) {
    if (n->has_seen(1)) ++reached;
  }
  EXPECT_GE(reached, 95u);
}

TEST(Gossip, LowFanoutReachesFewer) {
  ov::GossipConfig low;
  low.fanout = 1;
  // Shuffle-piggybacked anti-entropy would resurrect a died-out rumor; this
  // test isolates the push path, where fanout is the epidemic's only knob.
  low.anti_entropy_rumors = 0;
  GossipNet g(100, low);
  g.sim.run_until(ds::minutes(2));
  g.nodes[0]->broadcast(1, 256);
  g.sim.run_until(g.sim.now() + ds::minutes(1));
  std::size_t reached = 0;
  for (const auto& n : g.nodes) {
    if (n->has_seen(1)) ++reached;
  }
  // Fanout 1 infect-and-die dies out quickly.
  EXPECT_LT(reached, 60u);
}

TEST(Gossip, ViewsStayBoundedAndFresh) {
  ov::GossipConfig cfg;
  GossipNet g(50, cfg);
  g.sim.run_until(ds::minutes(5));
  for (const auto& n : g.nodes) {
    EXPECT_LE(n->view().size(), cfg.view_size);
    EXPECT_GE(n->view().size(), 2u);
  }
}

TEST(Gossip, DeliverHookFiresOncePerRumor) {
  ov::GossipConfig cfg;
  GossipNet g(30, cfg);
  g.sim.run_until(ds::minutes(1));
  int delivered = 0;
  g.nodes[5]->set_deliver_hook(
      [&](ov::RumorId, std::size_t) { ++delivered; });
  g.nodes[0]->broadcast(7, 64);
  g.nodes[1]->broadcast(7, 64);  // same rumor from elsewhere
  g.sim.run_until(g.sim.now() + ds::minutes(1));
  EXPECT_LE(delivered, 1);
}

// --- Gnutella flooding ------------------------------------------------------

namespace {

struct FloodNet {
  ds::Simulator sim{99};
  dn::Network net{sim, std::make_unique<dn::ConstantLatency>(ds::millis(20))};
  std::vector<std::unique_ptr<ov::GnutellaNode>> nodes;

  FloodNet(std::size_t n, std::size_t degree, ov::FloodConfig cfg = {}) {
    std::vector<dn::NodeId> addrs;
    for (std::size_t i = 0; i < n; ++i) addrs.push_back(net.new_node_id());
    ds::Rng rng(2);
    const auto adj = dn::random_graph(n, degree, rng);
    for (std::size_t i = 0; i < n; ++i) {
      nodes.push_back(
          std::make_unique<ov::GnutellaNode>(net, addrs[i], cfg));
      std::vector<dn::NodeId> nbrs;
      for (std::size_t j : adj[i]) nbrs.push_back(addrs[j]);
      nodes.back()->join(std::move(nbrs));
    }
  }
};

}  // namespace

TEST(Gnutella, FindsContentWithinTtl) {
  FloodNet g(60, 4);
  g.nodes[42]->add_content(1234);
  bool done = false;
  ov::QueryOutcome out;
  g.nodes[0]->query(1234, [&](ov::QueryOutcome o) {
    done = true;
    out = o;
  });
  g.sim.run_until(ds::minutes(1));
  ASSERT_TRUE(done);
  EXPECT_TRUE(out.found);
  EXPECT_EQ(out.provider, g.nodes[42]->addr());
  EXPECT_GT(out.hops, 0u);
}

TEST(Gnutella, MissesContentBeyondTtl) {
  ov::FloodConfig cfg;
  cfg.default_ttl = 1;  // only direct neighbors reachable
  FloodNet g(100, 3, cfg);
  g.nodes[99]->add_content(555);  // far away with high probability
  bool done = false;
  ov::QueryOutcome out;
  g.nodes[0]->query(555, [&](ov::QueryOutcome o) {
    done = true;
    out = o;
  });
  g.sim.run_until(ds::minutes(2));
  ASSERT_TRUE(done);
  // Node 99 is almost surely not adjacent to node 0 in a 3-regular graph.
  EXPECT_FALSE(out.found);
}

TEST(Gnutella, LocalContentAnswersInstantly) {
  FloodNet g(10, 3);
  g.nodes[3]->add_content(77);
  bool done = false;
  g.nodes[3]->query(77, [&](ov::QueryOutcome o) {
    done = true;
    EXPECT_TRUE(o.found);
    EXPECT_EQ(o.provider, g.nodes[3]->addr());
  });
  EXPECT_TRUE(done);  // synchronous local hit
}

TEST(Gnutella, QueryCostScalesWithTtl) {
  FloodNet shallow(80, 4);
  shallow.nodes[0]->query(424242, [](ov::QueryOutcome) {});
  shallow.sim.run_until(ds::minutes(1));
  const auto few = shallow.net.messages_sent();

  ov::FloodConfig deep_cfg;
  deep_cfg.default_ttl = 2;
  FloodNet deep(80, 4, deep_cfg);
  deep.nodes[0]->query(424242, [](ov::QueryOutcome) {});
  deep.sim.run_until(ds::minutes(1));
  EXPECT_GT(few, deep.net.messages_sent());
}

// --- Superpeer --------------------------------------------------------------

TEST(Superpeer, LeafQueriesResolveThroughIndex) {
  ds::Simulator sim(4);
  dn::Network net(sim, std::make_unique<dn::ConstantLatency>(ds::millis(10)));
  ov::SuperpeerConfig cfg;
  // Two superpeers, fully meshed.
  auto sp1 = std::make_unique<ov::SuperpeerNode>(net, net.new_node_id(), cfg);
  auto sp2 = std::make_unique<ov::SuperpeerNode>(net, net.new_node_id(), cfg);
  sp1->join({sp2->addr()});
  sp2->join({sp1->addr()});
  // Leaves on different superpeers.
  ov::LeafNode leaf_a(net, net.new_node_id(), cfg);
  ov::LeafNode leaf_b(net, net.new_node_id(), cfg);
  leaf_a.join(sp1->addr(), {111});
  leaf_b.join(sp2->addr(), {222});
  sim.run_until(ds::seconds(5));
  EXPECT_EQ(sp1->indexed_items(), 1u);

  // Local superpeer has the answer indexed remotely: cross-SP flood.
  bool done = false;
  leaf_a.query(222, [&](ov::QueryOutcome o) {
    done = true;
    EXPECT_TRUE(o.found);
    EXPECT_EQ(o.provider, leaf_b.addr());
  });
  sim.run_until(sim.now() + ds::minutes(1));
  EXPECT_TRUE(done);
}

TEST(Superpeer, UnregisterRemovesContent) {
  ds::Simulator sim(5);
  dn::Network net(sim, std::make_unique<dn::ConstantLatency>(ds::millis(10)));
  ov::SuperpeerConfig cfg;
  ov::SuperpeerNode sp(net, net.new_node_id(), cfg);
  sp.join({});
  auto leaf = std::make_unique<ov::LeafNode>(net, net.new_node_id(), cfg);
  leaf->join(sp.addr(), {42});
  sim.run_until(ds::seconds(2));
  EXPECT_EQ(sp.indexed_items(), 1u);
  leaf->leave();
  sim.run_until(sim.now() + ds::seconds(2));
  EXPECT_EQ(sp.indexed_items(), 0u);
}

// --- One-hop ----------------------------------------------------------------

namespace {

struct OneHopNet {
  ds::Simulator sim{6};
  dn::Network net{sim, std::make_unique<dn::ConstantLatency>(ds::millis(10))};
  std::vector<std::unique_ptr<ov::OneHopNode>> nodes;

  explicit OneHopNet(std::size_t n, ov::OneHopConfig cfg = {}) {
    for (std::size_t i = 0; i < n; ++i) {
      nodes.push_back(
          std::make_unique<ov::OneHopNode>(net, net.new_node_id(), cfg));
    }
    nodes[0]->create();
    for (std::size_t i = 1; i < n; ++i) {
      nodes[i]->join(nodes[0]->self());
      sim.run_until(sim.now() + ds::seconds(1));
    }
    sim.run_until(sim.now() + ds::minutes(3));
  }
};

}  // namespace

TEST(OneHop, MembershipConvergesToFullView) {
  OneHopNet oh(30);
  for (const auto& n : oh.nodes) {
    EXPECT_EQ(n->membership_size(), 30u)
        << "node is missing members after gossip";
  }
}

TEST(OneHop, LookupIsSingleAttemptWhenFresh) {
  OneHopNet oh(25);
  ds::Rng rng(3);
  for (int q = 0; q < 10; ++q) {
    bool done = false;
    oh.nodes[rng.uniform_int(oh.nodes.size())]->lookup(
        rng.next(), [&](ov::OneHopLookupResult r) {
          done = true;
          EXPECT_TRUE(r.ok);
          EXPECT_EQ(r.attempts, 1u);
        });
    oh.sim.run_until(oh.sim.now() + ds::seconds(30));
    EXPECT_TRUE(done);
  }
}

TEST(OneHop, GracefulLeaveSpreadsDeparture) {
  OneHopNet oh(20);
  oh.nodes[5]->leave();
  oh.sim.run_until(oh.sim.now() + ds::minutes(3));
  std::size_t knowing = 0;
  for (const auto& n : oh.nodes) {
    if (!n->online()) continue;
    if (!n->knows(oh.nodes[5]->addr())) ++knowing;
  }
  EXPECT_GE(knowing, 15u) << "departure should spread to most members";
}

TEST(OneHop, CrashDetectedOnLookupAndRetried) {
  OneHopNet oh(15);
  // Crash a node silently; a lookup routed to it must retry and succeed.
  oh.nodes[7]->crash();
  ds::Rng rng(8);
  int ok_count = 0;
  for (int q = 0; q < 20; ++q) {
    bool done = false;
    ov::OneHopNode* src = oh.nodes[q % 15].get();
    if (!src->online()) src = oh.nodes[0].get();
    src->lookup(rng.next(), [&](ov::OneHopLookupResult r) {
      done = true;
      if (r.ok) ++ok_count;
    });
    oh.sim.run_until(oh.sim.now() + ds::seconds(30));
    EXPECT_TRUE(done);
  }
  EXPECT_GE(ok_count, 18);
}
