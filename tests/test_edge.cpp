// Edge federation tests: placement policies, latency, control locality,
// queueing at constrained tiers, and usage recording for cross-domain trust.
#include <gtest/gtest.h>

#include <memory>

#include "edge/federation.hpp"
#include "net/network.hpp"
#include "sim/metrics.hpp"

namespace de = decentnet::edge;
namespace dn = decentnet::net;
namespace ds = decentnet::sim;

namespace {

struct EdgeFixture {
  ds::Simulator sim{31};
  dn::GeoLatency* geo = nullptr;
  std::unique_ptr<dn::Network> net;
  std::unique_ptr<de::Federation> fed;
  ds::Rng rng{9};

  explicit EdgeFixture(de::Federation::Topology topo = {},
                       de::EdgeConfig cfg = {}) {
    auto geo_model = std::make_unique<dn::GeoLatency>(0.05);
    geo = geo_model.get();
    net = std::make_unique<dn::Network>(sim, std::move(geo_model));
    fed = std::make_unique<de::Federation>(*net, *geo, topo, cfg);
  }

  /// Run `count` requests under `policy`; returns (ok, latency histogram,
  /// in-region fraction).
  struct Outcome {
    ds::Histogram latency;
    std::size_t ok = 0;
    std::size_t in_region = 0;
    std::size_t total = 0;
  };

  Outcome drive(de::PlacementPolicy policy, std::size_t count) {
    auto outcome = std::make_shared<Outcome>();
    for (std::size_t i = 0; i < count; ++i) {
      sim.schedule(ds::millis(50) * static_cast<ds::SimDuration>(i), [this, policy, outcome] {
        fed->issue_request(policy, rng,
                           [outcome](bool ok, ds::SimDuration latency,
                                     bool in_region, bool) {
                             ++outcome->total;
                             if (ok) {
                               ++outcome->ok;
                               outcome->latency.record(ds::to_millis(latency));
                             }
                             if (in_region) ++outcome->in_region;
                           });
      });
    }
    sim.run_until(sim.now() + ds::minutes(5));
    return *outcome;
  }
};

}  // namespace

TEST(Edge, CloudOnlyServesEverythingRemotely) {
  EdgeFixture fx;
  const auto out = fx.drive(de::PlacementPolicy::CloudOnly, 100);
  EXPECT_EQ(out.ok, 100u);
  // Only users in the cloud's own region are "in region" (1 of 5 regions).
  EXPECT_LT(static_cast<double>(out.in_region) / 100.0, 0.4);
}

TEST(Edge, EdgeFirstKeepsRequestsLocal) {
  EdgeFixture fx;
  const auto out = fx.drive(de::PlacementPolicy::EdgeFirst, 100);
  EXPECT_EQ(out.ok, 100u);
  EXPECT_GT(static_cast<double>(out.in_region) / 100.0, 0.8);
}

TEST(Edge, EdgeFirstCutsTailLatency) {
  EdgeFixture cloud_fx;
  const auto cloud = cloud_fx.drive(de::PlacementPolicy::CloudOnly, 200);
  EdgeFixture edge_fx;
  const auto edge = edge_fx.drive(de::PlacementPolicy::EdgeFirst, 200);
  EXPECT_LT(edge.latency.percentile(50), cloud.latency.percentile(50))
      << "median latency should drop with in-region serving";
  EXPECT_LT(edge.latency.mean(), cloud.latency.mean());
}

TEST(Edge, UsageRecorderFiresOnCrossDomainService) {
  EdgeFixture fx;
  std::size_t recorded = 0;
  fx.fed->set_usage_recorder(
      [&](const std::string& provider, const std::string& user) {
        EXPECT_NE(provider, user);
        ++recorded;
      });
  fx.drive(de::PlacementPolicy::EdgeFirst, 100);
  // Users' home domain is org-R-0; half of in-region hits go to org-R-1.
  EXPECT_GT(recorded, 10u);
}

TEST(Edge, QueueingDelaysShowUnderLoad) {
  // A single-slot personal device serving many simultaneous requests must
  // exhibit queueing growth.
  ds::Simulator sim(3);
  auto geo = std::make_unique<dn::GeoLatency>(0.0);
  dn::GeoLatency* geo_ptr = geo.get();
  dn::Network net(sim, std::move(geo));
  de::EdgeConfig cfg;
  cfg.personal.service_time = ds::millis(50);
  cfg.personal.slots = 1;
  de::EdgeNode device(net, net.new_node_id(), de::DeviceTier::Personal,
                      "home", 0, cfg);
  geo_ptr->assign(device.addr(), 0);
  de::UserAgent user(net, net.new_node_id(), "home", 0, cfg);
  geo_ptr->assign(user.addr(), 0);
  std::vector<double> latencies;
  for (int i = 0; i < 10; ++i) {
    user.request(device, [&](bool ok, ds::SimDuration latency) {
      EXPECT_TRUE(ok);
      latencies.push_back(ds::to_millis(latency));
    });
  }
  sim.run_until(ds::minutes(1));
  ASSERT_EQ(latencies.size(), 10u);
  // The 10th request waited behind nine 50 ms services.
  EXPECT_GT(latencies.back(), latencies.front() + 400.0);
  EXPECT_EQ(device.served(), 10u);
}

TEST(Edge, CloudAbsorbsTheSameBurst) {
  ds::Simulator sim(4);
  auto geo = std::make_unique<dn::GeoLatency>(0.0);
  dn::GeoLatency* geo_ptr = geo.get();
  dn::Network net(sim, std::move(geo));
  de::EdgeConfig cfg;
  de::EdgeNode dc(net, net.new_node_id(), de::DeviceTier::Cloud, "hyper", 0,
                  cfg);
  geo_ptr->assign(dc.addr(), 0);
  de::UserAgent user(net, net.new_node_id(), "home", 0, cfg);
  geo_ptr->assign(user.addr(), 0);
  std::vector<double> latencies;
  for (int i = 0; i < 10; ++i) {
    user.request(dc, [&](bool ok, ds::SimDuration latency) {
      if (ok) latencies.push_back(ds::to_millis(latency));
    });
  }
  sim.run_until(ds::minutes(1));
  ASSERT_EQ(latencies.size(), 10u);
  // 64 parallel slots: no queueing for a burst of 10.
  EXPECT_LT(latencies.back(), latencies.front() + 5.0);
}
