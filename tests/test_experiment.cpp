// ExperimentHarness tests: CLI parsing, Value rendering, the JSON artifact
// shape, timing-cell exclusion, and seed derivation.
#include <gtest/gtest.h>

#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

#include "sim/experiment.hpp"

namespace ds = decentnet::sim;

namespace {

ds::ExperimentOptions parse(std::vector<const char*> argv_tail,
                            bool* ok = nullptr,
                            std::string* error_out = nullptr) {
  std::vector<const char*> argv{"bench"};
  argv.insert(argv.end(), argv_tail.begin(), argv_tail.end());
  ds::ExperimentOptions opts;
  std::string error;
  const bool parsed = ds::ExperimentHarness::parse_cli(
      static_cast<int>(argv.size()),
      const_cast<char* const*>(argv.data()), opts, error);
  if (ok) *ok = parsed;
  if (error_out) *error_out = error;
  return opts;
}

}  // namespace

TEST(ExperimentCli, DefaultsSurviveEmptyArgv) {
  bool ok = false;
  ds::ExperimentOptions opts = parse({}, &ok);
  EXPECT_TRUE(ok);
  EXPECT_EQ(opts.seed, 1u);
  EXPECT_TRUE(opts.emit_json);
  EXPECT_FALSE(opts.quiet);
  EXPECT_FALSE(opts.help);
  EXPECT_TRUE(opts.json_path.empty());
  EXPECT_TRUE(opts.trace_path.empty());
}

TEST(ExperimentCli, ParsesEveryFlag) {
  bool ok = false;
  ds::ExperimentOptions opts =
      parse({"--seed", "777", "--json", "out.json", "--trace", "t.jsonl",
             "--quiet"},
            &ok);
  EXPECT_TRUE(ok);
  EXPECT_EQ(opts.seed, 777u);
  EXPECT_EQ(opts.json_path, "out.json");
  EXPECT_EQ(opts.trace_path, "t.jsonl");
  EXPECT_TRUE(opts.quiet);
  EXPECT_TRUE(opts.emit_json);
}

TEST(ExperimentCli, NoJsonAndHelp) {
  bool ok = false;
  ds::ExperimentOptions opts = parse({"--no-json", "--help"}, &ok);
  EXPECT_TRUE(ok);
  EXPECT_FALSE(opts.emit_json);
  EXPECT_TRUE(opts.help);
}

TEST(ExperimentCli, RejectsUnknownFlagAndMissingValue) {
  bool ok = true;
  std::string error;
  parse({"--frobnicate"}, &ok, &error);
  EXPECT_FALSE(ok);
  EXPECT_FALSE(error.empty());
  parse({"--seed"}, &ok, &error);
  EXPECT_FALSE(ok);
  parse({"--seed", "not-a-number"}, &ok, &error);
  EXPECT_FALSE(ok);
}

TEST(ExperimentValue, JsonRendering) {
  EXPECT_EQ(ds::Value().to_json(), "null");
  EXPECT_EQ(ds::Value(true).to_json(), "true");
  EXPECT_EQ(ds::Value(false).to_json(), "false");
  EXPECT_EQ(ds::Value(std::int64_t{-42}).to_json(), "-42");
  EXPECT_EQ(ds::Value(std::uint64_t{42}).to_json(), "42");
  EXPECT_EQ(ds::Value("a \"quoted\" cell").to_json(),
            "\"a \\\"quoted\\\" cell\"");
  // Doubles serialize shortest-round-trip, independent of table precision.
  EXPECT_EQ(ds::Value(0.5, 0).to_json(), ds::Value(0.5, 6).to_json());
}

TEST(ExperimentHarness, JsonArtifactShapeAndDeterminism) {
  const auto build = [] {
    ds::ExperimentOptions opts;
    opts.seed = 5;
    opts.quiet = true;
    opts.emit_json = false;  // keep the filesystem out of the test
    ds::ExperimentHarness ex("unit_shape", opts);
    ex.describe("title", "claim", "method");
    ex.set_param("sweep", ds::Value(std::uint64_t{3}));
    ex.metrics().counter("net/bytes_sent").add(123);
    ex.add_row({{"label", "a"}, {"v", ds::Value(1.25, 2)}});
    ex.add_row({{"label", "b"},
                {"v", ds::Value(2.5, 2)},
                {"extra", ds::Value(std::int64_t{7})}});
    return ex.to_json();
  };
  const std::string json = build();
  EXPECT_EQ(json, build());  // byte-identical across runs
  EXPECT_NE(json.find("\"id\": \"unit_shape\""), std::string::npos);
  EXPECT_NE(json.find("\"seed\": 5"), std::string::npos);
  EXPECT_NE(json.find("\"claim\": \"claim\""), std::string::npos);
  EXPECT_NE(json.find("\"net/bytes_sent\""), std::string::npos);
  EXPECT_NE(json.find("\"label\""), std::string::npos);
  // Column union keeps first-seen order: label, v, extra.
  const auto label_pos = json.find("\"label\"");
  const auto extra_pos = json.find("\"extra\"");
  ASSERT_NE(extra_pos, std::string::npos);
  EXPECT_LT(label_pos, extra_pos);
  // Rows serialize only the cells they set; "extra" appears in the column
  // union and in row "b" alone.
  const auto row_a = json.find("\"label\": \"a\"");
  const auto row_b = json.find("\"label\": \"b\"");
  ASSERT_NE(row_a, std::string::npos);
  ASSERT_NE(row_b, std::string::npos);
  EXPECT_EQ(json.find("\"extra\"", row_a), json.find("\"extra\"", row_b));
}

TEST(ExperimentHarness, TimingCellsExcludedFromJson) {
  ds::ExperimentOptions opts;
  opts.quiet = true;
  opts.emit_json = false;
  ds::ExperimentHarness ex("unit_timing", opts);
  ex.add_row({{"n", ds::Value(std::uint64_t{10})},
              {"wall_ms", ds::Value::timing(123.456, 1)}});
  const std::string json = ex.to_json();
  EXPECT_NE(json.find("\"n\""), std::string::npos);
  EXPECT_EQ(json.find("wall_ms"), std::string::npos);
  EXPECT_EQ(json.find("123.4"), std::string::npos);
}

TEST(ExperimentHarness, SeedForIsDeterministicAndSpreads) {
  ds::ExperimentOptions opts;
  opts.seed = 11;
  opts.quiet = true;
  opts.emit_json = false;
  ds::ExperimentHarness ex("unit_seeds", opts);
  EXPECT_EQ(ex.seed(), 11u);
  EXPECT_EQ(ex.seed_for(0), ex.seed_for(0));
  EXPECT_NE(ex.seed_for(0), ex.seed_for(1));
  EXPECT_NE(ex.seed_for(1), ex.seed_for(2));

  ds::ExperimentOptions opts2 = opts;
  opts2.seed = 12;
  ds::ExperimentHarness ex2("unit_seeds", opts2);
  EXPECT_NE(ex.seed_for(0), ex2.seed_for(0));
}

TEST(ExperimentHarness, TraceSinkInstalledOnlyWhenRequested) {
  ds::ExperimentOptions opts;
  opts.quiet = true;
  opts.emit_json = false;
  {
    ds::ExperimentHarness ex("unit_notrace", opts);
    EXPECT_EQ(ex.trace(), nullptr);
  }
  opts.trace_path = "unit_trace_tmp.jsonl";
  {
    ds::ExperimentHarness ex("unit_trace", opts);
    EXPECT_NE(ex.trace(), nullptr);
    ex.simulator().post(ds::millis(1), [] {});
    ex.simulator().run_all();
  }
  std::remove("unit_trace_tmp.jsonl");
}

TEST(ExperimentHarness, FinishIsIdempotentAndReturnsZero) {
  ds::ExperimentOptions opts;
  opts.quiet = true;
  opts.emit_json = false;
  ds::ExperimentHarness ex("unit_finish", opts);
  ex.add_row({{"x", ds::Value(std::uint64_t{1})}});
  EXPECT_EQ(ex.finish(), 0);
  EXPECT_EQ(ex.finish(), 0);
  EXPECT_EQ(ex.row_count(), 1u);
}
