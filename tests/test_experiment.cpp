// ExperimentHarness tests: CLI parsing, Value rendering, the JSON artifact
// shape, timing-cell exclusion, seed derivation, and the run_points()
// parallel replication contract (deterministic merge order, metric merging,
// --jobs-independent artifacts, exception propagation).
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "sim/experiment.hpp"
#include "sim/simulator.hpp"

namespace ds = decentnet::sim;

namespace {

ds::ExperimentOptions parse(std::vector<const char*> argv_tail,
                            bool* ok = nullptr,
                            std::string* error_out = nullptr) {
  std::vector<const char*> argv{"bench"};
  argv.insert(argv.end(), argv_tail.begin(), argv_tail.end());
  ds::ExperimentOptions opts;
  std::string error;
  const bool parsed = ds::ExperimentHarness::parse_cli(
      static_cast<int>(argv.size()),
      const_cast<char* const*>(argv.data()), opts, error);
  if (ok) *ok = parsed;
  if (error_out) *error_out = error;
  return opts;
}

}  // namespace

TEST(ExperimentCli, DefaultsSurviveEmptyArgv) {
  bool ok = false;
  ds::ExperimentOptions opts = parse({}, &ok);
  EXPECT_TRUE(ok);
  EXPECT_EQ(opts.seed, 1u);
  EXPECT_TRUE(opts.emit_json);
  EXPECT_FALSE(opts.quiet);
  EXPECT_FALSE(opts.help);
  EXPECT_TRUE(opts.json_path.empty());
  EXPECT_TRUE(opts.trace_path.empty());
}

TEST(ExperimentCli, ParsesEveryFlag) {
  bool ok = false;
  ds::ExperimentOptions opts =
      parse({"--seed", "777", "--json", "out.json", "--trace", "t.jsonl",
             "--quiet"},
            &ok);
  EXPECT_TRUE(ok);
  EXPECT_EQ(opts.seed, 777u);
  EXPECT_EQ(opts.json_path, "out.json");
  EXPECT_EQ(opts.trace_path, "t.jsonl");
  EXPECT_TRUE(opts.quiet);
  EXPECT_TRUE(opts.emit_json);
}

TEST(ExperimentCli, NoJsonAndHelp) {
  bool ok = false;
  ds::ExperimentOptions opts = parse({"--no-json", "--help"}, &ok);
  EXPECT_TRUE(ok);
  EXPECT_FALSE(opts.emit_json);
  EXPECT_TRUE(opts.help);
}

TEST(ExperimentCli, RejectsUnknownFlagAndMissingValue) {
  bool ok = true;
  std::string error;
  parse({"--frobnicate"}, &ok, &error);
  EXPECT_FALSE(ok);
  EXPECT_FALSE(error.empty());
  parse({"--seed"}, &ok, &error);
  EXPECT_FALSE(ok);
  parse({"--seed", "not-a-number"}, &ok, &error);
  EXPECT_FALSE(ok);
}

TEST(ExperimentValue, JsonRendering) {
  EXPECT_EQ(ds::Value().to_json(), "null");
  EXPECT_EQ(ds::Value(true).to_json(), "true");
  EXPECT_EQ(ds::Value(false).to_json(), "false");
  EXPECT_EQ(ds::Value(std::int64_t{-42}).to_json(), "-42");
  EXPECT_EQ(ds::Value(std::uint64_t{42}).to_json(), "42");
  EXPECT_EQ(ds::Value("a \"quoted\" cell").to_json(),
            "\"a \\\"quoted\\\" cell\"");
  // Doubles serialize shortest-round-trip, independent of table precision.
  EXPECT_EQ(ds::Value(0.5, 0).to_json(), ds::Value(0.5, 6).to_json());
}

TEST(ExperimentHarness, JsonArtifactShapeAndDeterminism) {
  const auto build = [] {
    ds::ExperimentOptions opts;
    opts.seed = 5;
    opts.quiet = true;
    opts.emit_json = false;  // keep the filesystem out of the test
    ds::ExperimentHarness ex("unit_shape", opts);
    ex.describe("title", "claim", "method");
    ex.set_param("sweep", ds::Value(std::uint64_t{3}));
    ex.metrics().counter("net/bytes_sent").add(123);
    ex.add_row({{"label", "a"}, {"v", ds::Value(1.25, 2)}});
    ex.add_row({{"label", "b"},
                {"v", ds::Value(2.5, 2)},
                {"extra", ds::Value(std::int64_t{7})}});
    return ex.to_json();
  };
  const std::string json = build();
  EXPECT_EQ(json, build());  // byte-identical across runs
  EXPECT_NE(json.find("\"id\": \"unit_shape\""), std::string::npos);
  EXPECT_NE(json.find("\"seed\": 5"), std::string::npos);
  EXPECT_NE(json.find("\"claim\": \"claim\""), std::string::npos);
  EXPECT_NE(json.find("\"net/bytes_sent\""), std::string::npos);
  EXPECT_NE(json.find("\"label\""), std::string::npos);
  // Column union keeps first-seen order: label, v, extra.
  const auto label_pos = json.find("\"label\"");
  const auto extra_pos = json.find("\"extra\"");
  ASSERT_NE(extra_pos, std::string::npos);
  EXPECT_LT(label_pos, extra_pos);
  // Rows serialize only the cells they set; "extra" appears in the column
  // union and in row "b" alone.
  const auto row_a = json.find("\"label\": \"a\"");
  const auto row_b = json.find("\"label\": \"b\"");
  ASSERT_NE(row_a, std::string::npos);
  ASSERT_NE(row_b, std::string::npos);
  EXPECT_EQ(json.find("\"extra\"", row_a), json.find("\"extra\"", row_b));
}

TEST(ExperimentHarness, TimingCellsExcludedFromJson) {
  ds::ExperimentOptions opts;
  opts.quiet = true;
  opts.emit_json = false;
  ds::ExperimentHarness ex("unit_timing", opts);
  ex.add_row({{"n", ds::Value(std::uint64_t{10})},
              {"wall_ms", ds::Value::timing(123.456, 1)}});
  const std::string json = ex.to_json();
  EXPECT_NE(json.find("\"n\""), std::string::npos);
  EXPECT_EQ(json.find("wall_ms"), std::string::npos);
  EXPECT_EQ(json.find("123.4"), std::string::npos);
}

TEST(ExperimentHarness, SeedForIsDeterministicAndSpreads) {
  ds::ExperimentOptions opts;
  opts.seed = 11;
  opts.quiet = true;
  opts.emit_json = false;
  ds::ExperimentHarness ex("unit_seeds", opts);
  EXPECT_EQ(ex.seed(), 11u);
  EXPECT_EQ(ex.seed_for(0), ex.seed_for(0));
  EXPECT_NE(ex.seed_for(0), ex.seed_for(1));
  EXPECT_NE(ex.seed_for(1), ex.seed_for(2));

  ds::ExperimentOptions opts2 = opts;
  opts2.seed = 12;
  ds::ExperimentHarness ex2("unit_seeds", opts2);
  EXPECT_NE(ex.seed_for(0), ex2.seed_for(0));
}

TEST(ExperimentHarness, TraceSinkInstalledOnlyWhenRequested) {
  ds::ExperimentOptions opts;
  opts.quiet = true;
  opts.emit_json = false;
  {
    ds::ExperimentHarness ex("unit_notrace", opts);
    EXPECT_EQ(ex.trace(), nullptr);
  }
  opts.trace_path = "unit_trace_tmp.jsonl";
  {
    ds::ExperimentHarness ex("unit_trace", opts);
    EXPECT_NE(ex.trace(), nullptr);
    ex.simulator().post(ds::millis(1), [] {});
    ex.simulator().run_all();
  }
  std::remove("unit_trace_tmp.jsonl");
}

TEST(ExperimentCli, ParsesJobs) {
  bool ok = false;
  ds::ExperimentOptions opts = parse({"--jobs", "4"}, &ok);
  EXPECT_TRUE(ok);
  EXPECT_EQ(opts.jobs, 4u);
  parse({"--jobs", "0"}, &ok);
  EXPECT_FALSE(ok);
  parse({"--jobs", "nope"}, &ok);
  EXPECT_FALSE(ok);
}

TEST(ExperimentCli, ShardFlagsRequireShardAwareBench) {
  // Default ExperimentOptions are not shard-aware: the CLI must reject a
  // decomposition it would silently ignore, with an actionable message.
  bool ok = false;
  std::string error;
  parse({"--sim-shards", "4"}, &ok, &error);
  EXPECT_FALSE(ok);
  EXPECT_NE(error.find("Shard-aware benches"), std::string::npos) << error;
  parse({"--sim-threads", "4"}, &ok, &error);
  EXPECT_FALSE(ok);
  // Value 1 is the status quo and always fine.
  parse({"--sim-shards", "1", "--sim-threads", "1"}, &ok);
  EXPECT_TRUE(ok);
  // A shard-aware bench accepts both, and bad values still error.
  std::vector<const char*> argv{"bench", "--sim-shards", "8",
                                "--sim-threads", "2"};
  ds::ExperimentOptions opts;
  opts.shard_aware = true;
  const bool parsed = ds::ExperimentHarness::parse_cli(
      static_cast<int>(argv.size()),
      const_cast<char* const*>(argv.data()), opts, error);
  EXPECT_TRUE(parsed);
  EXPECT_EQ(opts.sim_shards, 8u);
  EXPECT_EQ(opts.sim_threads, 2u);
  parse({"--sim-shards", "0"}, &ok, &error);
  EXPECT_FALSE(ok);
  EXPECT_NE(error.find("positive integer"), std::string::npos) << error;
}

TEST(ExperimentCli, ParsesRepeatableParams) {
  bool ok = false;
  ds::ExperimentOptions opts =
      parse({"--param", "max_n=1000", "--param", "mode=fast", "--param",
             "max_n=50"},
            &ok);
  ASSERT_TRUE(ok);
  ASSERT_EQ(opts.params.size(), 3u);
  EXPECT_EQ(opts.params[0].first, "max_n");
  EXPECT_EQ(opts.params[0].second, "1000");

  ds::ExperimentHarness ex("params_test", std::move(opts));
  ASSERT_NE(ex.cli_param("mode"), nullptr);
  EXPECT_EQ(*ex.cli_param("mode"), "fast");
  EXPECT_EQ(ex.cli_param("absent"), nullptr);
  // Last occurrence of a repeated key wins; fallback covers absent keys.
  EXPECT_EQ(ex.cli_param_u64("max_n", 7), 50u);
  EXPECT_EQ(ex.cli_param_u64("absent", 7), 7u);

  parse({"--param", "missing-equals"}, &ok);
  EXPECT_FALSE(ok);
  parse({"--param", "=value"}, &ok);
  EXPECT_FALSE(ok);
}

namespace {

// A sweep whose per-point work is deliberately scheduled to finish out of
// order under parallelism: point 0 sleeps longest, point N-1 not at all.
std::string run_point_sweep(std::size_t jobs) {
  ds::ExperimentOptions opts;
  opts.seed = 9;
  opts.jobs = jobs;
  opts.quiet = true;
  opts.emit_json = false;
  ds::ExperimentHarness ex("unit_points", opts);
  const std::size_t kPoints = 6;
  ex.run_points(kPoints, [&](ds::PointScope& scope) {
    if (jobs > 1) {
      std::this_thread::sleep_for(
          std::chrono::milliseconds(5 * (kPoints - scope.index())));
    }
    // Each point drives its own kernel, seeded off the root seed exactly as
    // the migrated benches do.
    ds::Simulator simu(scope.root_seed() + scope.index());
    std::uint64_t fired = 0;
    for (int i = 0; i < 10; ++i) {
      simu.post(ds::millis(i), [&fired] { ++fired; });
    }
    simu.run_all();
    scope.metrics().counter("pt/fired").add(fired);
    scope.add_row({{"point", std::uint64_t{scope.index()}},
                   {"fired", std::uint64_t{fired}},
                   {"seed", std::uint64_t{scope.seed()}}});
  });
  return ex.to_json();
}

}  // namespace

TEST(ExperimentRunPoints, RowsMergeInIndexOrderRegardlessOfJobs) {
  const std::string sequential = run_point_sweep(1);
  const std::string parallel = run_point_sweep(4);
  EXPECT_EQ(sequential, parallel);  // byte-identical artifact
  // Rows really are in index order.
  std::size_t pos = 0;
  for (std::uint64_t p = 0; p < 6; ++p) {
    const auto at =
        sequential.find("\"point\": " + std::to_string(p), pos);
    ASSERT_NE(at, std::string::npos) << "missing point " << p;
    pos = at;
  }
  // Point-private counters merged into the harness registry.
  EXPECT_NE(sequential.find("\"pt/fired\":60"), std::string::npos);
}

TEST(ExperimentRunPoints, PointSeedsAreDerivedFromRootSeed) {
  ds::ExperimentOptions opts;
  opts.seed = 21;
  opts.quiet = true;
  opts.emit_json = false;
  ds::ExperimentHarness ex("unit_point_seeds", opts);
  std::vector<std::uint64_t> seeds;
  ex.run_points(3, [&](ds::PointScope& scope) {
    EXPECT_EQ(scope.root_seed(), 21u);
    seeds.push_back(scope.seed());
  });
  ASSERT_EQ(seeds.size(), 3u);
  EXPECT_EQ(seeds[0], ex.seed_for(0));
  EXPECT_EQ(seeds[1], ex.seed_for(1));
  EXPECT_EQ(seeds[2], ex.seed_for(2));
  EXPECT_NE(seeds[0], seeds[1]);
}

TEST(ExperimentRunPoints, TracingForcesSequentialExecution) {
  ds::ExperimentOptions opts;
  opts.jobs = 8;
  opts.quiet = true;
  opts.emit_json = false;
  opts.trace_path = "unit_points_trace_tmp.jsonl";
  ds::ExperimentHarness ex("unit_points_trace", opts);
  EXPECT_EQ(ex.effective_jobs(), 1u);
  ex.run_points(2, [&](ds::PointScope& scope) {
    EXPECT_NE(scope.trace(), nullptr);
  });
  std::remove("unit_points_trace_tmp.jsonl");
}

TEST(ExperimentRunPoints, LowestIndexExceptionWinsAcrossWorkers) {
  ds::ExperimentOptions opts;
  opts.jobs = 4;
  opts.quiet = true;
  opts.emit_json = false;
  ds::ExperimentHarness ex("unit_points_throw", opts);
  std::atomic<int> started{0};
  try {
    ex.run_points(6, [&](ds::PointScope& scope) {
      started.fetch_add(1);
      if (scope.index() == 1) throw std::runtime_error("point-1");
      if (scope.index() == 3) {
        // Give point 1 time to throw first so both failures are in flight.
        std::this_thread::sleep_for(std::chrono::milliseconds(20));
        throw std::runtime_error("point-3");
      }
    });
    FAIL() << "expected run_points to rethrow";
  } catch (const std::runtime_error& e) {
    EXPECT_STREQ(e.what(), "point-1");
  }
  EXPECT_GE(started.load(), 2);
  EXPECT_EQ(ex.row_count(), 0u);  // failed sweep merges nothing
}

TEST(ExperimentHarness, FinishIsIdempotentAndReturnsZero) {
  ds::ExperimentOptions opts;
  opts.quiet = true;
  opts.emit_json = false;
  ds::ExperimentHarness ex("unit_finish", opts);
  ex.add_row({{"x", ds::Value(std::uint64_t{1})}});
  EXPECT_EQ(ex.finish(), 0);
  EXPECT_EQ(ex.finish(), 0);
  EXPECT_EQ(ex.row_count(), 1u);
}
