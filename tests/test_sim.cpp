// Kernel tests: event ordering, periodic timers, cancellation, handle
// generations, trace parity with the original kernel, RNG determinism and
// distribution sanity, histogram percentiles, and the decentralization
// statistics.
#include <gtest/gtest.h>

#include <array>
#include <cmath>
#include <functional>
#include <sstream>
#include <string>
#include <vector>

#include "sim/inline_fn.hpp"
#include "sim/metrics.hpp"
#include "sim/rng.hpp"
#include "sim/simulator.hpp"
#include "sim/stats.hpp"
#include "sim/table.hpp"
#include "sim/time.hpp"
#include "sim/trace.hpp"

namespace ds = decentnet::sim;

TEST(Simulator, ExecutesEventsInTimestampOrder) {
  ds::Simulator sim;
  std::vector<int> order;
  sim.schedule(ds::millis(30), [&] { order.push_back(3); });
  sim.schedule(ds::millis(10), [&] { order.push_back(1); });
  sim.schedule(ds::millis(20), [&] { order.push_back(2); });
  sim.run_all();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(sim.now(), ds::millis(30));
}

TEST(Simulator, SameTimestampIsFifo) {
  ds::Simulator sim;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    sim.schedule(ds::millis(5), [&order, i] { order.push_back(i); });
  }
  sim.run_all();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[static_cast<size_t>(i)], i);
}

TEST(Simulator, RunUntilStopsAtBoundary) {
  ds::Simulator sim;
  int fired = 0;
  sim.schedule(ds::seconds(1), [&] { ++fired; });
  sim.schedule(ds::seconds(2), [&] { ++fired; });
  sim.schedule(ds::seconds(3), [&] { ++fired; });
  sim.run_until(ds::seconds(2));
  EXPECT_EQ(fired, 2);
  EXPECT_EQ(sim.now(), ds::seconds(2));
  sim.run_until(ds::seconds(10));
  EXPECT_EQ(fired, 3);
  EXPECT_EQ(sim.now(), ds::seconds(10));  // clock advances to the horizon
}

TEST(Simulator, CancelPreventsExecution) {
  ds::Simulator sim;
  int fired = 0;
  auto handle = sim.schedule(ds::seconds(1), [&] { ++fired; });
  EXPECT_TRUE(handle.valid());
  handle.cancel();
  EXPECT_FALSE(handle.valid());
  sim.run_all();
  EXPECT_EQ(fired, 0);
}

TEST(Simulator, PeriodicFiresRepeatedlyUntilCancelled) {
  ds::Simulator sim;
  int fired = 0;
  auto handle = sim.schedule_periodic(ds::seconds(1), ds::seconds(1), [&] {
    ++fired;
  });
  sim.run_until(ds::seconds(5) + ds::millis(1));
  EXPECT_EQ(fired, 5);
  handle.cancel();
  sim.run_until(ds::seconds(20));
  EXPECT_EQ(fired, 5);
}

TEST(Simulator, EventsScheduledFromEventsRun) {
  ds::Simulator sim;
  int depth = 0;
  std::function<void()> recurse = [&] {
    if (++depth < 5) sim.schedule(ds::millis(1), recurse);
  };
  sim.schedule(0, recurse);
  sim.run_all();
  EXPECT_EQ(depth, 5);
}

TEST(Simulator, NegativeDelayClampsToNow) {
  ds::Simulator sim;
  sim.schedule(ds::seconds(1), [] {});
  sim.run_all();
  bool fired = false;
  sim.schedule(-ds::seconds(5), [&] { fired = true; });
  sim.run_all();
  EXPECT_TRUE(fired);
  EXPECT_EQ(sim.now(), ds::seconds(1));
}

TEST(Simulator, SameTimeFifoAcrossTenThousandEvents) {
  // The slab + indexed-heap kernel must keep the (when, seq) FIFO contract
  // exact at scale, including when same-time events are interleaved with
  // earlier and later ones.
  ds::Simulator sim;
  std::vector<int> order;
  order.reserve(10000);
  for (int i = 0; i < 10000; ++i) {
    sim.post(ds::millis(5), [&order, i] { order.push_back(i); });
  }
  sim.run_all();
  ASSERT_EQ(order.size(), 10000u);
  for (int i = 0; i < 10000; ++i) EXPECT_EQ(order[static_cast<size_t>(i)], i);
}

TEST(Simulator, CancelInsideCallbackPreventsLaterEvent) {
  ds::Simulator sim;
  int fired = 0;
  auto victim = sim.schedule(ds::millis(20), [&] { ++fired; });
  sim.schedule(ds::millis(10), [&] {
    EXPECT_TRUE(victim.valid());
    victim.cancel();
    EXPECT_FALSE(victim.valid());
  });
  sim.run_all();
  EXPECT_EQ(fired, 0);
}

TEST(Simulator, CancelOwnEventInsideItsCallbackIsNoOp) {
  // By the time the callback runs, the event's slot has been recycled: the
  // handle reads invalid and cancel() must not disturb whatever event may
  // have taken the slot.
  ds::Simulator sim;
  ds::EventHandle self;
  bool ran = false, later_ran = false;
  self = sim.schedule(ds::millis(1), [&] {
    ran = true;
    EXPECT_FALSE(self.valid());
    // Reuse the freed slot immediately, then try the stale cancel.
    sim.schedule(ds::millis(1), [&] { later_ran = true; });
    self.cancel();
  });
  sim.run_all();
  EXPECT_TRUE(ran);
  EXPECT_TRUE(later_ran);  // the stale handle must not have cancelled it
}

TEST(Simulator, PeriodicSelfCancelStopsTheSeries) {
  ds::Simulator sim;
  int fired = 0;
  ds::EventHandle series;
  series = sim.schedule_periodic(ds::seconds(1), ds::seconds(1), [&] {
    if (++fired == 3) series.cancel();
  });
  sim.run_until(ds::seconds(30));
  EXPECT_EQ(fired, 3);
  EXPECT_FALSE(series.valid());
  EXPECT_EQ(sim.pending_events(), 0u);
}

TEST(Simulator, ClearInvalidatesOutstandingHandles) {
  // Regression: with the shared_ptr kernel, clear() dropped the queue but
  // left alive-flags set, so stale handles kept reporting valid. Slot
  // generations bump on clear, so every outstanding handle reads invalid.
  ds::Simulator sim;
  int fired = 0;
  auto one_shot = sim.schedule(ds::seconds(1), [&] { ++fired; });
  auto periodic =
      sim.schedule_periodic(ds::seconds(1), ds::seconds(1), [&] { ++fired; });
  EXPECT_TRUE(one_shot.valid());
  EXPECT_TRUE(periodic.valid());
  sim.clear();
  EXPECT_EQ(sim.pending_events(), 0u);
  EXPECT_FALSE(one_shot.valid());
  EXPECT_FALSE(periodic.valid());
  // Stale cancels must not disturb new events that reuse the slots.
  bool survivor_ran = false;
  sim.schedule(ds::seconds(1), [&] { survivor_ran = true; });
  one_shot.cancel();
  periodic.cancel();
  sim.run_until(ds::seconds(5));
  EXPECT_TRUE(survivor_ran);
  EXPECT_EQ(fired, 0);
}

TEST(Simulator, HandleStaysInvalidWhenSlotIsReused) {
  ds::Simulator sim;
  int first = 0, second = 0;
  auto h = sim.schedule(ds::millis(1), [&] { ++first; });
  sim.run_all();
  EXPECT_EQ(first, 1);
  EXPECT_FALSE(h.valid());
  // The new event recycles the fired event's slot; the stale handle must
  // neither validate nor cancel it.
  auto h2 = sim.schedule(ds::millis(1), [&] { ++second; });
  EXPECT_FALSE(h.valid());
  h.cancel();
  EXPECT_TRUE(h2.valid());
  sim.run_all();
  EXPECT_EQ(second, 1);
}

TEST(InlineFn, InlineAndBoxedCapturesBothInvoke) {
  int hits = 0;
  ds::InlineFn<64> small([&hits] { ++hits; });
  small();
  EXPECT_EQ(hits, 1);
  // Oversized capture: takes the heap-fallback path, must still work and
  // destroy cleanly.
  std::array<char, 200> big{};
  big[0] = 7;
  ds::InlineFn<64> boxed([big, &hits] { hits += big[0]; });
  boxed();
  EXPECT_EQ(hits, 8);
  // Move transfers the callable; the source becomes empty.
  ds::InlineFn<64> moved(std::move(boxed));
  moved();
  EXPECT_EQ(hits, 15);
  EXPECT_FALSE(static_cast<bool>(boxed));  // NOLINT(bugprone-use-after-move)
}

TEST(Simulator, TraceMatchesSeedKernelGolden) {
  // The JSONL below was captured from the pre-slab (shared_ptr +
  // std::priority_queue) kernel running this exact scenario. The rewritten
  // kernel must emit identical sched/fire/cancel records: same seq
  // numbering, same FIFO order, and the same lazy-cancel reclamation points
  // (a cancelled event is traced when it surfaces, even one parked beyond
  // the run_until horizon).
  static const char* kGolden =
      "{\"t\":0,\"kind\":\"sched\",\"tag\":\"a\",\"id\":0,\"a\":10000}\n"
      "{\"t\":0,\"kind\":\"sched\",\"tag\":\"b\",\"id\":1,\"a\":5000}\n"
      "{\"t\":0,\"kind\":\"sched\",\"tag\":\"c\",\"id\":2,\"a\":7000}\n"
      "{\"t\":0,\"kind\":\"sched\",\"tag\":\"d\",\"id\":3,\"a\":20000}\n"
      "{\"t\":0,\"kind\":\"sched\",\"tag\":\"e\",\"id\":4,\"a\":8000}\n"
      "{\"t\":0,\"kind\":\"sched\",\"tag\":\"f\",\"id\":5,\"a\":12000}\n"
      "{\"t\":0,\"kind\":\"sched\",\"tag\":\"f\",\"id\":6,\"a\":12000}\n"
      "{\"t\":0,\"kind\":\"sched\",\"tag\":\"f\",\"id\":7,\"a\":12000}\n"
      "{\"t\":0,\"kind\":\"sched\",\"tag\":\"f\",\"id\":8,\"a\":12000}\n"
      "{\"t\":0,\"kind\":\"sched\",\"tag\":\"p\",\"id\":9,\"a\":3000}\n"
      "{\"t\":0,\"kind\":\"sched\",\"tag\":\"g\",\"id\":10,\"a\":60000}\n"
      "{\"t\":3000,\"kind\":\"fire\",\"tag\":\"p\",\"id\":9}\n"
      "{\"t\":3000,\"kind\":\"sched\",\"tag\":\"p\",\"id\":11,\"a\":7000}\n"
      "{\"t\":5000,\"kind\":\"fire\",\"tag\":\"b\",\"id\":1}\n"
      "{\"t\":5000,\"kind\":\"cancel\",\"tag\":\"c\",\"id\":2}\n"
      "{\"t\":7000,\"kind\":\"fire\",\"tag\":\"p\",\"id\":11}\n"
      "{\"t\":7000,\"kind\":\"sched\",\"tag\":\"p\",\"id\":12,\"a\":11000}\n"
      "{\"t\":8000,\"kind\":\"fire\",\"tag\":\"e\",\"id\":4}\n"
      "{\"t\":10000,\"kind\":\"fire\",\"tag\":\"a\",\"id\":0}\n"
      "{\"t\":11000,\"kind\":\"fire\",\"tag\":\"p\",\"id\":12}\n"
      "{\"t\":12000,\"kind\":\"fire\",\"tag\":\"f\",\"id\":5}\n"
      "{\"t\":12000,\"kind\":\"fire\",\"tag\":\"f\",\"id\":6}\n"
      "{\"t\":12000,\"kind\":\"fire\",\"tag\":\"f\",\"id\":7}\n"
      "{\"t\":12000,\"kind\":\"fire\",\"tag\":\"f\",\"id\":8}\n"
      "{\"t\":12000,\"kind\":\"cancel\",\"tag\":\"d\",\"id\":3}\n"
      "{\"t\":12000,\"kind\":\"cancel\",\"tag\":\"g\",\"id\":10}\n";

  std::ostringstream out;
  ds::JsonlTraceSink sink(out);
  ds::Simulator sim;
  sim.set_trace(&sink);

  int fired = 0;
  auto h1 = sim.schedule(ds::millis(10), [&] { ++fired; }, "a");
  (void)h1;
  sim.post(ds::millis(5), [&] { ++fired; }, "b");
  auto h2 = sim.schedule(ds::millis(7), [&] { ++fired; }, "c");
  h2.cancel();
  ds::EventHandle h3 = sim.schedule(ds::millis(20), [&] { ++fired; }, "d");
  sim.schedule(ds::millis(8), [&h3] { h3.cancel(); }, "e");
  for (int i = 0; i < 4; ++i) {
    sim.post(ds::millis(12), [&] { ++fired; }, "f");
  }
  int pcount = 0;
  ds::EventHandle p;
  p = sim.schedule_periodic(ds::millis(3), ds::millis(4),
                            [&] {
                              if (++pcount == 3) p.cancel();
                            },
                            "p");
  auto h4 = sim.schedule(ds::millis(60), [&] { ++fired; }, "g");
  h4.cancel();
  sim.run_until(ds::millis(50));

  EXPECT_EQ(out.str(), kGolden);
}

TEST(Rng, DeterministicAcrossInstances) {
  ds::Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, ForkProducesIndependentStream) {
  ds::Rng a(123);
  ds::Rng b = a.fork(1);
  ds::Rng c = a.fork(1);
  // Different forks of advancing parent state must differ.
  EXPECT_NE(b.next(), c.next());
}

TEST(Rng, UniformIsInRange) {
  ds::Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
    const auto n = rng.uniform_int(std::uint64_t{10});
    EXPECT_LT(n, 10u);
    const auto s = rng.uniform_int(std::int64_t{-5}, std::int64_t{5});
    EXPECT_GE(s, -5);
    EXPECT_LE(s, 5);
  }
}

TEST(Rng, ExponentialMeanMatchesRate) {
  ds::Rng rng(99);
  double sum = 0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) sum += rng.exponential(2.0);
  EXPECT_NEAR(sum / n, 0.5, 0.02);
}

TEST(Rng, NormalMeanAndStddev) {
  ds::Rng rng(4);
  double sum = 0, sum_sq = 0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) {
    const double x = rng.normal(10.0, 3.0);
    sum += x;
    sum_sq += x * x;
  }
  const double mean = sum / n;
  const double var = sum_sq / n - mean * mean;
  EXPECT_NEAR(mean, 10.0, 0.1);
  EXPECT_NEAR(std::sqrt(var), 3.0, 0.1);
}

TEST(Rng, ParetoRespectsMinimum) {
  ds::Rng rng(5);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_GE(rng.pareto(2.0, 1.5), 2.0);
  }
}

TEST(Rng, WeightedIndexFollowsWeights) {
  ds::Rng rng(6);
  std::vector<double> weights{1, 0, 3};
  int counts[3] = {0, 0, 0};
  for (int i = 0; i < 40000; ++i) ++counts[rng.weighted_index(weights)];
  EXPECT_EQ(counts[1], 0);
  EXPECT_NEAR(static_cast<double>(counts[2]) / counts[0], 3.0, 0.3);
}

TEST(Rng, ShufflePreservesElements) {
  ds::Rng rng(8);
  std::vector<int> v{1, 2, 3, 4, 5};
  rng.shuffle(v);
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, (std::vector<int>{1, 2, 3, 4, 5}));
}

TEST(ZipfSampler, RankZeroIsMostFrequent) {
  ds::Rng rng(11);
  ds::ZipfSampler zipf(100, 1.0);
  std::vector<int> counts(100, 0);
  for (int i = 0; i < 100000; ++i) ++counts[zipf.sample(rng)];
  EXPECT_GT(counts[0], counts[10]);
  EXPECT_GT(counts[10], counts[99]);
}

TEST(Histogram, ExactPercentilesOnSmallData) {
  ds::Histogram h;
  for (int i = 1; i <= 100; ++i) h.record(i);
  EXPECT_EQ(h.count(), 100u);
  EXPECT_DOUBLE_EQ(h.min(), 1);
  EXPECT_DOUBLE_EQ(h.max(), 100);
  EXPECT_NEAR(h.percentile(50), 50.5, 0.01);
  EXPECT_NEAR(h.percentile(99), 99.01, 0.01);
  EXPECT_NEAR(h.mean(), 50.5, 1e-9);
}

TEST(Histogram, FractionBelow) {
  ds::Histogram h;
  for (int i = 1; i <= 10; ++i) h.record(i);
  EXPECT_DOUBLE_EQ(h.fraction_below(5.0), 0.5);
  EXPECT_DOUBLE_EQ(h.fraction_below(0.0), 0.0);
  EXPECT_DOUBLE_EQ(h.fraction_below(100.0), 1.0);
}

TEST(Histogram, ReservoirKeepsCountExact) {
  ds::Histogram h(/*max_samples=*/100);
  for (int i = 0; i < 10000; ++i) h.record(i);
  EXPECT_EQ(h.count(), 10000u);
  EXPECT_EQ(h.samples().size(), 100u);
  // The reservoir median should approximate the true median.
  EXPECT_NEAR(h.percentile(50), 5000, 1500);
}

TEST(Histogram, ReservoirPercentilesTrackDistributionPastCapacity) {
  // Regression: once record() crosses max_samples and switches to
  // reservoir downsampling, every percentile (not just the median) must
  // keep tracking the underlying distribution, and the result must be a
  // pure function of the seed.
  ds::Histogram h(/*max_samples=*/500, /*reservoir_seed=*/0x5EED);
  const std::uint64_t n = 50'000;
  for (std::uint64_t i = 0; i < n; ++i) {
    h.record(static_cast<double>(i));  // uniform on [0, n)
  }
  EXPECT_EQ(h.count(), n);
  EXPECT_EQ(h.samples().size(), 500u);
  for (const double p : {10.0, 25.0, 50.0, 75.0, 90.0, 99.0}) {
    const double truth = static_cast<double>(n) * p / 100.0;
    // Binomial spread of a 500-sample reservoir: ~5 percentage points of
    // mass, generously doubled for the tails.
    EXPECT_NEAR(h.percentile(p), truth, static_cast<double>(n) * 0.10)
        << "p" << p;
  }
  EXPECT_NEAR(h.mean(), static_cast<double>(n) / 2.0,
              static_cast<double>(n) * 0.01);  // mean is exact, not sampled

  // Same seed, same stream -> identical reservoir.
  ds::Histogram again(500, 0x5EED);
  for (std::uint64_t i = 0; i < n; ++i) {
    again.record(static_cast<double>(i));
  }
  EXPECT_DOUBLE_EQ(h.percentile(90), again.percentile(90));
  EXPECT_EQ(h.samples(), again.samples());
}

TEST(Stats, GiniOfEqualSharesIsZero) {
  EXPECT_NEAR(decentnet::sim::gini({5, 5, 5, 5}), 0.0, 1e-9);
}

TEST(Stats, GiniOfMonopolyApproachesOne) {
  std::vector<double> v(100, 0.0);
  v[0] = 1000;
  EXPECT_NEAR(decentnet::sim::gini(v), 0.99, 0.011);
}

TEST(Stats, NakamotoCoefficient) {
  // Six pools with 75%: {20,15,12,11,9,8} + tail of small miners.
  std::vector<double> shares{20, 15, 12, 11, 9, 8};
  for (int i = 0; i < 25; ++i) shares.push_back(1.0);
  EXPECT_EQ(decentnet::sim::nakamoto_coefficient(shares), 4u);
  EXPECT_NEAR(decentnet::sim::top_k_share(shares, 6), 0.75, 0.001);
}

TEST(Stats, EntropyBounds) {
  EXPECT_NEAR(decentnet::sim::shannon_entropy({1, 1, 1, 1}), 2.0, 1e-9);
  EXPECT_NEAR(decentnet::sim::shannon_entropy({1, 0, 0, 0}), 0.0, 1e-9);
}

TEST(Stats, HhiBounds) {
  EXPECT_NEAR(decentnet::sim::hhi({1, 1, 1, 1}), 0.25, 1e-9);
  EXPECT_NEAR(decentnet::sim::hhi({42}), 1.0, 1e-9);
}

TEST(Table, RendersAlignedColumns) {
  ds::Table t("demo");
  t.set_header({"name", "value"});
  t.add_row({"alpha", ds::Table::num(1.5)});
  t.add_row({"beta", ds::Table::num(20.25)});
  const std::string s = t.to_string();
  EXPECT_NE(s.find("demo"), std::string::npos);
  EXPECT_NE(s.find("alpha"), std::string::npos);
  EXPECT_NE(s.find("20.25"), std::string::npos);
}

TEST(Time, FormatDuration) {
  EXPECT_EQ(ds::format_duration(ds::seconds(1.5)), "1.50s");
  EXPECT_EQ(ds::format_duration(ds::millis(340)), "340.00ms");
  EXPECT_EQ(ds::format_duration(ds::minutes(2)), "2.00min");
}
