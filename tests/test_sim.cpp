// Kernel tests: event ordering, periodic timers, cancellation, RNG
// determinism and distribution sanity, histogram percentiles, and the
// decentralization statistics.
#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "sim/metrics.hpp"
#include "sim/rng.hpp"
#include "sim/simulator.hpp"
#include "sim/stats.hpp"
#include "sim/table.hpp"
#include "sim/time.hpp"

namespace ds = decentnet::sim;

TEST(Simulator, ExecutesEventsInTimestampOrder) {
  ds::Simulator sim;
  std::vector<int> order;
  sim.schedule(ds::millis(30), [&] { order.push_back(3); });
  sim.schedule(ds::millis(10), [&] { order.push_back(1); });
  sim.schedule(ds::millis(20), [&] { order.push_back(2); });
  sim.run_all();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(sim.now(), ds::millis(30));
}

TEST(Simulator, SameTimestampIsFifo) {
  ds::Simulator sim;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    sim.schedule(ds::millis(5), [&order, i] { order.push_back(i); });
  }
  sim.run_all();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[static_cast<size_t>(i)], i);
}

TEST(Simulator, RunUntilStopsAtBoundary) {
  ds::Simulator sim;
  int fired = 0;
  sim.schedule(ds::seconds(1), [&] { ++fired; });
  sim.schedule(ds::seconds(2), [&] { ++fired; });
  sim.schedule(ds::seconds(3), [&] { ++fired; });
  sim.run_until(ds::seconds(2));
  EXPECT_EQ(fired, 2);
  EXPECT_EQ(sim.now(), ds::seconds(2));
  sim.run_until(ds::seconds(10));
  EXPECT_EQ(fired, 3);
  EXPECT_EQ(sim.now(), ds::seconds(10));  // clock advances to the horizon
}

TEST(Simulator, CancelPreventsExecution) {
  ds::Simulator sim;
  int fired = 0;
  auto handle = sim.schedule(ds::seconds(1), [&] { ++fired; });
  EXPECT_TRUE(handle.valid());
  handle.cancel();
  EXPECT_FALSE(handle.valid());
  sim.run_all();
  EXPECT_EQ(fired, 0);
}

TEST(Simulator, PeriodicFiresRepeatedlyUntilCancelled) {
  ds::Simulator sim;
  int fired = 0;
  auto handle = sim.schedule_periodic(ds::seconds(1), ds::seconds(1), [&] {
    ++fired;
  });
  sim.run_until(ds::seconds(5) + ds::millis(1));
  EXPECT_EQ(fired, 5);
  handle.cancel();
  sim.run_until(ds::seconds(20));
  EXPECT_EQ(fired, 5);
}

TEST(Simulator, EventsScheduledFromEventsRun) {
  ds::Simulator sim;
  int depth = 0;
  std::function<void()> recurse = [&] {
    if (++depth < 5) sim.schedule(ds::millis(1), recurse);
  };
  sim.schedule(0, recurse);
  sim.run_all();
  EXPECT_EQ(depth, 5);
}

TEST(Simulator, NegativeDelayClampsToNow) {
  ds::Simulator sim;
  sim.schedule(ds::seconds(1), [] {});
  sim.run_all();
  bool fired = false;
  sim.schedule(-ds::seconds(5), [&] { fired = true; });
  sim.run_all();
  EXPECT_TRUE(fired);
  EXPECT_EQ(sim.now(), ds::seconds(1));
}

TEST(Rng, DeterministicAcrossInstances) {
  ds::Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, ForkProducesIndependentStream) {
  ds::Rng a(123);
  ds::Rng b = a.fork(1);
  ds::Rng c = a.fork(1);
  // Different forks of advancing parent state must differ.
  EXPECT_NE(b.next(), c.next());
}

TEST(Rng, UniformIsInRange) {
  ds::Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
    const auto n = rng.uniform_int(std::uint64_t{10});
    EXPECT_LT(n, 10u);
    const auto s = rng.uniform_int(std::int64_t{-5}, std::int64_t{5});
    EXPECT_GE(s, -5);
    EXPECT_LE(s, 5);
  }
}

TEST(Rng, ExponentialMeanMatchesRate) {
  ds::Rng rng(99);
  double sum = 0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) sum += rng.exponential(2.0);
  EXPECT_NEAR(sum / n, 0.5, 0.02);
}

TEST(Rng, NormalMeanAndStddev) {
  ds::Rng rng(4);
  double sum = 0, sum_sq = 0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) {
    const double x = rng.normal(10.0, 3.0);
    sum += x;
    sum_sq += x * x;
  }
  const double mean = sum / n;
  const double var = sum_sq / n - mean * mean;
  EXPECT_NEAR(mean, 10.0, 0.1);
  EXPECT_NEAR(std::sqrt(var), 3.0, 0.1);
}

TEST(Rng, ParetoRespectsMinimum) {
  ds::Rng rng(5);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_GE(rng.pareto(2.0, 1.5), 2.0);
  }
}

TEST(Rng, WeightedIndexFollowsWeights) {
  ds::Rng rng(6);
  std::vector<double> weights{1, 0, 3};
  int counts[3] = {0, 0, 0};
  for (int i = 0; i < 40000; ++i) ++counts[rng.weighted_index(weights)];
  EXPECT_EQ(counts[1], 0);
  EXPECT_NEAR(static_cast<double>(counts[2]) / counts[0], 3.0, 0.3);
}

TEST(Rng, ShufflePreservesElements) {
  ds::Rng rng(8);
  std::vector<int> v{1, 2, 3, 4, 5};
  rng.shuffle(v);
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, (std::vector<int>{1, 2, 3, 4, 5}));
}

TEST(ZipfSampler, RankZeroIsMostFrequent) {
  ds::Rng rng(11);
  ds::ZipfSampler zipf(100, 1.0);
  std::vector<int> counts(100, 0);
  for (int i = 0; i < 100000; ++i) ++counts[zipf.sample(rng)];
  EXPECT_GT(counts[0], counts[10]);
  EXPECT_GT(counts[10], counts[99]);
}

TEST(Histogram, ExactPercentilesOnSmallData) {
  ds::Histogram h;
  for (int i = 1; i <= 100; ++i) h.record(i);
  EXPECT_EQ(h.count(), 100u);
  EXPECT_DOUBLE_EQ(h.min(), 1);
  EXPECT_DOUBLE_EQ(h.max(), 100);
  EXPECT_NEAR(h.percentile(50), 50.5, 0.01);
  EXPECT_NEAR(h.percentile(99), 99.01, 0.01);
  EXPECT_NEAR(h.mean(), 50.5, 1e-9);
}

TEST(Histogram, FractionBelow) {
  ds::Histogram h;
  for (int i = 1; i <= 10; ++i) h.record(i);
  EXPECT_DOUBLE_EQ(h.fraction_below(5.0), 0.5);
  EXPECT_DOUBLE_EQ(h.fraction_below(0.0), 0.0);
  EXPECT_DOUBLE_EQ(h.fraction_below(100.0), 1.0);
}

TEST(Histogram, ReservoirKeepsCountExact) {
  ds::Histogram h(/*max_samples=*/100);
  for (int i = 0; i < 10000; ++i) h.record(i);
  EXPECT_EQ(h.count(), 10000u);
  EXPECT_EQ(h.samples().size(), 100u);
  // The reservoir median should approximate the true median.
  EXPECT_NEAR(h.percentile(50), 5000, 1500);
}

TEST(Histogram, ReservoirPercentilesTrackDistributionPastCapacity) {
  // Regression: once record() crosses max_samples and switches to
  // reservoir downsampling, every percentile (not just the median) must
  // keep tracking the underlying distribution, and the result must be a
  // pure function of the seed.
  ds::Histogram h(/*max_samples=*/500, /*reservoir_seed=*/0x5EED);
  const std::uint64_t n = 50'000;
  for (std::uint64_t i = 0; i < n; ++i) {
    h.record(static_cast<double>(i));  // uniform on [0, n)
  }
  EXPECT_EQ(h.count(), n);
  EXPECT_EQ(h.samples().size(), 500u);
  for (const double p : {10.0, 25.0, 50.0, 75.0, 90.0, 99.0}) {
    const double truth = static_cast<double>(n) * p / 100.0;
    // Binomial spread of a 500-sample reservoir: ~5 percentage points of
    // mass, generously doubled for the tails.
    EXPECT_NEAR(h.percentile(p), truth, static_cast<double>(n) * 0.10)
        << "p" << p;
  }
  EXPECT_NEAR(h.mean(), static_cast<double>(n) / 2.0,
              static_cast<double>(n) * 0.01);  // mean is exact, not sampled

  // Same seed, same stream -> identical reservoir.
  ds::Histogram again(500, 0x5EED);
  for (std::uint64_t i = 0; i < n; ++i) {
    again.record(static_cast<double>(i));
  }
  EXPECT_DOUBLE_EQ(h.percentile(90), again.percentile(90));
  EXPECT_EQ(h.samples(), again.samples());
}

TEST(Stats, GiniOfEqualSharesIsZero) {
  EXPECT_NEAR(decentnet::sim::gini({5, 5, 5, 5}), 0.0, 1e-9);
}

TEST(Stats, GiniOfMonopolyApproachesOne) {
  std::vector<double> v(100, 0.0);
  v[0] = 1000;
  EXPECT_NEAR(decentnet::sim::gini(v), 0.99, 0.011);
}

TEST(Stats, NakamotoCoefficient) {
  // Six pools with 75%: {20,15,12,11,9,8} + tail of small miners.
  std::vector<double> shares{20, 15, 12, 11, 9, 8};
  for (int i = 0; i < 25; ++i) shares.push_back(1.0);
  EXPECT_EQ(decentnet::sim::nakamoto_coefficient(shares), 4u);
  EXPECT_NEAR(decentnet::sim::top_k_share(shares, 6), 0.75, 0.001);
}

TEST(Stats, EntropyBounds) {
  EXPECT_NEAR(decentnet::sim::shannon_entropy({1, 1, 1, 1}), 2.0, 1e-9);
  EXPECT_NEAR(decentnet::sim::shannon_entropy({1, 0, 0, 0}), 0.0, 1e-9);
}

TEST(Stats, HhiBounds) {
  EXPECT_NEAR(decentnet::sim::hhi({1, 1, 1, 1}), 0.25, 1e-9);
  EXPECT_NEAR(decentnet::sim::hhi({42}), 1.0, 1e-9);
}

TEST(Table, RendersAlignedColumns) {
  ds::Table t("demo");
  t.set_header({"name", "value"});
  t.add_row({"alpha", ds::Table::num(1.5)});
  t.add_row({"beta", ds::Table::num(20.25)});
  const std::string s = t.to_string();
  EXPECT_NE(s.find("demo"), std::string::npos);
  EXPECT_NE(s.find("alpha"), std::string::npos);
  EXPECT_NE(s.find("20.25"), std::string::npos);
}

TEST(Time, FormatDuration) {
  EXPECT_EQ(ds::format_duration(ds::seconds(1.5)), "1.50s");
  EXPECT_EQ(ds::format_duration(ds::millis(340)), "340.00ms");
  EXPECT_EQ(ds::format_duration(ds::minutes(2)), "2.00min");
}
