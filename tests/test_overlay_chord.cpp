// Chord tests: ring formation via stabilization, successor/predecessor
// invariants, lookup correctness against ground truth, O(log n) hop counts,
// and recovery when nodes fail.
#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <vector>

#include "net/network.hpp"
#include "overlay/chord.hpp"

namespace dn = decentnet::net;
namespace ds = decentnet::sim;
namespace ov = decentnet::overlay;

namespace {

struct ChordRing {
  ds::Simulator sim{777};
  dn::Network net{sim, std::make_unique<dn::ConstantLatency>(ds::millis(10))};
  ov::ChordConfig config;
  std::vector<std::unique_ptr<ov::ChordNode>> nodes;

  explicit ChordRing(std::size_t n) {
    config.stabilize_interval = ds::seconds(5);
    config.fix_fingers_interval = ds::seconds(5);
    config.check_predecessor_interval = ds::seconds(10);
    for (std::size_t i = 0; i < n; ++i) {
      nodes.push_back(
          std::make_unique<ov::ChordNode>(net, net.new_node_id(), config));
    }
    nodes[0]->create();
    for (std::size_t i = 1; i < n; ++i) {
      nodes[i]->join(nodes[0]->self());
      sim.run_until(sim.now() + ds::seconds(12));
    }
    // Let stabilization and finger repair converge.
    sim.run_until(sim.now() + ds::minutes(20));
  }

  /// Ground truth successor of `key` among online nodes.
  ov::ChordContact true_successor(ov::ChordId key) const {
    std::vector<ov::ChordContact> ring;
    for (const auto& n : nodes) {
      if (n->online()) ring.push_back(n->self());
    }
    std::sort(ring.begin(), ring.end(),
              [](const ov::ChordContact& a, const ov::ChordContact& b) {
                return a.id < b.id;
              });
    for (const auto& c : ring) {
      if (c.id >= key) return c;
    }
    return ring.front();  // wrap
  }
};

}  // namespace

TEST(ChordInterval, HalfOpenSemantics) {
  EXPECT_TRUE(ov::in_interval_oc(5, 3, 7));
  EXPECT_TRUE(ov::in_interval_oc(7, 3, 7));
  EXPECT_FALSE(ov::in_interval_oc(3, 3, 7));
  // Wrapped interval.
  EXPECT_TRUE(ov::in_interval_oc(1, 100, 10));
  EXPECT_TRUE(ov::in_interval_oc(200, 100, 10));
  EXPECT_FALSE(ov::in_interval_oc(50, 100, 10));
  // Full circle.
  EXPECT_TRUE(ov::in_interval_oc(42, 9, 9));
}

TEST(ChordInterval, OpenSemantics) {
  EXPECT_TRUE(ov::in_interval_oo(5, 3, 7));
  EXPECT_FALSE(ov::in_interval_oo(7, 3, 7));
  EXPECT_FALSE(ov::in_interval_oo(3, 3, 7));
  EXPECT_TRUE(ov::in_interval_oo(1, 100, 10));
}

TEST(Chord, RingConvergesToSortedOrder) {
  ChordRing ring(16);
  // Every node's successor must be the next node clockwise.
  for (const auto& n : ring.nodes) {
    const auto truth = ring.true_successor(n->id() + 1);
    EXPECT_EQ(n->successor().addr, truth.addr)
        << "node " << n->id() << " has wrong successor";
  }
}

TEST(Chord, PredecessorsConverge) {
  ChordRing ring(12);
  std::size_t with_pred = 0;
  for (const auto& n : ring.nodes) {
    if (n->predecessor()) ++with_pred;
  }
  EXPECT_EQ(with_pred, ring.nodes.size());
}

TEST(Chord, LookupsResolveToTrueSuccessor) {
  ChordRing ring(20);
  ds::Rng rng(9);
  int correct = 0;
  const int queries = 30;
  for (int q = 0; q < queries; ++q) {
    const ov::ChordId key = rng.next();
    auto& src = *ring.nodes[rng.uniform_int(ring.nodes.size())];
    bool done = false;
    ov::ChordLookupResult result;
    src.lookup(key, [&](ov::ChordLookupResult r) {
      done = true;
      result = r;
    });
    ring.sim.run_until(ring.sim.now() + ds::minutes(1));
    ASSERT_TRUE(done);
    if (result.ok &&
        result.successor.addr == ring.true_successor(key).addr) {
      ++correct;
    }
  }
  EXPECT_GE(correct, queries * 9 / 10);
}

TEST(Chord, HopCountIsLogarithmic) {
  ChordRing ring(32);
  ds::Rng rng(10);
  double total_hops = 0;
  int done_count = 0;
  for (int q = 0; q < 20; ++q) {
    const ov::ChordId key = rng.next();
    bool done = false;
    ring.nodes[0]->lookup(key, [&](ov::ChordLookupResult r) {
      done = true;
      if (r.ok) {
        total_hops += static_cast<double>(r.hops);
        ++done_count;
      }
    });
    ring.sim.run_until(ring.sim.now() + ds::minutes(1));
    ASSERT_TRUE(done);
  }
  ASSERT_GT(done_count, 0);
  const double mean_hops = total_hops / done_count;
  // log2(32) = 5; allow generous slack but far below O(n).
  EXPECT_LE(mean_hops, 10.0);
}

TEST(Chord, SuccessorListSurvivesNodeFailure) {
  ChordRing ring(12);
  // Find some node's successor and kill it without warning.
  ov::ChordNode* observer = ring.nodes[0].get();
  const dn::NodeId doomed_addr = observer->successor().addr;
  for (auto& n : ring.nodes) {
    if (n->addr() == doomed_addr) {
      n->leave();
      break;
    }
  }
  // Stabilization should route around the failure.
  ring.sim.run_until(ring.sim.now() + ds::minutes(5));
  EXPECT_NE(observer->successor().addr, doomed_addr);
  const auto truth = ring.true_successor(observer->id() + 1);
  EXPECT_EQ(observer->successor().addr, truth.addr);
}

TEST(Chord, LoneNodeOwnsWholeRing) {
  ds::Simulator sim;
  dn::Network net(sim, std::make_unique<dn::ConstantLatency>(ds::millis(1)));
  ov::ChordNode solo(net, net.new_node_id(), ov::ChordConfig{});
  solo.create();
  sim.run_until(ds::minutes(2));
  bool done = false;
  solo.lookup(12345, [&](ov::ChordLookupResult r) {
    done = true;
    EXPECT_TRUE(r.ok);
    EXPECT_EQ(r.successor.addr, solo.addr());
  });
  sim.run_until(sim.now() + ds::minutes(1));
  EXPECT_TRUE(done);
}

TEST(Chord, FingersPointForward) {
  ChordRing ring(16);
  // After convergence every finger entry must be an online node.
  for (const auto& n : ring.nodes) {
    for (const auto& f : n->fingers()) {
      if (!f.addr.valid()) continue;
      const bool exists = std::any_of(
          ring.nodes.begin(), ring.nodes.end(),
          [&](const auto& m) { return m->addr() == f.addr; });
      EXPECT_TRUE(exists);
    }
  }
}
