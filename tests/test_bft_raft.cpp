// Raft tests: leader election, log replication, majority commit, leader
// crash/failover, restart recovery, and log-consistency invariants.
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "bft/raft.hpp"
#include "net/network.hpp"

namespace db = decentnet::bft;
namespace dn = decentnet::net;
namespace ds = decentnet::sim;

namespace {

struct RaftCluster {
  ds::Simulator sim{52};
  dn::Network net{sim, std::make_unique<dn::ConstantLatency>(ds::millis(5))};
  std::vector<std::unique_ptr<db::RaftNode>> nodes;
  std::vector<std::vector<db::Command>> applied;

  explicit RaftCluster(std::size_t n) {
    std::vector<dn::NodeId> addrs;
    for (std::size_t i = 0; i < n; ++i) addrs.push_back(net.new_node_id());
    applied.resize(n);
    for (std::size_t i = 0; i < n; ++i) {
      nodes.push_back(std::make_unique<db::RaftNode>(net, addrs[i], i,
                                                     db::RaftConfig{}));
      nodes.back()->set_group(addrs);
      nodes.back()->set_commit_hook(
          [this, i](std::uint64_t, const db::Command& cmd) {
            applied[i].push_back(cmd);
          });
    }
    for (auto& node : nodes) node->start();
    sim.run_until(ds::seconds(2));  // elect
  }

  db::RaftNode* leader() {
    for (auto& n : nodes) {
      if (n->is_leader()) return n.get();
    }
    return nullptr;
  }

  std::size_t leader_count() const {
    std::size_t c = 0;
    std::uint64_t max_term = 0;
    for (const auto& n : nodes) max_term = std::max(max_term, n->term());
    for (const auto& n : nodes) {
      if (n->role() == db::RaftNode::Role::Leader && n->term() == max_term &&
          !n->crashed()) {
        ++c;
      }
    }
    return c;
  }

  db::Command cmd(std::uint64_t id, std::string op = "op") {
    db::Command c;
    c.id = id;
    c.client = 1;
    c.op = std::move(op);
    return c;
  }
};

}  // namespace

TEST(Raft, ElectsExactlyOneLeader) {
  RaftCluster rc(5);
  ASSERT_NE(rc.leader(), nullptr);
  EXPECT_EQ(rc.leader_count(), 1u);
}

TEST(Raft, ReplicatesAndCommitsOnAllNodes) {
  RaftCluster rc(5);
  auto* leader = rc.leader();
  ASSERT_NE(leader, nullptr);
  for (int i = 1; i <= 20; ++i) {
    ASSERT_TRUE(leader->propose(rc.cmd(static_cast<std::uint64_t>(i))));
  }
  rc.sim.run_until(rc.sim.now() + ds::seconds(2));
  for (std::size_t n = 0; n < rc.nodes.size(); ++n) {
    ASSERT_EQ(rc.applied[n].size(), 20u) << "node " << n;
    for (int i = 0; i < 20; ++i) {
      EXPECT_EQ(rc.applied[n][static_cast<std::size_t>(i)].id,
                static_cast<std::uint64_t>(i + 1));
    }
  }
}

TEST(Raft, FollowerRejectsProposals) {
  RaftCluster rc(3);
  auto* leader = rc.leader();
  ASSERT_NE(leader, nullptr);
  for (auto& n : rc.nodes) {
    if (n.get() != leader) {
      EXPECT_FALSE(n->propose(rc.cmd(1)));
    }
  }
}

TEST(Raft, SurvivesLeaderCrash) {
  RaftCluster rc(5);
  auto* old_leader = rc.leader();
  ASSERT_NE(old_leader, nullptr);
  for (int i = 1; i <= 5; ++i) old_leader->propose(rc.cmd(static_cast<std::uint64_t>(i)));
  rc.sim.run_until(rc.sim.now() + ds::seconds(1));
  old_leader->crash();
  rc.sim.run_until(rc.sim.now() + ds::seconds(3));
  auto* new_leader = rc.leader();
  ASSERT_NE(new_leader, nullptr);
  EXPECT_NE(new_leader, old_leader);
  // New proposals still commit on the surviving majority.
  for (int i = 6; i <= 10; ++i) new_leader->propose(rc.cmd(static_cast<std::uint64_t>(i)));
  rc.sim.run_until(rc.sim.now() + ds::seconds(2));
  for (std::size_t n = 0; n < rc.nodes.size(); ++n) {
    if (rc.nodes[n]->crashed()) continue;
    EXPECT_EQ(rc.applied[n].size(), 10u) << "node " << n;
  }
}

TEST(Raft, MinorityCannotCommit) {
  RaftCluster rc(5);
  auto* leader = rc.leader();
  ASSERT_NE(leader, nullptr);
  // Crash a majority (3 of 5), leaving the leader + one follower.
  std::size_t crashed = 0;
  for (auto& n : rc.nodes) {
    if (n.get() != leader && crashed < 3) {
      n->crash();
      ++crashed;
    }
  }
  const std::uint64_t before = leader->commit_index();
  leader->propose(rc.cmd(100));
  rc.sim.run_until(rc.sim.now() + ds::seconds(3));
  EXPECT_EQ(leader->commit_index(), before)
      << "a two-node minority of five must not commit";
}

TEST(Raft, RestartedNodeCatchesUp) {
  RaftCluster rc(5);
  auto* leader = rc.leader();
  ASSERT_NE(leader, nullptr);
  // Crash a follower, commit entries, restart it.
  db::RaftNode* victim = nullptr;
  for (auto& n : rc.nodes) {
    if (n.get() != leader) {
      victim = n.get();
      break;
    }
  }
  victim->crash();
  for (int i = 1; i <= 10; ++i) leader->propose(rc.cmd(static_cast<std::uint64_t>(i)));
  rc.sim.run_until(rc.sim.now() + ds::seconds(2));
  victim->restart();
  rc.sim.run_until(rc.sim.now() + ds::seconds(3));
  EXPECT_EQ(rc.applied[victim->index()].size(), 10u)
      << "restarted node must replay the committed log";
}

TEST(Raft, CommitOrderIdenticalOnAllNodes) {
  RaftCluster rc(5);
  // Interleave crashes and proposals, then verify prefix consistency.
  ds::Rng rng(4);
  std::uint64_t next = 1;
  for (int round = 0; round < 10; ++round) {
    auto* leader = rc.leader();
    if (leader != nullptr) {
      for (int i = 0; i < 5; ++i) leader->propose(rc.cmd(next++));
    }
    rc.sim.run_until(rc.sim.now() + ds::seconds(1));
  }
  rc.sim.run_until(rc.sim.now() + ds::seconds(2));
  // All logs must agree on the common applied prefix.
  for (std::size_t a = 1; a < rc.nodes.size(); ++a) {
    const std::size_t common =
        std::min(rc.applied[0].size(), rc.applied[a].size());
    for (std::size_t i = 0; i < common; ++i) {
      EXPECT_EQ(rc.applied[0][i].id, rc.applied[a][i].id)
          << "divergence at index " << i << " on node " << a;
    }
  }
  EXPECT_GT(rc.applied[0].size(), 0u);
}

TEST(Raft, SingleNodeClusterCommitsAlone) {
  RaftCluster rc(1);
  ASSERT_NE(rc.leader(), nullptr);
  rc.leader()->propose(rc.cmd(1));
  rc.sim.run_until(rc.sim.now() + ds::seconds(1));
  EXPECT_EQ(rc.applied[0].size(), 1u);
}

TEST(Raft, ClientProposeViaMessage) {
  RaftCluster rc(3);
  auto* leader = rc.leader();
  ASSERT_NE(leader, nullptr);
  // A bare host submits a ClientPropose to the leader.
  struct Client : dn::Host {
    bool committed = false;
    void handle_message(const dn::Message& msg) override {
      if (msg.is<db::raft_msg::ClientReply>()) {
        committed |= dn::payload_as<db::raft_msg::ClientReply>(msg).committed;
      }
    }
  } client;
  const auto caddr = rc.net.new_node_id();
  rc.net.attach(caddr, &client);
  db::Command c;
  c.id = 9;
  c.client = 77;
  c.op = "x";
  rc.net.send(caddr, leader->addr(), db::raft_msg::ClientPropose{c}, 64);
  rc.sim.run_until(rc.sim.now() + ds::seconds(2));
  EXPECT_TRUE(client.committed);
}
