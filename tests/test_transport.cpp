// Transport-layer tests: FIFO queue ordering under same-time sends, bounded
// queue overflow accounting, the TCP-like cwnd growth/halving trace,
// LinkSpec round-trips through FaultPlan::bandwidth_degrade, the
// TopologySpec factory, the sharded bandwidth byte-identity contract, and
// the deprecated NetworkConfig/set_bandwidth shims.
#include <gtest/gtest.h>

#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "net/faults.hpp"
#include "net/latency.hpp"
#include "net/network.hpp"
#include "net/topology.hpp"
#include "net/transport.hpp"
#include "overlay/gossip.hpp"
#include "sim/sharding.hpp"
#include "sim/simulator.hpp"
#include "sim/trace.hpp"

namespace dn = decentnet::net;
namespace ds = decentnet::sim;
namespace ov = decentnet::overlay;

namespace {

struct Probe : dn::Host {
  std::vector<ds::SimTime> arrivals;
  std::vector<int> values;
  ds::Simulator* sim = nullptr;
  void handle_message(const dn::Message& msg) override {
    arrivals.push_back(sim->now());
    values.push_back(dn::payload_as<int>(msg));
  }
};

/// Collects whole records so tests can assert queue_us and drop reasons.
struct VecSink final : ds::TraceSink {
  std::vector<ds::TraceRecord> records;
  void record(const ds::TraceRecord& r) override { records.push_back(r); }
  std::size_t count(const std::string& kind, const std::string& tag) const {
    std::size_t c = 0;
    for (const auto& r : records) {
      if (kind == r.kind && tag == r.tag) ++c;
    }
    return c;
  }
};

}  // namespace

// ---------------------------------------------------------------------------
// FIFO serialization
// ---------------------------------------------------------------------------

TEST(Transport, QueueIsFifoForSameTimeSends) {
  ds::Simulator sim;
  dn::NetworkConfig cfg;
  cfg.transport.mode = dn::TransportMode::Bandwidth;
  cfg.transport.link.up_bps = 1e6;    // 1 MB/s
  cfg.transport.link.down_bps = 1e9;  // negligible
  cfg.track_spans = true;
  VecSink sink;
  sim.set_trace(&sink);
  dn::Network net(sim, std::make_unique<dn::ConstantLatency>(ds::millis(10)),
                  cfg);
  Probe a, b;
  a.sim = b.sim = &sim;
  const auto ida = net.new_node_id();
  const auto idb = net.new_node_id();
  net.attach(ida, &a);
  net.attach(idb, &b);
  // Three 100 KB messages posted at the same instant: each serializes for
  // 100 ms behind the previous one, and arrival order matches send order.
  sim.post_at(0, [&] {
    net.send(ida, idb, 1, 100'000);
    net.send(ida, idb, 2, 100'000);
    net.send(ida, idb, 3, 100'000);
  });
  sim.run_all();
  ASSERT_EQ(b.arrivals.size(), 3u);
  EXPECT_EQ(b.values, (std::vector<int>{1, 2, 3}));
  // 100 ms uplink serialization each + 10 ms propagation + 100 us downlink
  // serialization (100 KB at 1 GB/s).
  EXPECT_EQ(b.arrivals[0], ds::millis(110) + 100);
  EXPECT_EQ(b.arrivals[1], ds::millis(210) + 100);
  EXPECT_EQ(b.arrivals[2], ds::millis(310) + 100);

  // The span records carry each hop's queue wait: 0, 100ms, 200ms.
  std::vector<std::uint64_t> queue_us;
  for (const auto& r : sink.records) {
    if (std::string(r.kind) == "span") queue_us.push_back(r.queue_us);
  }
  ASSERT_EQ(queue_us.size(), 3u);
  EXPECT_EQ(queue_us[0], 0u);
  EXPECT_EQ(queue_us[1], static_cast<std::uint64_t>(ds::millis(100)));
  EXPECT_EQ(queue_us[2], static_cast<std::uint64_t>(ds::millis(200)));
}

TEST(Transport, DownlinkSerializationIsAdditive) {
  ds::Simulator sim;
  dn::NetworkConfig cfg;
  cfg.transport.mode = dn::TransportMode::Bandwidth;
  cfg.transport.link.up_bps = 1e9;  // negligible
  cfg.transport.link.down_bps = 1e6;
  dn::Network net(sim, std::make_unique<dn::ConstantLatency>(ds::millis(10)),
                  cfg);
  Probe a, b;
  a.sim = b.sim = &sim;
  const auto ida = net.new_node_id();
  const auto idb = net.new_node_id();
  net.attach(ida, &a);
  net.attach(idb, &b);
  // 1 MB through a 1 MB/s downlink: ~1 s receive serialization.
  net.send(ida, idb, 7, 1'000'000);
  sim.run_all();
  ASSERT_EQ(b.arrivals.size(), 1u);
  EXPECT_NEAR(ds::to_seconds(b.arrivals[0]), 1.011, 0.01);
}

// ---------------------------------------------------------------------------
// Bounded queue overflow
// ---------------------------------------------------------------------------

TEST(Transport, OverflowDropsAreCountedAndTraced) {
  ds::Simulator sim;
  dn::NetworkConfig cfg;
  cfg.transport.mode = dn::TransportMode::Bandwidth;
  cfg.transport.link.up_bps = 1e6;
  cfg.transport.link.down_bps = 1e9;
  cfg.transport.link.queue_bytes = 300'000;  // room for 3 committed msgs
  VecSink sink;
  sim.set_trace(&sink);
  dn::Network net(sim, std::make_unique<dn::ConstantLatency>(ds::millis(10)),
                  cfg);
  Probe a, b;
  a.sim = b.sim = &sim;
  const auto ida = net.new_node_id();
  const auto idb = net.new_node_id();
  net.attach(ida, &a);
  net.attach(idb, &b);
  // Six same-instant 100 KB sends. The bound covers committed bytes
  // including the incoming message: #1-#3 fill the 300 KB queue exactly,
  // #4-#6 overflow it while the first is still on the wire.
  sim.post_at(0, [&] {
    for (int i = 1; i <= 6; ++i) net.send(ida, idb, i, 100'000);
  });
  sim.run_all();
  EXPECT_EQ(b.arrivals.size(), 3u);
  EXPECT_EQ(net.metrics().counter("net/queue_dropped").value(), 3u);
  EXPECT_EQ(sink.count("drop", "queue"), 3u);
}

// ---------------------------------------------------------------------------
// TCP-like flow model
// ---------------------------------------------------------------------------

TEST(Transport, TcpSlowStartGrowsAndLossHalvesCwnd) {
  ds::Simulator sim;
  dn::NetworkConfig cfg;
  cfg.transport.mode = dn::TransportMode::Tcp;
  cfg.transport.link.up_bps = 125'000;  // 1 Mbit/s
  cfg.transport.link.down_bps = 1e9;
  cfg.transport.link.queue_bytes = 60'000;
  cfg.transport.mss_bytes = 1460;
  cfg.transport.initial_cwnd_mss = 10;
  cfg.transport.rtt = ds::millis(100);
  dn::Network net(sim, std::make_unique<dn::ConstantLatency>(ds::millis(10)),
                  cfg);
  Probe a, b;
  a.sim = b.sim = &sim;
  const auto ida = net.new_node_id();
  const auto idb = net.new_node_id();
  net.attach(ida, &a);
  net.attach(idb, &b);
  const std::uint32_t idx = net.node_index(ida);

  // Golden cwnd trace through slow start: cwnd starts at 10 * 1460 = 14600
  // and each admitted burst adds its own size.
  std::vector<double> cwnd_after;
  for (int i = 0; i < 4; ++i) {
    net.send(ida, idb, i, 10'000);
    cwnd_after.push_back(net.transport().cwnd_bytes(idx));
  }
  EXPECT_DOUBLE_EQ(cwnd_after[0], 24'600.0);
  EXPECT_DOUBLE_EQ(cwnd_after[1], 34'600.0);
  EXPECT_DOUBLE_EQ(cwnd_after[2], 44'600.0);
  EXPECT_DOUBLE_EQ(cwnd_after[3], 54'600.0);

  // Flood until the bounded queue overflows: the loss reaction halves the
  // window (floor 2 MSS) and moves ssthresh down with it.
  const double before_loss = net.transport().cwnd_bytes(idx);
  for (int i = 0; i < 12; ++i) net.send(ida, idb, 100 + i, 10'000);
  ASSERT_GT(net.metrics().counter("net/queue_dropped").value(), 0u);
  const double after_loss_thresh = net.transport().ssthresh_bytes(idx);
  EXPECT_LT(after_loss_thresh, before_loss + 120'001);  // came down from +inf
  EXPECT_GE(after_loss_thresh, 2.0 * 1460);

  // Post-loss sends grow additively (congestion avoidance): cwnd ends at
  // most one MSS per send above ssthresh-at-loss, far below doubling.
  sim.run_all();
  const double cwnd_end = net.transport().cwnd_bytes(idx);
  EXPECT_GE(cwnd_end, net.transport().ssthresh_bytes(idx));
}

TEST(Transport, TcpCwndLimitsEffectiveRate) {
  ds::Simulator sim;
  dn::NetworkConfig cfg;
  cfg.transport.mode = dn::TransportMode::Tcp;
  cfg.transport.link.up_bps = 1e9;    // link is not the bottleneck
  cfg.transport.link.down_bps = 1e9;
  cfg.transport.mss_bytes = 1460;
  cfg.transport.initial_cwnd_mss = 10;
  cfg.transport.rtt = ds::millis(100);
  dn::Network net(sim, std::make_unique<dn::ConstantLatency>(ds::millis(10)),
                  cfg);
  Probe a, b;
  a.sim = b.sim = &sim;
  const auto ida = net.new_node_id();
  const auto idb = net.new_node_id();
  net.attach(ida, &a);
  net.attach(idb, &b);
  // First send: cwnd = 14600 bytes over a 100 ms RTT = 146 KB/s effective.
  // 146 KB then serializes for ~1 s regardless of the 1 GB/s link.
  net.send(ida, idb, 1, 146'000);
  sim.run_all();
  ASSERT_EQ(b.arrivals.size(), 1u);
  EXPECT_NEAR(ds::to_seconds(b.arrivals[0]), 1.01, 0.02);
}

// ---------------------------------------------------------------------------
// LinkSpec round-trip through fault injection
// ---------------------------------------------------------------------------

TEST(Transport, LinkSpecRoundTripsThroughBandwidthDegrade) {
  ds::Simulator sim;
  dn::NetworkConfig cfg;
  cfg.transport.mode = dn::TransportMode::Bandwidth;
  dn::Network net(sim, std::make_unique<dn::ConstantLatency>(ds::millis(1)),
                  cfg);
  const auto ida = net.new_node_id();
  Probe a;
  net.attach(ida, &a);
  // Custom spec with a bounded queue: the degrade scales capacities only
  // and heal must restore the spec verbatim, queue depth included.
  const dn::LinkSpec custom{2e6 / 8, 16e6 / 8, 64 * 1024};
  net.set_link(ida, custom);

  dn::FaultPlan plan;
  plan.bandwidth_degrade(ds::seconds(1), 0, 0.25, ds::seconds(2));
  dn::FaultTargets targets;
  targets.nodes = {ida};
  dn::FaultScheduler faults(net, plan, std::move(targets));
  faults.start();

  sim.run_until(ds::millis(1500));
  EXPECT_DOUBLE_EQ(net.link(ida).up_bps, custom.up_bps * 0.25);
  EXPECT_DOUBLE_EQ(net.link(ida).down_bps, custom.down_bps * 0.25);
  EXPECT_EQ(net.link(ida).queue_bytes, custom.queue_bytes);
  sim.run_until(ds::millis(2500));
  EXPECT_TRUE(net.link(ida) == custom);
}

// ---------------------------------------------------------------------------
// Sharded bandwidth byte-identity (the enable_sharding fix)
// ---------------------------------------------------------------------------

namespace {

/// A gossip mesh with Bandwidth transport over a sharded kernel; returns the
/// serialized trace. Identical across thread counts — the regression test
/// for enable_sharding's old model_bandwidth rejection.
std::string bandwidth_workload_trace(std::size_t shards, std::size_t threads,
                                     dn::TransportMode mode) {
  std::ostringstream out;
  {
    ds::JsonlTraceSink sink(out);
    ds::ShardedKernel kernel(/*seed=*/11, shards);
    kernel.set_trace(&sink);
    const std::size_t n = 24;
    dn::NetworkConfig cfg;
    cfg.transport.mode = mode;
    cfg.transport.link.up_bps = 1e6;
    cfg.transport.link.down_bps = 8e6;
    cfg.expected_nodes = n;
    cfg.track_spans = true;
    dn::Network netw(kernel.shard(0),
                     std::make_unique<dn::ConstantLatency>(ds::millis(10)),
                     cfg, nullptr);
    netw.enable_sharding(kernel);

    std::vector<dn::NodeId> addrs(n);
    for (std::size_t i = 0; i < n; ++i) addrs[i] = netw.new_node_id();
    for (std::size_t i = 0; i < n; ++i) netw.register_node(addrs[i]);
    ov::GossipConfig gcfg;
    gcfg.fanout = 3;
    std::vector<std::unique_ptr<ov::GossipNode>> nodes;
    for (std::size_t i = 0; i < n; ++i) {
      nodes.push_back(std::make_unique<ov::GossipNode>(netw, addrs[i], gcfg));
      std::vector<dn::NodeId> view;
      for (std::size_t d = 1; d <= 4; ++d) view.push_back(addrs[(i + d) % n]);
      nodes.back()->join(view);
    }
    netw.simulator_for(addrs[0]).post(ds::millis(1), [&] {
      nodes[0]->broadcast(/*rumor=*/1, /*payload_bytes=*/20'000);
    });
    kernel.run_until(ds::seconds(30), threads);
  }
  return out.str();
}

}  // namespace

TEST(Transport, ShardedBandwidthRunsAreByteIdenticalAcrossThreads) {
  const std::string t1 =
      bandwidth_workload_trace(4, 1, dn::TransportMode::Bandwidth);
  const std::string t2 =
      bandwidth_workload_trace(4, 2, dn::TransportMode::Bandwidth);
  const std::string t4 =
      bandwidth_workload_trace(4, 4, dn::TransportMode::Bandwidth);
  EXPECT_FALSE(t1.empty());
  EXPECT_EQ(t1, t2);
  EXPECT_EQ(t1, t4);
  // Bandwidth runs actually queue: at least one span must report a nonzero
  // queue_us (the 20 KB payloads serialize for 20 ms each at 1 MB/s).
  EXPECT_NE(t1.find("\"queue_us\":"), std::string::npos);
}

TEST(Transport, ShardedTcpRunsAreByteIdenticalAcrossThreads) {
  const std::string t1 = bandwidth_workload_trace(4, 1, dn::TransportMode::Tcp);
  const std::string t4 = bandwidth_workload_trace(4, 4, dn::TransportMode::Tcp);
  EXPECT_FALSE(t1.empty());
  EXPECT_EQ(t1, t4);
}

TEST(Transport, ShardedMatchesUnshardedSingleShard) {
  // shards=1 routes through the legacy deliver(); shards=4 through
  // deliver_sharded(). Same seed, same metrics totals is the cheap sanity
  // check that the two transport paths share arithmetic (traces differ in
  // msg_seq encoding, so compare totals, not bytes).
  const std::string a =
      bandwidth_workload_trace(1, 1, dn::TransportMode::Bandwidth);
  const std::string b =
      bandwidth_workload_trace(4, 1, dn::TransportMode::Bandwidth);
  const auto count = [](const std::string& s, const char* needle) {
    std::size_t c = 0, pos = 0;
    while ((pos = s.find(needle, pos)) != std::string::npos) {
      ++c;
      pos += 1;
    }
    return c;
  };
  EXPECT_EQ(count(a, "\"kind\":\"send\""), count(b, "\"kind\":\"send\""));
}

// ---------------------------------------------------------------------------
// TopologySpec factory
// ---------------------------------------------------------------------------

TEST(TopologySpec, ValidatesAndNamesTheOffendingField) {
  dn::TopologySpec spec;
  spec.nodes = 0;
  auto err = spec.validate();
  ASSERT_TRUE(err.has_value());
  EXPECT_NE(err->find("nodes"), std::string::npos);

  spec = dn::TopologySpec{.nodes = 50, .degree = 0};
  err = spec.validate();
  ASSERT_TRUE(err.has_value());
  EXPECT_NE(err->find("degree"), std::string::npos);

  spec = dn::TopologySpec{.kind = dn::TopologySpec::Kind::ErdosRenyi,
                          .nodes = 50,
                          .p = 1.5};
  err = spec.validate();
  ASSERT_TRUE(err.has_value());
  EXPECT_NE(err->find("p must be"), std::string::npos);

  EXPECT_THROW(spec.build(/*seed=*/1), std::invalid_argument);
}

TEST(TopologySpec, BuildIsSeedDeterministicAndMatchesFreeFunctions) {
  const dn::TopologySpec spec{.kind = dn::TopologySpec::Kind::Random,
                              .nodes = 60,
                              .degree = 5};
  const dn::AdjacencyList g1 = spec.build(/*seed=*/123);
  const dn::AdjacencyList g2 = spec.build(/*seed=*/123);
  EXPECT_EQ(g1, g2);
  // The factory is a veneer over the free functions: same Rng state, same
  // graph.
  ds::Rng rng(123);
  EXPECT_EQ(g1, dn::random_graph(60, 5, rng));
  EXPECT_TRUE(dn::is_connected(g1));
}

TEST(TopologySpec, EveryKindBuildsAConnectedModestGraph) {
  const std::vector<dn::TopologySpec> specs = {
      {.kind = dn::TopologySpec::Kind::Random, .nodes = 80, .degree = 5},
      {.kind = dn::TopologySpec::Kind::ErdosRenyi, .nodes = 80, .p = 0.15},
      {.kind = dn::TopologySpec::Kind::WattsStrogatz,
       .nodes = 80,
       .degree = 3,
       .p = 0.1},
      {.kind = dn::TopologySpec::Kind::BarabasiAlbert, .nodes = 80,
       .degree = 3},
  };
  for (const auto& spec : specs) {
    EXPECT_FALSE(spec.validate().has_value()) << topology_kind_name(spec.kind);
    const dn::AdjacencyList g = spec.build(/*seed=*/7);
    EXPECT_EQ(g.size(), 80u);
    EXPECT_TRUE(dn::is_connected(g)) << dn::topology_kind_name(spec.kind);
  }
}

TEST(TopologySpec, KindNamesRoundTrip) {
  using Kind = dn::TopologySpec::Kind;
  for (const Kind k : {Kind::Random, Kind::ErdosRenyi, Kind::WattsStrogatz,
                       Kind::BarabasiAlbert}) {
    const auto parsed = dn::topology_kind_from_name(dn::topology_kind_name(k));
    ASSERT_TRUE(parsed.has_value());
    EXPECT_EQ(*parsed, k);
  }
  EXPECT_FALSE(dn::topology_kind_from_name("ring_of_fire").has_value());
}

// ---------------------------------------------------------------------------
// Deprecated shims (the one place allowed to touch them)
// ---------------------------------------------------------------------------

TEST(Transport, DeprecatedNetworkConfigShimsFoldIntoTransport) {
  dn::NetworkConfig cfg;
  cfg.model_bandwidth = true;
  cfg.default_uplink_bps = 1e6;
  cfg.default_downlink_bps = 1e9;
  const dn::TransportConfig resolved = cfg.resolved_transport();
  EXPECT_EQ(resolved.mode, dn::TransportMode::Bandwidth);
  EXPECT_DOUBLE_EQ(resolved.link.up_bps, 1e6);
  EXPECT_DOUBLE_EQ(resolved.link.down_bps, 1e9);

  // End to end: the shimmed config behaves exactly like the new surface.
  ds::Simulator sim;
  dn::Network net(sim, std::make_unique<dn::ConstantLatency>(ds::millis(10)),
                  cfg);
  Probe a, b;
  a.sim = b.sim = &sim;
  const auto ida = net.new_node_id();
  const auto idb = net.new_node_id();
  net.attach(ida, &a);
  net.attach(idb, &b);
  net.send(ida, idb, 0, 1'000'000);  // 1 MB at 1 MB/s + 10 ms
  sim.run_all();
  ASSERT_EQ(b.arrivals.size(), 1u);
  EXPECT_NEAR(ds::to_seconds(b.arrivals[0]), 1.011, 0.01);
}

TEST(Transport, DeprecatedSetBandwidthShimPreservesQueueDepth) {
  ds::Simulator sim;
  dn::NetworkConfig cfg;
  cfg.transport.mode = dn::TransportMode::Bandwidth;
  dn::Network net(sim, std::make_unique<dn::ConstantLatency>(ds::millis(1)),
                  cfg);
  const auto ida = net.new_node_id();
  net.set_link(ida, dn::LinkSpec{1e6, 1e7, 32 * 1024});
  net.set_bandwidth(ida, 2e6, 2e7);
  EXPECT_DOUBLE_EQ(net.uplink_bps(ida), 2e6);
  EXPECT_DOUBLE_EQ(net.downlink_bps(ida), 2e7);
  EXPECT_EQ(net.link(ida).queue_bytes, 32u * 1024);
}

// ---------------------------------------------------------------------------
// Config validation
// ---------------------------------------------------------------------------

TEST(Transport, ConfigValidateNamesTheOffendingField) {
  dn::TransportConfig cfg;
  cfg.link.down_bps = -1;
  auto err = cfg.validate();
  ASSERT_TRUE(err.has_value());
  EXPECT_NE(err->find("down_bps"), std::string::npos);

  cfg = dn::TransportConfig{};
  cfg.mode = dn::TransportMode::Tcp;
  cfg.rtt = 0;
  err = cfg.validate();
  ASSERT_TRUE(err.has_value());
  EXPECT_NE(err->find("rtt"), std::string::npos);

  cfg = dn::TransportConfig{};
  cfg.mode = dn::TransportMode::Tcp;
  cfg.initial_cwnd_mss = 0;
  err = cfg.validate();
  ASSERT_TRUE(err.has_value());
  EXPECT_NE(err->find("initial_cwnd_mss"), std::string::npos);

  EXPECT_FALSE(dn::TransportConfig{}.validate().has_value());
}

TEST(Transport, ModeNamesRoundTrip) {
  using Mode = dn::TransportMode;
  for (const Mode m : {Mode::Latency, Mode::Bandwidth, Mode::Tcp}) {
    const auto parsed = dn::transport_mode_from_name(dn::transport_mode_name(m));
    ASSERT_TRUE(parsed.has_value());
    EXPECT_EQ(*parsed, m);
  }
  EXPECT_FALSE(dn::transport_mode_from_name("carrier_pigeon").has_value());
}
