// ShardedKernel contract tests: thread-count byte-identity of traces,
// cross-shard mailbox delivery at the lookahead boundary, the
// zero-lookahead sequential fallback, cancel semantics across shards, and
// clear()'s slot+generation teardown of outstanding cross-shard handles.
#include <gtest/gtest.h>

#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "net/latency.hpp"
#include "net/network.hpp"
#include "overlay/gossip.hpp"
#include "sim/sharding.hpp"
#include "sim/simulator.hpp"
#include "sim/time.hpp"
#include "sim/trace.hpp"

namespace ds = decentnet::sim;
namespace dn = decentnet::net;
namespace ov = decentnet::overlay;

namespace {

/// Collects records in memory for structural assertions.
class VecSink final : public ds::TraceSink {
 public:
  void record(const ds::TraceRecord& rec) override { records.push_back(rec); }
  std::vector<ds::TraceRecord> records;
};

/// A kernel-only workload that exercises every shard and the mailboxes:
/// per-shard re-posting chains, with every 4th step hopping to the next
/// shard at now + lookahead. Returns the serialized trace.
std::string kernel_workload_trace(std::size_t shards, std::size_t threads) {
  std::ostringstream out;
  {
    ds::JsonlTraceSink sink(out);
    ds::ShardedKernel kernel(/*seed=*/7, shards);
    const ds::SimDuration kWindow = ds::millis(5);
    kernel.set_lookahead(kWindow);
    kernel.set_trace(&sink);
    std::function<void(std::size_t, int)> step = [&](std::size_t s,
                                                     int remaining) {
      if (remaining <= 0) return;
      if (remaining % 4 == 0 && shards > 1) {
        const std::size_t dst = (s + 1) % shards;
        kernel.post_cross(dst, kernel.shard(s).now() + kWindow,
                          [&step, dst, remaining] { step(dst, remaining - 1); },
                          "test/hop");
      } else {
        kernel.shard(s).post(ds::millis(1),
                             [&step, s, remaining] { step(s, remaining - 1); },
                             "test/step");
      }
    };
    for (std::size_t s = 0; s < shards; ++s) {
      kernel.shard(s).post(ds::millis(1), [&step, s] { step(s, 20); },
                           "test/start");
    }
    kernel.run_until(ds::seconds(2), threads);
  }
  return out.str();
}

/// A network workload over a sharded kernel: a small gossip mesh with a
/// constant-latency model (lookahead = the constant). Returns the trace.
std::string gossip_workload_trace(std::size_t shards, std::size_t threads) {
  std::ostringstream out;
  {
    ds::JsonlTraceSink sink(out);
    ds::ShardedKernel kernel(/*seed=*/11, shards);
    kernel.set_trace(&sink);
    const std::size_t n = 24;
    dn::Network netw(kernel.shard(0),
                     std::make_unique<dn::ConstantLatency>(ds::millis(10)),
                     dn::NetworkConfig{.expected_nodes = n}, nullptr);
    netw.enable_sharding(kernel);
    EXPECT_EQ(kernel.lookahead(), ds::millis(10));

    std::vector<dn::NodeId> addrs(n);
    for (std::size_t i = 0; i < n; ++i) addrs[i] = netw.new_node_id();
    for (std::size_t i = 0; i < n; ++i) netw.register_node(addrs[i]);
    ov::GossipConfig cfg;
    cfg.fanout = 3;
    std::vector<std::unique_ptr<ov::GossipNode>> nodes;
    for (std::size_t i = 0; i < n; ++i) {
      nodes.push_back(std::make_unique<ov::GossipNode>(netw, addrs[i], cfg));
      std::vector<dn::NodeId> view;
      for (std::size_t d = 1; d <= 4; ++d) view.push_back(addrs[(i + d) % n]);
      nodes.back()->join(view);
    }
    netw.simulator_for(addrs[0]).post(ds::millis(1), [&] {
      nodes[0]->broadcast(/*rumor=*/1, /*payload_bytes=*/64);
    });
    kernel.run_until(ds::seconds(30), threads);
  }
  return out.str();
}

}  // namespace

TEST(Sharding, SingleShardMatchesPlainSimulator) {
  // S == 1 must be the legacy kernel bit-for-bit: same seed, same trace.
  std::ostringstream plain_out;
  {
    ds::JsonlTraceSink sink(plain_out);
    ds::Simulator simu(7);
    simu.set_trace(&sink);
    int fired = 0;
    for (int i = 0; i < 50; ++i) {
      simu.post(ds::millis(i % 7), [&fired] { ++fired; }, "test/step");
    }
    simu.run_until(ds::seconds(1));
    EXPECT_EQ(fired, 50);
  }
  std::ostringstream sharded_out;
  {
    ds::JsonlTraceSink sink(sharded_out);
    ds::ShardedKernel kernel(7, 1);
    kernel.set_trace(&sink);
    int fired = 0;
    for (int i = 0; i < 50; ++i) {
      kernel.shard(0).post(ds::millis(i % 7), [&fired] { ++fired; },
                           "test/step");
    }
    kernel.run_until(ds::seconds(1));
    EXPECT_EQ(fired, 50);
  }
  EXPECT_EQ(plain_out.str(), sharded_out.str());
}

TEST(Sharding, KernelTraceByteIdenticalAcrossThreadCounts) {
  const std::string t1 = kernel_workload_trace(4, 1);
  const std::string t2 = kernel_workload_trace(4, 2);
  const std::string t4 = kernel_workload_trace(4, 4);
  EXPECT_FALSE(t1.empty());
  EXPECT_EQ(t1, t2);
  EXPECT_EQ(t1, t4);
}

TEST(Sharding, NetworkTraceByteIdenticalAcrossThreadCounts) {
  const std::string t1 = gossip_workload_trace(4, 1);
  const std::string t2 = gossip_workload_trace(4, 2);
  const std::string t4 = gossip_workload_trace(4, 4);
  EXPECT_FALSE(t1.empty());
  // The mesh actually gossiped: the trace carries cross-shard sends.
  EXPECT_NE(t1.find("\"send\""), std::string::npos);
  EXPECT_EQ(t1, t2);
  EXPECT_EQ(t1, t4);
}

TEST(Sharding, CrossShardArrivesAtExactLookaheadBoundary) {
  // A parcel posted at exactly now + W (the earliest legal cross-shard
  // time) must fire at that time, not a window later and never clamped.
  ds::ShardedKernel kernel(3, 2);
  const ds::SimDuration kWindow = ds::millis(10);
  kernel.set_lookahead(kWindow);
  ds::SimTime fired_at = 0;
  std::uint32_t fired_on = ~0u;
  kernel.shard(0).post(ds::millis(25), [&] {
    kernel.post_cross(1, kernel.shard(0).now() + kWindow, [&] {
      fired_at = kernel.shard(1).now();
      fired_on = ds::ShardedKernel::current_shard();
    });
  });
  kernel.run_until(ds::seconds(1), 2);
  EXPECT_EQ(fired_at, ds::millis(35));
  EXPECT_EQ(fired_on, 1u);
}

TEST(Sharding, CrossShardChainKeepsExactTimesAcrossManyWindows) {
  // Ping-pong between two shards, always at the minimum legal distance;
  // every hop must land at exactly the previous time + W.
  ds::ShardedKernel kernel(3, 2);
  const ds::SimDuration kWindow = ds::millis(7);
  kernel.set_lookahead(kWindow);
  std::vector<ds::SimTime> hops;
  std::function<void(std::size_t, int)> hop = [&](std::size_t s, int left) {
    hops.push_back(kernel.shard(s).now());
    if (left == 0) return;
    const std::size_t dst = 1 - s;
    kernel.post_cross(dst, kernel.shard(s).now() + kWindow,
                      [&hop, dst, left] { hop(dst, left - 1); });
  };
  kernel.shard(0).post(0, [&hop] { hop(0, 20); });
  kernel.run_until(ds::seconds(1), 2);
  ASSERT_EQ(hops.size(), 21u);
  for (std::size_t i = 0; i < hops.size(); ++i) {
    EXPECT_EQ(hops[i], static_cast<ds::SimTime>(i) * kWindow);
  }
}

TEST(Sharding, ZeroLookaheadFallsBackSequentialWithWarning) {
  // A degenerate window (no lookahead configured) must still execute
  // correctly — sequential stepping — and say so exactly once.
  VecSink sink;
  ds::ShardedKernel kernel(5, 2);
  kernel.set_trace(&sink);
  EXPECT_TRUE(kernel.degenerate());
  ds::SimTime cross_at = 0;
  int local_fired = 0;
  kernel.shard(0).post(ds::millis(2), [&] {
    ++local_fired;
    kernel.post_cross(1, kernel.shard(0).now() + ds::millis(3),
                      [&] { cross_at = kernel.shard(1).now(); });
  });
  kernel.run_until(ds::seconds(1), 4);  // thread request must be ignored
  EXPECT_EQ(local_fired, 1);
  EXPECT_EQ(cross_at, ds::millis(5));
  std::size_t warns = 0;
  for (const auto& rec : sink.records) {
    if (std::string(rec.kind) == "warn") {
      ++warns;
      EXPECT_EQ(std::string(rec.tag), "sharding/zero_lookahead");
      EXPECT_EQ(rec.a, 2u);
    }
  }
  EXPECT_EQ(warns, 1u);
  // A second run must not warn again.
  kernel.run_until(ds::seconds(2), 4);
  std::size_t warns2 = 0;
  for (const auto& rec : sink.records) {
    if (std::string(rec.kind) == "warn") ++warns2;
  }
  EXPECT_EQ(warns2, 1u);
}

TEST(Sharding, CancelAcrossShardsBetweenRuns) {
  // Handles to events on any shard stay cancellable from the driver thread
  // while no window is executing.
  ds::ShardedKernel kernel(9, 4);
  kernel.set_lookahead(ds::millis(10));
  int fired = 0;
  auto h1 = kernel.shard(1).schedule(ds::millis(50), [&] { ++fired; });
  auto h3 = kernel.shard(3).schedule(ds::millis(50), [&] { ++fired; });
  auto keep = kernel.shard(2).schedule(ds::millis(50), [&] { ++fired; });
  EXPECT_TRUE(h1.valid());
  h1.cancel();  // before the first run
  kernel.run_until(ds::millis(20), 4);
  EXPECT_TRUE(h3.valid());
  h3.cancel();  // between runs
  EXPECT_FALSE(h3.valid());
  kernel.run_until(ds::millis(100), 4);
  EXPECT_EQ(fired, 1);  // only `keep`
  EXPECT_FALSE(keep.valid());  // fired => invalid
}

TEST(Sharding, ClearInvalidatesOutstandingCrossShardHandles) {
  // The teardown regression: clear() must invalidate handles held across
  // shards (slot+generation contract) and drop undelivered mailbox parcels.
  ds::ShardedKernel kernel(13, 3);
  kernel.set_lookahead(ds::millis(10));
  int fired = 0;
  auto h0 = kernel.shard(0).schedule(ds::millis(5), [&] { ++fired; });
  auto h2 = kernel.shard(2).schedule(ds::millis(500), [&] { ++fired; });
  // An undrained parcel in the (0 -> 1) mailbox.
  kernel.post_cross(1, ds::millis(20), [&] { ++fired; });
  EXPECT_GT(kernel.pending_events(), 0u);

  kernel.clear();
  EXPECT_FALSE(h0.valid());
  EXPECT_FALSE(h2.valid());
  EXPECT_EQ(kernel.pending_events(), 0u);
  kernel.run_until(ds::seconds(1), 3);
  EXPECT_EQ(fired, 0);  // parcels were dropped, events released

  // Slot-reuse staleness: new events recycle the cleared slots; the stale
  // pre-clear handles must read invalid and their cancel() must be a no-op
  // on the new occupants.
  int refired = 0;
  auto n0 = kernel.shard(0).schedule(ds::millis(5), [&] { ++refired; });
  auto n2 = kernel.shard(2).schedule(ds::millis(5), [&] { ++refired; });
  EXPECT_FALSE(h0.valid());
  EXPECT_FALSE(h2.valid());
  h0.cancel();
  h2.cancel();
  EXPECT_TRUE(n0.valid());
  EXPECT_TRUE(n2.valid());
  kernel.run_until(ds::seconds(2), 3);
  EXPECT_EQ(refired, 2);
}

TEST(Sharding, PerShardStatsAreDeterministic) {
  // sim/shard/* counters: fired events sum to the kernel total, mailbox
  // out == in summed over shards, and none of it depends on threads.
  auto run = [](std::size_t threads) {
    ds::ShardedKernel kernel(17, 4);
    kernel.set_lookahead(ds::millis(5));
    std::function<void(std::size_t, int)> step = [&](std::size_t s,
                                                     int remaining) {
      if (remaining <= 0) return;
      if (remaining % 3 == 0) {
        const std::size_t dst = (s + 1) % 4;
        kernel.post_cross(dst, kernel.shard(s).now() + ds::millis(5),
                          [&step, dst, remaining] { step(dst, remaining - 1); });
      } else {
        kernel.shard(s).post(ds::millis(1),
                             [&step, s, remaining] { step(s, remaining - 1); });
      }
    };
    for (std::size_t s = 0; s < 4; ++s) {
      kernel.shard(s).post(ds::millis(1), [&step, s] { step(s, 12); });
    }
    kernel.run_until(ds::seconds(1), threads);
    ds::MetricRegistry merged;
    kernel.merge_metrics_into(merged);
    std::uint64_t fired = 0, mail_in = 0, mail_out = 0;
    for (std::size_t s = 0; s < 4; ++s) {
      const std::string p = "sim/shard/" + std::to_string(s) + "/";
      fired += merged.counter(p + "fired").value();
      mail_in += merged.counter(p + "mail_in").value();
      mail_out += merged.counter(p + "mail_out").value();
    }
    EXPECT_EQ(fired, kernel.total_events_processed());
    EXPECT_EQ(mail_in, mail_out);
    EXPECT_GT(mail_out, 0u);
    return std::make_tuple(fired, mail_out, kernel.windows_run());
  };
  EXPECT_EQ(run(1), run(4));
}
