// Proof-of-stake model and layer-2 payment channels (the paper's §III-C
// asides: proof-of-X alternatives and Lightning/Plasma-style off-chain
// designs).
#include <gtest/gtest.h>

#include <numeric>

#include "chain/channels.hpp"
#include "chain/pos.hpp"
#include "sim/stats.hpp"

namespace dc = decentnet::chain;
namespace ds = decentnet::sim;

// --- Proof of stake ----------------------------------------------------------

TEST(Pos, SelectionIsStakeProportional) {
  ds::Rng rng(1);
  std::vector<double> stakes{10, 30, 60};
  std::vector<int> wins(3, 0);
  const int slots = 60000;
  for (int i = 0; i < slots; ++i) {
    ++wins[dc::pos_select_validator(stakes, rng)];
  }
  EXPECT_NEAR(wins[0] / static_cast<double>(slots), 0.10, 0.01);
  EXPECT_NEAR(wins[1] / static_cast<double>(slots), 0.30, 0.01);
  EXPECT_NEAR(wins[2] / static_cast<double>(slots), 0.60, 0.01);
}

TEST(Pos, UniversalStakingIsShareStable) {
  // When everyone stakes, compounding rewards are a fair lottery: the Gini
  // coefficient should not move systematically.
  dc::StakeSimConfig cfg;
  cfg.validators = 400;
  cfg.slots = 100'000;
  ds::Rng rng0(7);
  std::vector<double> initial(cfg.validators);
  for (auto& s : initial) s = rng0.pareto(1.0, cfg.initial_pareto_alpha);
  const double gini_initial_like = ds::gini(initial);
  ds::Rng rng(7);
  const auto final_stake = dc::simulate_stake_concentration(cfg, rng);
  EXPECT_NEAR(ds::gini(final_stake), gini_initial_like, 0.1);
}

TEST(Pos, MinimumStakeConcentrates) {
  dc::StakeSimConfig open_cfg;
  open_cfg.validators = 400;
  open_cfg.slots = 200'000;
  dc::StakeSimConfig gated = open_cfg;
  gated.min_stake_rel = 2.0;           // only above-mean holders may stake
  gated.non_staking_fraction = 0.3;    // the small tail cannot afford to
  ds::Rng r1(9), r2(9);
  const auto open_stake = dc::simulate_stake_concentration(open_cfg, r1);
  const auto gated_stake = dc::simulate_stake_concentration(gated, r2);
  EXPECT_GT(ds::gini(gated_stake), ds::gini(open_stake));
  EXPECT_LE(ds::nakamoto_coefficient(gated_stake),
            ds::nakamoto_coefficient(open_stake));
}

TEST(Pos, AttackCostCollapsesWithRecovery) {
  dc::PosAttackParams p;
  p.total_stake_value_usd = 1e9;
  p.control_fraction = 0.5;
  p.recovery_fraction = 0.9;
  const auto cost = dc::pos_attack_cost(p);
  EXPECT_DOUBLE_EQ(cost.outlay_usd, 5e8);
  EXPECT_DOUBLE_EQ(cost.net_cost_usd, 5e7);
  // Houy's limit: perfect hedging makes the attack free.
  p.recovery_fraction = 1.0;
  EXPECT_DOUBLE_EQ(dc::pos_attack_cost(p).net_cost_usd, 0.0);
}

TEST(Pos, PowAttackBurnsRealResources) {
  dc::PowAttackParams p;
  const auto cost = dc::pow_attack_cost(p);
  EXPECT_GT(cost.outlay_usd, 0);
  // Even with hardware resale, the power bill and stranded ASICs remain.
  EXPECT_GT(cost.net_cost_usd, cost.outlay_usd * 0.5);
}

// --- Payment channels ----------------------------------------------------------

TEST(Channels, DirectPaymentShiftsBalance) {
  dc::ChannelNetwork net(2);
  net.open_channel(0, 1, 100, 100);
  const auto r = net.pay(0, 1, 60);
  ASSERT_TRUE(r.ok);
  EXPECT_EQ(r.hops, 1u);
  EXPECT_EQ(net.spendable(0), 40);
  EXPECT_EQ(net.spendable(1), 160);
}

TEST(Channels, PaymentFailsBeyondCapacity) {
  dc::ChannelNetwork net(2);
  net.open_channel(0, 1, 100, 0);
  EXPECT_FALSE(net.pay(0, 1, 150).ok);
  EXPECT_TRUE(net.pay(0, 1, 100).ok);
  // Direction matters: 1 can pay back what it received, and no more.
  EXPECT_FALSE(net.pay(1, 0, 200).ok);
  EXPECT_TRUE(net.pay(1, 0, 100).ok);
}

TEST(Channels, MultiHopRoutesThroughIntermediary) {
  dc::ChannelNetwork net(3);
  net.open_channel(0, 1, 100, 100);
  net.open_channel(1, 2, 100, 100);
  const auto r = net.pay(0, 2, 50);
  ASSERT_TRUE(r.ok);
  EXPECT_EQ(r.hops, 2u);
  // The intermediary's total is conserved, shifted between its channels.
  EXPECT_EQ(net.spendable(1), 200);
  EXPECT_EQ(net.spendable(2), 150);
  const auto load = net.forwarding_load();
  EXPECT_EQ(load[1], 1.0);
}

TEST(Channels, RoutingAvoidsDepletedEdges) {
  // 0-1-3 depleted; 0-2-3 has capacity: BFS must take the open route.
  dc::ChannelNetwork net(4);
  net.open_channel(0, 1, 10, 0);
  net.open_channel(1, 3, 0, 10);   // 1 cannot forward to 3
  net.open_channel(0, 2, 100, 0);
  net.open_channel(2, 3, 100, 0);
  const auto r = net.pay(0, 3, 50);
  ASSERT_TRUE(r.ok);
  ASSERT_EQ(r.path.size(), 3u);
  EXPECT_EQ(r.path[1], 2u);
}

TEST(Channels, ConservationOfFunds) {
  ds::Rng rng(3);
  auto net = dc::make_mesh_topology(30, 3, 1000, rng);
  std::int64_t total_before = 0;
  for (const auto& ch : net.channels()) total_before += ch.capacity();
  for (int i = 0; i < 500; ++i) {
    net.pay(rng.uniform_int(30), rng.uniform_int(30),
            static_cast<std::int64_t>(1 + rng.uniform_int(200ul)));
  }
  std::int64_t total_after = 0;
  for (const auto& ch : net.channels()) total_after += ch.capacity();
  EXPECT_EQ(total_before, total_after);
}

TEST(Channels, HubTopologyConcentratesForwarding) {
  ds::Rng rng(5);
  auto hub = dc::make_hub_topology(200, 3, 500, 100000, rng);
  auto mesh = dc::make_mesh_topology(200, 4, 500, rng);
  int hub_ok = 0, mesh_ok = 0;
  for (int i = 0; i < 2000; ++i) {
    const auto a = rng.uniform_int(200);
    auto b = rng.uniform_int(200);
    if (b == a) b = (b + 1) % 200;
    const std::int64_t amount = 1 + static_cast<std::int64_t>(rng.uniform_int(50ul));
    if (hub.pay(a, b, amount).ok) ++hub_ok;
    if (mesh.pay(a, b, amount).ok) ++mesh_ok;
  }
  EXPECT_GT(hub_ok, 1500);
  const double hub_gini = ds::gini(hub.forwarding_load());
  const double mesh_gini = ds::gini(mesh.forwarding_load());
  EXPECT_GT(hub_gini, mesh_gini)
      << "hub-and-spoke must concentrate routing power";
  EXPECT_LE(ds::nakamoto_coefficient(hub.forwarding_load()), 3u);
}

TEST(Channels, MeshPaymentsSucceedAndSpreadLoad) {
  ds::Rng rng(6);
  auto mesh = dc::make_mesh_topology(100, 4, 1000, rng);
  int ok = 0;
  double total_hops = 0;
  for (int i = 0; i < 1000; ++i) {
    const auto a = rng.uniform_int(100);
    auto b = rng.uniform_int(100);
    if (b == a) b = (b + 1) % 100;
    const auto r = mesh.pay(a, b, 10);
    if (r.ok) {
      ++ok;
      total_hops += static_cast<double>(r.hops);
    }
  }
  EXPECT_GT(ok, 900);
  EXPECT_LT(total_hops / ok, 6.0);  // small-world-ish diameter
}
