// Golden-trace pins for the relay hot paths.
//
// The payloads travelling these paths were migrated from per-neighbor
// make_shared copies onto sim::Shared<T> (one refcounted allocation per
// broadcast). The kernel/net trace of a same-seed run is a pure function of
// event order, message order, and wire sizes — none of which the payload
// representation may change. These hashes were captured from the pre-Shared
// tree; the migrated relay code must reproduce the byte-identical JSONL.
//
// To re-derive after an *intentional* protocol change, run with
// DECENTNET_PRINT_GOLDEN=1 and paste the printed constants.
#include <gtest/gtest.h>

#include <cstdlib>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "chain/miner.hpp"
#include "chain/node.hpp"
#include "chain/wallet.hpp"
#include "net/network.hpp"
#include "net/topology.hpp"
#include "overlay/flood.hpp"
#include "overlay/gossip.hpp"
#include "overlay/kademlia.hpp"
#include "sim/trace.hpp"

namespace dc = decentnet::chain;
namespace dn = decentnet::net;
namespace do_ = decentnet::overlay;
namespace ds = decentnet::sim;

namespace {

std::uint64_t fnv1a(const std::string& s) {
  std::uint64_t h = 1469598103934665603ull;
  for (const unsigned char c : s) {
    h ^= c;
    h *= 1099511628211ull;
  }
  return h;
}

struct GoldenCheck {
  const char* name;
  std::uint64_t hash;
  std::uint64_t records;
};

void check(const GoldenCheck& want, const std::string& trace,
           std::uint64_t records) {
  if (std::getenv("DECENTNET_PRINT_GOLDEN") != nullptr) {
    std::printf("GOLDEN %s hash=%lluull records=%llu\n", want.name,
                static_cast<unsigned long long>(fnv1a(trace)),
                static_cast<unsigned long long>(records));
    return;
  }
  EXPECT_EQ(records, want.records) << want.name;
  EXPECT_EQ(fnv1a(trace), want.hash) << want.name << ": relay trace diverged "
                                     << "from the pre-Shared<T> golden";
}

}  // namespace

TEST(RelayGolden, GossipBroadcastTrace) {
  std::ostringstream out;
  ds::JsonlTraceSink sink(out);
  ds::Simulator sim(71);
  sim.set_trace(&sink);
  dn::Network net(sim, std::make_unique<dn::LogNormalLatency>(ds::millis(60),
                                                              0.3),
                  dn::NetworkConfig{.expected_nodes = 16});
  do_::GossipConfig cfg;
  cfg.fanout = 4;
  cfg.view_size = 8;
  std::vector<dn::NodeId> addrs;
  for (int i = 0; i < 16; ++i) addrs.push_back(net.new_node_id());
  std::vector<std::unique_ptr<do_::GossipNode>> nodes;
  for (int i = 0; i < 16; ++i) {
    nodes.push_back(std::make_unique<do_::GossipNode>(net, addrs[i], cfg));
  }
  for (int i = 0; i < 16; ++i) {
    std::vector<dn::NodeId> view;
    for (int k = 1; k <= 5; ++k) view.push_back(addrs[(i + k) % 16]);
    nodes[i]->join(view);
  }
  sim.run_until(ds::seconds(5));
  nodes[0]->broadcast(/*rumor=*/42, /*payload_bytes=*/1024);
  sim.run_until(ds::seconds(40));
  // Re-derived when shuffles grew anti-entropy rumor piggybacks (wire sizes
  // and absorb-side deliveries changed by design).
  check({"gossip", 2630443463389947157ull, 720}, out.str(),
        sink.records_written());
}

TEST(RelayGolden, FloodQueryTrace) {
  std::ostringstream out;
  ds::JsonlTraceSink sink(out);
  ds::Simulator sim(72);
  sim.set_trace(&sink);
  dn::Network net(sim, std::make_unique<dn::ConstantLatency>(ds::millis(40)),
                  dn::NetworkConfig{.expected_nodes = 12});
  std::vector<dn::NodeId> addrs;
  for (int i = 0; i < 12; ++i) addrs.push_back(net.new_node_id());
  std::vector<std::unique_ptr<do_::GnutellaNode>> nodes;
  ds::Rng rng(5);
  const auto adj = dn::random_graph(12, 3, rng);
  for (int i = 0; i < 12; ++i) {
    nodes.push_back(
        std::make_unique<do_::GnutellaNode>(net, addrs[i], do_::FloodConfig{}));
  }
  for (int i = 0; i < 12; ++i) {
    std::vector<dn::NodeId> nbrs;
    for (std::size_t j : adj[static_cast<std::size_t>(i)]) {
      nbrs.push_back(addrs[j]);
    }
    nodes[i]->join(std::move(nbrs));
  }
  nodes[7]->add_content(/*item=*/99);
  bool found = false;
  nodes[0]->query(99, [&](do_::QueryOutcome o) { found = o.found; });
  sim.run_until(ds::seconds(30));
  EXPECT_TRUE(found);
  check({"flood", 18214630370392559053ull, 191}, out.str(),
        sink.records_written());
}

TEST(RelayGolden, BlockAndTxRelayTrace) {
  for (const bool compact : {false, true}) {
    std::ostringstream out;
    ds::JsonlTraceSink sink(out);
    ds::Simulator sim(73);
    sim.set_trace(&sink);
    dn::Network net(sim, std::make_unique<dn::ConstantLatency>(ds::millis(50)),
                    dn::NetworkConfig{.expected_nodes = 8});
    dc::ChainParams params;
    params.retarget_window = 0;
    params.initial_difficulty = 1e6;
    dc::Wallet alice = dc::Wallet::from_seed(0xA11CE);
    dc::Wallet bob = dc::Wallet::from_seed(0xB0B);
    std::vector<std::pair<decentnet::crypto::PublicKey, dc::Amount>> premine;
    for (int i = 0; i < 16; ++i) premine.emplace_back(alice.address(), 10000);
    const dc::BlockPtr genesis =
        dc::make_genesis_multi(premine, params.initial_difficulty);
    std::vector<dn::NodeId> addrs;
    for (int i = 0; i < 8; ++i) addrs.push_back(net.new_node_id());
    ds::Rng rng(9);
    const auto adj = dn::random_graph(8, 3, rng);
    std::vector<std::unique_ptr<dc::FullNode>> nodes;
    for (int i = 0; i < 8; ++i) {
      nodes.push_back(
          std::make_unique<dc::FullNode>(net, addrs[i], params, genesis));
      nodes.back()->set_compact_relay(compact);
      std::vector<dn::NodeId> nbrs;
      for (std::size_t j : adj[static_cast<std::size_t>(i)]) {
        nbrs.push_back(addrs[j]);
      }
      nodes.back()->connect(std::move(nbrs));
    }
    // Seed mempools over the wire, then relay one mined block (full body or
    // BIP152-compact, both migrated paths).
    for (std::uint64_t k = 0; k < 6; ++k) {
      const auto tx = alice.pay(nodes[0]->utxo(), bob.address(), 500, 10,
                                /*nonce=*/k, &rng);
      ASSERT_TRUE(tx.has_value());
      nodes[0]->submit_transaction(*tx);
    }
    sim.run_until(ds::seconds(10));
    const dc::Block tmpl =
        nodes[0]->make_block_template(bob.address(), /*nonce=*/1234);
    nodes[0]->submit_block(std::make_shared<const dc::Block>(tmpl));
    sim.run_until(ds::seconds(30));
    for (const auto& n : nodes) {
      EXPECT_EQ(n->tree().best_height(), 1u);
    }
    if (compact) {
      check({"chain_compact", 1343599758379722992ull, 738}, out.str(),
            sink.records_written());
    } else {
      check({"chain_full", 5820887779470391540ull, 738}, out.str(),
            sink.records_written());
    }
  }
}

// Pins the whole per-node fault surface — churn attach/detach, overlapping
// partitions, latency penalties, unreachability, loss, duplication and
// reordering — through one seeded gossip run. Captured on the hash-map peer
// table; the SoA NodeTable migration must reproduce it byte for byte (the
// delivery pipeline's RNG draw order and trace emission may not move).
TEST(RelayGolden, FaultSurfaceTrace) {
  std::ostringstream out;
  ds::JsonlTraceSink sink(out);
  ds::Simulator sim(75);
  sim.set_trace(&sink);
  dn::Network net(sim, std::make_unique<dn::LogNormalLatency>(ds::millis(50),
                                                              0.3),
                  dn::NetworkConfig{.expected_nodes = 12});
  net.set_drop_probability(0.05);
  do_::GossipConfig cfg;
  cfg.fanout = 3;
  cfg.view_size = 6;
  std::vector<dn::NodeId> addrs;
  for (int i = 0; i < 12; ++i) addrs.push_back(net.new_node_id());
  std::vector<std::unique_ptr<do_::GossipNode>> nodes;
  for (int i = 0; i < 12; ++i) {
    nodes.push_back(std::make_unique<do_::GossipNode>(net, addrs[i], cfg));
  }
  for (int i = 0; i < 12; ++i) {
    std::vector<dn::NodeId> view;
    for (int k = 1; k <= 4; ++k) view.push_back(addrs[(i + k) % 12]);
    nodes[i]->join(view);
  }
  // Per-node fault state: penalties on two nodes, one NATed node, and two
  // overlapping named partitions installed (and one healed) mid-run.
  net.set_latency_penalty(addrs[3], ds::millis(30));
  net.set_latency_penalty(addrs[7], ds::millis(90));
  net.set_unreachable(addrs[5], true);
  net.add_partition("left", {{addrs[0].value, addrs[1].value, addrs[2].value}});
  net.add_partition("odd", {{addrs[1].value, addrs[3].value, addrs[9].value}});
  sim.run_until(ds::seconds(5));
  nodes[0]->broadcast(/*rumor=*/7, /*payload_bytes=*/256);
  sim.run_until(ds::seconds(12));
  net.remove_partition("left");
  net.set_duplicate_probability(0.1);
  net.set_reorder_jitter(ds::millis(20));
  // Churn: two nodes flap; their dense indices must survive the round trip.
  nodes[4]->leave();
  nodes[8]->leave();
  sim.run_until(ds::seconds(18));
  nodes[4]->join({addrs[5], addrs[6], addrs[7]});
  nodes[8]->join({addrs[9], addrs[10], addrs[11]});
  nodes[2]->broadcast(/*rumor=*/8, /*payload_bytes=*/256);
  sim.run_until(ds::seconds(40));
  // Re-derived when shuffles grew anti-entropy rumor piggybacks and the
  // empty-view bootstrap re-seed (rejoining flapped nodes now re-link).
  check({"fault_surface", 14910320376708534100ull, 415}, out.str(),
        sink.records_written());
}

TEST(RelayGolden, KademliaLookupTrace) {
  std::ostringstream out;
  ds::JsonlTraceSink sink(out);
  ds::Simulator sim(74);
  sim.set_trace(&sink);
  dn::Network net(sim, std::make_unique<dn::LogNormalLatency>(ds::millis(80),
                                                              0.4),
                  dn::NetworkConfig{.expected_nodes = 24});
  do_::KademliaConfig cfg;
  std::vector<std::unique_ptr<do_::KademliaNode>> nodes;
  for (int i = 0; i < 24; ++i) {
    nodes.push_back(std::make_unique<do_::KademliaNode>(net, net.new_node_id(),
                                                        cfg));
  }
  nodes[0]->join({});
  for (int i = 1; i < 24; ++i) {
    nodes[i]->join({{nodes[0]->id(), nodes[0]->addr()}});
    sim.run_until(sim.now() + ds::seconds(2));
  }
  sim.run_until(sim.now() + ds::seconds(30));
  int done = 0;
  for (int q = 0; q < 5; ++q) {
    const do_::Key target =
        decentnet::crypto::sha256("golden-" + std::to_string(q));
    nodes[static_cast<std::size_t>(3 * q + 1)]->lookup(
        target, [&](do_::LookupResult) { ++done; });
    sim.run_until(sim.now() + ds::seconds(20));
  }
  EXPECT_EQ(done, 5);
  // One store fans the same value out to the k closest nodes (migrated
  // shared-payload path).
  nodes[2]->store(decentnet::crypto::sha256("golden-store"), "value-bytes");
  sim.run_until(sim.now() + ds::seconds(20));
  check({"kademlia", 16864403088706855886ull, 2000}, out.str(),
        sink.records_written());
}
