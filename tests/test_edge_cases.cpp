// Boundary and corner cases across modules: empty inputs, single-element
// populations, exhausted capacity, reorged-out history, hostile parameters.
#include <gtest/gtest.h>

#include <memory>
#include <stdexcept>

#include "chain/channels.hpp"
#include "chain/light.hpp"
#include "chain/miner.hpp"
#include "chain/node.hpp"
#include "chain/wallet.hpp"
#include "net/churn.hpp"
#include "net/network.hpp"
#include "overlay/gossip.hpp"
#include "overlay/kademlia.hpp"
#include "sim/metrics.hpp"
#include "sim/stats.hpp"

namespace dc = decentnet::chain;
namespace dn = decentnet::net;
namespace ds = decentnet::sim;
namespace ov = decentnet::overlay;

// --- sim ------------------------------------------------------------------------

TEST(EdgeCases, EmptyHistogramIsZeroEverywhere) {
  ds::Histogram h;
  EXPECT_EQ(h.count(), 0u);
  EXPECT_DOUBLE_EQ(h.percentile(50), 0);
  EXPECT_DOUBLE_EQ(h.mean(), 0);
  EXPECT_DOUBLE_EQ(h.stddev(), 0);
  EXPECT_DOUBLE_EQ(h.fraction_below(1.0), 0);
  h.record(5);
  h.clear();
  EXPECT_EQ(h.count(), 0u);
}

TEST(EdgeCases, StatsOnEmptyAndDegenerateInputs) {
  EXPECT_DOUBLE_EQ(ds::gini({}), 0);
  EXPECT_DOUBLE_EQ(ds::gini({0, 0, 0}), 0);
  EXPECT_EQ(ds::nakamoto_coefficient({}), 0u);
  EXPECT_EQ(ds::nakamoto_coefficient({5}), 1u);
  EXPECT_DOUBLE_EQ(ds::shannon_entropy({}), 0);
  EXPECT_DOUBLE_EQ(ds::top_k_share({1, 2, 3}, 0), 0);
  EXPECT_DOUBLE_EQ(ds::top_k_share({1, 2, 3}, 99), 1.0);
}

TEST(EdgeCases, RngRejectsNonPositiveRates) {
  ds::Rng rng(1);
  EXPECT_THROW(rng.exponential(0), std::invalid_argument);
  EXPECT_THROW(rng.exponential(-1), std::invalid_argument);
  EXPECT_THROW(rng.pareto(0, 1), std::invalid_argument);
  EXPECT_THROW(rng.weibull(1, 0), std::invalid_argument);
  EXPECT_THROW(rng.weighted_index({}), std::invalid_argument);
  EXPECT_THROW(rng.weighted_index({0.0, 0.0}), std::invalid_argument);
}

TEST(EdgeCases, PeriodicWithNonPositivePeriodThrows) {
  ds::Simulator sim;
  EXPECT_THROW(sim.schedule_periodic(0, 0, [] {}), std::invalid_argument);
}

// --- net ------------------------------------------------------------------------

TEST(EdgeCases, UnreachableNodeCanSendButNotReceive) {
  ds::Simulator sim;
  dn::Network net(sim, std::make_unique<dn::ConstantLatency>(ds::millis(1)));
  struct Probe : dn::Host {
    int got = 0;
    void handle_message(const dn::Message&) override { ++got; }
  } a, b;
  const auto ida = net.new_node_id();
  const auto idb = net.new_node_id();
  net.attach(ida, &a);
  net.attach(idb, &b);
  net.set_unreachable(ida, true);
  net.send(ida, idb, 1, 8);  // NATed node can still send
  net.send(idb, ida, 2, 8);  // but never receives
  sim.run_all();
  EXPECT_EQ(b.got, 1);
  EXPECT_EQ(a.got, 0);
  net.set_unreachable(ida, false);
  net.send(idb, ida, 3, 8);
  sim.run_all();
  EXPECT_EQ(a.got, 1);
}

TEST(EdgeCases, ChurnDriverWithZeroPeers) {
  ds::Simulator sim;
  dn::ChurnDriver churn(
      sim, 0, dn::ChurnConfig{}, [](std::size_t) {}, [](std::size_t) {});
  churn.start();
  sim.run_until(ds::minutes(1));
  EXPECT_EQ(churn.online_count(), 0u);
}

// --- overlays ---------------------------------------------------------------------

TEST(EdgeCases, KademliaLookupWithEmptyTableCompletes) {
  ds::Simulator sim;
  dn::Network net(sim, std::make_unique<dn::ConstantLatency>(ds::millis(1)));
  ov::KademliaNode lonely(net, net.new_node_id(), ov::KademliaConfig{});
  lonely.join({});
  bool done = false;
  lonely.lookup(decentnet::crypto::sha256("anything"),
                [&](ov::LookupResult r) {
                  done = true;
                  EXPECT_TRUE(r.closest.empty());
                });
  sim.run_until(ds::minutes(1));
  EXPECT_TRUE(done);
}

TEST(EdgeCases, GossipNodeAloneDoesNotCrash) {
  ds::Simulator sim;
  dn::Network net(sim, std::make_unique<dn::ConstantLatency>(ds::millis(1)));
  ov::GossipNode solo(net, net.new_node_id(), ov::GossipConfig{});
  solo.join({});
  solo.broadcast(7, 16);
  sim.run_until(ds::minutes(2));
  EXPECT_TRUE(solo.has_seen(7));
}

// --- chain ------------------------------------------------------------------------

TEST(EdgeCases, WalletPayRejectsNonPositiveAmount) {
  const dc::Wallet w = dc::Wallet::from_seed(0xEC1);
  dc::UtxoSet utxo;
  const auto genesis = dc::make_genesis_multi({{w.address(), 100}}, 1.0);
  (void)utxo.apply_block(*genesis, 0);
  EXPECT_FALSE(w.pay(utxo, w.address(), 0, 0).has_value());
  EXPECT_FALSE(w.pay(utxo, w.address(), -5, 0).has_value());
}

TEST(EdgeCases, LightClientProofFailsForReorgedOutTransaction) {
  // Build two nodes; a tx confirms on a short branch that later loses.
  ds::Simulator sim(9);
  dn::Network net(sim, std::make_unique<dn::ConstantLatency>(ds::millis(5)));
  dc::ChainParams params;
  params.retarget_window = 0;
  params.initial_difficulty = 1e6;
  const dc::Wallet alice = dc::Wallet::from_seed(0xEC2);
  const dc::Wallet bob = dc::Wallet::from_seed(0xEC3);
  const auto genesis =
      dc::make_genesis_multi({{alice.address(), 5000}}, 1e6);
  dc::FullNode node(net, net.new_node_id(), params, genesis);
  dc::LightNode phone(net, net.new_node_id());
  phone.set_server(node.addr());
  node.add_light_client(phone.addr());

  // Branch A: one block containing alice->bob.
  const auto tx = alice.pay(node.utxo(), bob.address(), 1000, 0);
  ASSERT_TRUE(tx.has_value());
  node.submit_transaction(*tx);
  dc::Block a1 = node.make_block_template(bob.address(), 1);
  ASSERT_TRUE(node.submit_block(std::make_shared<const dc::Block>(a1)));
  sim.run_until(sim.now() + ds::seconds(5));

  // Branch B: two empty blocks from genesis take over (more work).
  dc::BlockId prev = genesis->id();
  for (int i = 0; i < 2; ++i) {
    dc::Block b;
    b.header.prev = prev;
    b.header.difficulty = params.initial_difficulty;
    b.header.timestamp = sim.now();
    b.txs.push_back(dc::make_coinbase(bob.address(), params.block_reward,
                                      static_cast<std::uint64_t>(100 + i)));
    b.header.merkle_root = b.compute_merkle_root();
    auto ptr = std::make_shared<const dc::Block>(std::move(b));
    ASSERT_TRUE(node.submit_block(ptr));
    prev = ptr->id();
  }
  sim.run_until(sim.now() + ds::seconds(5));
  EXPECT_EQ(node.tree().best_height(), 2u);
  EXPECT_EQ(node.utxo().balance_of(bob.address()),
            2 * params.block_reward)
      << "the reorged-out payment must be gone from the UTXO";

  // The full node no longer serves a proof for the orphaned tx.
  bool done = false;
  phone.verify_inclusion(tx->id(), [&](bool ok) {
    done = true;
    EXPECT_FALSE(ok);
  });
  sim.run_until(sim.now() + ds::seconds(5));
  EXPECT_TRUE(done);
}

TEST(EdgeCases, MinerStopsCleanly) {
  ds::Simulator sim(3);
  dn::Network net(sim, std::make_unique<dn::ConstantLatency>(ds::millis(1)));
  dc::ChainParams params;
  params.retarget_window = 0;
  params.initial_difficulty = 1e5;
  const dc::Wallet w = dc::Wallet::from_seed(0xEC4);
  dc::FullNode node(net, net.new_node_id(), params,
                    dc::make_genesis(w.address(), 10, 1e5));
  dc::Miner miner(node, w.address(), 1e5 / 10.0);
  miner.start();
  sim.run_until(ds::minutes(5));
  miner.stop();
  const auto height = node.tree().best_height();
  EXPECT_GT(height, 0u);
  sim.run_until(sim.now() + ds::minutes(10));
  EXPECT_EQ(node.tree().best_height(), height) << "no blocks after stop";
  miner.set_hashrate(0);
  miner.start();  // zero hashrate: must not schedule anything
  sim.run_until(sim.now() + ds::minutes(5));
  EXPECT_EQ(node.tree().best_height(), height);
}

TEST(EdgeCases, ChannelNetworkRejectsBadEndpoints) {
  dc::ChannelNetwork net(3);
  EXPECT_THROW(net.open_channel(0, 0, 10, 10), std::invalid_argument);
  EXPECT_THROW(net.open_channel(0, 7, 10, 10), std::invalid_argument);
  EXPECT_FALSE(net.pay(0, 0, 5).ok);
  EXPECT_FALSE(net.pay(0, 1, 5).ok);  // no channels at all
  net.open_channel(0, 1, 10, 0);
  EXPECT_FALSE(net.pay(0, 1, 0).ok);   // non-positive amount
  EXPECT_FALSE(net.pay(0, 2, 5).ok);   // unreachable payee
}
