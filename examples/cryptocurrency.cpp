// A permissionless cryptocurrency, end to end (§III).
//
// Runs the full open-network stack: a gossip mesh of full nodes, miners
// racing on proof-of-work with difficulty retargeting, wallets paying each
// other, a light (SPV) client verifying an inclusion proof, a deep fork that
// heals by reorg — and, for the paper's skeptical eye, a double-spend
// attempt against a merchant who accepts zero-confirmation payments.
#include <cstdio>
#include <memory>
#include <vector>

#include "core/decentnet.hpp"
#include "sim/experiment.hpp"

using namespace decentnet;

int main(int argc, char** argv) {
  sim::ExperimentHarness ex("example_cryptocurrency", argc, argv,
                            {.seed = 404});
  ex.describe("permissionless cryptocurrency walkthrough",
              "the full open-network stack: mining, retargeting, SPV, a "
              "zero-conf double spend, and a partition-healing reorg",
              "14-node PoW mesh, 3 miners at 60/30/10% hash power");
  sim::Simulator simu(ex.seed());
  ex.instrument(simu);
  net::Network netw(simu,
                    std::make_unique<net::LogNormalLatency>(sim::millis(60),
                                                            0.4),
                    net::NetworkConfig{.expected_nodes = 16},
                    &ex.metrics());
  chain::ChainParams params;
  params.target_block_interval = sim::seconds(60);
  params.retarget_window = 32;  // retarget every 32 blocks
  params.initial_difficulty = 2e6;  // deliberately wrong: watch it adjust
  params.block_reward = 50 * 100;

  const chain::Wallet alice = chain::Wallet::from_seed(0xA);
  const chain::Wallet bob = chain::Wallet::from_seed(0xB);
  const chain::Wallet merchant = chain::Wallet::from_seed(0xC);
  std::vector<chain::Wallet> miners_wallets;
  for (int i = 0; i < 3; ++i) {
    miners_wallets.push_back(chain::Wallet::from_seed(0x100 + static_cast<std::uint64_t>(i)));
  }
  const auto genesis =
      chain::make_genesis_multi({{alice.address(), 1'000'00}}, params.initial_difficulty);

  // 14-node mesh, degree 4.
  sim::Rng rng(ex.seed() ^ 5);
  const auto adj = net::random_graph(14, 4, rng);
  std::vector<net::NodeId> addrs;
  for (int i = 0; i < 14; ++i) addrs.push_back(netw.new_node_id());
  std::vector<std::unique_ptr<chain::FullNode>> nodes;
  for (std::size_t i = 0; i < 14; ++i) {
    nodes.push_back(
        std::make_unique<chain::FullNode>(netw, addrs[i], params, genesis));
    std::vector<net::NodeId> nbrs;
    for (std::size_t j : adj[i]) nbrs.push_back(addrs[j]);
    nodes.back()->connect(std::move(nbrs));
  }
  // Miners: 60 / 30 / 10 % of the hash power — but total is 2x what the
  // initial difficulty assumes, so blocks come too fast until retarget.
  const double total_rate = 2.0 * params.initial_difficulty / 60.0;
  std::vector<std::unique_ptr<chain::Miner>> miners;
  const double split[3] = {0.6, 0.3, 0.1};
  const std::size_t miner_nodes[3] = {0, 1, 13};  // miner 2 far side of mesh
  for (int m = 0; m < 3; ++m) {
    miners.push_back(std::make_unique<chain::Miner>(
        *nodes[miner_nodes[static_cast<std::size_t>(m)]],
        miners_wallets[static_cast<std::size_t>(m)].address(),
        total_rate * split[m]));
    miners.back()->start();
  }

  // An SPV wallet follows headers from node 13.
  chain::LightNode phone(netw, netw.new_node_id());
  phone.set_server(nodes[13]->addr());
  nodes[13]->add_light_client(phone.addr());

  // --- Normal payments -------------------------------------------------------
  simu.run_until(sim::minutes(5));
  const auto pay_bob =
      alice.pay(nodes[4]->utxo(), bob.address(), 30'000, 50);
  nodes[4]->submit_transaction(*pay_bob);
  simu.run_until(simu.now() + sim::minutes(30));
  std::printf("after 35 min: height=%llu, bob=%lld\n",
              static_cast<unsigned long long>(nodes[9]->tree().best_height()),
              static_cast<long long>(nodes[9]->utxo().balance_of(bob.address())));

  // --- SPV proof --------------------------------------------------------------
  bool spv_ok = false;
  phone.verify_inclusion(pay_bob->id(), [&](bool ok) {
    spv_ok = ok;
    std::printf("SPV client verified alice->bob inclusion proof: %s\n",
                ok ? "valid" : "INVALID");
  });
  simu.run_until(simu.now() + sim::minutes(1));

  // --- Difficulty retarget ----------------------------------------------------
  simu.run_until(simu.now() + sim::hours(2));
  const auto tip = nodes[9]->tree().best_tip();
  std::printf("difficulty after retargets: %.2fx initial (miners were 2x "
              "over-provisioned)\n",
              nodes[9]->tree().entry(tip).block->header.difficulty /
                  params.initial_difficulty);

  // --- Zero-confirmation double spend ------------------------------------------
  std::printf("\nzero-confirmation double-spend attempt:\n");
  const auto honest_tx =
      alice.pay(nodes[4]->utxo(), merchant.address(), 20'000, 10);
  chain::Transaction evil_tx;
  evil_tx.inputs = honest_tx->inputs;  // same coins...
  evil_tx.outputs.push_back(
      chain::TxOutput{20'000, alice.address()});  // ...back to alice
  chain::sign_inputs(evil_tx, alice.key());
  // The merchant's node hears the honest tx; the far side of the mesh hears
  // the conflicting one at the same instant.
  nodes[4]->submit_transaction(*honest_tx);
  nodes[11]->submit_transaction(evil_tx);
  simu.run_until(simu.now() + sim::seconds(5));
  std::printf("  merchant's mempool sees the payment: %s -> ships goods?\n",
              nodes[4]->mempool().contains(honest_tx->id()) ? "yes" : "no");
  simu.run_until(simu.now() + sim::minutes(40));
  const auto merchant_balance =
      nodes[4]->utxo().balance_of(merchant.address());
  std::printf("  after confirmation: merchant balance=%lld (%s)\n",
              static_cast<long long>(merchant_balance),
              merchant_balance > 0 ? "attack failed this time"
                                   : "the mempool lied — paper's point about "
                                     "waiting for confirmations");

  // --- Fork + reorg -------------------------------------------------------------
  std::printf("\npartitioning the mesh for 45 minutes...\n");
  std::unordered_set<std::uint64_t> side;
  for (int i = 0; i < 7; ++i) side.insert(addrs[static_cast<std::size_t>(i)].value);
  netw.set_partition(side);
  simu.run_until(simu.now() + sim::minutes(45));
  const bool diverged =
      !(nodes[0]->tree().best_tip() == nodes[13]->tree().best_tip());
  netw.clear_partition();
  simu.run_until(simu.now() + sim::minutes(10));
  for (auto& m : miners) m->stop();
  simu.run_until(simu.now() + sim::minutes(2));
  std::uint64_t reorgs = 0, max_depth = 0;
  for (const auto& n : nodes) {
    reorgs += n->stats().reorgs;
    max_depth = std::max(max_depth, n->stats().reorg_depth_max);
  }
  std::printf("  chains diverged: %s; after healing: reorgs=%llu, deepest "
              "reorg=%llu blocks\n",
              diverged ? "yes" : "no",
              static_cast<unsigned long long>(reorgs),
              static_cast<unsigned long long>(max_depth));
  std::printf("  final tips agree: %s\n",
              nodes[0]->tree().best_tip() == nodes[13]->tree().best_tip()
                  ? "yes"
                  : "no");

  std::printf("\nmining revenue by hash share (expected 60/30/10):\n");
  for (int m = 0; m < 3; ++m) {
    std::printf("  miner%d: %llu blocks found\n", m,
                static_cast<unsigned long long>(miners[static_cast<std::size_t>(m)]->blocks_found()));
  }

  ex.add_row({{"check", "spv_inclusion_proof"}, {"ok", spv_ok}});
  ex.add_row({{"check", "bob_paid"},
              {"ok", nodes[9]->utxo().balance_of(bob.address()) == 30'000}});
  ex.add_row({{"check", "chains_diverged_under_partition"}, {"ok", diverged}});
  ex.add_row({{"check", "tips_agree_after_heal"},
              {"ok", nodes[0]->tree().best_tip() ==
                         nodes[13]->tree().best_tip()}});
  ex.add_row({{"check", "reorgs_observed"}, {"ok", reorgs > 0}});
  return ex.finish();
}
