// Utilities / smart-grid "blockchain island" (§V-A).
//
// "The utilities landscape is evolving into a decentralized and smart power
// grid, with distributed power generation from both residential and business
// clients ... With blockchains, utilities could provide a trustworthy and
// secure platform for distributed grid and smart device usage."
//
// Prosumers meter their generation, offer surplus kWh, and neighbors buy it;
// the utility and the co-op both endorse every settlement. Double-sells are
// caught by MVCC, over-sells by the chaincode's balance check.
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "core/decentnet.hpp"
#include "sim/experiment.hpp"

using namespace decentnet;

int main(int argc, char** argv) {
  sim::ExperimentHarness ex("example_smart_grid", argc, argv, {.seed = 88});
  ex.describe("smart-grid energy trading island",
              "prosumers trade surplus kWh on a permissioned channel; "
              "double-sells die by MVCC, over-sells by chaincode, and no "
              "broker holds the master copy",
              "3-org Fabric channel (utility, coop, regulator) with Raft "
              "ordering; metering, offers, buys, and a racing double-buy");
  sim::Simulator simu(ex.seed());
  ex.instrument(simu);
  net::Network netw(simu,
                    std::make_unique<net::LogNormalLatency>(sim::millis(5),
                                                            0.3),
                    net::NetworkConfig{.expected_nodes = 8},
                    &ex.metrics());
  fabric::MembershipService msp(4);
  fabric::EndorsementPolicy policy{2};
  const char* orgs[] = {"utility", "coop", "regulator"};
  auto energy = std::make_shared<fabric::EnergyTradingContract>();
  std::vector<std::unique_ptr<fabric::FabricPeer>> peers;
  for (int o = 0; o < 3; ++o) {
    peers.push_back(std::make_unique<fabric::FabricPeer>(
        netw, netw.new_node_id(), orgs[o], msp, policy,
        300 + static_cast<std::uint64_t>(o)));
    peers.back()->install(energy);
  }
  peers[0]->set_event_source(true);
  fabric::RaftOrderer orderer(netw, 3, fabric::OrdererConfig{});
  for (auto& p : peers) orderer.register_peer(p->addr());
  simu.run_until(sim::seconds(2));

  fabric::FabricClient client(netw, netw.new_node_id(), policy);
  client.set_endorsers({peers[0].get(), peers[1].get(), peers[2].get()});
  client.set_orderer(&orderer);

  int ok_count = 0, rejected = 0;
  std::string last_error;
  auto invoke = [&](std::vector<std::string> args) {
    client.invoke("energy", std::move(args),
                  [&](bool ok, const std::string& payload, sim::SimDuration) {
                    if (ok) {
                      ++ok_count;
                    } else {
                      ++rejected;
                      last_error = payload;
                    }
                  });
    simu.run_until(simu.now() + sim::seconds(3));
  };

  std::printf("1. smart meters report a sunny afternoon\n");
  invoke({"meter", "house-1", "40"});   // rooftop solar surplus
  invoke({"meter", "house-2", "15"});
  invoke({"meter", "factory", "-30"});  // net consumer
  invoke({"meter", "school", "-10"});

  std::printf("2. prosumers post offers\n");
  invoke({"offer", "off-1", "house-1", "25", "12"});
  invoke({"offer", "off-2", "house-2", "10", "14"});
  std::printf("3. an over-sell is rejected by chaincode\n");
  invoke({"offer", "off-3", "house-2", "500", "9"});
  std::printf("   -> %s\n", last_error.c_str());

  std::printf("4. consumers buy\n");
  invoke({"buy", "off-1", "factory"});
  invoke({"buy", "off-2", "school"});
  std::printf("5. a double-buy of a consumed offer is rejected\n");
  invoke({"buy", "off-1", "school"});
  std::printf("   -> %s\n", last_error.c_str());

  // Concurrent conflicting buys: both endorse against the same state; MVCC
  // lets exactly one commit.
  std::printf("6. two buyers race for the same offer (MVCC)\n");
  invoke({"meter", "house-1", "20"});
  invoke({"offer", "off-4", "house-1", "18", "11"});
  int race_ok = 0, race_fail = 0;
  for (const char* buyer : {"factory", "school"}) {
    client.invoke("energy", {"buy", "off-4", buyer},
                  [&](bool ok, const std::string&, sim::SimDuration) {
                    (ok ? race_ok : race_fail) += 1;
                  });
  }
  simu.run_until(simu.now() + sim::seconds(5));
  std::printf("   -> %d committed, %d rejected (exactly one may win)\n",
              race_ok, race_fail);

  std::printf("\nfinal settled balances (identical on every org's peer):\n");
  for (const char* org : {"house-1", "house-2", "factory", "school"}) {
    client.invoke("energy", {"balance", org},
                  [org](bool ok, const std::string& payload, sim::SimDuration) {
                    std::printf("  %-8s: %s kWh\n", org,
                                ok ? payload.c_str() : "?");
                  });
    simu.run_until(simu.now() + sim::seconds(3));
  }
  std::printf("\nledger ops committed=%d rejected=%d; MVCC conflicts seen by "
              "utility peer: %llu\n",
              ok_count, rejected,
              static_cast<unsigned long long>(
                  peers[0]->stats().mvcc_conflicts));
  std::printf(
      "\nGrid trust without a broker: settlement needs 2-of-3 org\n"
      "endorsements, the regulator audits by holding a full replica, and\n"
      "conflicting trades are serialized by the ledger, not by a middleman.\n");

  ex.add_row({{"check", "ops_committed"},
              {"ok", ok_count > 0},
              {"count", std::int64_t{ok_count}}});
  ex.add_row({{"check", "invalid_ops_rejected"},
              {"ok", rejected == 2},
              {"count", std::int64_t{rejected}}});
  ex.add_row({{"check", "mvcc_race_exactly_one_winner"},
              {"ok", race_ok == 1 && race_fail == 1},
              {"count", std::int64_t{race_ok}}});
  return ex.finish();
}
