// Healthcare data sharing with consent (§V-A) on an edge federation (§V).
//
// "Institutions suffer from an inability to share data securely across
// platforms. Permissioned blockchains could facilitate hospitals,
// pharmacies, patients, clinical research organizations ... to share access
// to their networks without compromising on the data security, privacy and
// integrity."
//
// Two hospitals and a research org keep records at their own edge
// nano-datacenters (control stays local); the consent registry and access
// audit live on a shared permissioned channel (trust is decentralized).
#include <cstdio>
#include <memory>
#include <vector>

#include "core/decentnet.hpp"
#include "sim/experiment.hpp"

using namespace decentnet;

int main(int argc, char** argv) {
  sim::ExperimentHarness ex("example_healthcare_federation", argc, argv,
                            {.seed = 11});
  ex.describe("healthcare federation: consent on a shared ledger",
              "records stay at each hospital's edge nano-DC; only consent "
              "facts and audit events cross org lines, via a BFT-ordered "
              "permissioned channel",
              "3-org Fabric channel with PBFT ordering + an edge-vs-cloud "
              "latency check on the same simulated network");
  sim::Simulator simu(ex.seed());
  ex.instrument(simu);
  auto geo_model = std::make_unique<net::GeoLatency>(0.1);
  net::GeoLatency* geo = geo_model.get();
  net::Network netw(simu, std::move(geo_model),
                    net::NetworkConfig{.expected_nodes = 16},
                    &ex.metrics());

  // --- The permissioned consent/audit channel --------------------------------
  fabric::MembershipService msp(3);
  fabric::EndorsementPolicy policy{2};
  const char* orgs[] = {"hospital-north", "hospital-south", "research-org"};
  auto health = std::make_shared<fabric::HealthRecordsContract>();
  std::vector<std::unique_ptr<fabric::FabricPeer>> peers;
  for (int o = 0; o < 3; ++o) {
    peers.push_back(std::make_unique<fabric::FabricPeer>(
        netw, netw.new_node_id(), orgs[o], msp, policy,
        200 + static_cast<std::uint64_t>(o)));
    peers.back()->install(health);
    geo->assign(peers.back()->addr(), static_cast<std::size_t>(o) % 2);
  }
  peers[0]->set_event_source(true);
  fabric::PbftOrderer orderer(netw, /*f=*/1, fabric::OrdererConfig{});
  for (auto& p : peers) orderer.register_peer(p->addr());
  fabric::FabricClient client(netw, netw.new_node_id(), policy);
  client.set_endorsers({peers[0].get(), peers[1].get(), peers[2].get()});
  client.set_orderer(&orderer);

  int denied = 0;
  int surprises = 0;
  auto invoke = [&](std::vector<std::string> args, bool expect_ok) {
    client.invoke("health", std::move(args),
                  [&, expect_ok](bool ok, const std::string& payload,
                                 sim::SimDuration) {
                    if (!ok) ++denied;
                    if (ok != expect_ok) {
                      ++surprises;
                      std::printf("  UNEXPECTED: ok=%d payload=%s\n", ok,
                                  payload.c_str());
                    }
                  });
    simu.run_until(simu.now() + sim::seconds(5));
  };

  std::printf("1. hospital-north writes records without consent -> denied\n");
  invoke({"put", "patient-17", "hospital-north", "bloodwork:ok"}, false);

  std::printf("2. patient-17 grants hospital-north; records flow\n");
  invoke({"grant", "patient-17", "hospital-north"}, true);
  invoke({"put", "patient-17", "hospital-north", "bloodwork:ok"}, true);
  invoke({"put", "patient-17", "hospital-north", "mri:clear"}, true);

  std::printf("3. research-org reads without consent -> denied\n");
  invoke({"get", "patient-17", "research-org"}, false);

  std::printf("4. patient grants research-org, then revokes\n");
  invoke({"grant", "patient-17", "research-org"}, true);
  invoke({"put", "patient-17", "research-org", "trial:enrolled"}, true);
  invoke({"revoke", "patient-17", "research-org"}, true);
  invoke({"get", "patient-17", "research-org"}, false);

  client.invoke("health", {"get", "patient-17", "hospital-north"},
                [](bool ok, const std::string& payload, sim::SimDuration) {
                  std::printf("\nhospital-north's view of patient-17: %s\n",
                              ok ? payload.c_str() : "(denied)");
                });
  simu.run_until(simu.now() + sim::seconds(5));

  // --- The edge side: records served near the patient -----------------------
  std::printf("\nedge serving check: in-region nano-DC vs remote cloud\n");
  edge::EdgeConfig ecfg;
  edge::EdgeNode nano(netw, netw.new_node_id(), edge::DeviceTier::NanoDC,
                      "hospital-north", 0, ecfg);
  edge::EdgeNode cloud(netw, netw.new_node_id(), edge::DeviceTier::Cloud,
                       "hyperscaler", 3, ecfg);
  geo->assign(nano.addr(), 0);
  geo->assign(cloud.addr(), 3);
  edge::UserAgent clinician(netw, netw.new_node_id(), "hospital-north", 0,
                            ecfg);
  geo->assign(clinician.addr(), 0);
  double nano_ms = 0, cloud_ms = 0;
  clinician.request(nano, [&](bool, sim::SimDuration l) {
    nano_ms = sim::to_millis(l);
  });
  simu.run_until(simu.now() + sim::seconds(2));
  clinician.request(cloud, [&](bool, sim::SimDuration l) {
    cloud_ms = sim::to_millis(l);
  });
  simu.run_until(simu.now() + sim::seconds(2));
  std::printf("  record fetch from own nano-DC: %.0f ms\n", nano_ms);
  std::printf("  record fetch from remote cloud: %.0f ms\n", cloud_ms);

  std::printf(
      "\ndenied operations: %d (every denial enforced by chaincode on all\n"
      "three orgs' peers — no administrator could quietly bypass consent).\n"
      "Records stay at the hospitals' edge; only consent facts and audit\n"
      "events cross organizational lines, via a BFT-ordered channel.\n",
      denied);

  ex.add_row({{"check", "all_consent_outcomes_as_expected"},
              {"ok", surprises == 0},
              {"count", std::int64_t{surprises}}});
  ex.add_row({{"check", "denied_operations"},
              {"ok", denied == 3},
              {"count", std::int64_t{denied}}});
  ex.add_row({{"check", "edge_faster_than_cloud"},
              {"ok", nano_ms < cloud_ms},
              {"count", sim::Value()}});
  return ex.finish();
}
