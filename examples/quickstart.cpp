// Quickstart: a whirlwind tour of the decentnet public API.
//
//   1. spin up a deterministic simulation and network,
//   2. run a Kademlia DHT (the P2P substrate the paper reviews),
//   3. run a small proof-of-work cryptocurrency on the same kernel,
//   4. run a permissioned (Fabric-style) channel and commit a transaction,
//   5. print what happened.
//
// Everything is simulated time: the whole program runs in milliseconds of
// wall clock while covering hours of protocol time.
#include <cstdio>
#include <memory>
#include <vector>

#include "core/decentnet.hpp"
#include "sim/experiment.hpp"

using namespace decentnet;

int main(int argc, char** argv) {
  sim::ExperimentHarness ex("example_quickstart", argc, argv, {.seed = 2026});
  ex.describe("decentnet quickstart",
              "whirlwind tour of the public API: one kernel runs a DHT, a "
              "PoW currency, and a permissioned channel",
              "50-node Kademlia, 8-node PoW mesh, 3-org Fabric channel on "
              "one simulated network");

  // --- 1. Kernel + network --------------------------------------------------
  sim::Simulator simu(ex.seed());
  ex.instrument(simu);
  net::Network netw(simu,
                    std::make_unique<net::LogNormalLatency>(sim::millis(50),
                                                            0.4),
                    net::NetworkConfig{.expected_nodes = 64},
                    &ex.metrics());

  // --- 2. A 50-node Kademlia DHT --------------------------------------------
  std::vector<std::unique_ptr<overlay::KademliaNode>> dht;
  for (int i = 0; i < 50; ++i) {
    dht.push_back(std::make_unique<overlay::KademliaNode>(
        netw, netw.new_node_id(), overlay::KademliaConfig{}));
  }
  dht[0]->join({});
  for (std::size_t i = 1; i < dht.size(); ++i) {
    dht[i]->join({{dht[0]->id(), dht[0]->addr()}});
  }
  simu.run_until(sim::minutes(2));

  dht[7]->store(crypto::sha256("greeting"), "hello, decentralized world");
  simu.run_until(simu.now() + sim::seconds(30));
  bool dht_found = false;
  std::uint64_t dht_rpcs = 0;
  dht[33]->find_value(crypto::sha256("greeting"),
                      [&](overlay::LookupResult r) {
                        dht_found = r.found_value;
                        dht_rpcs = r.rpcs_sent;
                        std::printf("DHT lookup: %s (rpcs=%zu, %.0f ms)\n",
                                    r.found_value ? r.value->c_str()
                                                  : "(not found)",
                                    r.rpcs_sent, sim::to_millis(r.elapsed));
                      });
  simu.run_until(simu.now() + sim::seconds(30));

  // --- 3. A tiny proof-of-work currency --------------------------------------
  chain::ChainParams params;
  params.target_block_interval = sim::seconds(30);
  params.retarget_window = 0;
  params.initial_difficulty = 1e6;
  params.block_reward = 5000;
  const chain::Wallet alice = chain::Wallet::from_seed(1);
  const chain::Wallet bob = chain::Wallet::from_seed(2);
  const chain::Wallet miner_wallet = chain::Wallet::from_seed(3);
  const auto genesis =
      chain::make_genesis_multi({{alice.address(), 100'000}}, 1e6);

  std::vector<std::unique_ptr<chain::FullNode>> nodes;
  std::vector<net::NodeId> addrs;
  for (int i = 0; i < 8; ++i) addrs.push_back(netw.new_node_id());
  for (int i = 0; i < 8; ++i) {
    nodes.push_back(std::make_unique<chain::FullNode>(
        netw, addrs[static_cast<std::size_t>(i)], params, genesis));
    std::vector<net::NodeId> nbrs;
    for (int j = 0; j < 8; ++j) {
      if (j != i) nbrs.push_back(addrs[static_cast<std::size_t>(j)]);
    }
    nodes.back()->connect(std::move(nbrs));
  }
  chain::Miner miner(*nodes[0], miner_wallet.address(), 1e6 / 30.0);
  miner.start();

  const auto payment = alice.pay(nodes[2]->utxo(), bob.address(),
                                 /*amount=*/25'000, /*fee=*/100);
  nodes[2]->submit_transaction(*payment);
  simu.run_until(simu.now() + sim::minutes(10));
  miner.stop();
  simu.run_until(simu.now() + sim::minutes(1));
  std::printf(
      "PoW chain: height=%llu, bob's balance=%lld, miner earned=%lld\n",
      static_cast<unsigned long long>(nodes[5]->tree().best_height()),
      static_cast<long long>(nodes[5]->utxo().balance_of(bob.address())),
      static_cast<long long>(
          nodes[5]->utxo().balance_of(miner_wallet.address())));

  // --- 4. A permissioned channel ---------------------------------------------
  fabric::MembershipService msp(9);
  fabric::EndorsementPolicy policy{2};
  auto asset = std::make_shared<fabric::AssetTransferContract>();
  std::vector<std::unique_ptr<fabric::FabricPeer>> peers;
  for (int o = 0; o < 3; ++o) {
    peers.push_back(std::make_unique<fabric::FabricPeer>(
        netw, netw.new_node_id(), "org" + std::to_string(o), msp, policy,
        500 + static_cast<std::uint64_t>(o)));
    peers.back()->install(asset);
  }
  peers[0]->set_event_source(true);
  fabric::SoloOrderer orderer(netw, netw.new_node_id(),
                              fabric::OrdererConfig{});
  for (auto& p : peers) orderer.register_peer(p->addr());
  fabric::FabricClient client(netw, netw.new_node_id(), policy);
  client.set_endorsers({peers[0].get(), peers[1].get(), peers[2].get()});
  client.set_orderer(&orderer);

  bool fabric_commit_ok = false;
  client.invoke("asset", {"create", "bike42", "alice", "900"},
                [&](bool ok, const std::string&, sim::SimDuration latency) {
                  fabric_commit_ok = ok;
                  std::printf(
                      "Fabric commit: asset created=%s in %.0f ms "
                      "(endorse -> order -> validate)\n",
                      ok ? "yes" : "no", sim::to_millis(latency));
                });
  simu.run_until(simu.now() + sim::seconds(10));
  bool fabric_query_ok = false;
  client.invoke("asset", {"read", "bike42"},
                [&](bool ok, const std::string& payload, sim::SimDuration) {
                  fabric_query_ok = ok;
                  std::printf("Fabric query: bike42 -> %s\n",
                              ok ? payload.c_str() : "(error)");
                });
  simu.run_until(simu.now() + sim::seconds(10));

  ex.add_row({{"stage", "dht_lookup"},
              {"ok", dht_found},
              {"value", dht_rpcs}});
  ex.add_row({{"stage", "pow_chain_height"},
              {"ok", nodes[5]->tree().best_height() > 0},
              {"value", std::uint64_t{nodes[5]->tree().best_height()}}});
  ex.add_row(
      {{"stage", "pow_bob_balance"},
       {"ok", nodes[5]->utxo().balance_of(bob.address()) == 25'000},
       {"value",
        std::uint64_t{static_cast<std::uint64_t>(
            nodes[5]->utxo().balance_of(bob.address()))}}});
  ex.add_row({{"stage", "fabric_commit"}, {"ok", fabric_commit_ok}});
  ex.add_row({{"stage", "fabric_query"}, {"ok", fabric_query_ok}});

  std::printf(
      "\nSimulated %s of protocol time; %llu events; every run of this "
      "program\nprints exactly the same thing (seeded determinism).\n",
      sim::format_duration(simu.now()).c_str(),
      static_cast<unsigned long long>(simu.total_events_processed()));
  return ex.finish();
}
