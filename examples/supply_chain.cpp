// Supply chain & logistics "blockchain island" (§V-A).
//
// "Distributed ledgers can be used to verify the trade status of products by
// thoroughly tracking them from their origin to the destination without ever
// having to explicitly trust any one node in the network."
//
// Four organizations — a factory, a carrier, a customs agency and a
// retailer — run a permissioned channel with a Raft ordering service. Goods
// move custody along the chain; any member can audit the full provenance of
// any pallet, and nobody holds the master copy.
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "core/decentnet.hpp"
#include "sim/experiment.hpp"

using namespace decentnet;

int main(int argc, char** argv) {
  sim::ExperimentHarness ex("example_supply_chain", argc, argv, {.seed = 7});
  ex.describe("supply-chain blockchain island",
              "four orgs track pallets origin-to-destination on a "
              "permissioned channel; any member audits full provenance and "
              "nobody holds the master copy",
              "4-org Fabric channel with Raft ordering; 10 pallets x 5 "
              "custody events plus chaincode-rejected forgeries");
  sim::Simulator simu(ex.seed());
  ex.instrument(simu);
  net::Network netw(simu,
                    std::make_unique<net::LogNormalLatency>(sim::millis(8),
                                                            0.3),
                    net::NetworkConfig{.expected_nodes = 8},
                    &ex.metrics());

  // Consortium membership: one CA, four orgs, one endorsing peer each.
  fabric::MembershipService msp(1);
  // Trade events need factory+carrier (or any 2 orgs) to endorse.
  fabric::EndorsementPolicy policy{2};
  const char* orgs[] = {"factory", "carrier", "customs", "retailer"};
  auto contract = std::make_shared<fabric::SupplyChainContract>();
  std::vector<std::unique_ptr<fabric::FabricPeer>> peers;
  for (int o = 0; o < 4; ++o) {
    peers.push_back(std::make_unique<fabric::FabricPeer>(
        netw, netw.new_node_id(), orgs[o], msp, policy,
        100 + static_cast<std::uint64_t>(o)));
    peers.back()->install(contract);
  }
  peers[0]->set_event_source(true);

  // Crash-fault-tolerant ordering service run by the consortium.
  fabric::RaftOrderer orderer(netw, 3, fabric::OrdererConfig{});
  for (auto& p : peers) orderer.register_peer(p->addr());
  simu.run_until(sim::seconds(2));  // leader election

  fabric::FabricClient client(netw, netw.new_node_id(), policy);
  std::vector<fabric::FabricPeer*> endorsers;
  for (auto& p : peers) endorsers.push_back(p.get());
  client.set_endorsers(endorsers);
  client.set_orderer(&orderer);

  int committed = 0, failed = 0;
  auto submit = [&](std::vector<std::string> args) {
    client.invoke("supplychain", std::move(args),
                  [&](bool ok, const std::string& payload, sim::SimDuration) {
                    if (ok) {
                      ++committed;
                    } else {
                      ++failed;
                      std::printf("  rejected: %s\n", payload.c_str());
                    }
                  });
    simu.run_until(simu.now() + sim::seconds(3));
  };

  // Ten pallets flow factory -> carrier -> customs -> retailer.
  for (int p = 0; p < 10; ++p) {
    const std::string item = "pallet-" + std::to_string(p);
    submit({"register", item, "factory-lyon"});
    submit({"ship", item, "carrier-truck-7"});
    submit({"receive", item, "customs-basel"});
    submit({"ship", item, "carrier-rail-2"});
    submit({"receive", item, "retailer-berlin"});
  }
  // A duplicate registration and a bogus item must be rejected by chaincode.
  submit({"register", "pallet-0", "counterfeit-origin"});
  submit({"ship", "pallet-nonexistent", "nowhere"});

  // Audit: the retailer's peer answers provenance from its own ledger copy.
  bool trace_ok = false;
  client.invoke("supplychain", {"trace", "pallet-3"},
                [&](bool ok, const std::string& payload, sim::SimDuration) {
                  trace_ok = ok;
                  std::printf("\nprovenance of pallet-3 (from the shared "
                              "ledger):\n  %s\n",
                              ok ? payload.c_str() : "(error)");
                });
  simu.run_until(simu.now() + sim::seconds(5));

  std::printf("\ncommitted=%d rejected=%d\n", committed, failed);
  std::printf("per-org ledger state (should be identical):\n");
  for (auto& p : peers) {
    std::printf("  %-8s: %zu keys, %llu txs committed, %llu policy "
                "failures\n",
                p->org().c_str(), p->state().size(),
                static_cast<unsigned long long>(p->stats().txs_committed),
                static_cast<unsigned long long>(p->stats().policy_failures));
  }
  std::printf(
      "\nNo single org can rewrite history: every write carries 2-of-4 org\n"
      "endorsements and sits behind the Raft-ordered, hash-linked block\n"
      "stream each member independently validated.\n");

  ex.add_row({{"check", "custody_events_committed"},
              {"ok", committed == 50},
              {"count", std::int64_t{committed}}});
  ex.add_row({{"check", "forgeries_rejected"},
              {"ok", failed == 2},
              {"count", std::int64_t{failed}}});
  ex.add_row({{"check", "provenance_trace"},
              {"ok", trace_ok},
              {"count", sim::Value()}});
  bool ledgers_agree = true;
  for (auto& p : peers) {
    ledgers_agree =
        ledgers_agree && p->state().size() == peers[0]->state().size();
  }
  ex.add_row({{"check", "per_org_ledgers_identical"},
              {"ok", ledgers_agree},
              {"count", sim::Value()}});
  return ex.finish();
}
