// Interoperating "blockchain islands" (§V).
//
// "If the issue of interoperability of multiple blockchains is addressed
// properly, one can imagine multiple such decentralized groups which each
// rely on individual blockchains, forming amalgams (within as well as
// across domains/industries), to add to the degree of decentralization."
//
// Two permissioned islands — a national manufacturing channel and a
// cross-border trade channel — share one notary organization enrolled in
// both. An asset moves between the islands with a lock / mint / burn
// handshake driven by the notary: no global chain, no trusted third party
// beyond what each consortium already accepted, and every step is an
// ordinary endorsed transaction on its island.
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "core/decentnet.hpp"
#include "sim/experiment.hpp"

using namespace decentnet;

namespace {

struct Island {
  std::string name;
  std::vector<std::unique_ptr<fabric::FabricPeer>> peers;
  std::unique_ptr<fabric::SoloOrderer> orderer;
  std::unique_ptr<fabric::FabricClient> client;
  fabric::EndorsementPolicy policy{2};

  Island(net::Network& netw, fabric::MembershipService& msp,
         std::string island_name, std::vector<std::string> orgs,
         std::uint64_t seed_base)
      : name(std::move(island_name)) {
    auto asset = std::make_shared<fabric::AssetTransferContract>();
    for (std::size_t o = 0; o < orgs.size(); ++o) {
      peers.push_back(std::make_unique<fabric::FabricPeer>(
          netw, netw.new_node_id(), orgs[o], msp, policy, seed_base + o));
      peers.back()->install(asset);
    }
    peers.front()->set_event_source(true);
    orderer = std::make_unique<fabric::SoloOrderer>(netw, netw.new_node_id(),
                                                    fabric::OrdererConfig{});
    for (auto& p : peers) orderer->register_peer(p->addr());
    client =
        std::make_unique<fabric::FabricClient>(netw, netw.new_node_id(),
                                               policy);
    std::vector<fabric::FabricPeer*> endorsers;
    for (auto& p : peers) endorsers.push_back(p.get());
    client->set_endorsers(endorsers);
    client->set_orderer(orderer.get());
  }

  /// Synchronous-style invoke for the walkthrough.
  bool invoke(sim::Simulator& simu, std::vector<std::string> args,
              std::string* payload_out = nullptr) {
    bool result = false;
    client->invoke("asset", std::move(args),
                   [&](bool ok, const std::string& payload, sim::SimDuration) {
                     result = ok;
                     if (payload_out) *payload_out = payload;
                   });
    simu.run_until(simu.now() + sim::seconds(5));
    return result;
  }
};

}  // namespace

int main(int argc, char** argv) {
  sim::ExperimentHarness ex("example_blockchain_islands", argc, argv,
                            {.seed = 2718});
  ex.describe("interoperating blockchain islands",
              "two permissioned islands bridged by a notary org enrolled in "
              "both: cross-island transfer via lock / mint / burn, no global "
              "chain (the paper's SV amalgam proposal)",
              "two 3-org Fabric channels sharing one network and one notary");
  sim::Simulator simu(ex.seed());
  ex.instrument(simu);
  net::Network netw(simu,
                    std::make_unique<net::LogNormalLatency>(sim::millis(12),
                                                            0.3),
                    net::NetworkConfig{.expected_nodes = 16},
                    &ex.metrics());
  fabric::MembershipService msp(6);

  // The notary org is a member of BOTH consortiums — an ordinary member,
  // not a super-user: its writes still need a second endorsement on each
  // island.
  Island manufacturing(netw, msp, "manufacturing-island",
                       {"steelworks", "machinery", "notary"}, 7000);
  Island trade(netw, msp, "trade-island",
               {"port-authority", "shipping-line", "notary"}, 8000);

  std::printf("island A: %s (steelworks, machinery, notary)\n",
              manufacturing.name.c_str());
  std::printf("island B: %s (port-authority, shipping-line, notary)\n\n",
              trade.name.c_str());

  // 1. The asset exists on the manufacturing island.
  bool ok = manufacturing.invoke(simu,
                                 {"create", "turbine-88", "steelworks", "250000"});
  std::printf("1. turbine-88 registered on %s: %s\n",
              manufacturing.name.c_str(), ok ? "ok" : "FAILED");
  ex.add_row({{"step", "register_on_island_a"}, {"ok", ok}});

  // 2. Cross-island transfer: lock on A (custody to the notary)...
  ok = manufacturing.invoke(simu, {"transfer", "turbine-88", "notary:locked"});
  std::printf("2. locked in notary custody on island A: %s\n",
              ok ? "ok" : "FAILED");
  ex.add_row({{"step", "lock_on_island_a"}, {"ok", ok}});

  // 3. ...mint the mirrored asset on B, owned by the receiving org.
  ok = trade.invoke(simu, {"create", "turbine-88", "shipping-line", "250000"});
  std::printf("3. mirrored onto island B for shipping-line: %s\n",
              ok ? "ok" : "FAILED");
  ex.add_row({{"step", "mint_on_island_b"}, {"ok", ok}});

  // 4. Both islands can audit their half of the handshake.
  std::string a_view, b_view;
  manufacturing.invoke(simu, {"read", "turbine-88"}, &a_view);
  trade.invoke(simu, {"read", "turbine-88"}, &b_view);
  std::printf("4. island A sees: %s | island B sees: %s\n", a_view.c_str(),
              b_view.c_str());

  // 5. A double-mint on B must fail: the asset id is already taken there.
  ok = trade.invoke(simu, {"create", "turbine-88", "smuggler", "1"});
  std::printf("5. double-mint attempt on island B rejected: %s\n",
              !ok ? "yes" : "NO (bug!)");
  ex.add_row({{"step", "double_mint_rejected"}, {"ok", !ok}});

  // 6. Return leg: burn on B (custody back to notary), release on A.
  ok = trade.invoke(simu, {"transfer", "turbine-88", "notary:burned"});
  std::printf("6. burned into notary custody on island B: %s\n",
              ok ? "ok" : "FAILED");
  ex.add_row({{"step", "burn_on_island_b"}, {"ok", ok}});
  ok = manufacturing.invoke(simu, {"transfer", "turbine-88", "machinery"});
  std::printf("7. released to machinery on island A: %s\n",
              ok ? "ok" : "FAILED");
  ex.add_row({{"step", "release_on_island_a"}, {"ok", ok}});

  std::printf("\nledger summary:\n");
  for (Island* island : {&manufacturing, &trade}) {
    std::printf("  %-21s peers committed: ", island->name.c_str());
    for (auto& p : island->peers) {
      std::printf("%llu ",
                  static_cast<unsigned long long>(p->stats().txs_committed));
    }
    std::printf("\n");
  }
  std::printf(
      "\nNo global blockchain was needed: each island kept consensus among\n"
      "its own members, and the bridge is just a member with accounts on\n"
      "both — the amalgam-of-islands architecture §V proposes, with the\n"
      "notary's honesty bounded by each island's endorsement policy.\n");
  return ex.finish();
}
