// decentnet-trace: offline analysis of JSONL traces produced by the
// harness's --trace flag (JsonlTraceSink format, see src/sim/trace.hpp).
//
//   decentnet-trace TRACE.jsonl [--summary] [--trees] [--top N]
//                   [--chrome OUT.json]
//   decentnet-trace timeline SERIES.jsonl [--trace TRACE.jsonl]
//                   [--csv OUT.csv] [--chrome OUT.json]
//
// With no selection flags both the per-kind summary and the propagation-tree
// table are printed. --chrome additionally writes a Chrome trace_event file
// for chrome://tracing / Perfetto.
//
// The timeline subcommand reads the telemetry series stream --telemetry
// writes (see src/sim/telemetry.hpp) and prints per-series statistics plus
// ramp detection; --trace correlates gauge excursions against the fault
// inject/heal windows of the matching event trace, --csv exports the raw
// samples, --chrome writes counter-track trace_event JSON.
//
// Exit status: 0 on success, 1 on bad usage, unreadable input, or a
// malformed trace.
#include <cstring>
#include <fstream>
#include <iostream>
#include <string>

#include "trace_analysis.hpp"

namespace {

int usage(const char* argv0) {
  std::cerr
      << "usage: " << argv0
      << " TRACE.jsonl [--summary] [--trees] [--top N] [--chrome OUT.json]\n"
      << "       " << argv0
      << " timeline SERIES.jsonl [--trace TRACE.jsonl] [--csv OUT.csv]\n"
      << "                 [--chrome OUT.json]\n"
      << "  --summary        per-kind / per-tag record counts\n"
      << "  --trees          propagation-tree stats (needs span records)\n"
      << "  --top N          show the N largest trees (default 10)\n"
      << "  --chrome FILE    write Chrome trace_event JSON to FILE\n"
      << "  --trace FILE     (timeline) correlate against fault windows\n"
      << "  --csv FILE       (timeline) export raw samples as CSV\n"
      << "With neither --summary nor --trees, both are printed.\n";
  return 1;
}

int run_timeline(const char* argv0, int argc, char** argv) {
  std::string input;
  std::string trace_in;
  std::string csv_out;
  std::string chrome_out;
  for (int i = 0; i < argc; ++i) {
    const char* arg = argv[i];
    if (std::strcmp(arg, "--trace") == 0) {
      if (++i >= argc) return usage(argv0);
      trace_in = argv[i];
    } else if (std::strcmp(arg, "--csv") == 0) {
      if (++i >= argc) return usage(argv0);
      csv_out = argv[i];
    } else if (std::strcmp(arg, "--chrome") == 0) {
      if (++i >= argc) return usage(argv0);
      chrome_out = argv[i];
    } else if (arg[0] == '-') {
      return usage(argv0);
    } else if (input.empty()) {
      input = arg;
    } else {
      return usage(argv0);
    }
  }
  if (input.empty()) return usage(argv0);

  std::ifstream in(input);
  if (!in) {
    std::cerr << "decentnet-trace: cannot open " << input << "\n";
    return 1;
  }

  try {
    const auto samples = decentnet::tracetool::parse_series_jsonl(in);
    std::cout << decentnet::tracetool::timeline_text(
        decentnet::tracetool::timeline_stats(samples));
    if (!trace_in.empty()) {
      std::ifstream tin(trace_in);
      if (!tin) {
        std::cerr << "decentnet-trace: cannot open " << trace_in << "\n";
        return 1;
      }
      const auto records = decentnet::tracetool::parse_jsonl(tin);
      const std::string faults =
          decentnet::tracetool::timeline_fault_text(samples, records);
      if (!faults.empty()) std::cout << "\n" << faults;
      else std::cout << "\nfault windows: 0\n";
    }
    if (!csv_out.empty()) {
      std::ofstream out(csv_out);
      if (!out) {
        std::cerr << "decentnet-trace: cannot write " << csv_out << "\n";
        return 1;
      }
      out << decentnet::tracetool::timeline_csv(samples);
    }
    if (!chrome_out.empty()) {
      std::ofstream out(chrome_out);
      if (!out) {
        std::cerr << "decentnet-trace: cannot write " << chrome_out << "\n";
        return 1;
      }
      out << decentnet::tracetool::timeline_chrome_json(samples);
    }
  } catch (const std::exception& e) {
    std::cerr << "decentnet-trace: " << e.what() << "\n";
    return 1;
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc > 1 && std::strcmp(argv[1], "timeline") == 0) {
    return run_timeline(argv[0], argc - 2, argv + 2);
  }

  std::string input;
  std::string chrome_out;
  bool want_summary = false;
  bool want_trees = false;
  std::size_t top_n = 10;

  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    if (std::strcmp(arg, "--summary") == 0) {
      want_summary = true;
    } else if (std::strcmp(arg, "--trees") == 0) {
      want_trees = true;
    } else if (std::strcmp(arg, "--top") == 0) {
      if (++i >= argc) return usage(argv[0]);
      top_n = static_cast<std::size_t>(std::stoull(argv[i]));
    } else if (std::strcmp(arg, "--chrome") == 0) {
      if (++i >= argc) return usage(argv[0]);
      chrome_out = argv[i];
    } else if (arg[0] == '-') {
      return usage(argv[0]);
    } else if (input.empty()) {
      input = arg;
    } else {
      return usage(argv[0]);
    }
  }
  if (input.empty()) return usage(argv[0]);
  if (!want_summary && !want_trees) {
    want_summary = true;
    want_trees = true;
  }

  std::ifstream in(input);
  if (!in) {
    std::cerr << "decentnet-trace: cannot open " << input << "\n";
    return 1;
  }

  try {
    const auto records = decentnet::tracetool::parse_jsonl(in);
    if (want_summary) {
      std::cout << decentnet::tracetool::summary_text(
          decentnet::tracetool::summarize(records));
    }
    if (want_trees || !chrome_out.empty()) {
      const auto trees = decentnet::tracetool::build_trees(records);
      if (want_trees) {
        if (want_summary) std::cout << "\n";
        std::cout << decentnet::tracetool::tree_stats_text(trees, top_n);
      }
      if (!chrome_out.empty()) {
        std::ofstream out(chrome_out);
        if (!out) {
          std::cerr << "decentnet-trace: cannot write " << chrome_out << "\n";
          return 1;
        }
        out << decentnet::tracetool::chrome_trace_json(trees);
      }
    }
  } catch (const std::exception& e) {
    std::cerr << "decentnet-trace: " << e.what() << "\n";
    return 1;
  }
  return 0;
}
