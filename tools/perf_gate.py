#!/usr/bin/env python3
"""Perf-regression gate over a BENCH JSON artifact.

Compares the throughput cells of a fresh bench run against the checked-in
baselines (bench/baselines.json) and fails — exit 1 — when a pinned point
regresses past the tolerances:

  * events_per_sec  more than --eps-drop   below baseline (default 20%)
  * peak_rss_mb     more than --rss-growth above baseline (default 10%)

Usage:
  # gate (CI): run a pinned bench, then
  ./bench/bench_e20_scale --quiet --json e20.json
  python3 tools/perf_gate.py e20.json --baselines bench/baselines.json

  # refresh baselines after an intentional perf change:
  python3 tools/perf_gate.py e20.json --baselines bench/baselines.json --update

The baseline file holds rows for several benches: each row's "bench" field
names the experiment id it belongs to (the "id" key of the BENCH JSON), and
only rows whose "bench" matches the fresh artifact are gated or updated.
Rows without a "bench" field gate against every artifact (legacy layout).
Within a bench, rows are keyed by their identifying cells (overlay/n for
E20, sweep/mode/links/block_kb for E22); only fresh rows whose key appears
in the baseline file are gated, so a JSON with extra sweep points gates only
the pinned ones. Wall-clock cells must be present in the JSON — run the
bench with the default timings_in_json=1.

CI override: maintainers label a PR `perf-baseline-reset` to skip the gate
for an intentional regression (new feature with a known cost); the same PR
must refresh bench/baselines.json with --update. See the perf-gate step in
.github/workflows/ci.yml.

events_per_sec is wall-clock dependent, so baselines are only comparable on
the machine class that produced them (the `machine` field records it). The
generous 20% drop tolerance absorbs normal runner noise; peak RSS is
allocator-deterministic and gets the tighter 10%.
"""

import argparse
import contextlib
import io
import json
import os
import sys
import tempfile


# Cells that identify a row within its bench. Absent cells key as None, so
# benches using disjoint subsets coexist (E20 rows key on overlay/n, E22
# rows on sweep/mode/links/block_kb).
KEY_FIELDS = ("overlay", "n", "sweep", "mode", "links", "block_kb")


def row_key(row):
    return tuple(row.get(k) for k in KEY_FIELDS)


def key_label(key):
    return "/".join(str(v) for v in key if v is not None) or "?"


def gates_this_bench(baseline_row, fresh_id):
    return baseline_row.get("bench") in (None, fresh_id)


def load_rows(path):
    with open(path) as f:
        data = json.load(f)
    rows = data.get("rows", [])
    if not rows:
        sys.exit(f"perf_gate: no rows in {path}")
    return data, rows


def self_test():
    """Exercise the gate against crafted artifacts in a temp dir.

    Covers the contract CI leans on: a clean run passes, a throughput or
    RSS regression fails, and a pinned baseline row missing from the fresh
    artifact fails both the gate and --update (a silently shrinking sweep
    must never pass). Run with: python3 tools/perf_gate.py --self-test
    """

    def run(argv):
        out = io.StringIO()
        old_argv = sys.argv
        sys.argv = ["perf_gate.py"] + argv
        code = 0
        try:
            with contextlib.redirect_stdout(out), \
                 contextlib.redirect_stderr(out):
                main()
        except SystemExit as e:
            if isinstance(e.code, int):
                code = e.code
            else:
                code = 1
                out.write(str(e.code))  # sys.exit(message) carries the text
        finally:
            sys.argv = old_argv
        return code or 0, out.getvalue()

    def write(path, data):
        with open(path, "w") as f:
            json.dump(data, f)

    def base_row(eps=1000.0, rss=100.0, n=500):
        return {"bench": "E_test", "overlay": "gossip", "n": n,
                "events_per_sec": eps, "peak_rss_mb": rss}

    def fresh(rows):
        return {"id": "E_test", "rows": rows}

    failures = []

    def case(name, argv, want_code, want_text=None):
        code, out = run(argv)
        if code != want_code:
            failures.append(f"{name}: exit {code}, wanted {want_code}\n{out}")
        elif want_text is not None and want_text not in out:
            failures.append(f"{name}: output lacks {want_text!r}\n{out}")
        else:
            print(f"  {name}: ok")

    with tempfile.TemporaryDirectory() as tmp:
        bpath = os.path.join(tmp, "baselines.json")
        fpath = os.path.join(tmp, "fresh.json")

        write(bpath, {"machine": "test", "rows": [base_row()]})
        write(fpath, fresh([base_row()]))
        case("clean gate passes", [fpath, "--baselines", bpath], 0)

        write(fpath, fresh([base_row(eps=100.0)]))
        case("throughput regression fails",
             [fpath, "--baselines", bpath], 1, "events/sec")

        write(fpath, fresh([base_row(rss=200.0)]))
        case("rss regression fails", [fpath, "--baselines", bpath], 1,
             "peak RSS")

        write(fpath, fresh([base_row(n=9999)]))
        case("missing pinned row fails gate",
             [fpath, "--baselines", bpath], 1, "missing from fresh run")
        case("missing pinned row fails --update",
             [fpath, "--baselines", bpath, "--update"], 1,
             "lacks pinned points")

        write(fpath, fresh([base_row(eps=5000.0, rss=50.0)]))
        case("update rewrites baselines",
             [fpath, "--baselines", bpath, "--update", "--machine", "t2"], 0)
        with open(bpath) as f:
            updated = json.load(f)
        if updated["machine"] != "t2" or \
                updated["rows"][0]["events_per_sec"] != 5000.0:
            failures.append("update did not rewrite the baseline row")
        else:
            print("  updated baselines verified: ok")

        write(fpath, {"id": "E_test", "rows": [{"overlay": "gossip",
                                                "n": 500}]})
        case("rows without timing cells fail",
             [fpath, "--baselines", bpath], 1, "timing cells")

    if failures:
        print("perf_gate --self-test: FAIL", file=sys.stderr)
        for f_ in failures:
            print(f"  {f_}", file=sys.stderr)
        return 1
    print("perf_gate --self-test: all cases passed")
    return 0


def main():
    if sys.argv[1:] == ["--self-test"]:
        sys.exit(self_test())
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("bench_json", help="BENCH_E20_scale.json from a fresh run")
    ap.add_argument("--baselines", default="bench/baselines.json")
    ap.add_argument("--eps-drop", type=float, default=0.20,
                    help="max fractional events/sec drop (default 0.20)")
    ap.add_argument("--rss-growth", type=float, default=0.10,
                    help="max fractional peak-RSS growth (default 0.10)")
    ap.add_argument("--update", action="store_true",
                    help="rewrite the baseline file from this run's rows")
    ap.add_argument("--machine", default="ci",
                    help="machine-class label recorded with --update")
    args = ap.parse_args()

    fresh_data, fresh_rows = load_rows(args.bench_json)
    fresh_id = fresh_data.get("id")
    fresh = {}
    for row in fresh_rows:
        if "events_per_sec" not in row or "peak_rss_mb" not in row:
            sys.exit("perf_gate: rows lack timing cells — run the bench "
                     "with timings_in_json=1 (the default)")
        fresh[row_key(row)] = row

    if args.update:
        with open(args.baselines) as f:
            base = json.load(f)
        base["machine"] = args.machine
        missing = []
        updated = 0
        for brow in base.get("rows", []):
            if not gates_this_bench(brow, fresh_id):
                continue  # another bench's row: leave untouched
            key = row_key(brow)
            frow = fresh.get(key)
            if frow is None:
                missing.append(key_label(key))
                continue
            brow["events_per_sec"] = frow["events_per_sec"]
            brow["peak_rss_mb"] = frow["peak_rss_mb"]
            updated += 1
        if missing:
            sys.exit(f"perf_gate: fresh run lacks pinned points {missing}")
        if updated == 0:
            sys.exit(f"perf_gate: no baseline rows belong to bench "
                     f"{fresh_id!r}")
        with open(args.baselines, "w") as f:
            json.dump(base, f, indent=2)
            f.write("\n")
        print(f"perf_gate: baselines rewritten ({updated} rows for "
              f"{fresh_id}, machine={args.machine})")
        return

    base_data, base_rows = load_rows(args.baselines)
    failures = []
    gated = 0
    for brow in base_rows:
        if not gates_this_bench(brow, fresh_id):
            continue  # pinned for a different bench
        key = row_key(brow)
        frow = fresh.get(key)
        if frow is None:
            failures.append(
                f"{key_label(key)}: pinned point missing from fresh run")
            continue
        gated += 1
        eps_base, eps_now = brow["events_per_sec"], frow["events_per_sec"]
        rss_base, rss_now = brow["peak_rss_mb"], frow["peak_rss_mb"]
        eps_floor = eps_base * (1.0 - args.eps_drop)
        rss_ceil = rss_base * (1.0 + args.rss_growth)
        verdict = []
        if eps_now < eps_floor:
            verdict.append(
                f"events/sec {eps_now:.0f} < floor {eps_floor:.0f} "
                f"(baseline {eps_base:.0f}, -{args.eps_drop:.0%})")
        if rss_now > rss_ceil:
            verdict.append(
                f"peak RSS {rss_now:.1f} MB > ceiling {rss_ceil:.1f} MB "
                f"(baseline {rss_base:.1f}, +{args.rss_growth:.0%})")
        status = "FAIL" if verdict else "ok"
        print(f"  {key_label(key)}: events/sec {eps_now:.0f} "
              f"(baseline {eps_base:.0f}), peak RSS {rss_now:.1f} MB "
              f"(baseline {rss_base:.1f}) ... {status}")
        for v in verdict:
            failures.append(f"{key_label(key)}: {v}")
    if gated == 0 and not failures:
        sys.exit(f"perf_gate: no baseline rows matched bench {fresh_id!r}")
    if failures:
        print(f"\nperf_gate: FAIL (machine class: "
              f"{base_data.get('machine', '?')})", file=sys.stderr)
        for f_ in failures:
            print(f"  {f_}", file=sys.stderr)
        print("  intentional? label the PR perf-baseline-reset and refresh "
              "bench/baselines.json with --update", file=sys.stderr)
        sys.exit(1)
    print(f"perf_gate: ok ({gated} pinned points within tolerance)")


if __name__ == "__main__":
    main()
