#!/usr/bin/env python3
"""Perf-regression gate over a BENCH JSON artifact.

Compares the throughput cells of a fresh bench run against the checked-in
baselines (bench/baselines.json) and fails — exit 1 — when a pinned point
regresses past the tolerances:

  * events_per_sec  more than --eps-drop   below baseline (default 20%)
  * peak_rss_mb     more than --rss-growth above baseline (default 10%)

Usage:
  # gate (CI): run a pinned bench, then
  ./bench/bench_e20_scale --quiet --json e20.json
  python3 tools/perf_gate.py e20.json --baselines bench/baselines.json

  # refresh baselines after an intentional perf change:
  python3 tools/perf_gate.py e20.json --baselines bench/baselines.json --update

The baseline file holds rows for several benches: each row's "bench" field
names the experiment id it belongs to (the "id" key of the BENCH JSON), and
only rows whose "bench" matches the fresh artifact are gated or updated.
Rows without a "bench" field gate against every artifact (legacy layout).
Within a bench, rows are keyed by their identifying cells (overlay/n for
E20, sweep/mode/links/block_kb for E22); only fresh rows whose key appears
in the baseline file are gated, so a JSON with extra sweep points gates only
the pinned ones. Wall-clock cells must be present in the JSON — run the
bench with the default timings_in_json=1.

CI override: maintainers label a PR `perf-baseline-reset` to skip the gate
for an intentional regression (new feature with a known cost); the same PR
must refresh bench/baselines.json with --update. See the perf-gate step in
.github/workflows/ci.yml.

events_per_sec is wall-clock dependent, so baselines are only comparable on
the machine class that produced them (the `machine` field records it). The
generous 20% drop tolerance absorbs normal runner noise; peak RSS is
allocator-deterministic and gets the tighter 10%.
"""

import argparse
import json
import sys


# Cells that identify a row within its bench. Absent cells key as None, so
# benches using disjoint subsets coexist (E20 rows key on overlay/n, E22
# rows on sweep/mode/links/block_kb).
KEY_FIELDS = ("overlay", "n", "sweep", "mode", "links", "block_kb")


def row_key(row):
    return tuple(row.get(k) for k in KEY_FIELDS)


def key_label(key):
    return "/".join(str(v) for v in key if v is not None) or "?"


def gates_this_bench(baseline_row, fresh_id):
    return baseline_row.get("bench") in (None, fresh_id)


def load_rows(path):
    with open(path) as f:
        data = json.load(f)
    rows = data.get("rows", [])
    if not rows:
        sys.exit(f"perf_gate: no rows in {path}")
    return data, rows


def main():
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("bench_json", help="BENCH_E20_scale.json from a fresh run")
    ap.add_argument("--baselines", default="bench/baselines.json")
    ap.add_argument("--eps-drop", type=float, default=0.20,
                    help="max fractional events/sec drop (default 0.20)")
    ap.add_argument("--rss-growth", type=float, default=0.10,
                    help="max fractional peak-RSS growth (default 0.10)")
    ap.add_argument("--update", action="store_true",
                    help="rewrite the baseline file from this run's rows")
    ap.add_argument("--machine", default="ci",
                    help="machine-class label recorded with --update")
    args = ap.parse_args()

    fresh_data, fresh_rows = load_rows(args.bench_json)
    fresh_id = fresh_data.get("id")
    fresh = {}
    for row in fresh_rows:
        if "events_per_sec" not in row or "peak_rss_mb" not in row:
            sys.exit("perf_gate: rows lack timing cells — run the bench "
                     "with timings_in_json=1 (the default)")
        fresh[row_key(row)] = row

    if args.update:
        with open(args.baselines) as f:
            base = json.load(f)
        base["machine"] = args.machine
        missing = []
        updated = 0
        for brow in base.get("rows", []):
            if not gates_this_bench(brow, fresh_id):
                continue  # another bench's row: leave untouched
            key = row_key(brow)
            frow = fresh.get(key)
            if frow is None:
                missing.append(key_label(key))
                continue
            brow["events_per_sec"] = frow["events_per_sec"]
            brow["peak_rss_mb"] = frow["peak_rss_mb"]
            updated += 1
        if missing:
            sys.exit(f"perf_gate: fresh run lacks pinned points {missing}")
        if updated == 0:
            sys.exit(f"perf_gate: no baseline rows belong to bench "
                     f"{fresh_id!r}")
        with open(args.baselines, "w") as f:
            json.dump(base, f, indent=2)
            f.write("\n")
        print(f"perf_gate: baselines rewritten ({updated} rows for "
              f"{fresh_id}, machine={args.machine})")
        return

    base_data, base_rows = load_rows(args.baselines)
    failures = []
    gated = 0
    for brow in base_rows:
        if not gates_this_bench(brow, fresh_id):
            continue  # pinned for a different bench
        key = row_key(brow)
        frow = fresh.get(key)
        if frow is None:
            failures.append(
                f"{key_label(key)}: pinned point missing from fresh run")
            continue
        gated += 1
        eps_base, eps_now = brow["events_per_sec"], frow["events_per_sec"]
        rss_base, rss_now = brow["peak_rss_mb"], frow["peak_rss_mb"]
        eps_floor = eps_base * (1.0 - args.eps_drop)
        rss_ceil = rss_base * (1.0 + args.rss_growth)
        verdict = []
        if eps_now < eps_floor:
            verdict.append(
                f"events/sec {eps_now:.0f} < floor {eps_floor:.0f} "
                f"(baseline {eps_base:.0f}, -{args.eps_drop:.0%})")
        if rss_now > rss_ceil:
            verdict.append(
                f"peak RSS {rss_now:.1f} MB > ceiling {rss_ceil:.1f} MB "
                f"(baseline {rss_base:.1f}, +{args.rss_growth:.0%})")
        status = "FAIL" if verdict else "ok"
        print(f"  {key_label(key)}: events/sec {eps_now:.0f} "
              f"(baseline {eps_base:.0f}), peak RSS {rss_now:.1f} MB "
              f"(baseline {rss_base:.1f}) ... {status}")
        for v in verdict:
            failures.append(f"{key_label(key)}: {v}")
    if gated == 0:
        sys.exit(f"perf_gate: no baseline rows matched bench {fresh_id!r}")
    if failures:
        print(f"\nperf_gate: FAIL (machine class: "
              f"{base_data.get('machine', '?')})", file=sys.stderr)
        for f_ in failures:
            print(f"  {f_}", file=sys.stderr)
        print("  intentional? label the PR perf-baseline-reset and refresh "
              "bench/baselines.json with --update", file=sys.stderr)
        sys.exit(1)
    print(f"perf_gate: ok ({gated} pinned points within tolerance)")


if __name__ == "__main__":
    main()
