// Offline analysis of decentnet JSONL traces (the files JsonlTraceSink
// writes, see src/sim/trace.hpp for the record kinds).
//
// Deliberately standalone: nothing here links against the simulator, so the
// decentnet-trace CLI stays a pure consumer of the on-disk format. Every
// output string is a deterministic function of the record stream — tests
// byte-compare them against pinned fixtures.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <map>
#include <string>
#include <utility>
#include <vector>

namespace decentnet::tracetool {

/// One parsed trace record. Fields the sink omitted (empty tag, zero-valued
/// a/b/bytes) come back as their defaults — the writer only serializes
/// non-default values.
struct Record {
  std::int64_t t = 0;
  std::string kind;
  std::string tag;
  std::uint64_t id = 0;
  std::uint64_t a = 0;
  std::uint64_t b = 0;
  std::uint64_t bytes = 0;
  std::uint64_t queue_us = 0;  // sender-side queueing delay ("span" records)
};

/// Parse a JSONL trace stream. Blank lines are skipped; a malformed line
/// throws std::runtime_error naming the 1-based line number.
std::vector<Record> parse_jsonl(std::istream& in);

// ---------------------------------------------------------------------------
// Per-kind / per-tag summary
// ---------------------------------------------------------------------------

struct Summary {
  std::uint64_t records = 0;
  std::int64_t t_first = 0;
  std::int64_t t_last = 0;
  std::map<std::string, std::uint64_t> by_kind;
  /// (kind, tag) -> count; only entries with a non-empty tag.
  std::map<std::pair<std::string, std::string>, std::uint64_t> by_kind_tag;
};

Summary summarize(const std::vector<Record>& records);
std::string summary_text(const Summary& s);

// ---------------------------------------------------------------------------
// Propagation trees (requires "span" records, i.e. span tracking was on)
// ---------------------------------------------------------------------------

/// One causal hop: an edge of a propagation tree. Non-virtual hops bind to
/// the "send" record immediately preceding their "span" record; arrival is
/// the earliest "net/deliver" schedule for that send (a duplicated message
/// schedules two, the copy first).
struct Hop {
  std::uint32_t segment = 0;  // see Tree::segment
  std::uint32_t id = 0;
  std::uint32_t root = 0;
  std::uint32_t parent = 0;  // 0 = tree root
  std::uint32_t depth = 0;
  std::int64_t send_t = 0;
  std::int64_t arrive_t = -1;  // -1 = never scheduled (dropped pre-schedule)
  std::uint64_t msg_seq = 0;
  std::uint64_t from = 0;
  std::uint64_t to = 0;
  std::uint64_t bytes = 0;
  std::uint64_t queue_us = 0;  // sender-side queue wait (bandwidth modes)
  bool virtual_root = false;  // opened by Network::new_span_root()
  bool dropped = false;       // a "drop" record shares this hop's msg_seq
};

struct Tree {
  /// Benches often run several simulators back to back into one trace file;
  /// each fresh simulator restarts time (and hop ids) at zero. A backwards
  /// jump in `t` starts a new segment, so hop ids never collide across runs.
  std::uint32_t segment = 0;
  std::uint32_t root = 0;          // root hop id (unique within its segment)
  std::uint64_t root_node = 0;     // originating node id (when known)
  bool root_node_known = false;
  std::vector<Hop> hops;           // trace order; includes the virtual root

  // Derived:
  std::uint64_t edges = 0;      // non-virtual hops
  std::uint64_t delivered = 0;  // edges that were not dropped
  std::uint64_t dropped = 0;
  std::uint64_t covered = 0;    // distinct nodes reached, origin included
  std::uint32_t depth_max = 0;  // over all edges, pruned ones included
  std::uint32_t fanout_max = 0;
  std::uint64_t queue_max_us = 0;  // worst sender-queue wait over all edges
  std::int64_t t0 = 0;          // origin coverage time (absolute, us)
  std::int64_t t90 = -1;        // time to 90% of `covered`, relative to t0
  std::int64_t t100 = -1;       // time to full coverage, relative to t0
};

/// Reconstruct propagation trees from the record stream. Trees are returned
/// sorted by edge count descending, then root hop id ascending.
std::vector<Tree> build_trees(const std::vector<Record>& records);

/// Deterministic text table over the top `top_n` trees.
std::string tree_stats_text(const std::vector<Tree>& trees, std::size_t top_n);

/// Chrome trace_event JSON (load via chrome://tracing or Perfetto): one "X"
/// slice per hop (ts = send, dur = flight time), pid = tree root, tid = tree
/// depth, plus "M" process_name metadata per tree.
std::string chrome_trace_json(const std::vector<Tree>& trees);

}  // namespace decentnet::tracetool
