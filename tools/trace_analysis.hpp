// Offline analysis of decentnet JSONL traces (the files JsonlTraceSink
// writes, see src/sim/trace.hpp for the record kinds).
//
// Deliberately standalone: nothing here links against the simulator, so the
// decentnet-trace CLI stays a pure consumer of the on-disk format. Every
// output string is a deterministic function of the record stream — tests
// byte-compare them against pinned fixtures.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <map>
#include <string>
#include <utility>
#include <vector>

namespace decentnet::tracetool {

/// One parsed trace record. Fields the sink omitted (empty tag, zero-valued
/// a/b/bytes) come back as their defaults — the writer only serializes
/// non-default values.
struct Record {
  std::int64_t t = 0;
  std::string kind;
  std::string tag;
  std::uint64_t id = 0;
  std::uint64_t a = 0;
  std::uint64_t b = 0;
  std::uint64_t bytes = 0;
  std::uint64_t queue_us = 0;  // sender-side queueing delay ("span" records)
};

/// Parse a JSONL trace stream. Blank lines are skipped; a malformed line
/// throws std::runtime_error naming the 1-based line number.
std::vector<Record> parse_jsonl(std::istream& in);

// ---------------------------------------------------------------------------
// Per-kind / per-tag summary
// ---------------------------------------------------------------------------

struct Summary {
  std::uint64_t records = 0;
  std::int64_t t_first = 0;
  std::int64_t t_last = 0;
  std::map<std::string, std::uint64_t> by_kind;
  /// (kind, tag) -> count; only entries with a non-empty tag.
  std::map<std::pair<std::string, std::string>, std::uint64_t> by_kind_tag;
};

Summary summarize(const std::vector<Record>& records);
std::string summary_text(const Summary& s);

// ---------------------------------------------------------------------------
// Propagation trees (requires "span" records, i.e. span tracking was on)
// ---------------------------------------------------------------------------

/// One causal hop: an edge of a propagation tree. Non-virtual hops bind to
/// the "send" record immediately preceding their "span" record; arrival is
/// the earliest "net/deliver" schedule for that send (a duplicated message
/// schedules two, the copy first).
struct Hop {
  std::uint32_t segment = 0;  // see Tree::segment
  std::uint32_t id = 0;
  std::uint32_t root = 0;
  std::uint32_t parent = 0;  // 0 = tree root
  std::uint32_t depth = 0;
  std::int64_t send_t = 0;
  std::int64_t arrive_t = -1;  // -1 = never scheduled (dropped pre-schedule)
  std::uint64_t msg_seq = 0;
  std::uint64_t from = 0;
  std::uint64_t to = 0;
  std::uint64_t bytes = 0;
  std::uint64_t queue_us = 0;  // sender-side queue wait (bandwidth modes)
  bool virtual_root = false;  // opened by Network::new_span_root()
  bool dropped = false;       // a "drop" record shares this hop's msg_seq
};

struct Tree {
  /// Benches often run several simulators back to back into one trace file;
  /// each fresh simulator restarts time (and hop ids) at zero. A backwards
  /// jump in `t` starts a new segment, so hop ids never collide across runs.
  std::uint32_t segment = 0;
  std::uint32_t root = 0;          // root hop id (unique within its segment)
  std::uint64_t root_node = 0;     // originating node id (when known)
  bool root_node_known = false;
  std::vector<Hop> hops;           // trace order; includes the virtual root

  // Derived:
  std::uint64_t edges = 0;      // non-virtual hops
  std::uint64_t delivered = 0;  // edges that were not dropped
  std::uint64_t dropped = 0;
  std::uint64_t covered = 0;    // distinct nodes reached, origin included
  std::uint32_t depth_max = 0;  // over all edges, pruned ones included
  std::uint32_t fanout_max = 0;
  std::uint64_t queue_max_us = 0;  // worst sender-queue wait over all edges
  std::int64_t t0 = 0;          // origin coverage time (absolute, us)
  std::int64_t t90 = -1;        // time to 90% of `covered`, relative to t0
  std::int64_t t100 = -1;       // time to full coverage, relative to t0
};

/// Reconstruct propagation trees from the record stream. Trees are returned
/// sorted by edge count descending, then root hop id ascending.
std::vector<Tree> build_trees(const std::vector<Record>& records);

/// Deterministic text table over the top `top_n` trees.
std::string tree_stats_text(const std::vector<Tree>& trees, std::size_t top_n);

/// Chrome trace_event JSON (load via chrome://tracing or Perfetto): one "X"
/// slice per hop (ts = send, dur = flight time), pid = tree root, tid = tree
/// depth, plus "M" process_name metadata per tree.
std::string chrome_trace_json(const std::vector<Tree>& trees);

// ---------------------------------------------------------------------------
// Telemetry timelines (the JSONL series files --telemetry writes, see
// src/sim/telemetry.hpp: {"t":T,"shard":S,"series":"name","v":V})
// ---------------------------------------------------------------------------

/// One telemetry sample. `v` is a double — counters serialize as integers
/// but gauges can be fractional, so series files get their own parser (the
/// trace Record parser deliberately rejects non-integer numbers).
struct Sample {
  std::uint32_t segment = 0;  // backwards jump in `t` starts a new segment
  std::int64_t t = 0;
  std::uint32_t shard = 0;
  std::string series;
  double v = 0;
};

/// Parse a JSONL series stream. Blank lines are skipped; a malformed line
/// throws std::runtime_error naming the 1-based line number. Segments follow
/// the same convention as build_trees: benches append several runs to one
/// file and each fresh run restarts sim time at zero.
std::vector<Sample> parse_series_jsonl(std::istream& in);

/// Per-(segment, shard, series) statistics. Ramp detection finds the longest
/// nondecreasing run of samples; it is reported when the run spans at least
/// 4 samples and multiplies the value by at least 4x (a climb from zero to
/// any positive value counts) — the shape of a TCP cwnd opening up or a
/// queue building toward saturation.
struct SeriesStats {
  std::uint32_t segment = 0;
  std::uint32_t shard = 0;
  std::string series;
  std::uint64_t count = 0;
  double min = 0;
  double mean = 0;
  double max = 0;
  double p99 = 0;  // value at ceil(0.99 * count) over the sorted samples
  double first = 0;
  double last = 0;
  std::int64_t t_first = 0;
  std::int64_t t_last = 0;
  bool ramp = false;
  std::int64_t ramp_t0 = 0;  // ramp window, absolute us (valid when `ramp`)
  std::int64_t ramp_t1 = 0;
  double ramp_from = 0;
  double ramp_to = 0;
};

/// Derive stats for every (segment, shard, series) group, in that key order.
std::vector<SeriesStats> timeline_stats(const std::vector<Sample>& samples);

/// Deterministic text table over the stats, one row per series, with a
/// trailing "ramps:" section naming each detected ramp.
std::string timeline_text(const std::vector<SeriesStats>& stats);

/// Correlate series excursions with fault windows from the matching event
/// trace. Each "fault" record opens a window at its `t`, closed by the
/// "heal" record with the same plan index in the same segment (falling back
/// to the record's heal-time field, else the end of the segment). For every
/// series in that segment, the window max is compared against the baseline
/// median of the samples outside every fault window: an excursion is
/// reported when the in-window max exceeds 2x the baseline (any nonzero max
/// counts when the baseline is zero). Returns deterministic text; empty when
/// the trace has no fault records.
std::string timeline_fault_text(const std::vector<Sample>& samples,
                                const std::vector<Record>& trace);

/// CSV export: "segment,t_us,shard,series,v" header plus one row per sample
/// in input order. `v` round-trips through the same shortest-form double
/// formatting the sink used.
std::string timeline_csv(const std::vector<Sample>& samples);

/// Chrome trace_event JSON: one "C" counter event per sample (pid = segment,
/// tid = shard), so series render as counter tracks alongside the span
/// slices chrome_trace_json emits.
std::string timeline_chrome_json(const std::vector<Sample>& samples);

}  // namespace decentnet::tracetool
