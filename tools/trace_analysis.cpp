#include "trace_analysis.hpp"

#include <algorithm>
#include <charconv>
#include <cstdlib>
#include <iomanip>
#include <istream>
#include <sstream>
#include <stdexcept>
#include <tuple>
#include <unordered_map>
#include <unordered_set>

namespace decentnet::tracetool {

namespace {

[[noreturn]] void bad_line(std::size_t lineno, const std::string& why) {
  throw std::runtime_error("trace line " + std::to_string(lineno) + ": " +
                           why);
}

/// Parse one JSONL object. The writer emits a flat object with string and
/// unsigned-integer values only; this parser accepts exactly that shape (in
/// any key order) and rejects everything else.
Record parse_line(const std::string& line, std::size_t lineno) {
  Record rec;
  std::size_t i = 0;
  const auto skip_ws = [&] {
    while (i < line.size() && (line[i] == ' ' || line[i] == '\t')) ++i;
  };
  const auto expect = [&](char c) {
    skip_ws();
    if (i >= line.size() || line[i] != c) {
      bad_line(lineno, std::string("expected '") + c + "'");
    }
    ++i;
  };
  const auto parse_string = [&]() -> std::string {
    expect('"');
    std::string out;
    while (i < line.size() && line[i] != '"') {
      char c = line[i++];
      if (c == '\\') {
        if (i >= line.size()) bad_line(lineno, "dangling escape");
        const char esc = line[i++];
        if (esc == 'u') {
          if (i + 4 > line.size()) bad_line(lineno, "short \\u escape");
          unsigned code = 0;
          for (int k = 0; k < 4; ++k) {
            const char h = line[i++];
            code <<= 4;
            if (h >= '0' && h <= '9') code |= static_cast<unsigned>(h - '0');
            else if (h >= 'a' && h <= 'f') code |= static_cast<unsigned>(h - 'a' + 10);
            else if (h >= 'A' && h <= 'F') code |= static_cast<unsigned>(h - 'A' + 10);
            else bad_line(lineno, "bad \\u escape");
          }
          c = code < 256 ? static_cast<char>(code) : '?';
        } else {
          c = esc;  // \" \\ \/ come back verbatim; \n etc. never emitted
        }
      }
      out += c;
    }
    expect('"');
    return out;
  };
  const auto parse_uint = [&]() -> std::uint64_t {
    skip_ws();
    if (i >= line.size() || line[i] < '0' || line[i] > '9') {
      bad_line(lineno, "expected integer");
    }
    std::uint64_t v = 0;
    while (i < line.size() && line[i] >= '0' && line[i] <= '9') {
      v = v * 10 + static_cast<std::uint64_t>(line[i++] - '0');
    }
    return v;
  };

  expect('{');
  skip_ws();
  if (i < line.size() && line[i] == '}') return rec;  // empty object
  while (true) {
    const std::string key = parse_string();
    expect(':');
    skip_ws();
    if (key == "kind") {
      rec.kind = parse_string();
    } else if (key == "tag") {
      rec.tag = parse_string();
    } else if (i < line.size() && line[i] == '"') {
      parse_string();  // unknown string field: tolerate and drop
    } else {
      const std::uint64_t v = parse_uint();
      if (key == "t") rec.t = static_cast<std::int64_t>(v);
      else if (key == "id") rec.id = v;
      else if (key == "a") rec.a = v;
      else if (key == "b") rec.b = v;
      else if (key == "bytes") rec.bytes = v;
      else if (key == "queue_us") rec.queue_us = v;
      // unknown numeric fields are tolerated and dropped
    }
    skip_ws();
    if (i < line.size() && line[i] == ',') {
      ++i;
      continue;
    }
    expect('}');
    break;
  }
  return rec;
}

}  // namespace

std::vector<Record> parse_jsonl(std::istream& in) {
  std::vector<Record> out;
  std::string line;
  std::size_t lineno = 0;
  while (std::getline(in, line)) {
    ++lineno;
    if (!line.empty() && line.back() == '\r') line.pop_back();
    std::size_t first = line.find_first_not_of(" \t");
    if (first == std::string::npos) continue;
    out.push_back(parse_line(line, lineno));
  }
  return out;
}

// ---------------------------------------------------------------------------
// Summary
// ---------------------------------------------------------------------------

Summary summarize(const std::vector<Record>& records) {
  Summary s;
  s.records = records.size();
  if (!records.empty()) {
    s.t_first = records.front().t;
    s.t_last = records.front().t;
  }
  for (const Record& r : records) {
    s.t_first = std::min(s.t_first, r.t);
    s.t_last = std::max(s.t_last, r.t);
    ++s.by_kind[r.kind];
    if (!r.tag.empty()) ++s.by_kind_tag[{r.kind, r.tag}];
  }
  return s;
}

std::string summary_text(const Summary& s) {
  std::ostringstream os;
  os << "records: " << s.records << "\n";
  os << "time_span_us: [" << s.t_first << ", " << s.t_last << "]\n";
  os << "by kind:\n";
  for (const auto& [kind, n] : s.by_kind) {
    os << "  " << std::left << std::setw(10) << kind << std::right
       << std::setw(12) << n << "\n";
  }
  bool header = false;
  for (const auto& [key, n] : s.by_kind_tag) {
    if (!header) {
      os << "by kind/tag:\n";
      header = true;
    }
    os << "  " << std::left << std::setw(28) << (key.first + "/" + key.second)
       << std::right << std::setw(12) << n << "\n";
  }
  return os.str();
}

// ---------------------------------------------------------------------------
// Propagation trees
// ---------------------------------------------------------------------------

std::vector<Tree> build_trees(const std::vector<Record>& records) {
  std::vector<Hop> hops;
  std::unordered_map<std::uint64_t, std::size_t> hop_by_seq;  // msg_seq -> idx

  // Single pass: a non-root "span" record binds to the "send" immediately
  // before it; its arrival is the earliest "net/deliver" schedule before the
  // next "send" (a duplicated delivery schedules the copy first, so min()).
  // A backwards time jump means a fresh simulator appended to the same file:
  // bump the segment and forget per-run state.
  const Record* last_send = nullptr;
  std::size_t awaiting = static_cast<std::size_t>(-1);  // hop idx wanting sched
  std::uint32_t segment = 0;
  std::int64_t prev_t = 0;
  for (const Record& r : records) {
    if (r.t < prev_t) {
      ++segment;
      last_send = nullptr;
      awaiting = static_cast<std::size_t>(-1);
      hop_by_seq.clear();
    }
    prev_t = r.t;
    if (r.kind == "send") {
      last_send = &r;
      awaiting = static_cast<std::size_t>(-1);
    } else if (r.kind == "span") {
      Hop h;
      h.segment = segment;
      h.id = static_cast<std::uint32_t>(r.id);
      h.root = static_cast<std::uint32_t>(r.a);
      h.parent = static_cast<std::uint32_t>(r.b);
      h.depth = static_cast<std::uint32_t>(r.bytes);
      h.send_t = r.t;
      h.queue_us = r.queue_us;
      if (r.tag == "root") {
        h.virtual_root = true;
      } else if (last_send != nullptr) {
        h.msg_seq = last_send->id;
        h.from = last_send->a;
        h.to = last_send->b;
        h.bytes = last_send->bytes;
        hop_by_seq.emplace(h.msg_seq, hops.size());
        awaiting = hops.size();
      }
      hops.push_back(h);
    } else if (r.kind == "sched" && r.tag == "net/deliver" &&
               awaiting != static_cast<std::size_t>(-1)) {
      Hop& h = hops[awaiting];
      const auto fire = static_cast<std::int64_t>(r.a);
      if (h.arrive_t < 0 || fire < h.arrive_t) h.arrive_t = fire;
    } else if (r.kind == "drop") {
      const auto it = hop_by_seq.find(r.id);
      if (it != hop_by_seq.end()) hops[it->second].dropped = true;
    }
  }

  // Partition into trees (keyed by segment + root hop id).
  std::map<std::pair<std::uint32_t, std::uint32_t>, Tree> by_root;
  for (const Hop& h : hops) {
    Tree& tree = by_root[{h.segment, h.root}];
    tree.segment = h.segment;
    tree.root = h.root;
    tree.hops.push_back(h);
  }

  // Derive per-tree stats.
  for (auto& [key, tree] : by_root) {
    std::unordered_map<std::uint32_t, std::uint32_t> children;  // parent->n
    const Hop* root_hop = nullptr;
    for (const Hop& h : tree.hops) {
      if (h.id == tree.root) root_hop = &h;
      if (h.virtual_root) continue;
      ++tree.edges;
      if (h.dropped) ++tree.dropped; else ++tree.delivered;
      tree.depth_max = std::max(tree.depth_max, h.depth);
      tree.queue_max_us = std::max(tree.queue_max_us, h.queue_us);
      if (h.parent != 0) {
        tree.fanout_max = std::max(tree.fanout_max, ++children[h.parent]);
      }
    }
    // Origin: a virtual root names no node, so borrow the first child's
    // sender; a real root hop is itself a send from the origin.
    if (root_hop != nullptr) {
      tree.t0 = root_hop->send_t;
      if (!root_hop->virtual_root) {
        tree.root_node = root_hop->from;
        tree.root_node_known = true;
      } else {
        for (const Hop& h : tree.hops) {
          if (!h.virtual_root && h.parent == tree.root) {
            tree.root_node = h.from;
            tree.root_node_known = true;
            break;
          }
        }
      }
    } else if (!tree.hops.empty()) {
      tree.t0 = tree.hops.front().send_t;  // truncated trace: best effort
    }

    // Coverage: origin at t0, then each delivered hop covers its receiver
    // at arrival; first arrival per node wins.
    std::unordered_map<std::uint64_t, std::int64_t> cover;
    if (tree.root_node_known) cover[tree.root_node] = tree.t0;
    for (const Hop& h : tree.hops) {
      if (h.virtual_root || h.dropped || h.arrive_t < 0) continue;
      const auto it = cover.find(h.to);
      if (it == cover.end()) cover.emplace(h.to, h.arrive_t);
      else it->second = std::min(it->second, h.arrive_t);
    }
    tree.covered = cover.size();
    if (tree.covered > 0) {
      std::vector<std::int64_t> times;
      times.reserve(cover.size());
      for (const auto& [node, t] : cover) times.push_back(t);
      std::sort(times.begin(), times.end());
      const std::size_t pop = times.size();
      const std::size_t k = (pop * 9 + 9) / 10;  // ceil(0.9 * pop)
      tree.t90 = times[k - 1] - tree.t0;
      tree.t100 = times.back() - tree.t0;
    }
  }

  std::vector<Tree> out;
  out.reserve(by_root.size());
  for (auto& [key, tree] : by_root) out.push_back(std::move(tree));
  std::sort(out.begin(), out.end(), [](const Tree& x, const Tree& y) {
    if (x.edges != y.edges) return x.edges > y.edges;
    if (x.segment != y.segment) return x.segment < y.segment;
    return x.root < y.root;
  });
  return out;
}

std::string tree_stats_text(const std::vector<Tree>& trees,
                            std::size_t top_n) {
  std::ostringstream os;
  const std::size_t shown = std::min(top_n, trees.size());
  os << "trees: " << trees.size() << " (showing " << shown
     << ", by edges)\n";
  os << std::right << std::setw(4) << "seg" << std::setw(8) << "root"
     << std::setw(10) << "origin"
     << std::setw(8) << "edges" << std::setw(10) << "delivered"
     << std::setw(8) << "dropped" << std::setw(8) << "covered"
     << std::setw(6) << "depth" << std::setw(7) << "fanout"
     << std::setw(10) << "qmax_us"
     << std::setw(10) << "t90_us" << std::setw(10) << "t100_us" << "\n";
  for (std::size_t i = 0; i < shown; ++i) {
    const Tree& t = trees[i];
    os << std::setw(4) << t.segment << std::setw(8) << t.root;
    if (t.root_node_known) os << std::setw(10) << t.root_node;
    else os << std::setw(10) << "?";
    os << std::setw(8) << t.edges << std::setw(10) << t.delivered
       << std::setw(8) << t.dropped << std::setw(8) << t.covered
       << std::setw(6) << t.depth_max << std::setw(7) << t.fanout_max
       << std::setw(10) << t.queue_max_us;
    if (t.t90 >= 0) os << std::setw(10) << t.t90;
    else os << std::setw(10) << "-";
    if (t.t100 >= 0) os << std::setw(10) << t.t100;
    else os << std::setw(10) << "-";
    os << "\n";
  }
  return os.str();
}

std::string chrome_trace_json(const std::vector<Tree>& trees) {
  std::ostringstream os;
  os << "{\"traceEvents\":[\n";
  bool first = true;
  const auto sep = [&] {
    if (!first) os << ",\n";
    first = false;
  };
  for (const Tree& t : trees) {
    // pid must be unique per tree; fold the segment in without disturbing
    // the common single-segment case where pid == root hop id.
    const std::uint64_t pid =
        static_cast<std::uint64_t>(t.segment) * 100000000ULL + t.root;
    sep();
    os << "{\"ph\":\"M\",\"pid\":" << pid
       << ",\"name\":\"process_name\",\"args\":{\"name\":\"seg " << t.segment
       << " tree " << t.root;
    if (t.root_node_known) os << " origin node " << t.root_node;
    os << "\"}}";
    for (const Hop& h : t.hops) {
      if (h.virtual_root) continue;
      const std::int64_t dur = h.arrive_t >= 0 ? h.arrive_t - h.send_t : 0;
      sep();
      os << "{\"ph\":\"X\",\"pid\":" << pid << ",\"tid\":" << h.depth
         << ",\"ts\":" << h.send_t << ",\"dur\":" << dur << ",\"name\":\""
         << h.from << "->" << h.to << "\",\"cat\":\"span\",\"args\":{\"hop\":"
         << h.id << ",\"parent\":" << h.parent << ",\"seq\":" << h.msg_seq
         << ",\"bytes\":" << h.bytes << ",\"queue_us\":" << h.queue_us
         << ",\"dropped\":" << (h.dropped ? 1 : 0) << "}}";
    }
  }
  os << "\n],\"displayTimeUnit\":\"ms\"}\n";
  return os.str();
}

// ---------------------------------------------------------------------------
// Telemetry timelines
// ---------------------------------------------------------------------------

namespace {

[[noreturn]] void bad_series_line(std::size_t lineno, const std::string& why) {
  throw std::runtime_error("series line " + std::to_string(lineno) + ": " +
                           why);
}

/// Parse one series record. Same flat-object discipline as parse_line, but
/// the "v" value is a full double (the sink writes shortest round-trip
/// form: "3", "0.5", "1e+20", negatives included).
Sample parse_series_line(const std::string& line, std::size_t lineno) {
  Sample s;
  std::size_t i = 0;
  const auto skip_ws = [&] {
    while (i < line.size() && (line[i] == ' ' || line[i] == '\t')) ++i;
  };
  const auto expect = [&](char c) {
    skip_ws();
    if (i >= line.size() || line[i] != c) {
      bad_series_line(lineno, std::string("expected '") + c + "'");
    }
    ++i;
  };
  const auto parse_string = [&]() -> std::string {
    expect('"');
    std::string out;
    while (i < line.size() && line[i] != '"') {
      char c = line[i++];
      if (c == '\\') {
        if (i >= line.size()) bad_series_line(lineno, "dangling escape");
        c = line[i++];  // series names are plain identifiers; \" \\ suffice
      }
      out += c;
    }
    expect('"');
    return out;
  };
  const auto parse_number = [&]() -> double {
    skip_ws();
    const char* begin = line.c_str() + i;
    char* end = nullptr;
    const double v = std::strtod(begin, &end);
    if (end == begin) bad_series_line(lineno, "expected number");
    i += static_cast<std::size_t>(end - begin);
    return v;
  };

  expect('{');
  skip_ws();
  if (i < line.size() && line[i] == '}') return s;  // empty object
  while (true) {
    const std::string key = parse_string();
    expect(':');
    skip_ws();
    if (key == "series") {
      s.series = parse_string();
    } else if (i < line.size() && line[i] == '"') {
      parse_string();  // unknown string field: tolerate and drop
    } else {
      const double v = parse_number();
      if (key == "t") s.t = static_cast<std::int64_t>(v);
      else if (key == "shard") s.shard = static_cast<std::uint32_t>(v);
      else if (key == "v") s.v = v;
      // unknown numeric fields are tolerated and dropped
    }
    skip_ws();
    if (i < line.size() && line[i] == ',') {
      ++i;
      continue;
    }
    expect('}');
    break;
  }
  return s;
}

/// Shortest round-trip double formatting — the exact bytes the sink wrote,
/// so the CSV export round-trips values losslessly.
std::string fmt_double(double v) {
  char tmp[32];
  const auto res = std::to_chars(tmp, tmp + sizeof(tmp), v);
  if (res.ec != std::errc()) return "0";
  return std::string(tmp, res.ptr);
}

/// 6-significant-digit form for the stats table: fits the columns, still a
/// deterministic function of the value (to_chars, not locale-aware printf).
std::string fmt_stat(double v) {
  char tmp[32];
  const auto res =
      std::to_chars(tmp, tmp + sizeof(tmp), v, std::chars_format::general, 6);
  if (res.ec != std::errc()) return "0";
  return std::string(tmp, res.ptr);
}

}  // namespace

std::vector<Sample> parse_series_jsonl(std::istream& in) {
  std::vector<Sample> out;
  std::string line;
  std::size_t lineno = 0;
  std::uint32_t segment = 0;
  std::int64_t prev_t = 0;
  while (std::getline(in, line)) {
    ++lineno;
    if (!line.empty() && line.back() == '\r') line.pop_back();
    const std::size_t first = line.find_first_not_of(" \t");
    if (first == std::string::npos) continue;
    Sample s = parse_series_line(line, lineno);
    if (s.t < prev_t) ++segment;  // fresh run appended to the same file
    prev_t = s.t;
    s.segment = segment;
    out.push_back(std::move(s));
  }
  return out;
}

std::vector<SeriesStats> timeline_stats(const std::vector<Sample>& samples) {
  using Key = std::tuple<std::uint32_t, std::uint32_t, std::string>;
  std::map<Key, std::vector<const Sample*>> groups;
  for (const Sample& s : samples) {
    groups[{s.segment, s.shard, s.series}].push_back(&s);
  }

  std::vector<SeriesStats> out;
  out.reserve(groups.size());
  for (const auto& [key, pts] : groups) {
    SeriesStats st;
    st.segment = std::get<0>(key);
    st.shard = std::get<1>(key);
    st.series = std::get<2>(key);
    st.count = pts.size();
    st.first = pts.front()->v;
    st.last = pts.back()->v;
    st.t_first = pts.front()->t;
    st.t_last = pts.back()->t;
    st.min = st.max = st.first;
    double sum = 0;
    std::vector<double> sorted;
    sorted.reserve(pts.size());
    for (const Sample* p : pts) {
      st.min = std::min(st.min, p->v);
      st.max = std::max(st.max, p->v);
      sum += p->v;
      sorted.push_back(p->v);
    }
    st.mean = sum / static_cast<double>(pts.size());
    std::sort(sorted.begin(), sorted.end());
    const std::size_t k = (sorted.size() * 99 + 99) / 100;  // ceil(0.99 n)
    st.p99 = sorted[k - 1];

    // Ramp: longest maximal nondecreasing run that spans >= 4 samples and
    // multiplies the value by >= 4x (0 -> anything positive counts). Ties
    // go to the earliest run.
    std::size_t run_start = 0;
    std::size_t best_len = 0;
    const auto consider = [&](std::size_t lo, std::size_t hi) {  // [lo, hi]
      const std::size_t len = hi - lo + 1;
      if (len < 4 || len <= best_len) return;
      const double from = pts[lo]->v;
      const double to = pts[hi]->v;
      if (from > 0 ? to < 4 * from : to <= 0) return;
      best_len = len;
      st.ramp = true;
      st.ramp_t0 = pts[lo]->t;
      st.ramp_t1 = pts[hi]->t;
      st.ramp_from = from;
      st.ramp_to = to;
    };
    for (std::size_t i = 1; i < pts.size(); ++i) {
      if (pts[i]->v < pts[i - 1]->v) {
        consider(run_start, i - 1);
        run_start = i;
      }
    }
    consider(run_start, pts.size() - 1);
    out.push_back(std::move(st));
  }
  return out;
}

std::string timeline_text(const std::vector<SeriesStats>& stats) {
  std::ostringstream os;
  os << "series: " << stats.size() << "\n";
  os << std::right << std::setw(4) << "seg" << std::setw(6) << "shard"
     << "  " << std::left << std::setw(26) << "series" << std::right
     << std::setw(7) << "count" << std::setw(13) << "min" << std::setw(13)
     << "mean" << std::setw(13) << "max" << std::setw(13) << "p99"
     << std::setw(13) << "first" << std::setw(13) << "last" << "\n";
  for (const SeriesStats& st : stats) {
    os << std::right << std::setw(4) << st.segment << std::setw(6) << st.shard
       << "  " << std::left << std::setw(26) << st.series << std::right
       << std::setw(7) << st.count << std::setw(13) << fmt_stat(st.min)
       << std::setw(13) << fmt_stat(st.mean) << std::setw(13)
       << fmt_stat(st.max) << std::setw(13) << fmt_stat(st.p99)
       << std::setw(13) << fmt_stat(st.first) << std::setw(13)
       << fmt_stat(st.last) << "\n";
  }
  bool header = false;
  for (const SeriesStats& st : stats) {
    if (!st.ramp) continue;
    if (!header) {
      os << "ramps:\n";
      header = true;
    }
    os << "  seg " << st.segment << " shard " << st.shard << " " << st.series
       << ": " << fmt_stat(st.ramp_from) << " -> " << fmt_stat(st.ramp_to)
       << " over [" << st.ramp_t0 << ", " << st.ramp_t1 << "] us\n";
  }
  return os.str();
}

std::string timeline_fault_text(const std::vector<Sample>& samples,
                                const std::vector<Record>& trace) {
  // Fault windows, with the same segment convention as the series stream.
  struct Window {
    std::uint32_t segment = 0;
    std::string tag;
    std::uint64_t id = 0;    // plan event index
    std::uint64_t node = 0;  // target node index
    std::int64_t t0 = 0;     // inject time
    std::int64_t t1 = -1;    // heal time; -1 = no heal seen
  };
  std::vector<Window> windows;
  std::uint32_t segment = 0;
  std::int64_t prev_t = 0;
  for (const Record& r : trace) {
    if (r.t < prev_t) ++segment;
    prev_t = r.t;
    if (r.kind == "fault") {
      Window w;
      w.segment = segment;
      w.tag = r.tag;
      w.id = r.id;
      w.node = r.a;
      w.t0 = r.t;
      if (r.b != 0) w.t1 = static_cast<std::int64_t>(r.b);  // planned heal
      windows.push_back(std::move(w));
    } else if (r.kind == "heal") {
      for (auto it = windows.rbegin(); it != windows.rend(); ++it) {
        if (it->segment == segment && it->id == r.id) {
          it->t1 = r.t;  // actual heal wins over the planned time
          break;
        }
      }
    }
  }
  if (windows.empty()) return "";

  // Per-segment end time (closes never-healed windows) and per-series
  // sample groups.
  std::map<std::uint32_t, std::int64_t> seg_end;
  using Key = std::tuple<std::uint32_t, std::uint32_t, std::string>;
  std::map<Key, std::vector<const Sample*>> groups;
  for (const Sample& s : samples) {
    auto [it, inserted] = seg_end.emplace(s.segment, s.t);
    if (!inserted) it->second = std::max(it->second, s.t);
    groups[{s.segment, s.shard, s.series}].push_back(&s);
  }
  for (Window& w : windows) {
    if (w.t1 >= 0) continue;
    const auto it = seg_end.find(w.segment);
    w.t1 = it != seg_end.end() ? it->second : w.t0;
  }

  const auto in_any_window = [&](std::uint32_t seg, std::int64_t t) {
    for (const Window& w : windows) {
      if (w.segment == seg && t >= w.t0 && t <= w.t1) return true;
    }
    return false;
  };

  std::ostringstream os;
  os << "fault windows: " << windows.size() << "\n";
  for (const Window& w : windows) {
    os << "  seg " << w.segment << " " << w.tag << " id " << w.id << " node "
       << w.node << " [" << w.t0 << ", " << w.t1 << "] us\n";
    for (const auto& [key, pts] : groups) {
      if (std::get<0>(key) != w.segment) continue;
      // Baseline: median of the samples outside every fault window of this
      // segment (the series' quiet level). Window max above 2x baseline —
      // or above zero when the baseline is zero — is an excursion.
      std::vector<double> outside;
      double win_max = 0;
      bool in_window = false;
      for (const Sample* p : pts) {
        if (p->t >= w.t0 && p->t <= w.t1) {
          win_max = in_window ? std::max(win_max, p->v) : p->v;
          in_window = true;
        }
        if (!in_any_window(std::get<0>(key), p->t)) outside.push_back(p->v);
      }
      if (!in_window) continue;
      double baseline = 0;
      if (!outside.empty()) {
        std::sort(outside.begin(), outside.end());
        baseline = outside[(outside.size() - 1) / 2];
      }
      const bool excursion =
          baseline > 0 ? win_max > 2 * baseline : win_max > 0;
      if (!excursion) continue;
      os << "    excursion shard " << std::get<1>(key) << " "
         << std::get<2>(key) << ": max " << fmt_stat(win_max)
         << " vs baseline " << fmt_stat(baseline) << "\n";
    }
  }
  return os.str();
}

std::string timeline_csv(const std::vector<Sample>& samples) {
  std::string out = "segment,t_us,shard,series,v\n";
  for (const Sample& s : samples) {
    out += std::to_string(s.segment);
    out += ',';
    out += std::to_string(s.t);
    out += ',';
    out += std::to_string(s.shard);
    out += ',';
    out += s.series;
    out += ',';
    out += fmt_double(s.v);
    out += '\n';
  }
  return out;
}

std::string timeline_chrome_json(const std::vector<Sample>& samples) {
  std::ostringstream os;
  os << "{\"traceEvents\":[\n";
  bool first = true;
  for (const Sample& s : samples) {
    if (!first) os << ",\n";
    first = false;
    // Counters are keyed by (pid, name): fold the shard into the name so
    // per-shard series render as separate tracks.
    os << "{\"ph\":\"C\",\"pid\":" << s.segment << ",\"tid\":" << s.shard
       << ",\"ts\":" << s.t << ",\"name\":\"" << s.series;
    if (s.shard != 0) os << "#" << s.shard;
    os << "\",\"args\":{\"v\":" << fmt_double(s.v) << "}}";
  }
  os << "\n],\"displayTimeUnit\":\"ms\"}\n";
  return os.str();
}

}  // namespace decentnet::tracetool
