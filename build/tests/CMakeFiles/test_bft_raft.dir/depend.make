# Empty dependencies file for test_bft_raft.
# This may be replaced when dependencies are built.
