file(REMOVE_RECURSE
  "CMakeFiles/test_bft_raft.dir/test_bft_raft.cpp.o"
  "CMakeFiles/test_bft_raft.dir/test_bft_raft.cpp.o.d"
  "test_bft_raft"
  "test_bft_raft.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_bft_raft.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
