file(REMOVE_RECURSE
  "CMakeFiles/test_chain_attacks.dir/test_chain_attacks.cpp.o"
  "CMakeFiles/test_chain_attacks.dir/test_chain_attacks.cpp.o.d"
  "test_chain_attacks"
  "test_chain_attacks.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_chain_attacks.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
