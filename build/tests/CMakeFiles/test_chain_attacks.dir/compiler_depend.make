# Empty compiler generated dependencies file for test_chain_attacks.
# This may be replaced when dependencies are built.
