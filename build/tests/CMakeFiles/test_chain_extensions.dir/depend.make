# Empty dependencies file for test_chain_extensions.
# This may be replaced when dependencies are built.
