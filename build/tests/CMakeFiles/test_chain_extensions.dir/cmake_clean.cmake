file(REMOVE_RECURSE
  "CMakeFiles/test_chain_extensions.dir/test_chain_extensions.cpp.o"
  "CMakeFiles/test_chain_extensions.dir/test_chain_extensions.cpp.o.d"
  "test_chain_extensions"
  "test_chain_extensions.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_chain_extensions.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
