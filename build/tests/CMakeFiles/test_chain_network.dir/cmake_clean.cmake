file(REMOVE_RECURSE
  "CMakeFiles/test_chain_network.dir/test_chain_network.cpp.o"
  "CMakeFiles/test_chain_network.dir/test_chain_network.cpp.o.d"
  "test_chain_network"
  "test_chain_network.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_chain_network.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
