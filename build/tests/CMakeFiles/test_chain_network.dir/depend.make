# Empty dependencies file for test_chain_network.
# This may be replaced when dependencies are built.
