file(REMOVE_RECURSE
  "CMakeFiles/test_overlay_chord.dir/test_overlay_chord.cpp.o"
  "CMakeFiles/test_overlay_chord.dir/test_overlay_chord.cpp.o.d"
  "test_overlay_chord"
  "test_overlay_chord.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_overlay_chord.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
