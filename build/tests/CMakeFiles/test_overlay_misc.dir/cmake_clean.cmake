file(REMOVE_RECURSE
  "CMakeFiles/test_overlay_misc.dir/test_overlay_misc.cpp.o"
  "CMakeFiles/test_overlay_misc.dir/test_overlay_misc.cpp.o.d"
  "test_overlay_misc"
  "test_overlay_misc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_overlay_misc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
