# Empty dependencies file for test_overlay_misc.
# This may be replaced when dependencies are built.
