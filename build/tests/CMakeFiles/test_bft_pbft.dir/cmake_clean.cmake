file(REMOVE_RECURSE
  "CMakeFiles/test_bft_pbft.dir/test_bft_pbft.cpp.o"
  "CMakeFiles/test_bft_pbft.dir/test_bft_pbft.cpp.o.d"
  "test_bft_pbft"
  "test_bft_pbft.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_bft_pbft.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
