# Empty dependencies file for test_bft_pbft.
# This may be replaced when dependencies are built.
