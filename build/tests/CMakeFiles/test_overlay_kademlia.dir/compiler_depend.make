# Empty compiler generated dependencies file for test_overlay_kademlia.
# This may be replaced when dependencies are built.
