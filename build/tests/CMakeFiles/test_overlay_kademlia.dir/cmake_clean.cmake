file(REMOVE_RECURSE
  "CMakeFiles/test_overlay_kademlia.dir/test_overlay_kademlia.cpp.o"
  "CMakeFiles/test_overlay_kademlia.dir/test_overlay_kademlia.cpp.o.d"
  "test_overlay_kademlia"
  "test_overlay_kademlia.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_overlay_kademlia.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
