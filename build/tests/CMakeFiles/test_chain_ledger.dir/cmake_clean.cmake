file(REMOVE_RECURSE
  "CMakeFiles/test_chain_ledger.dir/test_chain_ledger.cpp.o"
  "CMakeFiles/test_chain_ledger.dir/test_chain_ledger.cpp.o.d"
  "test_chain_ledger"
  "test_chain_ledger.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_chain_ledger.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
