file(REMOVE_RECURSE
  "CMakeFiles/decentnet_net.dir/churn.cpp.o"
  "CMakeFiles/decentnet_net.dir/churn.cpp.o.d"
  "CMakeFiles/decentnet_net.dir/latency.cpp.o"
  "CMakeFiles/decentnet_net.dir/latency.cpp.o.d"
  "CMakeFiles/decentnet_net.dir/network.cpp.o"
  "CMakeFiles/decentnet_net.dir/network.cpp.o.d"
  "CMakeFiles/decentnet_net.dir/topology.cpp.o"
  "CMakeFiles/decentnet_net.dir/topology.cpp.o.d"
  "libdecentnet_net.a"
  "libdecentnet_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/decentnet_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
