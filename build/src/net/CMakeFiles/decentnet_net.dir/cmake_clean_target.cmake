file(REMOVE_RECURSE
  "libdecentnet_net.a"
)
