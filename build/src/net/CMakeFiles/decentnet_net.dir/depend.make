# Empty dependencies file for decentnet_net.
# This may be replaced when dependencies are built.
