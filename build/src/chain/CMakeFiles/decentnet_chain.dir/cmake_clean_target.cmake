file(REMOVE_RECURSE
  "libdecentnet_chain.a"
)
