file(REMOVE_RECURSE
  "CMakeFiles/decentnet_chain.dir/attacks.cpp.o"
  "CMakeFiles/decentnet_chain.dir/attacks.cpp.o.d"
  "CMakeFiles/decentnet_chain.dir/blocktree.cpp.o"
  "CMakeFiles/decentnet_chain.dir/blocktree.cpp.o.d"
  "CMakeFiles/decentnet_chain.dir/channels.cpp.o"
  "CMakeFiles/decentnet_chain.dir/channels.cpp.o.d"
  "CMakeFiles/decentnet_chain.dir/economics.cpp.o"
  "CMakeFiles/decentnet_chain.dir/economics.cpp.o.d"
  "CMakeFiles/decentnet_chain.dir/ledger.cpp.o"
  "CMakeFiles/decentnet_chain.dir/ledger.cpp.o.d"
  "CMakeFiles/decentnet_chain.dir/light.cpp.o"
  "CMakeFiles/decentnet_chain.dir/light.cpp.o.d"
  "CMakeFiles/decentnet_chain.dir/mempool.cpp.o"
  "CMakeFiles/decentnet_chain.dir/mempool.cpp.o.d"
  "CMakeFiles/decentnet_chain.dir/miner.cpp.o"
  "CMakeFiles/decentnet_chain.dir/miner.cpp.o.d"
  "CMakeFiles/decentnet_chain.dir/node.cpp.o"
  "CMakeFiles/decentnet_chain.dir/node.cpp.o.d"
  "CMakeFiles/decentnet_chain.dir/params.cpp.o"
  "CMakeFiles/decentnet_chain.dir/params.cpp.o.d"
  "CMakeFiles/decentnet_chain.dir/pos.cpp.o"
  "CMakeFiles/decentnet_chain.dir/pos.cpp.o.d"
  "CMakeFiles/decentnet_chain.dir/types.cpp.o"
  "CMakeFiles/decentnet_chain.dir/types.cpp.o.d"
  "CMakeFiles/decentnet_chain.dir/wallet.cpp.o"
  "CMakeFiles/decentnet_chain.dir/wallet.cpp.o.d"
  "libdecentnet_chain.a"
  "libdecentnet_chain.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/decentnet_chain.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
