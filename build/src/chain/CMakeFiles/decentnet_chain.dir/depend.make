# Empty dependencies file for decentnet_chain.
# This may be replaced when dependencies are built.
