
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/chain/attacks.cpp" "src/chain/CMakeFiles/decentnet_chain.dir/attacks.cpp.o" "gcc" "src/chain/CMakeFiles/decentnet_chain.dir/attacks.cpp.o.d"
  "/root/repo/src/chain/blocktree.cpp" "src/chain/CMakeFiles/decentnet_chain.dir/blocktree.cpp.o" "gcc" "src/chain/CMakeFiles/decentnet_chain.dir/blocktree.cpp.o.d"
  "/root/repo/src/chain/channels.cpp" "src/chain/CMakeFiles/decentnet_chain.dir/channels.cpp.o" "gcc" "src/chain/CMakeFiles/decentnet_chain.dir/channels.cpp.o.d"
  "/root/repo/src/chain/economics.cpp" "src/chain/CMakeFiles/decentnet_chain.dir/economics.cpp.o" "gcc" "src/chain/CMakeFiles/decentnet_chain.dir/economics.cpp.o.d"
  "/root/repo/src/chain/ledger.cpp" "src/chain/CMakeFiles/decentnet_chain.dir/ledger.cpp.o" "gcc" "src/chain/CMakeFiles/decentnet_chain.dir/ledger.cpp.o.d"
  "/root/repo/src/chain/light.cpp" "src/chain/CMakeFiles/decentnet_chain.dir/light.cpp.o" "gcc" "src/chain/CMakeFiles/decentnet_chain.dir/light.cpp.o.d"
  "/root/repo/src/chain/mempool.cpp" "src/chain/CMakeFiles/decentnet_chain.dir/mempool.cpp.o" "gcc" "src/chain/CMakeFiles/decentnet_chain.dir/mempool.cpp.o.d"
  "/root/repo/src/chain/miner.cpp" "src/chain/CMakeFiles/decentnet_chain.dir/miner.cpp.o" "gcc" "src/chain/CMakeFiles/decentnet_chain.dir/miner.cpp.o.d"
  "/root/repo/src/chain/node.cpp" "src/chain/CMakeFiles/decentnet_chain.dir/node.cpp.o" "gcc" "src/chain/CMakeFiles/decentnet_chain.dir/node.cpp.o.d"
  "/root/repo/src/chain/params.cpp" "src/chain/CMakeFiles/decentnet_chain.dir/params.cpp.o" "gcc" "src/chain/CMakeFiles/decentnet_chain.dir/params.cpp.o.d"
  "/root/repo/src/chain/pos.cpp" "src/chain/CMakeFiles/decentnet_chain.dir/pos.cpp.o" "gcc" "src/chain/CMakeFiles/decentnet_chain.dir/pos.cpp.o.d"
  "/root/repo/src/chain/types.cpp" "src/chain/CMakeFiles/decentnet_chain.dir/types.cpp.o" "gcc" "src/chain/CMakeFiles/decentnet_chain.dir/types.cpp.o.d"
  "/root/repo/src/chain/wallet.cpp" "src/chain/CMakeFiles/decentnet_chain.dir/wallet.cpp.o" "gcc" "src/chain/CMakeFiles/decentnet_chain.dir/wallet.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/net/CMakeFiles/decentnet_net.dir/DependInfo.cmake"
  "/root/repo/build/src/crypto/CMakeFiles/decentnet_crypto.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/decentnet_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
