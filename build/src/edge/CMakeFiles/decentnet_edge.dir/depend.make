# Empty dependencies file for decentnet_edge.
# This may be replaced when dependencies are built.
