file(REMOVE_RECURSE
  "libdecentnet_edge.a"
)
