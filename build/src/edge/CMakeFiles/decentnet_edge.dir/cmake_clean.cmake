file(REMOVE_RECURSE
  "CMakeFiles/decentnet_edge.dir/federation.cpp.o"
  "CMakeFiles/decentnet_edge.dir/federation.cpp.o.d"
  "libdecentnet_edge.a"
  "libdecentnet_edge.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/decentnet_edge.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
