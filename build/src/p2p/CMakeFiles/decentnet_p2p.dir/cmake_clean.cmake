file(REMOVE_RECURSE
  "CMakeFiles/decentnet_p2p.dir/bittorrent.cpp.o"
  "CMakeFiles/decentnet_p2p.dir/bittorrent.cpp.o.d"
  "CMakeFiles/decentnet_p2p.dir/sybil.cpp.o"
  "CMakeFiles/decentnet_p2p.dir/sybil.cpp.o.d"
  "CMakeFiles/decentnet_p2p.dir/workload.cpp.o"
  "CMakeFiles/decentnet_p2p.dir/workload.cpp.o.d"
  "libdecentnet_p2p.a"
  "libdecentnet_p2p.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/decentnet_p2p.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
