file(REMOVE_RECURSE
  "libdecentnet_p2p.a"
)
