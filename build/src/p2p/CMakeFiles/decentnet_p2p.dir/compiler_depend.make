# Empty compiler generated dependencies file for decentnet_p2p.
# This may be replaced when dependencies are built.
