file(REMOVE_RECURSE
  "CMakeFiles/decentnet_fabric.dir/chaincode.cpp.o"
  "CMakeFiles/decentnet_fabric.dir/chaincode.cpp.o.d"
  "CMakeFiles/decentnet_fabric.dir/channel.cpp.o"
  "CMakeFiles/decentnet_fabric.dir/channel.cpp.o.d"
  "CMakeFiles/decentnet_fabric.dir/consortium.cpp.o"
  "CMakeFiles/decentnet_fabric.dir/consortium.cpp.o.d"
  "CMakeFiles/decentnet_fabric.dir/contracts.cpp.o"
  "CMakeFiles/decentnet_fabric.dir/contracts.cpp.o.d"
  "CMakeFiles/decentnet_fabric.dir/msp.cpp.o"
  "CMakeFiles/decentnet_fabric.dir/msp.cpp.o.d"
  "libdecentnet_fabric.a"
  "libdecentnet_fabric.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/decentnet_fabric.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
