file(REMOVE_RECURSE
  "libdecentnet_fabric.a"
)
