
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/fabric/chaincode.cpp" "src/fabric/CMakeFiles/decentnet_fabric.dir/chaincode.cpp.o" "gcc" "src/fabric/CMakeFiles/decentnet_fabric.dir/chaincode.cpp.o.d"
  "/root/repo/src/fabric/channel.cpp" "src/fabric/CMakeFiles/decentnet_fabric.dir/channel.cpp.o" "gcc" "src/fabric/CMakeFiles/decentnet_fabric.dir/channel.cpp.o.d"
  "/root/repo/src/fabric/consortium.cpp" "src/fabric/CMakeFiles/decentnet_fabric.dir/consortium.cpp.o" "gcc" "src/fabric/CMakeFiles/decentnet_fabric.dir/consortium.cpp.o.d"
  "/root/repo/src/fabric/contracts.cpp" "src/fabric/CMakeFiles/decentnet_fabric.dir/contracts.cpp.o" "gcc" "src/fabric/CMakeFiles/decentnet_fabric.dir/contracts.cpp.o.d"
  "/root/repo/src/fabric/msp.cpp" "src/fabric/CMakeFiles/decentnet_fabric.dir/msp.cpp.o" "gcc" "src/fabric/CMakeFiles/decentnet_fabric.dir/msp.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/bft/CMakeFiles/decentnet_bft.dir/DependInfo.cmake"
  "/root/repo/build/src/crypto/CMakeFiles/decentnet_crypto.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/decentnet_net.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/decentnet_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
