# Empty compiler generated dependencies file for decentnet_fabric.
# This may be replaced when dependencies are built.
