# Empty dependencies file for decentnet_sim.
# This may be replaced when dependencies are built.
