file(REMOVE_RECURSE
  "CMakeFiles/decentnet_sim.dir/metrics.cpp.o"
  "CMakeFiles/decentnet_sim.dir/metrics.cpp.o.d"
  "CMakeFiles/decentnet_sim.dir/rng.cpp.o"
  "CMakeFiles/decentnet_sim.dir/rng.cpp.o.d"
  "CMakeFiles/decentnet_sim.dir/simulator.cpp.o"
  "CMakeFiles/decentnet_sim.dir/simulator.cpp.o.d"
  "CMakeFiles/decentnet_sim.dir/stats.cpp.o"
  "CMakeFiles/decentnet_sim.dir/stats.cpp.o.d"
  "CMakeFiles/decentnet_sim.dir/table.cpp.o"
  "CMakeFiles/decentnet_sim.dir/table.cpp.o.d"
  "CMakeFiles/decentnet_sim.dir/time.cpp.o"
  "CMakeFiles/decentnet_sim.dir/time.cpp.o.d"
  "libdecentnet_sim.a"
  "libdecentnet_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/decentnet_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
