file(REMOVE_RECURSE
  "libdecentnet_sim.a"
)
