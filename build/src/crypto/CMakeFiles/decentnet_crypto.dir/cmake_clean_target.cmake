file(REMOVE_RECURSE
  "libdecentnet_crypto.a"
)
