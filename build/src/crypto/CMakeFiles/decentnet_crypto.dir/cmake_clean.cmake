file(REMOVE_RECURSE
  "CMakeFiles/decentnet_crypto.dir/keys.cpp.o"
  "CMakeFiles/decentnet_crypto.dir/keys.cpp.o.d"
  "CMakeFiles/decentnet_crypto.dir/merkle.cpp.o"
  "CMakeFiles/decentnet_crypto.dir/merkle.cpp.o.d"
  "CMakeFiles/decentnet_crypto.dir/sha256.cpp.o"
  "CMakeFiles/decentnet_crypto.dir/sha256.cpp.o.d"
  "libdecentnet_crypto.a"
  "libdecentnet_crypto.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/decentnet_crypto.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
