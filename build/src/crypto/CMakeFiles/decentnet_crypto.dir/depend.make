# Empty dependencies file for decentnet_crypto.
# This may be replaced when dependencies are built.
