file(REMOVE_RECURSE
  "libdecentnet_overlay.a"
)
