# Empty compiler generated dependencies file for decentnet_overlay.
# This may be replaced when dependencies are built.
