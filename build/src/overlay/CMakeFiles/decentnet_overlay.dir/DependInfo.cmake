
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/overlay/chord.cpp" "src/overlay/CMakeFiles/decentnet_overlay.dir/chord.cpp.o" "gcc" "src/overlay/CMakeFiles/decentnet_overlay.dir/chord.cpp.o.d"
  "/root/repo/src/overlay/flood.cpp" "src/overlay/CMakeFiles/decentnet_overlay.dir/flood.cpp.o" "gcc" "src/overlay/CMakeFiles/decentnet_overlay.dir/flood.cpp.o.d"
  "/root/repo/src/overlay/gossip.cpp" "src/overlay/CMakeFiles/decentnet_overlay.dir/gossip.cpp.o" "gcc" "src/overlay/CMakeFiles/decentnet_overlay.dir/gossip.cpp.o.d"
  "/root/repo/src/overlay/kademlia.cpp" "src/overlay/CMakeFiles/decentnet_overlay.dir/kademlia.cpp.o" "gcc" "src/overlay/CMakeFiles/decentnet_overlay.dir/kademlia.cpp.o.d"
  "/root/repo/src/overlay/onehop.cpp" "src/overlay/CMakeFiles/decentnet_overlay.dir/onehop.cpp.o" "gcc" "src/overlay/CMakeFiles/decentnet_overlay.dir/onehop.cpp.o.d"
  "/root/repo/src/overlay/superpeer.cpp" "src/overlay/CMakeFiles/decentnet_overlay.dir/superpeer.cpp.o" "gcc" "src/overlay/CMakeFiles/decentnet_overlay.dir/superpeer.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/net/CMakeFiles/decentnet_net.dir/DependInfo.cmake"
  "/root/repo/build/src/crypto/CMakeFiles/decentnet_crypto.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/decentnet_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
