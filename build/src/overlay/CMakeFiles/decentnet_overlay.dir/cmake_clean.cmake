file(REMOVE_RECURSE
  "CMakeFiles/decentnet_overlay.dir/chord.cpp.o"
  "CMakeFiles/decentnet_overlay.dir/chord.cpp.o.d"
  "CMakeFiles/decentnet_overlay.dir/flood.cpp.o"
  "CMakeFiles/decentnet_overlay.dir/flood.cpp.o.d"
  "CMakeFiles/decentnet_overlay.dir/gossip.cpp.o"
  "CMakeFiles/decentnet_overlay.dir/gossip.cpp.o.d"
  "CMakeFiles/decentnet_overlay.dir/kademlia.cpp.o"
  "CMakeFiles/decentnet_overlay.dir/kademlia.cpp.o.d"
  "CMakeFiles/decentnet_overlay.dir/onehop.cpp.o"
  "CMakeFiles/decentnet_overlay.dir/onehop.cpp.o.d"
  "CMakeFiles/decentnet_overlay.dir/superpeer.cpp.o"
  "CMakeFiles/decentnet_overlay.dir/superpeer.cpp.o.d"
  "libdecentnet_overlay.a"
  "libdecentnet_overlay.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/decentnet_overlay.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
