file(REMOVE_RECURSE
  "CMakeFiles/decentnet_bft.dir/pbft.cpp.o"
  "CMakeFiles/decentnet_bft.dir/pbft.cpp.o.d"
  "CMakeFiles/decentnet_bft.dir/raft.cpp.o"
  "CMakeFiles/decentnet_bft.dir/raft.cpp.o.d"
  "libdecentnet_bft.a"
  "libdecentnet_bft.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/decentnet_bft.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
