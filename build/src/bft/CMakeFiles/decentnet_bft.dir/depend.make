# Empty dependencies file for decentnet_bft.
# This may be replaced when dependencies are built.
