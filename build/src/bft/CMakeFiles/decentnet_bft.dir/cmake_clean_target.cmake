file(REMOVE_RECURSE
  "libdecentnet_bft.a"
)
