file(REMOVE_RECURSE
  "CMakeFiles/decentnet_core.dir/scenarios.cpp.o"
  "CMakeFiles/decentnet_core.dir/scenarios.cpp.o.d"
  "CMakeFiles/decentnet_core.dir/trilemma.cpp.o"
  "CMakeFiles/decentnet_core.dir/trilemma.cpp.o.d"
  "libdecentnet_core.a"
  "libdecentnet_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/decentnet_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
