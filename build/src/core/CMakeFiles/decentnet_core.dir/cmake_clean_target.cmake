file(REMOVE_RECURSE
  "libdecentnet_core.a"
)
