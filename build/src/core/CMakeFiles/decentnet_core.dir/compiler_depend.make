# Empty compiler generated dependencies file for decentnet_core.
# This may be replaced when dependencies are built.
