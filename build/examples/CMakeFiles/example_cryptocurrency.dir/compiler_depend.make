# Empty compiler generated dependencies file for example_cryptocurrency.
# This may be replaced when dependencies are built.
