file(REMOVE_RECURSE
  "CMakeFiles/example_cryptocurrency.dir/cryptocurrency.cpp.o"
  "CMakeFiles/example_cryptocurrency.dir/cryptocurrency.cpp.o.d"
  "example_cryptocurrency"
  "example_cryptocurrency.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_cryptocurrency.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
