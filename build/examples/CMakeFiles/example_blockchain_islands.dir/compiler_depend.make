# Empty compiler generated dependencies file for example_blockchain_islands.
# This may be replaced when dependencies are built.
