file(REMOVE_RECURSE
  "CMakeFiles/example_blockchain_islands.dir/blockchain_islands.cpp.o"
  "CMakeFiles/example_blockchain_islands.dir/blockchain_islands.cpp.o.d"
  "example_blockchain_islands"
  "example_blockchain_islands.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_blockchain_islands.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
