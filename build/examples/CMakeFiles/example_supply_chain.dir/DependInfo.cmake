
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/examples/supply_chain.cpp" "examples/CMakeFiles/example_supply_chain.dir/supply_chain.cpp.o" "gcc" "examples/CMakeFiles/example_supply_chain.dir/supply_chain.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/decentnet_core.dir/DependInfo.cmake"
  "/root/repo/build/src/fabric/CMakeFiles/decentnet_fabric.dir/DependInfo.cmake"
  "/root/repo/build/src/bft/CMakeFiles/decentnet_bft.dir/DependInfo.cmake"
  "/root/repo/build/src/chain/CMakeFiles/decentnet_chain.dir/DependInfo.cmake"
  "/root/repo/build/src/p2p/CMakeFiles/decentnet_p2p.dir/DependInfo.cmake"
  "/root/repo/build/src/overlay/CMakeFiles/decentnet_overlay.dir/DependInfo.cmake"
  "/root/repo/build/src/edge/CMakeFiles/decentnet_edge.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/decentnet_net.dir/DependInfo.cmake"
  "/root/repo/build/src/crypto/CMakeFiles/decentnet_crypto.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/decentnet_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
