# Empty compiler generated dependencies file for example_supply_chain.
# This may be replaced when dependencies are built.
