file(REMOVE_RECURSE
  "CMakeFiles/example_supply_chain.dir/supply_chain.cpp.o"
  "CMakeFiles/example_supply_chain.dir/supply_chain.cpp.o.d"
  "example_supply_chain"
  "example_supply_chain.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_supply_chain.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
