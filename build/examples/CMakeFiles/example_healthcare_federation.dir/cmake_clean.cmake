file(REMOVE_RECURSE
  "CMakeFiles/example_healthcare_federation.dir/healthcare_federation.cpp.o"
  "CMakeFiles/example_healthcare_federation.dir/healthcare_federation.cpp.o.d"
  "example_healthcare_federation"
  "example_healthcare_federation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_healthcare_federation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
