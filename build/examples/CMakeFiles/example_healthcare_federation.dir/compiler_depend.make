# Empty compiler generated dependencies file for example_healthcare_federation.
# This may be replaced when dependencies are built.
