file(REMOVE_RECURSE
  "CMakeFiles/example_smart_grid.dir/smart_grid.cpp.o"
  "CMakeFiles/example_smart_grid.dir/smart_grid.cpp.o.d"
  "example_smart_grid"
  "example_smart_grid.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_smart_grid.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
