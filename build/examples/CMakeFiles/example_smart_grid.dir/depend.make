# Empty dependencies file for example_smart_grid.
# This may be replaced when dependencies are built.
