file(REMOVE_RECURSE
  "CMakeFiles/bench_e17_pos.dir/bench_e17_pos.cpp.o"
  "CMakeFiles/bench_e17_pos.dir/bench_e17_pos.cpp.o.d"
  "bench_e17_pos"
  "bench_e17_pos.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e17_pos.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
