# Empty compiler generated dependencies file for bench_e17_pos.
# This may be replaced when dependencies are built.
