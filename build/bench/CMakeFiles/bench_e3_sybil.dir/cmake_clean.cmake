file(REMOVE_RECURSE
  "CMakeFiles/bench_e3_sybil.dir/bench_e3_sybil.cpp.o"
  "CMakeFiles/bench_e3_sybil.dir/bench_e3_sybil.cpp.o.d"
  "bench_e3_sybil"
  "bench_e3_sybil.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e3_sybil.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
