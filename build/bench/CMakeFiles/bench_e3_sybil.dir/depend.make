# Empty dependencies file for bench_e3_sybil.
# This may be replaced when dependencies are built.
