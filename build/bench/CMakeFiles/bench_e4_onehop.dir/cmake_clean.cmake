file(REMOVE_RECURSE
  "CMakeFiles/bench_e4_onehop.dir/bench_e4_onehop.cpp.o"
  "CMakeFiles/bench_e4_onehop.dir/bench_e4_onehop.cpp.o.d"
  "bench_e4_onehop"
  "bench_e4_onehop.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e4_onehop.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
