file(REMOVE_RECURSE
  "CMakeFiles/bench_ablate_mining.dir/bench_ablate_mining.cpp.o"
  "CMakeFiles/bench_ablate_mining.dir/bench_ablate_mining.cpp.o.d"
  "bench_ablate_mining"
  "bench_ablate_mining.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablate_mining.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
