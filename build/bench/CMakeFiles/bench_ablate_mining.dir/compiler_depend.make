# Empty compiler generated dependencies file for bench_ablate_mining.
# This may be replaced when dependencies are built.
