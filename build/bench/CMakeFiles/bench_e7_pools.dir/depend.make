# Empty dependencies file for bench_e7_pools.
# This may be replaced when dependencies are built.
