file(REMOVE_RECURSE
  "CMakeFiles/bench_e7_pools.dir/bench_e7_pools.cpp.o"
  "CMakeFiles/bench_e7_pools.dir/bench_e7_pools.cpp.o.d"
  "bench_e7_pools"
  "bench_e7_pools.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e7_pools.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
