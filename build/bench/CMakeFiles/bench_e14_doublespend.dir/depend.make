# Empty dependencies file for bench_e14_doublespend.
# This may be replaced when dependencies are built.
