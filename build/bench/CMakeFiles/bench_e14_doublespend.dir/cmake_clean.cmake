file(REMOVE_RECURSE
  "CMakeFiles/bench_e14_doublespend.dir/bench_e14_doublespend.cpp.o"
  "CMakeFiles/bench_e14_doublespend.dir/bench_e14_doublespend.cpp.o.d"
  "bench_e14_doublespend"
  "bench_e14_doublespend.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e14_doublespend.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
