# Empty dependencies file for bench_e10_forks.
# This may be replaced when dependencies are built.
