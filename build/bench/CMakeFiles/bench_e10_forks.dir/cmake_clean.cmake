file(REMOVE_RECURSE
  "CMakeFiles/bench_e10_forks.dir/bench_e10_forks.cpp.o"
  "CMakeFiles/bench_e10_forks.dir/bench_e10_forks.cpp.o.d"
  "bench_e10_forks"
  "bench_e10_forks.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e10_forks.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
