file(REMOVE_RECURSE
  "CMakeFiles/bench_e13_edge.dir/bench_e13_edge.cpp.o"
  "CMakeFiles/bench_e13_edge.dir/bench_e13_edge.cpp.o.d"
  "bench_e13_edge"
  "bench_e13_edge.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e13_edge.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
