# Empty compiler generated dependencies file for bench_e13_edge.
# This may be replaced when dependencies are built.
