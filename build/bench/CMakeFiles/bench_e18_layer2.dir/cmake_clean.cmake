file(REMOVE_RECURSE
  "CMakeFiles/bench_e18_layer2.dir/bench_e18_layer2.cpp.o"
  "CMakeFiles/bench_e18_layer2.dir/bench_e18_layer2.cpp.o.d"
  "bench_e18_layer2"
  "bench_e18_layer2.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e18_layer2.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
