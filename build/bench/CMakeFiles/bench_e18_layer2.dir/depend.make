# Empty dependencies file for bench_e18_layer2.
# This may be replaced when dependencies are built.
