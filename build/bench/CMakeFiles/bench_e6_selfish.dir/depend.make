# Empty dependencies file for bench_e6_selfish.
# This may be replaced when dependencies are built.
