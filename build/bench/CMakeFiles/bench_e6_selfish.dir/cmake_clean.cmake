file(REMOVE_RECURSE
  "CMakeFiles/bench_e6_selfish.dir/bench_e6_selfish.cpp.o"
  "CMakeFiles/bench_e6_selfish.dir/bench_e6_selfish.cpp.o.d"
  "bench_e6_selfish"
  "bench_e6_selfish.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e6_selfish.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
