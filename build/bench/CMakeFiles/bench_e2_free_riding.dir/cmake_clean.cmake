file(REMOVE_RECURSE
  "CMakeFiles/bench_e2_free_riding.dir/bench_e2_free_riding.cpp.o"
  "CMakeFiles/bench_e2_free_riding.dir/bench_e2_free_riding.cpp.o.d"
  "bench_e2_free_riding"
  "bench_e2_free_riding.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e2_free_riding.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
