# Empty compiler generated dependencies file for bench_e2_free_riding.
# This may be replaced when dependencies are built.
