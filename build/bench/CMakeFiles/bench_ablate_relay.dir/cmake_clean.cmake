file(REMOVE_RECURSE
  "CMakeFiles/bench_ablate_relay.dir/bench_ablate_relay.cpp.o"
  "CMakeFiles/bench_ablate_relay.dir/bench_ablate_relay.cpp.o.d"
  "bench_ablate_relay"
  "bench_ablate_relay.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablate_relay.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
