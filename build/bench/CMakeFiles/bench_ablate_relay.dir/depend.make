# Empty dependencies file for bench_ablate_relay.
# This may be replaced when dependencies are built.
