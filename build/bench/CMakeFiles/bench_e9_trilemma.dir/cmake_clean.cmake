file(REMOVE_RECURSE
  "CMakeFiles/bench_e9_trilemma.dir/bench_e9_trilemma.cpp.o"
  "CMakeFiles/bench_e9_trilemma.dir/bench_e9_trilemma.cpp.o.d"
  "bench_e9_trilemma"
  "bench_e9_trilemma.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e9_trilemma.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
