# Empty dependencies file for bench_e9_trilemma.
# This may be replaced when dependencies are built.
