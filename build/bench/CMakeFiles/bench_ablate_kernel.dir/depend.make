# Empty dependencies file for bench_ablate_kernel.
# This may be replaced when dependencies are built.
