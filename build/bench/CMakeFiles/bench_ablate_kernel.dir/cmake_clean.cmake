file(REMOVE_RECURSE
  "CMakeFiles/bench_ablate_kernel.dir/bench_ablate_kernel.cpp.o"
  "CMakeFiles/bench_ablate_kernel.dir/bench_ablate_kernel.cpp.o.d"
  "bench_ablate_kernel"
  "bench_ablate_kernel.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablate_kernel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
