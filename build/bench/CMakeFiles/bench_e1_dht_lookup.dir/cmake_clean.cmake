file(REMOVE_RECURSE
  "CMakeFiles/bench_e1_dht_lookup.dir/bench_e1_dht_lookup.cpp.o"
  "CMakeFiles/bench_e1_dht_lookup.dir/bench_e1_dht_lookup.cpp.o.d"
  "bench_e1_dht_lookup"
  "bench_e1_dht_lookup.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e1_dht_lookup.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
