# Empty dependencies file for bench_e1_dht_lookup.
# This may be replaced when dependencies are built.
