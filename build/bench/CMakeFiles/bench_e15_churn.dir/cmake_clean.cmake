file(REMOVE_RECURSE
  "CMakeFiles/bench_e15_churn.dir/bench_e15_churn.cpp.o"
  "CMakeFiles/bench_e15_churn.dir/bench_e15_churn.cpp.o.d"
  "bench_e15_churn"
  "bench_e15_churn.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e15_churn.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
