file(REMOVE_RECURSE
  "CMakeFiles/bench_e16_gossip.dir/bench_e16_gossip.cpp.o"
  "CMakeFiles/bench_e16_gossip.dir/bench_e16_gossip.cpp.o.d"
  "bench_e16_gossip"
  "bench_e16_gossip.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e16_gossip.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
