# Empty dependencies file for bench_e16_gossip.
# This may be replaced when dependencies are built.
