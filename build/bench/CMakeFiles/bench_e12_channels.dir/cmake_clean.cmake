file(REMOVE_RECURSE
  "CMakeFiles/bench_e12_channels.dir/bench_e12_channels.cpp.o"
  "CMakeFiles/bench_e12_channels.dir/bench_e12_channels.cpp.o.d"
  "bench_e12_channels"
  "bench_e12_channels.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e12_channels.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
