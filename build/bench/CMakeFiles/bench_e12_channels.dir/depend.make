# Empty dependencies file for bench_e12_channels.
# This may be replaced when dependencies are built.
