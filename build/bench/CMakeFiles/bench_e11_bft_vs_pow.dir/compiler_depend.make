# Empty compiler generated dependencies file for bench_e11_bft_vs_pow.
# This may be replaced when dependencies are built.
