file(REMOVE_RECURSE
  "CMakeFiles/bench_e11_bft_vs_pow.dir/bench_e11_bft_vs_pow.cpp.o"
  "CMakeFiles/bench_e11_bft_vs_pow.dir/bench_e11_bft_vs_pow.cpp.o.d"
  "bench_e11_bft_vs_pow"
  "bench_e11_bft_vs_pow.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e11_bft_vs_pow.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
