// 256-bit hash value type shared by the DHT (Kademlia XOR metric), the
// blockchain (block/tx ids, Merkle roots) and the membership service.
#pragma once

#include <array>
#include <compare>
#include <cstdint>
#include <cstring>
#include <span>
#include <string>
#include <string_view>

namespace decentnet::crypto {

/// A 256-bit digest. Comparisons treat the value as a big-endian unsigned
/// integer, which is what both Kademlia distances and PoW targets need.
struct Hash256 {
  std::array<std::uint8_t, 32> bytes{};

  auto operator<=>(const Hash256&) const = default;

  bool is_zero() const {
    for (auto b : bytes) {
      if (b != 0) return false;
    }
    return true;
  }

  /// XOR distance (Kademlia metric).
  Hash256 distance_to(const Hash256& other) const {
    Hash256 d;
    for (std::size_t i = 0; i < 32; ++i) d.bytes[i] = bytes[i] ^ other.bytes[i];
    return d;
  }

  /// Index of the highest set bit (0 = most significant), or 256 if zero.
  /// Kademlia bucket index for `distance_to(peer)` is this value.
  int leading_zero_bits() const {
    for (std::size_t i = 0; i < 32; ++i) {
      if (bytes[i] == 0) continue;
      int lz = 0;
      for (int bit = 7; bit >= 0; --bit) {
        if (bytes[i] & (1u << bit)) break;
        ++lz;
      }
      return static_cast<int>(i) * 8 + lz;
    }
    return 256;
  }

  /// Bit at position `i` (0 = most significant).
  bool bit(int i) const {
    return (bytes[static_cast<std::size_t>(i / 8)] >> (7 - i % 8)) & 1;
  }

  /// First 8 bytes as a big-endian integer — handy as a compact map key or a
  /// human-readable prefix. Not a substitute for full equality.
  std::uint64_t prefix64() const {
    std::uint64_t v = 0;
    for (int i = 0; i < 8; ++i) v = (v << 8) | bytes[static_cast<std::size_t>(i)];
    return v;
  }

  std::string hex() const;
  std::string short_hex(std::size_t n = 8) const;

  static Hash256 from_hex(std::string_view hex);
  /// Hash with every byte 0xFF (the maximum value / easiest PoW target).
  static Hash256 max_value() {
    Hash256 h;
    h.bytes.fill(0xFF);
    return h;
  }
};

struct Hash256Hasher {
  std::size_t operator()(const Hash256& h) const {
    std::uint64_t v;
    std::memcpy(&v, h.bytes.data(), sizeof v);
    return static_cast<std::size_t>(v);
  }
};

/// SHA-256 of arbitrary bytes (FIPS 180-4, implemented in sha256.cpp).
Hash256 sha256(std::span<const std::uint8_t> data);
Hash256 sha256(std::string_view data);
/// Double SHA-256 (Bitcoin-style block/tx ids).
Hash256 sha256d(std::span<const std::uint8_t> data);

/// HMAC-SHA256 (RFC 2104); backs the simulation signature scheme.
Hash256 hmac_sha256(std::span<const std::uint8_t> key,
                    std::span<const std::uint8_t> message);

inline std::span<const std::uint8_t> as_bytes(std::string_view s) {
  return {reinterpret_cast<const std::uint8_t*>(s.data()), s.size()};
}

}  // namespace decentnet::crypto
