// Simulation signature scheme and identities.
//
// Substitution note (see DESIGN.md): real deployments use ECDSA/Ed25519. In a
// closed simulation we model the *properties* of signatures, not the math.
// A KeyPair's private half is 32 random bytes; the public key is
// SHA-256(private). Signatures are HMAC-SHA256(private, message). A verifier
// checks a signature through the KeyAuthority, which maps public keys to
// verification oracles — the in-simulation analogue of a PKI. Unforgeability
// holds by construction: only code holding the PrivateKey object can produce
// a signature that the authority accepts, and the simulation's adversaries
// are code paths we control.
#pragma once

#include <cstdint>
#include <optional>
#include <string_view>
#include <unordered_map>

#include "crypto/hash.hpp"

namespace decentnet::crypto {

using PublicKey = Hash256;
using Signature = Hash256;

class PrivateKey {
 public:
  PrivateKey() = default;

  /// Derive deterministically from a 64-bit seed (simulation reproducibility).
  static PrivateKey from_seed(std::uint64_t seed);

  PublicKey public_key() const;
  Signature sign(std::span<const std::uint8_t> message) const;
  Signature sign(std::string_view message) const {
    return sign(as_bytes(message));
  }
  Signature sign(const Hash256& digest) const {
    return sign(std::span<const std::uint8_t>(digest.bytes));
  }

  const Hash256& secret() const { return secret_; }

 private:
  Hash256 secret_{};
};

/// In-simulation PKI: registers key pairs so third parties can verify
/// signatures without holding the private key object themselves.
class KeyAuthority {
 public:
  /// Process-wide authority. All simulations share it; registration is
  /// idempotent and keyed by public key, so independent experiments cannot
  /// interfere with each other's verification results.
  static KeyAuthority& global();

  /// Create and register a fresh key pair derived from `seed`.
  PrivateKey issue(std::uint64_t seed);

  /// Register an externally created key pair.
  void register_key(const PrivateKey& key);

  bool verify(const PublicKey& pub, std::span<const std::uint8_t> message,
              const Signature& sig) const;
  bool verify(const PublicKey& pub, std::string_view message,
              const Signature& sig) const {
    return verify(pub, as_bytes(message), sig);
  }
  bool verify(const PublicKey& pub, const Hash256& digest,
              const Signature& sig) const {
    return verify(pub, std::span<const std::uint8_t>(digest.bytes), sig);
  }

  bool known(const PublicKey& pub) const {
    return secrets_.find(pub) != secrets_.end();
  }

  std::size_t size() const { return secrets_.size(); }

 private:
  std::unordered_map<PublicKey, Hash256, Hash256Hasher> secrets_;
};

}  // namespace decentnet::crypto
