#include "crypto/merkle.hpp"

#include <stdexcept>

#include "crypto/buffer.hpp"

namespace decentnet::crypto {

Hash256 MerkleTree::parent(const Hash256& left, const Hash256& right) {
  ByteWriter w;
  w.hash(left).hash(right);
  return w.sha256();
}

MerkleTree::MerkleTree(std::vector<Hash256> leaves)
    : leaf_count_(leaves.size()) {
  if (leaves.empty()) {
    root_ = Hash256{};
    return;
  }
  levels_.push_back(std::move(leaves));
  while (levels_.back().size() > 1) {
    const auto& prev = levels_.back();
    std::vector<Hash256> next;
    next.reserve((prev.size() + 1) / 2);
    for (std::size_t i = 0; i < prev.size(); i += 2) {
      const Hash256& left = prev[i];
      const Hash256& right = (i + 1 < prev.size()) ? prev[i + 1] : prev[i];
      next.push_back(parent(left, right));
    }
    levels_.push_back(std::move(next));
  }
  root_ = levels_.back().front();
}

MerkleProof MerkleTree::prove(std::size_t index) const {
  if (index >= leaf_count_) {
    throw std::out_of_range("MerkleTree::prove: leaf index out of range");
  }
  MerkleProof proof;
  std::size_t i = index;
  for (std::size_t level = 0; level + 1 < levels_.size(); ++level) {
    const auto& nodes = levels_[level];
    const std::size_t sibling = (i % 2 == 0) ? i + 1 : i - 1;
    MerkleStep step;
    step.sibling_on_left = (i % 2 == 1);
    step.sibling = sibling < nodes.size() ? nodes[sibling] : nodes[i];
    proof.push_back(step);
    i /= 2;
  }
  return proof;
}

bool MerkleTree::verify(const Hash256& leaf, std::size_t index,
                        const MerkleProof& proof, const Hash256& root) {
  Hash256 acc = leaf;
  std::size_t i = index;
  for (const MerkleStep& step : proof) {
    // The proof's side flags must be consistent with the claimed index.
    if (step.sibling_on_left != (i % 2 == 1)) return false;
    acc = step.sibling_on_left ? parent(step.sibling, acc)
                               : parent(acc, step.sibling);
    i /= 2;
  }
  return acc == root;
}

Hash256 MerkleTree::compute_root(std::vector<Hash256> leaves) {
  if (leaves.empty()) return Hash256{};
  while (leaves.size() > 1) {
    std::vector<Hash256> next;
    next.reserve((leaves.size() + 1) / 2);
    for (std::size_t i = 0; i < leaves.size(); i += 2) {
      const Hash256& left = leaves[i];
      const Hash256& right = (i + 1 < leaves.size()) ? leaves[i + 1] : leaves[i];
      next.push_back(parent(left, right));
    }
    leaves = std::move(next);
  }
  return leaves.front();
}

}  // namespace decentnet::crypto
