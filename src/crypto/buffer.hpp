// Canonical byte serialization used wherever structures are hashed or signed
// (block headers, transactions, certificates). Fixed little-endian layout so
// digests are platform-independent.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "crypto/hash.hpp"

namespace decentnet::crypto {

class ByteWriter {
 public:
  ByteWriter& u8(std::uint8_t v) {
    buf_.push_back(v);
    return *this;
  }
  ByteWriter& u32(std::uint32_t v) {
    for (int i = 0; i < 4; ++i) buf_.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
    return *this;
  }
  ByteWriter& u64(std::uint64_t v) {
    for (int i = 0; i < 8; ++i) buf_.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
    return *this;
  }
  ByteWriter& i64(std::int64_t v) { return u64(static_cast<std::uint64_t>(v)); }
  ByteWriter& hash(const Hash256& h) {
    buf_.insert(buf_.end(), h.bytes.begin(), h.bytes.end());
    return *this;
  }
  ByteWriter& str(std::string_view s) {
    u64(s.size());
    buf_.insert(buf_.end(), s.begin(), s.end());
    return *this;
  }
  ByteWriter& raw(std::span<const std::uint8_t> s) {
    buf_.insert(buf_.end(), s.begin(), s.end());
    return *this;
  }

  std::span<const std::uint8_t> bytes() const { return buf_; }
  std::size_t size() const { return buf_.size(); }

  Hash256 sha256() const { return crypto::sha256(bytes()); }
  Hash256 sha256d() const { return crypto::sha256d(bytes()); }

 private:
  std::vector<std::uint8_t> buf_;
};

}  // namespace decentnet::crypto
