#include "crypto/keys.hpp"

#include "crypto/buffer.hpp"

namespace decentnet::crypto {

PrivateKey PrivateKey::from_seed(std::uint64_t seed) {
  PrivateKey k;
  ByteWriter w;
  w.str("decentnet-private-key").u64(seed);
  k.secret_ = w.sha256();
  return k;
}

PublicKey PrivateKey::public_key() const {
  ByteWriter w;
  w.str("decentnet-public-key").hash(secret_);
  return w.sha256();
}

Signature PrivateKey::sign(std::span<const std::uint8_t> message) const {
  return hmac_sha256(std::span<const std::uint8_t>(secret_.bytes), message);
}

KeyAuthority& KeyAuthority::global() {
  static KeyAuthority authority;
  return authority;
}

PrivateKey KeyAuthority::issue(std::uint64_t seed) {
  PrivateKey key = PrivateKey::from_seed(seed);
  register_key(key);
  return key;
}

void KeyAuthority::register_key(const PrivateKey& key) {
  secrets_.emplace(key.public_key(), key.secret());
}

bool KeyAuthority::verify(const PublicKey& pub,
                          std::span<const std::uint8_t> message,
                          const Signature& sig) const {
  const auto it = secrets_.find(pub);
  if (it == secrets_.end()) return false;
  const Signature expected =
      hmac_sha256(std::span<const std::uint8_t>(it->second.bytes), message);
  return expected == sig;
}

}  // namespace decentnet::crypto
