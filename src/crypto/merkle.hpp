// Binary Merkle tree over 256-bit leaf hashes, with inclusion proofs.
// Used for block transaction commitments (chain/) and light-client
// verification, and for tamper-evident audit logs in the edge federation.
#pragma once

#include <vector>

#include "crypto/hash.hpp"

namespace decentnet::crypto {

/// One step of an inclusion proof: the sibling digest and which side it is on.
struct MerkleStep {
  Hash256 sibling;
  bool sibling_on_left = false;
};

using MerkleProof = std::vector<MerkleStep>;

class MerkleTree {
 public:
  /// Builds the tree bottom-up. An empty leaf set yields the all-zero root.
  /// Odd levels duplicate the last node (Bitcoin-style).
  explicit MerkleTree(std::vector<Hash256> leaves);

  const Hash256& root() const { return root_; }
  std::size_t leaf_count() const { return leaf_count_; }

  /// Inclusion proof for the leaf at `index`. Requires index < leaf_count().
  MerkleProof prove(std::size_t index) const;

  /// Verify that `leaf` at `index` is included under `root`.
  static bool verify(const Hash256& leaf, std::size_t index,
                     const MerkleProof& proof, const Hash256& root);

  /// Convenience: compute only the root without keeping levels around.
  static Hash256 compute_root(std::vector<Hash256> leaves);

 private:
  static Hash256 parent(const Hash256& left, const Hash256& right);

  std::size_t leaf_count_ = 0;
  // levels_[0] is the leaf level; levels_.back() has exactly one node.
  std::vector<std::vector<Hash256>> levels_;
  Hash256 root_{};
};

}  // namespace decentnet::crypto
