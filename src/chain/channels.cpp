#include "chain/channels.hpp"

#include <algorithm>
#include <deque>
#include <stdexcept>

namespace decentnet::chain {

std::size_t ChannelNetwork::open_channel(std::size_t a, std::size_t b,
                                         std::int64_t fund_a,
                                         std::int64_t fund_b) {
  if (a == b || a >= nodes_ || b >= nodes_) {
    throw std::invalid_argument("open_channel: bad endpoints");
  }
  PaymentChannel ch;
  ch.a = a;
  ch.b = b;
  ch.balance_a = fund_a;
  ch.balance_b = fund_b;
  const std::size_t idx = channels_.size();
  channels_.push_back(ch);
  adj_[a].push_back(Edge{idx, b});
  adj_[b].push_back(Edge{idx, a});
  if (forwarded_.size() != nodes_) forwarded_.assign(nodes_, 0);
  return idx;
}

std::int64_t ChannelNetwork::spendable_toward(std::size_t channel,
                                              std::size_t from) const {
  const PaymentChannel& ch = channels_[channel];
  return from == ch.a ? ch.balance_a : ch.balance_b;
}

void ChannelNetwork::shift(std::size_t channel, std::size_t from,
                           std::int64_t amount) {
  PaymentChannel& ch = channels_[channel];
  if (from == ch.a) {
    ch.balance_a -= amount;
    ch.balance_b += amount;
  } else {
    ch.balance_b -= amount;
    ch.balance_a += amount;
  }
  ++ch.payments_routed;
}

RouteResult ChannelNetwork::pay(std::size_t payer, std::size_t payee,
                                std::int64_t amount) {
  RouteResult out;
  if (payer >= nodes_ || payee >= nodes_ || payer == payee || amount <= 0) {
    return out;
  }
  // BFS over edges with enough spendable balance in the payment direction.
  std::vector<int> prev_node(nodes_, -1);
  std::vector<std::size_t> prev_edge(nodes_, 0);
  std::deque<std::size_t> queue{payer};
  prev_node[payer] = static_cast<int>(payer);
  while (!queue.empty() && prev_node[payee] < 0) {
    const std::size_t u = queue.front();
    queue.pop_front();
    for (const Edge& e : adj_[u]) {
      if (prev_node[e.peer] >= 0) continue;
      if (spendable_toward(e.channel, u) < amount) continue;
      prev_node[e.peer] = static_cast<int>(u);
      prev_edge[e.peer] = e.channel;
      queue.push_back(e.peer);
    }
  }
  if (prev_node[payee] < 0) return out;  // no feasible route
  // Reconstruct and execute.
  std::vector<std::size_t> path{payee};
  std::size_t cur = payee;
  while (cur != payer) {
    cur = static_cast<std::size_t>(prev_node[cur]);
    path.push_back(cur);
  }
  std::reverse(path.begin(), path.end());
  for (std::size_t i = 0; i + 1 < path.size(); ++i) {
    shift(prev_edge[path[i + 1]], path[i], amount);
    if (i > 0) ++forwarded_[path[i]];  // intermediary credit
  }
  out.ok = true;
  out.hops = path.size() - 1;
  out.path = std::move(path);
  return out;
}

std::int64_t ChannelNetwork::spendable(std::size_t node) const {
  std::int64_t total = 0;
  for (const Edge& e : adj_[node]) {
    total += spendable_toward(e.channel, node);
  }
  return total;
}

ChannelNetwork make_hub_topology(std::size_t nodes, std::size_t hubs,
                                 std::int64_t user_funding,
                                 std::int64_t hub_funding, sim::Rng& rng) {
  ChannelNetwork net(nodes);
  // Hubs are nodes [0, hubs); they interconnect fully.
  for (std::size_t h1 = 0; h1 < hubs; ++h1) {
    for (std::size_t h2 = h1 + 1; h2 < hubs; ++h2) {
      net.open_channel(h1, h2, hub_funding, hub_funding);
    }
  }
  for (std::size_t u = hubs; u < nodes; ++u) {
    const std::size_t hub = rng.uniform_int(hubs);
    net.open_channel(u, hub, user_funding, hub_funding);
  }
  return net;
}

ChannelNetwork make_mesh_topology(std::size_t nodes,
                                  std::size_t channels_per_node,
                                  std::int64_t funding, sim::Rng& rng) {
  ChannelNetwork net(nodes);
  for (std::size_t u = 0; u < nodes; ++u) {
    for (std::size_t k = 0; k < channels_per_node; ++k) {
      std::size_t v = rng.uniform_int(nodes);
      if (v == u) v = (v + 1) % nodes;
      net.open_channel(u, v, funding, funding);
    }
  }
  return net;
}

}  // namespace decentnet::chain
