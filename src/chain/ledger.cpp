#include "chain/ledger.hpp"

#include <variant>

namespace decentnet::chain {

std::optional<TxOutput> UtxoSet::get(const OutPoint& op) const {
  const auto it = utxos_.find(op);
  if (it == utxos_.end()) return std::nullopt;
  return it->second;
}

Amount UtxoSet::balance_of(const crypto::PublicKey& owner) const {
  const auto it = by_owner_.find(owner);
  if (it == by_owner_.end()) return 0;
  Amount total = 0;
  for (const auto& [op, amount] : it->second) total += amount;
  return total;
}

std::vector<std::pair<OutPoint, TxOutput>> UtxoSet::outputs_of(
    const crypto::PublicKey& owner) const {
  std::vector<std::pair<OutPoint, TxOutput>> outs;
  const auto it = by_owner_.find(owner);
  if (it == by_owner_.end()) return outs;
  outs.reserve(it->second.size());
  for (const auto& [op, amount] : it->second) {
    outs.emplace_back(op, TxOutput{amount, owner});
  }
  return outs;
}

void UtxoSet::index_add(const OutPoint& op, const TxOutput& out) {
  by_owner_[out.recipient][op] = out.amount;
}

void UtxoSet::index_remove(const OutPoint& op, const TxOutput& out) {
  const auto it = by_owner_.find(out.recipient);
  if (it == by_owner_.end()) return;
  it->second.erase(op);
  if (it->second.empty()) by_owner_.erase(it);
}

std::optional<ValidationError> UtxoSet::check_transaction(
    const Transaction& tx, bool allow_coinbase, Amount max_reward) const {
  if (tx.is_coinbase()) {
    if (!allow_coinbase) return ValidationError{"unexpected coinbase"};
    Amount total = 0;
    for (const TxOutput& out : tx.outputs) {
      if (out.amount < 0) return ValidationError{"negative output"};
      total += out.amount;
    }
    if (max_reward > 0 && total > max_reward) {
      return ValidationError{"coinbase exceeds allowed reward"};
    }
    return std::nullopt;
  }
  if (tx.outputs.empty()) return ValidationError{"no outputs"};
  const crypto::Hash256 digest = tx.signing_digest();
  Amount in_total = 0;
  for (const TxInput& in : tx.inputs) {
    const auto prev = get(in.prevout);
    if (!prev) return ValidationError{"input not in UTXO set"};
    if (!(prev->recipient == in.owner)) {
      return ValidationError{"input owner mismatch"};
    }
    if (!crypto::KeyAuthority::global().verify(in.owner, digest,
                                               in.signature)) {
      return ValidationError{"bad signature"};
    }
    in_total += prev->amount;
  }
  Amount out_total = 0;
  for (const TxOutput& out : tx.outputs) {
    if (out.amount < 0) return ValidationError{"negative output"};
    out_total += out.amount;
  }
  if (out_total > in_total) return ValidationError{"outputs exceed inputs"};
  return std::nullopt;
}

std::variant<BlockUndo, ValidationError> UtxoSet::apply_block(
    const Block& block, Amount max_reward) {
  if (block.txs.empty() || !block.txs.front().is_coinbase()) {
    return ValidationError{"block must start with a coinbase"};
  }
  // Stage the changes so failure leaves the set untouched.
  BlockUndo undo;
  std::unordered_map<OutPoint, TxOutput, OutPointHasher> staged_spends;
  Amount fees = 0;
  for (std::size_t i = 0; i < block.txs.size(); ++i) {
    const Transaction& tx = block.txs[i];
    if (i == 0) continue;  // coinbase checked last (needs total fees)
    if (tx.is_coinbase()) return ValidationError{"coinbase not first"};
    const crypto::Hash256 digest = tx.signing_digest();
    Amount in_total = 0;
    for (const TxInput& in : tx.inputs) {
      if (staged_spends.count(in.prevout) > 0) {
        return ValidationError{"intra-block double spend"};
      }
      // The input may come from an earlier tx in this same block.
      auto prev = get(in.prevout);
      if (!prev) {
        bool found = false;
        for (std::size_t j = 0; j < i && !found; ++j) {
          if (block.txs[j].id() == in.prevout.tx &&
              in.prevout.index < block.txs[j].outputs.size()) {
            prev = block.txs[j].outputs[in.prevout.index];
            found = true;
          }
        }
        if (!found) return ValidationError{"input not found"};
      }
      if (!(prev->recipient == in.owner)) {
        return ValidationError{"input owner mismatch"};
      }
      if (!crypto::KeyAuthority::global().verify(in.owner, digest,
                                                 in.signature)) {
        return ValidationError{"bad signature"};
      }
      staged_spends.emplace(in.prevout, *prev);
      in_total += prev->amount;
    }
    Amount out_total = 0;
    for (const TxOutput& out : tx.outputs) {
      if (out.amount < 0) return ValidationError{"negative output"};
      out_total += out.amount;
    }
    if (out_total > in_total) return ValidationError{"outputs exceed inputs"};
    fees += in_total - out_total;
  }
  // Coinbase value check: reward + fees.
  {
    const Transaction& cb = block.txs.front();
    Amount total = 0;
    for (const TxOutput& out : cb.outputs) {
      if (out.amount < 0) return ValidationError{"negative coinbase output"};
      total += out.amount;
    }
    if (max_reward > 0 && total > max_reward + fees) {
      return ValidationError{"coinbase exceeds reward plus fees"};
    }
  }
  // Commit.
  for (const auto& [op, out] : staged_spends) {
    undo.spent.emplace_back(op, out);
    utxos_.erase(op);
    index_remove(op, out);
  }
  for (const Transaction& tx : block.txs) {
    const TxId id = tx.id();
    undo.created.push_back(id);
    for (std::uint32_t i = 0; i < tx.outputs.size(); ++i) {
      const OutPoint op{id, i};
      utxos_[op] = tx.outputs[i];
      index_add(op, tx.outputs[i]);
    }
  }
  return undo;
}

void UtxoSet::revert_block(const Block& block, const BlockUndo& undo) {
  for (const Transaction& tx : block.txs) {
    const TxId id = tx.id();
    for (std::uint32_t i = 0; i < tx.outputs.size(); ++i) {
      const OutPoint op{id, i};
      index_remove(op, tx.outputs[i]);
      utxos_.erase(op);
    }
  }
  for (const auto& [op, out] : undo.spent) {
    utxos_[op] = out;
    index_add(op, out);
  }
}

std::optional<ValidationError> UtxoSet::apply_transaction(
    const Transaction& tx) {
  const auto err = check_transaction(tx, /*allow_coinbase=*/false, 0);
  if (err) return err;
  const TxId id = tx.id();
  for (const TxInput& in : tx.inputs) {
    const auto it = utxos_.find(in.prevout);
    if (it != utxos_.end()) {
      index_remove(in.prevout, it->second);
      utxos_.erase(it);
    }
  }
  for (std::uint32_t i = 0; i < tx.outputs.size(); ++i) {
    const OutPoint op{id, i};
    utxos_[op] = tx.outputs[i];
    index_add(op, tx.outputs[i]);
  }
  return std::nullopt;
}

std::optional<Amount> transaction_fee(const UtxoSet& utxos,
                                      const Transaction& tx) {
  if (tx.is_coinbase()) return Amount{0};
  Amount in_total = 0;
  for (const TxInput& in : tx.inputs) {
    const auto prev = utxos.get(in.prevout);
    if (!prev) return std::nullopt;
    in_total += prev->amount;
  }
  Amount out_total = 0;
  for (const TxOutput& out : tx.outputs) out_total += out.amount;
  return in_total - out_total;
}

}  // namespace decentnet::chain
