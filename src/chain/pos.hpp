// Proof-of-stake model (§III-C Problem 2's aside and reference [32]).
//
// "Alternative approaches based on proof-of-X, where X could be stake,
// space, activity, etc. seem not be able to fully address this problem so
// far" — citing Houy's "It will cost you nothing to 'kill' a proof-of-stake
// crypto-currency".
//
// Three analyses:
//  * slot-based validator selection proportional to stake (the mechanism),
//  * compounding staking rewards -> stake concentration over time (the
//    rich-get-richer dynamic, PoS's analogue of E7),
//  * Houy's attack economics: the price of buying enough stake to kill the
//    chain versus the PoW attack cost, including the self-defeating-value
//    effect.
#pragma once

#include <cstdint>
#include <vector>

#include "sim/rng.hpp"

namespace decentnet::chain {

// ---------------------------------------------------------------------------
// Validator selection
// ---------------------------------------------------------------------------

/// Stake-weighted slot lottery: returns the winning validator index for one
/// slot. Deterministic in (stakes, rng state) — the simulation analogue of a
/// verifiable random function over the stake table.
std::size_t pos_select_validator(const std::vector<double>& stakes,
                                 sim::Rng& rng);

// ---------------------------------------------------------------------------
// Stake concentration dynamics
// ---------------------------------------------------------------------------

struct StakeSimConfig {
  std::size_t validators = 1000;
  std::size_t slots = 500'000;          // blocks proposed
  double reward_per_slot = 1.0;         // newly minted stake per block
  double initial_pareto_alpha = 1.2;    // initial stake skew
  /// Fraction of small holders who do not stake at all (cannot afford the
  /// infrastructure / minimum-stake requirements).
  double non_staking_fraction = 0.0;
  /// Minimum stake to participate (as a multiple of the mean initial stake).
  double min_stake_rel = 0.0;
};

/// Run the compounding-rewards process; returns final stake per validator.
/// With every holder staking, relative shares perform a martingale (no
/// systematic concentration); minimum-stake thresholds and non-participation
/// are what concentrate PoS in practice.
std::vector<double> simulate_stake_concentration(const StakeSimConfig& config,
                                                 sim::Rng& rng);

// ---------------------------------------------------------------------------
// Attack economics (Houy)
// ---------------------------------------------------------------------------

struct PosAttackParams {
  double total_stake_value_usd = 1e9;   // market cap of the staked token
  /// Fraction of the attack budget recovered by selling/shorting after the
  /// attack. Houy's point: an attacker who can short the token (or who
  /// merely needs the *threat* to be credible) recovers most of it; the
  /// stake's value collapses with the chain it secures.
  double recovery_fraction = 0.9;
  /// Fraction of total stake needed to control consensus (0.5 for simple
  /// majority-stake protocols, 1/3 to merely halt a BFT-style PoS).
  double control_fraction = 0.5;
};

struct PosAttackCost {
  double outlay_usd = 0;      // stake that must be acquired
  double net_cost_usd = 0;    // outlay minus recovery: the economic cost
};

/// Cost of acquiring control of a PoS chain under Houy's assumptions.
PosAttackCost pos_attack_cost(const PosAttackParams& params);

struct PowAttackParams {
  double network_hashrate = 100e18;     // H/s
  double hardware_usd_per_hash_rate = 25e-12 * 2;  // $/H/s of ASICs (approx)
  double power_usd_per_hash = 50e-12 * 0.05 / 3.6e6;  // $/hash (J/hash * $/J)
  double attack_duration_hours = 6;     // rent/run time to rewrite history
  /// Fraction of hardware cost recoverable after the attack (ASICs keep
  /// resale value only if the coin — their only use — survives).
  double hardware_recovery_fraction = 0.1;
};

/// Cost of out-hashing a PoW chain for `attack_duration_hours` (build-your-
/// own-majority model; renting is cheaper when a rental market exists).
PosAttackCost pow_attack_cost(const PowAttackParams& params);

}  // namespace decentnet::chain
