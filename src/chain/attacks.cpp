#include "chain/attacks.hpp"

#include <cmath>

namespace decentnet::chain {

SelfishOutcome simulate_selfish_mining(double alpha, double gamma,
                                       std::uint64_t block_events,
                                       sim::Rng& rng) {
  SelfishOutcome out;
  std::uint64_t priv = 0;  // pool's private lead blocks since the fork
  std::uint64_t pub = 0;   // honest blocks since the fork (pool withholding)
  bool tie = false;        // two equal-length chains racing (state 0')

  for (std::uint64_t i = 0; i < block_events; ++i) {
    const bool pool_found = rng.chance(alpha);
    if (tie) {
      if (pool_found) {
        // Pool extends its published branch and wins the race.
        out.pool_blocks += priv + 1;
        out.stale_blocks += pub;
      } else if (rng.chance(gamma)) {
        // Honest miner extended the pool's branch.
        out.pool_blocks += priv;
        out.honest_blocks += 1;
        out.stale_blocks += pub;
      } else {
        // Honest miner extended the honest branch.
        out.honest_blocks += pub + 1;
        out.stale_blocks += priv;
      }
      priv = pub = 0;
      tie = false;
      continue;
    }
    if (pool_found) {
      ++priv;
      continue;
    }
    // Honest block.
    if (priv == 0) {
      out.honest_blocks += 1;  // nothing withheld; pool adopts
      continue;
    }
    ++pub;
    const std::uint64_t delta = priv - pub;  // lead after this block
    if (delta == 0) {
      // Lead was 1: pool publishes everything -> equal-length race.
      tie = true;
    } else if (delta == 1) {
      // Lead was 2: pool publishes all and takes the whole fork.
      out.pool_blocks += priv;
      out.stale_blocks += pub;
      priv = pub = 0;
    }
    // delta >= 2: pool keeps withholding (publishes matching prefix only;
    // settlement happens when the lead collapses to 2).
  }
  // Settle whatever is still withheld at the horizon.
  if (tie || priv > pub) {
    out.pool_blocks += priv;
    out.stale_blocks += pub;
  } else {
    out.honest_blocks += pub;
    out.stale_blocks += priv;
  }
  return out;
}

double selfish_revenue_analytic(double alpha, double gamma) {
  // Eyal & Sirer 2014, Eq. 8.
  const double a = alpha;
  const double g = gamma;
  const double one = 1.0 - a;
  const double numerator =
      a * one * one * (4.0 * a + g * (1.0 - 2.0 * a)) - a * a * a;
  const double denominator = 1.0 - a * (1.0 + (2.0 - a) * a);
  if (denominator == 0) return 1.0;
  return numerator / denominator;
}

double selfish_threshold(double gamma) {
  return (1.0 - gamma) / (3.0 - 2.0 * gamma);
}

double doublespend_success_probability(double q, unsigned z) {
  if (q <= 0) return 0.0;
  if (q >= 0.5) return 1.0;
  const double p = 1.0 - q;
  const double lambda = static_cast<double>(z) * q / p;
  double sum = 0.0;
  double poisson = std::exp(-lambda);  // k = 0 term
  for (unsigned k = 0; k <= z; ++k) {
    if (k > 0) poisson *= lambda / static_cast<double>(k);
    sum += poisson * (1.0 - std::pow(q / p, static_cast<double>(z - k)));
  }
  const double prob = 1.0 - sum;
  return prob < 0 ? 0.0 : (prob > 1 ? 1.0 : prob);
}

double doublespend_success_mc(double q, unsigned z, std::uint64_t trials,
                              unsigned give_up_deficit, sim::Rng& rng) {
  if (trials == 0) return 0.0;
  std::uint64_t wins = 0;
  for (std::uint64_t t = 0; t < trials; ++t) {
    // Phase 1: while the merchant waits for z honest confirmations, the
    // attacker mines k blocks in private.
    std::int64_t attacker = 0;
    unsigned honest = 0;
    while (honest < z) {
      if (rng.chance(q)) {
        ++attacker;
      } else {
        ++honest;
      }
    }
    // Phase 2: gambler's ruin. Nakamoto's convention: the attacker wins by
    // *catching up* (reaching equal length — from there he can always
    // broadcast the longer chain he extends next), i.e. erase z - attacker.
    std::int64_t deficit = static_cast<std::int64_t>(z) - attacker;
    bool success = deficit <= 0;
    while (!success && deficit <= static_cast<std::int64_t>(give_up_deficit)) {
      if (rng.chance(q)) {
        --deficit;
        if (deficit <= 0) success = true;
      } else {
        ++deficit;
      }
    }
    if (success) ++wins;
  }
  return static_cast<double>(wins) / static_cast<double>(trials);
}

}  // namespace decentnet::chain
