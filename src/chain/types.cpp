#include "chain/types.hpp"

namespace decentnet::chain {

namespace {
void write_tx_body(crypto::ByteWriter& w, const Transaction& tx) {
  w.u64(tx.inputs.size());
  for (const TxInput& in : tx.inputs) {
    w.hash(in.prevout.tx).u32(in.prevout.index).hash(in.owner);
  }
  w.u64(tx.outputs.size());
  for (const TxOutput& out : tx.outputs) {
    w.i64(out.amount).hash(out.recipient);
  }
  w.u64(tx.nonce);
}
}  // namespace

crypto::Hash256 Transaction::signing_digest() const {
  crypto::ByteWriter w;
  w.str("tx-signing");
  write_tx_body(w, *this);
  return w.sha256();
}

TxId Transaction::id() const {
  crypto::ByteWriter w;
  w.str("tx-id");
  write_tx_body(w, *this);
  for (const TxInput& in : inputs) w.hash(in.signature);
  return w.sha256d();
}

BlockId BlockHeader::id() const {
  crypto::ByteWriter w;
  w.str("block-header")
      .hash(prev)
      .hash(merkle_root)
      .i64(timestamp)
      .u64(static_cast<std::uint64_t>(difficulty))
      .u64(nonce)
      .hash(miner);
  return w.sha256d();
}

crypto::Hash256 Block::compute_merkle_root() const {
  std::vector<crypto::Hash256> leaves;
  leaves.reserve(txs.size());
  for (const Transaction& tx : txs) leaves.push_back(tx.id());
  return crypto::MerkleTree::compute_root(std::move(leaves));
}

std::size_t Block::wire_size() const {
  std::size_t bytes = 80;  // header
  for (const Transaction& tx : txs) bytes += tx.wire_size();
  return bytes;
}

Transaction make_coinbase(const crypto::PublicKey& miner, Amount reward,
                          std::uint64_t nonce) {
  Transaction tx;
  tx.outputs.push_back(TxOutput{reward, miner});
  tx.nonce = nonce;
  return tx;
}

void sign_inputs(Transaction& tx, const crypto::PrivateKey& key) {
  // The owner keys are part of the signed digest, so set them first.
  for (TxInput& in : tx.inputs) in.owner = key.public_key();
  const crypto::Hash256 digest = tx.signing_digest();
  for (TxInput& in : tx.inputs) in.signature = key.sign(digest);
}

}  // namespace decentnet::chain
