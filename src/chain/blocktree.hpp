// Block tree with cumulative-work fork choice and reorg planning.
//
// Stores every block seen (blocks are immutable and shared between nodes via
// shared_ptr, so a 200-node network holds one copy of each block). The
// active chain is the tip with the most cumulative work; find_reorg()
// computes the revert/apply path between two tips.
#pragma once

#include <memory>
#include <optional>
#include <unordered_map>
#include <utility>
#include <vector>

#include "chain/types.hpp"

namespace decentnet::chain {

using BlockPtr = std::shared_ptr<const Block>;

struct BlockIndexEntry {
  BlockPtr block;
  std::uint64_t height = 0;
  double cumulative_work = 0;
  bool invalid = false;  // failed full validation; never part of best chain
};

/// The revert/apply plan for switching the active tip.
struct ReorgPlan {
  std::vector<BlockPtr> revert;  // from old tip down to the fork point
  std::vector<BlockPtr> apply;   // from the fork point up to the new tip
};

class BlockTree {
 public:
  /// Creates the tree rooted at a genesis block.
  explicit BlockTree(BlockPtr genesis);

  const BlockId& genesis_id() const { return genesis_id_; }
  const BlockId& best_tip() const { return best_tip_; }
  const BlockIndexEntry& entry(const BlockId& id) const {
    return index_.at(id);
  }
  bool contains(const BlockId& id) const {
    return index_.find(id) != index_.end();
  }
  std::size_t size() const { return index_.size(); }

  std::uint64_t best_height() const { return index_.at(best_tip_).height; }
  double best_work() const { return index_.at(best_tip_).cumulative_work; }

  /// Insert a block whose parent is already present. Returns false if the
  /// parent is unknown or the block is a duplicate. Updates the best tip if
  /// the new block has more cumulative work.
  bool insert(BlockPtr block);

  /// True if inserting made `id` the best tip the last time.
  /// (Callers usually just compare best_tip() before and after.)

  /// Walk the active chain from genesis to tip.
  std::vector<BlockPtr> active_chain() const;

  /// Blocks on the active chain, newest first, up to `count`.
  std::vector<BlockPtr> recent_blocks(std::size_t count) const;

  /// Compute the revert/apply lists to move from `from` tip to `to` tip.
  ReorgPlan find_reorg(const BlockId& from, const BlockId& to) const;

  /// Mark a block (and implicitly its descendants) invalid and recompute the
  /// best tip among chains free of invalid blocks.
  void mark_invalid(const BlockId& id);

  /// Number of blocks ever inserted that are NOT on the active chain
  /// (stale/orphaned work — E10's fork-rate metric).
  std::size_t stale_count() const;

 private:
  BlockId genesis_id_;
  BlockId best_tip_;
  std::unordered_map<BlockId, BlockIndexEntry, crypto::Hash256Hasher> index_;
};

/// Build a deterministic genesis block paying `reward` to `owner`.
BlockPtr make_genesis(const crypto::PublicKey& owner, Amount reward,
                      double difficulty);

/// Genesis with a premine: one output per (owner, amount) entry. Lets
/// experiments fund many wallets without waiting for coinbase maturity.
BlockPtr make_genesis_multi(
    const std::vector<std::pair<crypto::PublicKey, Amount>>& premine,
    double difficulty);

}  // namespace decentnet::chain
