#include "chain/miner.hpp"

namespace decentnet::chain {

Miner::Miner(FullNode& node, crypto::PublicKey payout,
             double hashes_per_second)
    : node_(node),
      sim_(node.simulator()),
      m_blocks_mined_(node.network().metrics().counter("chain/blocks_mined")),
      payout_(payout),
      rate_(hashes_per_second),
      // Nonce stream must be unique per miner even when several miners pay
      // out to one key: duplicate coinbase txids at different heights would
      // silently alias in the UTXO set (Bitcoin's BIP30 problem).
      nonce_((node.addr().value << 40) ^ crypto::Hash256Hasher{}(payout)),
      rng_(sim_.rng().fork(crypto::Hash256Hasher{}(payout) ^ 0x4D494E45ull)) {
  node_.add_tip_hook([this] {
    if (running_) reschedule();
  });
}

Miner::~Miner() { stop(); }

void Miner::start() {
  if (running_) return;
  running_ = true;
  reschedule();
}

void Miner::stop() {
  running_ = false;
  next_find_.cancel();
}

void Miner::set_hashrate(double hashes_per_second) {
  rate_ = hashes_per_second;
  if (running_) reschedule();
}

void Miner::reschedule() {
  next_find_.cancel();
  if (rate_ <= 0) return;
  const double difficulty =
      next_difficulty(node_.tree(), node_.tree().best_tip(), node_.params());
  const double seconds = rng_.exponential(rate_ / difficulty);
  next_find_ = sim_.schedule(sim::seconds(seconds), [this] { on_found(); },
                             "miner/find");
}

void Miner::on_found() {
  if (!running_) return;
  ++found_;
  m_blocks_mined_.add();
  Block block = node_.make_block_template(payout_, ++nonce_);
  node_.submit_block(std::make_shared<const Block>(std::move(block)));
  // submit_block fires the tip hook, which reschedules; if the block was
  // somehow rejected the hook never ran, so re-arm explicitly.
  if (!next_find_.valid()) reschedule();
}

}  // namespace decentnet::chain
