// Light (SPV) client: keeps headers only and verifies transaction inclusion
// with Merkle proofs served by a full node.
//
// The paper's Problem 1 notes that networks "retag nodes as light nodes but
// still count them in the global network size metrics" — light clients do
// not validate transactions, so E9's decentralization metric counts full
// validators only. This class makes the asymmetry concrete and measurable.
#pragma once

#include <cstdint>
#include <functional>
#include <unordered_map>

#include "chain/node.hpp"

namespace decentnet::chain {

class LightNode final : public net::Host {
 public:
  LightNode(net::Network& net, net::NodeId addr);
  ~LightNode() override;

  LightNode(const LightNode&) = delete;
  LightNode& operator=(const LightNode&) = delete;

  net::NodeId addr() const { return addr_; }

  /// Follow `server`'s header feed (the server must add_light_client(us)).
  void set_server(net::NodeId server) { server_ = server; }

  std::uint64_t headers_received() const { return headers_.size(); }
  std::uint64_t best_height() const { return best_height_; }
  double best_work() const { return best_work_; }

  /// Ask the server to prove inclusion of `tx`; `cb(verified)` runs when the
  /// proof arrives (false if absent or the Merkle path does not check out).
  void verify_inclusion(const TxId& tx, std::function<void(bool)> cb);

  void handle_message(const net::Message& msg) override;

 private:
  struct HeaderEntry {
    BlockHeader header;
    std::uint64_t height = 0;
    double work = 0;
  };

  net::Network& net_;
  net::NodeId addr_;
  net::NodeId server_;
  std::unordered_map<BlockId, HeaderEntry, crypto::Hash256Hasher> headers_;
  std::uint64_t best_height_ = 0;
  double best_work_ = 0;
  std::unordered_map<std::uint64_t, std::function<void(bool)>> pending_;
  std::uint64_t next_nonce_ = 1;
};

}  // namespace decentnet::chain
