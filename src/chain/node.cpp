#include "chain/node.hpp"

#include <algorithm>

namespace decentnet::chain {

using chain_msg::BlockMsg;
using chain_msg::GetBlock;
using chain_msg::GetProof;
using chain_msg::HeaderMsg;
using chain_msg::ProofMsg;
using chain_msg::TxMsg;

FullNode::FullNode(net::Network& net, net::NodeId addr, ChainParams params,
                   BlockPtr genesis)
    : net_(net),
      sim_(net.simulator()),
      addr_(addr),
      params_(std::move(params)),
      m_blocks_accepted_(net.metrics().counter("chain/blocks_accepted")),
      m_blocks_rejected_(net.metrics().counter("chain/blocks_rejected")),
      m_txs_accepted_(net.metrics().counter("chain/txs_accepted")),
      m_txs_rejected_(net.metrics().counter("chain/txs_rejected")),
      m_reorgs_(net.metrics().counter("chain/reorgs")),
      m_relay_depth_(net.span_tracking()
                         ? &net.metrics().histogram("chain/relay_tree_depth")
                         : nullptr),
      tree_(genesis) {
  net_.attach(addr_, this);
  known_blocks_.insert(genesis->id());
  // Genesis applies unconditionally (premines may exceed the block reward).
  const auto res = utxo_.apply_block(*genesis, /*max_reward=*/0);
  if (auto* undo = std::get_if<BlockUndo>(&res)) {
    undo_.emplace(genesis->id(), *undo);
  }
  utxo_tip_ = genesis->id();
}

FullNode::~FullNode() {
  orphan_retry_.cancel();
  net_.detach(addr_);
}

void FullNode::connect(std::vector<net::NodeId> neighbors) {
  neighbors_ = std::move(neighbors);
}

void FullNode::add_neighbor(net::NodeId n) {
  if (n != addr_ &&
      std::find(neighbors_.begin(), neighbors_.end(), n) == neighbors_.end()) {
    neighbors_.push_back(n);
  }
}

bool FullNode::submit_transaction(const Transaction& tx) {
  const TxId id = tx.id();
  if (!known_txs_.insert(id).second) return false;
  const auto err = mempool_.add(tx, utxo_);
  if (err) {
    ++stats_.txs_rejected;
    m_txs_rejected_.add();
    return false;
  }
  ++stats_.txs_accepted;
  m_txs_accepted_.add();
  relay_tx(std::make_shared<const Transaction>(tx), id,
           net::NodeId::invalid(), net_.new_span_root());
  return true;
}

bool FullNode::submit_block(BlockPtr block) {
  return accept_block(block, net::NodeId::invalid(), net_.new_span_root());
}

Block FullNode::make_block_template(const crypto::PublicKey& miner,
                                    std::uint64_t nonce) const {
  Block block;
  block.header.prev = tree_.best_tip();
  block.header.timestamp = sim_.now();
  block.header.difficulty = next_difficulty(tree_, tree_.best_tip(), params_);
  block.header.nonce = nonce;
  block.header.miner = miner;
  const std::vector<Transaction> txs =
      mempool_.select_for_block(utxo_, params_.max_block_bytes - 200);
  Amount fees = 0;
  for (const Transaction& tx : txs) {
    fees += transaction_fee(utxo_, tx).value_or(0);
  }
  block.txs.push_back(make_coinbase(miner, params_.block_reward + fees, nonce));
  block.txs.insert(block.txs.end(), txs.begin(), txs.end());
  block.header.merkle_root = block.compute_merkle_root();
  return block;
}

bool FullNode::accept_block(const BlockPtr& block, net::NodeId from,
                            net::Span span) {
  const BlockId id = block->id();
  if (known_blocks_.count(id) > 0) return false;
  known_blocks_.insert(id);

  // Structural checks that need no context.
  if (block->txs.empty() || !block->txs.front().is_coinbase() ||
      !(block->compute_merkle_root() == block->header.merkle_root)) {
    ++stats_.blocks_rejected;
    m_blocks_rejected_.add();
    return false;
  }

  if (!tree_.contains(block->header.prev)) {
    // Orphan: stash and ask the sender for the parent. The retry sweep
    // covers the case where this request (or its reply) is lost.
    orphans_.emplace(block->header.prev, block);
    if (from.valid()) {
      net_.send(addr_, from, GetBlock{block->header.prev}, 64, /*cookie=*/0,
                span);
    }
    schedule_orphan_retry();
    return false;
  }

  // Contextual check: the difficulty must match the retarget schedule.
  const double expected =
      next_difficulty(tree_, block->header.prev, params_);
  if (block->header.difficulty < expected * 0.999 ||
      block->header.difficulty > expected * 1.001) {
    ++stats_.blocks_rejected;
    m_blocks_rejected_.add();
    return false;
  }

  if (!tree_.insert(block)) {
    ++stats_.blocks_rejected;
    m_blocks_rejected_.add();
    return false;
  }
  ++stats_.blocks_accepted;
  m_blocks_accepted_.add();
  if (m_relay_depth_ && span.hop != 0) {
    m_relay_depth_->record(net_.span_depth(span.hop));
  }
  update_active_chain();
  relay_block(block, from, span);
  process_orphans(id);
  return true;
}

void FullNode::try_complete_compact(const BlockId& id) {
  const auto it = pending_compact_.find(id);
  if (it == pending_compact_.end()) return;
  for (const auto& tx : it->second.txs) {
    if (!tx.has_value()) return;  // still waiting on bodies
  }
  Block block;
  block.header = it->second.header;
  block.txs.push_back(std::move(it->second.coinbase));
  for (auto& tx : it->second.txs) block.txs.push_back(std::move(*tx));
  const net::NodeId from = it->second.from;
  // The causal parent is the compact announcement's hop, not the tx-body
  // fetch: the announcement is the edge of the block's dissemination tree.
  const net::Span span = it->second.span;
  pending_compact_.erase(it);
  // accept_block re-verifies the Merkle root, so a reconstruction that
  // disagrees with the header is rejected rather than propagated.
  accept_block(std::make_shared<const Block>(std::move(block)), from, span);
}

void FullNode::schedule_orphan_retry() {
  if (orphan_retry_.valid() || orphans_.empty() || neighbors_.empty()) return;
  orphan_retry_ = sim_.schedule(
      sim::seconds(2), [this] { retry_orphans(); }, "chain/orphan_retry");
}

void FullNode::retry_orphans() {
  // One GetBlock per distinct missing parent, rotating through neighbors so
  // a crashed or equally-behind peer can't starve the sweep. Re-fetching a
  // parent that is itself a stashed orphan is a no-op at the receiver (it
  // is already "known"); the lowest missing ancestor is always a genuine
  // fetch, and its arrival cascades the rest through process_orphans.
  for (auto it = orphans_.begin(); it != orphans_.end();) {
    const BlockId parent = it->first;
    do {
      ++it;
    } while (it != orphans_.end() && it->first == parent);
    if (tree_.contains(parent)) continue;
    const net::NodeId to = neighbors_[orphan_retry_rr_++ % neighbors_.size()];
    net_.send(addr_, to, GetBlock{parent}, 64);
  }
  schedule_orphan_retry();
}

void FullNode::process_orphans(const BlockId& parent) {
  auto [lo, hi] = orphans_.equal_range(parent);
  std::vector<BlockPtr> ready;
  for (auto it = lo; it != hi; ++it) ready.push_back(it->second);
  orphans_.erase(lo, hi);
  for (const BlockPtr& b : ready) {
    known_blocks_.erase(b->id());  // allow re-processing
    // Orphans re-enter with no span: their original arrival hop is long
    // gone, and a fresh root would double-count the block.
    accept_block(b, net::NodeId::invalid());
  }
}

void FullNode::update_active_chain() {
  for (;;) {
    const BlockId target = tree_.best_tip();
    if (target == utxo_tip_) return;
    const ReorgPlan plan = tree_.find_reorg(utxo_tip_, target);

    // Revert down to the fork point.
    for (const BlockPtr& b : plan.revert) {
      const BlockId bid = b->id();
      utxo_.revert_block(*b, undo_.at(bid));
      undo_.erase(bid);
      confirmed_txs_ -= b->txs.size() - 1;
      mempool_.reinstate(*b, utxo_);
    }

    // Apply up to the new tip; on failure restore and blacklist.
    bool failed = false;
    std::vector<BlockPtr> applied;
    for (const BlockPtr& b : plan.apply) {
      auto res = utxo_.apply_block(*b, params_.block_reward);
      if (auto* err = std::get_if<ValidationError>(&res)) {
        (void)err;
        // Roll back what we applied in this attempt.
        for (auto it = applied.rbegin(); it != applied.rend(); ++it) {
          utxo_.revert_block(**it, undo_.at((*it)->id()));
          undo_.erase((*it)->id());
          confirmed_txs_ -= (*it)->txs.size() - 1;
        }
        // Re-apply the blocks we reverted (they validated before).
        for (const BlockPtr& rb : plan.revert) {
          auto back = utxo_.apply_block(*rb, params_.block_reward);
          undo_.emplace(rb->id(), std::get<BlockUndo>(back));
          confirmed_txs_ += rb->txs.size() - 1;
          mempool_.remove_confirmed(*rb);
        }
        tree_.mark_invalid(b->id());
        ++stats_.blocks_rejected;
    m_blocks_rejected_.add();
        failed = true;
        break;
      }
      undo_.emplace(b->id(), std::get<BlockUndo>(res));
      confirmed_txs_ += b->txs.size() - 1;
      mempool_.remove_confirmed(*b);
      applied.push_back(b);
    }
    if (failed) continue;  // best tip changed; retry

    if (!plan.revert.empty()) {
      ++stats_.reorgs;
      m_reorgs_.add();
      stats_.reorg_depth_max =
          std::max<std::uint64_t>(stats_.reorg_depth_max, plan.revert.size());
    }
    utxo_tip_ = target;
    for (const TipHook& hook : tip_hooks_) hook();
    if (!light_clients_.empty() && !plan.apply.empty()) {
      // One shared header per applied block, fanned out to every client.
      std::vector<sim::Shared<HeaderMsg>> headers;
      headers.reserve(plan.apply.size());
      for (const BlockPtr& b : plan.apply) {
        headers.push_back(sim::Shared<HeaderMsg>::make(HeaderMsg{b->header}));
      }
      for (net::NodeId lc : light_clients_) {
        for (const auto& h : headers) {
          net_.send(addr_, lc, h, 80);
        }
      }
    }
    return;
  }
}

void FullNode::relay_block(const BlockPtr& block, net::NodeId skip,
                           net::Span span) {
  if (compact_relay_ && block->txs.size() > 1) {
    chain_msg::CompactBlockMsg compact;
    compact.header = block->header;
    compact.coinbase = block->txs.front();
    compact.tx_ids.reserve(block->txs.size() - 1);
    for (std::size_t i = 1; i < block->txs.size(); ++i) {
      compact.tx_ids.push_back(block->txs[i].id());
    }
    const std::size_t bytes =
        80 + compact.coinbase.wire_size() + 6 * compact.tx_ids.size();
    // One allocation for the whole fan-out: the tx-id vector is built once
    // and every neighbor's delivery aliases it.
    const auto shared =
        sim::Shared<chain_msg::CompactBlockMsg>::make(std::move(compact));
    for (net::NodeId n : neighbors_) {
      if (n == skip) continue;
      net_.send(addr_, n, shared, bytes, /*cookie=*/0, span);
    }
    return;
  }
  const std::size_t bytes = block->wire_size();
  const auto shared = sim::Shared<BlockMsg>::make(BlockMsg{block});
  for (net::NodeId n : neighbors_) {
    if (n == skip) continue;
    net_.send(addr_, n, shared, bytes, /*cookie=*/0, span);
  }
}

void FullNode::relay_tx(const std::shared_ptr<const Transaction>& tx,
                        const TxId& id, net::NodeId skip, net::Span span) {
  const std::size_t bytes = tx->wire_size();
  const auto shared = sim::Shared<TxMsg>::make(TxMsg{tx, id});
  for (net::NodeId n : neighbors_) {
    if (n == skip) continue;
    net_.send(addr_, n, shared, bytes, /*cookie=*/0, span);
  }
}

void FullNode::handle_message(const net::Message& msg) {
  if (msg.is<BlockMsg>()) {
    accept_block(net::payload_as<BlockMsg>(msg).block, msg.from, msg.span);
    return;
  }
  if (msg.is<TxMsg>()) {
    const auto& tm = net::payload_as<TxMsg>(msg);
    // Dedup on the relayed id: recomputing the double-SHA per duplicate
    // arrival would dominate whole-network simulations.
    if (!known_txs_.insert(tm.id).second) return;
    const auto err = mempool_.add(*tm.tx, utxo_);
    if (err) {
      ++stats_.txs_rejected;
      return;
    }
    ++stats_.txs_accepted;
    relay_tx(tm.tx, tm.id, msg.from, msg.span);
    return;
  }
  if (msg.is<chain_msg::CompactBlockMsg>()) {
    const auto& c = net::payload_as<chain_msg::CompactBlockMsg>(msg);
    const BlockId id = c.header.id();
    if (known_blocks_.count(id) > 0 || pending_compact_.count(id) > 0) {
      return;
    }
    PendingCompact pending;
    pending.header = c.header;
    pending.coinbase = c.coinbase;
    pending.tx_ids = c.tx_ids;
    pending.txs.resize(c.tx_ids.size());
    pending.from = msg.from;
    pending.span = msg.span;
    std::vector<std::uint32_t> missing;
    for (std::size_t i = 0; i < c.tx_ids.size(); ++i) {
      if (const Transaction* tx = mempool_.find(c.tx_ids[i])) {
        pending.txs[i] = *tx;
      } else {
        missing.push_back(static_cast<std::uint32_t>(i));
      }
    }
    pending_compact_.emplace(id, std::move(pending));
    if (missing.empty()) {
      try_complete_compact(id);
    } else {
      const std::size_t bytes = 48 + 4 * missing.size();
      net_.send(addr_, msg.from,
                chain_msg::GetBlockTxnsMsg{id, std::move(missing)}, bytes,
                /*cookie=*/0, msg.span);
    }
    return;
  }
  if (msg.is<chain_msg::GetBlockTxnsMsg>()) {
    const auto& req = net::payload_as<chain_msg::GetBlockTxnsMsg>(msg);
    if (!tree_.contains(req.block)) return;
    const BlockPtr& b = tree_.entry(req.block).block;
    chain_msg::BlockTxnsMsg reply;
    reply.block = req.block;
    std::size_t bytes = 48;
    for (std::uint32_t idx : req.indexes) {
      const std::size_t tx_index = static_cast<std::size_t>(idx) + 1;
      if (tx_index >= b->txs.size()) continue;
      reply.indexes.push_back(idx);
      reply.txs.push_back(b->txs[tx_index]);
      bytes += b->txs[tx_index].wire_size();
    }
    net_.send(addr_, msg.from, std::move(reply), bytes, /*cookie=*/0,
              msg.span);
    return;
  }
  if (msg.is<chain_msg::BlockTxnsMsg>()) {
    const auto& r = net::payload_as<chain_msg::BlockTxnsMsg>(msg);
    const auto it = pending_compact_.find(r.block);
    if (it == pending_compact_.end()) return;
    for (std::size_t k = 0; k < r.indexes.size() && k < r.txs.size(); ++k) {
      const std::size_t i = r.indexes[k];
      if (i < it->second.txs.size()) it->second.txs[i] = r.txs[k];
    }
    try_complete_compact(r.block);
    return;
  }
  if (msg.is<GetBlock>()) {
    const BlockId& id = net::payload_as<GetBlock>(msg).id;
    if (tree_.contains(id)) {
      const BlockPtr& b = tree_.entry(id).block;
      net_.send(addr_, msg.from, BlockMsg{b}, b->wire_size(), /*cookie=*/0,
                msg.span);
    }
    return;
  }
  if (msg.is<GetProof>()) {
    const auto& req = net::payload_as<GetProof>(msg);
    // Scan the active chain for the transaction (an index would be the
    // production answer; linear scan keeps the node simple).
    ProofMsg reply;
    reply.nonce = req.nonce;
    reply.tx = req.tx;
    for (const BlockPtr& b : tree_.active_chain()) {
      for (std::size_t i = 0; i < b->txs.size(); ++i) {
        if (b->txs[i].id() == req.tx) {
          std::vector<crypto::Hash256> leaves;
          leaves.reserve(b->txs.size());
          for (const Transaction& t : b->txs) leaves.push_back(t.id());
          crypto::MerkleTree mt(std::move(leaves));
          reply.found = true;
          reply.header = b->header;
          reply.index = i;
          reply.proof = mt.prove(i);
          break;
        }
      }
      if (reply.found) break;
    }
    net_.send(addr_, msg.from, std::move(reply),
              80 + 33 * reply.proof.size());
    return;
  }
}

}  // namespace decentnet::chain
