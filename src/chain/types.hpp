// Core blockchain data types: UTXO transactions, blocks, and headers.
//
// The shape follows Bitcoin: transactions spend previous outputs and create
// new ones; blocks commit an ordered transaction list under a Merkle root and
// chain by previous-block hash. Proof-of-work is represented by a real
// difficulty value, but the *search* for a nonce is simulated as an
// exponential race (see DESIGN.md substitutions) — the header still carries
// the winning miner and a nonce field for completeness.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "crypto/buffer.hpp"
#include "crypto/hash.hpp"
#include "crypto/keys.hpp"
#include "crypto/merkle.hpp"
#include "sim/time.hpp"

namespace decentnet::chain {

using TxId = crypto::Hash256;
using BlockId = crypto::Hash256;
using Amount = std::int64_t;  // in base units ("satoshis")

/// Reference to a previous transaction output.
struct OutPoint {
  TxId tx;
  std::uint32_t index = 0;

  bool operator==(const OutPoint& o) const {
    return tx == o.tx && index == o.index;
  }
};

struct OutPointHasher {
  std::size_t operator()(const OutPoint& o) const {
    return crypto::Hash256Hasher{}(o.tx) ^ (o.index * 0x9E3779B9u);
  }
};

struct TxInput {
  OutPoint prevout;
  crypto::Signature signature;  // owner's signature over the tx digest
  crypto::PublicKey owner;      // key that must match the spent output
};

struct TxOutput {
  Amount amount = 0;
  crypto::PublicKey recipient;
};

struct Transaction {
  std::vector<TxInput> inputs;   // empty for coinbase
  std::vector<TxOutput> outputs;
  std::uint64_t nonce = 0;       // uniquifies coinbases and test txs

  bool is_coinbase() const { return inputs.empty(); }

  /// Digest over everything except input signatures (what gets signed).
  crypto::Hash256 signing_digest() const;
  /// Transaction id: digest over the full content.
  TxId id() const;

  /// Nominal wire size in bytes (used for block size accounting).
  std::size_t wire_size() const {
    return 10 + inputs.size() * 148 + outputs.size() * 34;
  }
};

struct BlockHeader {
  BlockId prev;
  crypto::Hash256 merkle_root;
  sim::SimTime timestamp = 0;
  double difficulty = 1.0;  // expected hashes to find this block
  std::uint64_t nonce = 0;
  crypto::PublicKey miner;

  BlockId id() const;
};

struct Block {
  BlockHeader header;
  std::vector<Transaction> txs;  // txs[0] is the coinbase

  BlockId id() const { return header.id(); }

  /// Recompute the Merkle root from the transaction list.
  crypto::Hash256 compute_merkle_root() const;

  std::size_t wire_size() const;
};

/// Helpers to build well-formed transactions in tests/examples/benches.
Transaction make_coinbase(const crypto::PublicKey& miner, Amount reward,
                          std::uint64_t nonce);

/// Sign every input of `tx` with `key` (single-owner convenience).
void sign_inputs(Transaction& tx, const crypto::PrivateKey& key);

}  // namespace decentnet::chain
