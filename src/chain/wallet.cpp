#include "chain/wallet.hpp"

#include <algorithm>

namespace decentnet::chain {

std::optional<Transaction> Wallet::pay(const UtxoSet& utxos,
                                       const crypto::PublicKey& to,
                                       Amount amount, Amount fee,
                                       std::uint64_t nonce,
                                       sim::Rng* rng) const {
  if (amount <= 0) return std::nullopt;
  auto coins = utxos.outputs_of(address());
  if (rng != nullptr) {
    rng->shuffle(coins);
  } else {
    std::sort(coins.begin(), coins.end(), [](const auto& a, const auto& b) {
      return a.second.amount > b.second.amount;
    });
  }
  Transaction tx;
  tx.nonce = nonce;
  Amount gathered = 0;
  const Amount needed = amount + fee;
  for (const auto& [op, out] : coins) {
    TxInput in;
    in.prevout = op;
    tx.inputs.push_back(in);
    gathered += out.amount;
    if (gathered >= needed) break;
  }
  if (gathered < needed) return std::nullopt;
  tx.outputs.push_back(TxOutput{amount, to});
  const Amount change = gathered - needed;
  if (change > 0) tx.outputs.push_back(TxOutput{change, address()});
  sign_inputs(tx, key_);
  return tx;
}

}  // namespace decentnet::chain
