#include "chain/blocktree.hpp"

#include <algorithm>
#include <functional>
#include <unordered_set>

namespace decentnet::chain {

BlockTree::BlockTree(BlockPtr genesis) {
  genesis_id_ = genesis->id();
  best_tip_ = genesis_id_;
  index_.emplace(genesis_id_,
                 BlockIndexEntry{std::move(genesis), 0, 0.0});
}

bool BlockTree::insert(BlockPtr block) {
  const BlockId id = block->id();
  if (index_.count(id) > 0) return false;
  const auto parent = index_.find(block->header.prev);
  if (parent == index_.end()) return false;
  BlockIndexEntry entry;
  entry.height = parent->second.height + 1;
  entry.cumulative_work =
      parent->second.cumulative_work + block->header.difficulty;
  entry.invalid = parent->second.invalid;  // descendants of invalid: invalid
  entry.block = std::move(block);
  const double work = entry.cumulative_work;
  const bool viable = !entry.invalid;
  index_.emplace(id, std::move(entry));
  if (viable && work > index_.at(best_tip_).cumulative_work) best_tip_ = id;
  return true;
}

std::vector<BlockPtr> BlockTree::active_chain() const {
  std::vector<BlockPtr> chain;
  BlockId cur = best_tip_;
  for (;;) {
    const auto& e = index_.at(cur);
    chain.push_back(e.block);
    if (cur == genesis_id_) break;
    cur = e.block->header.prev;
  }
  std::reverse(chain.begin(), chain.end());
  return chain;
}

std::vector<BlockPtr> BlockTree::recent_blocks(std::size_t count) const {
  std::vector<BlockPtr> out;
  BlockId cur = best_tip_;
  while (out.size() < count) {
    const auto& e = index_.at(cur);
    out.push_back(e.block);
    if (cur == genesis_id_) break;
    cur = e.block->header.prev;
  }
  return out;
}

ReorgPlan BlockTree::find_reorg(const BlockId& from, const BlockId& to) const {
  ReorgPlan plan;
  BlockId a = from;
  BlockId b = to;
  // Bring both cursors to equal height, collecting passed blocks.
  while (index_.at(a).height > index_.at(b).height) {
    plan.revert.push_back(index_.at(a).block);
    a = index_.at(a).block->header.prev;
  }
  while (index_.at(b).height > index_.at(a).height) {
    plan.apply.push_back(index_.at(b).block);
    b = index_.at(b).block->header.prev;
  }
  while (!(a == b)) {
    plan.revert.push_back(index_.at(a).block);
    plan.apply.push_back(index_.at(b).block);
    a = index_.at(a).block->header.prev;
    b = index_.at(b).block->header.prev;
  }
  std::reverse(plan.apply.begin(), plan.apply.end());
  return plan;
}

void BlockTree::mark_invalid(const BlockId& id) {
  const auto it = index_.find(id);
  if (it == index_.end()) return;
  it->second.invalid = true;
  // Recompute the best tip among entries with a fully valid ancestry.
  std::unordered_map<BlockId, bool, crypto::Hash256Hasher> tainted;
  std::function<bool(const BlockId&)> is_tainted =
      [&](const BlockId& bid) -> bool {
    const auto memo = tainted.find(bid);
    if (memo != tainted.end()) return memo->second;
    const auto& e = index_.at(bid);
    bool t = e.invalid;
    if (!t && !(bid == genesis_id_)) t = is_tainted(e.block->header.prev);
    tainted[bid] = t;
    return t;
  };
  BlockId best = genesis_id_;
  double best_work = -1;
  for (auto& [bid, e] : index_) {
    if (is_tainted(bid)) {
      e.invalid = true;  // persist so later children inherit it on insert
      continue;
    }
    if (e.cumulative_work > best_work) {
      best_work = e.cumulative_work;
      best = bid;
    }
  }
  best_tip_ = best;
}

std::size_t BlockTree::stale_count() const {
  std::unordered_set<BlockId, crypto::Hash256Hasher> active;
  BlockId cur = best_tip_;
  for (;;) {
    active.insert(cur);
    if (cur == genesis_id_) break;
    cur = index_.at(cur).block->header.prev;
  }
  return index_.size() - active.size();
}

BlockPtr make_genesis_multi(
    const std::vector<std::pair<crypto::PublicKey, Amount>>& premine,
    double difficulty) {
  Block genesis;
  genesis.header.prev = BlockId{};
  genesis.header.timestamp = 0;
  genesis.header.difficulty = difficulty;
  Transaction coinbase;
  coinbase.nonce = 0;
  for (const auto& [owner, amount] : premine) {
    coinbase.outputs.push_back(TxOutput{amount, owner});
  }
  genesis.txs.push_back(std::move(coinbase));
  genesis.header.merkle_root = genesis.compute_merkle_root();
  return std::make_shared<const Block>(std::move(genesis));
}

BlockPtr make_genesis(const crypto::PublicKey& owner, Amount reward,
                      double difficulty) {
  Block genesis;
  genesis.header.prev = BlockId{};
  genesis.header.timestamp = 0;
  genesis.header.difficulty = difficulty;
  genesis.header.miner = owner;
  genesis.txs.push_back(make_coinbase(owner, reward, /*nonce=*/0));
  genesis.header.merkle_root = genesis.compute_merkle_root();
  return std::make_shared<const Block>(std::move(genesis));
}

}  // namespace decentnet::chain
