#include "chain/params.hpp"

#include <algorithm>

namespace decentnet::chain {

ChainParams ChainParams::bitcoin() {
  ChainParams p;
  p.block_reward = 50LL * 100'000'000LL;
  p.target_block_interval = sim::minutes(10);
  p.retarget_window = 144;  // daily rather than bi-weekly: faster experiments
  p.max_block_bytes = 1'000'000;
  p.initial_difficulty = 600e9;
  return p;
}

ChainParams ChainParams::ethereum() {
  ChainParams p;
  p.block_reward = 2LL * 100'000'000LL;
  p.target_block_interval = sim::seconds(13);
  p.retarget_window = 128;
  p.max_block_bytes = 60'000;
  p.initial_difficulty = 13e9;
  return p;
}

double next_difficulty(const BlockTree& tree, const BlockId& tip,
                       const ChainParams& params) {
  const BlockIndexEntry& tip_entry = tree.entry(tip);
  const double current = tip_entry.block->header.difficulty;
  const std::uint64_t next_height = tip_entry.height + 1;
  if (params.retarget_window == 0 ||
      next_height % params.retarget_window != 0) {
    return current;
  }
  // Walk back `retarget_window` blocks from the tip.
  BlockId cur = tip;
  for (std::size_t i = 0; i + 1 < params.retarget_window; ++i) {
    const auto& e = tree.entry(cur);
    if (e.height == 0) break;
    cur = e.block->header.prev;
  }
  const sim::SimTime window_start = tree.entry(cur).block->header.timestamp;
  const sim::SimTime window_end = tip_entry.block->header.timestamp;
  const double actual = std::max<double>(
      1.0, static_cast<double>(window_end - window_start));
  const double target = static_cast<double>(params.target_block_interval) *
                        static_cast<double>(params.retarget_window - 1);
  double ratio = target / actual;
  ratio = std::clamp(ratio, 1.0 / params.max_adjust, params.max_adjust);
  return current * ratio;
}

}  // namespace decentnet::chain
