// Incentive attacks on proof-of-work: selfish mining (Eyal & Sirer, the
// paper's reference [30]) and double spending (Nakamoto's race).
//
// Both come as closed-form analytics plus Monte-Carlo simulations of the
// underlying state machines, so the benches can show the simulated system
// tracking theory.
#pragma once

#include <cstdint>

#include "sim/rng.hpp"

namespace decentnet::chain {

// ---------------------------------------------------------------------------
// Selfish mining
// ---------------------------------------------------------------------------

struct SelfishOutcome {
  std::uint64_t pool_blocks = 0;    // selfish pool blocks on the final chain
  std::uint64_t honest_blocks = 0;  // honest blocks on the final chain
  std::uint64_t stale_blocks = 0;   // orphaned by the strategy
  double pool_revenue_share() const {
    const std::uint64_t total = pool_blocks + honest_blocks;
    return total == 0 ? 0.0
                      : static_cast<double>(pool_blocks) /
                            static_cast<double>(total);
  }
  double stale_rate() const {
    const std::uint64_t all = pool_blocks + honest_blocks + stale_blocks;
    return all == 0 ? 0.0
                    : static_cast<double>(stale_blocks) /
                          static_cast<double>(all);
  }
};

/// Run the Eyal-Sirer selfish-mining state machine for `block_events` block
/// discoveries. `alpha` is the pool's hash-power share; `gamma` the fraction
/// of honest miners that mine on the pool's branch during a tie.
SelfishOutcome simulate_selfish_mining(double alpha, double gamma,
                                       std::uint64_t block_events,
                                       sim::Rng& rng);

/// Closed-form relative revenue of the selfish pool (Eyal-Sirer Eq. 8).
double selfish_revenue_analytic(double alpha, double gamma);

/// Profitability threshold: selfish mining beats honest mining for
/// alpha > (1 - gamma) / (3 - 2 gamma).
double selfish_threshold(double gamma);

// ---------------------------------------------------------------------------
// Double spending
// ---------------------------------------------------------------------------

/// Nakamoto/Rosenfeld probability that an attacker with fraction `q` of the
/// hash power overtakes a merchant waiting for `z` confirmations.
double doublespend_success_probability(double q, unsigned z);

/// Monte-Carlo estimate of the same race: honest chain mines z confirmations
/// while the attacker mines in private, then a gambler's-ruin catch-up race.
/// `give_up_deficit` bounds the attacker's patience.
double doublespend_success_mc(double q, unsigned z, std::uint64_t trials,
                              unsigned give_up_deficit, sim::Rng& rng);

}  // namespace decentnet::chain
