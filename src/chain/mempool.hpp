// Transaction memory pool with fee-rate ordering and conflict tracking.
//
// Admission requires inputs to be unspent in the node's current UTXO view
// and not already claimed by another pooled transaction (no unconfirmed
// chaining — workloads spend confirmed outputs only, which keeps conflict
// semantics exact without ancestor scoring).
#pragma once

#include <optional>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "chain/ledger.hpp"
#include "chain/types.hpp"

namespace decentnet::chain {

class Mempool {
 public:
  std::size_t size() const { return txs_.size(); }
  bool contains(const TxId& id) const { return txs_.find(id) != txs_.end(); }

  /// Pooled transaction by id (compact-block reconstruction); nullptr if
  /// absent.
  const Transaction* find(const TxId& id) const {
    const auto it = txs_.find(id);
    return it == txs_.end() ? nullptr : &it->second;
  }

  /// Try to admit `tx`; validates against `utxos`. Returns the reason on
  /// rejection.
  std::optional<ValidationError> add(const Transaction& tx,
                                     const UtxoSet& utxos);

  /// Remove transactions included in (or conflicting with) a new block.
  void remove_confirmed(const Block& block);

  /// Re-admit transactions from a reverted block (reorg), skipping the
  /// coinbase and anything now conflicting.
  void reinstate(const Block& block, const UtxoSet& utxos);

  /// Highest-fee-rate transactions fitting in `max_bytes` (greedy knapsack,
  /// the standard miner policy). Fees are computed against `utxos`.
  std::vector<Transaction> select_for_block(const UtxoSet& utxos,
                                            std::size_t max_bytes) const;

  std::vector<TxId> ids() const;

 private:
  std::unordered_map<TxId, Transaction, crypto::Hash256Hasher> txs_;
  std::unordered_set<OutPoint, OutPointHasher> claimed_;
};

}  // namespace decentnet::chain
