// UTXO set with full validation and reorg support.
//
// apply_block() validates a block's transactions against the current set
// (existence, ownership signature, value conservation, no intra-block double
// spend) and returns undo data so revert_block() can unwind it — the
// primitive behind longest-chain reorgs.
#pragma once

#include <optional>
#include <string>
#include <unordered_map>
#include <utility>
#include <variant>

#include "chain/types.hpp"

namespace decentnet::chain {

struct ValidationError {
  std::string reason;
};

/// Undo record: outputs consumed by the block (to restore) and the ids of
/// transactions whose outputs must be deleted on revert.
struct BlockUndo {
  std::vector<std::pair<OutPoint, TxOutput>> spent;
  std::vector<TxId> created;
};

class UtxoSet {
 public:
  UtxoSet() = default;

  std::size_t size() const { return utxos_.size(); }

  bool contains(const OutPoint& op) const {
    return utxos_.find(op) != utxos_.end();
  }
  std::optional<TxOutput> get(const OutPoint& op) const;

  /// Sum of unspent outputs payable to `owner`.
  Amount balance_of(const crypto::PublicKey& owner) const;
  /// Unspent outputs payable to `owner` (for coin selection).
  std::vector<std::pair<OutPoint, TxOutput>> outputs_of(
      const crypto::PublicKey& owner) const;

  /// Validate one transaction against the current set (standalone check;
  /// does not mutate). `max_reward` bounds coinbase value when nonzero.
  std::optional<ValidationError> check_transaction(const Transaction& tx,
                                                   bool allow_coinbase,
                                                   Amount max_reward) const;

  /// Validate and apply a whole block. On success returns undo data; on
  /// failure the set is unchanged and the error is returned.
  std::variant<BlockUndo, ValidationError> apply_block(const Block& block,
                                                       Amount max_reward);

  /// Unwind a previously applied block (must be the most recent one on this
  /// branch; callers maintain the discipline).
  void revert_block(const Block& block, const BlockUndo& undo);

  /// Apply a single (non-coinbase) transaction — used by mempool admission.
  std::optional<ValidationError> apply_transaction(const Transaction& tx);

 private:
  void index_add(const OutPoint& op, const TxOutput& out);
  void index_remove(const OutPoint& op, const TxOutput& out);

  std::unordered_map<OutPoint, TxOutput, OutPointHasher> utxos_;
  // Secondary index: owner -> outpoints. Wallet-facing queries (balance,
  // coin selection) would otherwise scan the whole set, which dominates
  // whole-network simulations.
  std::unordered_map<crypto::PublicKey,
                     std::unordered_map<OutPoint, Amount, OutPointHasher>,
                     crypto::Hash256Hasher>
      by_owner_;
};

/// Total fee of `tx` given the outputs it spends; nullopt if inputs missing.
std::optional<Amount> transaction_fee(const UtxoSet& utxos,
                                      const Transaction& tx);

}  // namespace decentnet::chain
