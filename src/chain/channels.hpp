// Layer-2 payment channels (§III-C Problem 2).
//
// "Many of the new and existing networks are proposing more centralized
// designs to increase the overall performance. The so-called layer 2 or
// off-chain solutions like Lightning network (Bitcoin), Plasma (Ethereum)
// or EOS follow this trend. In these cases, transactions are processed by a
// much smaller set of peers to increase performance."
//
// Model: bidirectional channels with on-chain-funded balances; multi-hop
// payments route along capacity-feasible paths (shortest-hop, like early
// Lightning). E17 measures the throughput escape hatch AND the paper's
// barb: payment traffic concentrates through a few well-funded hubs.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "sim/rng.hpp"

namespace decentnet::chain {

/// One bidirectional channel between two parties with split balances.
struct PaymentChannel {
  std::size_t a = 0;
  std::size_t b = 0;
  std::int64_t balance_a = 0;  // spendable by a toward b
  std::int64_t balance_b = 0;
  std::uint64_t payments_routed = 0;

  std::int64_t capacity() const { return balance_a + balance_b; }
};

struct RouteResult {
  bool ok = false;
  std::size_t hops = 0;
  std::vector<std::size_t> path;  // node indices, payer first
};

/// An off-chain payment network over `n` participants.
class ChannelNetwork {
 public:
  explicit ChannelNetwork(std::size_t nodes) : nodes_(nodes), adj_(nodes) {}

  std::size_t node_count() const { return nodes_; }
  std::size_t channel_count() const { return channels_.size(); }
  const std::vector<PaymentChannel>& channels() const { return channels_; }

  /// Open a channel funded with `fund_a` from a and `fund_b` from b.
  /// (On chain this is one funding transaction; here the L1 cost is
  /// accounted by the caller.) Returns the channel index.
  std::size_t open_channel(std::size_t a, std::size_t b, std::int64_t fund_a,
                           std::int64_t fund_b);

  /// Route `amount` from `payer` to `payee` along the shortest
  /// capacity-feasible path (BFS). Balances shift atomically along the
  /// path; no on-chain transaction is involved.
  RouteResult pay(std::size_t payer, std::size_t payee, std::int64_t amount);

  /// Total spendable balance a node holds across its channels.
  std::int64_t spendable(std::size_t node) const;

  /// Sum over nodes of payments that transited them as intermediaries —
  /// the hub-concentration measure (feed to gini/nakamoto_coefficient).
  std::vector<double> forwarding_load() const {
    return std::vector<double>(forwarded_.begin(), forwarded_.end());
  }

 private:
  struct Edge {
    std::size_t channel;
    std::size_t peer;
  };

  std::int64_t spendable_toward(std::size_t channel, std::size_t from) const;
  void shift(std::size_t channel, std::size_t from, std::int64_t amount);

  std::size_t nodes_;
  std::vector<PaymentChannel> channels_;
  std::vector<std::vector<Edge>> adj_;
  std::vector<std::uint64_t> forwarded_ = std::vector<std::uint64_t>();
};

/// Build a hub-and-spoke topology: `hubs` well-funded routers, everyone
/// else opens one channel to a random hub (what Lightning converged to).
ChannelNetwork make_hub_topology(std::size_t nodes, std::size_t hubs,
                                 std::int64_t user_funding,
                                 std::int64_t hub_funding, sim::Rng& rng);

/// Build a random peer mesh: every node opens `channels_per_node` channels
/// to random peers with symmetric funding (the decentralized ideal).
ChannelNetwork make_mesh_topology(std::size_t nodes,
                                  std::size_t channels_per_node,
                                  std::int64_t funding, sim::Rng& rng);

}  // namespace decentnet::chain
