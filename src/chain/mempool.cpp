#include "chain/mempool.hpp"

#include <algorithm>

namespace decentnet::chain {

std::optional<ValidationError> Mempool::add(const Transaction& tx,
                                            const UtxoSet& utxos) {
  const TxId id = tx.id();
  if (txs_.count(id) > 0) return ValidationError{"already in mempool"};
  if (tx.is_coinbase()) return ValidationError{"coinbase in mempool"};
  for (const TxInput& in : tx.inputs) {
    if (claimed_.count(in.prevout) > 0) {
      return ValidationError{"conflicts with pooled transaction"};
    }
  }
  const auto err = utxos.check_transaction(tx, /*allow_coinbase=*/false, 0);
  if (err) return err;
  for (const TxInput& in : tx.inputs) claimed_.insert(in.prevout);
  txs_.emplace(id, tx);
  return std::nullopt;
}

void Mempool::remove_confirmed(const Block& block) {
  // Collect outpoints spent by the block; drop included and conflicting txs.
  std::unordered_set<OutPoint, OutPointHasher> spent;
  for (const Transaction& tx : block.txs) {
    for (const TxInput& in : tx.inputs) spent.insert(in.prevout);
  }
  std::vector<TxId> doomed;
  for (const Transaction& tx : block.txs) {
    if (!tx.is_coinbase()) doomed.push_back(tx.id());
  }
  for (const auto& [id, tx] : txs_) {
    for (const TxInput& in : tx.inputs) {
      if (spent.count(in.prevout) > 0) {
        doomed.push_back(id);
        break;
      }
    }
  }
  for (const TxId& id : doomed) {
    const auto it = txs_.find(id);
    if (it == txs_.end()) continue;
    for (const TxInput& in : it->second.inputs) claimed_.erase(in.prevout);
    txs_.erase(it);
  }
}

void Mempool::reinstate(const Block& block, const UtxoSet& utxos) {
  for (const Transaction& tx : block.txs) {
    if (tx.is_coinbase()) continue;
    add(tx, utxos);  // best effort; conflicts are silently skipped
  }
}

std::vector<Transaction> Mempool::select_for_block(
    const UtxoSet& utxos, std::size_t max_bytes) const {
  struct Candidate {
    const Transaction* tx;
    double fee_rate;
  };
  std::vector<Candidate> candidates;
  candidates.reserve(txs_.size());
  for (const auto& [id, tx] : txs_) {
    const auto fee = transaction_fee(utxos, tx);
    if (!fee) continue;  // inputs no longer unspent; leave for cleanup
    candidates.push_back(
        Candidate{&tx, static_cast<double>(*fee) /
                           static_cast<double>(tx.wire_size())});
  }
  std::sort(candidates.begin(), candidates.end(),
            [](const Candidate& a, const Candidate& b) {
              return a.fee_rate > b.fee_rate;
            });
  std::vector<Transaction> selected;
  std::unordered_set<OutPoint, OutPointHasher> spent;
  std::size_t bytes = 0;
  for (const Candidate& c : candidates) {
    const std::size_t sz = c.tx->wire_size();
    if (bytes + sz > max_bytes) continue;
    bool conflict = false;
    for (const TxInput& in : c.tx->inputs) {
      if (spent.count(in.prevout) > 0) {
        conflict = true;
        break;
      }
    }
    if (conflict) continue;
    for (const TxInput& in : c.tx->inputs) spent.insert(in.prevout);
    selected.push_back(*c.tx);
    bytes += sz;
  }
  return selected;
}

std::vector<TxId> Mempool::ids() const {
  std::vector<TxId> out;
  out.reserve(txs_.size());
  for (const auto& [id, tx] : txs_) out.push_back(id);
  return out;
}

}  // namespace decentnet::chain
