#include "chain/light.hpp"

namespace decentnet::chain {

using chain_msg::GetProof;
using chain_msg::HeaderMsg;
using chain_msg::ProofMsg;

LightNode::LightNode(net::Network& net, net::NodeId addr)
    : net_(net), addr_(addr) {
  net_.attach(addr_, this);
}

LightNode::~LightNode() { net_.detach(addr_); }

void LightNode::verify_inclusion(const TxId& tx,
                                 std::function<void(bool)> cb) {
  const std::uint64_t nonce = next_nonce_++;
  pending_.emplace(nonce, std::move(cb));
  net_.send(addr_, server_, GetProof{tx, nonce}, 48);
}

void LightNode::handle_message(const net::Message& msg) {
  if (msg.is<HeaderMsg>()) {
    const BlockHeader& h = net::payload_as<HeaderMsg>(msg).header;
    const BlockId id = h.id();
    if (headers_.count(id) > 0) return;
    HeaderEntry entry;
    entry.header = h;
    const auto parent = headers_.find(h.prev);
    if (parent != headers_.end()) {
      entry.height = parent->second.height + 1;
      entry.work = parent->second.work + h.difficulty;
    } else {
      // First header (or a gap): accept as a chain start.
      entry.height = 0;
      entry.work = h.difficulty;
    }
    if (entry.work > best_work_) {
      best_work_ = entry.work;
      best_height_ = entry.height;
    }
    headers_.emplace(id, std::move(entry));
    return;
  }
  if (msg.is<ProofMsg>()) {
    const auto& p = net::payload_as<ProofMsg>(msg);
    const auto it = pending_.find(p.nonce);
    if (it == pending_.end()) return;
    auto cb = std::move(it->second);
    pending_.erase(it);
    if (!p.found) {
      cb(false);
      return;
    }
    // The header must be one we track, and the Merkle path must bind the tx
    // to its root.
    const bool header_known = headers_.count(p.header.id()) > 0;
    const bool path_ok = crypto::MerkleTree::verify(
        p.tx, p.index, p.proof, p.header.merkle_root);
    cb(header_known && path_ok);
    return;
  }
}

}  // namespace decentnet::chain
