// Full node: validation, longest-(most-work)-chain fork choice with reorgs,
// mempool, and flood relay of blocks and transactions over the P2P mesh.
//
// This is the "large unstructured broadcast network where all nodes validate
// transactions" whose costs the paper's Problem 2 dissects.
#pragma once

#include <functional>
#include <memory>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "chain/blocktree.hpp"
#include "chain/ledger.hpp"
#include "chain/mempool.hpp"
#include "chain/params.hpp"
#include "net/message.hpp"
#include "net/network.hpp"

namespace decentnet::chain {

namespace chain_msg {
struct BlockMsg {
  BlockPtr block;
};
/// Compact relay (BIP152-style): header + txids; receivers rebuild the
/// block from their mempool and fetch only what they miss.
struct CompactBlockMsg {
  BlockHeader header;
  Transaction coinbase;        // never in mempools, so always shipped
  std::vector<TxId> tx_ids;    // non-coinbase, in block order
};
struct GetBlockTxnsMsg {
  BlockId block;
  std::vector<std::uint32_t> indexes;  // into CompactBlockMsg::tx_ids
};
struct BlockTxnsMsg {
  BlockId block;
  std::vector<std::uint32_t> indexes;
  std::vector<Transaction> txs;
};
struct TxMsg {
  std::shared_ptr<const Transaction> tx;
  TxId id;  // computed once at origination; dedup key for relays
};
struct GetBlock {
  BlockId id;
};
struct HeaderMsg {
  BlockHeader header;
};
/// Light-client inclusion proof protocol.
struct GetProof {
  TxId tx;
  std::uint64_t nonce;
};
struct ProofMsg {
  std::uint64_t nonce;
  bool found = false;
  BlockHeader header;
  TxId tx;
  std::size_t index = 0;
  crypto::MerkleProof proof;
};
}  // namespace chain_msg

struct FullNodeStats {
  std::uint64_t blocks_accepted = 0;
  std::uint64_t blocks_rejected = 0;
  std::uint64_t txs_accepted = 0;
  std::uint64_t txs_rejected = 0;
  std::uint64_t reorgs = 0;
  std::uint64_t reorg_depth_max = 0;
};

class FullNode : public net::Host {
 public:
  using TipHook = std::function<void()>;

  FullNode(net::Network& net, net::NodeId addr, ChainParams params,
           BlockPtr genesis);
  ~FullNode() override;

  FullNode(const FullNode&) = delete;
  FullNode& operator=(const FullNode&) = delete;

  net::NodeId addr() const { return addr_; }
  sim::Simulator& simulator() { return sim_; }
  net::Network& network() { return net_; }
  const ChainParams& params() const { return params_; }
  const BlockTree& tree() const { return tree_; }
  const UtxoSet& utxo() const { return utxo_; }
  const Mempool& mempool() const { return mempool_; }
  const FullNodeStats& stats() const { return stats_; }

  void connect(std::vector<net::NodeId> neighbors);
  void add_neighbor(net::NodeId n);

  /// Relay blocks as header + txids instead of full bodies (BIP152-style).
  /// Receivers rebuild from their mempool; bandwidth drops ~40x when
  /// mempools are synchronized, which also shortens propagation and cuts
  /// the stale rate (the E10 ablation).
  void set_compact_relay(bool on) { compact_relay_ = on; }
  bool compact_relay() const { return compact_relay_; }
  /// Register a light client that should receive new headers.
  void add_light_client(net::NodeId n) { light_clients_.push_back(n); }

  /// Invoked whenever the active tip changes (miners re-target on this).
  void add_tip_hook(TipHook hook) { tip_hooks_.push_back(std::move(hook)); }

  /// Locally originated transaction: validate, pool, relay.
  bool submit_transaction(const Transaction& tx);

  /// Block from the local miner: validate, adopt, relay.
  bool submit_block(BlockPtr block);

  /// Assemble a block template on the current tip for `miner`.
  Block make_block_template(const crypto::PublicKey& miner,
                            std::uint64_t nonce) const;

  /// Transactions confirmed on the active chain (excluding coinbases).
  std::uint64_t confirmed_tx_count() const { return confirmed_txs_; }

  void handle_message(const net::Message& msg) override;

 protected:
  /// Accept a block from anywhere; returns true if it was new and valid.
  /// `span` is the causal hop the block arrived on (or a fresh root for
  /// locally mined blocks); relays inherit it so block propagation forms
  /// one tree per block.
  bool accept_block(const BlockPtr& block, net::NodeId from,
                    net::Span span = {});
  void relay_block(const BlockPtr& block, net::NodeId skip, net::Span span);
  void relay_tx(const std::shared_ptr<const Transaction>& tx,
                const TxId& id, net::NodeId skip, net::Span span);
  /// Move the UTXO view to the tree's best tip (reorg if needed).
  void update_active_chain();
  void process_orphans(const BlockId& parent);
  /// Assemble and accept a compact block once every body is on hand.
  void try_complete_compact(const BlockId& id);
  /// Re-request missing orphan parents until the stash drains. The initial
  /// GetBlock goes to the block's sender exactly once; if that round trip
  /// dies (loss burst, sender crashes), this sweep is the only way the
  /// walk-back ever resumes.
  void schedule_orphan_retry();
  void retry_orphans();

  net::Network& net_;
  sim::Simulator& sim_;
  net::NodeId addr_;
  ChainParams params_;
  // Experiment-scoped metric handles (aggregated across all nodes sharing
  // the network's registry); per-node numbers stay in stats_.
  sim::Counter& m_blocks_accepted_;
  sim::Counter& m_blocks_rejected_;
  sim::Counter& m_txs_accepted_;
  sim::Counter& m_txs_rejected_;
  sim::Counter& m_reorgs_;
  // Span-derived: relay-tree depth of each accepted block (0 = mined here).
  // Bound only while the network tracks spans (null otherwise).
  sim::Histogram* m_relay_depth_;
  BlockTree tree_;
  UtxoSet utxo_;
  Mempool mempool_;
  BlockId utxo_tip_;  // block the UTXO view corresponds to
  std::unordered_map<BlockId, BlockUndo, crypto::Hash256Hasher> undo_;
  std::vector<net::NodeId> neighbors_;
  std::vector<net::NodeId> light_clients_;
  std::unordered_set<BlockId, crypto::Hash256Hasher> known_blocks_;
  std::unordered_set<TxId, crypto::Hash256Hasher> known_txs_;
  std::unordered_multimap<BlockId, BlockPtr, crypto::Hash256Hasher> orphans_;
  sim::EventHandle orphan_retry_;
  std::size_t orphan_retry_rr_ = 0;  // round-robin neighbor cursor
  bool compact_relay_ = false;
  struct PendingCompact {
    BlockHeader header;
    Transaction coinbase;
    std::vector<TxId> tx_ids;
    std::vector<std::optional<Transaction>> txs;  // filled as they arrive
    net::NodeId from;
    net::Span span;  // hop the compact announcement arrived on
  };
  std::unordered_map<BlockId, PendingCompact, crypto::Hash256Hasher>
      pending_compact_;
  std::vector<TipHook> tip_hooks_;
  FullNodeStats stats_;
  std::uint64_t confirmed_txs_ = 0;
};

}  // namespace decentnet::chain
