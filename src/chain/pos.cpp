#include "chain/pos.hpp"

#include <algorithm>
#include <numeric>

namespace decentnet::chain {

std::size_t pos_select_validator(const std::vector<double>& stakes,
                                 sim::Rng& rng) {
  return rng.weighted_index(stakes);
}

std::vector<double> simulate_stake_concentration(const StakeSimConfig& config,
                                                 sim::Rng& rng) {
  std::vector<double> stake(config.validators);
  for (auto& s : stake) s = rng.pareto(1.0, config.initial_pareto_alpha);
  const double mean_initial =
      std::accumulate(stake.begin(), stake.end(), 0.0) /
      static_cast<double>(config.validators);

  // Who actually stakes: exclude the non-staking fraction (picked among the
  // smallest holders — they are the ones priced out in practice) and anyone
  // below the minimum stake.
  std::vector<bool> staking(config.validators, true);
  if (config.non_staking_fraction > 0) {
    std::vector<std::size_t> order(config.validators);
    for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
    std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
      return stake[a] < stake[b];
    });
    const auto out = static_cast<std::size_t>(
        config.non_staking_fraction * static_cast<double>(config.validators));
    for (std::size_t i = 0; i < out; ++i) staking[order[i]] = false;
  }
  const double min_stake = config.min_stake_rel * mean_initial;

  std::vector<double> weights(config.validators);
  for (std::size_t slot = 0; slot < config.slots; ++slot) {
    // Only qualified validators enter the lottery.
    for (std::size_t i = 0; i < stake.size(); ++i) {
      weights[i] = (staking[i] && stake[i] >= min_stake) ? stake[i] : 0.0;
    }
    const std::size_t winner = rng.weighted_index(weights);
    stake[winner] += config.reward_per_slot;
  }
  return stake;
}

PosAttackCost pos_attack_cost(const PosAttackParams& params) {
  PosAttackCost out;
  out.outlay_usd = params.total_stake_value_usd * params.control_fraction;
  out.net_cost_usd = out.outlay_usd * (1.0 - params.recovery_fraction);
  return out;
}

PosAttackCost pow_attack_cost(const PowAttackParams& params) {
  PosAttackCost out;
  // Match the honest network's hash rate: buy the hardware, pay the power.
  const double hardware =
      params.network_hashrate * params.hardware_usd_per_hash_rate;
  const double hashes = params.network_hashrate *
                        params.attack_duration_hours * 3600.0;
  const double power = hashes * params.power_usd_per_hash;
  out.outlay_usd = hardware + power;
  out.net_cost_usd =
      hardware * (1.0 - params.hardware_recovery_fraction) + power;
  return out;
}

}  // namespace decentnet::chain
