// Honest proof-of-work miner.
//
// Substitution (DESIGN.md): instead of grinding SHA-256 nonces, block
// discovery is an exponential race — miner i finds the next block after
// Exp(hashrate_i / difficulty) seconds, re-sampled whenever the tip changes
// (memorylessness makes the re-sample exact). Relative revenue, fork rates
// and difficulty dynamics are preserved; only the wasted electricity is
// virtual.
#pragma once

#include <cstdint>

#include "chain/node.hpp"
#include "sim/rng.hpp"

namespace decentnet::chain {

class Miner {
 public:
  /// `hashes_per_second` against `node.params().initial_difficulty`-scale
  /// difficulties. The miner pays out to `payout`.
  Miner(FullNode& node, crypto::PublicKey payout, double hashes_per_second);
  ~Miner();

  Miner(const Miner&) = delete;
  Miner& operator=(const Miner&) = delete;

  void start();
  void stop();
  bool running() const { return running_; }

  void set_hashrate(double hashes_per_second);
  double hashrate() const { return rate_; }

  std::uint64_t blocks_found() const { return found_; }
  const crypto::PublicKey& payout() const { return payout_; }

 private:
  void reschedule();
  void on_found();

  FullNode& node_;
  sim::Simulator& sim_;
  sim::Counter& m_blocks_mined_;
  crypto::PublicKey payout_;
  double rate_;
  bool running_ = false;
  sim::EventHandle next_find_;
  std::uint64_t found_ = 0;
  std::uint64_t nonce_ = 0;
  sim::Rng rng_;
};

}  // namespace decentnet::chain
