// Minimal wallet: coin selection + signing against a UTXO view.
#pragma once

#include <optional>

#include "chain/ledger.hpp"
#include "chain/types.hpp"
#include "sim/rng.hpp"

namespace decentnet::chain {

class Wallet {
 public:
  explicit Wallet(crypto::PrivateKey key) : key_(std::move(key)) {}

  /// Create and register a wallet from a deterministic seed.
  static Wallet from_seed(std::uint64_t seed) {
    return Wallet(crypto::KeyAuthority::global().issue(seed));
  }

  crypto::PublicKey address() const { return key_.public_key(); }
  const crypto::PrivateKey& key() const { return key_; }

  Amount balance(const UtxoSet& utxos) const {
    return utxos.balance_of(address());
  }

  /// Build a signed payment of `amount` to `to` plus `fee`, selecting
  /// confirmed outputs greedily (largest first) — or uniformly at random
  /// when `rng` is given, which workload generators use to avoid repeatedly
  /// double-selecting the same coin before it confirms. Change returns to
  /// us. nullopt if funds are insufficient.
  std::optional<Transaction> pay(const UtxoSet& utxos,
                                 const crypto::PublicKey& to, Amount amount,
                                 Amount fee, std::uint64_t nonce = 0,
                                 sim::Rng* rng = nullptr) const;

 private:
  crypto::PrivateKey key_;
};

}  // namespace decentnet::chain
