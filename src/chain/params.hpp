// Consensus parameters and difficulty retargeting.
#pragma once

#include "chain/blocktree.hpp"
#include "chain/types.hpp"
#include "sim/time.hpp"

namespace decentnet::chain {

struct ChainParams {
  Amount block_reward = 50LL * 100'000'000LL;  // 50 coins, 1e8 base units
  sim::SimDuration target_block_interval = sim::minutes(10);
  std::size_t retarget_window = 144;  // blocks between difficulty updates
  std::size_t max_block_bytes = 1'000'000;
  double initial_difficulty = 600e9;  // expected hashes per block
  /// Retarget clamp, Bitcoin-style.
  double max_adjust = 4.0;

  /// Bitcoin-like presets (10-min blocks, 1 MB).
  static ChainParams bitcoin();
  /// Ethereum-like presets (13-s blocks, ~8M-gas ≈ 60 KB of simple txs).
  static ChainParams ethereum();
};

/// Difficulty the block extending `tip` must satisfy. Retargets every
/// `retarget_window` blocks from observed timestamps, clamped by max_adjust.
double next_difficulty(const BlockTree& tree, const BlockId& tip,
                       const ChainParams& params);

}  // namespace decentnet::chain
