// Mining economics: the energy-consumption equilibrium (E8) and the pool
// concentration dynamics (E7).
//
// The paper's argument: PoW security spend scales with coin price, not with
// useful throughput ("70 TWh ... roughly what Austria consumes"), and
// economies of scale push hash power into a handful of industrial farms
// ("in 2013 six mining pools controlled 75% of overall Bitcoin hashing
// power"), squeezing out desktop miners.
#pragma once

#include <cstdint>
#include <vector>

#include "sim/rng.hpp"

namespace decentnet::chain {

// ---------------------------------------------------------------------------
// Energy equilibrium
// ---------------------------------------------------------------------------

struct EnergyParams {
  double coin_price_usd = 10000;
  double block_reward_coins = 12.5;
  double blocks_per_day = 144;
  double joules_per_hash = 50e-12;        // ~2018 ASIC efficiency (50 pJ/hash)
  double electricity_usd_per_kwh = 0.05;  // industrial rate
  /// Fraction of revenue spent on electricity at equilibrium (the rest is
  /// hardware amortization and profit).
  double electricity_revenue_fraction = 0.6;
};

/// Network hash rate (hashes/second) at which electricity spend equals the
/// configured fraction of mining revenue. Free entry pushes the network here.
double equilibrium_hashrate(const EnergyParams& p);

/// Annualized electricity consumption (TWh/year) at hash rate `h`.
double annual_energy_twh(double hashes_per_second, double joules_per_hash);

/// Daily transaction capacity of the chain (for the energy-per-tx column).
double daily_tx_capacity(double blocks_per_day, std::size_t block_bytes,
                         std::size_t tx_bytes);

// ---------------------------------------------------------------------------
// Pool / farm concentration dynamics
// ---------------------------------------------------------------------------

struct PoolSimConfig {
  std::size_t miners = 2000;
  std::size_t rounds = 500;          // reinvestment rounds (~days)
  double initial_pareto_alpha = 1.2; // initial hash-power skew
  double reward_per_round = 1.0;     // normalized network revenue per round
  double base_cost = 0.7;            // cost per unit hash at reference size
  /// Economies of scale: unit cost ~ (h / h_mean)^(-scale_exponent).
  /// 0 = everyone pays the same; 0.1-0.3 = industrial discounts.
  double scale_exponent = 0.15;
  /// The discount saturates at this relative size (nobody mines cheaper
  /// than the best industrial operation) — what keeps the outcome an
  /// oligopoly of top farms rather than a single monopolist.
  double scale_cap_rel = 25.0;
  /// Idiosyncratic per-round growth noise (hardware luck, outages).
  double growth_noise_sigma = 0.05;
  double reinvest_fraction = 0.8;    // profit ploughed back into hardware
  double depreciation = 0.02;        // per-round hardware decay
};

/// Evolve miner hash-power shares under reinvestment with scale economies.
/// Returns final per-miner hash power (pass to gini/nakamoto_coefficient).
std::vector<double> simulate_pool_concentration(const PoolSimConfig& config,
                                                sim::Rng& rng);

}  // namespace decentnet::chain
