#include "chain/economics.hpp"

#include <algorithm>
#include <cmath>

namespace decentnet::chain {

double equilibrium_hashrate(const EnergyParams& p) {
  const double daily_revenue_usd =
      p.coin_price_usd * p.block_reward_coins * p.blocks_per_day;
  const double daily_electricity_budget_usd =
      daily_revenue_usd * p.electricity_revenue_fraction;
  const double usd_per_joule = p.electricity_usd_per_kwh / 3.6e6;
  const double usd_per_hash = p.joules_per_hash * usd_per_joule;
  if (usd_per_hash <= 0) return 0;
  const double hashes_per_day = daily_electricity_budget_usd / usd_per_hash;
  return hashes_per_day / 86400.0;
}

double annual_energy_twh(double hashes_per_second, double joules_per_hash) {
  const double watts = hashes_per_second * joules_per_hash;
  const double joules_per_year = watts * 86400.0 * 365.0;
  return joules_per_year / 3.6e15;  // J -> TWh
}

double daily_tx_capacity(double blocks_per_day, std::size_t block_bytes,
                         std::size_t tx_bytes) {
  if (tx_bytes == 0) return 0;
  return blocks_per_day *
         (static_cast<double>(block_bytes) / static_cast<double>(tx_bytes));
}

std::vector<double> simulate_pool_concentration(const PoolSimConfig& config,
                                                sim::Rng& rng) {
  std::vector<double> h(config.miners);
  for (auto& v : h) v = rng.pareto(1.0, config.initial_pareto_alpha);

  // Multiplicative reinvestment dynamics. A miner's electricity/hardware
  // cost per unit of revenue falls with its size relative to the average
  // operation (industrial contracts, wholesale ASICs, cheaper cooling), so
  // its profit margin — and therefore its growth rate — rises with size.
  // With scale_exponent = 0 everyone grows at the same rate and the share
  // distribution is stationary; any positive exponent concentrates.
  // Hash power is renormalized each round so the numbers stay bounded
  // (only shares matter for concentration metrics).
  for (std::size_t round = 0; round < config.rounds; ++round) {
    double total = 0;
    for (double v : h) total += v;
    if (total <= 0) break;
    const double mean = total / static_cast<double>(config.miners);
    for (double& hi : h) {
      if (hi <= 0) continue;
      const double rel =
          std::clamp(hi / mean, 1e-6, config.scale_cap_rel);
      const double unit_cost =
          config.base_cost * std::pow(rel, -config.scale_exponent);
      const double margin = 1.0 - unit_cost;  // profit per unit of revenue
      double growth = 1.0 + config.reinvest_fraction * margin;
      if (config.growth_noise_sigma > 0) {
        growth *= rng.lognormal(0.0, config.growth_noise_sigma);
      }
      hi *= std::max(0.0, growth) * (1.0 - config.depreciation);
      if (hi < mean * 1e-9) hi = 0;  // rig switched off for good
    }
    // Renormalize to a fixed total.
    double fresh_total = 0;
    for (double v : h) fresh_total += v;
    if (fresh_total <= 0) break;
    const double scale = total / fresh_total;
    for (double& hi : h) hi *= scale;
  }
  return h;
}

}  // namespace decentnet::chain
