#include "bft/pbft.hpp"

#include <algorithm>

#include "crypto/buffer.hpp"

namespace decentnet::bft {

namespace pm = pbft_msg;

namespace {
crypto::Hash256 batch_digest(const std::vector<Command>& batch) {
  crypto::ByteWriter w;
  w.str("pbft-batch").u64(batch.size());
  for (const Command& c : batch) {
    w.u64(c.id).u64(c.client).str(c.op);
  }
  return w.sha256();
}

std::size_t batch_bytes(const std::vector<Command>& batch) {
  std::size_t total = 0;
  for (const Command& c : batch) total += c.wire_bytes;
  return total;
}
}  // namespace

// ---------------------------------------------------------------------------
// PbftReplica
// ---------------------------------------------------------------------------

PbftReplica::PbftReplica(net::Network& net, net::NodeId addr,
                         std::size_t index, PbftConfig config)
    : net_(net),
      sim_(net.simulator()),
      addr_(addr),
      index_(index),
      config_(config),
      m_batches_executed_(net.metrics().counter("bft/pbft_batches_executed")),
      m_commands_executed_(net.metrics().counter("bft/pbft_commands_executed")),
      m_view_changes_(net.metrics().counter("bft/pbft_view_changes")) {
  net_.attach(addr_, this);
}

PbftReplica::~PbftReplica() { net_.detach(addr_); }

void PbftReplica::set_group(std::vector<net::NodeId> replicas) {
  group_ = std::move(replicas);
}

template <typename M>
void PbftReplica::multicast(const M& m, std::size_t bytes) {
  for (std::size_t i = 0; i < group_.size(); ++i) {
    if (i == index_) continue;
    net_.send(addr_, group_[i], m, bytes);
  }
}

PbftReplica::SlotState& PbftReplica::slot(std::uint64_t view,
                                          std::uint64_t seq) {
  return slots_[{view, seq}];
}

void PbftReplica::on_request(const Command& cmd) {
  const auto key = std::make_pair(cmd.client, cmd.id);
  if (executed_cmds_.count(key) > 0) {
    // Already executed: re-send the reply (client may have missed it).
    const auto it = client_addrs_.find(cmd.client);
    if (it != client_addrs_.end()) {
      net_.send(addr_, it->second,
                pm::Reply{view_, cmd.id, cmd.client, index_},
                config_.message_bytes);
    }
    return;
  }
  if (!is_primary()) {
    // Forward to the primary and watch it: if nothing executes before the
    // timer fires, suspect the primary and vote for a view change. The
    // request is remembered so it can be re-driven in the new view.
    forwarded_.emplace(key, cmd);
    net_.send(addr_, group_[view_ % group_.size()], pm::Request{cmd},
              config_.message_bytes + cmd.wire_bytes);
    arm_view_timer();
    return;
  }
  if (!seen_pending_.insert(key).second) return;  // batching dedup
  pending_.push_back(cmd);
  if (pending_.size() >= config_.batch_size) {
    flush_batch();
  } else if (!batch_timer_.valid()) {
    batch_timer_ = sim_.schedule(
        config_.batch_delay, [this] {
          if (!crashed_) flush_batch();
        },
        "pbft/batch");
  }
}

void PbftReplica::flush_batch() {
  batch_timer_.cancel();
  if (pending_.empty() || !is_primary()) return;
  std::vector<Command> batch;
  while (!pending_.empty() && batch.size() < config_.batch_size) {
    batch.push_back(std::move(pending_.front()));
    pending_.pop_front();
  }
  for (const Command& c : batch) seen_pending_.erase({c.client, c.id});
  pm::PrePrepare pp;
  pp.view = view_;
  pp.seq = next_seq_++;
  pp.batch = std::move(batch);
  pp.digest = batch_digest(pp.batch);
  multicast(pp, config_.message_bytes + batch_bytes(pp.batch));
  // Process our own copy.
  SlotState& s = slot(pp.view, pp.seq);
  s.pre_prepare = pp;
  try_prepare(pp.seq);
  if (!pending_.empty()) {
    batch_timer_ = sim_.schedule(
        config_.batch_delay, [this] {
          if (!crashed_) flush_batch();
        },
        "pbft/batch");
  }
}

void PbftReplica::try_prepare(std::uint64_t seq) {
  SlotState& s = slot(view_, seq);
  if (!s.pre_prepare || s.prepared) return;
  // The primary's pre-prepare counts as its prepare; others' arrive as
  // Prepare messages. 2f prepares (plus the pre-prepare) = prepared.
  if (s.prepares.size() >= quorum_2f()) {
    s.prepared = true;
    pm::Commit c{view_, seq, s.pre_prepare->digest, index_};
    multicast(c, config_.message_bytes);
    s.commits.insert(index_);
    try_commit(seq);
  }
}

void PbftReplica::try_commit(std::uint64_t seq) {
  SlotState& s = slot(view_, seq);
  if (!s.prepared || s.committed) return;
  if (s.commits.size() >= quorum_2f1()) {
    s.committed = true;
    committed_ready_[seq] = view_;
    execute_ready();
  }
}

void PbftReplica::execute_ready() {
  for (;;) {
    const auto it = committed_ready_.find(executed_seq_ + 1);
    if (it == committed_ready_.end()) break;
    SlotState& s = slot(it->second, it->first);
    if (s.executed) {
      committed_ready_.erase(it);
      continue;
    }
    s.executed = true;
    ++executed_seq_;
    m_batches_executed_.add();
    view_timer_.cancel();  // progress: the primary is alive
    for (const Command& cmd : s.pre_prepare->batch) {
      const auto key = std::make_pair(cmd.client, cmd.id);
      forwarded_.erase(key);
      if (!executed_cmds_.insert(key).second) continue;
      m_commands_executed_.add();
      if (commit_hook_) commit_hook_(executed_seq_, cmd);
      const auto client = client_addrs_.find(cmd.client);
      if (client != client_addrs_.end()) {
        net_.send(addr_, client->second,
                  pm::Reply{view_, cmd.id, cmd.client, index_},
                  config_.message_bytes);
      }
    }
    committed_ready_.erase(it);
  }
}

void PbftReplica::arm_view_timer() {
  if (view_timer_.valid()) return;
  view_timer_ = sim_.schedule(
      config_.view_change_timeout, [this] {
        if (!crashed_) start_view_change();
      },
      "pbft/view_change");
}

void PbftReplica::start_view_change() {
  const std::uint64_t target = view_ + 1;
  if (pending_view_ >= target) return;
  pending_view_ = target;
  m_view_changes_.add();
  pm::ViewChange vc;
  vc.new_view = target;
  vc.replica = index_;
  // Carry prepared-but-unexecuted batches into the new view.
  for (const auto& [key, s] : slots_) {
    if (s.prepared && !s.executed && s.pre_prepare &&
        key.second > executed_seq_) {
      vc.prepared.push_back(*s.pre_prepare);
    }
  }
  view_change_votes_[target].insert(index_);
  for (const auto& pp : vc.prepared) {
    view_change_preps_[target].push_back(pp);
  }
  multicast(vc, config_.message_bytes + 64 * vc.prepared.size());
  // Keep escalating if this view change also stalls.
  view_timer_ = sim_.schedule(
      config_.view_change_timeout * 2, [this] {
        if (!crashed_) start_view_change();
      },
      "pbft/view_change");
}

void PbftReplica::enter_new_view(
    std::uint64_t view, const std::vector<pm::PrePrepare>& reproposals) {
  if (view <= view_) return;
  view_ = view;
  pending_view_ = 0;
  view_timer_.cancel();
  // Adopt re-proposals: highest seq seen defines where the primary resumes.
  std::uint64_t max_seq = executed_seq_;
  for (const pm::PrePrepare& pp : reproposals) {
    if (pp.seq <= executed_seq_) continue;
    pm::PrePrepare adopted = pp;
    adopted.view = view_;
    SlotState& s = slot(view_, adopted.seq);
    s.pre_prepare = adopted;
    max_seq = std::max(max_seq, adopted.seq);
    if (!is_primary()) {
      pm::Prepare p{view_, adopted.seq, adopted.digest, index_};
      multicast(p, config_.message_bytes);
      s.prepares.insert(index_);
    }
    try_prepare(adopted.seq);
  }
  next_seq_ = max_seq + 1;
  // Re-drive requests that were stranded at the faulty primary.
  const auto stranded = forwarded_;
  forwarded_.clear();
  for (const auto& [key, cmd] : stranded) {
    on_request(cmd);
  }
}

void PbftReplica::handle_message(const net::Message& msg) {
  if (crashed_ || group_.empty()) return;
  if (msg.is<pm::Request>()) {
    const Command& cmd = net::payload_as<pm::Request>(msg).cmd;
    // Remember the client's address the first time we see it (requests
    // forwarded by peers carry the original client id).
    if (client_addrs_.find(cmd.client) == client_addrs_.end()) {
      const bool from_replica =
          std::find(group_.begin(), group_.end(), msg.from) != group_.end();
      if (!from_replica) client_addrs_[cmd.client] = msg.from;
    }
    on_request(cmd);
    return;
  }
  if (msg.is<pm::PrePrepare>()) {
    const auto& pp = net::payload_as<pm::PrePrepare>(msg);
    if (pp.view != view_) return;
    if (is_primary()) return;  // only the primary issues pre-prepares
    if (!(batch_digest(pp.batch) == pp.digest)) return;
    SlotState& s = slot(pp.view, pp.seq);
    if (s.pre_prepare) return;  // no equivocation acceptance
    s.pre_prepare = pp;
    view_timer_.cancel();  // primary is making progress
    pm::Prepare p{pp.view, pp.seq, pp.digest, index_};
    multicast(p, config_.message_bytes);
    s.prepares.insert(index_);
    try_prepare(pp.seq);
    return;
  }
  if (msg.is<pm::Prepare>()) {
    const auto& p = net::payload_as<pm::Prepare>(msg);
    if (p.view != view_) return;
    SlotState& s = slot(p.view, p.seq);
    if (s.pre_prepare && !(s.pre_prepare->digest == p.digest)) return;
    s.prepares.insert(p.replica);
    try_prepare(p.seq);
    return;
  }
  if (msg.is<pm::Commit>()) {
    const auto& c = net::payload_as<pm::Commit>(msg);
    if (c.view != view_) return;
    SlotState& s = slot(c.view, c.seq);
    if (s.pre_prepare && !(s.pre_prepare->digest == c.digest)) return;
    s.commits.insert(c.replica);
    try_commit(c.seq);
    return;
  }
  if (msg.is<pm::ViewChange>()) {
    const auto& vc = net::payload_as<pm::ViewChange>(msg);
    if (vc.new_view <= view_) return;
    auto& votes = view_change_votes_[vc.new_view];
    if (!votes.insert(vc.replica).second) return;
    auto& preps = view_change_preps_[vc.new_view];
    preps.insert(preps.end(), vc.prepared.begin(), vc.prepared.end());
    // Join the view change once anyone else is trying (liveness).
    if (pending_view_ < vc.new_view) {
      pending_view_ = vc.new_view - 1;  // so start_view_change targets it
      view_ = vc.new_view - 1;
      start_view_change();
    }
    if (votes.size() >= quorum_2f1() &&
        vc.new_view % group_.size() == index_) {
      // We are the new primary: dedup re-proposals by seq, announce.
      std::map<std::uint64_t, pm::PrePrepare> by_seq;
      for (const auto& pp : preps) {
        by_seq.emplace(pp.seq, pp);
      }
      pm::NewView nv;
      nv.view = vc.new_view;
      for (auto& [seq, pp] : by_seq) nv.reproposals.push_back(pp);
      multicast(nv, config_.message_bytes + 64 * nv.reproposals.size());
      enter_new_view(nv.view, nv.reproposals);
      // Primal duties resume: re-drive any queue.
      if (!pending_.empty()) flush_batch();
    }
    return;
  }
  if (msg.is<pm::NewView>()) {
    const auto& nv = net::payload_as<pm::NewView>(msg);
    if (nv.view % group_.size() == index_) return;  // we'd have sent it
    enter_new_view(nv.view, nv.reproposals);
    return;
  }
}

// ---------------------------------------------------------------------------
// PbftClient
// ---------------------------------------------------------------------------

PbftClient::PbftClient(net::Network& net, net::NodeId addr,
                       std::uint64_t client_id, PbftConfig config)
    : net_(net),
      sim_(net.simulator()),
      addr_(addr),
      client_id_(client_id),
      config_(config) {
  net_.attach(addr_, this);
}

PbftClient::~PbftClient() { net_.detach(addr_); }

void PbftClient::set_group(std::vector<net::NodeId> replicas) {
  group_ = std::move(replicas);
}

void PbftClient::submit(std::string op, std::size_t wire_bytes) {
  Command cmd;
  cmd.id = next_cmd_++;
  cmd.client = client_id_;
  cmd.op = std::move(op);
  cmd.wire_bytes = wire_bytes;
  Outstanding out;
  out.cmd = cmd;
  out.started = sim_.now();
  const std::uint64_t id = cmd.id;
  // Retry periodically until enough replies arrive — retries keep the
  // replicas' suspicion timers armed across view changes.
  out.retry = sim_.schedule_periodic(
      config_.view_change_timeout, config_.view_change_timeout, [this, id] {
        const auto it = outstanding_.find(id);
        if (it == outstanding_.end()) return;
        send_request(it->second.cmd, /*to_all=*/true);
      });
  outstanding_.emplace(cmd.id, std::move(out));
  send_request(cmd, /*to_all=*/true);
}

void PbftClient::send_request(const Command& cmd, bool to_all) {
  if (group_.empty()) return;
  if (to_all) {
    for (net::NodeId r : group_) {
      net_.send(addr_, r, pbft_msg::Request{cmd},
                config_.message_bytes + cmd.wire_bytes);
    }
  } else {
    net_.send(addr_, group_.front(), pbft_msg::Request{cmd},
              config_.message_bytes + cmd.wire_bytes);
  }
}

void PbftClient::handle_message(const net::Message& msg) {
  if (!msg.is<pbft_msg::Reply>()) return;
  const auto& r = net::payload_as<pbft_msg::Reply>(msg);
  if (r.client != client_id_) return;
  const auto it = outstanding_.find(r.cmd_id);
  if (it == outstanding_.end()) return;
  it->second.replies.insert(r.replica);
  if (it->second.replies.size() >= config_.f + 1) {
    it->second.retry.cancel();
    const sim::SimDuration latency = sim_.now() - it->second.started;
    const Command cmd = it->second.cmd;
    outstanding_.erase(it);
    ++completed_;
    if (done_) done_(cmd, latency);
  }
}

}  // namespace decentnet::bft
