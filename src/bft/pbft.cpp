#include "bft/pbft.hpp"

#include <algorithm>

#include "crypto/buffer.hpp"

namespace decentnet::bft {

namespace pm = pbft_msg;

namespace {
crypto::Hash256 batch_digest(const std::vector<Command>& batch) {
  crypto::ByteWriter w;
  w.str("pbft-batch").u64(batch.size());
  for (const Command& c : batch) {
    w.u64(c.id).u64(c.client).str(c.op);
  }
  return w.sha256();
}

std::size_t batch_bytes(const std::vector<Command>& batch) {
  std::size_t total = 0;
  for (const Command& c : batch) total += c.wire_bytes;
  return total;
}
}  // namespace

// ---------------------------------------------------------------------------
// PbftReplica
// ---------------------------------------------------------------------------

PbftReplica::PbftReplica(net::Network& net, net::NodeId addr,
                         std::size_t index, PbftConfig config)
    : net_(net),
      sim_(net.simulator()),
      addr_(addr),
      index_(index),
      config_(config),
      m_batches_executed_(net.metrics().counter("bft/pbft_batches_executed")),
      m_commands_executed_(net.metrics().counter("bft/pbft_commands_executed")),
      m_view_changes_(net.metrics().counter("bft/pbft_view_changes")) {
  net_.attach(addr_, this);
}

PbftReplica::~PbftReplica() { net_.detach(addr_); }

void PbftReplica::set_group(std::vector<net::NodeId> replicas) {
  group_ = std::move(replicas);
}

void PbftReplica::crash() {
  crashed_ = true;
  batch_timer_.cancel();
  view_timer_.cancel();
}

void PbftReplica::recover() {
  crashed_ = false;
  if (has_pending_work()) arm_view_timer();
}

bool PbftReplica::has_pending_work() const {
  if (!pending_.empty() || !forwarded_.empty()) return true;
  for (const auto& [key, s] : slots_) {
    if (key.second > executed_seq_ && s.pre_prepare && !s.executed) {
      return true;
    }
  }
  return false;
}

template <typename M>
void PbftReplica::multicast(const M& m, std::size_t bytes) {
  for (std::size_t i = 0; i < group_.size(); ++i) {
    if (i == index_) continue;
    net_.send(addr_, group_[i], m, bytes);
  }
}

PbftReplica::SlotState& PbftReplica::slot(std::uint64_t view,
                                          std::uint64_t seq) {
  return slots_[{view, seq}];
}

void PbftReplica::on_request(const Command& cmd) {
  const auto key = std::make_pair(cmd.client, cmd.id);
  if (executed_cmds_.count(key) > 0) {
    // Already executed: re-send the reply (client may have missed it).
    const auto it = client_addrs_.find(cmd.client);
    if (it != client_addrs_.end()) {
      net_.send(addr_, it->second,
                pm::Reply{view_, cmd.id, cmd.client, index_},
                config_.message_bytes);
    }
    return;
  }
  if (!is_primary()) {
    // Forward to the primary and watch it: if nothing executes before the
    // timer fires, suspect the primary and vote for a view change. The
    // request is remembered so it can be re-driven in the new view.
    forwarded_.emplace(key, cmd);
    net_.send(addr_, group_[view_ % group_.size()], pm::Request{cmd},
              config_.message_bytes + cmd.wire_bytes);
    arm_view_timer();
    return;
  }
  if (!seen_pending_.insert(key).second) return;  // batching dedup
  pending_.push_back(cmd);
  if (pending_.size() >= config_.batch_size) {
    flush_batch();
  } else if (!batch_timer_.valid()) {
    batch_timer_ = sim_.schedule(
        config_.batch_delay, [this] {
          if (!crashed_) flush_batch();
        },
        "pbft/batch");
  }
}

void PbftReplica::flush_batch() {
  batch_timer_.cancel();
  if (pending_.empty() || !is_primary()) return;
  std::vector<Command> batch;
  while (!pending_.empty() && batch.size() < config_.batch_size) {
    batch.push_back(std::move(pending_.front()));
    pending_.pop_front();
  }
  for (const Command& c : batch) seen_pending_.erase({c.client, c.id});
  pm::PrePrepare pp;
  pp.view = view_;
  pp.seq = next_seq_++;
  pp.batch = std::move(batch);
  pp.digest = batch_digest(pp.batch);
  multicast(pp, config_.message_bytes + batch_bytes(pp.batch));
  // Process our own copy.
  SlotState& s = slot(pp.view, pp.seq);
  s.pre_prepare = pp;
  try_prepare(pp.seq);
  // The primary watches its own batch too: if it is cut off from its
  // backups (a partition rather than a crash), this times out and it joins
  // the view change instead of staying primary of a dead view forever.
  arm_view_timer();
  if (!pending_.empty()) {
    batch_timer_ = sim_.schedule(
        config_.batch_delay, [this] {
          if (!crashed_) flush_batch();
        },
        "pbft/batch");
  }
}

void PbftReplica::try_prepare(std::uint64_t seq) {
  SlotState& s = slot(view_, seq);
  if (!s.pre_prepare || s.prepared) return;
  // The primary's pre-prepare counts as its prepare; others' arrive as
  // Prepare messages. 2f prepares (plus the pre-prepare) = prepared.
  if (s.prepares.size() >= quorum_2f()) {
    s.prepared = true;
    pm::Commit c{view_, seq, s.pre_prepare->digest, index_};
    multicast(c, config_.message_bytes);
    s.commits.insert(index_);
    try_commit(seq);
  }
}

void PbftReplica::try_commit(std::uint64_t seq) {
  SlotState& s = slot(view_, seq);
  if (!s.prepared || s.committed) return;
  if (s.commits.size() >= quorum_2f1()) {
    s.committed = true;
    committed_ready_[seq] = view_;
    execute_ready();
    // Committed slots stuck behind sequences we never saw (we were crashed
    // or cut off while the others kept going) need state transfer, not
    // patience.
    if (!committed_ready_.empty() &&
        committed_ready_.begin()->first > executed_seq_ + 1) {
      request_sync();
    }
  }
}

void PbftReplica::execute_ready() {
  for (;;) {
    const auto it = committed_ready_.find(executed_seq_ + 1);
    if (it == committed_ready_.end()) break;
    SlotState& s = slot(it->second, it->first);
    if (s.executed) {
      committed_ready_.erase(it);
      continue;
    }
    s.executed = true;
    ++executed_seq_;
    m_batches_executed_.add();
    // Retained to serve state-transfer requests (in lieu of checkpoints).
    executed_batches_[executed_seq_] = s.pre_prepare->batch;
    view_timer_.cancel();  // progress: the primary is alive
    for (const Command& cmd : s.pre_prepare->batch) {
      const auto key = std::make_pair(cmd.client, cmd.id);
      forwarded_.erase(key);
      if (!executed_cmds_.insert(key).second) continue;
      m_commands_executed_.add();
      if (commit_hook_) commit_hook_(executed_seq_, cmd);
      const auto client = client_addrs_.find(cmd.client);
      if (client != client_addrs_.end()) {
        net_.send(addr_, client->second,
                  pm::Reply{view_, cmd.id, cmd.client, index_},
                  config_.message_bytes);
      }
    }
    committed_ready_.erase(it);
  }
  // Progress resets suspicion, but unfinished slots / stranded requests
  // keep the deadline armed so a primary that stops mid-stream is caught.
  if (has_pending_work()) arm_view_timer();
}

void PbftReplica::arm_view_timer() {
  if (view_timer_.valid()) return;
  view_timer_ = sim_.schedule(
      config_.view_change_timeout, [this] {
        if (!crashed_) start_view_change();
      },
      "pbft/view_change");
}

void PbftReplica::start_view_change() {
  // Escalate past a view change that itself stalled (the target primary may
  // also be down or cut off): each call targets one view beyond whatever we
  // already voted for.
  const std::uint64_t target = std::max(view_ + 1, pending_view_ + 1);
  pending_view_ = target;
  m_view_changes_.add();
  pm::ViewChange vc;
  vc.new_view = target;
  vc.replica = index_;
  // Carry prepared-but-unexecuted batches into the new view.
  for (const auto& [key, s] : slots_) {
    if (s.prepared && !s.executed && s.pre_prepare &&
        key.second > executed_seq_) {
      vc.prepared.push_back(*s.pre_prepare);
    }
  }
  view_change_votes_[target].insert(index_);
  for (const auto& pp : vc.prepared) {
    view_change_preps_[target].push_back(pp);
  }
  multicast(vc, config_.message_bytes + 64 * vc.prepared.size());
  // Keep escalating if this view change also stalls. Cancel first: a still-
  // armed suspicion timer must not fire on top of the escalation timer (each
  // fire now advances the target view).
  view_timer_.cancel();
  view_timer_ = sim_.schedule(
      config_.view_change_timeout * 2, [this] {
        if (!crashed_) start_view_change();
      },
      "pbft/view_change");
}

void PbftReplica::enter_new_view(
    std::uint64_t view, const std::vector<pm::PrePrepare>& reproposals) {
  if (view <= view_) return;
  view_ = view;
  pending_view_ = 0;
  view_timer_.cancel();
  // Adopt re-proposals: highest seq seen defines where the primary resumes.
  std::uint64_t max_seq = executed_seq_;
  for (const pm::PrePrepare& pp : reproposals) {
    if (pp.seq <= executed_seq_) continue;
    pm::PrePrepare adopted = pp;
    adopted.view = view_;
    SlotState& s = slot(view_, adopted.seq);
    s.pre_prepare = adopted;
    max_seq = std::max(max_seq, adopted.seq);
    if (!is_primary()) {
      pm::Prepare p{view_, adopted.seq, adopted.digest, index_};
      multicast(p, config_.message_bytes);
      s.prepares.insert(index_);
    }
    try_prepare(adopted.seq);
  }
  next_seq_ = max_seq + 1;
  // Remember the installed view so peers still talking in an older one (a
  // healed ex-primary) can be brought forward on first contact.
  last_new_view_ = pm::NewView{view_, reproposals};
  // Re-drive requests that were stranded at the faulty primary — including
  // a demoted primary's own batching queue, which would otherwise sit in
  // pending_ forever now that flush_batch() refuses to propose.
  auto stranded = std::move(forwarded_);
  forwarded_.clear();
  for (const Command& cmd : pending_) {
    stranded.emplace(std::make_pair(cmd.client, cmd.id), cmd);
  }
  pending_.clear();
  seen_pending_.clear();
  batch_timer_.cancel();
  for (const auto& [key, cmd] : stranded) {
    on_request(cmd);
  }
  // We may have been out for a while (the very reason for the view change):
  // ask the group for executed batches we missed.
  request_sync();
}

void PbftReplica::request_sync() {
  const std::uint64_t need = executed_seq_ + 1;
  if (sync_requested_for_ == need &&
      sim_.now() - sync_requested_at_ < config_.view_change_timeout) {
    return;
  }
  sync_requested_for_ = need;
  sync_requested_at_ = sim_.now();
  multicast(pm::SyncRequest{need, index_}, config_.message_bytes);
}

bool PbftReplica::locally_prepared(std::uint64_t seq,
                                   const crypto::Hash256& digest) const {
  for (const auto& [key, s] : slots_) {
    if (key.second == seq && s.prepared && s.pre_prepare &&
        s.pre_prepare->digest == digest) {
      return true;
    }
  }
  return false;
}

void PbftReplica::apply_synced(std::uint64_t seq,
                               const std::vector<Command>& batch) {
  executed_seq_ = seq;
  m_batches_executed_.add();
  executed_batches_[seq] = batch;
  committed_ready_.erase(seq);
  for (const Command& cmd : batch) {
    const auto key = std::make_pair(cmd.client, cmd.id);
    forwarded_.erase(key);
    if (!executed_cmds_.insert(key).second) continue;
    m_commands_executed_.add();
    if (commit_hook_) commit_hook_(executed_seq_, cmd);
    const auto client = client_addrs_.find(cmd.client);
    if (client != client_addrs_.end()) {
      net_.send(addr_, client->second,
                pm::Reply{view_, cmd.id, cmd.client, index_},
                config_.message_bytes);
    }
  }
}

void PbftReplica::maybe_resync(net::NodeId peer, std::uint64_t their_view) {
  if (!last_new_view_ || last_new_view_->view <= their_view) return;
  std::uint64_t& sent = resync_sent_[peer.value];
  if (sent >= last_new_view_->view) return;  // once per peer per view
  sent = last_new_view_->view;
  net_.send(addr_, peer, *last_new_view_,
            config_.message_bytes + 64 * last_new_view_->reproposals.size());
}

void PbftReplica::handle_message(const net::Message& msg) {
  if (crashed_ || group_.empty()) return;
  if (msg.is<pm::Request>()) {
    const Command& cmd = net::payload_as<pm::Request>(msg).cmd;
    // Remember the client's address the first time we see it (requests
    // forwarded by peers carry the original client id).
    if (client_addrs_.find(cmd.client) == client_addrs_.end()) {
      const bool from_replica =
          std::find(group_.begin(), group_.end(), msg.from) != group_.end();
      if (!from_replica) client_addrs_[cmd.client] = msg.from;
    }
    on_request(cmd);
    return;
  }
  if (msg.is<pm::PrePrepare>()) {
    const auto& pp = net::payload_as<pm::PrePrepare>(msg);
    if (pp.view != view_) {
      if (pp.view < view_) maybe_resync(msg.from, pp.view);
      return;
    }
    if (is_primary()) return;  // only the primary issues pre-prepares
    if (!(batch_digest(pp.batch) == pp.digest)) return;
    SlotState& s = slot(pp.view, pp.seq);
    if (s.pre_prepare) return;  // no equivocation acceptance
    s.pre_prepare = pp;
    // A pre-prepare is only progress evidence when we are up to date. A
    // primary streaming new sequences while we are stuck behind an execution
    // gap (we missed a quorum during a loss burst) must not keep resetting
    // suspicion, or the gap is never escaped — neither by state transfer
    // nor by a view change.
    if (pp.seq <= executed_seq_ + 1) view_timer_.cancel();
    pm::Prepare p{pp.view, pp.seq, pp.digest, index_};
    multicast(p, config_.message_bytes);
    s.prepares.insert(index_);
    try_prepare(pp.seq);
    return;
  }
  if (msg.is<pm::Prepare>()) {
    const auto& p = net::payload_as<pm::Prepare>(msg);
    if (p.view != view_) {
      if (p.view < view_) maybe_resync(msg.from, p.view);
      return;
    }
    SlotState& s = slot(p.view, p.seq);
    if (s.pre_prepare && !(s.pre_prepare->digest == p.digest)) return;
    s.prepares.insert(p.replica);
    try_prepare(p.seq);
    return;
  }
  if (msg.is<pm::Commit>()) {
    const auto& c = net::payload_as<pm::Commit>(msg);
    if (c.view != view_) {
      if (c.view < view_) maybe_resync(msg.from, c.view);
      return;
    }
    SlotState& s = slot(c.view, c.seq);
    if (s.pre_prepare && !(s.pre_prepare->digest == c.digest)) return;
    s.commits.insert(c.replica);
    try_commit(c.seq);
    return;
  }
  if (msg.is<pm::ViewChange>()) {
    const auto& vc = net::payload_as<pm::ViewChange>(msg);
    if (vc.new_view <= view_) {
      // The sender is behind us (asking for a view we already passed):
      // bring it forward instead of silently dropping its vote.
      maybe_resync(msg.from, vc.new_view - 1);
      return;
    }
    auto& votes = view_change_votes_[vc.new_view];
    if (!votes.insert(vc.replica).second) return;
    auto& preps = view_change_preps_[vc.new_view];
    preps.insert(preps.end(), vc.prepared.begin(), vc.prepared.end());
    // Join the view change once anyone else is trying (liveness).
    if (pending_view_ < vc.new_view) {
      pending_view_ = vc.new_view - 1;  // so start_view_change targets it
      view_ = vc.new_view - 1;
      start_view_change();
    }
    if (votes.size() >= quorum_2f1() &&
        vc.new_view % group_.size() == index_) {
      // We are the new primary: dedup re-proposals by seq. When replicas
      // prepared different batches for one seq (across views), the highest
      // view's certificate wins, as in the PBFT new-view rule.
      std::map<std::uint64_t, pm::PrePrepare> by_seq;
      for (const auto& pp : preps) {
        const auto [it, inserted] = by_seq.emplace(pp.seq, pp);
        if (!inserted && pp.view > it->second.view) it->second = pp;
      }
      // Pad sequence holes with null requests: a seq the old primary used
      // but nobody prepared (its pre-prepare died in a loss burst) would
      // otherwise leave a gap below a carried-forward reproposal that no
      // view change or state transfer can ever fill — the group would agree
      // on every executed batch yet re-elect forever without progress.
      if (!by_seq.empty()) {
        const std::uint64_t max_seq = by_seq.rbegin()->first;
        for (std::uint64_t s = executed_seq_ + 1; s < max_seq; ++s) {
          if (by_seq.count(s) > 0) continue;
          pm::PrePrepare null_pp;
          null_pp.view = vc.new_view;
          null_pp.seq = s;
          null_pp.digest = batch_digest(null_pp.batch);
          by_seq.emplace(s, std::move(null_pp));
        }
      }
      pm::NewView nv;
      nv.view = vc.new_view;
      for (auto& [seq, pp] : by_seq) nv.reproposals.push_back(pp);
      multicast(nv, config_.message_bytes + 64 * nv.reproposals.size());
      enter_new_view(nv.view, nv.reproposals);
      // Primal duties resume: re-drive any queue.
      if (!pending_.empty()) flush_batch();
    }
    return;
  }
  if (msg.is<pm::NewView>()) {
    const auto& nv = net::payload_as<pm::NewView>(msg);
    if (nv.view % group_.size() == index_) return;  // we'd have sent it
    enter_new_view(nv.view, nv.reproposals);
    return;
  }
  if (msg.is<pm::SyncRequest>()) {
    const auto& sr = net::payload_as<pm::SyncRequest>(msg);
    if (sr.from_seq > executed_seq_) return;  // nothing to offer
    pm::SyncReply reply;
    reply.replica = index_;
    std::size_t bytes = config_.message_bytes;
    for (std::uint64_t s = sr.from_seq; s <= executed_seq_; ++s) {
      const auto it = executed_batches_.find(s);
      if (it == executed_batches_.end()) continue;  // synced gaps re-filled it
      reply.entries.push_back({s, it->second});
      bytes += config_.message_bytes + batch_bytes(it->second);
    }
    if (!reply.entries.empty()) {
      net_.send(addr_, msg.from, std::move(reply), bytes);
    }
    return;
  }
  if (msg.is<pm::SyncReply>()) {
    const auto& sr = net::payload_as<pm::SyncReply>(msg);
    for (const auto& e : sr.entries) {
      if (e.seq <= executed_seq_) continue;
      auto& candidates = sync_state_[e.seq];
      const crypto::Hash256 digest = batch_digest(e.batch);
      SyncCandidate* cand = nullptr;
      for (auto& c : candidates) {
        if (c.digest == digest) {
          cand = &c;
          break;
        }
      }
      if (cand == nullptr) {
        candidates.push_back(SyncCandidate{digest, e.batch, {}});
        cand = &candidates.back();
      }
      cand->votes.insert(sr.replica);
    }
    // Execute contiguously from the gap, each batch gated on f+1 matching
    // vouchers (one reply could be from a byzantine peer).
    bool advanced = false;
    for (;;) {
      const auto it = sync_state_.find(executed_seq_ + 1);
      if (it == sync_state_.end()) break;
      const SyncCandidate* chosen = nullptr;
      for (const auto& c : it->second) {
        // f+1 matching vouchers prove at least one honest executor. A single
        // reply also suffices when it matches our own prepared certificate
        // for this gap: 2f+1 replicas prepared that digest, so no other
        // batch can have committed here. Without this, a batch executed by
        // only one replica (the others lost the commit quorum to a fault
        // window) can never be transferred and the gap wedges forever.
        if (c.votes.size() >= config_.f + 1 ||
            (!c.votes.empty() &&
             locally_prepared(executed_seq_ + 1, c.digest))) {
          chosen = &c;
          break;
        }
      }
      if (chosen == nullptr) break;
      const std::vector<Command> batch = chosen->batch;  // erase invalidates
      sync_state_.erase(it);
      apply_synced(executed_seq_ + 1, batch);
      advanced = true;
    }
    if (advanced) {
      execute_ready();  // drain commits that were stuck behind the gap
      if (!committed_ready_.empty() &&
          committed_ready_.begin()->first > executed_seq_ + 1) {
        request_sync();
      }
    }
    return;
  }
}

// ---------------------------------------------------------------------------
// PbftClient
// ---------------------------------------------------------------------------

PbftClient::PbftClient(net::Network& net, net::NodeId addr,
                       std::uint64_t client_id, PbftConfig config)
    : net_(net),
      sim_(net.simulator()),
      addr_(addr),
      client_id_(client_id),
      config_(config) {
  net_.attach(addr_, this);
}

PbftClient::~PbftClient() { net_.detach(addr_); }

void PbftClient::set_group(std::vector<net::NodeId> replicas) {
  group_ = std::move(replicas);
}

void PbftClient::submit(std::string op, std::size_t wire_bytes) {
  Command cmd;
  cmd.id = next_cmd_++;
  cmd.client = client_id_;
  cmd.op = std::move(op);
  cmd.wire_bytes = wire_bytes;
  Outstanding out;
  out.cmd = cmd;
  out.started = sim_.now();
  const std::uint64_t id = cmd.id;
  // Retry periodically until enough replies arrive — retries keep the
  // replicas' suspicion timers armed across view changes.
  out.retry = sim_.schedule_periodic(
      config_.view_change_timeout, config_.view_change_timeout, [this, id] {
        const auto it = outstanding_.find(id);
        if (it == outstanding_.end()) return;
        send_request(it->second.cmd, /*to_all=*/true);
      });
  outstanding_.emplace(cmd.id, std::move(out));
  send_request(cmd, /*to_all=*/true);
}

void PbftClient::send_request(const Command& cmd, bool to_all) {
  if (group_.empty()) return;
  if (to_all) {
    for (net::NodeId r : group_) {
      net_.send(addr_, r, pbft_msg::Request{cmd},
                config_.message_bytes + cmd.wire_bytes);
    }
  } else {
    net_.send(addr_, group_.front(), pbft_msg::Request{cmd},
              config_.message_bytes + cmd.wire_bytes);
  }
}

void PbftClient::handle_message(const net::Message& msg) {
  if (!msg.is<pbft_msg::Reply>()) return;
  const auto& r = net::payload_as<pbft_msg::Reply>(msg);
  if (r.client != client_id_) return;
  const auto it = outstanding_.find(r.cmd_id);
  if (it == outstanding_.end()) return;
  it->second.replies.insert(r.replica);
  if (it->second.replies.size() >= config_.f + 1) {
    it->second.retry.cancel();
    const sim::SimDuration latency = sim_.now() - it->second.started;
    const Command cmd = it->second.cmd;
    outstanding_.erase(it);
    ++completed_;
    if (done_) done_(cmd, latency);
  }
}

}  // namespace decentnet::bft
