// Replicated-state-machine interface shared by PBFT (byzantine) and Raft
// (crash-fault) consensus. A Command is an opaque operation; replicas agree
// on a total order and fire on_commit exactly once per index.
#pragma once

#include <cstdint>
#include <functional>
#include <string>

#include "sim/time.hpp"

namespace decentnet::bft {

struct Command {
  std::uint64_t id = 0;       // client-assigned, unique per client
  std::uint64_t client = 0;   // issuing client id
  std::string op;             // opaque payload
  std::size_t wire_bytes = 64;

  bool operator==(const Command& o) const {
    return id == o.id && client == o.client && op == o.op;
  }
};

/// Fired on each replica when a command reaches the committed prefix.
using CommitHook =
    std::function<void(std::uint64_t index, const Command& cmd)>;

}  // namespace decentnet::bft
