// Practical Byzantine Fault Tolerance (Castro & Liskov) over the simulated
// network: the consensus family behind permissioned blockchains (§IV, via
// BFT-SMaRt in Hyperledger Fabric).
//
// Implemented: the three-phase normal case (pre-prepare / prepare / commit)
// with request batching, in-order execution, client reply quorums, and a
// functional view change (new primary re-proposes prepared batches). The
// all-to-all quadratic message pattern is exactly what E11 measures against
// PoW and against replica count n = 3f+1.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <optional>
#include <set>
#include <unordered_map>
#include <vector>

#include "bft/rsm.hpp"
#include "crypto/hash.hpp"
#include "net/message.hpp"
#include "net/network.hpp"
#include "sim/simulator.hpp"

namespace decentnet::bft {

struct PbftConfig {
  std::size_t f = 1;  // tolerated byzantine replicas; n = 3f + 1
  std::size_t batch_size = 1;
  sim::SimDuration batch_delay = sim::millis(5);
  sim::SimDuration view_change_timeout = sim::seconds(4);
  std::size_t message_bytes = 96;
};

namespace pbft_msg {
struct Request {
  Command cmd;
};
struct PrePrepare {
  std::uint64_t view;
  std::uint64_t seq;
  crypto::Hash256 digest;
  std::vector<Command> batch;
};
struct Prepare {
  std::uint64_t view;
  std::uint64_t seq;
  crypto::Hash256 digest;
  std::size_t replica;
};
struct Commit {
  std::uint64_t view;
  std::uint64_t seq;
  crypto::Hash256 digest;
  std::size_t replica;
};
struct Reply {
  std::uint64_t view;
  std::uint64_t cmd_id;
  std::uint64_t client;
  std::size_t replica;
};
struct ViewChange {
  std::uint64_t new_view;
  std::size_t replica;
  // Prepared-but-not-executed batches carried into the new view.
  std::vector<PrePrepare> prepared;
};
struct NewView {
  std::uint64_t view;
  std::vector<PrePrepare> reproposals;
};
// State transfer (checkpoint sync, simplified): a replica that detects an
// execution gap — it missed committed sequences while crashed or cut off —
// asks its peers for the executed batches and applies any batch vouched for
// by f+1 matching replies.
struct SyncRequest {
  std::uint64_t from_seq;  // first missing sequence
  std::size_t replica;
};
struct SyncEntry {
  std::uint64_t seq;
  std::vector<Command> batch;
};
struct SyncReply {
  std::size_t replica;
  std::vector<SyncEntry> entries;
};
}  // namespace pbft_msg

class PbftReplica final : public net::Host {
 public:
  PbftReplica(net::Network& net, net::NodeId addr, std::size_t index,
              PbftConfig config);
  ~PbftReplica() override;

  PbftReplica(const PbftReplica&) = delete;
  PbftReplica& operator=(const PbftReplica&) = delete;

  /// Wire the replica group together; call once on every replica with the
  /// same ordered address list (index i must match addresses[i]).
  void set_group(std::vector<net::NodeId> replicas);

  std::size_t index() const { return index_; }
  net::NodeId addr() const { return addr_; }
  std::uint64_t view() const { return view_; }
  bool is_primary() const { return view_ % group_.size() == index_; }
  std::uint64_t executed_count() const { return executed_seq_; }

  void set_commit_hook(CommitHook hook) { commit_hook_ = std::move(hook); }

  /// Crash-stop (for fault-injection tests). A crashed replica ignores all
  /// traffic, sends nothing, and cancels its timers so the event queue
  /// carries no trace of it while down.
  void crash();
  /// Un-crash; re-arms the suspicion timer if work was left unfinished.
  void recover();
  bool crashed() const { return crashed_; }

  void handle_message(const net::Message& msg) override;

 private:
  struct SlotState {
    std::optional<pbft_msg::PrePrepare> pre_prepare;
    std::set<std::size_t> prepares;  // distinct replicas
    std::set<std::size_t> commits;
    bool prepared = false;
    bool committed = false;
    bool executed = false;
  };

  std::size_t quorum_2f() const { return 2 * config_.f; }
  std::size_t quorum_2f1() const { return 2 * config_.f + 1; }

  void on_request(const Command& cmd);
  void flush_batch();
  void broadcast_to_group(const net::Message&) = delete;
  template <typename M>
  void multicast(const M& m, std::size_t bytes);
  void try_prepare(std::uint64_t seq);
  void try_commit(std::uint64_t seq);
  void execute_ready();
  bool has_pending_work() const;
  void arm_view_timer();
  void start_view_change();
  void maybe_resync(net::NodeId peer, std::uint64_t their_view);
  void request_sync();
  bool locally_prepared(std::uint64_t seq,
                        const crypto::Hash256& digest) const;
  void apply_synced(std::uint64_t seq, const std::vector<Command>& batch);
  void enter_new_view(std::uint64_t view,
                      const std::vector<pbft_msg::PrePrepare>& reproposals);
  SlotState& slot(std::uint64_t view, std::uint64_t seq);

  net::Network& net_;
  sim::Simulator& sim_;
  net::NodeId addr_;
  std::size_t index_;
  PbftConfig config_;
  // Experiment-scoped metric handles (aggregated across all replicas).
  sim::Counter& m_batches_executed_;
  sim::Counter& m_commands_executed_;
  sim::Counter& m_view_changes_;
  std::vector<net::NodeId> group_;
  bool crashed_ = false;

  std::uint64_t view_ = 0;
  std::uint64_t next_seq_ = 1;      // primary's sequence counter
  std::uint64_t executed_seq_ = 0;  // highest contiguously executed seq
  std::map<std::pair<std::uint64_t, std::uint64_t>, SlotState> slots_;
  std::map<std::uint64_t, std::vector<Command>> executed_batches_;

  std::deque<Command> pending_;  // primary-side batching queue
  std::set<std::pair<std::uint64_t, std::uint64_t>> seen_pending_;
  std::map<std::uint64_t, std::uint64_t> committed_ready_;  // seq -> view
  sim::EventHandle batch_timer_;

  // Client bookkeeping: who asked for what (to send replies).
  std::unordered_map<std::uint64_t, net::NodeId> client_addrs_;
  // Requests we forwarded to a (possibly faulty) primary, re-driven to the
  // new primary after a view change. Keyed by (client, id).
  std::map<std::pair<std::uint64_t, std::uint64_t>, Command> forwarded_;
  // Dedup of executed client commands.
  std::set<std::pair<std::uint64_t, std::uint64_t>> executed_cmds_;

  // View change state.
  sim::EventHandle view_timer_;
  std::uint64_t pending_view_ = 0;
  std::map<std::uint64_t, std::set<std::size_t>> view_change_votes_;
  std::map<std::uint64_t, std::vector<pbft_msg::PrePrepare>> view_change_preps_;
  // The latest NewView this replica installed, kept so peers still talking
  // in an older view (a healed ex-primary after a partition) can be brought
  // forward; resync_sent_ dedups the re-send per peer per view.
  std::optional<pbft_msg::NewView> last_new_view_;
  std::unordered_map<std::uint64_t, std::uint64_t> resync_sent_;

  // State-transfer state: per missing sequence, the candidate batches peers
  // vouched for (a batch executes once f+1 distinct replicas sent the same
  // digest). The request is rate-limited: at most one per gap position per
  // view-change-timeout, so commit storms don't multiply it.
  struct SyncCandidate {
    crypto::Hash256 digest;
    std::vector<Command> batch;
    std::set<std::size_t> votes;
  };
  std::map<std::uint64_t, std::vector<SyncCandidate>> sync_state_;
  std::uint64_t sync_requested_for_ = 0;
  sim::SimTime sync_requested_at_ = 0;

  CommitHook commit_hook_;
};

/// PBFT client: multicasts requests, accepts f+1 matching replies, retries
/// through timeouts (which triggers view changes on a faulty primary).
class PbftClient final : public net::Host {
 public:
  using DoneHook = std::function<void(const Command&, sim::SimDuration)>;

  PbftClient(net::Network& net, net::NodeId addr, std::uint64_t client_id,
             PbftConfig config);
  ~PbftClient() override;

  void set_group(std::vector<net::NodeId> replicas);
  void set_done_hook(DoneHook hook) { done_ = std::move(hook); }

  net::NodeId addr() const { return addr_; }
  std::uint64_t completed() const { return completed_; }

  /// Submit an operation; the done hook fires when f+1 replies match.
  void submit(std::string op, std::size_t wire_bytes = 64);

  void handle_message(const net::Message& msg) override;

 private:
  struct Outstanding {
    Command cmd;
    sim::SimTime started = 0;
    std::set<std::size_t> replies;
    sim::EventHandle retry;
  };

  void send_request(const Command& cmd, bool to_all);

  net::Network& net_;
  sim::Simulator& sim_;
  net::NodeId addr_;
  std::uint64_t client_id_;
  PbftConfig config_;
  std::vector<net::NodeId> group_;
  std::uint64_t next_cmd_ = 1;
  std::uint64_t completed_ = 0;
  std::unordered_map<std::uint64_t, Outstanding> outstanding_;
  DoneHook done_;
};

}  // namespace decentnet::bft
