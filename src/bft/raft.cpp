#include "bft/raft.hpp"

#include <algorithm>
#include <bit>

namespace decentnet::bft {

namespace rm = raft_msg;

RaftNode::RaftNode(net::Network& net, net::NodeId addr, std::size_t index,
                   RaftConfig config)
    : net_(net),
      sim_(net.simulator()),
      addr_(addr),
      index_(index),
      config_(config),
      m_elections_(net.metrics().counter("bft/raft_elections")),
      m_entries_applied_(net.metrics().counter("bft/raft_entries_applied")),
      m_leader_changes_(net.metrics().counter("bft/raft_leader_changes")),
      rng_(net.simulator().rng().fork(addr.value ^ 0x4AF7ull)) {
  net_.attach(addr_, this);
}

RaftNode::~RaftNode() { net_.detach(addr_); }

void RaftNode::set_group(std::vector<net::NodeId> replicas) {
  group_ = std::move(replicas);
  next_index_.assign(group_.size(), 1);
  match_index_.assign(group_.size(), 0);
  append_inflight_.assign(group_.size(), false);
  append_seq_.assign(group_.size(), 0);
}

void RaftNode::start() { reset_election_timer(); }

void RaftNode::reset_election_timer() {
  election_timer_.cancel();
  // Backoff widens only the window's upper edge; the minimum stays put so a
  // backed-off node still reacts promptly once heartbeats resume.
  const std::uint64_t widen =
      std::min<std::uint64_t>(std::uint64_t{1} << election_backoff_, 8);
  const sim::SimDuration span =
      (config_.election_timeout_max - config_.election_timeout_min) *
      static_cast<sim::SimDuration>(widen);
  const sim::SimDuration timeout = rng_.uniform_int(
      config_.election_timeout_min, config_.election_timeout_min + span);
  election_timer_ = sim_.schedule(
      timeout, [this] {
        if (!crashed_ && role_ != Role::Leader) become_candidate();
      },
      "raft/election");
}

void RaftNode::become_follower(std::uint64_t term) {
  if (term > term_) {
    term_ = term;
    voted_for_.reset();
  }
  role_ = Role::Follower;
  election_backoff_ = 0;
  heartbeat_timer_.cancel();
  reset_election_timer();
}

void RaftNode::become_candidate() {
  // A candidacy that times out into another candidacy made no progress:
  // back off so isolated or split-vote nodes stop thrashing terms.
  if (role_ == Role::Candidate && election_backoff_ < 3) ++election_backoff_;
  role_ = Role::Candidate;
  m_elections_.add();
  ++term_;
  voted_for_ = index_;
  vote_mask_ = std::uint64_t{1} << index_;
  reset_election_timer();
  rm::RequestVote rv{term_, index_, log_.size(), last_log_term()};
  for (std::size_t i = 0; i < group_.size(); ++i) {
    if (i != index_) net_.send(addr_, group_[i], rv, config_.message_bytes);
  }
  if (group_.size() == 1) become_leader();
}

void RaftNode::become_leader() {
  role_ = Role::Leader;
  election_backoff_ = 0;
  m_leader_changes_.add();
  election_timer_.cancel();
  next_index_.assign(group_.size(), log_.size() + 1);
  match_index_.assign(group_.size(), 0);
  match_index_[index_] = log_.size();
  append_inflight_.assign(group_.size(), false);
  broadcast_heartbeats();
  heartbeat_timer_ = sim_.schedule_periodic(
      config_.heartbeat_interval, config_.heartbeat_interval, [this] {
        if (!crashed_ && role_ == Role::Leader) broadcast_heartbeats();
      });
}

void RaftNode::broadcast_heartbeats() {
  for (std::size_t i = 0; i < group_.size(); ++i) {
    if (i != index_) send_append(i);
  }
}

void RaftNode::send_append(std::size_t peer) {
  append_inflight_[peer] = true;
  rm::AppendEntries ae;
  ae.seq = ++append_seq_[peer];
  ae.term = term_;
  ae.leader = index_;
  const std::uint64_t next = next_index_[peer];
  ae.prev_log_index = next - 1;
  ae.prev_log_term =
      ae.prev_log_index == 0 ? 0 : log_[ae.prev_log_index - 1].term;
  const std::uint64_t available = log_.size() >= next ? log_.size() - next + 1 : 0;
  const std::uint64_t count =
      std::min<std::uint64_t>(available, config_.max_entries_per_append);
  for (std::uint64_t i = 0; i < count; ++i) {
    ae.entries.push_back(log_[next - 1 + i]);
  }
  ae.leader_commit = commit_index_;
  std::size_t bytes = config_.message_bytes;
  for (const auto& e : ae.entries) bytes += e.cmd.wire_bytes;
  net_.send(addr_, group_[peer], std::move(ae), bytes);
}

bool RaftNode::propose(Command cmd) {
  if (crashed_ || role_ != Role::Leader) return false;
  log_.push_back(rm::LogEntry{term_, std::move(cmd)});
  match_index_[index_] = log_.size();
  advance_commit();  // a single-node cluster is its own majority
  // Ship to idle followers; busy ones pick the entry up when their
  // in-flight append is acknowledged.
  for (std::size_t i = 0; i < group_.size(); ++i) {
    if (i != index_ && !append_inflight_[i]) send_append(i);
  }
  return true;
}

void RaftNode::advance_commit() {
  if (role_ != Role::Leader) return;
  // Find the highest index replicated on a majority with an entry from the
  // current term.
  std::vector<std::uint64_t> matches = match_index_;
  std::sort(matches.begin(), matches.end(), std::greater<>());
  const std::uint64_t majority_index = matches[group_.size() / 2];
  if (majority_index > commit_index_ && majority_index >= 1 &&
      log_[majority_index - 1].term == term_) {
    commit_index_ = majority_index;
    apply_committed();
  }
}

void RaftNode::apply_committed() {
  while (last_applied_ < commit_index_) {
    ++last_applied_;
    m_entries_applied_.add();
    const rm::LogEntry& entry = log_[last_applied_ - 1];
    if (commit_hook_) commit_hook_(last_applied_, entry.cmd);
    if (role_ == Role::Leader) {
      const auto it = client_addrs_.find(entry.cmd.client);
      if (it != client_addrs_.end()) {
        net_.send(addr_, it->second,
                  rm::ClientReply{entry.cmd.id, entry.cmd.client, true, index_},
                  config_.message_bytes);
      }
    }
  }
}

void RaftNode::crash() {
  crashed_ = true;
  election_timer_.cancel();
  heartbeat_timer_.cancel();
  net_.detach(addr_);
}

void RaftNode::restart() {
  crashed_ = false;
  // Volatile state resets; persistent state (term, vote, log) survives.
  role_ = Role::Follower;
  vote_mask_ = 0;
  election_backoff_ = 0;
  commit_index_ = std::min<std::uint64_t>(commit_index_, log_.size());
  net_.attach(addr_, this);
  reset_election_timer();
}

void RaftNode::handle_message(const net::Message& msg) {
  if (crashed_) return;
  if (msg.is<rm::RequestVote>()) {
    const auto& rv = net::payload_as<rm::RequestVote>(msg);
    if (rv.term > term_) become_follower(rv.term);
    bool grant = false;
    if (rv.term == term_ && (!voted_for_ || *voted_for_ == rv.candidate)) {
      // Candidate's log must be at least as up to date as ours.
      const bool up_to_date =
          rv.last_log_term > last_log_term() ||
          (rv.last_log_term == last_log_term() &&
           rv.last_log_index >= log_.size());
      if (up_to_date) {
        grant = true;
        voted_for_ = rv.candidate;
        reset_election_timer();
      }
    }
    net_.send(addr_, msg.from, rm::VoteReply{term_, index_, grant},
              config_.message_bytes);
    return;
  }
  if (msg.is<rm::VoteReply>()) {
    const auto& vr = net::payload_as<rm::VoteReply>(msg);
    if (vr.term > term_) {
      become_follower(vr.term);
      return;
    }
    if (role_ != Role::Candidate || vr.term != term_ || !vr.granted) return;
    // Dedup by voter: the network may duplicate a granted reply, and one
    // voter must never count as two.
    vote_mask_ |= std::uint64_t{1} << vr.voter;
    if (static_cast<std::size_t>(std::popcount(vote_mask_)) >
        group_.size() / 2) {
      become_leader();
    }
    return;
  }
  if (msg.is<rm::AppendEntries>()) {
    const auto& ae = net::payload_as<rm::AppendEntries>(msg);
    if (ae.term > term_ ||
        (ae.term == term_ && role_ == Role::Candidate)) {
      become_follower(ae.term);
    }
    rm::AppendReply reply;
    reply.term = term_;
    reply.follower = index_;
    reply.success = false;
    reply.match_index = 0;
    reply.seq = ae.seq;
    if (ae.term == term_) {
      reset_election_timer();
      // Consistency check.
      const bool prev_ok =
          ae.prev_log_index == 0 ||
          (ae.prev_log_index <= log_.size() &&
           log_[ae.prev_log_index - 1].term == ae.prev_log_term);
      if (prev_ok) {
        // Append/overwrite entries.
        std::uint64_t idx = ae.prev_log_index;
        for (const rm::LogEntry& e : ae.entries) {
          ++idx;
          if (idx <= log_.size()) {
            if (log_[idx - 1].term != e.term) {
              log_.resize(idx - 1);
              log_.push_back(e);
            }
          } else {
            log_.push_back(e);
          }
        }
        reply.success = true;
        reply.match_index = ae.prev_log_index + ae.entries.size();
        if (ae.leader_commit > commit_index_) {
          commit_index_ = std::min<std::uint64_t>(ae.leader_commit,
                                                  log_.size());
          apply_committed();
        }
      }
    }
    net_.send(addr_, msg.from, reply, config_.message_bytes);
    return;
  }
  if (msg.is<rm::AppendReply>()) {
    const auto& ar = net::payload_as<rm::AppendReply>(msg);
    if (ar.term > term_) {
      become_follower(ar.term);
      return;
    }
    if (role_ != Role::Leader || ar.term != term_) return;
    // Consume at most one reply per send: only the outstanding sequence
    // number counts. Duplicated or superseded replies are dropped, which
    // caps the reply->resend branching factor at 1 under duplication.
    if (!append_inflight_[ar.follower] || ar.seq != append_seq_[ar.follower]) {
      return;
    }
    append_inflight_[ar.follower] = false;
    if (ar.success) {
      match_index_[ar.follower] =
          std::max(match_index_[ar.follower], ar.match_index);
      next_index_[ar.follower] = match_index_[ar.follower] + 1;
      advance_commit();
      // Keep streaming if the follower is still behind.
      if (next_index_[ar.follower] <= log_.size()) send_append(ar.follower);
    } else {
      if (next_index_[ar.follower] > 1) --next_index_[ar.follower];
      send_append(ar.follower);
    }
    return;
  }
  if (msg.is<rm::ClientPropose>()) {
    const Command& cmd = net::payload_as<rm::ClientPropose>(msg).cmd;
    client_addrs_[cmd.client] = msg.from;
    if (role_ == Role::Leader) {
      propose(cmd);
    } else {
      net_.send(addr_, msg.from,
                rm::ClientReply{cmd.id, cmd.client, false,
                                voted_for_.value_or(0)},
                config_.message_bytes);
    }
    return;
  }
}

}  // namespace decentnet::bft
