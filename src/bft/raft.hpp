// Raft consensus (Ongaro & Ousterhout): the crash-fault-tolerant ordering
// option in permissioned stacks (Fabric's CFT orderer). Leader election with
// randomized timeouts, log replication via AppendEntries, majority commit,
// and crash/restart support.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <unordered_map>
#include <vector>

#include "bft/rsm.hpp"
#include "net/message.hpp"
#include "net/network.hpp"
#include "sim/simulator.hpp"

namespace decentnet::bft {

struct RaftConfig {
  sim::SimDuration election_timeout_min = sim::millis(150);
  sim::SimDuration election_timeout_max = sim::millis(300);
  sim::SimDuration heartbeat_interval = sim::millis(50);
  std::size_t max_entries_per_append = 64;
  std::size_t message_bytes = 64;
};

namespace raft_msg {
struct LogEntry {
  std::uint64_t term = 0;
  Command cmd;
};
struct RequestVote {
  std::uint64_t term;
  std::size_t candidate;
  std::uint64_t last_log_index;
  std::uint64_t last_log_term;
};
struct VoteReply {
  std::uint64_t term;
  std::size_t voter;
  bool granted;
};
struct AppendEntries {
  std::uint64_t term;
  std::size_t leader;
  std::uint64_t prev_log_index;
  std::uint64_t prev_log_term;
  std::vector<LogEntry> entries;
  std::uint64_t leader_commit;
  std::uint64_t seq = 0;  // per-follower send counter, echoed in the reply
};
struct AppendReply {
  std::uint64_t term;
  std::size_t follower;
  bool success;
  std::uint64_t match_index;  // on success: last replicated index
  std::uint64_t seq = 0;      // echo of AppendEntries::seq
};
struct ClientPropose {
  Command cmd;
};
struct ClientReply {
  std::uint64_t cmd_id;
  std::uint64_t client;
  bool committed;
  std::size_t leader_hint;
};
}  // namespace raft_msg

class RaftNode final : public net::Host {
 public:
  enum class Role { Follower, Candidate, Leader };

  RaftNode(net::Network& net, net::NodeId addr, std::size_t index,
           RaftConfig config);
  ~RaftNode() override;

  RaftNode(const RaftNode&) = delete;
  RaftNode& operator=(const RaftNode&) = delete;

  void set_group(std::vector<net::NodeId> replicas);
  /// Begin the follower timer (call after set_group on every node).
  void start();

  std::size_t index() const { return index_; }
  net::NodeId addr() const { return addr_; }
  Role role() const { return role_; }
  bool is_leader() const { return role_ == Role::Leader && !crashed_; }
  std::uint64_t term() const { return term_; }
  std::uint64_t commit_index() const { return commit_index_; }
  std::uint64_t log_size() const { return log_.size(); }

  void set_commit_hook(CommitHook hook) { commit_hook_ = std::move(hook); }

  /// Propose directly on this node; returns false unless it is the leader.
  bool propose(Command cmd);

  /// Crash-stop and restart (volatile state reset, log retained — models a
  /// disk-backed node rebooting).
  void crash();
  void restart();
  bool crashed() const { return crashed_; }

  void handle_message(const net::Message& msg) override;

 private:
  void reset_election_timer();
  void become_follower(std::uint64_t term);
  void become_candidate();
  void become_leader();
  void broadcast_heartbeats();
  void send_append(std::size_t peer);
  void advance_commit();
  void apply_committed();
  std::uint64_t last_log_term() const {
    return log_.empty() ? 0 : log_.back().term;
  }

  net::Network& net_;
  sim::Simulator& sim_;
  net::NodeId addr_;
  std::size_t index_;
  RaftConfig config_;
  // Experiment-scoped metric handles (aggregated across all nodes).
  sim::Counter& m_elections_;
  sim::Counter& m_entries_applied_;
  sim::Counter& m_leader_changes_;
  sim::Rng rng_;
  std::vector<net::NodeId> group_;
  bool crashed_ = false;

  Role role_ = Role::Follower;
  std::uint64_t term_ = 0;
  std::optional<std::size_t> voted_for_;
  std::vector<raft_msg::LogEntry> log_;  // 1-based indexing via helpers
  std::uint64_t commit_index_ = 0;
  std::uint64_t last_applied_ = 0;

  // Leader state.
  std::vector<std::uint64_t> next_index_;
  std::vector<std::uint64_t> match_index_;
  // One outstanding AppendEntries per follower (pipelining-lite): proposals
  // piggyback on the in-flight stream instead of re-broadcasting overlapping
  // entries; the heartbeat timer provides liveness if a reply is lost.
  // Each append carries a per-follower sequence number and only the reply
  // matching the outstanding one is consumed. Without that gate a network
  // that duplicates messages turns the reply-driven stream into a
  // self-amplifying loop: one append averages (1+p)^2 delivered replies,
  // each spawning a fresh append — branching factor > 1 and the event
  // queue grows without bound inside a fixed sim-time window.
  std::vector<bool> append_inflight_;
  std::vector<std::uint64_t> append_seq_;

  // Candidate state. Votes are deduplicated by voter index: a duplicated
  // VoteReply must not count twice or a minority candidate wins the term.
  std::uint64_t vote_mask_ = 0;
  // Split-vote backoff: each candidacy that times out without resolution
  // doubles the randomized-timeout window (capped at 8x), de-synchronizing
  // repeat candidates under partitions; any progress (a leader heard from,
  // an election won) resets it.
  std::uint32_t election_backoff_ = 0;

  sim::EventHandle election_timer_;
  sim::EventHandle heartbeat_timer_;
  CommitHook commit_hook_;
  // client id -> address, for replies on commit.
  std::unordered_map<std::uint64_t, net::NodeId> client_addrs_;
};

}  // namespace decentnet::bft
