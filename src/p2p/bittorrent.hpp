// BitTorrent swarm model: choke/unchoke reciprocation (tit-for-tat),
// optimistic unchoking, and rarest-first piece selection.
//
// E2's second half: incentives fix free riding *during a download* — with
// tit-for-tat enabled, free riders crawl while contributors finish; with
// random unchoking (no incentives) free riders do just as well. The model is
// flow-level: transfers occupy upload slots at a fixed per-slot rate, which
// is the granularity the claim lives at.
#pragma once

#include <cstdint>
#include <vector>

#include "sim/rng.hpp"
#include "sim/simulator.hpp"

namespace decentnet::p2p {

struct SwarmConfig {
  std::size_t pieces = 128;
  std::size_t piece_bytes = 256 * 1024;
  double seed_upload_bps = 5e6 / 8;    // 5 Mbit/s
  double peer_upload_bps = 2e6 / 8;    // 2 Mbit/s
  std::size_t upload_slots = 4;
  std::size_t neighbors = 20;          // peers each node knows
  sim::SimDuration rechoke_interval = sim::seconds(10);
  bool tit_for_tat = true;             // false: random unchoking
};

struct SwarmPeerStats {
  bool is_seed = false;
  bool free_rider = false;
  bool finished = false;
  sim::SimTime finish_time = 0;
  std::size_t pieces_have = 0;
  std::uint64_t bytes_uploaded = 0;
  std::uint64_t bytes_downloaded = 0;
};

/// One torrent swarm simulated to completion (or a deadline).
class Swarm {
 public:
  Swarm(sim::Simulator& sim, SwarmConfig config, std::size_t seeds,
        std::size_t leechers, std::size_t free_riders);

  /// Begin choking timers and initial requests. Call once, then run the
  /// simulator; query stats afterwards.
  void start();

  const std::vector<SwarmPeerStats>& stats() const { return stats_; }
  std::size_t peer_count() const { return peers_.size(); }

  /// Fraction of the given class that finished by `deadline`.
  double finished_fraction(bool free_riders_only, sim::SimTime deadline) const;
  /// Median finish time of finished peers in the class (0 if none).
  sim::SimTime median_finish_time(bool free_riders_only) const;

 private:
  struct Peer {
    bool is_seed = false;
    bool free_rider = false;
    std::vector<bool> have;
    std::size_t have_count = 0;
    std::vector<std::size_t> neighbors;
    std::vector<std::size_t> unchoked;        // whom I am uploading to
    std::vector<std::uint64_t> received_from; // bytes since last rechoke
    std::vector<bool> requested;               // pieces currently in flight
    std::size_t busy_slots = 0;
    bool finished = false;
  };

  void rechoke(std::size_t p);
  void try_request(std::size_t downloader, std::size_t uploader);
  bool is_unchoked_by(std::size_t downloader, std::size_t uploader) const;
  int pick_piece(std::size_t downloader, std::size_t uploader,
                 sim::Rng& rng) const;
  void transfer_piece(std::size_t downloader, std::size_t uploader,
                      std::size_t piece);
  void complete_piece(std::size_t downloader, std::size_t uploader,
                      std::size_t piece);

  sim::Simulator& sim_;
  SwarmConfig config_;
  sim::Rng rng_;
  std::vector<Peer> peers_;
  std::vector<SwarmPeerStats> stats_;
  std::vector<std::uint32_t> availability_;  // copies of each piece
};

}  // namespace decentnet::p2p
