// File-sharing workload model: a catalog of content items with Zipf
// popularity, and helpers to distribute items across a peer population with
// a configurable free-rider fraction (peers who consume but share nothing).
#pragma once

#include <cstdint>
#include <vector>

#include "overlay/flood.hpp"  // ContentId
#include "sim/rng.hpp"

namespace decentnet::p2p {

struct CatalogConfig {
  std::size_t items = 1000;
  double zipf_exponent = 0.8;        // measured file-sharing skew
  double copies_per_sharer = 8;      // mean items a sharing peer offers
};

class ContentCatalog {
 public:
  ContentCatalog(CatalogConfig config, sim::Rng& rng);

  std::size_t size() const { return config_.items; }

  /// Sample an item to query, Zipf-distributed (popular items more often).
  overlay::ContentId sample_query(sim::Rng& rng) const;

  /// Items a sharing peer offers: Poisson-ish count of Zipf-popular items
  /// (popular content is replicated on more peers, as measured in Gnutella).
  std::vector<overlay::ContentId> sample_shared_items(sim::Rng& rng) const;

 private:
  CatalogConfig config_;
  sim::ZipfSampler sampler_;
};

/// Assignment of sharing behaviour across a population.
struct PopulationPlan {
  /// per-peer shared items; empty vector = free rider.
  std::vector<std::vector<overlay::ContentId>> shared;
  std::size_t free_riders = 0;
};

/// Build a plan where `free_rider_fraction` of peers share nothing and the
/// rest share catalog samples.
PopulationPlan plan_population(const ContentCatalog& catalog, std::size_t n,
                               double free_rider_fraction, sim::Rng& rng);

}  // namespace decentnet::p2p
