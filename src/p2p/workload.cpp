#include "p2p/workload.hpp"

#include <cmath>

namespace decentnet::p2p {

ContentCatalog::ContentCatalog(CatalogConfig config, sim::Rng&)
    : config_(config), sampler_(config.items, config.zipf_exponent) {}

overlay::ContentId ContentCatalog::sample_query(sim::Rng& rng) const {
  return static_cast<overlay::ContentId>(sampler_.sample(rng));
}

std::vector<overlay::ContentId> ContentCatalog::sample_shared_items(
    sim::Rng& rng) const {
  // Geometric item count with the configured mean, at least one item.
  std::vector<overlay::ContentId> items;
  const double p_stop = 1.0 / config_.copies_per_sharer;
  do {
    items.push_back(static_cast<overlay::ContentId>(sampler_.sample(rng)));
  } while (!rng.chance(p_stop) && items.size() < config_.items);
  return items;
}

PopulationPlan plan_population(const ContentCatalog& catalog, std::size_t n,
                               double free_rider_fraction, sim::Rng& rng) {
  PopulationPlan plan;
  plan.shared.resize(n);
  for (std::size_t i = 0; i < n; ++i) {
    if (rng.chance(free_rider_fraction)) {
      ++plan.free_riders;
      continue;  // shares nothing
    }
    plan.shared[i] = catalog.sample_shared_items(rng);
  }
  return plan;
}

}  // namespace decentnet::p2p
