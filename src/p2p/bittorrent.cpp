#include "p2p/bittorrent.hpp"

#include <algorithm>

namespace decentnet::p2p {

Swarm::Swarm(sim::Simulator& sim, SwarmConfig config, std::size_t seeds,
             std::size_t leechers, std::size_t free_riders)
    : sim_(sim),
      config_(config),
      rng_(sim.rng().fork(0xB17704)),
      availability_(config.pieces, 0) {
  const std::size_t n = seeds + leechers + free_riders;
  peers_.resize(n);
  stats_.resize(n);
  for (std::size_t i = 0; i < n; ++i) {
    Peer& p = peers_[i];
    p.is_seed = i < seeds;
    p.free_rider = i >= seeds + leechers;
    p.have.assign(config_.pieces, p.is_seed);
    p.have_count = p.is_seed ? config_.pieces : 0;
    p.received_from.assign(n, 0);
    p.requested.assign(config_.pieces, false);
    p.finished = p.is_seed;
    stats_[i].is_seed = p.is_seed;
    stats_[i].free_rider = p.free_rider;
    stats_[i].finished = p.is_seed;
    if (p.is_seed) {
      for (auto& a : availability_) ++a;
    }
  }
  // Random neighbor sets (tracker handout).
  for (std::size_t i = 0; i < n; ++i) {
    const std::size_t want = std::min(config_.neighbors, n - 1);
    std::vector<std::size_t> others;
    others.reserve(n - 1);
    for (std::size_t j = 0; j < n; ++j) {
      if (j != i) others.push_back(j);
    }
    rng_.shuffle(others);
    peers_[i].neighbors.assign(others.begin(),
                               others.begin() + static_cast<long>(want));
  }
}

void Swarm::start() {
  for (std::size_t i = 0; i < peers_.size(); ++i) {
    // Staggered rechoke timers avoid lock-step artifacts.
    const sim::SimDuration offset =
        rng_.uniform_int(0, config_.rechoke_interval);
    sim_.schedule_periodic(offset, config_.rechoke_interval,
                           [this, i] { rechoke(i); });
  }
}

bool Swarm::is_unchoked_by(std::size_t downloader,
                           std::size_t uploader) const {
  const auto& u = peers_[uploader].unchoked;
  return std::find(u.begin(), u.end(), downloader) != u.end();
}

void Swarm::rechoke(std::size_t p) {
  Peer& peer = peers_[p];
  if (peer.free_rider && !peer.is_seed) {
    // Free riders never upload; they only clear their accounting.
    std::fill(peer.received_from.begin(), peer.received_from.end(), 0);
    return;
  }
  // Interested neighbors: those that lack a piece we have.
  std::vector<std::size_t> interested;
  for (std::size_t nb : peer.neighbors) {
    const Peer& other = peers_[nb];
    if (other.finished) continue;
    for (std::size_t piece = 0; piece < config_.pieces; ++piece) {
      if (peer.have[piece] && !other.have[piece]) {
        interested.push_back(nb);
        break;
      }
    }
  }
  peer.unchoked.clear();
  if (interested.empty()) {
    std::fill(peer.received_from.begin(), peer.received_from.end(), 0);
    return;
  }
  const std::size_t slots = config_.upload_slots;
  if (config_.tit_for_tat && !peer.is_seed) {
    // Reciprocate: regular slots go ONLY to peers that actually uploaded to
    // us in the recent window — a tie among zero-contributors must never
    // win a regular slot, or free riders sneak in. One optimistic slot is
    // reserved for everyone else (how newcomers bootstrap).
    std::vector<std::size_t> contributors, rest;
    for (std::size_t nb : interested) {
      (peer.received_from[nb] > 0 ? contributors : rest).push_back(nb);
    }
    std::sort(contributors.begin(), contributors.end(),
              [&](std::size_t a, std::size_t b) {
                return peer.received_from[a] > peer.received_from[b];
              });
    const std::size_t regular = slots > 1 ? slots - 1 : slots;
    for (std::size_t i = 0;
         i < contributors.size() && peer.unchoked.size() < regular; ++i) {
      peer.unchoked.push_back(contributors[i]);
    }
    // Optimistic unchoke: a uniformly random non-contributor (or leftover
    // contributor) fills the final slot.
    for (std::size_t i = regular; i < contributors.size(); ++i) {
      rest.push_back(contributors[i]);
    }
    if (!rest.empty() && peer.unchoked.size() < slots) {
      peer.unchoked.push_back(rest[rng_.uniform_int(rest.size())]);
    }
  } else {
    // Seeds and no-incentive mode: random unchoking.
    rng_.shuffle(interested);
    for (std::size_t i = 0; i < interested.size() && i < slots; ++i) {
      peer.unchoked.push_back(interested[i]);
    }
  }
  // Decay (rather than zero) the reciprocation window so rankings are
  // smooth across rechoke intervals.
  for (auto& b : peer.received_from) b /= 2;
  // Newly unchoked peers may start requesting immediately.
  for (std::size_t nb : peer.unchoked) try_request(nb, p);
}

int Swarm::pick_piece(std::size_t downloader, std::size_t uploader,
                      sim::Rng& rng) const {
  // Rarest-first with random tie-break.
  const Peer& d = peers_[downloader];
  const Peer& u = peers_[uploader];
  int best = -1;
  std::uint32_t best_avail = 0;
  std::size_t ties = 0;
  for (std::size_t piece = 0; piece < config_.pieces; ++piece) {
    if (!u.have[piece] || d.have[piece] || d.requested[piece]) continue;
    if (best < 0 || availability_[piece] < best_avail) {
      best = static_cast<int>(piece);
      best_avail = availability_[piece];
      ties = 1;
    } else if (availability_[piece] == best_avail) {
      // Reservoir-style random tie-break.
      ++ties;
      if (rng.uniform_int(ties) == 0) best = static_cast<int>(piece);
    }
  }
  return best;
}

void Swarm::try_request(std::size_t downloader, std::size_t uploader) {
  Peer& u = peers_[uploader];
  if (u.busy_slots >= config_.upload_slots) return;
  if (!is_unchoked_by(downloader, uploader)) return;
  const int piece = pick_piece(downloader, uploader, rng_);
  if (piece < 0) return;
  peers_[downloader].requested[static_cast<std::size_t>(piece)] = true;
  transfer_piece(downloader, uploader, static_cast<std::size_t>(piece));
}

void Swarm::transfer_piece(std::size_t downloader, std::size_t uploader,
                           std::size_t piece) {
  Peer& u = peers_[uploader];
  ++u.busy_slots;
  const double rate =
      (u.is_seed ? config_.seed_upload_bps : config_.peer_upload_bps) /
      static_cast<double>(config_.upload_slots);
  const auto duration = static_cast<sim::SimDuration>(
      static_cast<double>(config_.piece_bytes) / rate *
      static_cast<double>(sim::kSecond));
  sim_.post(
      duration,
      [this, downloader, uploader, piece] {
        complete_piece(downloader, uploader, piece);
      },
      "bt/piece_done");
}

void Swarm::complete_piece(std::size_t downloader, std::size_t uploader,
                           std::size_t piece) {
  Peer& u = peers_[uploader];
  Peer& d = peers_[downloader];
  if (u.busy_slots > 0) --u.busy_slots;
  d.requested[piece] = false;
  stats_[uploader].bytes_uploaded += config_.piece_bytes;
  stats_[downloader].bytes_downloaded += config_.piece_bytes;
  d.received_from[uploader] += config_.piece_bytes;
  if (!d.have[piece]) {
    d.have[piece] = true;
    ++d.have_count;
    ++availability_[piece];
    stats_[downloader].pieces_have = d.have_count;
    if (d.have_count == config_.pieces && !d.finished) {
      d.finished = true;
      stats_[downloader].finished = true;
      stats_[downloader].finish_time = sim_.now();
    }
  }
  // Keep the pipe full: downloader asks this uploader for the next piece,
  // and the freed slot may serve another unchoked peer.
  try_request(downloader, uploader);
  for (std::size_t nb : u.unchoked) {
    if (u.busy_slots >= config_.upload_slots) break;
    if (nb != downloader) try_request(nb, uploader);
  }
}

double Swarm::finished_fraction(bool free_riders_only,
                                sim::SimTime deadline) const {
  std::size_t total = 0, done = 0;
  for (const auto& s : stats_) {
    if (s.is_seed) continue;
    if (s.free_rider != free_riders_only) continue;
    ++total;
    if (s.finished && s.finish_time <= deadline) ++done;
  }
  return total == 0 ? 0.0
                    : static_cast<double>(done) / static_cast<double>(total);
}

sim::SimTime Swarm::median_finish_time(bool free_riders_only) const {
  std::vector<sim::SimTime> times;
  for (const auto& s : stats_) {
    if (s.is_seed || s.free_rider != free_riders_only || !s.finished) continue;
    times.push_back(s.finish_time);
  }
  if (times.empty()) return 0;
  std::sort(times.begin(), times.end());
  return times[times.size() / 2];
}

}  // namespace decentnet::p2p
