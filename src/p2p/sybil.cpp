#include "p2p/sybil.hpp"

namespace decentnet::p2p {

using overlay::kademlia_msg::FindNode;
using overlay::kademlia_msg::FindNodeReply;

SybilNode::SybilNode(net::Network& net, net::NodeId addr, overlay::Key id)
    : net_(net), addr_(addr), id_(id) {}

SybilNode::~SybilNode() {
  // In-flight messages to this identity must drop, not dangle.
  net_.detach(addr_);
}

void SybilNode::handle_message(const net::Message& msg) {
  if (!msg.is<FindNode>()) return;  // ignore stores; swallow the data
  ++captured_;
  FindNodeReply reply;
  reply.sender = contact();
  reply.has_value = false;  // deny every value
  for (const overlay::Contact& c : cohort_) {
    if (c.addr != addr_ && c.addr != msg.from) reply.contacts.push_back(c);
    if (reply.contacts.size() >= 8) break;
  }
  // Echo the RPC nonce (Message::cookie) so the victim pairs the reply.
  net_.send(addr_, msg.from, std::move(reply),
            100 + 40 * reply.contacts.size(), msg.cookie);
}

overlay::Key sybil_id_near(const overlay::Key& key, int prefix_bits,
                           sim::Rng& rng) {
  overlay::Key id = key;
  // Randomize everything below the shared prefix.
  for (int bit = prefix_bits; bit < 256; ++bit) {
    const auto byte = static_cast<std::size_t>(bit / 8);
    const int in_byte = 7 - bit % 8;
    const std::uint8_t mask = static_cast<std::uint8_t>(1u << in_byte);
    if (rng.chance(0.5)) {
      id.bytes[byte] |= mask;
    } else {
      id.bytes[byte] &= static_cast<std::uint8_t>(~mask);
    }
  }
  // Guarantee it differs from the key itself at the first free bit.
  if (id == key && prefix_bits < 256) {
    const auto byte = static_cast<std::size_t>(prefix_bits / 8);
    const int in_byte = 7 - prefix_bits % 8;
    id.bytes[byte] ^= static_cast<std::uint8_t>(1u << in_byte);
  }
  return id;
}

SybilAttack::SybilAttack(net::Network& net, SybilConfig config,
                         const overlay::Key& victim_key, sim::Rng& rng) {
  sybils_.reserve(config.count);
  for (std::size_t i = 0; i < config.count; ++i) {
    const overlay::Key id =
        config.target_key
            ? sybil_id_near(victim_key, /*prefix_bits=*/24, rng)
            : sybil_id_near(overlay::Key{}, /*prefix_bits=*/0, rng);
    sybils_.push_back(
        std::make_unique<SybilNode>(net, net.new_node_id(), id));
    contacts_.push_back(sybils_.back()->contact());
  }
  for (auto& s : sybils_) s->set_cohort(contacts_);
}

void SybilAttack::launch() {
  for (auto& s : sybils_) s->join();
}

void SybilAttack::infiltrate(std::vector<overlay::KademliaNode*>& honest,
                             std::size_t contacts_per_node, sim::Rng& rng) {
  for (overlay::KademliaNode* node : honest) {
    for (std::size_t i = 0; i < contacts_per_node; ++i) {
      node->observe(contacts_[rng.uniform_int(contacts_.size())]);
    }
  }
}

std::uint64_t SybilAttack::captured_requests() const {
  std::uint64_t total = 0;
  for (const auto& s : sybils_) total += s->captured_requests();
  return total;
}

}  // namespace decentnet::p2p
