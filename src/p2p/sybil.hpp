// Sybil attack driver against the Kademlia DHT (Douceur 2002; the KAD and
// BitTorrent-DHT attacks the paper cites as Problem 3).
//
// Because identifiers are self-assigned in open overlays, an attacker mints
// identities that land exactly next to a victim key. Sybil nodes speak the
// normal Kademlia wire protocol but answer every FIND_NODE with more sybils
// (capturing the lookup's shortlist) and deny knowledge of stored values.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "net/message.hpp"
#include "net/network.hpp"
#include "overlay/kademlia.hpp"

namespace decentnet::p2p {

struct SybilConfig {
  std::size_t count = 64;          // sybil identities (one host each)
  bool target_key = true;          // cluster ids next to a victim key
  std::size_t reply_contacts = 8;  // sybil contacts per poisoned reply
};

/// One adversarial identity speaking the Kademlia wire protocol.
class SybilNode final : public net::Host {
 public:
  SybilNode(net::Network& net, net::NodeId addr, overlay::Key id);
  ~SybilNode() override;

  SybilNode(const SybilNode&) = delete;
  SybilNode& operator=(const SybilNode&) = delete;

  overlay::Contact contact() const { return {id_, addr_}; }
  std::uint64_t captured_requests() const { return captured_; }

  void set_cohort(std::vector<overlay::Contact> cohort) {
    cohort_ = std::move(cohort);
  }

  void join() { net_.attach(addr_, this); }
  void leave() { net_.detach(addr_); }

  void handle_message(const net::Message& msg) override;

 private:
  net::Network& net_;
  net::NodeId addr_;
  overlay::Key id_;
  std::vector<overlay::Contact> cohort_;
  std::uint64_t captured_ = 0;
};

/// Owns a cohort of sybil identities clustered around `victim_key` and
/// infiltrates them into honest routing tables.
class SybilAttack {
 public:
  SybilAttack(net::Network& net, SybilConfig config,
              const overlay::Key& victim_key, sim::Rng& rng);

  /// Bring all sybils online.
  void launch();

  /// Announce sybil contacts to honest nodes (models the attacker walking
  /// the DHT and inserting itself; here we inject via the observe hook that
  /// a real attacker reaches through unsolicited protocol traffic).
  void infiltrate(std::vector<overlay::KademliaNode*>& honest,
                  std::size_t contacts_per_node, sim::Rng& rng);

  std::uint64_t captured_requests() const;
  const std::vector<overlay::Contact>& contacts() const { return contacts_; }

 private:
  std::vector<std::unique_ptr<SybilNode>> sybils_;
  std::vector<overlay::Contact> contacts_;
};

/// Mint an id sharing `prefix_bits` with `key` (the self-assignment exploit).
overlay::Key sybil_id_near(const overlay::Key& key, int prefix_bits,
                           sim::Rng& rng);

}  // namespace decentnet::p2p
