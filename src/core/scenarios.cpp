#include "core/scenarios.hpp"

#include <algorithm>
#include <functional>
#include <memory>
#include <vector>

#include "bft/raft.hpp"
#include "chain/miner.hpp"
#include "chain/node.hpp"
#include "chain/wallet.hpp"
#include "fabric/channel.hpp"
#include "fabric/contracts.hpp"
#include "net/topology.hpp"
#include "sim/metrics.hpp"

namespace decentnet::core {

// ---------------------------------------------------------------------------
// PoW scenario
// ---------------------------------------------------------------------------

PowScenarioResult run_pow_scenario(const PowScenarioConfig& config) {
  sim::Simulator sim(config.seed);
  net::NetworkConfig net_cfg;
  net_cfg.model_bandwidth = config.model_bandwidth;
  net_cfg.default_uplink_bps = config.uplink_bps;
  net_cfg.default_downlink_bps = config.downlink_bps;
  net_cfg.expected_nodes = config.nodes;
  net::Network net(sim,
                   std::make_unique<net::LogNormalLatency>(
                       config.median_latency, 0.4),
                   net_cfg);
  sim::Rng rng = sim.rng().fork(0x9C0E);

  // Wallets funded from a premined genesis: many small outputs each so the
  // workload can keep spending while change waits for confirmation.
  std::vector<chain::Wallet> wallets;
  std::vector<std::pair<crypto::PublicKey, chain::Amount>> premine;
  constexpr std::size_t kOutputsPerWallet = 100;
  for (std::size_t i = 0; i < config.wallets; ++i) {
    wallets.push_back(chain::Wallet::from_seed(config.seed * 1000003 + i));
    for (std::size_t k = 0; k < kOutputsPerWallet; ++k) {
      premine.emplace_back(wallets.back().address(),
                           chain::Amount{1'000'000});
    }
  }
  const chain::BlockPtr genesis =
      chain::make_genesis_multi(premine, config.params.initial_difficulty);

  // Full-node mesh.
  std::vector<net::NodeId> addrs;
  for (std::size_t i = 0; i < config.nodes; ++i) {
    addrs.push_back(net.new_node_id());
  }
  const net::AdjacencyList adj =
      net::random_graph(config.nodes, config.degree, rng);
  std::vector<std::unique_ptr<chain::FullNode>> nodes;
  for (std::size_t i = 0; i < config.nodes; ++i) {
    nodes.push_back(std::make_unique<chain::FullNode>(net, addrs[i],
                                                      config.params, genesis));
    nodes.back()->set_compact_relay(config.compact_relay);
    std::vector<net::NodeId> neighbors;
    for (std::size_t j : adj[i]) neighbors.push_back(addrs[j]);
    nodes.back()->connect(std::move(neighbors));
  }

  // Miners on the first `miners` nodes, equal hash-power split.
  std::vector<std::unique_ptr<chain::Miner>> miners;
  const double per_miner =
      config.total_hashrate / static_cast<double>(std::max<std::size_t>(
                                  config.miners, 1));
  for (std::size_t i = 0; i < config.miners && i < nodes.size(); ++i) {
    const chain::Wallet payout =
        chain::Wallet::from_seed(config.seed * 2000003 + i);
    miners.push_back(std::make_unique<chain::Miner>(
        *nodes[i], payout.address(), per_miner));
    miners.back()->start();
  }

  // Workload: exponential inter-arrival, random wallet pays random wallet,
  // submitted at a random node.
  std::uint64_t submitted = 0;
  std::uint64_t tx_nonce = 0;
  auto next_tx = std::make_shared<std::function<void()>>();
  std::weak_ptr<std::function<void()>> weak_next = next_tx;
  *next_tx = [&, weak_next] {
    auto strong = weak_next.lock();
    const std::size_t from = rng.uniform_int(wallets.size());
    std::size_t to = rng.uniform_int(wallets.size());
    if (to == from) to = (to + 1) % wallets.size();
    chain::FullNode& gateway = *nodes[rng.uniform_int(nodes.size())];
    const auto tx = wallets[from].pay(gateway.utxo(), wallets[to].address(),
                                      config.tx_amount, config.tx_fee,
                                      ++tx_nonce, &rng);
    if (tx && gateway.submit_transaction(*tx)) ++submitted;
    const double gap = rng.exponential(config.tx_rate_per_sec);
    if (strong) sim.post(sim::seconds(gap), [strong] { (*strong)(); });
  };
  if (config.tx_rate_per_sec > 0) {
    sim.post(sim::seconds(1), [next_tx] { (*next_tx)(); });
  }

  sim.run_until(config.duration);
  for (auto& m : miners) m->stop();

  // Measure on an observer node that does not mine (last node), falling
  // back to node 0 in tiny configurations.
  chain::FullNode& observer =
      *nodes[config.miners < config.nodes ? config.nodes - 1 : 0];
  PowScenarioResult result;
  result.blocks_on_chain = observer.tree().best_height();
  result.stale_blocks = observer.tree().stale_count();
  result.confirmed_txs = observer.confirmed_tx_count();
  result.submitted_txs = submitted;
  const double secs = sim::to_seconds(config.duration);
  result.throughput_tps =
      static_cast<double>(result.confirmed_txs) / std::max(secs, 1.0);
  result.mean_block_interval_s =
      result.blocks_on_chain == 0
          ? 0
          : secs / static_cast<double>(result.blocks_on_chain);
  const double total_blocks = static_cast<double>(result.blocks_on_chain) +
                              static_cast<double>(result.stale_blocks);
  result.stale_rate =
      total_blocks == 0
          ? 0
          : static_cast<double>(result.stale_blocks) / total_blocks;
  double depth_sum = 0;
  for (const auto& n : nodes) {
    depth_sum += static_cast<double>(n->stats().reorg_depth_max);
  }
  result.mean_reorg_depth = depth_sum / static_cast<double>(nodes.size());
  return result;
}

// ---------------------------------------------------------------------------
// Fabric scenario
// ---------------------------------------------------------------------------

FabricScenarioResult run_fabric_scenario(const FabricScenarioConfig& config) {
  sim::Simulator sim(config.seed);
  net::Network net(
      sim, std::make_unique<net::LogNormalLatency>(config.lan_latency, 0.2),
      net::NetworkConfig{
          .expected_nodes = config.orgs * config.peers_per_org + 4});
  sim::Rng rng = sim.rng().fork(0xFAB);

  fabric::MembershipService msp(config.seed);
  const fabric::EndorsementPolicy policy{config.required_endorsements};

  auto kv = std::make_shared<fabric::KvContract>();
  std::vector<std::unique_ptr<fabric::FabricPeer>> peers;
  for (std::size_t o = 0; o < config.orgs; ++o) {
    for (std::size_t p = 0; p < config.peers_per_org; ++p) {
      peers.push_back(std::make_unique<fabric::FabricPeer>(
          net, net.new_node_id(), "org" + std::to_string(o), msp, policy,
          config.seed * 31 + o * 97 + p));
      peers.back()->install(kv);
    }
  }
  peers.front()->set_event_source(true);

  std::unique_ptr<fabric::OrderingService> orderer;
  std::unique_ptr<fabric::SoloOrderer> solo;
  std::unique_ptr<fabric::RaftOrderer> raft;
  std::unique_ptr<fabric::PbftOrderer> pbft;
  fabric::OrdererConfig ocfg;
  ocfg.block_max_txs = config.block_max_txs;
  ocfg.block_timeout = config.block_timeout;
  fabric::OrderingService* svc = nullptr;
  switch (config.orderer) {
    case OrdererKind::Solo:
      solo = std::make_unique<fabric::SoloOrderer>(net, net.new_node_id(),
                                                   ocfg);
      svc = solo.get();
      break;
    case OrdererKind::Raft:
      raft = std::make_unique<fabric::RaftOrderer>(net, config.orderer_nodes,
                                                   ocfg);
      svc = raft.get();
      break;
    case OrdererKind::Pbft:
      pbft = std::make_unique<fabric::PbftOrderer>(net, config.orderer_nodes,
                                                   ocfg);
      svc = pbft.get();
      break;
  }
  for (const auto& p : peers) svc->register_peer(p->addr());

  std::vector<fabric::FabricPeer*> endorsers;
  for (const auto& p : peers) endorsers.push_back(p.get());

  std::vector<std::unique_ptr<fabric::FabricClient>> clients;
  for (std::size_t c = 0; c < config.clients; ++c) {
    clients.push_back(std::make_unique<fabric::FabricClient>(
        net, net.new_node_id(), policy));
    clients.back()->set_endorsers(endorsers);
    clients.back()->set_orderer(svc);
  }

  sim::Histogram latencies;
  std::uint64_t unique_key = 0;
  auto next_tx = std::make_shared<std::function<void()>>();
  std::weak_ptr<std::function<void()>> weak_next = next_tx;
  *next_tx = [&, weak_next] {
    auto strong = weak_next.lock();
    fabric::FabricClient& client = *clients[rng.uniform_int(clients.size())];
    std::string key;
    if (config.hot_keys > 0) {
      key = "hot" + std::to_string(rng.uniform_int(config.hot_keys));
    } else {
      key = "k" + std::to_string(unique_key++);
    }
    client.invoke("kv", {"put", key, "v"},
                  [&latencies](bool ok, const std::string&,
                               sim::SimDuration latency) {
                    if (ok) latencies.record(sim::to_millis(latency));
                  });
    const double gap = rng.exponential(config.tx_rate_per_sec);
    if (strong) sim.post(sim::seconds(gap), [strong] { (*strong)(); });
  };
  // Let Raft/PBFT settle leadership before offering load.
  sim.post(sim::seconds(2), [next_tx] { (*next_tx)(); });

  sim.run_until(config.duration + sim::seconds(2));

  FabricScenarioResult result;
  const auto& stats = peers.front()->stats();
  result.committed = stats.txs_committed;
  result.mvcc_conflicts = stats.mvcc_conflicts;
  for (const auto& c : clients) result.failed += c->failed();
  result.throughput_tps = static_cast<double>(result.committed) /
                          sim::to_seconds(config.duration);
  result.latency_p50_ms = latencies.percentile(50);
  result.latency_p99_ms = latencies.percentile(99);
  return result;
}

// ---------------------------------------------------------------------------
// Partitioned cloud commit
// ---------------------------------------------------------------------------

PartitionedScenarioResult run_partitioned_scenario(
    const PartitionedScenarioConfig& config) {
  sim::Simulator sim(config.seed);
  net::Network net(
      sim, std::make_unique<net::ConstantLatency>(config.lan_latency),
      net::NetworkConfig{.expected_nodes =
                             config.partitions * config.replicas + 1});
  sim::Rng rng = sim.rng().fork(0x9A27);

  struct Partition {
    std::vector<std::unique_ptr<bft::RaftNode>> replicas;
    std::unordered_map<std::uint64_t, sim::SimTime> inflight;
    std::uint64_t committed = 0;
  };
  auto partitions = std::make_unique<std::vector<Partition>>();
  partitions->resize(config.partitions);
  sim::Histogram latencies;

  for (std::size_t p = 0; p < config.partitions; ++p) {
    Partition& part = (*partitions)[p];
    std::vector<net::NodeId> addrs;
    for (std::size_t r = 0; r < config.replicas; ++r) {
      addrs.push_back(net.new_node_id());
    }
    for (std::size_t r = 0; r < config.replicas; ++r) {
      part.replicas.push_back(
          std::make_unique<bft::RaftNode>(net, addrs[r], r, bft::RaftConfig{}));
      part.replicas.back()->set_group(addrs);
    }
    // Every replica reports commits; the first (the leader) wins the race
    // and the inflight-map erase deduplicates the rest.
    for (auto& r : part.replicas) {
      r->set_commit_hook(
          [&latencies, &part, &sim](std::uint64_t, const bft::Command& cmd) {
            const auto it = part.inflight.find(cmd.id);
            if (it == part.inflight.end()) return;
            latencies.record(sim::to_millis(sim.now() - it->second));
            part.inflight.erase(it);
            ++part.committed;
          });
    }
    for (auto& r : part.replicas) r->start();
  }

  std::uint64_t next_id = 1;
  auto next_tx = std::make_shared<std::function<void()>>();
  std::weak_ptr<std::function<void()>> weak_next = next_tx;
  *next_tx = [&, weak_next] {
    auto strong = weak_next.lock();
    Partition& part = (*partitions)[rng.uniform_int(partitions->size())];
    bft::RaftNode* leader = nullptr;
    for (auto& r : part.replicas) {
      if (r->is_leader()) {
        leader = r.get();
        break;
      }
    }
    if (leader != nullptr) {
      bft::Command cmd;
      cmd.id = next_id++;
      cmd.wire_bytes = 128;
      part.inflight.emplace(cmd.id, sim.now());
      leader->propose(std::move(cmd));
    }
    const double gap = rng.exponential(config.tx_rate_per_sec);
    if (strong) sim.post(sim::seconds(gap), [strong] { (*strong)(); });
  };
  sim.post(sim::seconds(1), [next_tx] { (*next_tx)(); });

  sim.run_until(config.duration + sim::seconds(1));

  PartitionedScenarioResult result;
  for (const auto& part : *partitions) result.committed += part.committed;
  result.throughput_tps = static_cast<double>(result.committed) /
                          sim::to_seconds(config.duration);
  result.latency_p50_ms = latencies.percentile(50);
  result.latency_p99_ms = latencies.percentile(99);
  return result;
}

}  // namespace decentnet::core
