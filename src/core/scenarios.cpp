#include "core/scenarios.hpp"

#include <algorithm>
#include <functional>
#include <memory>
#include <stdexcept>
#include <vector>

#include "bft/raft.hpp"
#include "chain/miner.hpp"
#include "chain/node.hpp"
#include "chain/wallet.hpp"
#include "fabric/channel.hpp"
#include "fabric/contracts.hpp"
#include "net/topology.hpp"
#include "sim/experiment.hpp"
#include "sim/metrics.hpp"

namespace decentnet::core {

namespace {

/// Where a run gets its seed, metric registry, and trace sink from. The
/// standalone overload runs with the config's seed and a network-private
/// registry; the harness/scope overloads thread the experiment's.
struct ScenarioEnv {
  std::uint64_t seed = 0;
  sim::MetricRegistry* metrics = nullptr;
  sim::TraceSink* trace = nullptr;
  sim::Profiler* profiler = nullptr;
};

ScenarioEnv env_of(const ScenarioCommon& common) {
  return {common.seed, nullptr, nullptr, nullptr};
}

ScenarioEnv env_of(sim::ExperimentHarness& harness) {
  return {harness.seed(), &harness.metrics(), harness.trace(),
          harness.profiler()};
}

ScenarioEnv env_of(sim::PointScope& scope) {
  return {scope.root_seed(), &scope.metrics(), scope.trace(),
          scope.profiler()};
}

void check_valid(const std::optional<std::string>& error) {
  if (error) throw std::invalid_argument(*error);
}

/// Shared rejection for scenarios whose stacks are not shard-safe. The
/// chain/BFT/fabric/edge scenarios funnel events through shared in-memory
/// state (mempools, ledgers, orderer queues, federation schedulers) that
/// assumes a single event-execution thread; running them sharded would be
/// a data race, not a speedup. Shard-aware workloads live in the E16/E20
/// benches, which drive net/overlay directly.
std::optional<std::string> reject_sharding(const ScenarioCommon& common,
                                           const char* who) {
  if (common.sim_shards > 1) {
    return std::string(who) +
           ": sim_shards > 1 is not supported — this scenario's stack "
           "shares in-memory state across nodes and is not shard-safe. "
           "Use the shard-aware E16/E20 benches (--sim-shards) for "
           "parallel kernel runs.";
  }
  return std::nullopt;
}

}  // namespace

// ---------------------------------------------------------------------------
// Config validation
// ---------------------------------------------------------------------------

std::optional<std::string> PowScenarioConfig::validate() const {
  if (nodes == 0) return "PowScenarioConfig: nodes must be > 0";
  if (degree == 0 || degree >= nodes) {
    return "PowScenarioConfig: degree must be in [1, nodes-1], got degree=" +
           std::to_string(degree) + " with nodes=" + std::to_string(nodes);
  }
  if (miners > nodes) {
    return "PowScenarioConfig: miners (" + std::to_string(miners) +
           ") must be <= nodes (" + std::to_string(nodes) + ")";
  }
  if (wallets < 2) {
    return "PowScenarioConfig: wallets must be >= 2 (the workload pays one "
           "wallet from another)";
  }
  if (total_hashrate <= 0) {
    return "PowScenarioConfig: total_hashrate must be > 0 or no block is "
           "ever mined";
  }
  if (tx_rate_per_sec < 0) {
    return "PowScenarioConfig: tx_rate_per_sec must be >= 0 (0 disables the "
           "workload)";
  }
  if (common.duration <= 0) return "PowScenarioConfig: duration must be > 0";
  if (common.latency <= 0) {
    return "PowScenarioConfig: common.latency (median one-way delay) must "
           "be > 0";
  }
  if (auto err = common.transport.validate()) {
    return "PowScenarioConfig: " + *err;
  }
  if (auto err = reject_sharding(common, "PowScenarioConfig")) return err;
  return std::nullopt;
}

std::optional<std::string> FabricScenarioConfig::validate() const {
  if (orgs == 0 || peers_per_org == 0) {
    return "FabricScenarioConfig: orgs and peers_per_org must be > 0";
  }
  if (required_endorsements == 0 ||
      required_endorsements > orgs * peers_per_org) {
    return "FabricScenarioConfig: required_endorsements must be in "
           "[1, orgs*peers_per_org], got " +
           std::to_string(required_endorsements) + " with " +
           std::to_string(orgs * peers_per_org) + " peers";
  }
  if (orderer_nodes == 0) {
    return "FabricScenarioConfig: orderer_nodes must be > 0 (Raft group "
           "size, or f for PBFT)";
  }
  if (clients == 0) return "FabricScenarioConfig: clients must be > 0";
  if (tx_rate_per_sec <= 0) {
    return "FabricScenarioConfig: tx_rate_per_sec must be > 0";
  }
  if (block_max_txs == 0) {
    return "FabricScenarioConfig: block_max_txs must be > 0";
  }
  if (block_timeout <= 0) {
    return "FabricScenarioConfig: block_timeout must be > 0 or partial "
           "blocks never cut";
  }
  if (common.duration <= 0) {
    return "FabricScenarioConfig: duration must be > 0";
  }
  if (common.latency <= 0) {
    return "FabricScenarioConfig: common.latency (LAN delay) must be > 0";
  }
  if (auto err = common.transport.validate()) {
    return "FabricScenarioConfig: " + *err;
  }
  if (auto err = reject_sharding(common, "FabricScenarioConfig")) return err;
  return std::nullopt;
}

std::optional<std::string> PartitionedScenarioConfig::validate() const {
  if (partitions == 0) {
    return "PartitionedScenarioConfig: partitions must be > 0";
  }
  if (replicas == 0) {
    return "PartitionedScenarioConfig: replicas must be > 0 (each shard is "
           "a Raft group)";
  }
  if (tx_rate_per_sec <= 0) {
    return "PartitionedScenarioConfig: tx_rate_per_sec must be > 0";
  }
  if (common.duration <= 0) {
    return "PartitionedScenarioConfig: duration must be > 0";
  }
  if (common.latency <= 0) {
    return "PartitionedScenarioConfig: common.latency (LAN delay) must "
           "be > 0";
  }
  if (auto err = common.transport.validate()) {
    return "PartitionedScenarioConfig: " + *err;
  }
  if (auto err = reject_sharding(common, "PartitionedScenarioConfig")) {
    return err;
  }
  return std::nullopt;
}

std::optional<std::string> EdgeScenarioConfig::validate() const {
  if (topology.regions == 0) {
    return "EdgeScenarioConfig: topology.regions must be > 0";
  }
  if (topology.cloud_region >= topology.regions) {
    return "EdgeScenarioConfig: topology.cloud_region must name one of the " +
           std::to_string(topology.regions) + " regions";
  }
  if (topology.users_per_region == 0) {
    return "EdgeScenarioConfig: topology.users_per_region must be > 0";
  }
  if (requests == 0) return "EdgeScenarioConfig: requests must be > 0";
  if (request_interval <= 0) {
    return "EdgeScenarioConfig: request_interval must be > 0";
  }
  if (common.duration <= 0) return "EdgeScenarioConfig: duration must be > 0";
  if (auto err = common.transport.validate()) {
    return "EdgeScenarioConfig: " + *err;
  }
  if (auto err = reject_sharding(common, "EdgeScenarioConfig")) return err;
  return std::nullopt;
}

// ---------------------------------------------------------------------------
// PoW scenario
// ---------------------------------------------------------------------------

namespace {

PowScenarioResult run_pow_impl(const PowScenarioConfig& config,
                               const ScenarioEnv& env) {
  check_valid(config.validate());
  sim::Simulator sim(env.seed);
  sim.set_trace(env.trace);
  sim.set_profiler(env.profiler);
  net::NetworkConfig net_cfg;
  net_cfg.transport = config.common.transport;
  net_cfg.expected_nodes = config.nodes;
  net_cfg.track_spans = config.common.track_spans;
  check_valid(net_cfg.validate());
  net::Network net(sim,
                   std::make_unique<net::LogNormalLatency>(
                       config.common.latency, 0.4),
                   net_cfg, env.metrics);
  sim::Rng rng = sim.rng().fork(0x9C0E);

  // Wallets funded from a premined genesis: many small outputs each so the
  // workload can keep spending while change waits for confirmation.
  std::vector<chain::Wallet> wallets;
  std::vector<std::pair<crypto::PublicKey, chain::Amount>> premine;
  constexpr std::size_t kOutputsPerWallet = 100;
  for (std::size_t i = 0; i < config.wallets; ++i) {
    wallets.push_back(chain::Wallet::from_seed(env.seed * 1000003 + i));
    for (std::size_t k = 0; k < kOutputsPerWallet; ++k) {
      premine.emplace_back(wallets.back().address(),
                           chain::Amount{1'000'000});
    }
  }
  const chain::BlockPtr genesis =
      chain::make_genesis_multi(premine, config.params.initial_difficulty);

  // Full-node mesh.
  std::vector<net::NodeId> addrs;
  for (std::size_t i = 0; i < config.nodes; ++i) {
    addrs.push_back(net.new_node_id());
  }
  const net::AdjacencyList adj =
      net::TopologySpec{.kind = net::TopologySpec::Kind::Random,
                        .nodes = config.nodes,
                        .degree = config.degree}
          .build(rng);
  std::vector<std::unique_ptr<chain::FullNode>> nodes;
  for (std::size_t i = 0; i < config.nodes; ++i) {
    nodes.push_back(std::make_unique<chain::FullNode>(net, addrs[i],
                                                      config.params, genesis));
    nodes.back()->set_compact_relay(config.compact_relay);
    std::vector<net::NodeId> neighbors;
    for (std::size_t j : adj[i]) neighbors.push_back(addrs[j]);
    nodes.back()->connect(std::move(neighbors));
  }

  // Miners on the first `miners` nodes, equal hash-power split.
  std::vector<std::unique_ptr<chain::Miner>> miners;
  const double per_miner =
      config.total_hashrate / static_cast<double>(std::max<std::size_t>(
                                  config.miners, 1));
  for (std::size_t i = 0; i < config.miners && i < nodes.size(); ++i) {
    const chain::Wallet payout =
        chain::Wallet::from_seed(env.seed * 2000003 + i);
    miners.push_back(std::make_unique<chain::Miner>(
        *nodes[i], payout.address(), per_miner));
    miners.back()->start();
  }

  // Workload: exponential inter-arrival, random wallet pays random wallet,
  // submitted at a random node.
  std::uint64_t submitted = 0;
  std::uint64_t tx_nonce = 0;
  auto next_tx = std::make_shared<std::function<void()>>();
  std::weak_ptr<std::function<void()>> weak_next = next_tx;
  *next_tx = [&, weak_next] {
    auto strong = weak_next.lock();
    const std::size_t from = rng.uniform_int(wallets.size());
    std::size_t to = rng.uniform_int(wallets.size());
    if (to == from) to = (to + 1) % wallets.size();
    chain::FullNode& gateway = *nodes[rng.uniform_int(nodes.size())];
    const auto tx = wallets[from].pay(gateway.utxo(), wallets[to].address(),
                                      config.tx_amount, config.tx_fee,
                                      ++tx_nonce, &rng);
    if (tx && gateway.submit_transaction(*tx)) ++submitted;
    const double gap = rng.exponential(config.tx_rate_per_sec);
    if (strong) sim.post(sim::seconds(gap), [strong] { (*strong)(); });
  };
  if (config.tx_rate_per_sec > 0) {
    sim.post(sim::seconds(1), [next_tx] { (*next_tx)(); });
  }

  sim.run_until(config.common.duration);
  for (auto& m : miners) m->stop();

  // Measure on an observer node that does not mine (last node), falling
  // back to node 0 in tiny configurations.
  chain::FullNode& observer =
      *nodes[config.miners < config.nodes ? config.nodes - 1 : 0];
  PowScenarioResult result;
  result.blocks_on_chain = observer.tree().best_height();
  result.stale_blocks = observer.tree().stale_count();
  result.confirmed_txs = observer.confirmed_tx_count();
  result.submitted_txs = submitted;
  const double secs = sim::to_seconds(config.common.duration);
  result.throughput_tps =
      static_cast<double>(result.confirmed_txs) / std::max(secs, 1.0);
  result.mean_block_interval_s =
      result.blocks_on_chain == 0
          ? 0
          : secs / static_cast<double>(result.blocks_on_chain);
  const double total_blocks = static_cast<double>(result.blocks_on_chain) +
                              static_cast<double>(result.stale_blocks);
  result.stale_rate =
      total_blocks == 0
          ? 0
          : static_cast<double>(result.stale_blocks) / total_blocks;
  double depth_sum = 0;
  for (const auto& n : nodes) {
    depth_sum += static_cast<double>(n->stats().reorg_depth_max);
  }
  result.mean_reorg_depth = depth_sum / static_cast<double>(nodes.size());
  return result;
}

}  // namespace

PowScenarioResult run_pow_scenario(const PowScenarioConfig& config) {
  return run_pow_impl(config, env_of(config.common));
}

PowScenarioResult run_pow_scenario(const PowScenarioConfig& config,
                                   sim::ExperimentHarness& harness) {
  return run_pow_impl(config, env_of(harness));
}

PowScenarioResult run_pow_scenario(const PowScenarioConfig& config,
                                   sim::PointScope& scope) {
  return run_pow_impl(config, env_of(scope));
}

// ---------------------------------------------------------------------------
// Fabric scenario
// ---------------------------------------------------------------------------

namespace {

FabricScenarioResult run_fabric_impl(const FabricScenarioConfig& config,
                                     const ScenarioEnv& env) {
  check_valid(config.validate());
  sim::Simulator sim(env.seed);
  sim.set_trace(env.trace);
  sim.set_profiler(env.profiler);
  net::Network net(
      sim,
      std::make_unique<net::LogNormalLatency>(config.common.latency, 0.2),
      net::NetworkConfig{.transport = config.common.transport,
                         .expected_nodes = config.orgs * config.peers_per_org +
                                           config.orderer_nodes +
                                           config.clients + 1},
      env.metrics);
  sim::Rng rng = sim.rng().fork(0xFAB);

  fabric::MembershipService msp(env.seed);
  const fabric::EndorsementPolicy policy{config.required_endorsements};

  auto kv = std::make_shared<fabric::KvContract>();
  std::vector<std::unique_ptr<fabric::FabricPeer>> peers;
  for (std::size_t o = 0; o < config.orgs; ++o) {
    for (std::size_t p = 0; p < config.peers_per_org; ++p) {
      peers.push_back(std::make_unique<fabric::FabricPeer>(
          net, net.new_node_id(), "org" + std::to_string(o), msp, policy,
          env.seed * 31 + o * 97 + p));
      peers.back()->install(kv);
    }
  }
  peers.front()->set_event_source(true);

  std::unique_ptr<fabric::SoloOrderer> solo;
  std::unique_ptr<fabric::RaftOrderer> raft;
  std::unique_ptr<fabric::PbftOrderer> pbft;
  fabric::OrdererConfig ocfg;
  ocfg.block_max_txs = config.block_max_txs;
  ocfg.block_timeout = config.block_timeout;
  fabric::OrderingService* svc = nullptr;
  switch (config.orderer) {
    case OrdererKind::Solo:
      solo = std::make_unique<fabric::SoloOrderer>(net, net.new_node_id(),
                                                   ocfg);
      svc = solo.get();
      break;
    case OrdererKind::Raft:
      raft = std::make_unique<fabric::RaftOrderer>(net, config.orderer_nodes,
                                                   ocfg);
      svc = raft.get();
      break;
    case OrdererKind::Pbft:
      pbft = std::make_unique<fabric::PbftOrderer>(net, config.orderer_nodes,
                                                   ocfg);
      svc = pbft.get();
      break;
  }
  for (const auto& p : peers) svc->register_peer(p->addr());

  std::vector<fabric::FabricPeer*> endorsers;
  for (const auto& p : peers) endorsers.push_back(p.get());

  std::vector<std::unique_ptr<fabric::FabricClient>> clients;
  for (std::size_t c = 0; c < config.clients; ++c) {
    clients.push_back(std::make_unique<fabric::FabricClient>(
        net, net.new_node_id(), policy));
    clients.back()->set_endorsers(endorsers);
    clients.back()->set_orderer(svc);
  }

  sim::Histogram latencies;
  std::uint64_t unique_key = 0;
  auto next_tx = std::make_shared<std::function<void()>>();
  std::weak_ptr<std::function<void()>> weak_next = next_tx;
  *next_tx = [&, weak_next] {
    auto strong = weak_next.lock();
    fabric::FabricClient& client = *clients[rng.uniform_int(clients.size())];
    std::string key;
    if (config.hot_keys > 0) {
      key = "hot" + std::to_string(rng.uniform_int(config.hot_keys));
    } else {
      key = "k" + std::to_string(unique_key++);
    }
    client.invoke("kv", {"put", key, "v"},
                  [&latencies](bool ok, const std::string&,
                               sim::SimDuration latency) {
                    if (ok) latencies.record(sim::to_millis(latency));
                  });
    const double gap = rng.exponential(config.tx_rate_per_sec);
    if (strong) sim.post(sim::seconds(gap), [strong] { (*strong)(); });
  };
  // Let Raft/PBFT settle leadership before offering load.
  sim.post(sim::seconds(2), [next_tx] { (*next_tx)(); });

  sim.run_until(config.common.duration + sim::seconds(2));

  FabricScenarioResult result;
  const auto& stats = peers.front()->stats();
  result.committed = stats.txs_committed;
  result.mvcc_conflicts = stats.mvcc_conflicts;
  for (const auto& c : clients) result.failed += c->failed();
  result.throughput_tps = static_cast<double>(result.committed) /
                          sim::to_seconds(config.common.duration);
  result.latency_p50_ms = latencies.percentile(50);
  result.latency_p99_ms = latencies.percentile(99);
  return result;
}

}  // namespace

FabricScenarioResult run_fabric_scenario(const FabricScenarioConfig& config) {
  return run_fabric_impl(config, env_of(config.common));
}

FabricScenarioResult run_fabric_scenario(const FabricScenarioConfig& config,
                                         sim::ExperimentHarness& harness) {
  return run_fabric_impl(config, env_of(harness));
}

FabricScenarioResult run_fabric_scenario(const FabricScenarioConfig& config,
                                         sim::PointScope& scope) {
  return run_fabric_impl(config, env_of(scope));
}

// ---------------------------------------------------------------------------
// Partitioned cloud commit
// ---------------------------------------------------------------------------

namespace {

PartitionedScenarioResult run_partitioned_impl(
    const PartitionedScenarioConfig& config, const ScenarioEnv& env) {
  check_valid(config.validate());
  sim::Simulator sim(env.seed);
  sim.set_trace(env.trace);
  sim.set_profiler(env.profiler);
  net::Network net(
      sim, std::make_unique<net::ConstantLatency>(config.common.latency),
      net::NetworkConfig{.transport = config.common.transport,
                         .expected_nodes =
                             config.partitions * config.replicas + 1},
      env.metrics);
  sim::Rng rng = sim.rng().fork(0x9A27);

  struct Partition {
    std::vector<std::unique_ptr<bft::RaftNode>> replicas;
    std::unordered_map<std::uint64_t, sim::SimTime> inflight;
    std::uint64_t committed = 0;
  };
  auto partitions = std::make_unique<std::vector<Partition>>();
  partitions->resize(config.partitions);
  sim::Histogram latencies;

  for (std::size_t p = 0; p < config.partitions; ++p) {
    Partition& part = (*partitions)[p];
    std::vector<net::NodeId> addrs;
    for (std::size_t r = 0; r < config.replicas; ++r) {
      addrs.push_back(net.new_node_id());
    }
    for (std::size_t r = 0; r < config.replicas; ++r) {
      part.replicas.push_back(
          std::make_unique<bft::RaftNode>(net, addrs[r], r, bft::RaftConfig{}));
      part.replicas.back()->set_group(addrs);
    }
    // Every replica reports commits; the first (the leader) wins the race
    // and the inflight-map erase deduplicates the rest.
    for (auto& r : part.replicas) {
      r->set_commit_hook(
          [&latencies, &part, &sim](std::uint64_t, const bft::Command& cmd) {
            const auto it = part.inflight.find(cmd.id);
            if (it == part.inflight.end()) return;
            latencies.record(sim::to_millis(sim.now() - it->second));
            part.inflight.erase(it);
            ++part.committed;
          });
    }
    for (auto& r : part.replicas) r->start();
  }

  std::uint64_t next_id = 1;
  auto next_tx = std::make_shared<std::function<void()>>();
  std::weak_ptr<std::function<void()>> weak_next = next_tx;
  *next_tx = [&, weak_next] {
    auto strong = weak_next.lock();
    Partition& part = (*partitions)[rng.uniform_int(partitions->size())];
    bft::RaftNode* leader = nullptr;
    for (auto& r : part.replicas) {
      if (r->is_leader()) {
        leader = r.get();
        break;
      }
    }
    if (leader != nullptr) {
      bft::Command cmd;
      cmd.id = next_id++;
      cmd.wire_bytes = 128;
      part.inflight.emplace(cmd.id, sim.now());
      leader->propose(std::move(cmd));
    }
    const double gap = rng.exponential(config.tx_rate_per_sec);
    if (strong) sim.post(sim::seconds(gap), [strong] { (*strong)(); });
  };
  sim.post(sim::seconds(1), [next_tx] { (*next_tx)(); });

  sim.run_until(config.common.duration + sim::seconds(1));

  PartitionedScenarioResult result;
  for (const auto& part : *partitions) result.committed += part.committed;
  result.throughput_tps = static_cast<double>(result.committed) /
                          sim::to_seconds(config.common.duration);
  result.latency_p50_ms = latencies.percentile(50);
  result.latency_p99_ms = latencies.percentile(99);
  return result;
}

}  // namespace

PartitionedScenarioResult run_partitioned_scenario(
    const PartitionedScenarioConfig& config) {
  return run_partitioned_impl(config, env_of(config.common));
}

PartitionedScenarioResult run_partitioned_scenario(
    const PartitionedScenarioConfig& config, sim::ExperimentHarness& harness) {
  return run_partitioned_impl(config, env_of(harness));
}

PartitionedScenarioResult run_partitioned_scenario(
    const PartitionedScenarioConfig& config, sim::PointScope& scope) {
  return run_partitioned_impl(config, env_of(scope));
}

// ---------------------------------------------------------------------------
// Edge federation (extracted from the E13 bench so the scenario is reusable
// and harness-aware like the others)
// ---------------------------------------------------------------------------

namespace {

EdgeScenarioResult run_edge_impl(const EdgeScenarioConfig& config,
                                 const ScenarioEnv& env) {
  check_valid(config.validate());
  sim::Simulator sim(env.seed);
  sim.set_trace(env.trace);
  sim.set_profiler(env.profiler);
  auto geo_model =
      std::make_unique<net::GeoLatency>(config.geo_jitter_sigma);
  net::GeoLatency* geo = geo_model.get();
  net::NetworkConfig net_cfg;
  net_cfg.transport = config.common.transport;
  // Federation nodes + users, plus the usage ledger's peer/orderer/client.
  net_cfg.expected_nodes =
      1 +
      config.topology.regions * (config.topology.nano_dcs_per_region +
                                 config.topology.users_per_region) +
      3;
  net::Network net(sim, std::move(geo_model), net_cfg, env.metrics);
  edge::Federation fed(net, *geo, config.topology, {});

  // Permissioned trust substrate on the same network: usage records are
  // metered through the energy-trading style contract.
  fabric::MembershipService msp(5);
  fabric::EndorsementPolicy fpolicy{1};
  fabric::FabricPeer peer(net, net.new_node_id(), "federation-registry", msp,
                          fpolicy, 999);
  auto kv = std::make_shared<fabric::KvContract>();
  peer.install(kv);
  peer.set_event_source(true);
  fabric::SoloOrderer orderer(net, net.new_node_id(),
                              fabric::OrdererConfig{});
  orderer.register_peer(peer.addr());
  fabric::FabricClient registry(net, net.new_node_id(), fpolicy);
  registry.set_endorsers({&peer});
  registry.set_orderer(&orderer);

  std::uint64_t usage_records = 0;
  std::uint64_t usage_seq = 0;
  fed.set_usage_recorder([&](const std::string& provider,
                             const std::string& consumer) {
    ++usage_records;
    registry.invoke("kv",
                    {"put",
                     "usage/" + provider + "/" + consumer + "/" +
                         std::to_string(usage_seq++),
                     "1"},
                    [](bool, const std::string&, sim::SimDuration) {});
  });

  sim::Histogram lat;
  std::size_t ok = 0, in_region = 0, in_domain = 0, total = 0;
  sim::Rng rng(env.seed ^ 13);
  const edge::PlacementPolicy policy = config.policy;
  for (std::size_t i = 0; i < config.requests; ++i) {
    sim.schedule(config.request_interval * static_cast<sim::SimDuration>(i),
                 [&, policy] {
                   fed.issue_request(
                       policy, rng,
                       [&](bool success, sim::SimDuration latency,
                           bool region, bool domain) {
                         ++total;
                         if (success) {
                           ++ok;
                           lat.record(sim::to_millis(latency));
                         }
                         if (region) ++in_region;
                         if (domain) ++in_domain;
                       });
                 });
  }
  sim.run_until(config.common.duration);

  EdgeScenarioResult result;
  result.ok = ok;
  result.total = total;
  result.latency_p50_ms = lat.percentile(50);
  result.latency_p99_ms = lat.percentile(99);
  if (total > 0) {
    result.in_region_pct =
        100.0 * static_cast<double>(in_region) / static_cast<double>(total);
    result.in_domain_pct =
        100.0 * static_cast<double>(in_domain) / static_cast<double>(total);
  }
  result.usage_records = usage_records;
  return result;
}

}  // namespace

EdgeScenarioResult run_edge_scenario(const EdgeScenarioConfig& config) {
  return run_edge_impl(config, env_of(config.common));
}

EdgeScenarioResult run_edge_scenario(const EdgeScenarioConfig& config,
                                     sim::ExperimentHarness& harness) {
  return run_edge_impl(config, env_of(harness));
}

EdgeScenarioResult run_edge_scenario(const EdgeScenarioConfig& config,
                                     sim::PointScope& scope) {
  return run_edge_impl(config, env_of(scope));
}

}  // namespace decentnet::core
