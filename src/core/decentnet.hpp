// decentnet — umbrella header: the public API of the library.
//
// A deterministic discrete-event simulation framework reproducing the
// systems analysis of "Please, do not decentralize the Internet with
// (permissionless) blockchains!" (Garcia Lopez, Montresor, Datta —
// ICDCS 2019). See README.md for the architecture overview and DESIGN.md
// for the experiment index.
#pragma once

// Simulation kernel.
#include "sim/metrics.hpp"
#include "sim/rng.hpp"
#include "sim/simulator.hpp"
#include "sim/stats.hpp"
#include "sim/table.hpp"
#include "sim/time.hpp"

// Cryptographic substrate.
#include "crypto/buffer.hpp"
#include "crypto/hash.hpp"
#include "crypto/keys.hpp"
#include "crypto/merkle.hpp"

// Simulated network.
#include "net/churn.hpp"
#include "net/latency.hpp"
#include "net/message.hpp"
#include "net/network.hpp"
#include "net/node_id.hpp"
#include "net/topology.hpp"

// P2P overlays.
#include "overlay/chord.hpp"
#include "overlay/flood.hpp"
#include "overlay/gossip.hpp"
#include "overlay/kademlia.hpp"
#include "overlay/onehop.hpp"
#include "overlay/superpeer.hpp"

// File-sharing workloads and attacks.
#include "p2p/bittorrent.hpp"
#include "p2p/sybil.hpp"
#include "p2p/workload.hpp"

// Permissionless blockchain.
#include "chain/attacks.hpp"
#include "chain/blocktree.hpp"
#include "chain/channels.hpp"
#include "chain/economics.hpp"
#include "chain/ledger.hpp"
#include "chain/light.hpp"
#include "chain/mempool.hpp"
#include "chain/miner.hpp"
#include "chain/node.hpp"
#include "chain/params.hpp"
#include "chain/pos.hpp"
#include "chain/types.hpp"
#include "chain/wallet.hpp"

// Byzantine / crash fault tolerant consensus.
#include "bft/pbft.hpp"
#include "bft/raft.hpp"
#include "bft/rsm.hpp"

// Permissioned (Fabric-style) blockchain.
#include "fabric/channel.hpp"
#include "fabric/chaincode.hpp"
#include "fabric/consortium.hpp"
#include "fabric/contracts.hpp"
#include "fabric/msp.hpp"

// Edge-centric computing.
#include "edge/federation.hpp"

// Analysis toolkit.
#include "core/scenarios.hpp"
#include "core/trilemma.hpp"
