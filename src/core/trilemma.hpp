// Quantifying Buterin's scalability trilemma (§III-C, Problem 2).
//
// The paper quotes the trilemma as: a blockchain can have at most two of
// {scalability, decentralization, security}. This evaluator makes the three
// axes measurable for a family of designs parameterized by shard count and
// per-node capacity:
//
//   scalability       — system throughput relative to one node's capacity
//                       (Buterin's O(n) > O(c) criterion)
//   decentralization  — how cheap it is to run a full validator: the
//                       fraction of the global validation work one node
//                       must perform (1 = everyone validates everything)
//   security          — the fraction of the system's total honest resources
//                       an attacker must corrupt to control one shard
#pragma once

#include <cstddef>
#include <vector>

namespace decentnet::core {

struct TrilemmaDesign {
  std::size_t shards = 1;          // 1 = full-broadcast chain
  std::size_t validators = 1000;   // total ecosystem validators
  double node_capacity_tps = 10;   // what one commodity node can validate
};

struct TrilemmaPoint {
  TrilemmaDesign design;
  double throughput_tps = 0;       // shards * node_capacity
  double scalability = 0;          // throughput / node_capacity (O(n)/O(c))
  double per_node_load = 0;        // fraction of global work per validator
  double decentralization = 0;     // 1 / per_node_load_relative (capped 1)
  double security = 0;             // resource fraction to capture one shard
};

/// Evaluate one design point.
TrilemmaPoint evaluate_trilemma(const TrilemmaDesign& design);

/// Sweep shard counts for a fixed ecosystem; the returned series shows the
/// "pick two" frontier: scalability rises with shards exactly as security
/// falls, while shards = 1 keeps security and decentralization but pins
/// throughput at O(c).
std::vector<TrilemmaPoint> trilemma_sweep(std::size_t validators,
                                          double node_capacity_tps,
                                          const std::vector<std::size_t>& shard_counts);

}  // namespace decentnet::core
