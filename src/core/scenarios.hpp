// End-to-end scenario runners: each assembles a complete system (network,
// nodes, workload), runs it for a simulated duration, and returns the
// measurements the paper's claims are phrased in. Benches stay thin wrappers
// over these.
//
// Every runner comes in three flavours:
//   run_*_scenario(cfg)            — standalone; seed from cfg.common.seed.
//   run_*_scenario(cfg, harness)   — seed/metrics/trace from the harness.
//   run_*_scenario(cfg, scope)     — inside run_points(): root seed, the
//                                    point-private registry, the point trace.
// The harness/scope overloads exist so benches stop hand-plumbing
// seed/trace/registry; cfg.common.seed is ignored there.
#pragma once

#include <cstdint>
#include <optional>
#include <string>

#include "chain/params.hpp"
#include "edge/federation.hpp"
#include "net/transport.hpp"
#include "sim/time.hpp"

namespace decentnet::sim {
class ExperimentHarness;
class PointScope;
}  // namespace decentnet::sim

namespace decentnet::core {

/// Knobs every scenario shares, embedded as `.common` in each
/// *ScenarioConfig (per-scenario defaults come from the member
/// initializer). `latency` is the scenario's one-way delay scale — the
/// median of the wide-area lognormal for PoW, the LAN constant for the
/// consortium/cloud scenarios; the edge scenario uses a geographic model
/// and ignores it.
struct ScenarioCommon {
  std::uint64_t seed = 42;
  sim::SimDuration duration = 0;
  sim::SimDuration latency = 0;
  /// Enable causal span tracking on the scenario's Network: every relayed
  /// message carries a (root, parent-hop) span, traces gain "span" records,
  /// and span-derived histograms (relay-tree depth, lookup path length)
  /// come alive. Off by default — spans cost a few ns per delivery and
  /// change trace bytes, so golden-trace comparisons pin this off.
  bool track_spans = false;
  /// Shard the scenario's kernel this many ways (sim::ShardedKernel).
  /// Only shard-aware scenarios accept > 1 — the chain/BFT/fabric stacks
  /// funnel through shared in-memory state (mempools, ledgers, orderer
  /// queues) that is not shard-safe, so their validate() rejects it with
  /// an actionable error. 1 (the default) is the legacy single-kernel
  /// path, bit-for-bit.
  std::size_t sim_shards = 1;
  /// Worker threads for a sharded kernel's windows. Ignored when
  /// sim_shards == 1. Results never depend on this — it is purely a
  /// wall-clock knob (the determinism contract in sim/sharding.hpp).
  std::size_t sim_threads = 1;
  /// The transport model every scenario's Network runs (mode, default
  /// LinkSpec, Tcp constants — see net/transport.hpp). Defaults to pure
  /// latency; scenarios validate it uniformly on entry.
  net::TransportConfig transport;
};

// ---------------------------------------------------------------------------
// Permissionless PoW chain under load (E5, E10)
// ---------------------------------------------------------------------------

struct PowScenarioConfig {
  chain::ChainParams params = chain::ChainParams::bitcoin();
  ScenarioCommon common{42, sim::hours(2), sim::millis(80)};
  std::size_t nodes = 40;            // full nodes forming the gossip mesh
  std::size_t degree = 6;            // mesh degree
  std::size_t miners = 10;           // subset of nodes that mine
  double total_hashrate = 1e9;       // hashes/s across all miners
  std::size_t wallets = 64;
  double tx_rate_per_sec = 8.0;      // offered load
  chain::Amount tx_amount = 1000;
  chain::Amount tx_fee = 10;
  /// Relay blocks as header+txids (BIP152-style) instead of full bodies.
  /// Link capacity / congestion modeling moved to common.transport.
  bool compact_relay = false;

  /// Actionable description of the first invalid field, or nullopt when the
  /// config is runnable. Runners reject invalid configs on entry.
  std::optional<std::string> validate() const;
};

struct PowScenarioResult {
  std::uint64_t blocks_on_chain = 0;
  std::uint64_t stale_blocks = 0;
  std::uint64_t confirmed_txs = 0;   // on the observer's active chain
  std::uint64_t submitted_txs = 0;
  double throughput_tps = 0;
  double mean_block_interval_s = 0;
  double stale_rate = 0;
  double mean_reorg_depth = 0;
};

PowScenarioResult run_pow_scenario(const PowScenarioConfig& config);
PowScenarioResult run_pow_scenario(const PowScenarioConfig& config,
                                   sim::ExperimentHarness& harness);
PowScenarioResult run_pow_scenario(const PowScenarioConfig& config,
                                   sim::PointScope& scope);

// ---------------------------------------------------------------------------
// Permissioned (Fabric) channel under load (E11, E12)
// ---------------------------------------------------------------------------

enum class OrdererKind : std::uint8_t { Solo, Raft, Pbft };

struct FabricScenarioConfig {
  ScenarioCommon common{42, sim::minutes(2), sim::millis(2)};
  std::size_t orgs = 4;
  std::size_t peers_per_org = 1;
  std::size_t required_endorsements = 2;
  OrdererKind orderer = OrdererKind::Raft;
  std::size_t orderer_nodes = 3;  // Raft group size, or f for PBFT
  std::size_t clients = 8;
  double tx_rate_per_sec = 200.0;  // offered load across all clients
  std::size_t block_max_txs = 50;
  sim::SimDuration block_timeout = sim::millis(250);
  /// If nonzero, each client hammers a shared set of hot keys this wide —
  /// drives the MVCC conflict rate.
  std::size_t hot_keys = 0;

  std::optional<std::string> validate() const;
};

struct FabricScenarioResult {
  std::uint64_t committed = 0;
  std::uint64_t failed = 0;
  std::uint64_t mvcc_conflicts = 0;
  double throughput_tps = 0;
  double latency_p50_ms = 0;
  double latency_p99_ms = 0;
};

FabricScenarioResult run_fabric_scenario(const FabricScenarioConfig& config);
FabricScenarioResult run_fabric_scenario(const FabricScenarioConfig& config,
                                         sim::ExperimentHarness& harness);
FabricScenarioResult run_fabric_scenario(const FabricScenarioConfig& config,
                                         sim::PointScope& scope);

// ---------------------------------------------------------------------------
// Partitioned cloud commit (the "VISA" baseline of E5)
// ---------------------------------------------------------------------------

struct PartitionedScenarioConfig {
  ScenarioCommon common{42, sim::seconds(30), sim::millis(1)};
  std::size_t partitions = 8;       // shared-nothing shards
  std::size_t replicas = 3;         // Raft replicas per partition
  double tx_rate_per_sec = 20000;   // offered load across partitions

  std::optional<std::string> validate() const;
};

struct PartitionedScenarioResult {
  std::uint64_t committed = 0;
  double throughput_tps = 0;
  double latency_p50_ms = 0;
  double latency_p99_ms = 0;
};

PartitionedScenarioResult run_partitioned_scenario(
    const PartitionedScenarioConfig& config);
PartitionedScenarioResult run_partitioned_scenario(
    const PartitionedScenarioConfig& config, sim::ExperimentHarness& harness);
PartitionedScenarioResult run_partitioned_scenario(
    const PartitionedScenarioConfig& config, sim::PointScope& scope);

// ---------------------------------------------------------------------------
// Edge federation with a permissioned usage ledger (E13)
// ---------------------------------------------------------------------------

struct EdgeScenarioConfig {
  /// Latency is geographic (net::GeoLatency), so common.latency is unused.
  ScenarioCommon common{99, sim::minutes(5), 0};
  edge::Federation::Topology topology;
  edge::PlacementPolicy policy = edge::PlacementPolicy::EdgeFirst;
  double geo_jitter_sigma = 0.15;
  std::size_t requests = 2000;
  sim::SimDuration request_interval = sim::millis(10);

  std::optional<std::string> validate() const;
};

struct EdgeScenarioResult {
  std::uint64_t ok = 0;
  std::uint64_t total = 0;
  double latency_p50_ms = 0;
  double latency_p99_ms = 0;
  double in_region_pct = 0;
  double in_domain_pct = 0;
  /// Cross-domain usage records settled on the federation's permissioned
  /// channel (a FabricPeer + solo orderer sharing the network).
  std::uint64_t usage_records = 0;
};

EdgeScenarioResult run_edge_scenario(const EdgeScenarioConfig& config);
EdgeScenarioResult run_edge_scenario(const EdgeScenarioConfig& config,
                                     sim::ExperimentHarness& harness);
EdgeScenarioResult run_edge_scenario(const EdgeScenarioConfig& config,
                                     sim::PointScope& scope);

}  // namespace decentnet::core
