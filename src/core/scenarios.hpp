// End-to-end scenario runners: each assembles a complete system (network,
// nodes, workload), runs it for a simulated duration, and returns the
// measurements the paper's claims are phrased in. Benches stay thin wrappers
// over these.
#pragma once

#include <cstdint>

#include "chain/params.hpp"
#include "sim/time.hpp"

namespace decentnet::core {

// ---------------------------------------------------------------------------
// Permissionless PoW chain under load (E5, E10)
// ---------------------------------------------------------------------------

struct PowScenarioConfig {
  chain::ChainParams params = chain::ChainParams::bitcoin();
  std::size_t nodes = 40;            // full nodes forming the gossip mesh
  std::size_t degree = 6;            // mesh degree
  std::size_t miners = 10;           // subset of nodes that mine
  double total_hashrate = 1e9;       // hashes/s across all miners
  std::size_t wallets = 64;
  double tx_rate_per_sec = 8.0;      // offered load
  chain::Amount tx_amount = 1000;
  chain::Amount tx_fee = 10;
  sim::SimDuration duration = sim::hours(2);
  /// Median one-way wide-area delay between nodes.
  sim::SimDuration median_latency = sim::millis(80);
  /// Relay blocks as header+txids (BIP152-style) instead of full bodies.
  bool compact_relay = false;
  /// Model per-node link capacity (serialization delay + sender queueing).
  bool model_bandwidth = false;
  double uplink_bps = 10e6 / 8;    // bytes/s when model_bandwidth is on
  double downlink_bps = 50e6 / 8;
  std::uint64_t seed = 42;
};

struct PowScenarioResult {
  std::uint64_t blocks_on_chain = 0;
  std::uint64_t stale_blocks = 0;
  std::uint64_t confirmed_txs = 0;   // on the observer's active chain
  std::uint64_t submitted_txs = 0;
  double throughput_tps = 0;
  double mean_block_interval_s = 0;
  double stale_rate = 0;
  double mean_reorg_depth = 0;
};

PowScenarioResult run_pow_scenario(const PowScenarioConfig& config);

// ---------------------------------------------------------------------------
// Permissioned (Fabric) channel under load (E11, E12)
// ---------------------------------------------------------------------------

enum class OrdererKind : std::uint8_t { Solo, Raft, Pbft };

struct FabricScenarioConfig {
  std::size_t orgs = 4;
  std::size_t peers_per_org = 1;
  std::size_t required_endorsements = 2;
  OrdererKind orderer = OrdererKind::Raft;
  std::size_t orderer_nodes = 3;  // Raft group size, or f for PBFT
  std::size_t clients = 8;
  double tx_rate_per_sec = 200.0;  // offered load across all clients
  std::size_t block_max_txs = 50;
  sim::SimDuration block_timeout = sim::millis(250);
  sim::SimDuration duration = sim::minutes(2);
  sim::SimDuration lan_latency = sim::millis(2);  // consortium datacenters
  std::uint64_t seed = 42;
  /// If nonzero, each client hammers a shared set of hot keys this wide —
  /// drives the MVCC conflict rate.
  std::size_t hot_keys = 0;
};

struct FabricScenarioResult {
  std::uint64_t committed = 0;
  std::uint64_t failed = 0;
  std::uint64_t mvcc_conflicts = 0;
  double throughput_tps = 0;
  double latency_p50_ms = 0;
  double latency_p99_ms = 0;
};

FabricScenarioResult run_fabric_scenario(const FabricScenarioConfig& config);

// ---------------------------------------------------------------------------
// Partitioned cloud commit (the "VISA" baseline of E5)
// ---------------------------------------------------------------------------

struct PartitionedScenarioConfig {
  std::size_t partitions = 8;       // shared-nothing shards
  std::size_t replicas = 3;         // Raft replicas per partition
  double tx_rate_per_sec = 20000;   // offered load across partitions
  sim::SimDuration duration = sim::seconds(30);
  sim::SimDuration lan_latency = sim::millis(1);
  std::uint64_t seed = 42;
};

struct PartitionedScenarioResult {
  std::uint64_t committed = 0;
  double throughput_tps = 0;
  double latency_p50_ms = 0;
  double latency_p99_ms = 0;
};

PartitionedScenarioResult run_partitioned_scenario(
    const PartitionedScenarioConfig& config);

}  // namespace decentnet::core
