#include "core/trilemma.hpp"

#include <algorithm>

namespace decentnet::core {

TrilemmaPoint evaluate_trilemma(const TrilemmaDesign& design) {
  TrilemmaPoint p;
  p.design = design;
  const double shards = static_cast<double>(std::max<std::size_t>(
      design.shards, 1));
  // Each shard processes what one node can validate; shards run in parallel.
  p.throughput_tps = shards * design.node_capacity_tps;
  p.scalability = p.throughput_tps / design.node_capacity_tps;  // = shards
  // A validator assigned to one shard sees 1/shards of global traffic; on a
  // full-broadcast chain it sees all of it.
  p.per_node_load = 1.0 / shards;
  // Decentralization: a node needs capacity throughput/shards; relative to
  // keeping up with the whole system, shards relieve the node — but note
  // the system throughput also grew, so absolute load per node is constant
  // here, and what actually degrades is security:
  p.decentralization = 1.0;  // per-node cost stays at one node's capacity
  // Security: honest resources are spread across shards; corrupting one
  // shard needs a majority of 1/shards of the total.
  p.security = 0.5 / shards;
  return p;
}

std::vector<TrilemmaPoint> trilemma_sweep(
    std::size_t validators, double node_capacity_tps,
    const std::vector<std::size_t>& shard_counts) {
  std::vector<TrilemmaPoint> out;
  for (std::size_t s : shard_counts) {
    TrilemmaDesign d;
    d.shards = s;
    d.validators = validators;
    d.node_capacity_tps = node_capacity_tps;
    out.push_back(evaluate_trilemma(d));
  }
  return out;
}

}  // namespace decentnet::core
