#include "edge/federation.hpp"

#include <algorithm>

namespace decentnet::edge {

namespace em = edge_msg;

// ---------------------------------------------------------------------------
// EdgeNode
// ---------------------------------------------------------------------------

EdgeNode::EdgeNode(net::Network& net, net::NodeId addr, DeviceTier tier,
                   std::string domain, std::size_t region,
                   const EdgeConfig& config)
    : net_(net),
      sim_(net.simulator()),
      addr_(addr),
      tier_(tier),
      domain_(std::move(domain)),
      region_(region),
      reply_bytes_(config.reply_bytes) {
  switch (tier) {
    case DeviceTier::Cloud:
      profile_ = config.cloud;
      break;
    case DeviceTier::NanoDC:
      profile_ = config.nano_dc;
      break;
    case DeviceTier::Personal:
      profile_ = config.personal;
      break;
  }
  slot_free_at_.assign(profile_.slots, 0);
  net_.attach(addr_, this);
}

EdgeNode::~EdgeNode() { net_.detach(addr_); }

void EdgeNode::handle_message(const net::Message& msg) {
  if (!msg.is<em::ServiceRequest>()) return;
  const auto& req = net::payload_as<em::ServiceRequest>(msg);
  // Pick the earliest-free slot; queue behind it if all are busy.
  auto earliest = std::min_element(slot_free_at_.begin(), slot_free_at_.end());
  const sim::SimTime start = std::max(sim_.now(), *earliest);
  const sim::SimTime done = start + profile_.service_time;
  *earliest = done;
  ++served_;
  const net::NodeId requester = msg.from;
  const std::uint64_t id = req.id;
  sim_.post_at(
      done,
      [this, requester, id] {
        net_.send(addr_, requester, em::ServiceReply{id}, reply_bytes_);
      },
      "edge/service_done");
}

// ---------------------------------------------------------------------------
// UserAgent
// ---------------------------------------------------------------------------

UserAgent::UserAgent(net::Network& net, net::NodeId addr, std::string domain,
                     std::size_t region, const EdgeConfig& config)
    : net_(net),
      sim_(net.simulator()),
      addr_(addr),
      domain_(std::move(domain)),
      region_(region),
      config_(config),
      next_id_(addr.value << 20) {
  net_.attach(addr_, this);
}

UserAgent::~UserAgent() { net_.detach(addr_); }

void UserAgent::request(EdgeNode& target, DoneHook done) {
  const std::uint64_t id = ++next_id_;
  Pending p;
  p.done = std::move(done);
  p.started = sim_.now();
  p.timeout = sim_.schedule(config_.request_timeout, [this, id] {
    const auto it = pending_.find(id);
    if (it == pending_.end()) return;
    auto done = std::move(it->second.done);
    const sim::SimDuration elapsed = sim_.now() - it->second.started;
    pending_.erase(it);
    if (done) done(false, elapsed);
  });
  pending_.emplace(id, std::move(p));
  net_.send(addr_, target.addr(), em::ServiceRequest{id},
            config_.request_bytes);
}

void UserAgent::handle_message(const net::Message& msg) {
  if (!msg.is<em::ServiceReply>()) return;
  const auto& r = net::payload_as<em::ServiceReply>(msg);
  const auto it = pending_.find(r.id);
  if (it == pending_.end()) return;
  auto done = std::move(it->second.done);
  it->second.timeout.cancel();
  const sim::SimDuration elapsed = sim_.now() - it->second.started;
  pending_.erase(it);
  if (done) done(true, elapsed);
}

// ---------------------------------------------------------------------------
// Federation
// ---------------------------------------------------------------------------

Federation::Federation(net::Network& net, net::GeoLatency& geo,
                       Topology topology, EdgeConfig config)
    : net_(net), topology_(topology), config_(config) {
  // The hyperscaler cloud.
  const net::NodeId cloud_addr = net.new_node_id();
  geo.assign(cloud_addr, topology.cloud_region);
  cloud_ = std::make_unique<EdgeNode>(net, cloud_addr, DeviceTier::Cloud,
                                      "hyperscaler", topology.cloud_region,
                                      config);
  // Nano-DCs: each belongs to a per-region organization ("org-R-K").
  for (std::size_t r = 0; r < topology.regions; ++r) {
    for (std::size_t k = 0; k < topology.nano_dcs_per_region; ++k) {
      const net::NodeId addr = net.new_node_id();
      geo.assign(addr, r);
      nodes_.push_back(std::make_unique<EdgeNode>(
          net, addr, DeviceTier::NanoDC,
          "org-" + std::to_string(r) + "-" + std::to_string(k), r, config));
    }
  }
  // Users, spread across regions; each user's home domain is its region org.
  for (std::size_t r = 0; r < topology.regions; ++r) {
    for (std::size_t u = 0; u < topology.users_per_region; ++u) {
      const net::NodeId addr = net.new_node_id();
      geo.assign(addr, r);
      users_.push_back(std::make_unique<UserAgent>(
          net, addr, "org-" + std::to_string(r) + "-0", r, config));
    }
  }
}

EdgeNode* Federation::nearest_nano(std::size_t region) {
  for (auto& n : nodes_) {
    if (n->region() == region) return n.get();
  }
  return nodes_.empty() ? nullptr : nodes_.front().get();
}

void Federation::issue_request(PlacementPolicy policy, sim::Rng& rng,
                               RequestHook done) {
  UserAgent& user = *users_[rng.uniform_int(users_.size())];
  EdgeNode* target = cloud_.get();
  if (policy == PlacementPolicy::EdgeFirst &&
      !rng.chance(topology_.cloud_fallback_fraction)) {
    // Load-balance between the region's nano-DCs.
    std::vector<EdgeNode*> local;
    for (auto& n : nodes_) {
      if (n->region() == user.region()) local.push_back(n.get());
    }
    if (!local.empty()) {
      target = local[rng.uniform_int(local.size())];
    }
  }
  const bool in_region = target->region() == user.region();
  const bool in_domain = target->domain() == user.domain();
  if (!in_domain && target->tier() == DeviceTier::NanoDC && recorder_) {
    recorder_(target->domain(), user.domain());
  }
  user.request(*target, [done = std::move(done), in_region, in_domain](
                            bool ok, sim::SimDuration latency) {
    if (done) done(ok, latency, in_region, in_domain);
  });
}

}  // namespace decentnet::edge
