// Edge-centric computing (§V): a federation of cloud datacenters, nano
// datacenters and personal devices spanning administrative domains.
//
// Requests from users are served under a placement policy (cloud-only versus
// edge-first); the federation records cross-domain usage through a pluggable
// recorder, which examples wire to a permissioned-channel contract — the
// paper's "permissioned blockchains provide decentralized trust, edge
// provides decentralized control" composition. E13 measures request latency
// and control locality for both policies on the same topology.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "net/latency.hpp"
#include "net/message.hpp"
#include "net/network.hpp"
#include "sim/metrics.hpp"
#include "sim/simulator.hpp"

namespace decentnet::edge {

enum class DeviceTier : std::uint8_t { Cloud, NanoDC, Personal };

/// Per-request compute time by tier (queueing: one request at a time per
/// service slot; cloud has many slots, a nano-DC a few, a device one).
struct TierProfile {
  sim::SimDuration service_time = sim::millis(2);
  std::size_t slots = 1;
};

struct EdgeConfig {
  TierProfile cloud{sim::millis(1), 64};
  TierProfile nano_dc{sim::millis(2), 8};
  TierProfile personal{sim::millis(5), 1};
  std::size_t request_bytes = 512;
  std::size_t reply_bytes = 2048;
  sim::SimDuration request_timeout = sim::seconds(10);
};

namespace edge_msg {
struct ServiceRequest {
  std::uint64_t id;
};
struct ServiceReply {
  std::uint64_t id;
};
}  // namespace edge_msg

/// A serving node (cloud DC, nano-DC or personal device).
class EdgeNode final : public net::Host {
 public:
  EdgeNode(net::Network& net, net::NodeId addr, DeviceTier tier,
           std::string domain, std::size_t region, const EdgeConfig& config);
  ~EdgeNode() override;

  EdgeNode(const EdgeNode&) = delete;
  EdgeNode& operator=(const EdgeNode&) = delete;

  net::NodeId addr() const { return addr_; }
  DeviceTier tier() const { return tier_; }
  const std::string& domain() const { return domain_; }
  std::size_t region() const { return region_; }
  std::uint64_t served() const { return served_; }

  void handle_message(const net::Message& msg) override;

 private:
  net::Network& net_;
  sim::Simulator& sim_;
  net::NodeId addr_;
  DeviceTier tier_;
  std::string domain_;
  std::size_t region_;
  TierProfile profile_;
  std::size_t reply_bytes_;
  std::vector<sim::SimTime> slot_free_at_;
  std::uint64_t served_ = 0;
};

/// A user issuing requests and recording end-to-end latency.
class UserAgent final : public net::Host {
 public:
  using DoneHook = std::function<void(bool ok, sim::SimDuration latency)>;

  UserAgent(net::Network& net, net::NodeId addr, std::string domain,
            std::size_t region, const EdgeConfig& config);
  ~UserAgent() override;

  net::NodeId addr() const { return addr_; }
  const std::string& domain() const { return domain_; }
  std::size_t region() const { return region_; }

  void request(EdgeNode& target, DoneHook done);

  void handle_message(const net::Message& msg) override;

 private:
  struct Pending {
    DoneHook done;
    sim::SimTime started = 0;
    sim::EventHandle timeout;
  };

  net::Network& net_;
  sim::Simulator& sim_;
  net::NodeId addr_;
  std::string domain_;
  std::size_t region_;
  EdgeConfig config_;
  std::unordered_map<std::uint64_t, Pending> pending_;
  std::uint64_t next_id_;
};

enum class PlacementPolicy : std::uint8_t {
  CloudOnly,   // every request goes to the (remote) cloud DC
  EdgeFirst,   // nearest nano-DC in-region; cloud as fallback
};

/// Builder + request router for a whole federation on one Network.
class Federation {
 public:
  struct Topology {
    std::size_t regions = 5;
    std::size_t cloud_region = 0;      // where the hyperscaler lives
    std::size_t nano_dcs_per_region = 2;
    std::size_t users_per_region = 20;
    /// Fraction of requests needing data the local domain lacks (these go to
    /// the cloud even under EdgeFirst — nothing is fully disconnected).
    double cloud_fallback_fraction = 0.1;
  };

  Federation(net::Network& net, net::GeoLatency& geo, Topology topology,
             EdgeConfig config);

  /// Route one request from a random user under `policy`. The callback gets
  /// (ok, latency, served_in_region, served_in_domain).
  using RequestHook =
      std::function<void(bool, sim::SimDuration, bool, bool)>;
  void issue_request(PlacementPolicy policy, sim::Rng& rng, RequestHook done);

  /// Recorder for cross-domain usage (wired to a ledger in examples).
  using UsageRecorder = std::function<void(const std::string& provider_domain,
                                           const std::string& user_domain)>;
  void set_usage_recorder(UsageRecorder recorder) {
    recorder_ = std::move(recorder);
  }

  std::size_t node_count() const { return nodes_.size(); }
  std::size_t user_count() const { return users_.size(); }
  EdgeNode& cloud() { return *cloud_; }
  const std::vector<std::unique_ptr<EdgeNode>>& nodes() const {
    return nodes_;
  }

 private:
  EdgeNode* nearest_nano(std::size_t region);

  net::Network& net_;
  Topology topology_;
  EdgeConfig config_;
  std::unique_ptr<EdgeNode> cloud_;
  std::vector<std::unique_ptr<EdgeNode>> nodes_;   // nano-DCs
  std::vector<std::unique_ptr<UserAgent>> users_;
  UsageRecorder recorder_;
};

}  // namespace decentnet::edge
