// Kademlia DHT (Maymounkov & Mazières, 2002) over the simulated network.
//
// Implements the full iterative protocol: 256-bit XOR metric, k-buckets with
// least-recently-seen eviction pings, alpha-parallel iterative FIND_NODE /
// FIND_VALUE lookups with per-RPC timeouts, STORE replication to the k
// closest nodes, and periodic bucket refresh. Unresponsive ("dead") contacts
// are what make open DHT lookups slow in practice — the paper's E1 claim —
// so the timeout machinery here is deliberately faithful.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "crypto/hash.hpp"
#include "net/message.hpp"
#include "net/network.hpp"
#include "sim/metrics.hpp"

namespace decentnet::overlay {

using Key = crypto::Hash256;

struct Contact {
  Key id;
  net::NodeId addr;

  bool operator==(const Contact& o) const { return addr == o.addr; }
};

struct KademliaConfig {
  std::size_t k = 8;               // bucket size / replication factor
  std::size_t alpha = 3;           // lookup parallelism
  sim::SimDuration rpc_timeout = sim::seconds(1.5);
  /// Actionable description of the first invalid field, or nullopt when the
  /// config is usable. KademliaNode's constructor rejects invalid configs.
  std::optional<std::string> validate() const;
  /// Extra attempts per shortlist contact after a timed-out lookup RPC.
  /// 0 (the default, and the classic behavior) fails the contact on its
  /// first timeout; 1-2 rides out transient loss bursts / latency spikes at
  /// the cost of slower failure detection on genuinely dead peers.
  std::size_t rpc_retries = 0;
  sim::SimDuration refresh_interval = sim::minutes(15);
  std::size_t message_bytes = 120;  // nominal wire size per RPC
  /// Spec-correct Kademlia pings the least-recently-seen contact before
  /// replacing it (biasing tables toward proven-reachable peers). Many real
  /// BitTorrent-DHT clients skipped the ping and just replaced — letting
  /// send-only NATed peers pollute tables (E1's slow-lookup mechanism).
  bool naive_eviction = false;
  /// Spec-correct clients drop a contact after an RPC timeout. Naive ones
  /// kept "questionable" entries around and retried them — the second half
  /// of the BT-DHT slow-lookup pathology.
  bool evict_on_failure = true;
};

namespace kademlia_msg {
struct FindNode;
struct FindNodeReply;
struct Store;
}  // namespace kademlia_msg

/// Result of an iterative lookup.
struct LookupResult {
  bool found_value = false;
  std::optional<std::string> value;
  std::vector<Contact> closest;    // k closest contacts discovered
  std::size_t rpcs_sent = 0;
  std::size_t timeouts = 0;
  /// Iterative depth: 1 = answered from contacts we already knew, each
  /// reply-discovered contact adds one (the E1/E20 hop-count metric).
  std::size_t hops = 0;
  sim::SimDuration elapsed = 0;
};

class KademliaNode final : public net::Host {
 public:
  using LookupCallback = std::function<void(LookupResult)>;

  /// `id` defaults to sha256(addr); sybil attackers pass a chosen id.
  KademliaNode(net::Network& net, net::NodeId addr, KademliaConfig config,
               std::optional<Key> id = std::nullopt);
  ~KademliaNode() override;

  KademliaNode(const KademliaNode&) = delete;
  KademliaNode& operator=(const KademliaNode&) = delete;

  const Key& id() const { return id_; }
  net::NodeId addr() const { return addr_; }
  bool online() const { return online_; }

  /// Attach to the network and populate the routing table via a lookup of
  /// our own id through `bootstrap` (may be empty for the first node).
  void join(const std::vector<Contact>& bootstrap);

  /// Detach (churn). Pending lookups fail by timeout at the callers.
  void leave();

  /// Iterative FIND_NODE toward `target`.
  void lookup(const Key& target, LookupCallback cb);

  /// Store `value` under `key` on the k closest nodes.
  void store(const Key& key, std::string value,
             std::function<void(std::size_t replicas)> cb = {});

  /// Iterative FIND_VALUE.
  void find_value(const Key& key, LookupCallback cb);

  /// Routing-table snapshot (for tests and attack analysis).
  std::vector<Contact> routing_table() const;
  std::size_t routing_table_size() const;

  /// Local portion of the DHT keyspace.
  const std::unordered_map<Key, std::string, crypto::Hash256Hasher>& storage()
      const {
    return storage_;
  }

  /// Force-insert a contact (tests; also used by attack drivers).
  void observe(const Contact& c) { touch_contact(c); }

  void handle_message(const net::Message& msg) override;

 private:
  struct Bucket {
    std::vector<Contact> contacts;          // ordered: least recently seen first
    std::vector<Contact> replacement_cache;
    bool eviction_ping_pending = false;     // throttle: one probe per bucket
  };

  /// Sparse routing table: only ~log2(N) of the 256 prefix-length buckets
  /// ever hold a contact, so a dense vector<Bucket>(256) wasted ~14 KB per
  /// node — the dominant memory cost at 100k nodes. Slots stay sorted by
  /// index and are never erased; callbacks re-resolve by index because
  /// insertion reallocates.
  struct BucketSlot {
    std::uint16_t index;
    Bucket bucket;
  };

  struct PendingRpc {
    std::function<void(bool ok, const net::Message*)> on_done;
    sim::EventHandle timeout;
  };

  struct LookupState;

  // Routing-table maintenance.
  int bucket_index(const Key& other) const;
  Bucket* find_bucket(int index);
  const Bucket* find_bucket(int index) const;
  Bucket& bucket_for(int index);
  void touch_contact(const Contact& c);
  void evict_or_keep(int bucket, const Contact& candidate);
  std::vector<Contact> closest_contacts(const Key& target,
                                        std::size_t count) const;

  // RPC plumbing. The request payload is shared by every recipient of one
  // lookup; only the nonce (Message::cookie) differs per send.
  sim::Shared<kademlia_msg::FindNode> make_request(bool find_value,
                                                   const Key& target) const;
  std::uint64_t send_rpc(const Contact& to,
                         const sim::Shared<kademlia_msg::FindNode>& request,
                         std::function<void(bool, const net::Message*)> cb,
                         net::Span span = {});
  void fail_contact(const Contact& c);

  // Iterative lookup engine (shared by lookup/find_value/store).
  void start_lookup(const Key& target, bool want_value, LookupCallback cb);
  void lookup_step(const std::shared_ptr<LookupState>& state);
  void finish_lookup(const std::shared_ptr<LookupState>& state);

  void refresh_buckets();

  net::Network& net_;
  sim::Simulator& sim_;
  net::NodeId addr_;
  Key id_;
  KademliaConfig config_;
  sim::Counter& m_lookups_;      // finished iterative lookups (all nodes)
  sim::Counter& m_rpcs_;         // FIND_NODE/FIND_VALUE RPCs sent
  sim::Counter& m_rpc_timeouts_; // RPCs that expired unanswered
  // Span-derived: deepest hop in each finished lookup's request/reply chain.
  // Bound only while the network tracks spans (null otherwise).
  sim::Histogram* m_path_len_;
  bool online_ = false;
  std::vector<BucketSlot> buckets_;  // sparse, sorted by prefix length
  std::unordered_map<Key, std::string, crypto::Hash256Hasher> storage_;
  std::unordered_map<std::uint64_t, PendingRpc> pending_;
  std::uint64_t next_nonce_ = 1;
  sim::EventHandle refresh_timer_;
};

/// Wire messages (public so attack drivers in p2p/ can craft them). The RPC
/// nonce rides in Message::cookie rather than the payload, so one FindNode
/// allocation serves a whole alpha-parallel fan-out; replies echo the
/// request's cookie.
namespace kademlia_msg {
struct FindNode {
  Key target;
  Contact sender;
  bool want_value;
};
struct FindNodeReply {
  Contact sender;
  bool has_value;
  std::string value;
  std::vector<Contact> contacts;
};
struct Store {
  Key key;
  std::string value;
  Contact sender;
};
}  // namespace kademlia_msg

}  // namespace decentnet::overlay
