// Gossip substrate: Cyclon-style peer sampling plus push epidemic broadcast.
//
// The paper cites gossip protocols as one of P2P research's lasting
// contributions (they underpin both Dynamo-style membership and blockchain
// transaction/block dissemination). E16 measures coverage/redundancy versus
// fanout; the chain module reuses the same dissemination pattern.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "net/message.hpp"
#include "net/network.hpp"
#include "sim/simulator.hpp"

namespace decentnet::overlay {

struct GossipConfig {
  std::size_t view_size = 20;       // partial view (Cyclon cache)
  std::size_t shuffle_size = 8;     // entries exchanged per shuffle
  sim::SimDuration shuffle_interval = sim::seconds(10);
  std::size_t fanout = 4;           // rumor forwarding fanout
  std::size_t message_bytes = 64;
  // Rumors remembered for shuffle-piggybacked anti-entropy (0 disables).
  std::size_t anti_entropy_rumors = 32;
  // Every Nth shuffle, re-merge one random bootstrap contact (0 disables).
  // A long partition drains every cross-side view entry (optimistic Cyclon
  // removal discards the entry; the reply that would restore it is lost),
  // leaving two internally-healthy overlays that nothing ever re-links after
  // the heal. Re-contacting the bootstrap set is how deployed gossip
  // networks (and this repo's paper, arguing for a pinch of centralization)
  // repair that.
  std::size_t bootstrap_refresh = 4;
};

/// A rumor's identity; payload size is carried for traffic accounting only.
using RumorId = std::uint64_t;

/// Partial-view entry: a peer descriptor plus its gossip age.
struct ViewEntry {
  net::NodeId peer;
  std::uint32_t age = 0;
};

namespace gossip_msg {
/// Broadcast once, shared by every hop: the hop count rides in
/// Message::cookie so all deliveries of one rumor alias a single allocation.
struct Rumor {
  RumorId id;
  std::size_t payload_bytes;
};
/// Shuffle messages double as anti-entropy carriers: alongside the view
/// sample they piggyback the sender's most recent rumors. Pure push epidemic
/// has a nonzero termination-miss probability (an unlucky fanout tree, a
/// lost message, a node that was offline); the periodic shuffle digest
/// repairs exactly those misses, so coverage converges as long as the
/// shuffle graph stays connected.
struct ShuffleRequest {
  std::vector<ViewEntry> entries;
  std::vector<Rumor> recent;
};
struct ShuffleReply {
  std::vector<ViewEntry> entries;
  std::vector<Rumor> recent;
};
}  // namespace gossip_msg

class GossipNode final : public net::Host {
 public:
  /// `on_deliver(rumor, hops)` fires exactly once per rumor per node.
  using DeliverHook = std::function<void(RumorId, std::size_t hops)>;

  GossipNode(net::Network& net, net::NodeId addr, GossipConfig config);
  ~GossipNode() override;

  GossipNode(const GossipNode&) = delete;
  GossipNode& operator=(const GossipNode&) = delete;

  net::NodeId addr() const { return addr_; }

  void set_deliver_hook(DeliverHook hook) { deliver_ = std::move(hook); }

  /// Come online with an initial partial view.
  void join(const std::vector<net::NodeId>& bootstrap_view);
  void leave();
  bool online() const { return online_; }

  /// Originate a rumor of `payload_bytes` size.
  void broadcast(RumorId rumor, std::size_t payload_bytes);

  /// Current partial view (peer sampling output).
  std::vector<net::NodeId> view() const;

  /// True if this node has seen `rumor`.
  bool has_seen(RumorId rumor) const { return seen_.count(rumor) > 0; }

  std::uint64_t duplicates_received() const { return duplicates_; }

  void handle_message(const net::Message& msg) override;

 private:
  void shuffle();
  void merge_view(const std::vector<ViewEntry>& incoming);
  void accept_rumor(const sim::Shared<gossip_msg::Rumor>& rumor,
                    std::size_t hops, net::Span span);
  void forward_rumor(const sim::Shared<gossip_msg::Rumor>& rumor,
                     std::size_t hops, net::NodeId skip, net::Span span);
  std::vector<gossip_msg::Rumor> recent_snapshot() const;
  void absorb_recent(const std::vector<gossip_msg::Rumor>& recent);

  net::Network& net_;
  sim::Simulator& sim_;
  net::NodeId addr_;
  GossipConfig config_;
  sim::Rng rng_;
  // Experiment-scoped handles (aggregated across all nodes on the network).
  sim::Counter& m_delivered_;
  sim::Counter& m_duplicates_;
  sim::Counter& m_shuffles_;
  // Span-derived: depth of each first delivery in its dissemination tree.
  // Bound only while the network tracks spans (null otherwise).
  sim::Histogram* m_tree_depth_;
  bool online_ = false;
  std::vector<ViewEntry> view_;
  std::vector<net::NodeId> bootstrap_;  // full join-time contact list
  std::uint64_t shuffle_count_ = 0;
  std::unordered_set<RumorId> seen_;
  std::deque<gossip_msg::Rumor> recent_;  // anti-entropy window, oldest first
  std::uint64_t duplicates_ = 0;
  sim::EventHandle shuffle_timer_;
  DeliverHook deliver_;
};

}  // namespace decentnet::overlay
