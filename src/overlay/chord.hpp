// Chord structured overlay (Stoica et al., SIGCOMM 2001).
//
// 64-bit identifier ring, finger tables, successor lists and the classic
// stabilize / fix_fingers / check_predecessor maintenance loop. Lookups are
// iterative: the initiator walks the ring one hop at a time, so hop counts
// and per-hop latency are measured exactly — this is the multi-hop cost that
// one-hop overlays (E4) trade maintenance bandwidth against.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <unordered_map>
#include <vector>

#include "net/message.hpp"
#include "net/network.hpp"
#include "sim/simulator.hpp"

namespace decentnet::overlay {

/// Position on the 2^64 ring.
using ChordId = std::uint64_t;

/// True if x is in the half-open ring interval (a, b].
constexpr bool in_interval_oc(ChordId x, ChordId a, ChordId b) {
  if (a == b) return true;  // full circle
  if (a < b) return x > a && x <= b;
  return x > a || x <= b;  // wrapped
}

/// True if x is in the open ring interval (a, b).
constexpr bool in_interval_oo(ChordId x, ChordId a, ChordId b) {
  if (a == b) return x != a;  // full circle
  if (a < b) return x > a && x < b;
  return x > a || x < b;
}

struct ChordContact {
  ChordId id = 0;
  net::NodeId addr;
  bool operator==(const ChordContact& o) const { return addr == o.addr; }
};

struct ChordConfig {
  std::size_t successor_list_size = 8;
  sim::SimDuration stabilize_interval = sim::seconds(15);
  sim::SimDuration fix_fingers_interval = sim::seconds(30);
  sim::SimDuration check_predecessor_interval = sim::seconds(30);
  sim::SimDuration rpc_timeout = sim::seconds(2);
  std::size_t message_bytes = 80;
  std::size_t max_lookup_hops = 128;
};

struct ChordLookupResult {
  bool ok = false;
  ChordContact successor;  // node responsible for the key
  std::size_t hops = 0;
  std::size_t timeouts = 0;
  sim::SimDuration elapsed = 0;
};

class ChordNode final : public net::Host {
 public:
  using LookupCallback = std::function<void(ChordLookupResult)>;

  ChordNode(net::Network& net, net::NodeId addr, ChordConfig config,
            std::optional<ChordId> id = std::nullopt);
  ~ChordNode() override;

  ChordNode(const ChordNode&) = delete;
  ChordNode& operator=(const ChordNode&) = delete;

  ChordId id() const { return id_; }
  net::NodeId addr() const { return addr_; }
  ChordContact self() const { return {id_, addr_}; }
  bool online() const { return online_; }

  /// First node: create a ring. Otherwise join via `bootstrap`.
  void create();
  void join(const ChordContact& bootstrap);
  void leave();

  /// Resolve the node responsible for `key` (iterative).
  void lookup(ChordId key, LookupCallback cb);

  const std::optional<ChordContact>& predecessor() const { return pred_; }
  const ChordContact& successor() const { return successors_.front(); }
  const std::vector<ChordContact>& successor_list() const {
    return successors_;
  }
  const std::vector<ChordContact>& fingers() const { return fingers_; }

  void handle_message(const net::Message& msg) override;

 private:
  struct PendingRpc {
    std::function<void(bool, const net::Message*)> on_done;
    sim::EventHandle timeout;
  };

  void start_maintenance();
  void stabilize();
  void fix_fingers();
  void check_predecessor();
  ChordContact closest_preceding(ChordId key) const;
  void advance_successor();

  using RpcCallback = std::function<void(bool, const net::Message*)>;
  std::uint64_t register_pending(RpcCallback cb);
  void resolve_pending(std::uint64_t nonce, const net::Message* reply);
  void rpc_step(const ChordContact& to, ChordId key, RpcCallback cb);
  void rpc_get_state(const ChordContact& to, RpcCallback cb);

  struct LookupState {
    ChordId key;
    LookupCallback cb;
    ChordContact current;
    std::size_t hops = 0;
    std::size_t timeouts = 0;
    sim::SimTime started = 0;
  };

  net::Network& net_;
  sim::Simulator& sim_;
  net::NodeId addr_;
  ChordId id_;
  ChordConfig config_;
  sim::Counter& m_lookups_;       // finished lookups (all nodes, success or not)
  sim::Counter& m_rpc_timeouts_;  // step/get-state RPCs that expired
  bool online_ = false;
  std::optional<ChordContact> pred_;
  std::vector<ChordContact> successors_;  // [0] is the live successor
  std::vector<ChordContact> fingers_;     // 64 entries
  std::size_t next_finger_ = 0;
  std::unordered_map<std::uint64_t, PendingRpc> pending_;
  std::uint64_t next_nonce_ = 1;
  std::vector<sim::EventHandle> timers_;
};

namespace chord_msg {
/// "Find the next hop (or final successor) for key."
struct Step {
  ChordId key;
  std::uint64_t nonce;
  ChordContact sender;
};
struct StepReply {
  std::uint64_t nonce;
  bool done;            // true: `node` is the successor of key
  ChordContact node;    // next hop or final answer
};
/// "Tell me your predecessor and successor list" (stabilize).
struct GetState {
  std::uint64_t nonce;
  ChordContact sender;
};
struct GetStateReply {
  std::uint64_t nonce;
  bool has_pred;
  ChordContact pred;
  std::vector<ChordContact> successors;
};
struct Notify {
  ChordContact candidate;
};
}  // namespace chord_msg

}  // namespace decentnet::overlay
