#include "overlay/superpeer.hpp"

#include <algorithm>

namespace decentnet::overlay {

namespace spm = superpeer_msg;

// ---------------------------------------------------------------------------
// SuperpeerNode
// ---------------------------------------------------------------------------

SuperpeerNode::SuperpeerNode(net::Network& net, net::NodeId addr,
                             SuperpeerConfig config)
    : net_(net), sim_(net.simulator()), addr_(addr), config_(config) {}

SuperpeerNode::~SuperpeerNode() {
  if (online_) leave();
}

void SuperpeerNode::join(std::vector<net::NodeId> sp_neighbors) {
  net_.attach(addr_, this);
  online_ = true;
  sp_neighbors_ = std::move(sp_neighbors);
}

void SuperpeerNode::leave() {
  online_ = false;
  net_.detach(addr_);
}

net::NodeId SuperpeerNode::local_provider(ContentId item) const {
  const auto it = index_.find(item);
  if (it == index_.end() || it->second.empty()) return net::NodeId::invalid();
  return it->second.front();
}

void SuperpeerNode::flood_to_sps(const spm::SpQuery& q, net::NodeId skip) {
  if (q.ttl == 0) return;
  for (net::NodeId sp : sp_neighbors_) {
    if (sp == skip) continue;
    net_.send(addr_, sp, q, config_.query_bytes);
  }
}

void SuperpeerNode::handle_message(const net::Message& msg) {
  if (msg.is<spm::LeafRegister>()) {
    const auto& reg = net::payload_as<spm::LeafRegister>(msg);
    auto& items = leaf_items_[msg.from];
    for (ContentId item : reg.items) {
      items.push_back(item);
      index_[item].push_back(msg.from);
    }
    return;
  }
  if (msg.is<spm::LeafUnregister>()) {
    const auto it = leaf_items_.find(msg.from);
    if (it == leaf_items_.end()) return;
    for (ContentId item : it->second) {
      auto idx = index_.find(item);
      if (idx == index_.end()) continue;
      std::erase(idx->second, msg.from);
      if (idx->second.empty()) index_.erase(idx);
    }
    leaf_items_.erase(it);
    return;
  }
  if (msg.is<spm::LeafQuery>()) {
    const auto& q = net::payload_as<spm::LeafQuery>(msg);
    const net::NodeId local = local_provider(q.item);
    if (local.valid()) {
      net_.send(addr_, msg.from, spm::LeafQueryReply{q.qid, true, local, 1},
                config_.query_bytes);
      return;
    }
    leaf_queries_[q.qid] = msg.from;
    seen_queries_[q.qid] = net::NodeId::invalid();
    flood_to_sps(spm::SpQuery{q.item, q.qid, config_.sp_ttl, 1, addr_},
                 net::NodeId::invalid());
    return;
  }
  if (msg.is<spm::SpQuery>()) {
    const auto& q = net::payload_as<spm::SpQuery>(msg);
    if (!seen_queries_.emplace(q.qid, msg.from).second) return;
    const net::NodeId local = local_provider(q.item);
    if (local.valid()) {
      net_.send(addr_, msg.from, spm::SpQueryHit{q.qid, local, q.hops + 1},
                config_.query_bytes);
      return;
    }
    if (q.ttl > 1) {
      spm::SpQuery fwd = q;
      fwd.ttl -= 1;
      fwd.hops += 1;
      flood_to_sps(fwd, msg.from);
    }
    return;
  }
  if (msg.is<spm::SpQueryHit>()) {
    const auto& h = net::payload_as<spm::SpQueryHit>(msg);
    const auto leaf = leaf_queries_.find(h.qid);
    if (leaf != leaf_queries_.end()) {
      net_.send(addr_, leaf->second,
                spm::LeafQueryReply{h.qid, true, h.provider, h.hops},
                config_.query_bytes);
      leaf_queries_.erase(leaf);
      return;
    }
    const auto it = seen_queries_.find(h.qid);
    if (it != seen_queries_.end() && it->second.valid()) {
      net_.send(addr_, it->second, h, config_.query_bytes);
    }
    return;
  }
}

// ---------------------------------------------------------------------------
// LeafNode
// ---------------------------------------------------------------------------

LeafNode::LeafNode(net::Network& net, net::NodeId addr, SuperpeerConfig config)
    : net_(net),
      sim_(net.simulator()),
      addr_(addr),
      config_(config),
      next_qid_(addr.value << 24) {}

LeafNode::~LeafNode() {
  if (online_) leave();
}

void LeafNode::join(net::NodeId superpeer, std::vector<ContentId> shared) {
  net_.attach(addr_, this);
  online_ = true;
  superpeer_ = superpeer;
  shared_ = std::move(shared);
  if (!shared_.empty()) {
    net_.send(addr_, superpeer_, superpeer_msg::LeafRegister{shared_},
              32 + config_.register_bytes_per_item * shared_.size());
  }
}

void LeafNode::leave() {
  if (online_) {
    net_.send(addr_, superpeer_, superpeer_msg::LeafUnregister{}, 32);
  }
  online_ = false;
  net_.detach(addr_);
  for (auto& [qid, q] : queries_) q.deadline.cancel();
  queries_.clear();
}

void LeafNode::query(ContentId item, QueryCallback cb) {
  if (std::find(shared_.begin(), shared_.end(), item) != shared_.end()) {
    QueryOutcome out;
    out.found = true;
    out.provider = addr_;
    cb(std::move(out));
    return;
  }
  const std::uint64_t qid = ++next_qid_;
  ActiveQuery q;
  q.cb = std::move(cb);
  q.started = sim_.now();
  q.deadline = sim_.schedule(config_.query_deadline, [this, qid] {
    const auto it = queries_.find(qid);
    if (it == queries_.end()) return;
    auto cb = std::move(it->second.cb);
    const sim::SimTime started = it->second.started;
    queries_.erase(it);
    QueryOutcome out;
    out.elapsed = sim_.now() - started;
    cb(std::move(out));
  });
  queries_.emplace(qid, std::move(q));
  net_.send(addr_, superpeer_, superpeer_msg::LeafQuery{item, qid},
            config_.query_bytes);
}

void LeafNode::handle_message(const net::Message& msg) {
  if (!msg.is<superpeer_msg::LeafQueryReply>()) return;
  const auto& r = net::payload_as<superpeer_msg::LeafQueryReply>(msg);
  const auto it = queries_.find(r.qid);
  if (it == queries_.end()) return;
  auto cb = std::move(it->second.cb);
  it->second.deadline.cancel();
  const sim::SimTime started = it->second.started;
  queries_.erase(it);
  QueryOutcome out;
  out.found = r.found;
  out.provider = r.provider;
  out.hops = r.hops;
  out.elapsed = sim_.now() - started;
  cb(std::move(out));
}

}  // namespace decentnet::overlay
