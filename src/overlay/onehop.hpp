// One-hop overlay with full membership (Gupta, Liskov & Rodrigues, HotOS'03).
//
// Every node keeps the complete membership table and routes in a single hop.
// Membership events (joins, graceful leaves, suspected deaths) spread by
// epidemic push gossip. The paper's E4 point: for 10K-100K reasonably stable
// nodes, the maintenance bandwidth of full membership is affordable and
// buys O(1) lookups — the design cloud key-value stores adopted.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "net/message.hpp"
#include "net/network.hpp"
#include "overlay/chord.hpp"  // ChordId ring helpers
#include "sim/simulator.hpp"

namespace decentnet::overlay {

struct OneHopConfig {
  sim::SimDuration gossip_interval = sim::seconds(5);
  std::size_t gossip_fanout = 4;
  std::size_t max_events_per_gossip = 64;
  sim::SimDuration rpc_timeout = sim::seconds(2);
  std::size_t event_bytes = 24;  // one membership event on the wire
  std::size_t query_bytes = 72;
  std::size_t lookup_retries = 3;
};

struct OneHopLookupResult {
  bool ok = false;
  ChordContact owner;
  std::size_t attempts = 0;  // 1 = succeeded on the first (one-hop) try
  sim::SimDuration elapsed = 0;
};

namespace onehop_msg {
struct MembershipEvent {
  std::uint64_t event_id;
  bool joined;  // false = left/dead
  ChordContact node;
};
struct GossipBatch {
  std::vector<MembershipEvent> events;
};
struct TableRequest {
  std::uint64_t nonce;
};
struct TableReply {
  std::uint64_t nonce;
  std::vector<ChordContact> members;
};
struct DirectQuery {
  ChordId key;
  std::uint64_t nonce;
};
struct DirectAck {
  std::uint64_t nonce;
  ChordContact owner;
};
}  // namespace onehop_msg

class OneHopNode final : public net::Host {
 public:
  using LookupCallback = std::function<void(OneHopLookupResult)>;

  OneHopNode(net::Network& net, net::NodeId addr, OneHopConfig config,
             std::optional<ChordId> id = std::nullopt);
  ~OneHopNode() override;

  OneHopNode(const OneHopNode&) = delete;
  OneHopNode& operator=(const OneHopNode&) = delete;

  ChordId id() const { return id_; }
  net::NodeId addr() const { return addr_; }
  ChordContact self() const { return {id_, addr_}; }
  bool online() const { return online_; }

  /// First node: create. Later nodes: join via any member (pulls the full
  /// table, announces itself as a membership event).
  void create();
  void join(const ChordContact& bootstrap);
  /// Graceful leave announces a departure event before detaching.
  void leave();
  /// Crash: drop off the network without telling anyone (for experiments).
  void crash();

  /// Route to the ring successor of `key` — one hop if the table is fresh.
  void lookup(ChordId key, LookupCallback cb);

  std::size_t membership_size() const { return members_.size(); }
  bool knows(net::NodeId addr) const;

  void handle_message(const net::Message& msg) override;

 private:
  struct PendingRpc {
    std::function<void(bool, const net::Message*)> on_done;
    sim::EventHandle timeout;
  };

  void gossip_tick();
  void apply_event(const onehop_msg::MembershipEvent& ev, bool forward);
  void emit_event(bool joined, const ChordContact& node);
  ChordContact successor_of(ChordId key) const;
  void remove_member(const ChordContact& c);
  std::uint64_t register_pending(
      std::function<void(bool, const net::Message*)> cb);
  void try_lookup(std::shared_ptr<OneHopLookupResult> acc, ChordId key,
                  LookupCallback cb);

  net::Network& net_;
  sim::Simulator& sim_;
  net::NodeId addr_;
  ChordId id_;
  OneHopConfig config_;
  sim::Rng rng_;
  bool online_ = false;
  std::map<ChordId, ChordContact> members_;  // ordered ring
  std::unordered_set<std::uint64_t> seen_events_;
  std::vector<onehop_msg::MembershipEvent> outbox_;  // events still spreading
  std::unordered_map<std::uint64_t, PendingRpc> pending_;
  std::uint64_t next_nonce_;
  sim::EventHandle gossip_timer_;
};

}  // namespace decentnet::overlay
