#include "overlay/flood.hpp"

#include <algorithm>

namespace decentnet::overlay {

using flood_msg::Query;
using flood_msg::QueryHit;

GnutellaNode::GnutellaNode(net::Network& net, net::NodeId addr,
                           FloodConfig config)
    : net_(net),
      sim_(net.simulator()),
      addr_(addr),
      config_(config),
      m_queries_(net.metrics().counter("overlay/flood_queries")),
      m_query_hits_(net.metrics().counter("overlay/flood_query_hits")),
      m_query_misses_(net.metrics().counter("overlay/flood_query_misses")),
      next_qid_base_(addr.value << 24) {}

GnutellaNode::~GnutellaNode() {
  if (online_) leave();
}

void GnutellaNode::join(std::vector<net::NodeId> neighbors) {
  net_.attach(addr_, this);
  online_ = true;
  neighbors_ = std::move(neighbors);
}

void GnutellaNode::leave() {
  online_ = false;
  net_.detach(addr_);
  for (auto& [qid, q] : own_queries_) q.deadline.cancel();
  own_queries_.clear();
}

void GnutellaNode::add_neighbor(net::NodeId n) {
  if (n != addr_ &&
      std::find(neighbors_.begin(), neighbors_.end(), n) == neighbors_.end()) {
    neighbors_.push_back(n);
  }
}

void GnutellaNode::remove_neighbor(net::NodeId n) {
  const auto it = std::find(neighbors_.begin(), neighbors_.end(), n);
  if (it != neighbors_.end()) neighbors_.erase(it);
}

void GnutellaNode::query(ContentId item, QueryCallback cb) {
  const std::uint64_t qid = ++next_qid_base_;
  m_queries_.add();
  // Local hit short-circuits.
  if (content_.count(item) > 0) {
    m_query_hits_.add();
    QueryOutcome out;
    out.found = true;
    out.provider = addr_;
    cb(std::move(out));
    return;
  }
  ActiveQuery q;
  q.cb = std::move(cb);
  q.started = sim_.now();
  q.deadline = sim_.schedule(
      config_.query_deadline,
      [this, qid] {
        const auto it = own_queries_.find(qid);
        if (it == own_queries_.end()) return;
        auto cb = std::move(it->second.cb);
        const sim::SimTime started = it->second.started;
        own_queries_.erase(it);
        m_query_misses_.add();
        QueryOutcome out;
        out.found = false;
        out.elapsed = sim_.now() - started;
        cb(std::move(out));
      },
      "flood/deadline");
  own_queries_.emplace(qid, std::move(q));
  seen_queries_[qid] = net::NodeId::invalid();  // we are the origin
  forward_query(sim::Shared<Query>::make(Query{item, qid}),
                config_.default_ttl, 0, net::NodeId::invalid(),
                net_.new_span_root());
}

void GnutellaNode::forward_query(const sim::Shared<Query>& q,
                                 std::uint32_t ttl, std::uint32_t hops,
                                 net::NodeId origin_hop, net::Span span) {
  if (ttl == 0) return;
  const std::uint64_t cookie = (static_cast<std::uint64_t>(ttl) << 32) | hops;
  for (net::NodeId n : neighbors_) {
    if (n == origin_hop) continue;
    net_.send(addr_, n, q, config_.query_bytes, cookie, span);
  }
}

void GnutellaNode::handle_message(const net::Message& msg) {
  if (msg.is<Query>()) {
    const auto& q = net::payload_as<Query>(msg);
    // Dedup: first arrival wins and defines the reverse path.
    if (!seen_queries_.emplace(q.qid, msg.from).second) return;
    const auto ttl = static_cast<std::uint32_t>(msg.cookie >> 32);
    const std::uint32_t hops = static_cast<std::uint32_t>(msg.cookie) + 1;
    bool hit = false;
    if (content_.count(q.item) > 0) {
      hit = true;
      // The hit descends from the query hop that reached the provider, so
      // the full request/response path stays in one tree.
      net_.send(addr_, msg.from, QueryHit{q.item, q.qid, addr_, hops},
                config_.query_bytes, /*cookie=*/0, msg.span);
    }
    if ((!hit || config_.forward_after_hit) && ttl > 1) {
      forward_query(net::payload_shared<Query>(msg), ttl - 1, hops, msg.from,
                    msg.span);
    }
    return;
  }
  if (msg.is<QueryHit>()) {
    const auto& h = net::payload_as<QueryHit>(msg);
    const auto own = own_queries_.find(h.qid);
    if (own != own_queries_.end()) {
      auto cb = std::move(own->second.cb);
      own->second.deadline.cancel();
      const sim::SimTime started = own->second.started;
      own_queries_.erase(own);
      m_query_hits_.add();
      QueryOutcome out;
      out.found = true;
      out.provider = h.provider;
      out.hops = h.hops;
      out.elapsed = sim_.now() - started;
      cb(std::move(out));
      return;
    }
    // Route back along the reverse path, re-sharing the incoming payload.
    const auto it = seen_queries_.find(h.qid);
    if (it != seen_queries_.end() && it->second.valid()) {
      net_.send(addr_, it->second, net::payload_shared<QueryHit>(msg),
                config_.query_bytes, /*cookie=*/0, msg.span);
    }
    return;
  }
}

}  // namespace decentnet::overlay
