#include "overlay/chord.hpp"

#include <algorithm>

#include "crypto/buffer.hpp"

namespace decentnet::overlay {

using chord_msg::GetState;
using chord_msg::GetStateReply;
using chord_msg::Notify;
using chord_msg::Step;
using chord_msg::StepReply;

namespace {
ChordId default_id(net::NodeId addr) {
  crypto::ByteWriter w;
  w.str("chord-node").u64(addr.value);
  return w.sha256().prefix64();
}
}  // namespace

ChordNode::ChordNode(net::Network& net, net::NodeId addr, ChordConfig config,
                     std::optional<ChordId> id)
    : net_(net),
      sim_(net.simulator()),
      addr_(addr),
      id_(id ? *id : default_id(addr)),
      config_(config),
      m_lookups_(net.metrics().counter("overlay/chord_lookups")),
      m_rpc_timeouts_(net.metrics().counter("overlay/chord_rpc_timeouts")),
      fingers_(64, ChordContact{}) {}

ChordNode::~ChordNode() {
  if (online_) leave();
}

void ChordNode::create() {
  net_.attach(addr_, this);
  online_ = true;
  pred_.reset();
  successors_.assign(1, self());
  std::fill(fingers_.begin(), fingers_.end(), self());
  start_maintenance();
}

void ChordNode::join(const ChordContact& bootstrap) {
  net_.attach(addr_, this);
  online_ = true;
  pred_.reset();
  successors_.assign(1, bootstrap);  // provisional; refined by the lookup
  std::fill(fingers_.begin(), fingers_.end(), bootstrap);
  // Resolve our true successor through the bootstrap node.
  lookup(id_, [this](ChordLookupResult r) {
    if (r.ok && online_ && r.successor.addr != addr_) {
      successors_.front() = r.successor;
    }
  });
  start_maintenance();
}

void ChordNode::leave() {
  online_ = false;
  for (auto& t : timers_) t.cancel();
  timers_.clear();
  net_.detach(addr_);
  auto pending = std::move(pending_);
  pending_.clear();
  for (auto& [nonce, rpc] : pending) {
    rpc.timeout.cancel();
    rpc.on_done(false, nullptr);
  }
}

void ChordNode::start_maintenance() {
  timers_.push_back(sim_.schedule_periodic(
      config_.stabilize_interval / 2, config_.stabilize_interval,
      [this] { stabilize(); }));
  timers_.push_back(sim_.schedule_periodic(
      config_.fix_fingers_interval, config_.fix_fingers_interval,
      [this] { fix_fingers(); }));
  timers_.push_back(sim_.schedule_periodic(
      config_.check_predecessor_interval, config_.check_predecessor_interval,
      [this] { check_predecessor(); }));
}

ChordContact ChordNode::closest_preceding(ChordId key) const {
  for (auto it = fingers_.rbegin(); it != fingers_.rend(); ++it) {
    if (it->addr.valid() && it->addr != addr_ &&
        in_interval_oo(it->id, id_, key)) {
      return *it;
    }
  }
  // Fall back to the successor list.
  for (auto it = successors_.rbegin(); it != successors_.rend(); ++it) {
    if (it->addr.valid() && it->addr != addr_ &&
        in_interval_oo(it->id, id_, key)) {
      return *it;
    }
  }
  return self();
}

void ChordNode::advance_successor() {
  if (successors_.size() > 1) {
    successors_.erase(successors_.begin());
  } else {
    successors_.assign(1, self());  // alone again
  }
}

// ---------------------------------------------------------------------------
// RPC plumbing
// ---------------------------------------------------------------------------

std::uint64_t ChordNode::register_pending(RpcCallback cb) {
  const std::uint64_t nonce = next_nonce_++;
  PendingRpc rpc;
  rpc.on_done = std::move(cb);
  rpc.timeout = sim_.schedule(
      config_.rpc_timeout,
      [this, nonce] {
        auto it = pending_.find(nonce);
        if (it == pending_.end()) return;
        auto done = std::move(it->second.on_done);
        pending_.erase(it);
        m_rpc_timeouts_.add();
        done(false, nullptr);
      },
      "chord/rpc_timeout");
  pending_.emplace(nonce, std::move(rpc));
  return nonce;
}

void ChordNode::resolve_pending(std::uint64_t nonce,
                                const net::Message* reply) {
  const auto it = pending_.find(nonce);
  if (it == pending_.end()) return;
  auto done = std::move(it->second.on_done);
  it->second.timeout.cancel();
  pending_.erase(it);
  done(true, reply);
}

void ChordNode::rpc_step(const ChordContact& to, ChordId key, RpcCallback cb) {
  if (!online_) {
    sim_.post(0, [cb = std::move(cb)] { cb(false, nullptr); });
    return;
  }
  const std::uint64_t nonce = register_pending(std::move(cb));
  net_.send(addr_, to.addr, Step{key, nonce, self()}, config_.message_bytes);
}

void ChordNode::rpc_get_state(const ChordContact& to, RpcCallback cb) {
  if (!online_) {
    sim_.post(0, [cb = std::move(cb)] { cb(false, nullptr); });
    return;
  }
  const std::uint64_t nonce = register_pending(std::move(cb));
  net_.send(addr_, to.addr, GetState{nonce, self()}, config_.message_bytes);
}

// ---------------------------------------------------------------------------
// Lookup
// ---------------------------------------------------------------------------

void ChordNode::lookup(ChordId key, LookupCallback cb) {
  m_lookups_.add();
  // Answer locally when we already own the key.
  if (in_interval_oc(key, pred_ ? pred_->id : id_, id_) && pred_) {
    ChordLookupResult r;
    r.ok = true;
    r.successor = self();
    cb(std::move(r));
    return;
  }
  if (in_interval_oc(key, id_, successor().id)) {
    ChordLookupResult r;
    r.ok = true;
    r.successor = successor();
    cb(std::move(r));
    return;
  }
  auto state = std::make_shared<LookupState>();
  state->key = key;
  state->cb = std::move(cb);
  state->current = closest_preceding(key);
  state->started = sim_.now();
  if (state->current.addr == addr_) {
    // No better hop known: our successor is the best guess.
    ChordLookupResult r;
    r.ok = true;
    r.successor = successor();
    r.elapsed = 0;
    state->cb(std::move(r));
    return;
  }

  // Iterative hop loop implemented with a self-referencing continuation.
  auto hop = std::make_shared<std::function<void()>>();
  std::weak_ptr<std::function<void()>> weak_hop = hop;
  *hop = [this, state, weak_hop] {
    auto strong = weak_hop.lock();
    ++state->hops;
    if (state->hops > config_.max_lookup_hops) {
      ChordLookupResult r;
      r.hops = state->hops;
      r.timeouts = state->timeouts;
      r.elapsed = sim_.now() - state->started;
      state->cb(std::move(r));
      return;
    }
    rpc_step(state->current, state->key,
             [this, state, strong](bool ok, const net::Message* reply) {
               if (!ok) {
                 ++state->timeouts;
                 ChordLookupResult r;
                 r.hops = state->hops;
                 r.timeouts = state->timeouts;
                 r.elapsed = sim_.now() - state->started;
                 state->cb(std::move(r));
                 return;
               }
               const auto& sr = net::payload_as<StepReply>(*reply);
               if (sr.done) {
                 ChordLookupResult r;
                 r.ok = true;
                 r.successor = sr.node;
                 r.hops = state->hops;
                 r.timeouts = state->timeouts;
                 r.elapsed = sim_.now() - state->started;
                 state->cb(std::move(r));
                 return;
               }
               if (sr.node.addr == state->current.addr) {
                 // Stuck: remote has no better hop; treat its answer as final.
                 ChordLookupResult r;
                 r.ok = true;
                 r.successor = sr.node;
                 r.hops = state->hops;
                 r.timeouts = state->timeouts;
                 r.elapsed = sim_.now() - state->started;
                 state->cb(std::move(r));
                 return;
               }
               state->current = sr.node;
               if (strong) (*strong)();
             });
  };
  (*hop)();
}

// ---------------------------------------------------------------------------
// Maintenance
// ---------------------------------------------------------------------------

void ChordNode::stabilize() {
  if (!online_) return;
  const ChordContact succ = successor();
  if (succ.addr == addr_) {
    // Successor is ourselves. If someone has notified us (we have a
    // predecessor), adopt it as a successor candidate so stabilization can
    // walk the ring back into shape; a truly lone node stays put.
    if (pred_ && pred_->addr != addr_) {
      successors_.front() = *pred_;
    }
    return;
  }
  rpc_get_state(succ, [this, succ](bool ok, const net::Message* reply) {
    if (!online_) return;
    if (!ok) {
      if (!successors_.empty() && successors_.front() == succ) {
        advance_successor();
      }
      return;
    }
    const auto& r = net::payload_as<GetStateReply>(*reply);
    if (successors_.empty() || !(successors_.front() == succ)) return;
    if (r.has_pred && in_interval_oo(r.pred.id, id_, succ.id) &&
        r.pred.addr != addr_) {
      successors_.front() = r.pred;
    }
    // Adopt successor's list, shifted behind our own successor.
    std::vector<ChordContact> fresh;
    fresh.push_back(successors_.front());
    for (const ChordContact& c : r.successors) {
      if (fresh.size() >= config_.successor_list_size) break;
      if (c.addr != addr_ &&
          std::find(fresh.begin(), fresh.end(), c) == fresh.end()) {
        fresh.push_back(c);
      }
    }
    successors_ = std::move(fresh);
    net_.send(addr_, successors_.front().addr, Notify{self()},
              config_.message_bytes);
  });
}

void ChordNode::fix_fingers() {
  if (!online_) return;
  next_finger_ = (next_finger_ + 1) % 64;
  const ChordId start = id_ + (1ull << next_finger_);
  const std::size_t idx = next_finger_;
  lookup(start, [this, idx](ChordLookupResult r) {
    if (r.ok && online_) fingers_[idx] = r.successor;
  });
}

void ChordNode::check_predecessor() {
  if (!online_ || !pred_) return;
  const ChordContact p = *pred_;
  rpc_get_state(p, [this, p](bool ok, const net::Message*) {
    if (!ok && pred_ && pred_->addr == p.addr) pred_.reset();
  });
}

// ---------------------------------------------------------------------------
// Message handling
// ---------------------------------------------------------------------------

void ChordNode::handle_message(const net::Message& msg) {
  if (msg.is<Step>()) {
    const auto& req = net::payload_as<Step>(msg);
    StepReply reply;
    reply.nonce = req.nonce;
    if (in_interval_oc(req.key, id_, successor().id)) {
      reply.done = true;
      reply.node = successor();
    } else {
      reply.done = false;
      reply.node = closest_preceding(req.key);
      if (reply.node.addr == addr_) {
        // We are the best predecessor we know; hand out our successor.
        reply.done = true;
        reply.node = successor();
      }
    }
    net_.send(addr_, msg.from, std::move(reply), config_.message_bytes);
    return;
  }
  if (msg.is<StepReply>()) {
    resolve_pending(net::payload_as<StepReply>(msg).nonce, &msg);
    return;
  }
  if (msg.is<GetState>()) {
    const auto& req = net::payload_as<GetState>(msg);
    GetStateReply reply;
    reply.nonce = req.nonce;
    reply.has_pred = pred_.has_value();
    if (pred_) reply.pred = *pred_;
    reply.successors = successors_;
    const std::size_t bytes = 40 + 16 * reply.successors.size();
    net_.send(addr_, msg.from, std::move(reply), bytes);
    return;
  }
  if (msg.is<GetStateReply>()) {
    resolve_pending(net::payload_as<GetStateReply>(msg).nonce, &msg);
    return;
  }
  if (msg.is<Notify>()) {
    const auto& n = net::payload_as<Notify>(msg);
    if (!pred_ || in_interval_oo(n.candidate.id, pred_->id, id_)) {
      pred_ = n.candidate;
    }
    return;
  }
}

}  // namespace decentnet::overlay
