// Gnutella-style unstructured overlay with TTL-scoped query flooding.
//
// Nodes hold static neighbor links (from a topology generator), advertise
// local content items, and answer QUERY floods with QUERY_HIT routed back
// along the reverse path. Free riders (Problem 1) are nodes that consume but
// share nothing; E2 sweeps their fraction and measures search success and
// per-query message cost.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "net/message.hpp"
#include "net/network.hpp"
#include "sim/simulator.hpp"

namespace decentnet::overlay {

using ContentId = std::uint64_t;

struct FloodConfig {
  std::uint32_t default_ttl = 7;   // classic Gnutella TTL
  sim::SimDuration query_deadline = sim::seconds(20);
  std::size_t query_bytes = 96;
  /// Stop forwarding a query once this node produced a hit (responders still
  /// forward in real Gnutella; making it configurable lets tests bound work).
  bool forward_after_hit = true;
};

namespace flood_msg {
struct Query;
struct QueryHit;
}  // namespace flood_msg

struct QueryOutcome {
  bool found = false;
  net::NodeId provider;            // first responder
  std::size_t hops = 0;            // hops to the first responder
  sim::SimDuration elapsed = 0;
};

class GnutellaNode final : public net::Host {
 public:
  using QueryCallback = std::function<void(QueryOutcome)>;

  GnutellaNode(net::Network& net, net::NodeId addr, FloodConfig config);
  ~GnutellaNode() override;

  GnutellaNode(const GnutellaNode&) = delete;
  GnutellaNode& operator=(const GnutellaNode&) = delete;

  net::NodeId addr() const { return addr_; }

  void join(std::vector<net::NodeId> neighbors);
  void leave();
  bool online() const { return online_; }

  /// Share or withdraw content (free riders simply never share).
  void add_content(ContentId item) { content_.insert(item); }
  void remove_content(ContentId item) { content_.erase(item); }
  bool has_content(ContentId item) const { return content_.count(item) > 0; }
  std::size_t shared_items() const { return content_.size(); }

  void add_neighbor(net::NodeId n);
  void remove_neighbor(net::NodeId n);
  const std::vector<net::NodeId>& neighbors() const { return neighbors_; }

  /// Flood a query; `cb` fires once, with the first hit or a timeout miss.
  void query(ContentId item, QueryCallback cb);

  void handle_message(const net::Message& msg) override;

 private:
  struct ActiveQuery {
    QueryCallback cb;
    sim::SimTime started = 0;
    sim::EventHandle deadline;
  };

  void forward_query(const sim::Shared<flood_msg::Query>& q, std::uint32_t ttl,
                     std::uint32_t hops, net::NodeId origin_hop,
                     net::Span span);

  net::Network& net_;
  sim::Simulator& sim_;
  net::NodeId addr_;
  FloodConfig config_;
  sim::Counter& m_queries_;       // queries originated (all nodes)
  sim::Counter& m_query_hits_;    // queries resolved with a provider
  sim::Counter& m_query_misses_;  // queries that hit the deadline
  bool online_ = false;
  std::vector<net::NodeId> neighbors_;
  std::unordered_set<ContentId> content_;
  // Query dedup + reverse-path routing state: qid -> upstream neighbor.
  std::unordered_map<std::uint64_t, net::NodeId> seen_queries_;
  std::unordered_map<std::uint64_t, ActiveQuery> own_queries_;
  std::uint64_t next_qid_base_;
};

namespace flood_msg {
/// Flooded once, shared by every relay: TTL and hop count ride in
/// Message::cookie (ttl << 32 | hops) so the whole flood aliases one
/// allocation.
struct Query {
  ContentId item;
  std::uint64_t qid;
};
struct QueryHit {
  ContentId item;
  std::uint64_t qid;
  net::NodeId provider;
  std::uint32_t hops;  // provider's distance from the origin
};
}  // namespace flood_msg

}  // namespace decentnet::overlay
