#include "overlay/gossip.hpp"

#include <algorithm>

namespace decentnet::overlay {

using gossip_msg::Rumor;
using gossip_msg::ShuffleReply;
using gossip_msg::ShuffleRequest;

GossipNode::GossipNode(net::Network& net, net::NodeId addr,
                       GossipConfig config)
    // simulator_for/metrics_for: the node's timers, RNG stream, and metric
    // handles all live on the shard that owns its NodeId (the plain
    // simulator()/metrics() when the network is unsharded).
    : net_(net),
      sim_(net.simulator_for(addr)),
      addr_(addr),
      config_(config),
      rng_(net.simulator_for(addr).rng().fork(addr.value ^ 0x60551Bull)),
      m_delivered_(net.metrics_for(addr).counter("overlay/gossip_delivered")),
      m_duplicates_(
          net.metrics_for(addr).counter("overlay/gossip_duplicates")),
      m_shuffles_(net.metrics_for(addr).counter("overlay/gossip_shuffles")),
      m_tree_depth_(net.span_tracking()
                        ? &net.metrics_for(addr).histogram(
                              "overlay/gossip_tree_depth")
                        : nullptr) {}

GossipNode::~GossipNode() {
  if (online_) leave();
}

void GossipNode::join(const std::vector<net::NodeId>& bootstrap_view) {
  net_.attach(addr_, this);
  online_ = true;
  view_.clear();
  bootstrap_.clear();
  for (net::NodeId p : bootstrap_view) {
    if (p == addr_) continue;
    bootstrap_.push_back(p);
    if (view_.size() < config_.view_size) {
      view_.push_back(ViewEntry{p, 0});
    }
  }
  shuffle_timer_ = sim_.schedule_periodic(
      sim_.rng().uniform_int(0, config_.shuffle_interval),
      config_.shuffle_interval, [this] { shuffle(); }, "gossip/shuffle");
}

void GossipNode::leave() {
  online_ = false;
  shuffle_timer_.cancel();
  net_.detach(addr_);
}

std::vector<net::NodeId> GossipNode::view() const {
  std::vector<net::NodeId> peers;
  peers.reserve(view_.size());
  for (const auto& e : view_) peers.push_back(e.peer);
  return peers;
}

void GossipNode::shuffle() {
  if (!online_) return;
  ++shuffle_count_;
  // Bootstrap re-seed runs before the empty-view bail-out: a node whose
  // entire view drained away (all peers were cut off or crashed) would
  // otherwise never shuffle — and so never re-seed — again. An empty view
  // re-seeds every tick, not just every Nth.
  if (config_.bootstrap_refresh > 0 && !bootstrap_.empty() &&
      (view_.empty() || shuffle_count_ % config_.bootstrap_refresh == 0)) {
    const net::NodeId contact =
        bootstrap_[rng_.uniform_int(bootstrap_.size())];
    merge_view({ViewEntry{contact, 0}});
  }
  if (view_.empty()) return;
  m_shuffles_.add();
  for (auto& e : view_) ++e.age;
  // Pick the oldest peer (Cyclon): stale descriptors get verified first.
  auto oldest = std::max_element(
      view_.begin(), view_.end(),
      [](const ViewEntry& a, const ViewEntry& b) { return a.age < b.age; });
  const net::NodeId target = oldest->peer;
  view_.erase(oldest);  // removed optimistically; reinserted via reply merge

  std::vector<ViewEntry> sample;
  sample.push_back(ViewEntry{addr_, 0});
  std::vector<std::size_t> idx(view_.size());
  for (std::size_t i = 0; i < idx.size(); ++i) idx[i] = i;
  rng_.shuffle(idx);
  for (std::size_t i = 0;
       i < idx.size() && sample.size() < config_.shuffle_size; ++i) {
    sample.push_back(view_[idx[i]]);
  }
  std::vector<gossip_msg::Rumor> recent = recent_snapshot();
  // 16 bytes per digest entry (id + size); the reconciliation pull for any
  // missing rumor is folded into the same exchange.
  const std::size_t bytes = config_.message_bytes + 16 * recent.size();
  net_.send(addr_, target,
            ShuffleRequest{std::move(sample), std::move(recent)}, bytes);
}

std::vector<gossip_msg::Rumor> GossipNode::recent_snapshot() const {
  return {recent_.begin(), recent_.end()};
}

void GossipNode::absorb_recent(const std::vector<gossip_msg::Rumor>& recent) {
  for (const gossip_msg::Rumor& r : recent) {
    if (seen_.count(r.id) > 0) continue;
    // A rumor the push epidemic missed us on: accept it as a fresh delivery
    // and re-enter the epidemic so neighbours we reach can recover it too.
    accept_rumor(sim::Shared<Rumor>::make(Rumor{r}), 0, net_.new_span_root());
  }
}

void GossipNode::merge_view(const std::vector<ViewEntry>& incoming) {
  for (const ViewEntry& e : incoming) {
    if (e.peer == addr_) continue;
    const auto it = std::find_if(
        view_.begin(), view_.end(),
        [&](const ViewEntry& v) { return v.peer == e.peer; });
    if (it != view_.end()) {
      it->age = std::min(it->age, e.age);
      continue;
    }
    if (view_.size() < config_.view_size) {
      view_.push_back(e);
    } else {
      // Replace the oldest entry.
      auto oldest = std::max_element(
          view_.begin(), view_.end(),
          [](const ViewEntry& a, const ViewEntry& b) { return a.age < b.age; });
      if (oldest->age > e.age) *oldest = e;
    }
  }
}

void GossipNode::broadcast(RumorId rumor, std::size_t payload_bytes) {
  // One span root per broadcast: the whole epidemic is one propagation tree.
  accept_rumor(sim::Shared<Rumor>::make(Rumor{rumor, payload_bytes}), 0,
               net_.new_span_root());
}

void GossipNode::accept_rumor(const sim::Shared<Rumor>& rumor,
                              std::size_t hops, net::Span span) {
  if (!seen_.insert(rumor->id).second) {
    ++duplicates_;
    m_duplicates_.add();
    return;
  }
  if (config_.anti_entropy_rumors > 0) {
    recent_.push_back(*rumor);
    if (recent_.size() > config_.anti_entropy_rumors) recent_.pop_front();
  }
  m_delivered_.add();
  if (m_tree_depth_) m_tree_depth_->record(net_.span_depth(span.hop));
  if (deliver_) deliver_(rumor->id, hops);
  forward_rumor(rumor, hops, net::NodeId::invalid(), span);
}

void GossipNode::forward_rumor(const sim::Shared<Rumor>& rumor,
                               std::size_t hops, net::NodeId skip,
                               net::Span span) {
  if (view_.empty()) return;
  std::vector<std::size_t> idx(view_.size());
  for (std::size_t i = 0; i < idx.size(); ++i) idx[i] = i;
  rng_.shuffle(idx);
  std::size_t sent = 0;
  for (std::size_t i = 0; i < idx.size() && sent < config_.fanout; ++i) {
    const net::NodeId peer = view_[idx[i]].peer;
    if (peer == skip) continue;
    net_.send(addr_, peer, rumor, config_.message_bytes + rumor->payload_bytes,
              /*cookie=*/hops + 1, span);
    ++sent;
  }
}

void GossipNode::handle_message(const net::Message& msg) {
  if (msg.is<ShuffleRequest>()) {
    const auto& req = net::payload_as<ShuffleRequest>(msg);
    // Reply with our own sample, then merge theirs.
    std::vector<ViewEntry> sample;
    sample.push_back(ViewEntry{addr_, 0});
    std::vector<std::size_t> idx(view_.size());
    for (std::size_t i = 0; i < idx.size(); ++i) idx[i] = i;
    rng_.shuffle(idx);
    for (std::size_t i = 0;
         i < idx.size() && sample.size() < config_.shuffle_size; ++i) {
      sample.push_back(view_[idx[i]]);
    }
    std::vector<Rumor> recent = recent_snapshot();
    const std::size_t bytes = config_.message_bytes + 16 * recent.size();
    net_.send(addr_, msg.from,
              ShuffleReply{std::move(sample), std::move(recent)}, bytes);
    merge_view(req.entries);
    absorb_recent(req.recent);
    return;
  }
  if (msg.is<ShuffleReply>()) {
    const auto& reply = net::payload_as<ShuffleReply>(msg);
    merge_view(reply.entries);
    absorb_recent(reply.recent);
    return;
  }
  if (msg.is<Rumor>()) {
    accept_rumor(net::payload_shared<Rumor>(msg), msg.cookie, msg.span);
    return;
  }
}

}  // namespace decentnet::overlay
