#include "overlay/onehop.hpp"

#include <algorithm>

#include "crypto/buffer.hpp"

namespace decentnet::overlay {

namespace ohm = onehop_msg;

namespace {
ChordId default_id(net::NodeId addr) {
  crypto::ByteWriter w;
  w.str("onehop-node").u64(addr.value);
  return w.sha256().prefix64();
}
}  // namespace

OneHopNode::OneHopNode(net::Network& net, net::NodeId addr,
                       OneHopConfig config, std::optional<ChordId> id)
    : net_(net),
      sim_(net.simulator()),
      addr_(addr),
      id_(id ? *id : default_id(addr)),
      config_(config),
      rng_(net.simulator().rng().fork(addr.value ^ 0x04E40Full)),
      next_nonce_(addr.value << 20) {}

OneHopNode::~OneHopNode() {
  if (online_) crash();
}

void OneHopNode::create() {
  net_.attach(addr_, this);
  online_ = true;
  members_.clear();
  members_[id_] = self();
  gossip_timer_ = sim_.schedule_periodic(
      rng_.uniform_int(0, config_.gossip_interval), config_.gossip_interval,
      [this] { gossip_tick(); });
}

void OneHopNode::join(const ChordContact& bootstrap) {
  net_.attach(addr_, this);
  online_ = true;
  members_.clear();
  members_[id_] = self();
  members_[bootstrap.id] = bootstrap;
  // Pull the full table from the bootstrap node.
  const std::uint64_t nonce =
      register_pending([this](bool ok, const net::Message* reply) {
        if (!ok || !online_) return;
        const auto& r = net::payload_as<ohm::TableReply>(*reply);
        for (const ChordContact& c : r.members) members_[c.id] = c;
      });
  net_.send(addr_, bootstrap.addr, ohm::TableRequest{nonce},
            config_.query_bytes);
  // Announce ourselves.
  emit_event(true, self());
  gossip_timer_ = sim_.schedule_periodic(
      rng_.uniform_int(0, config_.gossip_interval), config_.gossip_interval,
      [this] { gossip_tick(); });
}

void OneHopNode::leave() {
  if (online_) {
    emit_event(false, self());
    // Push the departure immediately so it spreads before we vanish.
    gossip_tick();
  }
  crash();
}

void OneHopNode::crash() {
  online_ = false;
  gossip_timer_.cancel();
  net_.detach(addr_);
  auto pending = std::move(pending_);
  pending_.clear();
  for (auto& [nonce, rpc] : pending) {
    rpc.timeout.cancel();
    rpc.on_done(false, nullptr);
  }
}

bool OneHopNode::knows(net::NodeId addr) const {
  return std::any_of(members_.begin(), members_.end(), [&](const auto& kv) {
    return kv.second.addr == addr;
  });
}

void OneHopNode::emit_event(bool joined, const ChordContact& node) {
  crypto::ByteWriter w;
  w.str("onehop-event").u64(node.addr.value).u8(joined ? 1 : 0).u64(
      static_cast<std::uint64_t>(sim_.now()));
  const std::uint64_t event_id = w.sha256().prefix64();
  apply_event(ohm::MembershipEvent{event_id, joined, node}, true);
}

void OneHopNode::apply_event(const ohm::MembershipEvent& ev, bool forward) {
  if (!seen_events_.insert(ev.event_id).second) return;
  if (ev.joined) {
    members_[ev.node.id] = ev.node;
  } else if (ev.node.addr != addr_) {
    remove_member(ev.node);
  }
  if (forward) outbox_.push_back(ev);
}

void OneHopNode::remove_member(const ChordContact& c) {
  const auto it = members_.find(c.id);
  if (it != members_.end() && it->second.addr == c.addr) members_.erase(it);
}

void OneHopNode::gossip_tick() {
  if (!online_ || outbox_.empty() || members_.size() < 2) {
    // Events age out after a few rounds of spreading; cap outbox growth.
    if (outbox_.size() > config_.max_events_per_gossip * 4) {
      outbox_.erase(outbox_.begin(),
                    outbox_.end() - static_cast<long>(
                                        config_.max_events_per_gossip * 2));
    }
    return;
  }
  ohm::GossipBatch batch;
  const std::size_t n =
      std::min(outbox_.size(), config_.max_events_per_gossip);
  batch.events.assign(outbox_.end() - static_cast<long>(n), outbox_.end());
  // Pick fanout random members.
  std::vector<ChordContact> targets;
  targets.reserve(members_.size());
  for (const auto& [mid, c] : members_) {
    if (c.addr != addr_) targets.push_back(c);
  }
  rng_.shuffle(targets);
  const std::size_t fanout = std::min(config_.gossip_fanout, targets.size());
  const std::size_t bytes = 16 + config_.event_bytes * batch.events.size();
  for (std::size_t i = 0; i < fanout; ++i) {
    net_.send(addr_, targets[i].addr, batch, bytes);
  }
  // Each event is pushed for a bounded number of ticks: drop spread events
  // probabilistically (infect-and-die with p=0.5 per tick after send).
  std::erase_if(outbox_, [this](const ohm::MembershipEvent&) {
    return rng_.chance(0.5);
  });
}

ChordContact OneHopNode::successor_of(ChordId key) const {
  if (members_.empty()) return self();
  auto it = members_.lower_bound(key);
  if (it == members_.end()) it = members_.begin();  // wrap
  return it->second;
}

std::uint64_t OneHopNode::register_pending(
    std::function<void(bool, const net::Message*)> cb) {
  const std::uint64_t nonce = ++next_nonce_;
  PendingRpc rpc;
  rpc.on_done = std::move(cb);
  rpc.timeout = sim_.schedule(config_.rpc_timeout, [this, nonce] {
    const auto it = pending_.find(nonce);
    if (it == pending_.end()) return;
    auto done = std::move(it->second.on_done);
    pending_.erase(it);
    done(false, nullptr);
  });
  pending_.emplace(nonce, std::move(rpc));
  return nonce;
}

void OneHopNode::lookup(ChordId key, LookupCallback cb) {
  auto acc = std::make_shared<OneHopLookupResult>();
  acc->elapsed = 0;
  try_lookup(acc, key, std::move(cb));
}

void OneHopNode::try_lookup(std::shared_ptr<OneHopLookupResult> acc,
                            ChordId key, LookupCallback cb) {
  ++acc->attempts;
  const sim::SimTime started = sim_.now();
  const ChordContact target = successor_of(key);
  if (target.addr == addr_) {
    acc->ok = true;
    acc->owner = self();
    cb(*acc);
    return;
  }
  const std::uint64_t nonce = register_pending(
      [this, acc, key, cb, started, target](bool ok,
                                            const net::Message* reply) {
        acc->elapsed += sim_.now() - started;
        if (ok) {
          acc->ok = true;
          acc->owner = net::payload_as<ohm::DirectAck>(*reply).owner;
          cb(*acc);
          return;
        }
        // Stale entry: evict, spread the death, retry with the next owner.
        remove_member(target);
        emit_event(false, target);
        if (acc->attempts >= config_.lookup_retries || !online_) {
          cb(*acc);
          return;
        }
        try_lookup(acc, key, cb);
      });
  net_.send(addr_, target.addr, ohm::DirectQuery{key, nonce},
            config_.query_bytes);
}

void OneHopNode::handle_message(const net::Message& msg) {
  if (msg.is<ohm::GossipBatch>()) {
    for (const auto& ev : net::payload_as<ohm::GossipBatch>(msg).events) {
      apply_event(ev, true);
    }
    return;
  }
  if (msg.is<ohm::TableRequest>()) {
    const auto& req = net::payload_as<ohm::TableRequest>(msg);
    ohm::TableReply reply;
    reply.nonce = req.nonce;
    reply.members.reserve(members_.size());
    for (const auto& [mid, c] : members_) reply.members.push_back(c);
    net_.send(addr_, msg.from, std::move(reply),
              16 + config_.event_bytes * members_.size());
    return;
  }
  if (msg.is<ohm::TableReply>()) {
    const auto& r = net::payload_as<ohm::TableReply>(msg);
    const auto it = pending_.find(r.nonce);
    if (it == pending_.end()) return;
    auto done = std::move(it->second.on_done);
    it->second.timeout.cancel();
    pending_.erase(it);
    done(true, &msg);
    return;
  }
  if (msg.is<ohm::DirectQuery>()) {
    const auto& q = net::payload_as<ohm::DirectQuery>(msg);
    net_.send(addr_, msg.from, ohm::DirectAck{q.nonce, self()},
              config_.query_bytes);
    return;
  }
  if (msg.is<ohm::DirectAck>()) {
    const auto& a = net::payload_as<ohm::DirectAck>(msg);
    const auto it = pending_.find(a.nonce);
    if (it == pending_.end()) return;
    auto done = std::move(it->second.on_done);
    it->second.timeout.cancel();
    pending_.erase(it);
    done(true, &msg);
    return;
  }
}

}  // namespace decentnet::overlay
