// Two-tier superpeer overlay (Kazaa / eDonkey / early Skype architecture).
//
// Stable, well-provisioned superpeers form a flooded mesh and index the
// content of their attached leaves; leaves send queries to their superpeer
// only. The paper credits this design with "boosting overall performance"
// over flat Gnutella — E15 compares the two under identical churn.
#pragma once

#include <cstdint>
#include <functional>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "net/message.hpp"
#include "net/network.hpp"
#include "overlay/flood.hpp"  // ContentId, QueryOutcome
#include "sim/simulator.hpp"

namespace decentnet::overlay {

struct SuperpeerConfig {
  std::uint32_t sp_ttl = 4;  // smaller mesh needs fewer hops
  sim::SimDuration query_deadline = sim::seconds(20);
  std::size_t query_bytes = 96;
  std::size_t register_bytes_per_item = 24;
};

namespace superpeer_msg {
struct LeafRegister {
  std::vector<ContentId> items;
};
struct LeafUnregister {};
struct LeafQuery {
  ContentId item;
  std::uint64_t qid;
};
struct LeafQueryReply {
  std::uint64_t qid;
  bool found;
  net::NodeId provider;
  std::uint32_t hops;
};
struct SpQuery {
  ContentId item;
  std::uint64_t qid;
  std::uint32_t ttl;
  std::uint32_t hops;
  net::NodeId origin_sp;
};
struct SpQueryHit {
  std::uint64_t qid;
  net::NodeId provider;
  std::uint32_t hops;
};
}  // namespace superpeer_msg

class SuperpeerNode final : public net::Host {
 public:
  SuperpeerNode(net::Network& net, net::NodeId addr, SuperpeerConfig config);
  ~SuperpeerNode() override;

  SuperpeerNode(const SuperpeerNode&) = delete;
  SuperpeerNode& operator=(const SuperpeerNode&) = delete;

  net::NodeId addr() const { return addr_; }

  void join(std::vector<net::NodeId> sp_neighbors);
  void leave();
  bool online() const { return online_; }

  std::size_t indexed_items() const { return index_.size(); }
  std::size_t leaf_count() const { return leaf_items_.size(); }

  void handle_message(const net::Message& msg) override;

 private:
  friend class LeafNode;

  /// Who (among my leaves) has `item`? Invalid id if none.
  net::NodeId local_provider(ContentId item) const;
  void flood_to_sps(const superpeer_msg::SpQuery& q, net::NodeId skip);

  net::Network& net_;
  sim::Simulator& sim_;
  net::NodeId addr_;
  SuperpeerConfig config_;
  bool online_ = false;
  std::vector<net::NodeId> sp_neighbors_;
  // content -> leaves providing it
  std::unordered_map<ContentId, std::vector<net::NodeId>> index_;
  // leaf -> its registered items (for unregistration)
  std::unordered_map<net::NodeId, std::vector<ContentId>, net::NodeIdHasher>
      leaf_items_;
  // SP-mesh query dedup + reverse path: qid -> upstream SP
  std::unordered_map<std::uint64_t, net::NodeId> seen_queries_;
  // queries originated here on behalf of a leaf: qid -> leaf
  std::unordered_map<std::uint64_t, net::NodeId> leaf_queries_;
};

class LeafNode final : public net::Host {
 public:
  using QueryCallback = std::function<void(QueryOutcome)>;

  LeafNode(net::Network& net, net::NodeId addr, SuperpeerConfig config);
  ~LeafNode() override;

  LeafNode(const LeafNode&) = delete;
  LeafNode& operator=(const LeafNode&) = delete;

  net::NodeId addr() const { return addr_; }

  /// Attach to a superpeer and register shared content.
  void join(net::NodeId superpeer, std::vector<ContentId> shared);
  void leave();
  bool online() const { return online_; }

  void query(ContentId item, QueryCallback cb);

  void handle_message(const net::Message& msg) override;

 private:
  struct ActiveQuery {
    QueryCallback cb;
    sim::SimTime started = 0;
    sim::EventHandle deadline;
  };

  net::Network& net_;
  sim::Simulator& sim_;
  net::NodeId addr_;
  SuperpeerConfig config_;
  bool online_ = false;
  net::NodeId superpeer_;
  std::vector<ContentId> shared_;
  std::unordered_map<std::uint64_t, ActiveQuery> queries_;
  std::uint64_t next_qid_;
};

}  // namespace decentnet::overlay
