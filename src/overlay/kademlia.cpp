#include "overlay/kademlia.hpp"

#include <algorithm>
#include <cassert>

#include "crypto/buffer.hpp"

namespace decentnet::overlay {

using kademlia_msg::FindNode;
using kademlia_msg::FindNodeReply;
using kademlia_msg::Store;

namespace {
Key default_id(net::NodeId addr) {
  crypto::ByteWriter w;
  w.str("kad-node").u64(addr.value);
  return w.sha256();
}
}  // namespace

KademliaNode::KademliaNode(net::Network& net, net::NodeId addr,
                           KademliaConfig config, std::optional<Key> id)
    : net_(net),
      sim_(net.simulator()),
      addr_(addr),
      id_(id ? *id : default_id(addr)),
      config_(config),
      m_lookups_(net.metrics().counter("overlay/kad_lookups")),
      m_rpcs_(net.metrics().counter("overlay/kad_rpcs")),
      m_rpc_timeouts_(net.metrics().counter("overlay/kad_rpc_timeouts")),
      buckets_(256) {}

KademliaNode::~KademliaNode() {
  if (online_) leave();
}

void KademliaNode::join(const std::vector<Contact>& bootstrap) {
  net_.attach(addr_, this);
  online_ = true;
  for (const Contact& c : bootstrap) touch_contact(c);
  // Locate ourselves: populates buckets along the path to our own id.
  if (!bootstrap.empty()) {
    lookup(id_, [](LookupResult) {});
  }
  refresh_timer_ = sim_.schedule_periodic(
      config_.refresh_interval, config_.refresh_interval,
      [this] { refresh_buckets(); });
}

void KademliaNode::leave() {
  online_ = false;
  refresh_timer_.cancel();
  net_.detach(addr_);
  // Fail in-flight RPCs so outstanding lookups terminate promptly.
  auto pending = std::move(pending_);
  pending_.clear();
  for (auto& [nonce, rpc] : pending) {
    rpc.timeout.cancel();
    rpc.on_done(false, nullptr);
  }
}

int KademliaNode::bucket_index(const Key& other) const {
  const int lz = id_.distance_to(other).leading_zero_bits();
  if (lz >= 256) return -1;  // ourselves
  return 255 - lz;
}

void KademliaNode::touch_contact(const Contact& c) {
  if (c.addr == addr_) return;
  const int idx = bucket_index(c.id);
  if (idx < 0) return;
  Bucket& bucket = buckets_[static_cast<std::size_t>(idx)];
  auto it = std::find(bucket.contacts.begin(), bucket.contacts.end(), c);
  if (it != bucket.contacts.end()) {
    // Move to most-recently-seen position.
    Contact moved = *it;
    moved.id = c.id;
    bucket.contacts.erase(it);
    bucket.contacts.push_back(moved);
    return;
  }
  if (bucket.contacts.size() < config_.k) {
    bucket.contacts.push_back(c);
    return;
  }
  if (config_.naive_eviction) {
    // Faulty-client behaviour: drop the oldest without verifying it.
    bucket.contacts.erase(bucket.contacts.begin());
    bucket.contacts.push_back(c);
    return;
  }
  evict_or_keep(idx, c);
}

void KademliaNode::evict_or_keep(int bucket_idx, const Contact& candidate) {
  Bucket& bucket = buckets_[static_cast<std::size_t>(bucket_idx)];
  // Remember the candidate; ping the least-recently-seen contact. If it
  // answers, it stays (Kademlia's bias toward long-lived peers); if not, the
  // candidate replaces it.
  if (bucket.replacement_cache.size() < config_.k) {
    if (std::find(bucket.replacement_cache.begin(),
                  bucket.replacement_cache.end(),
                  candidate) == bucket.replacement_cache.end()) {
      bucket.replacement_cache.push_back(candidate);
    }
  }
  if (bucket.contacts.empty() || bucket.eviction_ping_pending) return;
  bucket.eviction_ping_pending = true;
  const Contact lru = bucket.contacts.front();
  send_rpc(lru, /*find_value=*/false, id_,
           [this, bucket_idx, lru](bool ok, const net::Message*) {
             Bucket& b = buckets_[static_cast<std::size_t>(bucket_idx)];
             b.eviction_ping_pending = false;
             auto it = std::find(b.contacts.begin(), b.contacts.end(), lru);
             if (ok) {
               if (it != b.contacts.end()) {
                 const Contact c = *it;
                 b.contacts.erase(it);
                 b.contacts.push_back(c);
               }
             } else {
               if (it != b.contacts.end()) b.contacts.erase(it);
               if (!b.replacement_cache.empty() &&
                   b.contacts.size() < config_.k) {
                 b.contacts.push_back(b.replacement_cache.back());
                 b.replacement_cache.pop_back();
               }
             }
           });
}

std::vector<Contact> KademliaNode::closest_contacts(const Key& target,
                                                    std::size_t count) const {
  std::vector<Contact> all;
  for (const Bucket& b : buckets_) {
    all.insert(all.end(), b.contacts.begin(), b.contacts.end());
  }
  std::sort(all.begin(), all.end(), [&](const Contact& a, const Contact& b) {
    return a.id.distance_to(target) < b.id.distance_to(target);
  });
  if (all.size() > count) all.resize(count);
  return all;
}

std::vector<Contact> KademliaNode::routing_table() const {
  std::vector<Contact> all;
  for (const Bucket& b : buckets_) {
    all.insert(all.end(), b.contacts.begin(), b.contacts.end());
  }
  return all;
}

std::size_t KademliaNode::routing_table_size() const {
  std::size_t n = 0;
  for (const Bucket& b : buckets_) n += b.contacts.size();
  return n;
}

std::uint64_t KademliaNode::send_rpc(
    const Contact& to, bool find_value, const Key& target,
    std::function<void(bool, const net::Message*)> cb) {
  const std::uint64_t nonce = next_nonce_++;
  if (!online_) {
    // Caller left the network mid-lookup: fail asynchronously so the lookup
    // engine unwinds without reentrancy surprises.
    sim_.post(0, [cb = std::move(cb)] { cb(false, nullptr); });
    return nonce;
  }
  m_rpcs_.add();
  PendingRpc rpc;
  rpc.on_done = std::move(cb);
  rpc.timeout = sim_.schedule(
      config_.rpc_timeout,
      [this, nonce, to] {
        auto it = pending_.find(nonce);
        if (it == pending_.end()) return;
        auto done = std::move(it->second.on_done);
        pending_.erase(it);
        m_rpc_timeouts_.add();
        fail_contact(to);
        done(false, nullptr);
      },
      "kad/rpc_timeout");
  pending_.emplace(nonce, std::move(rpc));
  net_.send(addr_, to.addr,
            FindNode{target, nonce, Contact{id_, addr_}, find_value},
            config_.message_bytes);
  return nonce;
}

void KademliaNode::fail_contact(const Contact& c) {
  if (!config_.evict_on_failure) return;  // "questionable" contacts linger
  const int idx = bucket_index(c.id);
  if (idx < 0) return;
  Bucket& b = buckets_[static_cast<std::size_t>(idx)];
  const auto it = std::find(b.contacts.begin(), b.contacts.end(), c);
  if (it != b.contacts.end()) b.contacts.erase(it);
}

// ---------------------------------------------------------------------------
// Iterative lookup engine
// ---------------------------------------------------------------------------

struct KademliaNode::LookupState {
  enum class Status : std::uint8_t { New, InFlight, Done, Failed };
  struct Entry {
    Contact contact;
    Status status = Status::New;
    std::size_t tries = 0;  // RPC attempts issued to this contact
  };

  Key target;
  bool want_value = false;
  LookupCallback cb;
  sim::SimTime started = 0;
  std::vector<Entry> shortlist;  // kept sorted by XOR distance to target
  std::size_t in_flight = 0;
  std::size_t rpcs = 0;
  std::size_t timeouts = 0;
  bool finished = false;
  std::optional<std::string> value;

  bool contains(const Contact& c) const {
    return std::any_of(shortlist.begin(), shortlist.end(),
                       [&](const Entry& e) { return e.contact == c; });
  }

  void insert(const Contact& c) {
    if (contains(c)) return;
    Entry e{c, Status::New};
    const auto pos = std::lower_bound(
        shortlist.begin(), shortlist.end(), e,
        [&](const Entry& a, const Entry& b) {
          return a.contact.id.distance_to(target) <
                 b.contact.id.distance_to(target);
        });
    shortlist.insert(pos, e);
  }
};

void KademliaNode::lookup(const Key& target, LookupCallback cb) {
  start_lookup(target, /*want_value=*/false, std::move(cb));
}

void KademliaNode::find_value(const Key& key, LookupCallback cb) {
  // Serve from local storage first, as the protocol specifies.
  const auto it = storage_.find(key);
  if (it != storage_.end()) {
    LookupResult r;
    r.found_value = true;
    r.value = it->second;
    cb(std::move(r));
    return;
  }
  start_lookup(key, /*want_value=*/true, std::move(cb));
}

void KademliaNode::store(const Key& key, std::string value,
                         std::function<void(std::size_t)> cb) {
  start_lookup(key, /*want_value=*/false,
               [this, key, value = std::move(value),
                cb = std::move(cb)](LookupResult r) {
                 std::size_t replicas = 0;
                 for (const Contact& c : r.closest) {
                   net_.send(addr_, c.addr,
                             Store{key, value, Contact{id_, addr_}},
                             config_.message_bytes + value.size());
                   ++replicas;
                 }
                 if (replicas == 0) {
                   // No peers known: keep it locally so the data survives.
                   storage_[key] = value;
                 }
                 if (cb) cb(replicas);
               });
}

void KademliaNode::start_lookup(const Key& target, bool want_value,
                                LookupCallback cb) {
  auto state = std::make_shared<LookupState>();
  state->target = target;
  state->want_value = want_value;
  state->cb = std::move(cb);
  state->started = sim_.now();
  for (const Contact& c : closest_contacts(target, config_.k)) {
    state->insert(c);
  }
  if (state->shortlist.empty()) {
    finish_lookup(state);
    return;
  }
  lookup_step(state);
}

void KademliaNode::lookup_step(const std::shared_ptr<LookupState>& state) {
  if (state->finished) return;
  using Status = LookupState::Status;

  // Termination: the k closest non-failed entries are all Done.
  std::size_t considered = 0;
  bool all_done = true;
  bool any_new = false;
  for (const auto& e : state->shortlist) {
    if (e.status == Status::Failed) continue;
    if (considered++ >= config_.k) break;
    if (e.status != Status::Done) all_done = false;
    if (e.status == Status::New) any_new = true;
  }
  if ((all_done && considered > 0) || (!any_new && state->in_flight == 0)) {
    finish_lookup(state);
    return;
  }

  // Issue RPCs to the closest New entries, up to alpha in flight.
  for (auto& e : state->shortlist) {
    if (state->in_flight >= config_.alpha) break;
    if (e.status != Status::New) continue;
    // Only probe within the k closest non-failed window.
    e.status = Status::InFlight;
    ++e.tries;
    ++state->in_flight;
    ++state->rpcs;
    const Contact peer = e.contact;
    send_rpc(peer, state->want_value, state->target,
             [this, state, peer](bool ok, const net::Message* reply) {
               --state->in_flight;
               auto it = std::find_if(
                   state->shortlist.begin(), state->shortlist.end(),
                   [&](const LookupState::Entry& en) {
                     return en.contact == peer;
                   });
               if (!ok) {
                 ++state->timeouts;
                 if (it != state->shortlist.end()) {
                   // Retry-with-timeout: put the contact back in the New
                   // pool while it has attempts left; transient faults
                   // (loss bursts, latency spikes) should not strike
                   // reachable peers from the shortlist.
                   it->status = it->tries <= config_.rpc_retries
                                    ? Status::New
                                    : Status::Failed;
                 }
                 lookup_step(state);
                 return;
               }
               if (it != state->shortlist.end()) it->status = Status::Done;
               const auto& r = net::payload_as<FindNodeReply>(*reply);
               if (state->want_value && r.has_value && !state->finished) {
                 state->value = r.value;
                 finish_lookup(state);
                 return;
               }
               for (const Contact& c : r.contacts) {
                 if (c.addr != addr_) state->insert(c);
               }
               lookup_step(state);
             });
  }
}

void KademliaNode::finish_lookup(const std::shared_ptr<LookupState>& state) {
  if (state->finished) return;
  state->finished = true;
  m_lookups_.add();
  LookupResult r;
  r.found_value = state->value.has_value();
  r.value = state->value;
  r.rpcs_sent = state->rpcs;
  r.timeouts = state->timeouts;
  r.elapsed = sim_.now() - state->started;
  using Status = LookupState::Status;
  for (const auto& e : state->shortlist) {
    if (e.status == Status::Done && r.closest.size() < config_.k) {
      r.closest.push_back(e.contact);
    }
  }
  state->cb(std::move(r));
}

// ---------------------------------------------------------------------------
// Message handling
// ---------------------------------------------------------------------------

void KademliaNode::handle_message(const net::Message& msg) {
  if (msg.is<FindNode>()) {
    const auto& req = net::payload_as<FindNode>(msg);
    touch_contact(req.sender);
    FindNodeReply reply;
    reply.nonce = req.nonce;
    reply.sender = Contact{id_, addr_};
    reply.has_value = false;
    if (req.want_value) {
      const auto it = storage_.find(req.target);
      if (it != storage_.end()) {
        reply.has_value = true;
        reply.value = it->second;
      }
    }
    if (!reply.has_value) {
      reply.contacts = closest_contacts(req.target, config_.k);
      // Do not hand the requester itself back.
      std::erase_if(reply.contacts,
                    [&](const Contact& c) { return c.addr == msg.from; });
    }
    const std::size_t bytes =
        100 + 40 * reply.contacts.size() + reply.value.size();
    net_.send(addr_, msg.from, std::move(reply), bytes);
    return;
  }
  if (msg.is<FindNodeReply>()) {
    const auto& r = net::payload_as<FindNodeReply>(msg);
    // Per the Kademlia spec only the *responding* node earns a routing-table
    // slot; contacts merely mentioned in a reply must answer a query of ours
    // first. (Blind insertion would also let one poisoned reply trigger a
    // cascade of eviction probes.)
    touch_contact(r.sender);
    const auto it = pending_.find(r.nonce);
    if (it == pending_.end()) return;  // late reply after timeout
    auto done = std::move(it->second.on_done);
    it->second.timeout.cancel();
    pending_.erase(it);
    done(true, &msg);
    return;
  }
  if (msg.is<Store>()) {
    const auto& s = net::payload_as<Store>(msg);
    touch_contact(s.sender);
    storage_[s.key] = s.value;
    return;
  }
}

void KademliaNode::refresh_buckets() {
  if (!online_) return;
  sim::Rng& rng = sim_.rng();
  for (std::size_t i = 0; i < buckets_.size(); ++i) {
    if (buckets_[i].contacts.empty()) continue;
    // Random target inside bucket i's range: shares exactly (255 - i) prefix
    // bits with our id, differs at bit (255 - i).
    Key target = id_;
    const int diff_bit = 255 - static_cast<int>(i);
    const auto byte = static_cast<std::size_t>(diff_bit / 8);
    const int bit_in_byte = 7 - diff_bit % 8;
    target.bytes[byte] ^= static_cast<std::uint8_t>(1u << bit_in_byte);
    for (std::size_t b = byte + 1; b < 32; ++b) {
      target.bytes[b] = static_cast<std::uint8_t>(rng.next());
    }
    lookup(target, [](LookupResult) {});
  }
}

}  // namespace decentnet::overlay
