#include "overlay/kademlia.hpp"

#include <algorithm>
#include <cassert>

#include "crypto/buffer.hpp"

namespace decentnet::overlay {

using kademlia_msg::FindNode;
using kademlia_msg::FindNodeReply;
using kademlia_msg::Store;

namespace {
Key default_id(net::NodeId addr) {
  crypto::ByteWriter w;
  w.str("kad-node").u64(addr.value);
  return w.sha256();
}
}  // namespace

std::optional<std::string> KademliaConfig::validate() const {
  if (k == 0) return "KademliaConfig.k must be >= 1 (bucket size)";
  if (alpha == 0) return "KademliaConfig.alpha must be >= 1 (parallelism)";
  if (rpc_timeout <= 0) {
    return "KademliaConfig.rpc_timeout must be positive";
  }
  if (refresh_interval <= 0) {
    return "KademliaConfig.refresh_interval must be positive";
  }
  if (message_bytes == 0) {
    return "KademliaConfig.message_bytes must be nonzero (wire accounting)";
  }
  return std::nullopt;
}

KademliaNode::KademliaNode(net::Network& net, net::NodeId addr,
                           KademliaConfig config, std::optional<Key> id)
    // simulator_for/metrics_for: the node's timers and metric handles live
    // on the shard that owns its NodeId (the plain simulator()/metrics()
    // when the network is unsharded).
    : net_(net),
      sim_(net.simulator_for(addr)),
      addr_(addr),
      id_(id ? *id : default_id(addr)),
      config_(config),
      m_lookups_(net.metrics_for(addr).counter("overlay/kad_lookups")),
      m_rpcs_(net.metrics_for(addr).counter("overlay/kad_rpcs")),
      m_rpc_timeouts_(
          net.metrics_for(addr).counter("overlay/kad_rpc_timeouts")),
      m_path_len_(net.span_tracking()
                      ? &net.metrics_for(addr).histogram(
                            "overlay/lookup_path_len")
                      : nullptr) {
  if (const auto err = config_.validate()) {
    throw std::invalid_argument(*err);
  }
}

KademliaNode::~KademliaNode() {
  if (online_) leave();
}

void KademliaNode::join(const std::vector<Contact>& bootstrap) {
  net_.attach(addr_, this);
  online_ = true;
  for (const Contact& c : bootstrap) touch_contact(c);
  // Locate ourselves: populates buckets along the path to our own id.
  if (!bootstrap.empty()) {
    lookup(id_, [](LookupResult) {});
  }
  refresh_timer_ = sim_.schedule_periodic(
      config_.refresh_interval, config_.refresh_interval,
      [this] { refresh_buckets(); });
}

void KademliaNode::leave() {
  online_ = false;
  refresh_timer_.cancel();
  net_.detach(addr_);
  // Fail in-flight RPCs so outstanding lookups terminate promptly.
  auto pending = std::move(pending_);
  pending_.clear();
  for (auto& [nonce, rpc] : pending) {
    rpc.timeout.cancel();
    rpc.on_done(false, nullptr);
  }
}

int KademliaNode::bucket_index(const Key& other) const {
  const int lz = id_.distance_to(other).leading_zero_bits();
  if (lz >= 256) return -1;  // ourselves
  return 255 - lz;
}

KademliaNode::Bucket* KademliaNode::find_bucket(int index) {
  const auto it = std::lower_bound(
      buckets_.begin(), buckets_.end(), index,
      [](const BucketSlot& s, int i) { return static_cast<int>(s.index) < i; });
  if (it == buckets_.end() || static_cast<int>(it->index) != index) {
    return nullptr;
  }
  return &it->bucket;
}

const KademliaNode::Bucket* KademliaNode::find_bucket(int index) const {
  return const_cast<KademliaNode*>(this)->find_bucket(index);
}

KademliaNode::Bucket& KademliaNode::bucket_for(int index) {
  const auto it = std::lower_bound(
      buckets_.begin(), buckets_.end(), index,
      [](const BucketSlot& s, int i) { return static_cast<int>(s.index) < i; });
  if (it != buckets_.end() && static_cast<int>(it->index) == index) {
    return it->bucket;
  }
  return buckets_.insert(it, BucketSlot{static_cast<std::uint16_t>(index), {}})
      ->bucket;
}

void KademliaNode::touch_contact(const Contact& c) {
  if (c.addr == addr_) return;
  const int idx = bucket_index(c.id);
  if (idx < 0) return;
  Bucket& bucket = bucket_for(idx);
  auto it = std::find(bucket.contacts.begin(), bucket.contacts.end(), c);
  if (it != bucket.contacts.end()) {
    // Move to most-recently-seen position.
    Contact moved = *it;
    moved.id = c.id;
    bucket.contacts.erase(it);
    bucket.contacts.push_back(moved);
    return;
  }
  if (bucket.contacts.size() < config_.k) {
    bucket.contacts.push_back(c);
    return;
  }
  if (config_.naive_eviction) {
    // Faulty-client behaviour: drop the oldest without verifying it.
    bucket.contacts.erase(bucket.contacts.begin());
    bucket.contacts.push_back(c);
    return;
  }
  evict_or_keep(idx, c);
}

void KademliaNode::evict_or_keep(int bucket_idx, const Contact& candidate) {
  Bucket& bucket = bucket_for(bucket_idx);
  // Remember the candidate; ping the least-recently-seen contact. If it
  // answers, it stays (Kademlia's bias toward long-lived peers); if not, the
  // candidate replaces it.
  if (bucket.replacement_cache.size() < config_.k) {
    if (std::find(bucket.replacement_cache.begin(),
                  bucket.replacement_cache.end(),
                  candidate) == bucket.replacement_cache.end()) {
      bucket.replacement_cache.push_back(candidate);
    }
  }
  if (bucket.contacts.empty() || bucket.eviction_ping_pending) return;
  bucket.eviction_ping_pending = true;
  const Contact lru = bucket.contacts.front();
  send_rpc(lru, make_request(/*find_value=*/false, id_),
           [this, bucket_idx, lru](bool ok, const net::Message*) {
             // Re-resolve: bucket insertions may have reallocated the table
             // while the ping was in flight.
             Bucket* const bp = find_bucket(bucket_idx);
             if (bp == nullptr) return;
             Bucket& b = *bp;
             b.eviction_ping_pending = false;
             auto it = std::find(b.contacts.begin(), b.contacts.end(), lru);
             if (ok) {
               if (it != b.contacts.end()) {
                 const Contact c = *it;
                 b.contacts.erase(it);
                 b.contacts.push_back(c);
               }
             } else {
               if (it != b.contacts.end()) b.contacts.erase(it);
               if (!b.replacement_cache.empty() &&
                   b.contacts.size() < config_.k) {
                 b.contacts.push_back(b.replacement_cache.back());
                 b.replacement_cache.pop_back();
               }
             }
           });
}

std::vector<Contact> KademliaNode::closest_contacts(const Key& target,
                                                    std::size_t count) const {
  std::vector<Contact> all;
  for (const BucketSlot& s : buckets_) {
    all.insert(all.end(), s.bucket.contacts.begin(), s.bucket.contacts.end());
  }
  // XOR distances to a fixed target are unique per id, so partial_sort is
  // deterministic and skips ordering the (n - count) tail every reply.
  const std::size_t keep = std::min(count, all.size());
  std::partial_sort(all.begin(),
                    all.begin() + static_cast<std::ptrdiff_t>(keep), all.end(),
                    [&](const Contact& a, const Contact& b) {
                      return a.id.distance_to(target) <
                             b.id.distance_to(target);
                    });
  all.resize(keep);
  return all;
}

std::vector<Contact> KademliaNode::routing_table() const {
  std::vector<Contact> all;
  for (const BucketSlot& s : buckets_) {
    all.insert(all.end(), s.bucket.contacts.begin(), s.bucket.contacts.end());
  }
  return all;
}

std::size_t KademliaNode::routing_table_size() const {
  std::size_t n = 0;
  for (const BucketSlot& s : buckets_) n += s.bucket.contacts.size();
  return n;
}

sim::Shared<FindNode> KademliaNode::make_request(bool find_value,
                                                 const Key& target) const {
  return sim::Shared<FindNode>::make(
      FindNode{target, Contact{id_, addr_}, find_value});
}

std::uint64_t KademliaNode::send_rpc(
    const Contact& to, const sim::Shared<FindNode>& request,
    std::function<void(bool, const net::Message*)> cb, net::Span span) {
  const std::uint64_t nonce = next_nonce_++;
  if (!online_) {
    // Caller left the network mid-lookup: fail asynchronously so the lookup
    // engine unwinds without reentrancy surprises.
    sim_.post(0, [cb = std::move(cb)] { cb(false, nullptr); });
    return nonce;
  }
  m_rpcs_.add();
  PendingRpc rpc;
  rpc.on_done = std::move(cb);
  rpc.timeout = sim_.schedule(
      config_.rpc_timeout,
      [this, nonce, to] {
        auto it = pending_.find(nonce);
        if (it == pending_.end()) return;
        auto done = std::move(it->second.on_done);
        pending_.erase(it);
        m_rpc_timeouts_.add();
        fail_contact(to);
        done(false, nullptr);
      },
      "kad/rpc_timeout");
  pending_.emplace(nonce, std::move(rpc));
  net_.send(addr_, to.addr, request, config_.message_bytes, /*cookie=*/nonce,
            span);
  return nonce;
}

void KademliaNode::fail_contact(const Contact& c) {
  if (!config_.evict_on_failure) return;  // "questionable" contacts linger
  const int idx = bucket_index(c.id);
  if (idx < 0) return;
  Bucket* const b = find_bucket(idx);
  if (b == nullptr) return;
  const auto it = std::find(b->contacts.begin(), b->contacts.end(), c);
  if (it != b->contacts.end()) b->contacts.erase(it);
}

// ---------------------------------------------------------------------------
// Iterative lookup engine
// ---------------------------------------------------------------------------

struct KademliaNode::LookupState {
  enum class Status : std::uint8_t { New, InFlight, Done, Failed };
  struct Entry {
    Contact contact;
    Status status = Status::New;
    std::uint32_t depth = 1;  // 1 = from our table, d+1 = found at depth d
    std::size_t tries = 0;    // RPC attempts issued to this contact
  };

  Key target;
  bool want_value = false;
  LookupCallback cb;
  sim::SimTime started = 0;
  /// One FindNode allocation shared by every RPC of this lookup.
  sim::Shared<FindNode> request;
  std::vector<Entry> shortlist;  // kept sorted by XOR distance to target
  std::size_t in_flight = 0;
  std::size_t rpcs = 0;
  std::size_t timeouts = 0;
  bool finished = false;
  std::optional<std::string> value;
  /// Causal frontier: the span of the most recent reply (initially the
  /// lookup's root). New RPC rounds chain below it, so the lookup's
  /// request/reply alternation forms one tree whose depth is the RPC path
  /// length (request + reply per round => 2 hops per round).
  net::Span span;
  std::uint32_t max_span_depth = 0;

  bool contains(const Contact& c) const {
    return std::any_of(shortlist.begin(), shortlist.end(),
                       [&](const Entry& e) { return e.contact == c; });
  }

  void insert(const Contact& c, std::uint32_t depth) {
    if (contains(c)) return;
    Entry e{c, Status::New, depth};
    const auto pos = std::lower_bound(
        shortlist.begin(), shortlist.end(), e,
        [&](const Entry& a, const Entry& b) {
          return a.contact.id.distance_to(target) <
                 b.contact.id.distance_to(target);
        });
    shortlist.insert(pos, e);
  }
};

void KademliaNode::lookup(const Key& target, LookupCallback cb) {
  start_lookup(target, /*want_value=*/false, std::move(cb));
}

void KademliaNode::find_value(const Key& key, LookupCallback cb) {
  // Serve from local storage first, as the protocol specifies.
  const auto it = storage_.find(key);
  if (it != storage_.end()) {
    LookupResult r;
    r.found_value = true;
    r.value = it->second;
    cb(std::move(r));
    return;
  }
  start_lookup(key, /*want_value=*/true, std::move(cb));
}

void KademliaNode::store(const Key& key, std::string value,
                         std::function<void(std::size_t)> cb) {
  start_lookup(key, /*want_value=*/false,
               [this, key, value = std::move(value),
                cb = std::move(cb)](LookupResult r) {
                 std::size_t replicas = 0;
                 if (!r.closest.empty()) {
                   // One allocation replicated to all k holders.
                   const auto shared = sim::Shared<Store>::make(
                       Store{key, value, Contact{id_, addr_}});
                   const std::size_t bytes =
                       config_.message_bytes + value.size();
                   for (const Contact& c : r.closest) {
                     net_.send(addr_, c.addr, shared, bytes);
                     ++replicas;
                   }
                 }
                 if (replicas == 0) {
                   // No peers known: keep it locally so the data survives.
                   storage_[key] = value;
                 }
                 if (cb) cb(replicas);
               });
}

void KademliaNode::start_lookup(const Key& target, bool want_value,
                                LookupCallback cb) {
  auto state = std::make_shared<LookupState>();
  state->target = target;
  state->want_value = want_value;
  state->cb = std::move(cb);
  state->started = sim_.now();
  for (const Contact& c : closest_contacts(target, config_.k)) {
    state->insert(c, /*depth=*/1);
  }
  if (state->shortlist.empty()) {
    finish_lookup(state);
    return;
  }
  state->request = make_request(want_value, target);
  state->span = net_.new_span_root();
  lookup_step(state);
}

void KademliaNode::lookup_step(const std::shared_ptr<LookupState>& state) {
  if (state->finished) return;
  using Status = LookupState::Status;

  // Termination: the k closest non-failed entries are all Done.
  std::size_t considered = 0;
  bool all_done = true;
  bool any_new = false;
  for (const auto& e : state->shortlist) {
    if (e.status == Status::Failed) continue;
    if (considered++ >= config_.k) break;
    if (e.status != Status::Done) all_done = false;
    if (e.status == Status::New) any_new = true;
  }
  if ((all_done && considered > 0) || (!any_new && state->in_flight == 0)) {
    finish_lookup(state);
    return;
  }

  // Issue RPCs to the closest New entries, up to alpha in flight.
  for (auto& e : state->shortlist) {
    if (state->in_flight >= config_.alpha) break;
    if (e.status != Status::New) continue;
    // Only probe within the k closest non-failed window.
    e.status = Status::InFlight;
    ++e.tries;
    ++state->in_flight;
    ++state->rpcs;
    const Contact peer = e.contact;
    send_rpc(peer, state->request,
             [this, state, peer](bool ok, const net::Message* reply) {
               --state->in_flight;
               auto it = std::find_if(
                   state->shortlist.begin(), state->shortlist.end(),
                   [&](const LookupState::Entry& en) {
                     return en.contact == peer;
                   });
               if (!ok) {
                 ++state->timeouts;
                 if (it != state->shortlist.end()) {
                   // Retry-with-timeout: put the contact back in the New
                   // pool while it has attempts left; transient faults
                   // (loss bursts, latency spikes) should not strike
                   // reachable peers from the shortlist.
                   it->status = it->tries <= config_.rpc_retries
                                    ? Status::New
                                    : Status::Failed;
                 }
                 lookup_step(state);
                 return;
               }
               std::uint32_t depth = 1;
               if (it != state->shortlist.end()) {
                 it->status = Status::Done;
                 depth = it->depth;
               }
               // Advance the causal frontier: the next RPC round descends
               // from this reply's hop.
               state->span = reply->span;
               state->max_span_depth = std::max(
                   state->max_span_depth, net_.span_depth(reply->span.hop));
               const auto& r = net::payload_as<FindNodeReply>(*reply);
               if (state->want_value && r.has_value && !state->finished) {
                 state->value = r.value;
                 finish_lookup(state);
                 return;
               }
               for (const Contact& c : r.contacts) {
                 if (c.addr != addr_) state->insert(c, depth + 1);
               }
               lookup_step(state);
             },
             state->span);
  }
}

void KademliaNode::finish_lookup(const std::shared_ptr<LookupState>& state) {
  if (state->finished) return;
  state->finished = true;
  m_lookups_.add();
  if (m_path_len_) m_path_len_->record(state->max_span_depth);
  LookupResult r;
  r.found_value = state->value.has_value();
  r.value = state->value;
  r.rpcs_sent = state->rpcs;
  r.timeouts = state->timeouts;
  r.elapsed = sim_.now() - state->started;
  using Status = LookupState::Status;
  for (const auto& e : state->shortlist) {
    if (e.status == Status::Done && r.closest.size() < config_.k) {
      r.closest.push_back(e.contact);
      r.hops = std::max<std::size_t>(r.hops, e.depth);
    }
  }
  state->cb(std::move(r));
}

// ---------------------------------------------------------------------------
// Message handling
// ---------------------------------------------------------------------------

void KademliaNode::handle_message(const net::Message& msg) {
  if (msg.is<FindNode>()) {
    const auto& req = net::payload_as<FindNode>(msg);
    touch_contact(req.sender);
    FindNodeReply reply;
    reply.sender = Contact{id_, addr_};
    reply.has_value = false;
    if (req.want_value) {
      const auto it = storage_.find(req.target);
      if (it != storage_.end()) {
        reply.has_value = true;
        reply.value = it->second;
      }
    }
    if (!reply.has_value) {
      reply.contacts = closest_contacts(req.target, config_.k);
      // Do not hand the requester itself back.
      std::erase_if(reply.contacts,
                    [&](const Contact& c) { return c.addr == msg.from; });
    }
    const std::size_t bytes =
        100 + 40 * reply.contacts.size() + reply.value.size();
    net_.send(addr_, msg.from, std::move(reply), bytes,
              /*cookie=*/msg.cookie, msg.span);
    return;
  }
  if (msg.is<FindNodeReply>()) {
    const auto& r = net::payload_as<FindNodeReply>(msg);
    // Per the Kademlia spec only the *responding* node earns a routing-table
    // slot; contacts merely mentioned in a reply must answer a query of ours
    // first. (Blind insertion would also let one poisoned reply trigger a
    // cascade of eviction probes.)
    touch_contact(r.sender);
    const auto it = pending_.find(msg.cookie);
    if (it == pending_.end()) return;  // late reply after timeout
    auto done = std::move(it->second.on_done);
    it->second.timeout.cancel();
    pending_.erase(it);
    done(true, &msg);
    return;
  }
  if (msg.is<Store>()) {
    const auto& s = net::payload_as<Store>(msg);
    touch_contact(s.sender);
    storage_[s.key] = s.value;
    return;
  }
}

void KademliaNode::refresh_buckets() {
  if (!online_) return;
  sim::Rng& rng = sim_.rng();
  // Slots are sorted by index, so iteration visits populated buckets in the
  // same ascending order (and draws the same rng sequence) as the old dense
  // scan that skipped empties.
  for (std::size_t slot = 0; slot < buckets_.size(); ++slot) {
    const std::size_t i = buckets_[slot].index;
    if (buckets_[slot].bucket.contacts.empty()) continue;
    // Random target inside bucket i's range: shares exactly (255 - i) prefix
    // bits with our id, differs at bit (255 - i).
    Key target = id_;
    const int diff_bit = 255 - static_cast<int>(i);
    const auto byte = static_cast<std::size_t>(diff_bit / 8);
    const int bit_in_byte = 7 - diff_bit % 8;
    target.bytes[byte] ^= static_cast<std::uint8_t>(1u << bit_in_byte);
    for (std::size_t b = byte + 1; b < 32; ++b) {
      target.bytes[b] = static_cast<std::uint8_t>(rng.next());
    }
    lookup(target, [](LookupResult) {});
  }
}

}  // namespace decentnet::overlay
