// The simulated network: attach Hosts under NodeIds, send typed messages,
// and let the kernel deliver them after latency + transport delays.
//
// Model: a message leaving `from` first serializes through the sender's
// uplink (net::Transport: FIFO queue wait + size/rate, optionally bounded
// with drop-on-overflow and a TCP-like cwnd — see net/transport.hpp), then
// propagates (LatencyModel sample), then pays the receiver's stateless
// downlink serialization. TransportConfig::mode selects how much of that
// runs; the default (Latency) is pure latency sampling. Messages to offline
// nodes are silently dropped, as on the real Internet. The fault surface —
// uniform loss, overlapping named partitions, NAT unreachability, per-link
// latency penalties, duplication and reordering windows — is scriptable
// through net::FaultPlan (see net/faults.hpp).
//
// Sharded execution (enable_sharding): the Network can route over a
// sim::ShardedKernel instead of a single Simulator. Hosts live on the shard
// of their NodeId (kernel.shard_of), sends execute on the *sender's* shard
// with per-shard RNG/counter/span contexts (so the parallel phase never
// contends), and deliveries to another shard travel through the kernel's
// deterministic mailboxes. The Network also computes the kernel's
// conservative lookahead from its latency model (min_latency): no message
// can arrive sooner — transport delays are strictly additive on top of the
// sample — which is what makes the window barrier sound.
// Preconditions for the parallel phase (checked or documented below):
// every NodeId is register_node()'d before run_until, and the fault surface
// (partitions, penalties, unreachability, link specs) is configured only
// between runs. Bandwidth/Tcp transport is shard-safe: its mutable state is
// send-side only, keyed by the sender's dense index, and a node's sends
// always execute on its owning shard.
#pragma once

#include <atomic>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "net/latency.hpp"
#include "net/message.hpp"
#include "net/node_id.hpp"
#include "net/node_table.hpp"
#include "net/transport.hpp"
#include "sim/metrics.hpp"
#include "sim/simulator.hpp"

namespace decentnet::sim {
class ShardedKernel;  // sim/sharding.hpp; only network.cpp needs the type
class Telemetry;      // sim/telemetry.hpp
}  // namespace decentnet::sim

namespace decentnet::net {

struct NetworkConfig {
  /// Uniform probability that any message is lost in transit.
  double drop_probability = 0.0;
  /// The transport model: mode (Latency/Bandwidth/Tcp), the default
  /// LinkSpec, and the Tcp flow constants. See net/transport.hpp.
  TransportConfig transport;
  /// Expected topology size; pre-sizes the peer table so attach() never
  /// rehashes mid-experiment. 0 keeps the default initial capacity.
  std::size_t expected_nodes = 0;
  /// Causal span tracking: when true, every accepted message is assigned a
  /// fresh hop id chained to its parent (Message::span), a "span" trace
  /// record is emitted per hop, and span-derived metrics (propagation-tree
  /// depth) light up in the protocol layers. Off by default: hop allocation
  /// touches a side table per send, and default-off keeps golden traces
  /// byte-stable.
  bool track_spans = false;

  // --- Deprecated shims (one release): the pre-Transport bandwidth knobs.
  // When set they fold into `transport` at Network construction / via
  // resolved_transport(): model_bandwidth selects TransportMode::Bandwidth,
  // nonzero *_bps override transport.link. New code sets `transport`
  // directly; these exist so callers migrate in their own PRs.
  bool model_bandwidth = false;
  double default_uplink_bps = 0;    // 0 = unset; use transport.link.up_bps
  double default_downlink_bps = 0;  // 0 = unset; use transport.link.down_bps

  /// `transport` with the deprecated shim fields folded in — what the
  /// Network actually runs.
  TransportConfig resolved_transport() const;

  /// Actionable description of the first invalid field, or nullopt when the
  /// config is usable. Scenario runners reject invalid configs on entry.
  std::optional<std::string> validate() const;
};

class Network {
 public:
  /// `metrics` optionally points at an experiment-scoped registry (e.g.
  /// ExperimentHarness::metrics()); when null the network owns a private
  /// one. Either way components reach it through metrics() and register
  /// their scoped handles there once at construction.
  Network(sim::Simulator& sim, std::unique_ptr<LatencyModel> latency,
          NetworkConfig config = {}, sim::MetricRegistry* metrics = nullptr);

  sim::Simulator& simulator() { return sim_; }
  sim::MetricRegistry& metrics() { return metrics_; }
  LatencyModel& latency_model() { return *latency_; }

  /// Route this network over a sharded kernel. The Network must have been
  /// constructed over kernel.shard(0); sets the kernel's lookahead from the
  /// latency model and builds one send-side context (RNG stream, counters
  /// bound into kernel.metrics(s), span table) per shard. Bandwidth/Tcp
  /// transport runs sharded too (send-side state only — see
  /// net/transport.hpp). Throws on configurations that cannot run sharded
  /// (> 64 shards, span hop encoding).
  /// A 1-shard kernel is a no-op: the legacy path already is that kernel.
  void enable_sharding(sim::ShardedKernel& kernel);
  bool sharded() const { return kernel_ != nullptr; }

  /// The kernel shard that owns `id` — the Simulator a node's timers and
  /// local state must live on. The legacy (unsharded) answer is simulator().
  sim::Simulator& simulator_for(NodeId id);
  /// The registry a node owned by `id`'s shard must bind its handles in
  /// (per-shard in sharded mode so the parallel phase never contends;
  /// metrics() otherwise). Folded back together by
  /// ShardedKernel::merge_metrics_into.
  sim::MetricRegistry& metrics_for(NodeId id);

  /// Conservative lookahead this network supports: the latency model's hard
  /// minimum one-way delay. 0 means "no positive bound" (the sharded kernel
  /// then falls back to sequential stepping).
  sim::SimDuration lookahead() const { return latency_->min_latency(); }

  /// Pre-create the dense-table entry for `id`. Sharded runs must register
  /// every NodeId before run_until: the parallel phase resolves peers with
  /// find-only lookups, and interning concurrently would be a data race.
  /// Idempotent; the legacy path interns lazily.
  void register_node(NodeId id) { (void)ensure_node(id); }

  /// Allocate a fresh NodeId (sequential; deterministic).
  NodeId new_node_id() { return NodeId{next_id_++}; }

  /// Dense index assigned to `id` at registration (NodeTable::kNoIndex when
  /// never seen). Stable across churn; exposed for tests and tools that
  /// want to address per-node side data the way the Network does.
  std::uint32_t node_index(NodeId id) const { return table_.index_of(id); }

  /// Bring a host online under `id`. A node may re-attach after detaching
  /// (churn): messages sent while it was offline are gone.
  void attach(NodeId id, Host* host);
  void detach(NodeId id);
  bool online(NodeId id) const {
    const std::uint32_t idx = table_.index_of(id);
    return idx != NodeTable::kNoIndex && hosts_.get(idx) != nullptr;
  }
  std::size_t online_count() const {
    return online_.load(std::memory_order_relaxed);
  }

  /// Pre-size every per-node structure for `n` nodes (same effect as
  /// NetworkConfig::expected_nodes, for callers that learn the topology
  /// size after construction): the dense id table, the host slab, any
  /// materialized cold arrays, and the span tables' chunk directories — so
  /// registering a large population never reallocates mid-loop.
  void reserve_nodes(std::size_t n);

  /// Register this network's health series on `telemetry`: windowed rates
  /// over the traffic/drop counters (per shard when sharded, so series merge
  /// by (t, shard, series) stays byte-identical at any --sim-threads), plus
  /// aggregate transport gauges (uplink backlog bytes, busy uplinks, cwnd
  /// sum/max) when a Bandwidth/Tcp transport is active. Call after the
  /// harness instrument()ed the kernel (attach resets registrations) and
  /// after enable_sharding when sharding.
  void register_telemetry(sim::Telemetry& telemetry);

  /// Per-node link override (capacities in bytes per simulated second plus
  /// the bounded-queue depth). Configure between runs only — the sharded
  /// parallel phase reads specs immutably.
  void set_link(NodeId id, const LinkSpec& spec);
  /// The spec governing `id` (the config default when never overridden).
  LinkSpec link(NodeId id) const {
    return transport_.link(table_.index_of(id));
  }
  /// Transport introspection (mode, cwnd state) for tests and benches.
  const Transport& transport() const { return transport_; }

  // --- Deprecated shims (one release): pre-LinkSpec per-node bandwidth
  // surface. set_bandwidth preserves the node's queue_bytes.
  void set_bandwidth(NodeId id, double uplink_bps, double downlink_bps);
  double uplink_bps(NodeId id) { return link(id).up_bps; }
  double downlink_bps(NodeId id) { return link(id).down_bps; }

  /// Overlapping named partitions. Each partition splits the node space into
  /// groups: listed nodes belong to their group, unlisted nodes to one
  /// implicit "rest" group. A message is dropped if *any* active partition
  /// places its endpoints in different groups, so several named partitions
  /// can overlap independently (fault plans install and heal them by name).
  /// Installing a name that is already active replaces that partition.
  void add_partition(std::string name,
                     std::vector<std::unordered_set<std::uint64_t>> groups);
  void remove_partition(std::string_view name);
  bool partition_active(std::string_view name) const;
  std::size_t partition_count() const { return partitions_.size(); }

  /// Legacy bipartition API: installs the anonymous partition "" separating
  /// `group_a` from everyone else. An empty set clears it.
  void set_partition(std::unordered_set<std::uint64_t> group_a);
  /// Remove every active partition.
  void clear_partition() { partitions_.clear(); }

  /// NAT/firewall model: an unreachable node can send but never receives —
  /// the connectivity defect the BitTorrent-DHT measurement studies blame
  /// for slow lookups (such nodes keep advertising themselves into routing
  /// tables yet never answer).
  void set_unreachable(NodeId id, bool unreachable);
  bool unreachable(NodeId id) const {
    const std::uint32_t idx = table_.index_of(id);
    return idx < unreachable_.size() && unreachable_[idx] != 0;
  }

  void set_drop_probability(double p) { config_.drop_probability = p; }
  double drop_probability() const { return config_.drop_probability; }

  /// Per-node propagation penalty (congestion / route-flap model): added to
  /// every message the node sends or receives while nonzero.
  void set_latency_penalty(NodeId id, sim::SimDuration extra);
  sim::SimDuration latency_penalty(NodeId id) const {
    return penalty_of(table_.index_of(id));
  }

  /// Duplication window: each delivered message is delivered a second time
  /// with probability `p` (counted under net/duplicated).
  void set_duplicate_probability(double p) { duplicate_probability_ = p; }
  double duplicate_probability() const { return duplicate_probability_; }

  /// Reordering window: each message picks up an extra uniform delay in
  /// [0, jitter], breaking FIFO arrival order while active (messages that
  /// drew a nonzero extra delay count under net/reordered).
  void set_reorder_jitter(sim::SimDuration jitter) {
    reorder_jitter_ = jitter < 0 ? 0 : jitter;
  }
  sim::SimDuration reorder_jitter() const { return reorder_jitter_; }

  /// Send a typed payload. `size_bytes` drives the bandwidth model and the
  /// traffic accounting; pass the protocol's nominal wire size. `cookie` is
  /// free-form per-delivery metadata (hop count, TTL, RPC nonce) surfaced as
  /// Message::cookie at the receiver. `span` is the causal parent (relays
  /// pass the incoming msg.span; origins pass new_span_root()); defaulting it
  /// keeps non-relay callers unchanged.
  template <typename T>
  void send(NodeId from, NodeId to, T payload, std::size_t size_bytes,
            std::uint64_t cookie = 0, Span span = {}) {
    Message m = make_message<T>(from, to, size_bytes, std::move(payload));
    m.cookie = cookie;
    m.span = span;
    deliver(std::move(m));
  }

  /// Zero-copy fan-out: every recipient's delivery references the same
  /// payload allocation; only {from, to, size, cookie, span} differ per send.
  template <typename T>
  void send(NodeId from, NodeId to, sim::Shared<T> payload,
            std::size_t size_bytes, std::uint64_t cookie = 0, Span span = {}) {
    deliver(make_shared_message<T>(from, to, size_bytes, std::move(payload),
                                   cookie, span));
  }

  /// Causal span tracking (see NetworkConfig::track_spans).
  void set_span_tracking(bool on);
  bool span_tracking() const { return config_.track_spans; }

  /// Open a new propagation tree: allocates a virtual root hop at the
  /// current time (emitting a "span" record tagged "root") and returns a
  /// Span whose children — every send that passes it — form one tree. An
  /// origin node broadcasting to k peers calls this once so the fan-out is
  /// a single tree, not k of them. Returns {0, 0} when tracking is off.
  Span new_span_root();

  /// Depth of a hop in its propagation tree (root = 0). Valid for any hop id
  /// a delivered Message::span carries while tracking is on; 0 otherwise.
  /// Safe to call from any shard during a sharded run: hop ids decode to
  /// their allocating shard's table, whose entries were published before the
  /// barrier that carried the hop id across (and chunked storage means the
  /// owner appending more entries never moves published ones).
  std::uint32_t span_depth(std::uint32_t hop) const {
    if (!shard_ctx_.empty()) {
      if (hop == 0) return 0;
      return shard_ctx_[hop >> kSpanLocalBits].spans.depth(hop &
                                                           kSpanLocalMask);
    }
    return span_table_.depth(hop);
  }
  /// Total span hops allocated (message hops + virtual roots). Sharded:
  /// read between runs only (sums per-shard tables).
  std::uint64_t span_hops() const {
    if (!shard_ctx_.empty()) {
      std::uint64_t n = 0;
      for (const NetShard& c : shard_ctx_) n += c.spans.size();
      return n;
    }
    return span_table_.size();
  }

  /// Total payload bytes accepted for delivery so far. Sharded: read
  /// between runs only (sums per-shard tallies).
  std::uint64_t bytes_sent() const {
    std::uint64_t n = bytes_sent_;
    for (const NetShard& c : shard_ctx_) n += c.bytes_sent;
    return n;
  }
  std::uint64_t messages_sent() const {
    std::uint64_t n = messages_sent_;
    for (const NetShard& c : shard_ctx_) n += c.messages_sent;
    return n;
  }

 private:
  /// The hot per-node array: one Host* per dense index. Chunked and
  /// pointer-stable — in-flight delivery closures capture the Host** slot,
  /// so appending nodes must never move published slots (a flat vector's
  /// growth would dangle every closure in the event queue). Slots are
  /// null-initialized (= offline) and chunks are never freed.
  class HostSlab {
   public:
    Host** slot(std::uint32_t idx) {
      return &chunks_[idx >> kChunkBits][idx & kChunkMask];
    }
    Host* get(std::uint32_t idx) const {
      return idx < capacity_ ? chunks_[idx >> kChunkBits][idx & kChunkMask]
                             : nullptr;
    }
    /// Guarantee slots [0, idx] exist. One compare when already sized.
    void ensure(std::uint32_t idx) {
      if (idx >= capacity_) grow(idx);
    }
    void reserve(std::size_t n) {
      chunks_.reserve((n >> kChunkBits) + 1);
      if (n > 0) grow(static_cast<std::uint32_t>(n - 1));
    }

   private:
    static constexpr std::uint32_t kChunkBits = 14;  // 16384 slots = 128 KB
    static constexpr std::uint32_t kChunkMask = (1u << kChunkBits) - 1;
    void grow(std::uint32_t idx);

    std::vector<std::unique_ptr<Host*[]>> chunks_;
    std::uint32_t capacity_ = 0;
  };

  /// One active named partition, as a dense side table rebuilt only when
  /// partitions change: dense index -> group; indices past the end (nodes
  /// registered after install, or never listed) read as kRestGroup.
  struct Partition {
    std::string name;
    std::vector<std::uint32_t> group_of;
  };
  static constexpr std::uint32_t kRestGroup = ~0u;

  /// Span hop ids under sharding encode (shard, local id): 6 shard bits
  /// (<= 64 shards), 26 local bits (~67M hops per shard per run).
  static constexpr std::uint32_t kSpanShardBitsMax = 64;
  static constexpr std::uint32_t kSpanLocalBits = 26;
  static constexpr std::uint32_t kSpanLocalMask = (1u << kSpanLocalBits) - 1;

  /// Per-shard hop-depth table with chunked, pointer-stable storage: the
  /// owning shard appends, other shards read hops they received through a
  /// mailbox barrier. Appending never reallocates published entries (no
  /// vector growth), so cross-shard depth reads are race-free under the
  /// barrier's happens-before edge.
  class ShardSpanTable {
   public:
    /// Append a hop with `depth`; returns its local id (>= 1). Owner only.
    std::uint32_t alloc(std::uint32_t depth) {
      const std::uint32_t local = next_++;
      const std::uint32_t chunk = local >> kChunkBits;
      if (!chunks_[chunk]) {
        chunks_[chunk] = std::make_unique<std::uint32_t[]>(kChunkSize);
      }
      chunks_[chunk][local & (kChunkSize - 1)] = depth;
      return local;
    }
    std::uint32_t depth(std::uint32_t local) const {
      const std::uint32_t chunk = local >> kChunkBits;
      if (chunk >= kChunks || !chunks_[chunk]) return 0;
      return chunks_[chunk][local & (kChunkSize - 1)];
    }
    std::uint64_t size() const { return next_ - 1; }

   private:
    static constexpr std::uint32_t kChunkBits = 16;
    static constexpr std::uint32_t kChunkSize = 1u << kChunkBits;
    static constexpr std::uint32_t kChunks = 1u << (kSpanLocalBits -
                                                    kChunkBits);
    std::unique_ptr<std::uint32_t[]> chunks_[kChunks];
    std::uint32_t next_ = 1;  // local ids start at 1 (0 = "untracked")
  };

  /// Unsharded hop-depth table. Same chunked layout as ShardSpanTable but
  /// with a growable chunk directory: million-node traced runs allocate
  /// tens of millions of hops, and a flat vector's doubling would spike
  /// peak RSS by 1.5x the table size on every growth (the spill companion
  /// to the streaming trace sinks). Single-threaded, so directory growth
  /// is safe here — the fixed-directory ShardSpanTable stays separate
  /// because cross-shard readers may race a growing std::vector.
  class SpanTable {
   public:
    std::uint32_t alloc(std::uint32_t depth) {
      const std::uint32_t local = next_++;
      const std::uint32_t chunk = local >> kChunkBits;
      if (chunk >= chunks_.size()) {
        chunks_.emplace_back(std::make_unique<std::uint32_t[]>(kChunkSize));
      }
      chunks_[chunk][local & (kChunkSize - 1)] = depth;
      return local;
    }
    /// Depth of `local`; 0 for 0 / never-allocated ids (root depth).
    std::uint32_t depth(std::uint32_t local) const {
      if (local == 0 || local >= next_) return 0;
      return chunks_[local >> kChunkBits][local & (kChunkSize - 1)];
    }
    std::uint64_t size() const { return next_ - 1; }
    void reserve_ids(std::size_t n) {
      chunks_.reserve((n >> kChunkBits) + 1);
    }

   private:
    static constexpr std::uint32_t kChunkBits = 16;
    static constexpr std::uint32_t kChunkSize = 1u << kChunkBits;
    std::vector<std::unique_ptr<std::uint32_t[]>> chunks_;
    std::uint32_t next_ = 1;  // ids start at 1 (0 = "untracked")
  };

  /// Send-side state of one kernel shard: sends executing on shard s use
  /// only this context, so the parallel phase shares nothing mutable. The
  /// counters live in the kernel's per-shard registries and are folded into
  /// the experiment registry after the run (deterministic shard order).
  struct NetShard {
    explicit NetShard(sim::Rng r) : rng(r) {}
    sim::Rng rng;
    std::uint64_t messages_sent = 0;
    std::uint64_t bytes_sent = 0;
    sim::Counter* m_messages_sent = nullptr;
    sim::Counter* m_bytes_sent = nullptr;
    sim::Counter* m_dropped_partition = nullptr;
    sim::Counter* m_dropped_unreachable = nullptr;
    sim::Counter* m_dropped_loss = nullptr;
    sim::Counter* m_dropped_offline = nullptr;
    sim::Counter* m_dropped_queue = nullptr;
    sim::Counter* m_duplicated = nullptr;
    sim::Counter* m_reordered = nullptr;
    sim::Counter* m_span_hops = nullptr;
    ShardSpanTable spans;
  };

  void deliver(Message msg);
  void deliver_sharded(Message msg);
  void schedule_delivery(Host** dst, sim::SimTime arrive, Message msg,
                         std::uint64_t msg_seq);
  void schedule_delivery_sharded(std::size_t src_shard, std::size_t dst_shard,
                                 Host** dst, sim::SimTime arrive, Message msg,
                                 std::uint64_t msg_seq);
  std::uint32_t alloc_span_hop(std::uint32_t parent);
  std::uint32_t alloc_span_hop_sharded(NetShard& ctx, std::uint32_t shard,
                                       std::uint32_t parent);
  /// Intern `id` and guarantee its host slot (and nothing else — cold
  /// arrays stay lazy) exists. The only mutating resolver; the sharded
  /// parallel phase must never reach it with an unseen id.
  std::uint32_t ensure_node(NodeId id) {
    const std::uint32_t idx = table_.intern(id);
    hosts_.ensure(idx);
    // Transport state grows here too (a no-op branch in Latency mode), so
    // sharded Bandwidth/Tcp runs — which register every node up front —
    // never resize the send-side arrays during the parallel phase.
    transport_.ensure(idx);
    return idx;
  }
  sim::SimDuration penalty_of(std::uint32_t idx) const {
    return idx < latency_extra_.size() ? latency_extra_[idx] : 0;
  }
  bool unreachable_at(std::uint32_t idx) const {
    return idx < unreachable_.size() && unreachable_[idx] != 0;
  }
  bool partitioned(std::uint32_t a, std::uint32_t b) const;

  sim::Simulator& sim_;
  std::unique_ptr<LatencyModel> latency_;
  NetworkConfig config_;
  sim::Rng rng_;
  std::unique_ptr<sim::MetricRegistry> owned_metrics_;
  sim::MetricRegistry& metrics_;
  // Stable handles, registered once; the per-message path never does a
  // string lookup.
  sim::Counter& m_messages_sent_;
  sim::Counter& m_bytes_sent_;
  sim::Counter& m_dropped_partition_;
  sim::Counter& m_dropped_unreachable_;
  sim::Counter& m_dropped_loss_;
  sim::Counter& m_dropped_offline_;
  sim::Counter& m_dropped_queue_;
  sim::Counter& m_duplicated_;
  sim::Counter& m_reordered_;
  sim::Counter& m_span_hops_;
  /// Hop id -> tree depth, one entry per accepted message (plus one per
  /// new_span_root) while tracking is on; hop ids are nonzero (Span{0,0}
  /// means "untracked").
  SpanTable span_table_;
  std::uint64_t next_id_ = 1;
  std::uint64_t bytes_sent_ = 0;
  std::uint64_t messages_sent_ = 0;
  /// Atomic because churn transitions attach/detach on their peer's shard;
  /// relaxed is enough (it is a tally, not a synchronization point).
  std::atomic<std::size_t> online_{0};
  double duplicate_probability_ = 0.0;
  sim::SimDuration reorder_jitter_ = 0;
  /// Per-node state, struct-of-arrays behind table_'s dense index: the
  /// delivery path touches hosts_ (and, rarely, the cold arrays below) with
  /// plain array indexing — no hash lookup per message. Cold arrays are
  /// empty until the matching fault/bandwidth feature is first used, and
  /// short reads past their end mean "default" — so a million idle nodes
  /// cost 8 bytes each here, not a 56-byte hash node.
  NodeTable table_;
  HostSlab hosts_;
  /// Send-side link queues / cwnd state, indexed by table_'s dense index.
  /// Empty (zero-cost) in Latency mode — E20's million-node overlays never
  /// pay for idle transport slots.
  Transport transport_;
  std::vector<sim::SimDuration> latency_extra_;  // empty/short = no penalty
  std::vector<std::uint8_t> unreachable_;        // empty/short = reachable
  std::vector<Partition> partitions_;
  /// Non-null once enable_sharding() wired a multi-shard kernel.
  sim::ShardedKernel* kernel_ = nullptr;
  std::deque<NetShard> shard_ctx_;  // deque: counter/table addresses stable
};

}  // namespace decentnet::net
