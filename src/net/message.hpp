// Type-erased protocol messages.
//
// Every protocol defines plain structs for its wire messages; Network carries
// them as shared immutable payloads tagged with their type. payload_as<T>()
// recovers the typed view at the receiver, failing loudly on a type mismatch
// (which would be a protocol bug, not a runtime condition).
#pragma once

#include <cassert>
#include <cstdint>
#include <memory>
#include <typeindex>
#include <utility>

#include "net/node_id.hpp"

namespace decentnet::net {

struct Message {
  NodeId from;
  NodeId to;
  std::type_index type = std::type_index(typeid(void));
  std::shared_ptr<const void> payload;
  std::size_t size_bytes = 0;

  template <typename T>
  bool is() const {
    return type == std::type_index(typeid(T));
  }
};

template <typename T, typename... Args>
Message make_message(NodeId from, NodeId to, std::size_t size_bytes,
                     Args&&... args) {
  Message m;
  m.from = from;
  m.to = to;
  m.type = std::type_index(typeid(T));
  m.payload = std::make_shared<const T>(std::forward<Args>(args)...);
  m.size_bytes = size_bytes;
  return m;
}

template <typename T>
const T& payload_as(const Message& m) {
  assert(m.is<T>() && "message payload type mismatch");
  return *static_cast<const T*>(m.payload.get());
}

/// Anything that can be attached to a Network and receive messages.
class Host {
 public:
  virtual ~Host() = default;
  virtual void handle_message(const Message& msg) = 0;
};

}  // namespace decentnet::net
