// Type-erased protocol messages.
//
// Every protocol defines plain structs for its wire messages; Network carries
// them as refcounted immutable payloads (sim::Shared<T>) tagged with their
// type. payload_as<T>() recovers the typed view at the receiver, failing
// loudly on a type mismatch (which would be a protocol bug, not a runtime
// condition); payload_shared<T>() re-shares the incoming payload so relays
// forward it without re-allocating.
//
// Message is deliberately 48 bytes: the delivery closure (Peer* + Counter* +
// Message) must fill InlineFn<64>'s inline buffer exactly, never overflow it.
// `cookie` is cheap per-delivery metadata (hop count, TTL, RPC nonce) that
// used to force a distinct payload per recipient; keeping it out of the
// payload is what makes fan-out zero-copy.
#pragma once

#include <cassert>
#include <cstdint>
#include <typeindex>
#include <utility>

#include "net/node_id.hpp"
#include "sim/shared.hpp"

namespace decentnet::net {

struct Message {
  NodeId from;
  NodeId to;
  std::type_index type = std::type_index(typeid(void));
  sim::PayloadRef payload;
  std::size_t size_bytes = 0;
  std::uint64_t cookie = 0;

  template <typename T>
  bool is() const {
    return type == std::type_index(typeid(T));
  }
};

// The untraced delivery capture is Peer* + Counter* + Message; growing
// Message past 48 bytes would overflow InlineFn<64> and put a heap
// allocation back on every delivery.
static_assert(sizeof(Message) == 48, "Message must fit delivery closures");

template <typename T, typename... Args>
Message make_message(NodeId from, NodeId to, std::size_t size_bytes,
                     Args&&... args) {
  Message m;
  m.from = from;
  m.to = to;
  m.type = std::type_index(typeid(T));
  m.payload = sim::Shared<T>::make(std::forward<Args>(args)...).ref();
  m.size_bytes = size_bytes;
  return m;
}

template <typename T>
Message make_shared_message(NodeId from, NodeId to, std::size_t size_bytes,
                            sim::Shared<T> payload, std::uint64_t cookie = 0) {
  Message m;
  m.from = from;
  m.to = to;
  m.type = std::type_index(typeid(T));
  m.payload = std::move(payload).ref();
  m.size_bytes = size_bytes;
  m.cookie = cookie;
  return m;
}

template <typename T>
const T& payload_as(const Message& m) {
  assert(m.is<T>() && "message payload type mismatch");
  return *static_cast<const T*>(m.payload.get());
}

/// Re-share the payload of an in-flight message (zero-copy relay): the
/// returned Shared<T> aliases the broadcast's single allocation.
template <typename T>
sim::Shared<T> payload_shared(const Message& m) {
  assert(m.is<T>() && "message payload type mismatch");
  return sim::Shared<T>(m.payload);
}

/// Anything that can be attached to a Network and receive messages.
class Host {
 public:
  virtual ~Host() = default;
  virtual void handle_message(const Message& msg) = 0;
};

}  // namespace decentnet::net
