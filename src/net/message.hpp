// Type-erased protocol messages.
//
// Every protocol defines plain structs for its wire messages; Network carries
// them as refcounted immutable payloads (sim::Shared<T>) tagged with their
// type. payload_as<T>() recovers the typed view at the receiver, failing
// loudly on a type mismatch (which would be a protocol bug, not a runtime
// condition); payload_shared<T>() re-shares the incoming payload so relays
// forward it without re-allocating.
//
// Message is deliberately 48 bytes: the delivery closure (Host** + Counter* +
// Message) must fill InlineFn<64>'s inline buffer exactly, never overflow it.
// `cookie` is cheap per-delivery metadata (hop count, TTL, RPC nonce) that
// used to force a distinct payload per recipient; keeping it out of the
// payload is what makes fan-out zero-copy. `span` is the causal-tracing
// coordinate: relays copy the incoming message's span into every forward, and
// Network (when span tracking is on) rewrites it per hop so a trace
// reconstructs complete propagation trees. Fitting span into the budget paid
// for itself twice: the old std::type_index (8 bytes, only ever compared for
// equality) became a 4-byte process-local type id, and size_bytes narrowed to
// 32 bits (wire sizes are protocol constants, nowhere near 4 GiB).
#pragma once

#include <atomic>
#include <cassert>
#include <cstdint>
#include <utility>

#include "net/node_id.hpp"
#include "sim/shared.hpp"

namespace decentnet::net {

namespace detail {

inline std::uint32_t next_type_id() {
  static std::atomic<std::uint32_t> counter{0};
  return counter.fetch_add(1, std::memory_order_relaxed) + 1;
}

}  // namespace detail

/// Process-local message-type identifier: one id per payload struct, assigned
/// on first use. Ids are never serialized or compared across processes —
/// only Message::is<T>() consumes them — so assignment order (and thus the
/// numeric value) is free to vary between runs without affecting determinism.
template <typename T>
std::uint32_t type_id() {
  static const std::uint32_t id = detail::next_type_id();
  return id;
}

/// Causal-span coordinate carried by every message. `root` identifies the
/// propagation tree (the hop id of the tree's origin); `hop` is, on send, the
/// PARENT hop this message causally descends from (0 = none). When span
/// tracking is enabled, Network::deliver() allocates a fresh hop id for the
/// message and rewrites `hop` (and `root`, if 0) before delivery, so a
/// receiver that relays simply copies `msg.span` into its forwards. With
/// tracking off the field is dead weight but keeps relay code unconditional.
struct Span {
  std::uint32_t root = 0;
  std::uint32_t hop = 0;
};

struct Message {
  NodeId from;
  NodeId to;
  sim::PayloadRef payload;
  std::uint64_t cookie = 0;
  std::uint32_t type = 0;
  std::uint32_t size_bytes = 0;
  Span span;

  template <typename T>
  bool is() const {
    return type == type_id<T>();
  }
};

// The untraced delivery capture is Host** + Counter* + Message; growing
// Message past 48 bytes would overflow InlineFn<64> and put a heap
// allocation back on every delivery.
static_assert(sizeof(Message) == 48, "Message must fit delivery closures");

template <typename T, typename... Args>
Message make_message(NodeId from, NodeId to, std::size_t size_bytes,
                     Args&&... args) {
  Message m;
  m.from = from;
  m.to = to;
  m.type = type_id<T>();
  m.payload = sim::Shared<T>::make(std::forward<Args>(args)...).ref();
  m.size_bytes = static_cast<std::uint32_t>(size_bytes);
  return m;
}

template <typename T>
Message make_shared_message(NodeId from, NodeId to, std::size_t size_bytes,
                            sim::Shared<T> payload, std::uint64_t cookie = 0,
                            Span span = {}) {
  Message m;
  m.from = from;
  m.to = to;
  m.type = type_id<T>();
  m.payload = std::move(payload).ref();
  m.size_bytes = static_cast<std::uint32_t>(size_bytes);
  m.cookie = cookie;
  m.span = span;
  return m;
}

template <typename T>
const T& payload_as(const Message& m) {
  assert(m.is<T>() && "message payload type mismatch");
  return *static_cast<const T*>(m.payload.get());
}

/// Re-share the payload of an in-flight message (zero-copy relay): the
/// returned Shared<T> aliases the broadcast's single allocation.
template <typename T>
sim::Shared<T> payload_shared(const Message& m) {
  assert(m.is<T>() && "message payload type mismatch");
  return sim::Shared<T>(m.payload);
}

/// Anything that can be attached to a Network and receive messages.
class Host {
 public:
  virtual ~Host() = default;
  virtual void handle_message(const Message& msg) = 0;
};

}  // namespace decentnet::net
