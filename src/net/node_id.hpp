// Network-level node addressing. Overlay-level identifiers (Chord points,
// Kademlia 256-bit ids) are derived from these by hashing, mirroring the
// IP-address / overlay-id split in real deployments.
#pragma once

#include <compare>
#include <cstdint>
#include <functional>
#include <string>

namespace decentnet::net {

struct NodeId {
  std::uint64_t value = 0;

  auto operator<=>(const NodeId&) const = default;

  bool valid() const { return value != 0; }

  std::string str() const { return "n" + std::to_string(value); }

  static constexpr NodeId invalid() { return NodeId{0}; }
};

struct NodeIdHasher {
  std::size_t operator()(const NodeId& id) const {
    // splitmix64 finalizer: NodeIds are sequential, so mix before bucketing.
    std::uint64_t z = id.value + 0x9E3779B97F4A7C15ull;
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
    return static_cast<std::size_t>(z ^ (z >> 31));
  }
};

}  // namespace decentnet::net
