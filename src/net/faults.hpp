// Deterministic fault injection: script a timeline of network and node
// faults, replay it bit-for-bit from the experiment's seed.
//
// The paper's Problems 1–4 are claims about protocol behaviour *under
// adversity* — churn, partitions, heterogeneous and unreachable nodes — so
// faults are first-class here: a FaultPlan is a declarative list of fault
// events (named multi-group partitions with heal times, node crash/restart,
// per-link latency penalties and bandwidth degradation, transient loss
// bursts, message duplication and reordering windows) and a FaultScheduler
// executes it against a Network on its Simulator. Every inject and heal is
// emitted through the kernel TraceSink (kind="fault"/"heal", tag=fault
// type) and counted under net/fault/ scoped metrics, so a same-seed run
// serializes a byte-identical trace.
//
//   net::FaultPlan plan;
//   plan.partition(sim::seconds(30), "wan-split",
//                  {{a.value, b.value}, {c.value}}, sim::seconds(90))
//       .crash(sim::seconds(45), /*node=*/2)
//       .restart(sim::seconds(60), /*node=*/2)
//       .loss_burst(sim::seconds(30), 0.2, sim::seconds(90))
//       .duplicate_window(sim::seconds(30), 0.05, sim::seconds(90));
//   net::FaultScheduler faults(netw, plan,
//                              {.crash = ..., .restart = ...});
//   faults.start();
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <unordered_set>
#include <vector>

#include "net/network.hpp"
#include "sim/time.hpp"

namespace decentnet::sim::jsonlite {
struct JsonValue;
}

namespace decentnet::sim {
class Telemetry;  // sim/telemetry.hpp
}

namespace decentnet::net {

class ChurnDriver;  // net/churn.hpp; fault crashes suspend churn when wired

/// One declarative fault event. Build through FaultPlan's fluent methods;
/// the fields are public so tests and tools can introspect a plan.
struct FaultEvent {
  enum class Kind : std::uint8_t {
    Partition,          // named multi-group split, healed at heal_at
    Crash,              // crash hook for node index (point event)
    Restart,            // restart hook for node index (point event)
    LatencyPenalty,     // extra propagation delay on one node's links
    BandwidthDegrade,   // multiply one node's link capacity by `value`
    LossBurst,          // uniform loss probability window
    DuplicateWindow,    // per-message duplication probability window
    ReorderWindow,      // extra uniform per-message jitter window
  };

  Kind kind = Kind::Partition;
  sim::SimTime at = 0;       // inject time
  sim::SimTime heal_at = 0;  // heal time; 0 = never heals (point events: n/a)
  std::string name;          // partition name / trace label
  std::vector<std::unordered_set<std::uint64_t>> groups;  // Partition
  std::size_t node = 0;      // target node index (crash/restart/link faults)
  double value = 0;          // probability or bandwidth factor
  sim::SimDuration duration = 0;  // latency penalty / reorder jitter
};

/// A seed-independent, declarative fault timeline. Plans are plain data:
/// build once, hand to any number of FaultSchedulers (e.g. one per sweep
/// point), introspect in tests.
class FaultPlan {
 public:
  /// Split the network into `groups` (unlisted nodes form an implicit extra
  /// group) from `at` until `heal_at` (0 = permanent).
  FaultPlan& partition(sim::SimTime at, std::string name,
                       std::vector<std::unordered_set<std::uint64_t>> groups,
                       sim::SimTime heal_at = 0);
  /// Crash-stop node `node` (index into FaultTargets::nodes) at `at`.
  FaultPlan& crash(sim::SimTime at, std::size_t node);
  /// Restart node `node` at `at`.
  FaultPlan& restart(sim::SimTime at, std::size_t node);
  /// Add `extra` propagation delay to every message node `node` sends or
  /// receives, from `at` until `heal_at`.
  FaultPlan& latency_penalty(sim::SimTime at, std::size_t node,
                             sim::SimDuration extra, sim::SimTime heal_at = 0);
  /// Multiply node `node`'s up/downlink capacity by `factor` (< 1 degrades),
  /// from `at` until `heal_at`.
  FaultPlan& bandwidth_degrade(sim::SimTime at, std::size_t node,
                               double factor, sim::SimTime heal_at = 0);
  /// Uniform message loss with probability `p` from `at` until `heal_at`.
  FaultPlan& loss_burst(sim::SimTime at, double p, sim::SimTime heal_at = 0);
  /// Duplicate each delivered message with probability `p` in the window.
  FaultPlan& duplicate_window(sim::SimTime at, double p,
                              sim::SimTime heal_at = 0);
  /// Add uniform per-message jitter in [0, jitter] in the window (breaks
  /// FIFO arrival order).
  FaultPlan& reorder_window(sim::SimTime at, sim::SimDuration jitter,
                            sim::SimTime heal_at = 0);

  const std::vector<FaultEvent>& events() const { return events_; }
  bool empty() const { return events_.empty(); }
  std::size_t size() const { return events_.size(); }

  /// Append an already-built event (used by from_json and the chaos
  /// shrinker, which re-assemble plans clause by clause).
  FaultPlan& add(FaultEvent ev);

  /// Structural validation: every event's times, probabilities, factors and
  /// partition groups are checked, and the first problem is returned as an
  /// actionable message naming the event index and field ("event 3
  /// (loss): probability 1.5 out of [0, 1]"). nullopt = plan is valid.
  /// `num_nodes` (0 = unknown) additionally bounds node indices and
  /// partition member addresses.
  std::optional<std::string> validate(std::size_t num_nodes = 0) const;

  /// Serialize to a byte-stable JSON document: fixed key order, partition
  /// group members sorted ascending, times as integer microseconds. The
  /// output of to_json(from_json(s)) equals to_json of the original plan.
  std::string to_json() const;

  /// Parse a plan serialized by to_json (or hand-written in that shape).
  /// Throws std::invalid_argument with the event index and field on
  /// malformed input; the returned plan always passes validate(0).
  static FaultPlan from_json(std::string_view text);

  /// Same, from an already-parsed JSON value (the chaos repro envelope
  /// embeds a plan object inside its own document).
  static FaultPlan from_json_value(const sim::jsonlite::JsonValue& doc);

 private:
  std::vector<FaultEvent> events_;
};

/// Hooks the scheduler drives for node-level faults. `nodes` maps the plan's
/// dense node indices to network addresses (required by link-level faults);
/// `crash`/`restart` invoke the protocol's own crash-stop machinery and may
/// be empty when the plan has no such events.
struct FaultTargets {
  std::vector<NodeId> nodes;
  std::function<void(std::size_t node)> crash;
  std::function<void(std::size_t node)> restart;
  /// Optional: when a ChurnDriver manages the same peers, the scheduler
  /// holds a node's churn across its crash→restart window so a churn
  /// transition cannot revive it early (fault-crash is authoritative).
  ChurnDriver* churn = nullptr;
};

/// Executes a FaultPlan against a Network: schedules one kernel event per
/// inject/heal, applies the fault through the Network's fault surface (or the
/// crash/restart hooks), and emits a TraceRecord plus net/fault/ counters for
/// each. Construction is passive; call start() once.
class FaultScheduler {
 public:
  FaultScheduler(Network& net, FaultPlan plan, FaultTargets targets = {});

  /// Schedule every event in the plan (relative to absolute plan times; call
  /// at t=0 for the times to mean what the plan says).
  void start();

  /// Cancel every not-yet-fired inject/heal. Already-applied faults stay
  /// applied (heal explicitly or via Network setters).
  void stop();

  std::uint64_t injected() const { return injected_; }
  std::uint64_t healed() const { return healed_; }
  const FaultPlan& plan() const { return plan_; }

  /// Register fault-health series: a gauge of currently active partitions
  /// plus windowed inject/heal rates, so `decentnet-trace timeline` can
  /// correlate gauge excursions against fault activity. Call after the
  /// harness instrument()ed the kernel (attach resets registrations).
  void register_telemetry(sim::Telemetry& telemetry);

 private:
  void inject(const FaultEvent& ev, std::size_t index);
  void heal(const FaultEvent& ev, std::size_t index);
  void trace(const char* kind, const FaultEvent& ev, std::size_t index);
  NodeId addr(std::size_t node) const;

  Network& net_;
  sim::Simulator& sim_;
  FaultPlan plan_;
  FaultTargets targets_;
  sim::Counter& m_injected_;
  sim::Counter& m_healed_;
  sim::Counter& m_partitions_;
  sim::Counter& m_crashes_;
  sim::Counter& m_restarts_;
  sim::Counter& m_link_faults_;
  sim::Counter& m_window_faults_;
  std::uint64_t injected_ = 0;
  std::uint64_t healed_ = 0;
  // Saved pre-fault LinkSpec, restored whole on heal (keyed by event index) —
  // capacities *and* queue depth round-trip through degrade/heal.
  std::vector<LinkSpec> saved_link_;
  // Pre-fault loss probability for LossBurst heals.
  std::vector<double> saved_loss_;
  std::vector<sim::EventHandle> scheduled_;
  bool started_ = false;
};

/// The trace tag for a fault kind ("partition", "crash", ...); also used by
/// the per-kind counter bump and the JSON "kind" field.
const char* fault_kind_name(FaultEvent::Kind kind);

/// Reverse of fault_kind_name; nullopt for an unknown name.
std::optional<FaultEvent::Kind> fault_kind_from_name(std::string_view name);

}  // namespace decentnet::net
