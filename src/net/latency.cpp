#include "net/latency.hpp"

#include <cmath>

namespace decentnet::net {

LogNormalLatency::LogNormalLatency(sim::SimDuration median, double sigma,
                                   sim::SimDuration floor)
    : mu_(std::log(static_cast<double>(median))),
      sigma_(sigma),
      floor_(floor) {}

sim::SimDuration LogNormalLatency::sample(NodeId, NodeId, sim::Rng& rng) {
  const double d = rng.lognormal(mu_, sigma_);
  const auto delay = static_cast<sim::SimDuration>(d);
  return delay < floor_ ? floor_ : delay;
}

GeoLatency::GeoLatency(double jitter_sigma) : jitter_sigma_(jitter_sigma) {
  // One-way base delays (ms) approximating public inter-region RTT/2
  // figures: {NA, EU, ASIA, SA, OC}.
  static constexpr double kBaseMs[kRegions][kRegions] = {
      {15, 45, 90, 70, 80},   // NA
      {45, 12, 110, 95, 130}, // EU
      {90, 110, 25, 160, 60}, // ASIA
      {70, 95, 160, 20, 140}, // SA
      {80, 130, 60, 140, 15}, // OC
  };
  for (std::size_t i = 0; i < kRegions; ++i) {
    for (std::size_t j = 0; j < kRegions; ++j) {
      base_[i][j] = sim::millis(kBaseMs[i][j]);
    }
  }
}

void GeoLatency::assign(NodeId node, std::size_t region) {
  assigned_[node] = region % kRegions;
}

void GeoLatency::set_base(std::size_t r1, std::size_t r2,
                          sim::SimDuration base) {
  base_[r1 % kRegions][r2 % kRegions] = base;
  base_[r2 % kRegions][r1 % kRegions] = base;
}

std::size_t GeoLatency::region_of(NodeId node) const {
  const auto it = assigned_.find(node);
  if (it != assigned_.end()) return it->second;
  return NodeIdHasher{}(node) % kRegions;
}

sim::SimDuration GeoLatency::sample(NodeId a, NodeId b, sim::Rng& rng) {
  const sim::SimDuration base = base_[region_of(a)][region_of(b)];
  const double jitter = rng.lognormal(0.0, jitter_sigma_);
  const auto delay =
      static_cast<sim::SimDuration>(static_cast<double>(base) * jitter);
  return delay < sim::millis(1) ? sim::millis(1) : delay;
}

}  // namespace decentnet::net
