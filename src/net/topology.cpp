#include "net/topology.hpp"

#include <algorithm>
#include <deque>
#include <stdexcept>
#include <unordered_set>

namespace decentnet::net {

namespace {

void add_edge(AdjacencyList& adj, std::size_t a, std::size_t b) {
  adj[a].push_back(b);
  adj[b].push_back(a);
}

bool has_edge(const AdjacencyList& adj, std::size_t a, std::size_t b) {
  const auto& smaller = adj[a].size() <= adj[b].size() ? adj[a] : adj[b];
  const std::size_t other = adj[a].size() <= adj[b].size() ? b : a;
  return std::find(smaller.begin(), smaller.end(), other) != smaller.end();
}

}  // namespace

AdjacencyList random_graph(std::size_t n, std::size_t degree, sim::Rng& rng) {
  AdjacencyList adj(n);
  if (n < 2) return adj;
  for (std::size_t i = 0; i < n; ++i) {
    std::size_t attempts = 0;
    std::size_t added = 0;
    while (added < degree && attempts < degree * 20) {
      ++attempts;
      const std::size_t j = rng.uniform_int(n);
      if (j == i || has_edge(adj, i, j)) continue;
      add_edge(adj, i, j);
      ++added;
    }
  }
  return adj;
}

AdjacencyList erdos_renyi(std::size_t n, double p, sim::Rng& rng) {
  AdjacencyList adj(n);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = i + 1; j < n; ++j) {
      if (rng.chance(p)) add_edge(adj, i, j);
    }
  }
  return adj;
}

AdjacencyList watts_strogatz(std::size_t n, std::size_t k, double beta,
                             sim::Rng& rng) {
  AdjacencyList adj(n);
  if (n < 2) return adj;
  // Ring lattice.
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t d = 1; d <= k; ++d) {
      add_edge(adj, i, (i + d) % n);
    }
  }
  // Rewire forward edges with probability beta.
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t d = 1; d <= k; ++d) {
      if (!rng.chance(beta)) continue;
      const std::size_t old = (i + d) % n;
      std::size_t candidate = rng.uniform_int(n);
      std::size_t tries = 0;
      while ((candidate == i || has_edge(adj, i, candidate)) && tries++ < 20) {
        candidate = rng.uniform_int(n);
      }
      if (candidate == i || has_edge(adj, i, candidate)) continue;
      // Remove edge i<->old, add i<->candidate.
      auto erase_one = [](std::vector<std::size_t>& v, std::size_t x) {
        const auto it = std::find(v.begin(), v.end(), x);
        if (it != v.end()) v.erase(it);
      };
      erase_one(adj[i], old);
      erase_one(adj[old], i);
      add_edge(adj, i, candidate);
    }
  }
  return adj;
}

AdjacencyList barabasi_albert(std::size_t n, std::size_t m, sim::Rng& rng) {
  AdjacencyList adj(n);
  if (n == 0) return adj;
  const std::size_t seed_size = std::min(n, std::max<std::size_t>(m, 2));
  // Seed: small clique.
  for (std::size_t i = 0; i < seed_size; ++i) {
    for (std::size_t j = i + 1; j < seed_size; ++j) add_edge(adj, i, j);
  }
  // Degree-proportional sampling via the repeated-endpoints trick.
  std::vector<std::size_t> endpoints;
  for (std::size_t i = 0; i < seed_size; ++i) {
    endpoints.insert(endpoints.end(), adj[i].size(), i);
  }
  for (std::size_t i = seed_size; i < n; ++i) {
    std::unordered_set<std::size_t> targets;
    std::size_t tries = 0;
    while (targets.size() < std::min(m, i) && tries++ < m * 50) {
      const std::size_t t = endpoints[rng.uniform_int(endpoints.size())];
      if (t != i) targets.insert(t);
    }
    for (std::size_t t : targets) {
      add_edge(adj, i, t);
      endpoints.push_back(i);
      endpoints.push_back(t);
    }
  }
  return adj;
}

const char* topology_kind_name(TopologySpec::Kind kind) {
  switch (kind) {
    case TopologySpec::Kind::Random:
      return "random";
    case TopologySpec::Kind::ErdosRenyi:
      return "erdos_renyi";
    case TopologySpec::Kind::WattsStrogatz:
      return "watts_strogatz";
    case TopologySpec::Kind::BarabasiAlbert:
      return "barabasi_albert";
  }
  return "unknown";
}

std::optional<TopologySpec::Kind> topology_kind_from_name(
    std::string_view name) {
  if (name == "random") return TopologySpec::Kind::Random;
  if (name == "erdos_renyi") return TopologySpec::Kind::ErdosRenyi;
  if (name == "watts_strogatz") return TopologySpec::Kind::WattsStrogatz;
  if (name == "barabasi_albert") return TopologySpec::Kind::BarabasiAlbert;
  return std::nullopt;
}

std::optional<std::string> TopologySpec::validate() const {
  if (nodes == 0) {
    return "TopologySpec: nodes must be > 0";
  }
  switch (kind) {
    case Kind::Random:
    case Kind::WattsStrogatz:
    case Kind::BarabasiAlbert:
      if (degree == 0) {
        return std::string("TopologySpec: degree must be > 0 for kind=") +
               topology_kind_name(kind);
      }
      break;
    case Kind::ErdosRenyi:
      break;
  }
  if (kind == Kind::ErdosRenyi || kind == Kind::WattsStrogatz) {
    if (p < 0 || p > 1) {
      return std::string("TopologySpec: p must be in [0, 1] for kind=") +
             topology_kind_name(kind) + ", got " + std::to_string(p);
    }
  }
  return std::nullopt;
}

AdjacencyList TopologySpec::build(sim::Rng& rng) const {
  if (auto err = validate()) throw std::invalid_argument(*err);
  switch (kind) {
    case Kind::Random:
      return random_graph(nodes, degree, rng);
    case Kind::ErdosRenyi:
      return erdos_renyi(nodes, p, rng);
    case Kind::WattsStrogatz:
      return watts_strogatz(nodes, degree, p, rng);
    case Kind::BarabasiAlbert:
      return barabasi_albert(nodes, degree, rng);
  }
  return AdjacencyList(nodes);
}

AdjacencyList TopologySpec::build(std::uint64_t seed) const {
  sim::Rng rng(seed);
  return build(rng);
}

bool is_connected(const AdjacencyList& adj) {
  if (adj.empty()) return true;
  std::vector<bool> seen(adj.size(), false);
  std::deque<std::size_t> queue{0};
  seen[0] = true;
  std::size_t visited = 1;
  while (!queue.empty()) {
    const std::size_t u = queue.front();
    queue.pop_front();
    for (std::size_t v : adj[u]) {
      if (!seen[v]) {
        seen[v] = true;
        ++visited;
        queue.push_back(v);
      }
    }
  }
  return visited == adj.size();
}

double mean_path_length(const AdjacencyList& adj, std::size_t samples,
                        sim::Rng& rng) {
  if (adj.size() < 2) return 0;
  double total = 0;
  std::uint64_t pairs = 0;
  const std::size_t n_sources = std::min(samples, adj.size());
  for (std::size_t s = 0; s < n_sources; ++s) {
    const std::size_t src =
        samples >= adj.size() ? s : rng.uniform_int(adj.size());
    std::vector<int> dist(adj.size(), -1);
    std::deque<std::size_t> queue{src};
    dist[src] = 0;
    while (!queue.empty()) {
      const std::size_t u = queue.front();
      queue.pop_front();
      for (std::size_t v : adj[u]) {
        if (dist[v] < 0) {
          dist[v] = dist[u] + 1;
          queue.push_back(v);
        }
      }
    }
    for (std::size_t v = 0; v < adj.size(); ++v) {
      if (v != src && dist[v] > 0) {
        total += dist[v];
        ++pairs;
      }
    }
  }
  return pairs == 0 ? 0 : total / static_cast<double>(pairs);
}

}  // namespace decentnet::net
