// Graph topology generators for unstructured overlays and blockchain gossip
// meshes. All return symmetric adjacency lists over dense indices [0, n).
#pragma once

#include <cstddef>
#include <vector>

#include "sim/rng.hpp"

namespace decentnet::net {

using AdjacencyList = std::vector<std::vector<std::size_t>>;

/// Each node gets `degree` random distinct neighbors (union of out-picks, so
/// realized degree is ~2*degree before dedup); the classic P2P "connect to k
/// random peers" bootstrap. Guarantees no self-loops or duplicate edges.
AdjacencyList random_graph(std::size_t n, std::size_t degree, sim::Rng& rng);

/// Erdős–Rényi G(n, p).
AdjacencyList erdos_renyi(std::size_t n, double p, sim::Rng& rng);

/// Watts–Strogatz small world: ring lattice with k neighbors per side,
/// each edge rewired with probability beta.
AdjacencyList watts_strogatz(std::size_t n, std::size_t k, double beta,
                             sim::Rng& rng);

/// Barabási–Albert preferential attachment with m edges per new node:
/// produces the power-law degree distributions observed in real overlays.
AdjacencyList barabasi_albert(std::size_t n, std::size_t m, sim::Rng& rng);

/// True if the graph is a single connected component.
bool is_connected(const AdjacencyList& adj);

/// Mean shortest-path length from a BFS sample of `samples` sources
/// (exact when samples >= n). Unreachable pairs are skipped.
double mean_path_length(const AdjacencyList& adj, std::size_t samples,
                        sim::Rng& rng);

}  // namespace decentnet::net
