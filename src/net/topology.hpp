// Graph topology generators for unstructured overlays and blockchain gossip
// meshes. All return symmetric adjacency lists over dense indices [0, n).
//
// Two surfaces: the free functions (one per generator family, take an Rng
// in-hand) and TopologySpec, a declarative seedable factory mirroring the
// scenario/config API — spec.validate() names the first bad field,
// spec.build(seed) is deterministic, and the kind is data (so scenario
// configs, CLI params, and future topology-import files can all select a
// generator uniformly).
#pragma once

#include <cstddef>
#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "sim/rng.hpp"

namespace decentnet::net {

using AdjacencyList = std::vector<std::vector<std::size_t>>;

/// Each node gets `degree` random distinct neighbors (union of out-picks, so
/// realized degree is ~2*degree before dedup); the classic P2P "connect to k
/// random peers" bootstrap. Guarantees no self-loops or duplicate edges.
AdjacencyList random_graph(std::size_t n, std::size_t degree, sim::Rng& rng);

/// Erdős–Rényi G(n, p).
AdjacencyList erdos_renyi(std::size_t n, double p, sim::Rng& rng);

/// Watts–Strogatz small world: ring lattice with k neighbors per side,
/// each edge rewired with probability beta.
AdjacencyList watts_strogatz(std::size_t n, std::size_t k, double beta,
                             sim::Rng& rng);

/// Barabási–Albert preferential attachment with m edges per new node:
/// produces the power-law degree distributions observed in real overlays.
AdjacencyList barabasi_albert(std::size_t n, std::size_t m, sim::Rng& rng);

/// Declarative topology selection: which generator, over how many nodes,
/// with the family's parameters. The factory face of the free functions
/// above.
struct TopologySpec {
  enum class Kind : std::uint8_t {
    Random,         // random_graph: `degree` out-picks per node
    ErdosRenyi,     // erdos_renyi: edge probability `p`
    WattsStrogatz,  // watts_strogatz: `degree` neighbors/side, rewire `p`
    BarabasiAlbert, // barabasi_albert: `degree` edges per new node
  };

  Kind kind = Kind::Random;
  std::size_t nodes = 0;
  /// Random: out-picks per node. WattsStrogatz: ring neighbors per side.
  /// BarabasiAlbert: edges per new node. ErdosRenyi: unused.
  std::size_t degree = 6;
  /// ErdosRenyi: edge probability. WattsStrogatz: rewire probability.
  /// Others: unused.
  double p = 0.0;

  /// Actionable description of the first invalid field, or nullopt when the
  /// spec is buildable.
  std::optional<std::string> validate() const;

  /// Generate the graph; draws only from `rng`. Throws std::invalid_argument
  /// with the validate() message on an invalid spec.
  AdjacencyList build(sim::Rng& rng) const;
  /// Seedable convenience: same spec + same seed = same graph.
  AdjacencyList build(std::uint64_t seed) const;
};

const char* topology_kind_name(TopologySpec::Kind kind);
std::optional<TopologySpec::Kind> topology_kind_from_name(
    std::string_view name);

/// True if the graph is a single connected component.
bool is_connected(const AdjacencyList& adj);

/// Mean shortest-path length from a BFS sample of `samples` sources
/// (exact when samples >= n). Unreachable pairs are skipped.
double mean_path_length(const AdjacencyList& adj, std::size_t samples,
                        sim::Rng& rng);

}  // namespace decentnet::net
