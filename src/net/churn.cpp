#include "net/churn.hpp"

#include <cmath>

namespace decentnet::net {

sim::SimDuration DurationDist::sample(sim::Rng& rng) const {
  double secs = 0;
  switch (kind) {
    case Kind::Constant:
      secs = a;
      break;
    case Kind::Exponential:
      secs = rng.exponential(1.0 / a);
      break;
    case Kind::Pareto:
      secs = rng.pareto(a, b);
      break;
    case Kind::Weibull:
      secs = rng.weibull(a, b);
      break;
    case Kind::LogNormal:
      secs = rng.lognormal(std::log(a), b);
      break;
  }
  return sim::seconds(secs);
}

ChurnDriver::ChurnDriver(sim::Simulator& sim, std::size_t n,
                         ChurnConfig config, Hook go_online, Hook go_offline)
    : sim_(sim),
      config_(config),
      go_online_(std::move(go_online)),
      go_offline_(std::move(go_offline)),
      rng_(sim.rng().fork(0xC4324E)),
      online_(n, 0),
      held_(n, 0),
      pending_(n) {}

void ChurnDriver::start() {
  started_ = true;
  stopped_ = false;
  if (router_ && peer_rngs_.empty()) {
    // Router mode: one decorrelated stream per peer, forked up front on the
    // driver thread so the fork order (and thus every stream) is fixed
    // before any shard runs. Legacy mode leaves this empty and keeps the
    // shared stream's historical draw sequence.
    peer_rngs_.reserve(online_.size());
    for (std::size_t i = 0; i < online_.size(); ++i) {
      peer_rngs_.push_back(rng_.fork(i));
    }
  }
  for (std::size_t i = 0; i < online_.size(); ++i) {
    // Draw even for held peers so a pre-start hold never shifts the shared
    // stream's draw sequence for everyone else.
    const bool up = rng_.chance(config_.initially_online);
    if (up && !held_[i]) {
      online_[i] = 1;
      online_count_.fetch_add(1, std::memory_order_relaxed);
      go_online_(i);
    }
    schedule_next(i);
  }
}

void ChurnDriver::hold_offline(std::size_t peer_index) {
  if (held_[peer_index]) return;
  held_[peer_index] = 1;
  pending_[peer_index].cancel();
  if (online_[peer_index]) {
    // Bookkeeping only: the fault's crash hook owns the node-level action,
    // so invoking go_offline_ here would act on the node twice.
    online_[peer_index] = 0;
    online_count_.fetch_sub(1, std::memory_order_relaxed);
  }
}

void ChurnDriver::release(std::size_t peer_index, bool online_now) {
  if (!held_[peer_index]) return;
  held_[peer_index] = 0;
  if (online_now && !online_[peer_index]) {
    online_[peer_index] = 1;
    online_count_.fetch_add(1, std::memory_order_relaxed);
  } else if (!online_now && online_[peer_index]) {
    online_[peer_index] = 0;
    online_count_.fetch_sub(1, std::memory_order_relaxed);
  }
  if (started_ && !stopped_) schedule_next(peer_index);
}

void ChurnDriver::stop() {
  stopped_ = true;
  for (sim::EventHandle& h : pending_) h.cancel();
}

void ChurnDriver::restart() {
  if (!started_ || !stopped_) return;
  stopped_ = false;
  for (std::size_t i = 0; i < online_.size(); ++i) schedule_next(i);
}

void ChurnDriver::schedule_next(std::size_t peer_index) {
  if (held_[peer_index]) return;  // fault-crashed: churn is suspended
  const DurationDist& dist =
      online_[peer_index] ? config_.session : config_.downtime;
  // Router mode: the transition runs on the peer's own shard and draws from
  // the peer's own stream — both index-determined, so the schedule is
  // byte-identical at any worker-thread count.
  sim::Simulator& target = router_ ? router_(peer_index) : sim_;
  sim::Rng& rng = router_ ? peer_rngs_[peer_index] : rng_;
  pending_[peer_index] = target.schedule(
      dist.sample(rng), [this, peer_index] { transition(peer_index); },
      "churn/transition");
}

void ChurnDriver::transition(std::size_t peer_index) {
  if (held_[peer_index]) return;  // defensive: holds cancel their pending event
  if (online_[peer_index]) {
    online_[peer_index] = 0;
    online_count_.fetch_sub(1, std::memory_order_relaxed);
    go_offline_(peer_index);
  } else {
    online_[peer_index] = 1;
    online_count_.fetch_add(1, std::memory_order_relaxed);
    go_online_(peer_index);
  }
  schedule_next(peer_index);
}

}  // namespace decentnet::net
