#include "net/faults.hpp"

namespace decentnet::net {

// ---------------------------------------------------------------------------
// FaultPlan builders
// ---------------------------------------------------------------------------

FaultPlan& FaultPlan::partition(
    sim::SimTime at, std::string name,
    std::vector<std::unordered_set<std::uint64_t>> groups,
    sim::SimTime heal_at) {
  FaultEvent ev;
  ev.kind = FaultEvent::Kind::Partition;
  ev.at = at;
  ev.heal_at = heal_at;
  ev.name = std::move(name);
  ev.groups = std::move(groups);
  events_.push_back(std::move(ev));
  return *this;
}

FaultPlan& FaultPlan::crash(sim::SimTime at, std::size_t node) {
  FaultEvent ev;
  ev.kind = FaultEvent::Kind::Crash;
  ev.at = at;
  ev.node = node;
  events_.push_back(std::move(ev));
  return *this;
}

FaultPlan& FaultPlan::restart(sim::SimTime at, std::size_t node) {
  FaultEvent ev;
  ev.kind = FaultEvent::Kind::Restart;
  ev.at = at;
  ev.node = node;
  events_.push_back(std::move(ev));
  return *this;
}

FaultPlan& FaultPlan::latency_penalty(sim::SimTime at, std::size_t node,
                                      sim::SimDuration extra,
                                      sim::SimTime heal_at) {
  FaultEvent ev;
  ev.kind = FaultEvent::Kind::LatencyPenalty;
  ev.at = at;
  ev.heal_at = heal_at;
  ev.node = node;
  ev.duration = extra;
  events_.push_back(std::move(ev));
  return *this;
}

FaultPlan& FaultPlan::bandwidth_degrade(sim::SimTime at, std::size_t node,
                                        double factor, sim::SimTime heal_at) {
  FaultEvent ev;
  ev.kind = FaultEvent::Kind::BandwidthDegrade;
  ev.at = at;
  ev.heal_at = heal_at;
  ev.node = node;
  ev.value = factor;
  events_.push_back(std::move(ev));
  return *this;
}

FaultPlan& FaultPlan::loss_burst(sim::SimTime at, double p,
                                 sim::SimTime heal_at) {
  FaultEvent ev;
  ev.kind = FaultEvent::Kind::LossBurst;
  ev.at = at;
  ev.heal_at = heal_at;
  ev.value = p;
  events_.push_back(std::move(ev));
  return *this;
}

FaultPlan& FaultPlan::duplicate_window(sim::SimTime at, double p,
                                       sim::SimTime heal_at) {
  FaultEvent ev;
  ev.kind = FaultEvent::Kind::DuplicateWindow;
  ev.at = at;
  ev.heal_at = heal_at;
  ev.value = p;
  events_.push_back(std::move(ev));
  return *this;
}

FaultPlan& FaultPlan::reorder_window(sim::SimTime at, sim::SimDuration jitter,
                                     sim::SimTime heal_at) {
  FaultEvent ev;
  ev.kind = FaultEvent::Kind::ReorderWindow;
  ev.at = at;
  ev.heal_at = heal_at;
  ev.duration = jitter;
  events_.push_back(std::move(ev));
  return *this;
}

const char* fault_kind_name(FaultEvent::Kind kind) {
  switch (kind) {
    case FaultEvent::Kind::Partition: return "partition";
    case FaultEvent::Kind::Crash: return "crash";
    case FaultEvent::Kind::Restart: return "restart";
    case FaultEvent::Kind::LatencyPenalty: return "latency";
    case FaultEvent::Kind::BandwidthDegrade: return "bandwidth";
    case FaultEvent::Kind::LossBurst: return "loss";
    case FaultEvent::Kind::DuplicateWindow: return "duplicate";
    case FaultEvent::Kind::ReorderWindow: return "reorder";
  }
  return "unknown";
}

// ---------------------------------------------------------------------------
// FaultScheduler
// ---------------------------------------------------------------------------

FaultScheduler::FaultScheduler(Network& net, FaultPlan plan,
                               FaultTargets targets)
    : net_(net),
      sim_(net.simulator()),
      plan_(std::move(plan)),
      targets_(std::move(targets)),
      m_injected_(net.metrics().counter("net/fault/injected")),
      m_healed_(net.metrics().counter("net/fault/healed")),
      m_partitions_(net.metrics().counter("net/fault/partitions")),
      m_crashes_(net.metrics().counter("net/fault/crashes")),
      m_restarts_(net.metrics().counter("net/fault/restarts")),
      m_link_faults_(net.metrics().counter("net/fault/link_faults")),
      m_window_faults_(net.metrics().counter("net/fault/window_faults")),
      saved_bandwidth_(plan_.events().size(), {0, 0}),
      saved_loss_(plan_.events().size(), 0) {}

NodeId FaultScheduler::addr(std::size_t node) const {
  return node < targets_.nodes.size() ? targets_.nodes[node] : NodeId{0};
}

void FaultScheduler::start() {
  if (started_) return;
  started_ = true;
  const auto& events = plan_.events();
  scheduled_.reserve(events.size() * 2);
  for (std::size_t i = 0; i < events.size(); ++i) {
    const FaultEvent& ev = events[i];
    scheduled_.push_back(sim_.schedule_at(
        ev.at, [this, i] { inject(plan_.events()[i], i); }, "fault/inject"));
    const bool point_event = ev.kind == FaultEvent::Kind::Crash ||
                             ev.kind == FaultEvent::Kind::Restart;
    if (!point_event && ev.heal_at > ev.at) {
      scheduled_.push_back(sim_.schedule_at(
          ev.heal_at, [this, i] { heal(plan_.events()[i], i); },
          "fault/heal"));
    }
  }
}

void FaultScheduler::stop() {
  for (sim::EventHandle& h : scheduled_) h.cancel();
  scheduled_.clear();
}

void FaultScheduler::trace(const char* kind, const FaultEvent& ev,
                           std::size_t index) {
  if (sim::TraceSink* const tr = sim_.trace()) {
    tr->record({sim_.now(), kind, fault_kind_name(ev.kind), index,
                ev.node, ev.heal_at > 0 ? static_cast<std::uint64_t>(ev.heal_at)
                                        : 0,
                0});
  }
}

void FaultScheduler::inject(const FaultEvent& ev, std::size_t index) {
  ++injected_;
  m_injected_.add();
  trace("fault", ev, index);
  switch (ev.kind) {
    case FaultEvent::Kind::Partition:
      m_partitions_.add();
      net_.add_partition(ev.name, ev.groups);
      break;
    case FaultEvent::Kind::Crash:
      m_crashes_.add();
      if (targets_.crash) targets_.crash(ev.node);
      break;
    case FaultEvent::Kind::Restart:
      m_restarts_.add();
      if (targets_.restart) targets_.restart(ev.node);
      break;
    case FaultEvent::Kind::LatencyPenalty:
      m_link_faults_.add();
      net_.set_latency_penalty(addr(ev.node), ev.duration);
      break;
    case FaultEvent::Kind::BandwidthDegrade: {
      m_link_faults_.add();
      const NodeId id = addr(ev.node);
      saved_bandwidth_[index] = {net_.uplink_bps(id), net_.downlink_bps(id)};
      net_.set_bandwidth(id, saved_bandwidth_[index].first * ev.value,
                         saved_bandwidth_[index].second * ev.value);
      break;
    }
    case FaultEvent::Kind::LossBurst:
      m_window_faults_.add();
      saved_loss_[index] = net_.drop_probability();
      net_.set_drop_probability(ev.value);
      break;
    case FaultEvent::Kind::DuplicateWindow:
      m_window_faults_.add();
      net_.set_duplicate_probability(ev.value);
      break;
    case FaultEvent::Kind::ReorderWindow:
      m_window_faults_.add();
      net_.set_reorder_jitter(ev.duration);
      break;
  }
}

void FaultScheduler::heal(const FaultEvent& ev, std::size_t index) {
  ++healed_;
  m_healed_.add();
  trace("heal", ev, index);
  switch (ev.kind) {
    case FaultEvent::Kind::Partition:
      net_.remove_partition(ev.name);
      break;
    case FaultEvent::Kind::LatencyPenalty:
      net_.set_latency_penalty(addr(ev.node), 0);
      break;
    case FaultEvent::Kind::BandwidthDegrade:
      net_.set_bandwidth(addr(ev.node), saved_bandwidth_[index].first,
                         saved_bandwidth_[index].second);
      break;
    case FaultEvent::Kind::LossBurst:
      net_.set_drop_probability(saved_loss_[index]);
      break;
    case FaultEvent::Kind::DuplicateWindow:
      net_.set_duplicate_probability(0);
      break;
    case FaultEvent::Kind::ReorderWindow:
      net_.set_reorder_jitter(0);
      break;
    case FaultEvent::Kind::Crash:
    case FaultEvent::Kind::Restart:
      break;  // point events never heal
  }
}

}  // namespace decentnet::net
