#include "net/faults.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "net/churn.hpp"
#include "sim/jsonlite.hpp"
#include "sim/telemetry.hpp"

namespace decentnet::net {

namespace {

namespace jsonlite = sim::jsonlite;

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          constexpr char kHex[] = "0123456789abcdef";
          out += "\\u00";
          out += kHex[(c >> 4) & 0xF];
          out += kHex[c & 0xF];
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::string event_context(std::size_t index, FaultEvent::Kind kind) {
  return "fault plan event " + std::to_string(index) + " (" +
         fault_kind_name(kind) + ")";
}

}  // namespace

// ---------------------------------------------------------------------------
// FaultPlan builders
// ---------------------------------------------------------------------------

FaultPlan& FaultPlan::partition(
    sim::SimTime at, std::string name,
    std::vector<std::unordered_set<std::uint64_t>> groups,
    sim::SimTime heal_at) {
  FaultEvent ev;
  ev.kind = FaultEvent::Kind::Partition;
  ev.at = at;
  ev.heal_at = heal_at;
  ev.name = std::move(name);
  ev.groups = std::move(groups);
  events_.push_back(std::move(ev));
  return *this;
}

FaultPlan& FaultPlan::crash(sim::SimTime at, std::size_t node) {
  FaultEvent ev;
  ev.kind = FaultEvent::Kind::Crash;
  ev.at = at;
  ev.node = node;
  events_.push_back(std::move(ev));
  return *this;
}

FaultPlan& FaultPlan::restart(sim::SimTime at, std::size_t node) {
  FaultEvent ev;
  ev.kind = FaultEvent::Kind::Restart;
  ev.at = at;
  ev.node = node;
  events_.push_back(std::move(ev));
  return *this;
}

FaultPlan& FaultPlan::latency_penalty(sim::SimTime at, std::size_t node,
                                      sim::SimDuration extra,
                                      sim::SimTime heal_at) {
  FaultEvent ev;
  ev.kind = FaultEvent::Kind::LatencyPenalty;
  ev.at = at;
  ev.heal_at = heal_at;
  ev.node = node;
  ev.duration = extra;
  events_.push_back(std::move(ev));
  return *this;
}

FaultPlan& FaultPlan::bandwidth_degrade(sim::SimTime at, std::size_t node,
                                        double factor, sim::SimTime heal_at) {
  FaultEvent ev;
  ev.kind = FaultEvent::Kind::BandwidthDegrade;
  ev.at = at;
  ev.heal_at = heal_at;
  ev.node = node;
  ev.value = factor;
  events_.push_back(std::move(ev));
  return *this;
}

FaultPlan& FaultPlan::loss_burst(sim::SimTime at, double p,
                                 sim::SimTime heal_at) {
  FaultEvent ev;
  ev.kind = FaultEvent::Kind::LossBurst;
  ev.at = at;
  ev.heal_at = heal_at;
  ev.value = p;
  events_.push_back(std::move(ev));
  return *this;
}

FaultPlan& FaultPlan::duplicate_window(sim::SimTime at, double p,
                                       sim::SimTime heal_at) {
  FaultEvent ev;
  ev.kind = FaultEvent::Kind::DuplicateWindow;
  ev.at = at;
  ev.heal_at = heal_at;
  ev.value = p;
  events_.push_back(std::move(ev));
  return *this;
}

FaultPlan& FaultPlan::reorder_window(sim::SimTime at, sim::SimDuration jitter,
                                     sim::SimTime heal_at) {
  FaultEvent ev;
  ev.kind = FaultEvent::Kind::ReorderWindow;
  ev.at = at;
  ev.heal_at = heal_at;
  ev.duration = jitter;
  events_.push_back(std::move(ev));
  return *this;
}

FaultPlan& FaultPlan::add(FaultEvent ev) {
  events_.push_back(std::move(ev));
  return *this;
}

std::optional<std::string> FaultPlan::validate(std::size_t num_nodes) const {
  for (std::size_t i = 0; i < events_.size(); ++i) {
    const FaultEvent& ev = events_[i];
    const std::string ctx = event_context(i, ev.kind);
    if (ev.at < 0) {
      return ctx + ": inject time " + std::to_string(ev.at) + "us is negative";
    }
    const bool point_event = ev.kind == FaultEvent::Kind::Crash ||
                             ev.kind == FaultEvent::Kind::Restart;
    if (!point_event && ev.heal_at != 0 && ev.heal_at <= ev.at) {
      return ctx + ": heal time " + std::to_string(ev.heal_at) +
             "us is not after inject time " + std::to_string(ev.at) + "us";
    }
    switch (ev.kind) {
      case FaultEvent::Kind::Partition: {
        if (ev.groups.empty()) return ctx + ": no partition groups";
        std::unordered_set<std::uint64_t> seen;
        for (std::size_t g = 0; g < ev.groups.size(); ++g) {
          if (ev.groups[g].empty()) {
            return ctx + ": group " + std::to_string(g) + " is empty";
          }
          for (const std::uint64_t member : ev.groups[g]) {
            if (!seen.insert(member).second) {
              return ctx + ": node " + std::to_string(member) +
                     " appears in more than one group";
            }
            if (num_nodes != 0 && (member == 0 || member > num_nodes)) {
              return ctx + ": node address " + std::to_string(member) +
                     " out of range [1, " + std::to_string(num_nodes) + "]";
            }
          }
        }
        break;
      }
      case FaultEvent::Kind::Crash:
      case FaultEvent::Kind::Restart:
      case FaultEvent::Kind::LatencyPenalty:
      case FaultEvent::Kind::BandwidthDegrade:
        if (num_nodes != 0 && ev.node >= num_nodes) {
          return ctx + ": node index " + std::to_string(ev.node) +
                 " out of range [0, " + std::to_string(num_nodes - 1) + "]";
        }
        if (ev.kind == FaultEvent::Kind::LatencyPenalty && ev.duration < 0) {
          return ctx + ": penalty " + std::to_string(ev.duration) +
                 "us is negative";
        }
        if (ev.kind == FaultEvent::Kind::BandwidthDegrade &&
            (!std::isfinite(ev.value) || ev.value < 0)) {
          return ctx + ": factor " + std::to_string(ev.value) +
                 " must be finite and >= 0";
        }
        break;
      case FaultEvent::Kind::LossBurst:
      case FaultEvent::Kind::DuplicateWindow:
        if (!(ev.value >= 0 && ev.value <= 1)) {
          return ctx + ": probability " + std::to_string(ev.value) +
                 " out of [0, 1]";
        }
        break;
      case FaultEvent::Kind::ReorderWindow:
        if (ev.duration < 0) {
          return ctx + ": jitter " + std::to_string(ev.duration) +
                 "us is negative";
        }
        break;
    }
  }
  return std::nullopt;
}

std::string FaultPlan::to_json() const {
  std::string out = "{\n  \"version\": 1,\n  \"events\": [";
  for (std::size_t i = 0; i < events_.size(); ++i) {
    const FaultEvent& ev = events_[i];
    out += i == 0 ? "\n" : ",\n";
    out += "    {\"kind\": \"";
    out += fault_kind_name(ev.kind);
    out += "\", \"at\": " + std::to_string(ev.at);
    switch (ev.kind) {
      case FaultEvent::Kind::Partition: {
        out += ", \"heal_at\": " + std::to_string(ev.heal_at);
        out += ", \"name\": \"" + json_escape(ev.name) + "\"";
        out += ", \"groups\": [";
        for (std::size_t g = 0; g < ev.groups.size(); ++g) {
          // Sets iterate in hash order; sort members so same plan → same
          // bytes (the repro-file currency the chaos engine depends on).
          std::vector<std::uint64_t> members(ev.groups[g].begin(),
                                             ev.groups[g].end());
          std::sort(members.begin(), members.end());
          out += g == 0 ? "[" : ", [";
          for (std::size_t m = 0; m < members.size(); ++m) {
            if (m != 0) out += ", ";
            out += std::to_string(members[m]);
          }
          out += "]";
        }
        out += "]";
        break;
      }
      case FaultEvent::Kind::Crash:
      case FaultEvent::Kind::Restart:
        out += ", \"node\": " + std::to_string(ev.node);
        break;
      case FaultEvent::Kind::LatencyPenalty:
        out += ", \"heal_at\": " + std::to_string(ev.heal_at);
        out += ", \"node\": " + std::to_string(ev.node);
        out += ", \"penalty_us\": " + std::to_string(ev.duration);
        break;
      case FaultEvent::Kind::BandwidthDegrade:
        out += ", \"heal_at\": " + std::to_string(ev.heal_at);
        out += ", \"node\": " + std::to_string(ev.node);
        out += ", \"factor\": " + jsonlite::format_double(ev.value);
        break;
      case FaultEvent::Kind::LossBurst:
      case FaultEvent::Kind::DuplicateWindow:
        out += ", \"heal_at\": " + std::to_string(ev.heal_at);
        out += ", \"p\": " + jsonlite::format_double(ev.value);
        break;
      case FaultEvent::Kind::ReorderWindow:
        out += ", \"heal_at\": " + std::to_string(ev.heal_at);
        out += ", \"jitter_us\": " + std::to_string(ev.duration);
        break;
    }
    out += "}";
  }
  out += events_.empty() ? "]\n}\n" : "\n  ]\n}\n";
  return out;
}

FaultPlan FaultPlan::from_json(std::string_view text) {
  return from_json_value(jsonlite::parse(text));
}

FaultPlan FaultPlan::from_json_value(const jsonlite::JsonValue& doc) {
  const std::int64_t version =
      doc.at("version", "fault plan").as_int("fault plan 'version'");
  if (version != 1) {
    throw std::invalid_argument("fault plan: unsupported version " +
                                std::to_string(version) + " (expected 1)");
  }
  FaultPlan plan;
  const auto& events =
      doc.at("events", "fault plan").as_array("fault plan 'events'");
  for (std::size_t i = 0; i < events.size(); ++i) {
    const std::string base = "fault plan event " + std::to_string(i);
    const jsonlite::JsonValue& e = events[i];
    const std::string& kind_name =
        e.at("kind", base).as_string(base + " 'kind'");
    const std::optional<FaultEvent::Kind> kind =
        fault_kind_from_name(kind_name);
    if (!kind) {
      throw std::invalid_argument(
          base + ": unknown kind '" + kind_name +
          "' (expected partition|crash|restart|latency|bandwidth|loss|"
          "duplicate|reorder)");
    }
    const std::string ctx = event_context(i, *kind);
    FaultEvent ev;
    ev.kind = *kind;
    ev.at = e.at("at", ctx).as_int(ctx + " 'at'");
    const bool point_event = ev.kind == FaultEvent::Kind::Crash ||
                             ev.kind == FaultEvent::Kind::Restart;
    if (!point_event) ev.heal_at = e.at("heal_at", ctx).as_int(ctx + " 'heal_at'");
    switch (ev.kind) {
      case FaultEvent::Kind::Partition: {
        ev.name = e.at("name", ctx).as_string(ctx + " 'name'");
        const auto& groups =
            e.at("groups", ctx).as_array(ctx + " 'groups'");
        for (std::size_t g = 0; g < groups.size(); ++g) {
          const std::string gctx = ctx + " group " + std::to_string(g);
          std::unordered_set<std::uint64_t> members;
          for (const jsonlite::JsonValue& m : groups[g].as_array(gctx)) {
            members.insert(m.as_uint(gctx + " member"));
          }
          ev.groups.push_back(std::move(members));
        }
        break;
      }
      case FaultEvent::Kind::Crash:
      case FaultEvent::Kind::Restart:
        ev.node = e.at("node", ctx).as_uint(ctx + " 'node'");
        break;
      case FaultEvent::Kind::LatencyPenalty:
        ev.node = e.at("node", ctx).as_uint(ctx + " 'node'");
        ev.duration = e.at("penalty_us", ctx).as_int(ctx + " 'penalty_us'");
        break;
      case FaultEvent::Kind::BandwidthDegrade:
        ev.node = e.at("node", ctx).as_uint(ctx + " 'node'");
        ev.value = e.at("factor", ctx).as_number(ctx + " 'factor'");
        break;
      case FaultEvent::Kind::LossBurst:
      case FaultEvent::Kind::DuplicateWindow:
        ev.value = e.at("p", ctx).as_number(ctx + " 'p'");
        break;
      case FaultEvent::Kind::ReorderWindow:
        ev.duration = e.at("jitter_us", ctx).as_int(ctx + " 'jitter_us'");
        break;
    }
    plan.events_.push_back(std::move(ev));
  }
  if (const std::optional<std::string> problem = plan.validate()) {
    throw std::invalid_argument(*problem);
  }
  return plan;
}

const char* fault_kind_name(FaultEvent::Kind kind) {
  switch (kind) {
    case FaultEvent::Kind::Partition: return "partition";
    case FaultEvent::Kind::Crash: return "crash";
    case FaultEvent::Kind::Restart: return "restart";
    case FaultEvent::Kind::LatencyPenalty: return "latency";
    case FaultEvent::Kind::BandwidthDegrade: return "bandwidth";
    case FaultEvent::Kind::LossBurst: return "loss";
    case FaultEvent::Kind::DuplicateWindow: return "duplicate";
    case FaultEvent::Kind::ReorderWindow: return "reorder";
  }
  return "unknown";
}

std::optional<FaultEvent::Kind> fault_kind_from_name(std::string_view name) {
  using Kind = FaultEvent::Kind;
  for (const Kind k :
       {Kind::Partition, Kind::Crash, Kind::Restart, Kind::LatencyPenalty,
        Kind::BandwidthDegrade, Kind::LossBurst, Kind::DuplicateWindow,
        Kind::ReorderWindow}) {
    if (name == fault_kind_name(k)) return k;
  }
  return std::nullopt;
}

// ---------------------------------------------------------------------------
// FaultScheduler
// ---------------------------------------------------------------------------

FaultScheduler::FaultScheduler(Network& net, FaultPlan plan,
                               FaultTargets targets)
    : net_(net),
      sim_(net.simulator()),
      plan_(std::move(plan)),
      targets_(std::move(targets)),
      m_injected_(net.metrics().counter("net/fault/injected")),
      m_healed_(net.metrics().counter("net/fault/healed")),
      m_partitions_(net.metrics().counter("net/fault/partitions")),
      m_crashes_(net.metrics().counter("net/fault/crashes")),
      m_restarts_(net.metrics().counter("net/fault/restarts")),
      m_link_faults_(net.metrics().counter("net/fault/link_faults")),
      m_window_faults_(net.metrics().counter("net/fault/window_faults")),
      saved_link_(plan_.events().size()),
      saved_loss_(plan_.events().size(), 0) {}

NodeId FaultScheduler::addr(std::size_t node) const {
  return node < targets_.nodes.size() ? targets_.nodes[node] : NodeId{0};
}

void FaultScheduler::start() {
  if (started_) return;
  started_ = true;
  const auto& events = plan_.events();
  scheduled_.reserve(events.size() * 2);
  for (std::size_t i = 0; i < events.size(); ++i) {
    const FaultEvent& ev = events[i];
    scheduled_.push_back(sim_.schedule_at(
        ev.at, [this, i] { inject(plan_.events()[i], i); }, "fault/inject"));
    const bool point_event = ev.kind == FaultEvent::Kind::Crash ||
                             ev.kind == FaultEvent::Kind::Restart;
    if (!point_event && ev.heal_at > ev.at) {
      scheduled_.push_back(sim_.schedule_at(
          ev.heal_at, [this, i] { heal(plan_.events()[i], i); },
          "fault/heal"));
    }
  }
}

void FaultScheduler::stop() {
  for (sim::EventHandle& h : scheduled_) h.cancel();
  scheduled_.clear();
}

void FaultScheduler::register_telemetry(sim::Telemetry& telemetry) {
  Network* const net = &net_;
  telemetry.add_gauge("faults/partitions_active", 0, [net](sim::SimTime) {
    return static_cast<double>(net->partition_count());
  });
  telemetry.add_rate("faults/injected", 0, m_injected_);
  telemetry.add_rate("faults/healed", 0, m_healed_);
}

void FaultScheduler::trace(const char* kind, const FaultEvent& ev,
                           std::size_t index) {
  if (sim::TraceSink* const tr = sim_.trace()) {
    tr->record({sim_.now(), kind, fault_kind_name(ev.kind), index,
                ev.node, ev.heal_at > 0 ? static_cast<std::uint64_t>(ev.heal_at)
                                        : 0,
                0});
  }
}

void FaultScheduler::inject(const FaultEvent& ev, std::size_t index) {
  ++injected_;
  m_injected_.add();
  trace("fault", ev, index);
  switch (ev.kind) {
    case FaultEvent::Kind::Partition:
      m_partitions_.add();
      net_.add_partition(ev.name, ev.groups);
      break;
    case FaultEvent::Kind::Crash:
      m_crashes_.add();
      // Hold churn first: fault-crash is authoritative, so no churn
      // transition may revive the node before the plan's restart.
      if (targets_.churn) targets_.churn->hold_offline(ev.node);
      if (targets_.crash) targets_.crash(ev.node);
      break;
    case FaultEvent::Kind::Restart:
      m_restarts_.add();
      if (targets_.restart) targets_.restart(ev.node);
      if (targets_.churn) targets_.churn->release(ev.node, /*online_now=*/true);
      break;
    case FaultEvent::Kind::LatencyPenalty:
      m_link_faults_.add();
      net_.set_latency_penalty(addr(ev.node), ev.duration);
      break;
    case FaultEvent::Kind::BandwidthDegrade: {
      m_link_faults_.add();
      const NodeId id = addr(ev.node);
      // Save the whole LinkSpec and scale only the capacities; the queue
      // depth rides along unchanged and heal restores the spec verbatim.
      saved_link_[index] = net_.link(id);
      LinkSpec degraded = saved_link_[index];
      degraded.up_bps *= ev.value;
      degraded.down_bps *= ev.value;
      net_.set_link(id, degraded);
      break;
    }
    case FaultEvent::Kind::LossBurst:
      m_window_faults_.add();
      saved_loss_[index] = net_.drop_probability();
      net_.set_drop_probability(ev.value);
      break;
    case FaultEvent::Kind::DuplicateWindow:
      m_window_faults_.add();
      net_.set_duplicate_probability(ev.value);
      break;
    case FaultEvent::Kind::ReorderWindow:
      m_window_faults_.add();
      net_.set_reorder_jitter(ev.duration);
      break;
  }
}

void FaultScheduler::heal(const FaultEvent& ev, std::size_t index) {
  ++healed_;
  m_healed_.add();
  trace("heal", ev, index);
  switch (ev.kind) {
    case FaultEvent::Kind::Partition:
      net_.remove_partition(ev.name);
      break;
    case FaultEvent::Kind::LatencyPenalty:
      net_.set_latency_penalty(addr(ev.node), 0);
      break;
    case FaultEvent::Kind::BandwidthDegrade:
      net_.set_link(addr(ev.node), saved_link_[index]);
      break;
    case FaultEvent::Kind::LossBurst:
      net_.set_drop_probability(saved_loss_[index]);
      break;
    case FaultEvent::Kind::DuplicateWindow:
      net_.set_duplicate_probability(0);
      break;
    case FaultEvent::Kind::ReorderWindow:
      net_.set_reorder_jitter(0);
      break;
    case FaultEvent::Kind::Crash:
    case FaultEvent::Kind::Restart:
      break;  // point events never heal
  }
}

}  // namespace decentnet::net
