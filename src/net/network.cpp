#include "net/network.hpp"

#include <algorithm>
#include <stdexcept>

#include "sim/sharding.hpp"
#include "sim/telemetry.hpp"

namespace decentnet::net {

TransportConfig NetworkConfig::resolved_transport() const {
  TransportConfig t = transport;
  // Deprecated-shim folding: the old knobs override only what they set.
  // 0 means "unset" for the bps shims (the old defaults live in LinkSpec
  // now); negative values flow through so validate() can name them.
  if (model_bandwidth && t.mode == TransportMode::Latency) {
    t.mode = TransportMode::Bandwidth;
  }
  if (default_uplink_bps != 0) t.link.up_bps = default_uplink_bps;
  if (default_downlink_bps != 0) t.link.down_bps = default_downlink_bps;
  return t;
}

std::optional<std::string> NetworkConfig::validate() const {
  if (drop_probability < 0 || drop_probability > 1) {
    return "NetworkConfig: drop_probability must be in [0, 1], got " +
           std::to_string(drop_probability);
  }
  if (auto err = resolved_transport().validate()) {
    return "NetworkConfig: " + *err;
  }
  return std::nullopt;
}

Network::Network(sim::Simulator& sim, std::unique_ptr<LatencyModel> latency,
                 NetworkConfig config, sim::MetricRegistry* metrics)
    : sim_(sim),
      latency_(std::move(latency)),
      config_(config),
      rng_(sim.rng().fork(0x4E457457u)),
      owned_metrics_(metrics ? nullptr
                             : std::make_unique<sim::MetricRegistry>()),
      metrics_(metrics ? *metrics : *owned_metrics_),
      m_messages_sent_(metrics_.counter("net/messages_sent")),
      m_bytes_sent_(metrics_.counter("net/bytes_sent")),
      m_dropped_partition_(metrics_.counter("net/dropped_partition")),
      m_dropped_unreachable_(metrics_.counter("net/dropped_unreachable")),
      m_dropped_loss_(metrics_.counter("net/dropped_loss")),
      m_dropped_offline_(metrics_.counter("net/dropped_offline")),
      m_dropped_queue_(metrics_.counter("net/queue_dropped")),
      m_duplicated_(metrics_.counter("net/duplicated")),
      m_reordered_(metrics_.counter("net/reordered")),
      m_span_hops_(metrics_.counter("net/span_hops")),
      transport_(config.resolved_transport()) {
  if (config_.expected_nodes > 0) reserve_nodes(config_.expected_nodes);
}

void Network::HostSlab::grow(std::uint32_t idx) {
  while (capacity_ <= idx) {
    auto chunk = std::make_unique<Host*[]>(std::size_t{1} << kChunkBits);
    std::fill_n(chunk.get(), std::size_t{1} << kChunkBits, nullptr);
    chunks_.push_back(std::move(chunk));
    capacity_ += 1u << kChunkBits;
  }
}

void Network::reserve_nodes(std::size_t n) {
  table_.reserve(n);
  hosts_.reserve(n);
  span_table_.reserve_ids(n);
  // Cold arrays stay lazy; but once materialized, keep growth amortized.
  if (!latency_extra_.empty()) latency_extra_.reserve(n);
  if (!unreachable_.empty()) unreachable_.reserve(n);
  transport_.reserve(n);
}

void Network::set_span_tracking(bool on) { config_.track_spans = on; }

std::uint32_t Network::alloc_span_hop(std::uint32_t parent) {
  const std::uint32_t depth =
      parent != 0 && parent <= span_table_.size()
          ? span_table_.depth(parent) + 1
          : 0;
  m_span_hops_.add();
  return span_table_.alloc(depth);
}

Span Network::new_span_root() {
  if (!config_.track_spans) return {};
  if (kernel_ != nullptr) {
    const std::uint32_t s = sim::ShardedKernel::current_shard();
    sim::Simulator& cur = kernel_->shard(s);
    const std::uint32_t self = alloc_span_hop_sharded(shard_ctx_[s], s, 0);
    if (sim::TraceSink* const tr = cur.trace()) {
      tr->record({cur.now(), "span", "root", self, self, 0, 0});
    }
    return Span{self, self};
  }
  const std::uint32_t self = alloc_span_hop(0);
  if (sim::TraceSink* const tr = sim_.trace()) {
    tr->record({sim_.now(), "span", "root", self, self, 0, 0});
  }
  return Span{self, self};
}

std::uint32_t Network::alloc_span_hop_sharded(NetShard& ctx,
                                              std::uint32_t shard,
                                              std::uint32_t parent) {
  const std::uint32_t depth = parent != 0 ? span_depth(parent) + 1 : 0;
  const std::uint32_t local = ctx.spans.alloc(depth);
  ctx.m_span_hops->add();
  return (shard << kSpanLocalBits) | local;
}

void Network::attach(NodeId id, Host* host) {
  // Sharded runs pre-register every node, so this resolves without
  // mutating the table during the parallel phase (churn re-attaches on the
  // owning shard).
  Host** const slot = hosts_.slot(ensure_node(id));
  if (*slot == nullptr) online_.fetch_add(1, std::memory_order_relaxed);
  *slot = host;
}

void Network::detach(NodeId id) {
  const std::uint32_t idx = table_.index_of(id);
  if (idx == NodeTable::kNoIndex) return;
  Host** const slot = hosts_.slot(idx);
  if (*slot != nullptr) {
    *slot = nullptr;  // cold per-node state survives churn
    online_.fetch_sub(1, std::memory_order_relaxed);
  }
}

void Network::enable_sharding(sim::ShardedKernel& kernel) {
  kernel.set_lookahead(latency_->min_latency());
  if (kernel.shard_count() <= 1) return;  // the legacy path *is* that kernel
  if (&kernel.shard(0) != &sim_) {
    throw std::invalid_argument(
        "Network::enable_sharding: the Network must be constructed over "
        "kernel.shard(0)");
  }
  if (kernel.shard_count() > kSpanShardBitsMax) {
    throw std::invalid_argument(
        "Network::enable_sharding: at most 64 shards (span hop encoding)");
  }
  kernel_ = &kernel;
  shard_ctx_.clear();
  for (std::size_t s = 0; s < kernel.shard_count(); ++s) {
    // Same fork tag as the legacy ctor, applied per shard stream: shard 0's
    // context draws are decorrelated from rng_ only because enable_sharding
    // forks shard 0's root again — deterministic either way.
    shard_ctx_.emplace_back(kernel.shard(s).rng().fork(0x4E457457u));
    NetShard& c = shard_ctx_.back();
    sim::MetricRegistry& reg = kernel.metrics(s);
    c.m_messages_sent = &reg.counter("net/messages_sent");
    c.m_bytes_sent = &reg.counter("net/bytes_sent");
    c.m_dropped_partition = &reg.counter("net/dropped_partition");
    c.m_dropped_unreachable = &reg.counter("net/dropped_unreachable");
    c.m_dropped_loss = &reg.counter("net/dropped_loss");
    c.m_dropped_offline = &reg.counter("net/dropped_offline");
    c.m_dropped_queue = &reg.counter("net/queue_dropped");
    c.m_duplicated = &reg.counter("net/duplicated");
    c.m_reordered = &reg.counter("net/reordered");
    c.m_span_hops = &reg.counter("net/span_hops");
  }
}

void Network::register_telemetry(sim::Telemetry& telemetry) {
  if (!shard_ctx_.empty()) {
    // Sharded: rate series over the per-shard counters the send paths bump,
    // under the shard index, so the merged stream is a pure function of the
    // decomposition (the kernel samples at barriers).
    for (std::uint32_t s = 0; s < shard_ctx_.size(); ++s) {
      const NetShard& c = shard_ctx_[s];
      telemetry.add_rate("net/messages_sent", s, *c.m_messages_sent);
      telemetry.add_rate("net/bytes_sent", s, *c.m_bytes_sent);
      telemetry.add_rate("net/queue_dropped", s, *c.m_dropped_queue);
      telemetry.add_rate("net/dropped_loss", s, *c.m_dropped_loss);
      telemetry.add_rate("net/dropped_partition", s, *c.m_dropped_partition);
    }
  } else {
    telemetry.add_rate("net/messages_sent", 0, m_messages_sent_);
    telemetry.add_rate("net/bytes_sent", 0, m_bytes_sent_);
    telemetry.add_rate("net/queue_dropped", 0, m_dropped_queue_);
    telemetry.add_rate("net/dropped_loss", 0, m_dropped_loss_);
    telemetry.add_rate("net/dropped_partition", 0, m_dropped_partition_);
  }
  if (transport_.active()) {
    // Aggregates over every sender's (send-side, single-writer) state;
    // registered under shard 0 by convention since they span all shards.
    // sample() is const, so reading it from the driver at a barrier is safe.
    const Transport* const tx = &transport_;
    telemetry.add_gauge("net/uplink_queued_bytes", 0, [tx](sim::SimTime t) {
      return tx->sample(t).queued_bytes;
    });
    telemetry.add_gauge("net/busy_uplinks", 0, [tx](sim::SimTime t) {
      return static_cast<double>(tx->sample(t).busy_uplinks);
    });
    if (transport_.mode() == TransportMode::Tcp) {
      telemetry.add_gauge("net/cwnd_total_bytes", 0, [tx](sim::SimTime t) {
        return tx->sample(t).cwnd_total;
      });
      telemetry.add_gauge("net/cwnd_max_bytes", 0, [tx](sim::SimTime t) {
        return tx->sample(t).cwnd_max;
      });
    }
  }
}

sim::Simulator& Network::simulator_for(NodeId id) {
  if (kernel_ == nullptr) return sim_;
  return kernel_->shard(kernel_->shard_of(id.value));
}

sim::MetricRegistry& Network::metrics_for(NodeId id) {
  if (kernel_ == nullptr) return metrics_;
  return kernel_->metrics(kernel_->shard_of(id.value));
}

void Network::set_link(NodeId id, const LinkSpec& spec) {
  transport_.set_link(ensure_node(id), spec);
}

void Network::set_bandwidth(NodeId id, double uplink_bps,
                            double downlink_bps) {
  // Deprecated shim: rewrite only the capacities, preserving queue depth.
  LinkSpec spec = link(id);
  spec.up_bps = uplink_bps;
  spec.down_bps = downlink_bps;
  set_link(id, spec);
}

void Network::set_latency_penalty(NodeId id, sim::SimDuration extra) {
  const std::uint32_t idx = ensure_node(id);
  if (idx >= latency_extra_.size()) {
    latency_extra_.resize(std::max<std::size_t>(table_.size(), idx + 1), 0);
  }
  latency_extra_[idx] = extra < 0 ? 0 : extra;
}

void Network::add_partition(
    std::string name, std::vector<std::unordered_set<std::uint64_t>> groups) {
  remove_partition(name);
  Partition p;
  p.name = std::move(name);
  bool any = false;
  std::uint32_t index = 0;
  for (const auto& group : groups) {
    for (const std::uint64_t node : group) {
      // Listing a node registers it: the dense side table needs an index,
      // and a partition naming a not-yet-attached node must still apply
      // when that node appears.
      const std::uint32_t idx = ensure_node(NodeId{node});
      if (idx >= p.group_of.size()) p.group_of.resize(idx + 1, kRestGroup);
      p.group_of[idx] = index;
      any = true;
    }
    ++index;
  }
  if (any) partitions_.push_back(std::move(p));
}

void Network::remove_partition(std::string_view name) {
  partitions_.erase(
      std::remove_if(partitions_.begin(), partitions_.end(),
                     [&](const Partition& p) { return p.name == name; }),
      partitions_.end());
}

bool Network::partition_active(std::string_view name) const {
  return std::any_of(partitions_.begin(), partitions_.end(),
                     [&](const Partition& p) { return p.name == name; });
}

void Network::set_partition(std::unordered_set<std::uint64_t> group_a) {
  remove_partition("");
  if (!group_a.empty()) add_partition("", {std::move(group_a)});
}

void Network::set_unreachable(NodeId id, bool unreachable) {
  const std::uint32_t idx = ensure_node(id);
  if (idx >= unreachable_.size()) {
    if (!unreachable) return;  // default already means reachable
    unreachable_.resize(std::max<std::size_t>(table_.size(), idx + 1), 0);
  }
  unreachable_[idx] = unreachable ? 1 : 0;
}

bool Network::partitioned(std::uint32_t a, std::uint32_t b) const {
  // kNoIndex (never-interned endpoint) reads past every side table into the
  // implicit rest group, matching the hash-map semantics for unlisted ids.
  for (const Partition& p : partitions_) {
    const std::uint32_t ga = a < p.group_of.size() ? p.group_of[a]
                                                   : kRestGroup;
    const std::uint32_t gb = b < p.group_of.size() ? p.group_of[b]
                                                   : kRestGroup;
    if (ga != gb) return true;
  }
  return false;
}

void Network::schedule_delivery(Host** dst, sim::SimTime arrive, Message msg,
                                std::uint64_t msg_seq) {
  // Detached event: delivery is fire-and-forget — the kernel's hottest path.
  // The capture carries the resolved Host** slot (chunk-stable, so it
  // outlives any table growth), and delivery does zero hash lookups; the
  // online check is one null test. The untraced capture is sized to exactly
  // fill InlineFn<64>'s inline buffer (Host** + Counter* + 48-byte Message),
  // so steady-state delivery allocates nothing; the traced variant carries
  // more context and may box, which is fine off the fast path.
  if (sim_.trace()) {
    sim_.post_at(
        arrive,
        [this, dst, msg_seq, msg = std::move(msg)] {
          if (*dst == nullptr) {
            m_dropped_offline_.add();
            if (sim::TraceSink* const tr2 = sim_.trace()) {
              tr2->record({sim_.now(), "drop", "offline", msg_seq,
                           msg.from.value, msg.to.value, msg.size_bytes});
            }
            return;
          }
          (*dst)->handle_message(msg);
        },
        "net/deliver");
  } else {
    sim::Counter* const dropped = &m_dropped_offline_;
    sim_.post_at(
        arrive,
        [dst, dropped, msg = std::move(msg)] {
          if (*dst == nullptr) {
            dropped->add();
            return;
          }
          (*dst)->handle_message(msg);
        },
        "net/deliver");
  }
}

void Network::deliver(Message msg) {
  // One predictable branch keeps the legacy path's shape: everything below
  // is exactly the pre-sharding delivery pipeline.
  if (kernel_ != nullptr) [[unlikely]] {
    deliver_sharded(std::move(msg));
    return;
  }
  const std::uint64_t msg_seq = ++messages_sent_;
  bytes_sent_ += msg.size_bytes;
  m_messages_sent_.add();
  m_bytes_sent_.add(msg.size_bytes);

  sim::TraceSink* const tr = sim_.trace();
  if (tr) {
    tr->record({sim_.now(), "send", "", msg_seq, msg.from.value, msg.to.value,
                msg.size_bytes});
  }
  std::uint32_t span_parent = 0;
  if (config_.track_spans) {
    // Chain this message into its propagation tree *before* the drop checks:
    // a dropped message is still a tree edge (a pruned one — the "drop"
    // record that follows shares this msg_seq). The hop id is rewritten into
    // the message so the receiver's relays inherit the right parent. The
    // "span" record itself is emitted later (emit_span), once the transport
    // outcome's queuing delay is known — record order is unchanged because
    // nothing else records in between.
    span_parent = msg.span.hop;
    const std::uint32_t self = alloc_span_hop(span_parent);
    msg.span.hop = self;
    if (msg.span.root == 0) msg.span.root = self;
  }
  const auto emit_span = [&](sim::SimDuration queue_wait) {
    if (config_.track_spans && tr) {
      tr->record({sim_.now(), "span", "", msg.span.hop, msg.span.root,
                  span_parent, span_table_.depth(msg.span.hop),
                  static_cast<std::uint64_t>(queue_wait)});
    }
  };
  const auto trace_drop = [&](const char* reason) {
    emit_span(0);
    if (tr) {
      tr->record({sim_.now(), "drop", reason, msg_seq, msg.from.value,
                  msg.to.value, msg.size_bytes});
    }
  };

  // Resolve both endpoints to dense indices once; every per-node check
  // below is then a bounds test + array load. The receiver is interned
  // (lazily creating its slot, as the hash map's try_emplace used to), the
  // sender is looked up read-only — an unknown sender just reads defaults.
  const std::uint32_t from_idx = table_.index_of(msg.from);
  const std::uint32_t to_idx = ensure_node(msg.to);

  if (!partitions_.empty() && partitioned(from_idx, to_idx)) {
    m_dropped_partition_.add();
    trace_drop("partition");
    return;
  }

  // The Host** slot stays valid for the in-flight event even across churn
  // or table growth (chunked slab; entries never erased).
  Host** const dst = hosts_.slot(to_idx);
  if (unreachable_at(to_idx)) {
    m_dropped_unreachable_.add();
    trace_drop("unreachable");
    return;
  }
  if (config_.drop_probability > 0 && rng_.chance(config_.drop_probability)) {
    m_dropped_loss_.add();
    trace_drop("loss");
    return;
  }

  sim::SimTime depart = sim_.now();
  sim::SimDuration rx_serialize = 0;
  if (transport_.active()) {
    const Transport::Outcome out = transport_.admit(
        ensure_node(msg.from), to_idx, msg.size_bytes, sim_.now());
    if (out.dropped) {
      m_dropped_queue_.add();
      trace_drop("queue");
      return;
    }
    depart = out.depart;
    rx_serialize = out.rx_serialize;
    emit_span(out.queue_wait);
  } else {
    emit_span(0);
  }

  sim::SimDuration prop = latency_->sample(msg.from, msg.to, rng_);
  prop += penalty_of(from_idx) + penalty_of(to_idx);
  if (reorder_jitter_ > 0) {
    const auto extra = static_cast<sim::SimDuration>(
        rng_.uniform_int(static_cast<std::uint64_t>(reorder_jitter_) + 1));
    if (extra > 0) m_reordered_.add();
    prop += extra;
  }
  const sim::SimTime arrive = depart + prop + rx_serialize;

  // Duplication window: the copy trails the original by one more latency
  // sample, modelling a retransmit-style duplicate rather than a same-instant
  // twin (so reordering between copy and original is possible too).
  if (duplicate_probability_ > 0 && rng_.chance(duplicate_probability_)) {
    m_duplicated_.add();
    const sim::SimDuration lag = latency_->sample(msg.from, msg.to, rng_);
    if (tr) {
      tr->record({sim_.now(), "dup", "", msg_seq, msg.from.value,
                  msg.to.value, msg.size_bytes});
    }
    schedule_delivery(dst, arrive + lag, msg, msg_seq);
  }

  schedule_delivery(dst, arrive, std::move(msg), msg_seq);
}

// ---------------------------------------------------------------------------
// Sharded delivery path. Mirrors deliver()/schedule_delivery() step for
// step, but every mutable touch — RNG draws, counters, traffic tallies,
// span hops, message sequencing — goes through the *sending* shard's
// NetShard context, and the final post routes through the kernel's mailbox
// when the receiver lives on another shard. Shared Network state read here
// (partitions, unreachability, latency penalties, the dense node table) is
// configured only between runs, so the parallel phase reads it immutably.
// ---------------------------------------------------------------------------

void Network::schedule_delivery_sharded(std::size_t src_shard,
                                        std::size_t dst_shard, Host** dst,
                                        sim::SimTime arrive, Message msg,
                                        std::uint64_t msg_seq) {
  sim::Simulator* const dsim = &kernel_->shard(dst_shard);
  // The offline-drop counter must belong to the *receiving* shard: the
  // closure runs there.
  sim::Counter* const dropped = shard_ctx_[dst_shard].m_dropped_offline;
  sim::Simulator::Callback fn;
  if (kernel_->trace() != nullptr) {
    fn = [dsim, dst, dropped, msg_seq, msg = std::move(msg)] {
      if (*dst == nullptr) {
        dropped->add();
        if (sim::TraceSink* const tr2 = dsim->trace()) {
          tr2->record({dsim->now(), "drop", "offline", msg_seq,
                       msg.from.value, msg.to.value, msg.size_bytes});
        }
        return;
      }
      (*dst)->handle_message(msg);
    };
  } else {
    // Same 64-byte inline capture shape as the legacy fast path.
    fn = [dst, dropped, msg = std::move(msg)] {
      if (*dst == nullptr) {
        dropped->add();
        return;
      }
      (*dst)->handle_message(msg);
    };
  }
  if (dst_shard == src_shard) {
    dsim->post_at(arrive, std::move(fn), "net/deliver");
  } else {
    kernel_->post_cross(dst_shard, arrive, std::move(fn), "net/deliver");
  }
}

void Network::deliver_sharded(Message msg) {
  const std::uint32_t s = sim::ShardedKernel::current_shard();
  NetShard& ctx = shard_ctx_[s];
  sim::Simulator& cur = kernel_->shard(s);
  // Message sequence numbers carry their shard in the top bits so the
  // merged trace keeps globally unique ids without any cross-shard counter.
  const std::uint64_t msg_seq =
      (static_cast<std::uint64_t>(s) << 48) | ++ctx.messages_sent;
  ctx.bytes_sent += msg.size_bytes;
  ctx.m_messages_sent->add();
  ctx.m_bytes_sent->add(msg.size_bytes);

  sim::TraceSink* const tr = cur.trace();
  if (tr) {
    tr->record({cur.now(), "send", "", msg_seq, msg.from.value, msg.to.value,
                msg.size_bytes});
  }
  std::uint32_t span_parent = 0;
  if (config_.track_spans) {
    span_parent = msg.span.hop;
    const std::uint32_t self = alloc_span_hop_sharded(ctx, s, span_parent);
    msg.span.hop = self;
    if (msg.span.root == 0) msg.span.root = self;
  }
  const auto emit_span = [&](sim::SimDuration queue_wait) {
    if (config_.track_spans && tr) {
      tr->record({cur.now(), "span", "", msg.span.hop, msg.span.root,
                  span_parent, span_depth(msg.span.hop),
                  static_cast<std::uint64_t>(queue_wait)});
    }
  };
  const auto trace_drop = [&](const char* reason) {
    emit_span(0);
    if (tr) {
      tr->record({cur.now(), "drop", reason, msg_seq, msg.from.value,
                  msg.to.value, msg.size_bytes});
    }
  };

  // Find-only index resolution: sharded runs register every node up front,
  // so a miss means "never existed" — treat as offline, mutating nothing.
  const std::uint32_t from_idx = table_.index_of(msg.from);
  const std::uint32_t to_idx = table_.index_of(msg.to);

  if (!partitions_.empty() && partitioned(from_idx, to_idx)) {
    ctx.m_dropped_partition->add();
    trace_drop("partition");
    return;
  }

  if (to_idx == NodeTable::kNoIndex) {
    ctx.m_dropped_offline->add();
    trace_drop("offline");
    return;
  }
  Host** const dst = hosts_.slot(to_idx);
  if (unreachable_at(to_idx)) {
    ctx.m_dropped_unreachable->add();
    trace_drop("unreachable");
    return;
  }
  if (config_.drop_probability > 0 &&
      ctx.rng.chance(config_.drop_probability)) {
    ctx.m_dropped_loss->add();
    trace_drop("loss");
    return;
  }

  // Transport under sharding is safe because all mutable state is
  // send-side, keyed by from_idx, and this code runs on the sender's owning
  // shard (single writer per slot). A kNoIndex sender (never registered —
  // find-only resolution) skips transport state entirely: infinite uplink.
  // Every additive term is >= 0 with sample() >= min_latency(), which is
  // what keeps cross-shard arrivals outside the lookahead window even with
  // queuing delays.
  sim::SimTime depart = cur.now();
  sim::SimDuration rx_serialize = 0;
  if (transport_.active()) {
    const Transport::Outcome out =
        transport_.admit(from_idx, to_idx, msg.size_bytes, cur.now());
    if (out.dropped) {
      ctx.m_dropped_queue->add();
      trace_drop("queue");
      return;
    }
    depart = out.depart;
    rx_serialize = out.rx_serialize;
    emit_span(out.queue_wait);
  } else {
    emit_span(0);
  }

  sim::SimDuration prop = latency_->sample(msg.from, msg.to, ctx.rng);
  prop += penalty_of(from_idx) + penalty_of(to_idx);
  if (reorder_jitter_ > 0) {
    const auto extra = static_cast<sim::SimDuration>(ctx.rng.uniform_int(
        static_cast<std::uint64_t>(reorder_jitter_) + 1));
    if (extra > 0) ctx.m_reordered->add();
    prop += extra;
  }
  const sim::SimTime arrive = depart + prop + rx_serialize;
  const std::size_t dst_shard = kernel_->shard_of(msg.to.value);

  if (duplicate_probability_ > 0 && ctx.rng.chance(duplicate_probability_)) {
    ctx.m_duplicated->add();
    const sim::SimDuration lag = latency_->sample(msg.from, msg.to, ctx.rng);
    if (tr) {
      tr->record({cur.now(), "dup", "", msg_seq, msg.from.value, msg.to.value,
                  msg.size_bytes});
    }
    schedule_delivery_sharded(s, dst_shard, dst, arrive + lag, msg, msg_seq);
  }

  schedule_delivery_sharded(s, dst_shard, dst, arrive, std::move(msg),
                            msg_seq);
}

}  // namespace decentnet::net
