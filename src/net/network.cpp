#include "net/network.hpp"

namespace decentnet::net {

Network::Network(sim::Simulator& sim, std::unique_ptr<LatencyModel> latency,
                 NetworkConfig config, sim::MetricRegistry* metrics)
    : sim_(sim),
      latency_(std::move(latency)),
      config_(config),
      rng_(sim.rng().fork(0x4E457457u)),
      owned_metrics_(metrics ? nullptr
                             : std::make_unique<sim::MetricRegistry>()),
      metrics_(metrics ? *metrics : *owned_metrics_),
      m_messages_sent_(metrics_.counter("net/messages_sent")),
      m_bytes_sent_(metrics_.counter("net/bytes_sent")),
      m_dropped_partition_(metrics_.counter("net/dropped_partition")),
      m_dropped_unreachable_(metrics_.counter("net/dropped_unreachable")),
      m_dropped_loss_(metrics_.counter("net/dropped_loss")),
      m_dropped_offline_(metrics_.counter("net/dropped_offline")) {
  if (config_.expected_nodes > 0) peers_.reserve(config_.expected_nodes);
}

void Network::attach(NodeId id, Host* host) {
  Peer& p = peer(id);
  if (p.host == nullptr) ++online_;
  p.host = host;
}

void Network::detach(NodeId id) {
  const auto it = peers_.find(id);
  if (it != peers_.end() && it->second.host != nullptr) {
    it->second.host = nullptr;  // link state survives churn
    --online_;
  }
}

void Network::set_bandwidth(NodeId id, double uplink_bps,
                            double downlink_bps) {
  LinkState& l = peer(id).link;
  l.uplink_bps = uplink_bps;
  l.downlink_bps = downlink_bps;
}

void Network::set_partition(std::unordered_set<std::uint64_t> group_a) {
  partition_ = std::move(group_a);
}

void Network::set_unreachable(NodeId id, bool unreachable) {
  if (unreachable) {
    unreachable_.insert(id.value);
  } else {
    unreachable_.erase(id.value);
  }
}

bool Network::partitioned(NodeId a, NodeId b) const {
  if (partition_.empty()) return false;
  const bool a_in = partition_.count(a.value) > 0;
  const bool b_in = partition_.count(b.value) > 0;
  return a_in != b_in;
}

Network::Peer& Network::peer(NodeId id) {
  const auto [it, inserted] = peers_.try_emplace(id);
  if (inserted) {
    it->second.link = LinkState{config_.default_uplink_bps,
                                config_.default_downlink_bps, 0, 0};
  }
  return it->second;
}

void Network::deliver(Message msg) {
  const std::uint64_t msg_seq = ++messages_sent_;
  bytes_sent_ += msg.size_bytes;
  m_messages_sent_.add();
  m_bytes_sent_.add(msg.size_bytes);

  sim::TraceSink* const tr = sim_.trace();
  if (tr) {
    tr->record({sim_.now(), "send", "", msg_seq, msg.from.value, msg.to.value,
                msg.size_bytes});
  }
  const auto trace_drop = [&](const char* reason) {
    if (tr) {
      tr->record({sim_.now(), "drop", reason, msg_seq, msg.from.value,
                  msg.to.value, msg.size_bytes});
    }
  };

  if (partitioned(msg.from, msg.to)) {
    m_dropped_partition_.add();
    trace_drop("partition");
    return;
  }
  if (!unreachable_.empty() && unreachable_.count(msg.to.value) > 0) {
    m_dropped_unreachable_.add();
    trace_drop("unreachable");
    return;
  }
  if (config_.drop_probability > 0 && rng_.chance(config_.drop_probability)) {
    m_dropped_loss_.add();
    trace_drop("loss");
    return;
  }

  // One lookup resolves the receiver's link state *and* the delivery target:
  // Peer entries are never erased, so the pointer stays valid for the
  // in-flight event even across churn or peer-table growth.
  Peer* const dst = &peer(msg.to);

  sim::SimTime depart = sim_.now();
  if (config_.model_bandwidth && msg.size_bytes > 0) {
    LinkState& tx = peer(msg.from).link;
    const auto ser = static_cast<sim::SimDuration>(
        static_cast<double>(msg.size_bytes) / tx.uplink_bps *
        static_cast<double>(sim::kSecond));
    const sim::SimTime start = std::max(sim_.now(), tx.tx_free_at);
    tx.tx_free_at = start + ser;
    depart = tx.tx_free_at;
  }

  const sim::SimDuration prop = latency_->sample(msg.from, msg.to, rng_);
  sim::SimTime arrive = depart + prop;

  if (config_.model_bandwidth && msg.size_bytes > 0) {
    LinkState& rx = dst->link;
    const auto ser = static_cast<sim::SimDuration>(
        static_cast<double>(msg.size_bytes) / rx.downlink_bps *
        static_cast<double>(sim::kSecond));
    const sim::SimTime start = std::max(arrive, rx.rx_free_at);
    rx.rx_free_at = start + ser;
    arrive = rx.rx_free_at;
  }

  // Detached event: delivery is fire-and-forget — the kernel's hottest path.
  // The capture carries the resolved Peer*, so delivery does zero hash
  // lookups; the online check is one null test. The untraced capture is
  // sized to exactly fill InlineFn<64>'s inline buffer (Peer* + Counter* +
  // 48-byte Message), so steady-state delivery allocates nothing; the traced
  // variant carries more context and may box, which is fine off the fast
  // path.
  if (tr) {
    sim_.post_at(
        arrive,
        [this, dst, msg_seq, msg = std::move(msg)] {
          if (dst->host == nullptr) {
            m_dropped_offline_.add();
            if (sim::TraceSink* const tr2 = sim_.trace()) {
              tr2->record({sim_.now(), "drop", "offline", msg_seq,
                           msg.from.value, msg.to.value, msg.size_bytes});
            }
            return;
          }
          dst->host->handle_message(msg);
        },
        "net/deliver");
  } else {
    sim::Counter* const dropped = &m_dropped_offline_;
    sim_.post_at(
        arrive,
        [dst, dropped, msg = std::move(msg)] {
          if (dst->host == nullptr) {
            dropped->add();
            return;
          }
          dst->host->handle_message(msg);
        },
        "net/deliver");
  }
}

}  // namespace decentnet::net
