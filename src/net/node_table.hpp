// Dense NodeId indexing: the address book behind the Network's
// struct-of-arrays per-node state.
//
// NodeIds are opaque 64-bit values; per-node state wants a dense
// `uint32_t` index so hot paths do one array access instead of a hash
// lookup. NodeTable assigns that index at first intern() and never revokes
// it — a node that crashes and re-attaches (churn) resolves to the same
// index, so in-flight delivery closures and side tables stay valid across
// the round trip.
//
// Representation: ids produced by Network::new_node_id() are sequential
// (1, 2, 3, ...), so the common case is a direct-mapped vector indexed by
// the raw id value — one bounds check and one load. Arbitrary ids far
// outside the sequential range (tests fabricate things like NodeId{9999})
// would blow that vector up, so outliers fall back to a hash map. The
// direct map only grows while the id space stays within a small constant
// factor of the interned population, which keeps memory O(nodes) for any
// input mix.
#pragma once

#include <algorithm>
#include <cstdint>
#include <unordered_map>
#include <vector>

#include "net/node_id.hpp"

namespace decentnet::net {

class NodeTable {
 public:
  /// index_of() result for an id never interned.
  static constexpr std::uint32_t kNoIndex = 0xFFFFFFFFu;

  /// Dense index for `id`, assigning the next free one on first sight.
  /// Indices are assigned in intern order, start at 0, and are stable for
  /// the table's lifetime (entries are never erased).
  std::uint32_t intern(NodeId id) {
    const std::uint64_t v = id.value;
    if (v < direct_.size()) {
      const std::uint32_t idx = direct_[v];
      if (idx != kNoIndex) return idx;
      // An id can sit in the sparse map from before the direct map grew
      // over it; it must keep its index, not get a second one.
      if (!sparse_.empty()) {
        const auto it = sparse_.find(v);
        if (it != sparse_.end()) return direct_[v] = it->second;
      }
      return direct_[v] = count_++;
    }
    // Grow the direct map only while the id space stays near-dense;
    // otherwise the id is an outlier and goes to the hash map.
    if (v < 4 * static_cast<std::uint64_t>(count_) + 1024) {
      direct_.resize(
          std::max<std::size_t>(static_cast<std::size_t>(v) + 1,
                                direct_.size() * 2),
          kNoIndex);
      // Same aliasing rule as above: an id that went sparse while the
      // population was small may only now be covered by the direct map,
      // and must keep its original index.
      if (!sparse_.empty()) {
        const auto it = sparse_.find(v);
        if (it != sparse_.end()) return direct_[v] = it->second;
      }
      return direct_[v] = count_++;
    }
    const auto [it, fresh] = sparse_.try_emplace(v, count_);
    if (fresh) ++count_;
    return it->second;
  }

  /// Find-only lookup; kNoIndex when `id` was never interned. Safe to call
  /// concurrently with other lookups (no mutation).
  std::uint32_t index_of(NodeId id) const {
    const std::uint64_t v = id.value;
    if (v < direct_.size()) {
      const std::uint32_t idx = direct_[v];
      if (idx != kNoIndex || sparse_.empty()) return idx;
    }
    if (sparse_.empty()) return kNoIndex;
    const auto it = sparse_.find(v);
    return it == sparse_.end() ? kNoIndex : it->second;
  }

  /// Number of distinct ids interned so far (== the next index assigned).
  std::uint32_t size() const { return count_; }

  /// Pre-size the direct map for ids up to `n` so interning a sequential
  /// population of `n` nodes never reallocates.
  void reserve(std::size_t n) {
    if (n + 1 > direct_.size()) direct_.resize(n + 1, kNoIndex);
  }

 private:
  std::vector<std::uint32_t> direct_;  // id value -> index; kNoIndex = empty
  std::unordered_map<std::uint64_t, std::uint32_t> sparse_;  // outlier ids
  std::uint32_t count_ = 0;
};

}  // namespace decentnet::net
