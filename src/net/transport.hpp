// Byte-accurate transport: per-link FIFO queues with serialization delay,
// bounded queue depth with drop-on-overflow, and a TCP-like flow model
// (slow start, AIMD congestion avoidance, loss-triggered backoff).
//
// This is the bandwidth half of delivery. The Network composes three delays
// per message: sender-side transport (this file: queue wait + uplink
// serialization, possibly cwnd-limited), propagation (LatencyModel sample),
// and receiver-side downlink serialization (stateless: size / down_bps).
//
// Shard safety is by construction, not locking. All mutable transport state
// is *send-side* and indexed by the sender's dense node index; a node's
// sends always execute on the shard that owns it (kernel.shard_of), so each
// TxState slot has exactly one writer. The receiver-side downlink delay is
// computed from the immutable-during-run LinkSpec alone (no rx FIFO), which
// is what lets enable_sharding accept Bandwidth/Tcp runs and extends the
// --sim-threads byte-identity contract to them. Adjacent TxState slots can
// share a cache line across shards — that is a false-sharing perf note, not
// a correctness hazard.
//
// Every transport delay is strictly additive and >= 0 on top of the latency
// sample, so the sharded kernel's conservative lookahead (min_latency) stays
// a valid lower bound on delivery times (see DESIGN.md).
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "sim/time.hpp"

namespace decentnet::net {

enum class TransportMode : std::uint8_t {
  /// Infinite bandwidth: delivery is the latency sample alone. Default —
  /// keeps golden traces of latency-only experiments byte-stable.
  Latency,
  /// Finite links: sender-side FIFO serialization at up_bps (queue wait +
  /// size/rate), bounded backlog with drop-on-overflow, stateless downlink
  /// serialization at the receiver's down_bps.
  Bandwidth,
  /// Bandwidth plus a TCP-like per-sender flow model: the effective send
  /// rate is min(up_bps, cwnd/rtt); cwnd grows by slow start then AIMD and
  /// halves when the sender's queue overflows (loss signal).
  Tcp,
};

const char* transport_mode_name(TransportMode mode);
std::optional<TransportMode> transport_mode_from_name(std::string_view name);

/// Capacity of one node's access link, bytes per simulated second (divide
/// Mbit/s by 8). Defaults approximate a consumer connection: 50 Mbit/s down,
/// 10 Mbit/s up, unbounded queue (no overflow drops unless opted in).
struct LinkSpec {
  double up_bps = 10e6 / 8;
  double down_bps = 50e6 / 8;
  /// Maximum sender-side backlog in bytes; a send that would push the
  /// queued-but-unserialized backlog past this is dropped (traced "queue",
  /// counted under net/queue_dropped). 0 = unbounded.
  std::uint64_t queue_bytes = 0;

  bool operator==(const LinkSpec&) const = default;
};

struct TransportConfig {
  TransportMode mode = TransportMode::Latency;
  /// Default link for every node; override per node with
  /// Network::set_link.
  LinkSpec link;
  /// Tcp mode: segment size used for cwnd growth/backoff arithmetic.
  std::uint32_t mss_bytes = 1460;
  /// Tcp mode: initial congestion window, in segments (RFC 6928's IW10).
  double initial_cwnd_mss = 10.0;
  /// Tcp mode: nominal round-trip time used to turn cwnd into a rate
  /// (rate = cwnd / rtt). A modeling constant, not a measured RTT.
  sim::SimDuration rtt = sim::millis(100);

  /// Actionable description of the first invalid field, or nullopt when
  /// usable.
  std::optional<std::string> validate() const;
};

/// Send-side transport state for every node, struct-of-arrays behind the
/// Network's dense node index. Owned by Network; not a public entry point —
/// Network::deliver calls admit() per message and turns the outcome into
/// counters, trace records, and the scheduled arrival.
class Transport {
 public:
  explicit Transport(TransportConfig config = {}) : cfg_(config) {}

  const TransportConfig& config() const { return cfg_; }
  TransportMode mode() const { return cfg_.mode; }
  /// True when sends must route through admit() (mode != Latency).
  bool active() const { return cfg_.mode != TransportMode::Latency; }

  /// Per-node link override. Materializes the spec array on first use;
  /// nodes without an override use config().link.
  void set_link(std::uint32_t idx, const LinkSpec& spec);
  /// The spec governing `idx` (the default when never overridden). Safe for
  /// any index, including kNoIndex.
  LinkSpec link(std::uint32_t idx) const {
    return idx < spec_.size() ? spec_[idx] : cfg_.link;
  }

  /// Guarantee state slots [0, idx] exist. Called from Network::ensure_node
  /// while active(); sharded runs therefore cover every node during
  /// registration, and the parallel phase never grows the arrays.
  void ensure(std::uint32_t idx) {
    if (active() && idx != kNoIndex && idx >= tx_.size()) grow(idx);
  }
  void reserve(std::size_t n);

  struct Outcome {
    /// Dropped on queue overflow: the message never departs. In Tcp mode the
    /// sender's cwnd has already been halved (loss reaction).
    bool dropped = false;
    /// When the last byte clears the sender's uplink; propagation starts
    /// here.
    sim::SimTime depart = 0;
    /// Time the message waited behind earlier traffic before its own
    /// serialization began (depart - serialization - now). The "queue_us"
    /// span-trace field.
    sim::SimDuration queue_wait = 0;
    /// Receiver-side downlink serialization, added after propagation.
    sim::SimDuration rx_serialize = 0;
  };

  /// Commit one message of `size_bytes` from sender `from` to receiver `to`
  /// at `now`. Mutates the sender's FIFO/cwnd state — under sharding the
  /// caller must be the shard that owns `from`. `from` == kNoIndex (a
  /// never-registered sender under sharded find-only resolution) is treated
  /// as an infinite link: no state, no delay.
  Outcome admit(std::uint32_t from, std::uint32_t to,
                std::uint64_t size_bytes, sim::SimTime now);

  /// Tcp-mode introspection (tests and benches): current congestion window
  /// and slow-start threshold of `idx`, in bytes. 0 / +inf before the
  /// node's first send.
  double cwnd_bytes(std::uint32_t idx) const {
    return idx < tx_.size() ? tx_[idx].cwnd : 0.0;
  }
  double ssthresh_bytes(std::uint32_t idx) const;

  /// Aggregate send-side state at sim time `now`, for telemetry gauges.
  struct Sample {
    /// Estimated bytes still queued behind every sender's uplink: remaining
    /// busy time times the current effective rate, summed over senders.
    double queued_bytes = 0;
    /// Sum / max of open congestion windows, in bytes (Tcp mode; 0 before
    /// any sends).
    double cwnd_total = 0;
    double cwnd_max = 0;
    /// Senders whose uplink is still serializing earlier traffic.
    std::uint64_t busy_uplinks = 0;
  };

  /// Non-mutating O(nodes) scan over the send-side arrays. Safe wherever
  /// telemetry samples run (between events, or on the sharded driver at a
  /// barrier while workers are quiescent). Unlike send_rate(), an unopened
  /// Tcp flow reads as rate = up_bps here rather than being initialized.
  Sample sample(sim::SimTime now) const;

 private:
  static constexpr std::uint32_t kNoIndex = ~0u;  // NodeTable::kNoIndex

  struct TxState {
    sim::SimTime free_at = 0;  // uplink FIFO: busy until here
    double cwnd = 0.0;         // bytes; 0 = not yet initialized
    double ssthresh = 0.0;
  };

  void grow(std::uint32_t idx);
  double send_rate(const LinkSpec& spec, TxState& tx) const;

  TransportConfig cfg_;
  /// Per-node LinkSpec; empty until the first set_link (uniform-link runs
  /// never pay for it), then kept sized alongside tx_.
  std::vector<LinkSpec> spec_;
  /// Send-side FIFO/cwnd state, one slot per dense node index. Single
  /// writer per slot (the owning shard).
  std::vector<TxState> tx_;
};

}  // namespace decentnet::net
